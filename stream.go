package racetrack

import (
	"context"
	"fmt"
	"io"

	"repro/internal/placement"
	"repro/internal/trace"
)

// Out-of-core trace support: the compact binary trace format, streaming
// access readers, synthetic large-trace generation, and windowed
// placement of streams that never fit in memory (DESIGN.md §12).

// Access is one element of an access sequence: a variable index plus a
// read/write flag.
type Access = trace.Access

// AccessReader streams accesses one at a time; Next returns io.EOF after
// the last access. Binary trace scanners, synthetic generators and
// in-RAM sequence adapters all implement it, and Lab.PlaceStream and
// NewStreamCostKernel consume any implementation.
type AccessReader = trace.AccessReader

// NewSequenceReader adapts an in-RAM sequence to the AccessReader
// interface.
func NewSequenceReader(s *Sequence) AccessReader { return trace.NewSliceReader(s) }

// WriteBinaryBenchmark encodes the benchmark in the compact binary trace
// format: varint-delta access tokens with a verified content fingerprint
// per sequence, typically several times smaller than the text format and
// decodable access-by-access in constant memory (see internal/trace).
func WriteBinaryBenchmark(w io.Writer, b *Benchmark) error {
	return trace.WriteBinary(w, b)
}

// ReadBinaryBenchmark eagerly decodes a binary-format benchmark into
// RAM — the binary-format counterpart of ReadBenchmark. For traces too
// large to materialize, use OpenBinaryTrace and scan instead.
func ReadBinaryBenchmark(name string, r io.Reader) (*Benchmark, error) {
	return trace.ReadBinary(name, r)
}

// BinaryTraceWriter streams a binary trace out without materializing
// it: declare each sequence's universe and length up front, then append
// accesses one at a time (the trailer fingerprint accumulates as you
// go). This is how traces bigger than memory are produced — e.g. from a
// synthetic generator or an instrumentation pipe.
type BinaryTraceWriter = trace.BinWriter

// NewBinaryTraceWriter starts a binary trace of seqCount sequences on w.
func NewBinaryTraceWriter(w io.Writer, seqCount int) (*BinaryTraceWriter, error) {
	return trace.NewBinWriter(w, seqCount)
}

// BinaryTraceReader streams sequences out of a binary-format trace.
type BinaryTraceReader = trace.BinReader

// NewBinaryTraceReader validates the stream header and returns a reader
// whose ScanSequence yields one streaming sequence scanner at a time.
func NewBinaryTraceReader(r io.Reader) (*BinaryTraceReader, error) {
	return trace.NewBinReader(r)
}

// BinaryTraceFile is an opened on-disk binary trace (memory-mapped on
// platforms that support it, chunk-buffered elsewhere).
type BinaryTraceFile = trace.BinFile

// OpenBinaryTrace opens a binary trace file for streaming scans without
// loading it into memory.
func OpenBinaryTrace(path string) (*BinaryTraceFile, error) { return trace.OpenBin(path) }

// SequenceScanner streams one sequence's accesses out of a binary trace;
// it implements AccessReader and verifies the sequence fingerprint at
// EOF.
type SequenceScanner = trace.SeqScanner

// SynthConfig parameterizes deterministic synthetic trace generation:
// seeded, Zipf-popularity, loop-structured access streams of any length,
// generated on the fly in O(loop body) memory.
type SynthConfig = trace.SynthConfig

// NewSynthReader streams the configured synthetic trace; equal configs
// yield bit-identical streams.
func NewSynthReader(cfg SynthConfig) (AccessReader, error) { return trace.NewSynthReader(cfg) }

// StreamWindow is the default accesses-per-window granularity of
// Lab.PlaceStream when PlaceOptions.Window is 0.
const StreamWindow = placement.DefaultStreamWindow

// StreamResult reports a finished streamed placement: the stitched total
// shift count and its window/migration decomposition.
type StreamResult = placement.StreamResult

// NewStreamCostKernel builds a CostKernel from an access stream without
// materializing the sequence: bit-identical to NewCostKernel on the same
// accesses, with a working set proportional to the stream's distinct
// variables and window shapes rather than its length. The returned
// kernel has no bound sequence (Sequence returns nil).
func NewStreamCostKernel(numVars int, r AccessReader) (*CostKernel, error) {
	return placement.NewCostKernelStream(numVars, r)
}

// PlaceStream places an access stream too large to hold in memory:
// the stream is consumed window by window (PlaceOptions.Window accesses
// each), every window is placed independently with the selected strategy
// and the Lab's defaults, and the window layouts are stitched into one
// continuous execution — per-DBC port positions persist across windows,
// and variables whose location changes between consecutive windows are
// charged an explicit migration (a read at the old location and a write
// at the new one) under the same shift model. Memory is O(window), not
// O(stream).
//
// numVars declares the stream's variable universe; every access must lie
// in [0, numVars). With a window no smaller than the stream the result
// equals placing the whole trace at once. The cost model is single-port;
// a Lab whose device has more ports must pin PlaceOptions.Ports to 1 to
// stream. Each placed window is reported to the progress callback as a
// finished cell carrying the cumulative stitched shift count.
func (l *Lab) PlaceStream(ctx context.Context, numVars int, r AccessReader, opts PlaceOptions) (*StreamResult, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	opts = l.withDefaults(opts)
	model, err := l.costModelFor(opts)
	if err != nil {
		return nil, err
	}
	stOpts := opts.options()
	stOpts.Cost = model // the stitched totals are priced at the boundary
	cfg := placement.StreamConfig{
		NumVars:  numVars,
		DBCs:     opts.DBCs,
		Window:   opts.Window,
		Strategy: opts.Strategy,
		Registry: l.registry,
		Options:  stOpts,
	}
	if l.progress != nil {
		cfg.Progress = func(ev placement.StreamWindowEvent) {
			l.emit(ProgressEvent{
				Cell: ev.Window, Strategy: opts.Strategy, DBCs: opts.DBCs,
				Island: -1, Done: true, Shifts: ev.Shifts,
			})
		}
	}
	res, err := placement.PlaceStreamed(ctx, r, cfg)
	if err != nil {
		if res != nil && ctx.Err() != nil {
			// Deadline-bounded run: the stitched result through the last
			// completed window rides along with the context error, as in
			// Lab.Place's partial-result contract.
			return res, err
		}
		return nil, fmt.Errorf("racetrack: place stream: %w", err)
	}
	return res, nil
}

// PlaceStream is the package-level form of Lab.PlaceStream on the
// default Lab.
func PlaceStream(ctx context.Context, numVars int, r AccessReader, opts PlaceOptions) (*StreamResult, error) {
	l, err := defaultLab()
	if err != nil {
		return nil, err
	}
	return l.PlaceStream(ctx, numVars, r, opts)
}
