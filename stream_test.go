package racetrack

import (
	"bytes"
	"context"
	"testing"
)

// TestPlaceStreamWindowInfinity pins the public invariant: streaming a
// sequence through PlaceStream with a window covering the whole stream
// costs exactly what Lab.Place reports for the same strategy.
func TestPlaceStreamWindowInfinity(t *testing.T) {
	lab, err := New()
	if err != nil {
		t.Fatal(err)
	}
	s, err := ParseSequence("a b a b c a c a d d a c b d a")
	if err != nil {
		t.Fatal(err)
	}
	want, err := lab.Place(context.Background(), s, PlaceOptions{Strategy: DMAOFU})
	if err != nil {
		t.Fatal(err)
	}
	res, err := lab.PlaceStream(context.Background(), s.NumVars(), NewSequenceReader(s), PlaceOptions{
		Strategy: DMAOFU, Window: s.Len(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Shifts != want.Shifts || res.MigrationShifts != 0 || res.Windows != 1 {
		t.Fatalf("streamed %+v, in-RAM cost %d", res, want.Shifts)
	}
}

// TestPlaceStreamProgressAndDefaults exercises Lab defaults (strategy,
// DBC count) plus the per-window progress callback, and the package-level
// wrapper.
func TestPlaceStreamProgressAndDefaults(t *testing.T) {
	var windows int
	lab, err := New(WithProgress(func(ev ProgressEvent) {
		if ev.Done {
			windows++
		}
	}))
	if err != nil {
		t.Fatal(err)
	}
	gen, err := NewSynthReader(SynthConfig{Vars: 50, Accesses: 4000, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	res, err := lab.PlaceStream(context.Background(), 50, gen, PlaceOptions{Window: 1000})
	if err != nil {
		t.Fatal(err)
	}
	if res.Windows != 4 || windows != 4 {
		t.Fatalf("4 windows expected, result %d, progress %d", res.Windows, windows)
	}

	gen2, err := NewSynthReader(SynthConfig{Vars: 50, Accesses: 4000, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	res2, err := PlaceStream(context.Background(), 50, gen2, PlaceOptions{Window: 1000})
	if err != nil {
		t.Fatal(err)
	}
	if res2.Shifts != res.Shifts {
		t.Fatalf("package-level wrapper diverged: %d vs %d", res2.Shifts, res.Shifts)
	}
}

// TestBinaryTracePublicRoundTrip drives the exported binary-format
// surface end to end: encode, eager decode, and a streaming scan fed
// into PlaceStream.
func TestBinaryTracePublicRoundTrip(t *testing.T) {
	b, err := ParseBenchmark("pub", "seq f\na b a c! b a\nseq g\nx y x y\n")
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteBinaryBenchmark(&buf, b); err != nil {
		t.Fatal(err)
	}
	got, err := ReadBinaryBenchmark("pub", bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Sequences) != 2 || !got.Sequences[0].ContentEqual(b.Sequences[0]) {
		t.Fatalf("binary round trip changed the benchmark")
	}

	br, err := NewBinaryTraceReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	sc, err := br.ScanSequence()
	if err != nil {
		t.Fatal(err)
	}
	res, err := PlaceStream(context.Background(), sc.NumVars(), sc, PlaceOptions{Strategy: DMAOFU})
	if err != nil {
		t.Fatal(err)
	}
	want, err := PlaceTrace(b.Sequences[0], PlaceOptions{Strategy: DMAOFU})
	if err != nil {
		t.Fatal(err)
	}
	if res.Shifts != want.Shifts {
		t.Fatalf("scanned stream cost %d, in-RAM cost %d", res.Shifts, want.Shifts)
	}

	// The scanner is an AccessReader whose EOF certifies the fingerprint;
	// a second ScanSequence must pick up the next sequence cleanly.
	if _, err := br.ScanSequence(); err != nil {
		t.Fatal(err)
	}
}

// TestStreamCostKernelPublic pins the exported streaming kernel
// constructor against the in-RAM one.
func TestStreamCostKernelPublic(t *testing.T) {
	s, err := ParseSequence("a b a b c a c a")
	if err != nil {
		t.Fatal(err)
	}
	k, err := NewStreamCostKernel(s.NumVars(), NewSequenceReader(s))
	if err != nil {
		t.Fatal(err)
	}
	if k.Sequence() != nil {
		t.Fatal("streamed kernel claims a bound sequence")
	}
	p := &Placement{DBC: [][]int{{0, 1, 2}}}
	want, err := NewCostKernel(s).Evaluate(p)
	if err != nil {
		t.Fatal(err)
	}
	got, err := k.Evaluate(p)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("streamed kernel %d, in-RAM kernel %d", got, want)
	}
}

// TestPlaceStreamMultiPortRejected pins the documented single-port
// restriction at the public layer.
func TestPlaceStreamMultiPortRejected(t *testing.T) {
	s, err := ParseSequence("a b a b")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := PlaceStream(context.Background(), s.NumVars(), NewSequenceReader(s), PlaceOptions{
		Ports: 2,
	}); err == nil {
		t.Fatal("multi-port streamed placement accepted")
	}
}
