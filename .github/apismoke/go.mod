module apismoke

go 1.23

require repro v0.0.0

replace repro => ../..
