// Command apismoke is the API-compat smoke test: a minimal external
// module that exercises the documented public surface of the racetrack
// package — and nothing else. It lives outside the library module (its
// own go.mod with a replace directive), so `internal/...` packages are
// genuinely unimportable here: if a documented workflow ever comes to
// require an internal type, this program stops compiling and CI fails.
//
// It is also runnable (CI runs it) as an end-to-end sanity check of the
// session API: build a Lab with a custom strategy, place the paper's
// worked example, simulate it, and run one tiny experiment.
package main

import (
	"context"
	"fmt"
	"log"

	racetrack "repro"
)

func main() {
	ctx := context.Background()

	custom := func(s *racetrack.Sequence, q int, opts racetrack.StrategyOptions) (*racetrack.Placement, int64, error) {
		p := &racetrack.Placement{DBC: make([][]int, q)}
		seen := map[int]bool{}
		for _, a := range s.Accesses {
			if !seen[a.Var] {
				seen[a.Var] = true
				p.DBC[0] = append(p.DBC[0], a.Var)
			}
		}
		c, err := racetrack.ShiftCost(s, p)
		return p, c, err
	}
	lab, err := racetrack.New(
		racetrack.WithDevice(2),
		racetrack.WithWorkers(2),
		racetrack.WithKernelCache(8),
		racetrack.WithStrategy("all-in-one", custom),
		racetrack.WithProgress(func(ev racetrack.ProgressEvent) {}),
	)
	if err != nil {
		log.Fatal(err)
	}

	seq, err := racetrack.ParseSequence("a b a b c a c a d d a i e f e f g e g h g i h i")
	if err != nil {
		log.Fatal(err)
	}
	// RegisteredStrategies includes the WithStrategy plugin next to the
	// paper's six and the built-in extensions.
	for _, strategy := range lab.RegisteredStrategies() {
		res, err := lab.Place(ctx, seq, racetrack.PlaceOptions{
			Strategy: strategy,
			GA: racetrack.GAConfig{Mu: 8, Lambda: 8, Generations: 4, TournamentK: 4,
				MutationRate: 0.5, MoveWeight: 10, TransposeWeight: 10, PermuteWeight: 3, Seed: 1},
			RW: racetrack.RWConfig{Iterations: 40, Seed: 1},
		})
		if err != nil {
			log.Fatalf("%s: %v", strategy, err)
		}
		sim, err := lab.Simulate(ctx, seq, res.Placement)
		if err != nil {
			log.Fatalf("%s: %v", strategy, err)
		}
		if sim.Counts.Shifts != res.Shifts {
			log.Fatalf("%s: simulator disagrees with cost model: %d vs %d",
				strategy, sim.Counts.Shifts, res.Shifts)
		}
		fmt.Printf("%-10s %3d shifts\n", strategy, res.Shifts)
	}

	// Legacy flat API still works through the compat wrappers.
	if _, err := racetrack.PlaceTrace(seq, racetrack.PlaceOptions{Strategy: racetrack.DMASR}); err != nil {
		log.Fatal(err)
	}

	// One tiny experiment through the typed spec.
	cfg := racetrack.QuickConfig()
	cfg.Benchmarks = []string{"anagram"}
	cfg.MaxSequences = 1
	cfg.MaxSequenceLen = 200
	cfg.DBCCounts = []int{2}
	res, err := lab.Run(ctx, racetrack.ExperimentSpec{Experiment: racetrack.ExperimentTensor, Config: cfg})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(res.Render())
}
