package racetrack

import (
	"context"
	"errors"
	"testing"
	"time"
)

// quickPlaceOptions keeps the search strategies cheap enough for racing
// and island runs in tests.
func quickPlaceOptions(strategy Strategy) PlaceOptions {
	return PlaceOptions{
		Strategy: strategy,
		GA: GAConfig{Mu: 12, Lambda: 12, Generations: 8, TournamentK: 4,
			MutationRate: 0.5, MoveWeight: 10, TransposeWeight: 10, PermuteWeight: 3, Seed: 1},
		RW: RWConfig{Iterations: 200, Seed: 1},
	}
}

// PlacePortfolio must never lose to any individual strategy it raced,
// its PerDBC attribution must sum to the winner's shifts, and the winner
// must be reported among the entries with its exact cost.
func TestLabPlacePortfolio(t *testing.T) {
	lab, err := New(WithWorkers(4))
	if err != nil {
		t.Fatal(err)
	}
	b := compatBenchmark(t)
	s := b.Sequences[0]
	opts := quickPlaceOptions("")
	r, err := lab.PlacePortfolio(context.Background(), s, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Entries) != len(lab.RegisteredStrategies()) {
		t.Fatalf("raced %d strategies, registry has %d", len(r.Entries), len(lab.RegisteredStrategies()))
	}
	var perDBC int64
	for _, c := range r.PerDBC {
		perDBC += c
	}
	if perDBC != r.Shifts {
		t.Fatalf("PerDBC sums to %d, Shifts = %d", perDBC, r.Shifts)
	}
	won := false
	for _, e := range r.Entries {
		if e.Strategy == r.Winner {
			won = true
			if e.Abandoned || e.Cost != r.Shifts {
				t.Fatalf("winner entry %+v does not match result %d", e, r.Shifts)
			}
		}
	}
	if !won {
		t.Fatalf("winner %s missing from entries", r.Winner)
	}
	// The race must match or beat every individual strategy.
	for _, id := range lab.RegisteredStrategies() {
		o := opts
		o.Strategy = id
		pr, err := lab.Place(context.Background(), s, o)
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if r.Shifts > pr.Shifts {
			t.Fatalf("portfolio %d shifts lost to %s alone (%d)", r.Shifts, id, pr.Shifts)
		}
	}
	// An explicit sub-portfolio restricts the race.
	o := opts
	o.Portfolio = []Strategy{AFDOFU, DMASR}
	r2, err := lab.PlacePortfolio(context.Background(), s, o)
	if err != nil {
		t.Fatal(err)
	}
	if len(r2.Entries) != 2 {
		t.Fatalf("sub-portfolio raced %d strategies, want 2", len(r2.Entries))
	}
}

// A Lab constructed WithIslands must produce deterministic GA
// placements that are bit-identical for any worker count and match an
// explicit per-call GAConfig.Islands request.
func TestWithIslandsDeterministic(t *testing.T) {
	b := compatBenchmark(t)
	s := b.Sequences[0]
	opts := quickPlaceOptions(GA)

	var ref *PlaceResult
	for _, workers := range []int{1, 4} {
		lab, err := New(WithIslands(3), WithWorkers(workers))
		if err != nil {
			t.Fatal(err)
		}
		r, err := lab.Place(context.Background(), s, opts)
		if err != nil {
			t.Fatal(err)
		}
		if ref == nil {
			ref = r
		} else if r.Shifts != ref.Shifts || !r.Placement.Equal(ref.Placement) {
			t.Fatalf("WithIslands(3) diverged across worker counts: %d vs %d", r.Shifts, ref.Shifts)
		}
	}

	// Explicit GAConfig.Islands on a plain Lab matches the Lab default.
	plain, err := New(WithWorkers(4))
	if err != nil {
		t.Fatal(err)
	}
	o := opts
	o.GA.Islands = 3
	o.Workers = 4
	r, err := plain.Place(context.Background(), s, o)
	if err != nil {
		t.Fatal(err)
	}
	if r.Shifts != ref.Shifts || !r.Placement.Equal(ref.Placement) {
		t.Fatalf("explicit Islands=3 (%d) != WithIslands(3) Lab (%d)", r.Shifts, ref.Shifts)
	}

	// WithIslands(1) is the serial GA.
	one, err := New(WithIslands(1))
	if err != nil {
		t.Fatal(err)
	}
	serial, err := New()
	if err != nil {
		t.Fatal(err)
	}
	r1, err := one.Place(context.Background(), s, opts)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := serial.Place(context.Background(), s, opts)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Shifts != r2.Shifts || !r1.Placement.Equal(r2.Placement) {
		t.Fatal("WithIslands(1) diverged from the serial GA")
	}

	if _, err := New(WithIslands(0)); err == nil {
		t.Fatal("WithIslands(0) accepted")
	}
}

// Island-model GA runs emit per-island progress events between
// migration rounds, tagged with the island index; regular cell events
// carry Island == -1.
func TestIslandProgressEvents(t *testing.T) {
	var events []ProgressEvent
	lab, err := New(WithIslands(2), WithProgress(func(ev ProgressEvent) {
		events = append(events, ev)
	}))
	if err != nil {
		t.Fatal(err)
	}
	b := compatBenchmark(t)
	if _, err := lab.Place(context.Background(), b.Sequences[0], quickPlaceOptions(GA)); err != nil {
		t.Fatal(err)
	}
	island, regular := 0, 0
	for _, ev := range events {
		if ev.Island >= 0 {
			island++
			if ev.Generation <= 0 {
				t.Fatalf("island event without generation: %+v", ev)
			}
		} else {
			regular++
		}
	}
	if island == 0 {
		t.Fatal("no island progress events from an island-model run")
	}
	if regular == 0 {
		t.Fatal("cell start/done events missing")
	}
}

// A deadline interrupts a GA placement between generations: the call
// returns promptly with the context error rather than running the full
// budget.
func TestPlaceGADeadline(t *testing.T) {
	lab, err := New(WithIslands(2))
	if err != nil {
		t.Fatal(err)
	}
	b := compatBenchmark(t)
	opts := quickPlaceOptions(GA)
	opts.GA.Generations = 1 << 30

	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err = lab.Place(ctx, b.Sequences[0], opts)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want DeadlineExceeded", err)
	}
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Fatalf("deadline ignored for %v", elapsed)
	}
}
