#!/usr/bin/env bash
# End-to-end robustness smoke for the placement service (CI server-smoke
# job; runnable locally). Exercises the failure modes the server is
# designed around:
#   1. place a trace through rtmserve via the rtmcall client;
#   2. flood a tiny-queue server and require load shedding (429s) while
#      every accepted request completes;
#   3. SIGTERM mid-flight: the in-flight request completes, the server
#      exits 0, and the persistent cache is reloadable (warm restart);
#   4. kill -9 (crash, possibly mid-write): the restarted server still
#      answers the same trace from a verified or rebuilt cache — a crash
#      never leaves the cache in a state that breaks serving.
set -euo pipefail

ADDR=127.0.0.1:8741
BASE=http://$ADDR
CACHE=$(mktemp -d)
OUT=$(mktemp -d)
LOG=$(mktemp)
TRACE="a b a b c a c a d d a b c d"
trap 'kill "$SRV" 2>/dev/null || true; rm -rf "$CACHE" "$OUT" "$LOG"' EXIT

go build -o "$OUT/rtmserve" ./cmd/rtmserve
go build -o "$OUT/rtmcall" ./cmd/rtmcall

wait_ready() {
  for _ in $(seq 1 50); do
    curl -fsS "$BASE/healthz" >/dev/null 2>&1 && return 0
    sleep 0.1
  done
  echo "server never became healthy" >&2
  cat "$LOG" >&2
  return 1
}

echo "=== leg 1: basic place + cache warmth"
"$OUT"/rtmserve -addr "$ADDR" -cache-dir "$CACHE" >"$LOG" 2>&1 &
SRV=$!
wait_ready
"$OUT"/rtmcall -addr "$BASE" -trace "$TRACE" | tee "$OUT"/leg1.out
grep -q "cached=false" "$OUT"/leg1.out
"$OUT"/rtmcall -addr "$BASE" -trace "$TRACE" | tee "$OUT"/leg1b.out
grep -q "cached=true" "$OUT"/leg1b.out

echo "=== leg 1b: objective change must not serve the stale unpriced entry"
# Same trace under a priced objective: the warm unpriced entry must NOT
# answer (the response needs cost dimensions it never carried)...
"$OUT"/rtmcall -addr "$BASE" -trace "$TRACE" -objective energy | tee "$OUT"/leg1c.out
grep -q "cached=false" "$OUT"/leg1c.out
grep -q "cost\[energy\]" "$OUT"/leg1c.out
# ...and the repeat under the same objective is warm, still priced.
"$OUT"/rtmcall -addr "$BASE" -trace "$TRACE" -objective energy | tee "$OUT"/leg1d.out
grep -q "cached=true" "$OUT"/leg1d.out
grep -q "cost\[energy\]" "$OUT"/leg1d.out

echo "=== leg 2: flood a tiny queue -> sheds, accepted requests complete"
kill -TERM "$SRV"; wait "$SRV"
"$OUT"/rtmserve -addr "$ADDR" -cache-dir "$CACHE" \
  -max-concurrent 1 -max-queue 1 -spin 300ms >"$LOG" 2>&1 &
SRV=$!
wait_ready
# -vary defeats coalescing/cache; -retries 0 so sheds surface as sheds.
"$OUT"/rtmcall -addr "$BASE" -trace "$TRACE" -n 12 -c 12 -vary -retries 0 -quiet | tee "$OUT"/flood.out
OK=$(sed -n 's/.*ok=\([0-9]*\).*/\1/p' "$OUT"/flood.out)
SHED=$(sed -n 's/.*shed=\([0-9]*\).*/\1/p' "$OUT"/flood.out)
FAILED=$(sed -n 's/.*failed=\([0-9]*\).*/\1/p' "$OUT"/flood.out)
echo "flood: ok=$OK shed=$SHED failed=$FAILED"
[ "$FAILED" -eq 0 ]   # sheds are expected, hard failures are not
[ "$SHED" -ge 1 ]     # the tiny queue must actually shed
[ "$OK" -ge 2 ]       # slot + queue must complete
curl -fsS "$BASE/statz" | grep -q '"shed":'

echo "=== leg 3: SIGTERM mid-flight -> in-flight completes, exit 0, cache reloadable"
( "$OUT"/rtmcall -addr "$BASE" -trace "$TRACE midflight" -retries 0 > "$OUT"/inflight.out ) &
CALL=$!
sleep 0.1            # let it get admitted (each request spins 300ms)
kill -TERM "$SRV"
wait "$CALL"         # the client must succeed: drain finishes in-flight work
grep -q "shifts=" "$OUT"/inflight.out
if wait "$SRV"; then EXIT=0; else EXIT=$?; fi
[ "$EXIT" -eq 0 ]    # graceful drain exits 0
"$OUT"/rtmserve -addr "$ADDR" -cache-dir "$CACHE" >"$LOG" 2>&1 &
SRV=$!
wait_ready
"$OUT"/rtmcall -addr "$BASE" -trace "$TRACE midflight" | tee "$OUT"/warm.out
grep -q "cached=true" "$OUT"/warm.out   # the drained cache survived the restart

echo "=== leg 4: kill -9 -> restart serves the trace from a verified/rebuilt cache"
( "$OUT"/rtmcall -addr "$BASE" -trace "$TRACE crashleg" -retries 0 >/dev/null 2>&1 || true ) &
sleep 0.05
kill -9 "$SRV" || true
wait "$SRV" 2>/dev/null || true
# Plant a corrupt entry + a stray temp to simulate a torn write.
printf 'RTPCgarbage-not-a-valid-entry' > "$CACHE/deadbeefdeadbeef.rtpc"
printf 'torn' > "$CACHE/deadbeefdeadbeef.rtpc.123.tmp"
"$OUT"/rtmserve -addr "$ADDR" -cache-dir "$CACHE" >"$LOG" 2>&1 &
SRV=$!
wait_ready
"$OUT"/rtmcall -addr "$BASE" -trace "$TRACE crashleg" | grep -q "shifts="
"$OUT"/rtmcall -addr "$BASE" -trace "$TRACE crashleg" | grep -q "cached=true"
kill -TERM "$SRV"; wait "$SRV"

echo "server-smoke: all legs passed"
