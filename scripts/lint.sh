#!/usr/bin/env bash
# lint.sh — run the exact checks the CI `lint` job runs, in the same
# order: go vet, staticcheck, the in-repo rtmlint invariant suite
# (DESIGN.md §14), and govulncheck. Run it from anywhere inside the
# repo before pushing.
#
# go vet and rtmlint need only the Go toolchain and always run.
# staticcheck and govulncheck are external tools: if a pinned binary is
# missing we try `go install` (needs network); if that fails the step
# is SKIPPED with a loud warning instead of failing the script, so the
# mandatory checks still gate offline development. CI always runs all
# four.
set -u

STATICCHECK_VERSION='2025.1.1'
GOVULNCHECK_VERSION='v1.1.4'

cd "$(dirname "$0")/.."

failed=0
skipped=()

run_step() {
    local name=$1
    shift
    echo "==> $name"
    if ! "$@"; then
        echo "FAIL: $name" >&2
        failed=1
    fi
}

# Resolve an external tool: prefer PATH (and GOBIN/GOPATH/bin), else
# try to install the pinned version. Prints the binary path on
# success.
resolve_tool() {
    local bin=$1 module=$2 version=$3
    if command -v "$bin" >/dev/null 2>&1; then
        command -v "$bin"
        return 0
    fi
    local gobin
    gobin=$(go env GOBIN)
    [ -z "$gobin" ] && gobin="$(go env GOPATH)/bin"
    if [ -x "$gobin/$bin" ]; then
        echo "$gobin/$bin"
        return 0
    fi
    echo "==> installing $module@$version" >&2
    if go install "$module@$version" >/dev/null 2>&1 && [ -x "$gobin/$bin" ]; then
        echo "$gobin/$bin"
        return 0
    fi
    return 1
}

run_step "go vet" go vet ./...

if sc=$(resolve_tool staticcheck honnef.co/go/tools/cmd/staticcheck "$STATICCHECK_VERSION"); then
    run_step "staticcheck" "$sc" ./...
else
    skipped+=("staticcheck")
fi

rtmlint_bin=$(mktemp -d)/rtmlint
trap 'rm -rf "$(dirname "$rtmlint_bin")"' EXIT
run_step "build rtmlint" go build -o "$rtmlint_bin" ./cmd/rtmlint
if [ -x "$rtmlint_bin" ]; then
    run_step "rtmlint" "$rtmlint_bin" ./...
fi

if gvc=$(resolve_tool govulncheck golang.org/x/vuln/cmd/govulncheck "$GOVULNCHECK_VERSION"); then
    run_step "govulncheck" "$gvc" ./...
else
    skipped+=("govulncheck")
fi

if [ "${#skipped[@]}" -gt 0 ]; then
    echo >&2
    echo "WARNING: skipped (tool unavailable and install failed): ${skipped[*]}" >&2
    echo "WARNING: CI runs these — a clean run here does not guarantee a clean lint job." >&2
fi

if [ "$failed" -ne 0 ]; then
    echo >&2
    echo "lint failed" >&2
    exit 1
fi
echo
echo "lint OK${skipped:+ (with skips)}"
