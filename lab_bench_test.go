package racetrack

import (
	"context"
	"testing"
)

// BenchmarkLabKernelCache measures what the Lab's content-addressed
// kernel cache buys on repeated pricing of the same trace with the GA:
// without a supplied kernel every GA call summarizes the sequence into a
// fresh kernel and recomputes the four heuristic seed placements; the
// cached Lab reuses the kernel across calls, so the build happens once
// and the seeds come out of the kernel's per-(q, capacity) memo.
// Results are bit-identical; only the time differs. The legacy
// PlaceTrace wrapper runs over a cached default Lab, so repeated
// same-trace PlaceTrace calls follow the "cached" line.
func BenchmarkLabKernelCache(b *testing.B) {
	bench, err := GenerateBenchmark("gsm")
	if err != nil {
		b.Fatal(err)
	}
	seq := bench.Sequences[0]
	for _, s := range bench.Sequences {
		if s.Len() > seq.Len() {
			seq = s
		}
	}
	opts := PlaceOptions{
		Strategy: GA,
		DBCs:     4,
		GA: GAConfig{Mu: 16, Lambda: 16, Generations: 4, TournamentK: 4,
			MutationRate: 0.5, MoveWeight: 10, TransposeWeight: 10, PermuteWeight: 3, Seed: 1},
	}
	for _, mode := range []struct {
		name string
		cap  int
	}{
		{"cached", DefaultKernelCacheSize},
		{"uncached", 0},
	} {
		b.Run(mode.name, func(b *testing.B) {
			lab, err := New(WithWorkers(1), WithKernelCache(mode.cap))
			if err != nil {
				b.Fatal(err)
			}
			ctx := context.Background()
			// One warm-up call so the cached mode measures steady-state
			// hits, not the one-time kernel build.
			if _, err := lab.Place(ctx, seq, opts); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := lab.Place(ctx, seq, opts); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
