package racetrack

import (
	"testing"
)

// TestRegisterStrategyPublicHook registers a strategy through the public
// hook and resolves it everywhere strategies are accepted by name.
func TestRegisterStrategyPublicHook(t *testing.T) {
	name := "api-test-identity"
	err := RegisterStrategy(name, func(s *Sequence, q int, opts StrategyOptions) (*Placement, int64, error) {
		// Everything into DBC 0 in first-use order.
		p := &Placement{DBC: make([][]int, q)}
		seen := map[int]bool{}
		for _, a := range s.Accesses {
			if !seen[a.Var] {
				seen[a.Var] = true
				p.DBC[0] = append(p.DBC[0], a.Var)
			}
		}
		c, err := ShiftCost(s, p)
		return p, c, err
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := RegisterStrategy(name, nil); err == nil {
		t.Fatal("duplicate public registration accepted")
	}

	s, err := ParseSequence("a b a b c c a")
	if err != nil {
		t.Fatal(err)
	}
	res, err := PlaceTrace(s, PlaceOptions{Strategy: Strategy(name), DBCs: 4})
	if err != nil {
		t.Fatal(err)
	}
	if res.Placement.NumPlaced() != 3 {
		t.Fatalf("placed %d vars, want 3", res.Placement.NumPlaced())
	}
	if len(res.Placement.DBC[0]) != 3 {
		t.Fatalf("custom strategy not used: %s", res.Placement)
	}

	found := false
	for _, id := range RegisteredStrategies() {
		if id == Strategy(name) {
			found = true
		}
	}
	if !found {
		t.Fatal("custom strategy missing from RegisteredStrategies")
	}
}

// TestDMA2OptRegistered checks the built-in extension strategy works via
// name dispatch and never loses to DMA-SR.
func TestDMA2OptRegistered(t *testing.T) {
	b, err := GenerateBenchmark("gsm")
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range b.Sequences[:2] {
		sr, err := PlaceTrace(s, PlaceOptions{Strategy: DMASR, DBCs: 4})
		if err != nil {
			t.Fatal(err)
		}
		two, err := PlaceTrace(s, PlaceOptions{Strategy: DMA2Opt, DBCs: 4})
		if err != nil {
			t.Fatal(err)
		}
		if two.Shifts > sr.Shifts {
			t.Errorf("DMA-2opt %d > DMA-SR %d", two.Shifts, sr.Shifts)
		}
	}
}

// TestPlaceBenchmarkParallelDeterministic: PlaceBenchmark must agree with
// per-sequence PlaceTrace and be identical for any worker count.
func TestPlaceBenchmarkParallelDeterministic(t *testing.T) {
	b, err := GenerateBenchmark("adpcm")
	if err != nil {
		t.Fatal(err)
	}
	one, err := PlaceBenchmark(b, PlaceOptions{Strategy: DMASR, DBCs: 4, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	eight, err := PlaceBenchmark(b, PlaceOptions{Strategy: DMASR, DBCs: 4, Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	if one.TotalShifts != eight.TotalShifts {
		t.Fatalf("totals differ: %d vs %d", one.TotalShifts, eight.TotalShifts)
	}
	if len(one.Results) != len(b.Sequences) || len(eight.Results) != len(b.Sequences) {
		t.Fatalf("result counts: %d, %d, want %d", len(one.Results), len(eight.Results), len(b.Sequences))
	}
	var sum int64
	for i, s := range b.Sequences {
		if !one.Results[i].Placement.Equal(eight.Results[i].Placement) {
			t.Errorf("sequence %d: placements differ across worker counts", i)
		}
		single, err := PlaceTrace(s, PlaceOptions{Strategy: DMASR, DBCs: 4})
		if err != nil {
			t.Fatal(err)
		}
		if single.Shifts != one.Results[i].Shifts {
			t.Errorf("sequence %d: PlaceTrace %d vs PlaceBenchmark %d", i, single.Shifts, one.Results[i].Shifts)
		}
		sum += one.Results[i].Shifts
	}
	if sum != one.TotalShifts {
		t.Fatalf("TotalShifts %d != sum %d", one.TotalShifts, sum)
	}
}

func TestPlaceBenchmarkUnknownStrategy(t *testing.T) {
	b, err := ParseBenchmark("demo", "seq f\na b a\n")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := PlaceBenchmark(b, PlaceOptions{Strategy: "no-such", DBCs: 2}); err == nil {
		t.Fatal("unknown strategy accepted")
	}
}
