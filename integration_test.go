package racetrack_test

import (
	"testing"

	racetrack "repro"
	"repro/internal/placement"
)

// Integration: compile a program with the frontend, place each function
// with every strategy on every Table I configuration, and cross-check the
// analytic simulator against the cycle-accurate model on every
// combination.
func TestFullPipelineAcrossConfigs(t *testing.T) {
	bench, err := racetrack.CompileTrace("integration", `
func hot
  loop 12
    a = b + c
    d = a * b
  end
  loop 9
    e = f + g
    h = e * f
  end
end
func phased
  loop 6
    p0 += q0
  end
  loop 6
    p1 += q1
  end
  loop 6
    p2 += q2
  end
end
`)
	if err != nil {
		t.Fatal(err)
	}

	opts := racetrack.PlaceOptions{
		GA: placement.GAConfig{Mu: 12, Lambda: 12, Generations: 8, TournamentK: 4,
			MutationRate: 0.5, MoveWeight: 10, TransposeWeight: 10, PermuteWeight: 3, Seed: 1},
		RW: placement.RWConfig{Iterations: 80, Seed: 1},
	}

	for _, dbcs := range racetrack.TableIDBCCounts() {
		dev, err := racetrack.TableIDevice(dbcs)
		if err != nil {
			t.Fatal(err)
		}
		for _, strategy := range racetrack.Strategies() {
			for fi, seq := range bench.Sequences {
				o := opts
				o.Strategy = strategy
				o.DBCs = dbcs
				res, err := racetrack.PlaceTrace(seq, o)
				if err != nil {
					t.Fatalf("%s q=%d func %d: %v", strategy, dbcs, fi, err)
				}
				if err := res.Placement.Validate(seq, 0); err != nil {
					t.Fatalf("%s q=%d func %d: invalid placement: %v", strategy, dbcs, fi, err)
				}

				// Analytic simulation must agree with the placement cost.
				sr, err := racetrack.Simulate(dev, seq, res.Placement)
				if err != nil {
					t.Fatalf("%s q=%d func %d: simulate: %v", strategy, dbcs, fi, err)
				}
				if sr.Counts.Shifts != res.Shifts {
					t.Fatalf("%s q=%d func %d: analytic shifts %d != cost model %d",
						strategy, dbcs, fi, sr.Counts.Shifts, res.Shifts)
				}

				// Cycle-accurate serialized run must agree on counts.
				cs, err := racetrack.NewCycleSimulator(dbcs, 1.0)
				if err != nil {
					t.Fatal(err)
				}
				cyc, err := racetrack.SimulateCycles(cs, seq, res.Placement, true)
				if err != nil {
					t.Fatalf("%s q=%d func %d: cycles: %v", strategy, dbcs, fi, err)
				}
				if cyc.Counts != sr.Counts {
					t.Fatalf("%s q=%d func %d: cycle counts %+v != analytic %+v",
						strategy, dbcs, fi, cyc.Counts, sr.Counts)
				}
			}
		}
	}
}

// Integration: the bundled suite runs under every heuristic on every
// configuration without errors, and DMA-SR never loses to AFD-OFU in
// total over the whole suite.
func TestSuiteWideSanity(t *testing.T) {
	if testing.Short() {
		t.Skip("suite-wide pass is slow")
	}
	totals := map[racetrack.Strategy]int64{}
	for _, name := range racetrack.BenchmarkNames() {
		bench, err := racetrack.GenerateBenchmark(name)
		if err != nil {
			t.Fatal(err)
		}
		for _, seq := range bench.Sequences {
			for _, strategy := range []racetrack.Strategy{
				racetrack.AFDOFU, racetrack.DMAOFU, racetrack.DMAChen, racetrack.DMASR,
			} {
				res, err := racetrack.PlaceTrace(seq, racetrack.PlaceOptions{
					Strategy: strategy, DBCs: 4,
				})
				if err != nil {
					t.Fatalf("%s/%s: %v", name, strategy, err)
				}
				if err := res.Placement.Validate(seq, 0); err != nil {
					t.Fatalf("%s/%s: invalid placement: %v", name, strategy, err)
				}
				totals[strategy] += res.Shifts
			}
		}
	}
	if totals[racetrack.DMASR] >= totals[racetrack.AFDOFU] {
		t.Errorf("suite-wide DMA-SR (%d) did not beat AFD-OFU (%d)",
			totals[racetrack.DMASR], totals[racetrack.AFDOFU])
	}
	if totals[racetrack.DMASR] > totals[racetrack.DMAOFU] {
		t.Errorf("DMA-SR (%d) worse than DMA-OFU (%d) over the suite",
			totals[racetrack.DMASR], totals[racetrack.DMAOFU])
	}
}

// Integration: capacity-constrained placement + capacity-enforcing
// simulation round-trip on the 16-DBC device (64 words per DBC).
func TestCapacityEnforcedPipeline(t *testing.T) {
	bench, err := racetrack.GenerateBenchmark("8051")
	if err != nil {
		t.Fatal(err)
	}
	dev, err := racetrack.TableIDevice(16)
	if err != nil {
		t.Fatal(err)
	}
	dev.EnforceCapacity = true
	capacity := dev.Geometry.WordsPerDBC()
	for _, seq := range bench.Sequences {
		if seq.NumVars() > 16*capacity {
			continue // cannot fit at all
		}
		res, err := racetrack.PlaceTrace(seq, racetrack.PlaceOptions{
			Strategy: racetrack.DMASR, DBCs: 16, Capacity: capacity,
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := res.Placement.Validate(seq, capacity); err != nil {
			t.Fatalf("capacity violated: %v", err)
		}
		if _, err := racetrack.Simulate(dev, seq, res.Placement); err != nil {
			t.Fatalf("capacity-enforcing simulation rejected placement: %v", err)
		}
	}
}
