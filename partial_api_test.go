package racetrack

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro/internal/placement"
)

// TestPlacePartialOnDeadline pins Lab.Place's best-so-far contract: a
// strategy that returns its best placement together with the context's
// error yields a non-nil PlaceResult AND the error, with the shift
// accounting verified against the real breakdown.
func TestPlacePartialOnDeadline(t *testing.T) {
	blocker := func(s *Sequence, q int, opts StrategyOptions) (*Placement, int64, error) {
		p, c, err := placement.Place(placement.StrategyDMAOFU, s, q, placement.Options{Capacity: opts.Capacity})
		if err != nil {
			return nil, 0, err
		}
		<-opts.Context.Done()
		return p, c, opts.Context.Err()
	}
	lab, err := New(WithStrategy("blocker", blocker))
	if err != nil {
		t.Fatal(err)
	}
	s, err := ParseSequence("a b a b c a c a d d a")
	if err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	res, err := lab.Place(ctx, s, PlaceOptions{Strategy: "blocker"})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
	if res == nil {
		t.Fatal("deadline-bounded Place returned no best-so-far result")
	}
	want, werr := lab.Place(context.Background(), s, PlaceOptions{Strategy: DMAOFU})
	if werr != nil {
		t.Fatal(werr)
	}
	if res.Shifts != want.Shifts {
		t.Fatalf("partial Shifts = %d, want %d (the strategy's best-so-far was DMA-OFU's result)", res.Shifts, want.Shifts)
	}
}

// TestDefaultLabConstructionErrorFree pins the removal of the default
// Lab's construction panic: the lazy singleton builds cleanly and the
// flat API works through it.
func TestDefaultLabConstructionErrorFree(t *testing.T) {
	l, err := defaultLab()
	if err != nil {
		t.Fatalf("defaultLab: %v", err)
	}
	if l == nil {
		t.Fatal("defaultLab returned nil Lab")
	}
	l2, err := defaultLab()
	if err != nil || l2 != l {
		t.Fatalf("defaultLab not a stable singleton (err %v)", err)
	}
	if got := RegisteredStrategies(); len(got) == 0 {
		t.Fatal("flat RegisteredStrategies empty through the default Lab")
	}
}
