package racetrack

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"

	"repro/internal/energy"
	"repro/internal/engine"
	"repro/internal/placement"
	"repro/internal/sim"
)

// A Lab is a self-contained placement-experiment session: an instance-
// scoped strategy registry (seeded with the paper's six strategies plus
// the DMA-2opt/GA-2opt extensions), a default device and worker-pool
// size, a bounded content-addressed cost-kernel cache, and an optional
// progress callback. Multiple Labs coexist in one process without
// sharing registrations — two tenants can plug different strategies in
// under the same name — and every method takes a context, which cancels
// the remaining experiment cells promptly.
//
// The zero value is not usable; construct Labs with New. The legacy
// package-level functions (PlaceTrace, PlaceBenchmark, ...) are thin
// wrappers over a lazily initialized default Lab that shares the
// process-wide registry RegisterStrategy writes to.
type Lab struct {
	registry *placement.Registry
	workers  int
	dbcs     int
	islands  int
	device   DeviceConfig
	cache    *kernelCache
	cost     *placement.CostModel

	progress func(ProgressEvent)
	progMu   sync.Mutex
}

// A ProgressEvent reports one experiment cell (one sequence placed with
// one strategy at one DBC count) as it starts (Done == false) and
// finishes (Done == true, with the shift cost or the error). Cells is
// the batch size; single-sequence calls report one cell.
//
// An island-model GA run additionally reports intermediate events
// between migration rounds: Island >= 0 identifies the island,
// Generation its generation count and Shifts its best cost so far (Done
// stays false — the cell is still running). Every other event carries
// Island == -1.
type ProgressEvent struct {
	// Cell indexes the cell within its batch of Cells.
	Cell, Cells int
	// Sequence is the access sequence being placed.
	Sequence *Sequence
	// Strategy and DBCs identify the work item.
	Strategy Strategy
	DBCs     int
	// Island is the reporting island of an island-model GA progress
	// event, or -1 on regular cell events.
	Island int
	// Generation is the island's generation count on island events.
	Generation int
	// Done distinguishes started (false) from finished (true) events.
	Done bool
	// Shifts is the cell's shift cost, valid when Done && Err == nil
	// (on island events: the island's best cost so far).
	Shifts int64
	// Err is the cell's failure, if any, when Done.
	Err error
}

// New constructs a Lab from the functional options. Option errors — an
// invalid device or worker count, duplicate WithStrategy names — are
// joined into the returned error; a Lab is only returned when every
// option applied cleanly.
func New(opts ...Option) (*Lab, error) {
	cfg := &labConfig{
		workers:   runtime.NumCPU(),
		dbcs:      4,
		kernelCap: DefaultKernelCacheSize,
	}
	for _, opt := range opts {
		opt(cfg)
	}
	registry, err := placement.NewRegistry()
	if err != nil {
		// The builtin seed failed: a construction error, not a panic —
		// nothing else can be meaningfully applied without a registry.
		return nil, fmt.Errorf("racetrack: New: %w", err)
	}
	l := &Lab{
		registry: registry,
		workers:  cfg.workers,
		dbcs:     cfg.dbcs,
		islands:  cfg.islands,
		device:   cfg.device,
		cache:    newKernelCache(cfg.kernelCap),
		cost:     cfg.cost,
		progress: cfg.progress,
	}
	if !cfg.deviceSet {
		dev, err := sim.TableIConfig(cfg.dbcs)
		if err != nil {
			cfg.errs = append(cfg.errs, err)
		} else {
			l.device = dev
		}
	}
	if cfg.ports > 0 {
		l.device.Geometry.PortsPerTrack = cfg.ports
		if err := l.device.Geometry.Validate(); err != nil {
			cfg.errs = append(cfg.errs, fmt.Errorf("racetrack: WithPorts(%d): %w", cfg.ports, err))
		}
	}
	cfg.errs = append(cfg.errs, cfg.register(l.registry)...)
	if err := errors.Join(cfg.errs...); err != nil {
		return nil, fmt.Errorf("racetrack: New: %w", err)
	}
	return l, nil
}

// DefaultKernelCacheSize is the kernel-cache capacity of a Lab built
// without WithKernelCache.
const DefaultKernelCacheSize = 64

// RegisterStrategy plugs a custom placement strategy into this Lab's
// registry under the given name. Once registered, the strategy is
// resolvable by name in every method of this Lab — Place,
// PlaceBenchmark, SimulateBenchmark and the experiment drivers behind
// Run — but in no other Lab. fn must be safe for concurrent use (the
// experiment engine calls it from multiple workers) and deterministic
// for a fixed input if reproducible experiments are desired.
// Registration fails on an empty or already-taken name.
func (l *Lab) RegisterStrategy(name string, fn func(s *Sequence, q int, opts StrategyOptions) (*Placement, int64, error)) error {
	return l.registry.Register(placement.NewStrategy(name, fn))
}

// RegisteredStrategies lists every strategy resolvable in this Lab: the
// six paper strategies first, then plugged-in strategies (including the
// built-in DMA-2opt and GA-2opt extensions) sorted by name.
func (l *Lab) RegisteredStrategies() []Strategy { return l.registry.Registered() }

// Device returns the Lab's default simulated device (see WithDevice).
func (l *Lab) Device() DeviceConfig { return l.device }

// KernelCacheStats reports the Lab's content-addressed kernel-cache
// counters: hits (a content-equal sequence reused a cached kernel) and
// misses (a kernel was built). A Lab with the cache disabled
// (WithKernelCache(0)) reports zeros. This is the cache's observability
// hook — a serving front-end exports it as warm/cold metrics.
func (l *Lab) KernelCacheStats() (hits, misses int64) {
	if l.cache == nil {
		return 0, 0
	}
	return l.cache.stats()
}

// emit serializes progress delivery; the callback never needs its own
// locking even though cells finish on concurrent workers.
func (l *Lab) emit(ev ProgressEvent) {
	if l.progress == nil {
		return
	}
	l.progMu.Lock()
	l.progress(ev)
	l.progMu.Unlock()
}

// hooks wires this Lab's registry, kernel cache and progress callback
// into the experiment engine's batch layer.
func (l *Lab) hooks() engine.Hooks {
	h := engine.Hooks{Resolve: l.registry.Lookup}
	if l.cache != nil {
		h.Kernel = l.cache.kernel
	}
	if l.progress != nil {
		h.Progress = func(ev engine.Event) {
			l.emit(ProgressEvent{
				Cell: ev.Index, Cells: ev.Total,
				Sequence: ev.Sequence, Strategy: ev.Strategy, DBCs: ev.DBCs,
				Island: -1, Done: ev.Done, Shifts: ev.Shifts, Err: ev.Err,
			})
		}
	}
	return h
}

// withDefaults fills the Lab-level defaults into per-call options: the
// paper's DMA-OFU strategy, the Lab's device DBC count, the Lab's
// worker-pool size and the device's access-port count (the cost model
// follows the device unless the caller pins Ports explicitly).
func (l *Lab) withDefaults(opts PlaceOptions) PlaceOptions {
	if opts.Strategy == "" {
		opts.Strategy = DMAOFU
	}
	if opts.DBCs == 0 {
		opts.DBCs = l.dbcs
	}
	if opts.Workers == 0 {
		opts.Workers = l.workers
	}
	if opts.Ports == 0 {
		opts.Ports = l.device.Geometry.PortsPerTrack
	}
	if opts.GA.Islands == 0 {
		opts.GA.Islands = l.islands
	}
	if opts.GA.Islands > 1 && opts.GA.Workers == 0 {
		// The islands are the GA's parallel axis; give them the call's
		// worker budget (results are worker-count independent).
		opts.GA.Workers = opts.Workers
	}
	return opts
}

// costModelFor resolves the effective cost model for one call: an
// explicit PlaceOptions.Objective wins (its Table I parameters come
// from the call's effective DBC count), then the Lab's WithCostModel
// model, then nil — the raw shift default, which skips pricing
// entirely. opts must already carry the Lab defaults.
func (l *Lab) costModelFor(opts PlaceOptions) (*placement.CostModel, error) {
	if opts.Objective == "" {
		return l.cost, nil
	}
	obj, rate, err := placement.ParseObjective(opts.Objective)
	if err != nil {
		return nil, fmt.Errorf("racetrack: %w", err)
	}
	var params energy.Params
	if obj != placement.ObjectiveShifts {
		if params, err = energy.ForDBCs(opts.DBCs); err != nil {
			return nil, fmt.Errorf("racetrack: objective %q: %w", opts.Objective, err)
		}
	}
	m, err := placement.NewCostModel(obj, params, rate)
	if err != nil {
		return nil, fmt.Errorf("racetrack: %w", err)
	}
	return m, nil
}

// priceResult attaches the cost model's view to a finished result: the
// total tally priced into Cost and one priced entry per DBC. A nil
// model leaves the result unpriced — pricing is strictly a reporting
// add-on, never a behavioral one.
func priceResult(s *Sequence, res *PlaceResult, m *placement.CostModel) error {
	if m == nil {
		return nil
	}
	c := m.Price(placement.TallyOf(s, res.Shifts))
	res.Cost = &c
	tallies, err := placement.PerDBCTallies(s, res.Placement, res.PerDBC)
	if err != nil {
		return fmt.Errorf("racetrack: pricing per-DBC costs: %w", err)
	}
	res.PerDBCCost = make([]Cost, len(tallies))
	for i, t := range tallies {
		res.PerDBCCost[i] = m.Price(t)
	}
	return nil
}

// placeOne runs one strategy on one sequence and attributes the cost per
// DBC, asserting that the strategy's reported cost agrees with the cost
// model (a mismatch means a buggy — typically custom — strategy). With
// the kernel cache enabled both the strategy's cost evaluation and the
// attribution run through the cached kernel; costs are bit-identical to
// the replay path either way. When the effective cost model has more
// than one port, both the strategy and the attribution price the exact
// multi-port replay instead.
func (l *Lab) placeOne(ctx context.Context, s *Sequence, opts PlaceOptions) (*PlaceResult, error) {
	stOpts := opts.options()
	stOpts.Context = ctx
	model, err := l.costModelFor(opts)
	if err != nil {
		return nil, err
	}
	stOpts.Cost = model
	if l.cache != nil {
		stOpts.Kernel = l.cache.kernel(s)
	}
	if l.progress != nil && stOpts.GA.Islands > 1 && stOpts.GA.IslandProgress == nil {
		stOpts.GA.IslandProgress = func(island, generation int, best int64) {
			l.emit(ProgressEvent{
				Cells: 1, Sequence: s, Strategy: opts.Strategy, DBCs: opts.DBCs,
				Island: island, Generation: generation, Shifts: best,
			})
		}
	}
	p, c, err := l.registry.Place(opts.Strategy, s, opts.DBCs, stOpts)
	if err != nil {
		// A deadline-bounded search (GA, islands) surfaces its
		// best-so-far placement alongside the context's error
		// (GAContext's contract). Attribute and return it with the
		// error, so service callers whose budget expired get a usable
		// partial result instead of nothing.
		if p == nil || ctx.Err() == nil {
			return nil, err
		}
		b, berr := l.breakdownFor(s, p, stOpts, opts.DBCs)
		if berr != nil || b.Total != c {
			return nil, err
		}
		res := &PlaceResult{Placement: p, Shifts: b.Total, PerDBC: b.PerDBC}
		if perr := priceResult(s, res, model); perr != nil {
			return nil, err
		}
		return res, err
	}
	b, err := l.breakdownFor(s, p, stOpts, opts.DBCs)
	if err != nil {
		return nil, err
	}
	if b.Total != c {
		return nil, fmt.Errorf("racetrack: strategy %s reported %d shifts but the cost model attributes %d", opts.Strategy, c, b.Total)
	}
	res := &PlaceResult{Placement: p, Shifts: b.Total, PerDBC: b.PerDBC}
	if err := priceResult(s, res, model); err != nil {
		return nil, err
	}
	return res, nil
}

// Place computes a placement for one access sequence with this Lab's
// registry, defaults and kernel cache. The context aborts the call
// before the placement and interrupts the GA's search loop between
// generations (and between island migration rounds); custom strategies
// may honor it through StrategyOptions.Context.
//
// When the context expires mid-search, Place can return a non-nil
// result TOGETHER WITH the context's error: the search's best-so-far
// placement, with its exact attributed cost. Callers that can use a
// partial result (a placement service answering within a deadline)
// check the result; callers that cannot treat the error as fatal, as
// before.
func (l *Lab) Place(ctx context.Context, s *Sequence, opts PlaceOptions) (*PlaceResult, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	opts = l.withDefaults(opts)
	l.emit(ProgressEvent{Cells: 1, Sequence: s, Strategy: opts.Strategy, DBCs: opts.DBCs, Island: -1})
	res, err := l.placeOne(ctx, s, opts)
	done := ProgressEvent{Cells: 1, Sequence: s, Strategy: opts.Strategy, DBCs: opts.DBCs, Island: -1, Done: true, Err: err}
	if res != nil {
		done.Shifts = res.Shifts
	}
	l.emit(done)
	return res, err
}

// A PortfolioResult reports a finished strategy race (PlacePortfolio):
// the winning strategy, its placement with the per-DBC cost
// attribution, and every raced strategy's outcome. Winner, Shifts and
// Placement cost are deterministic for a fixed portfolio; an abandoned
// entry's Cost is only a certificate that its true cost exceeds the
// winner's (see StrategyOptions' package documentation of the race).
type PortfolioResult struct {
	// Winner is the first strategy in portfolio order achieving the
	// best exact cost.
	Winner Strategy
	// Placement is the winner's layout.
	Placement *Placement
	// Shifts is the winner's total shift cost; PerDBC attributes it.
	Shifts int64
	PerDBC []int64
	// Cost prices the winner under the call's effective cost model; nil
	// under the raw shift default. The race itself always prunes on the
	// shift incumbent — which by monotonicity is the scalarized bound —
	// so the winner is the scalarized argmin for every objective.
	Cost *Cost
	// Entries holds every strategy's outcome in portfolio order.
	Entries []PortfolioEntry
}

// PlacePortfolio races placement strategies against each other on one
// sequence: all strategies of opts.Portfolio (default: every strategy
// registered in this Lab) run concurrently on opts.Workers goroutines,
// sharing one cost-kernel build, and strategies whose cost provably
// exceeds the running incumbent abandon their pricing early. The winner
// — the best placement any strategy found, ties broken by portfolio
// order — is deterministic regardless of scheduling. Each strategy
// start/finish is reported through the progress callback with the
// strategy's portfolio index as the cell index.
func (l *Lab) PlacePortfolio(ctx context.Context, s *Sequence, opts PlaceOptions) (*PortfolioResult, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	opts = l.withDefaults(opts)
	stOpts := opts.options()
	model, err := l.costModelFor(opts)
	if err != nil {
		return nil, err
	}
	stOpts.Cost = model
	if l.cache != nil {
		stOpts.Kernel = l.cache.kernel(s)
	}
	pcfg := placement.PortfolioConfig{
		Strategies: opts.Portfolio,
		Registry:   l.registry,
		Workers:    opts.Workers,
		Options:    stOpts,
	}
	if l.progress != nil {
		pcfg.Progress = func(ev placement.PortfolioEvent) {
			l.emit(ProgressEvent{
				Cell: ev.Index, Cells: ev.Total, Sequence: s,
				Strategy: ev.Strategy, DBCs: opts.DBCs, Island: -1,
				Done: ev.Done, Shifts: ev.Cost,
			})
		}
	}
	r, err := placement.RacePortfolio(ctx, s, opts.DBCs, pcfg)
	if err != nil {
		return nil, fmt.Errorf("racetrack: place portfolio: %w", err)
	}
	b, err := l.breakdownFor(s, r.Placement, stOpts, opts.DBCs)
	if err != nil {
		return nil, err
	}
	if b.Total != r.Cost {
		return nil, fmt.Errorf("racetrack: portfolio winner %s reported %d shifts but the cost model attributes %d", r.Winner, r.Cost, b.Total)
	}
	res := &PortfolioResult{
		Winner: r.Winner, Placement: r.Placement,
		Shifts: r.Cost, PerDBC: b.PerDBC, Entries: r.Entries,
	}
	if model != nil {
		c := model.Price(placement.TallyOf(s, res.Shifts))
		res.Cost = &c
	}
	return res, nil
}

// PlaceBenchmark places every sequence of the benchmark with the
// selected strategy, fanning the sequences out on the experiment engine
// (opts.Workers, defaulting to the Lab's pool size). The results are
// identical for any worker count; cancelling the context aborts the
// remaining sequences promptly and returns the context's error.
func (l *Lab) PlaceBenchmark(ctx context.Context, b *Benchmark, opts PlaceOptions) (*BenchmarkPlaceResult, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	opts = l.withDefaults(opts)
	stOpts := opts.options()
	model, err := l.costModelFor(opts)
	if err != nil {
		return nil, err
	}
	stOpts.Cost = model
	jobs := make([]engine.PlaceJob, len(b.Sequences))
	for i, s := range b.Sequences {
		jobs[i] = engine.PlaceJob{Sequence: s, Strategy: opts.Strategy, DBCs: opts.DBCs, Options: stOpts}
	}
	out, err := engine.BatchPlaceWith(ctx, jobs, opts.Workers, l.hooks())
	if err != nil {
		return nil, fmt.Errorf("racetrack: place benchmark %s: %w", b.Name, err)
	}
	// Attribute each placement's cost per DBC on the same worker budget
	// (kernel-cache hits make this O(nnz) per sequence; without the
	// cache it is the replay pass the pre-session API also paid).
	results, err := engine.Map(ctx, len(out), opts.Workers, func(_ context.Context, i int) (*PlaceResult, error) {
		o := out[i]
		bd, err := l.breakdownFor(b.Sequences[i], o.Placement, stOpts, opts.DBCs)
		if err != nil {
			return nil, fmt.Errorf("sequence %d: %w", i, err)
		}
		if bd.Total != o.Shifts {
			return nil, fmt.Errorf("sequence %d: strategy %s reported %d shifts but the cost model attributes %d",
				i, opts.Strategy, o.Shifts, bd.Total)
		}
		r := &PlaceResult{Placement: o.Placement, Shifts: o.Shifts, PerDBC: bd.PerDBC}
		if err := priceResult(b.Sequences[i], r, model); err != nil {
			return nil, fmt.Errorf("sequence %d: %w", i, err)
		}
		return r, nil
	})
	if err != nil {
		return nil, fmt.Errorf("racetrack: place benchmark %s: %w", b.Name, err)
	}
	res := &BenchmarkPlaceResult{Benchmark: b, Results: results}
	for _, r := range results {
		res.TotalShifts += r.Shifts
	}
	if model != nil {
		total := &Cost{Objective: model.Objective()}
		for _, r := range results {
			total.Add(*r.Cost)
		}
		res.TotalCost = total
	}
	return res, nil
}

// breakdownFor attributes a placement's cost per DBC under the options'
// effective cost model: the exact multi-port replay when the options
// select more than one port, otherwise the kernel cache (when enabled)
// or the replay oracle.
func (l *Lab) breakdownFor(s *Sequence, p *Placement, stOpts StrategyOptions, q int) (*placement.CostBreakdown, error) {
	pm, err := stOpts.PortModelFor(q)
	if err != nil {
		return nil, err
	}
	if pm != nil {
		return placement.PortCostBreakdown(s, p, pm)
	}
	if l.cache != nil {
		return l.cache.kernel(s).Breakdown(p)
	}
	return placement.ShiftCostBreakdown(s, p)
}

// Simulate replays the sequence with the placement on the Lab's device
// and returns shift/read/write counts, latency and the energy breakdown.
func (l *Lab) Simulate(ctx context.Context, s *Sequence, p *Placement) (SimResult, error) {
	return l.SimulateOn(ctx, l.device, s, p)
}

// SimulateOn is Simulate on an explicit device configuration.
func (l *Lab) SimulateOn(ctx context.Context, dev DeviceConfig, s *Sequence, p *Placement) (SimResult, error) {
	if ctx != nil {
		if err := ctx.Err(); err != nil {
			return SimResult{}, err
		}
	}
	return sim.RunSequence(dev, s, p)
}

// SimulateBenchmark places (with opts.Strategy, defaulting to DMA-OFU as
// in PlaceTrace) and replays every sequence of the benchmark on the
// Lab's device, accumulating totals. The cells fan out on the experiment
// engine with opts.Workers workers; totals are bit-identical for any
// worker count.
func (l *Lab) SimulateBenchmark(ctx context.Context, b *Benchmark, opts PlaceOptions) (SimResult, error) {
	return l.SimulateBenchmarkOn(ctx, l.device, b, opts)
}

// SimulateBenchmarkOn is SimulateBenchmark on an explicit device
// configuration (the device's DBC count drives the placements, and its
// port count drives the cost model the placements are optimized under
// unless opts.Ports pins one).
func (l *Lab) SimulateBenchmarkOn(ctx context.Context, dev DeviceConfig, b *Benchmark, opts PlaceOptions) (SimResult, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if opts.Ports == 0 {
		opts.Ports = dev.Geometry.PortsPerTrack
	}
	opts = l.withDefaults(opts)
	stOpts := opts.options()
	if stOpts.Ports > 1 {
		// The strategies must optimize against the explicit device's
		// port layout, not the iso-capacity default — the two differ on
		// custom geometries.
		stOpts.PortDomains = dev.Geometry.WordsPerDBC()
	}
	jobs := make([]engine.SimJob, len(b.Sequences))
	for i, s := range b.Sequences {
		jobs[i] = engine.SimJob{Config: dev, Sequence: s, Strategy: opts.Strategy, Options: stOpts}
	}
	out, err := engine.BatchSimulateWith(ctx, jobs, opts.Workers, l.hooks())
	if err != nil {
		return SimResult{}, fmt.Errorf("racetrack: simulate benchmark %s: %w", b.Name, err)
	}
	var agg SimResult
	for _, r := range out {
		agg.Add(r)
	}
	return agg, nil
}

// defaultLab is the session behind the legacy package-level API. It
// shares the process-wide strategy registry (so RegisterStrategy remains
// process-visible, as it always was), keeps the legacy sequential
// default (PlaceOptions.Workers == 0 means one worker, exactly as
// before) and prices repeated traces through a kernel cache. The cache
// retains up to DefaultKernelCacheSize recently placed traces and their
// kernels for the process lifetime — bounded, but a memory footprint
// the stateless pre-session API did not have; long-running embedders
// that stream huge one-shot traces should build their own Lab with
// WithKernelCache(0) (or a small capacity) instead of the flat API.
//
// Construction can fail (a missing Table I row, an unseedable process
// registry); the error is retained and returned on every call instead
// of panicking — the flat wrappers surface it like any other call error.
var defaultLab = sync.OnceValues(func() (*Lab, error) {
	dev, err := sim.TableIConfig(4)
	if err != nil {
		return nil, fmt.Errorf("racetrack: default session device: %w", err)
	}
	reg, err := placement.DefaultRegistry()
	if err != nil {
		return nil, fmt.Errorf("racetrack: default session registry: %w", err)
	}
	return &Lab{
		registry: reg,
		workers:  1,
		dbcs:     4,
		device:   dev,
		cache:    newKernelCache(DefaultKernelCacheSize),
	}, nil
})
