package racetrack

import (
	"context"
	"errors"
	"strings"
	"sync"
	"testing"
)

// --- Construction ----------------------------------------------------

func TestNewOptionErrors(t *testing.T) {
	dummy := func(s *Sequence, q int, opts StrategyOptions) (*Placement, int64, error) {
		return &Placement{DBC: make([][]int, q)}, 0, nil
	}
	// Double registration of the same name in one Lab is a construction
	// error, reported joined — not a panic (the legacy extension
	// registration used to panic in init()).
	_, err := New(WithStrategy("dup", dummy), WithStrategy("dup", dummy))
	if err == nil {
		t.Fatal("double WithStrategy registration accepted")
	}
	if !strings.Contains(err.Error(), "dup") {
		t.Errorf("error does not name the duplicate: %v", err)
	}
	// Multiple independent option errors are all reported.
	_, err = New(WithWorkers(0), WithDevice(3), WithKernelCache(-1))
	if err == nil {
		t.Fatal("invalid options accepted")
	}
	for _, want := range []string{"WithWorkers", "DBC", "WithKernelCache"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("joined error missing %q: %v", want, err)
		}
	}
	// Shadowing a builtin name is likewise a construction error.
	if _, err := New(WithStrategy(string(DMASR), dummy)); err == nil {
		t.Fatal("shadowing a builtin accepted")
	}
}

func TestNewDefaults(t *testing.T) {
	lab, err := New()
	if err != nil {
		t.Fatal(err)
	}
	if got := lab.Device().Geometry.DBCs(); got != 4 {
		t.Errorf("default device DBCs = %d, want 4", got)
	}
	ids := lab.RegisteredStrategies()
	joined := ""
	for _, id := range ids {
		joined += string(id) + " "
	}
	for _, want := range []string{"AFD-OFU", "DMA-OFU", "DMA-Chen", "DMA-SR", "GA", "RW", "DMA-2opt", "GA-2opt"} {
		if !strings.Contains(joined, want) {
			t.Errorf("fresh Lab missing builtin %s (have %s)", want, joined)
		}
	}
	// A fresh Lab does not see strategies registered in the process-wide
	// registry, and vice versa. The global registration survives across
	// in-process test runs (-count=2), so tolerate the duplicate.
	err = RegisterStrategy("lab-test-global-only", func(s *Sequence, q int, opts StrategyOptions) (*Placement, int64, error) {
		return nil, 0, nil
	})
	if err != nil && !strings.Contains(err.Error(), "already registered") {
		t.Fatal(err)
	}
	s, _ := ParseSequence("a b a b")
	if _, err := lab.Place(context.Background(), s, PlaceOptions{Strategy: "lab-test-global-only"}); err == nil {
		t.Error("instance Lab resolved a process-global registration")
	}
	if err := lab.RegisterStrategy("lab-test-instance-only", func(s *Sequence, q int, opts StrategyOptions) (*Placement, int64, error) {
		return nil, 0, nil
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := PlaceTrace(s, PlaceOptions{Strategy: "lab-test-instance-only"}); err == nil {
		t.Error("default Lab resolved an instance registration")
	}
}

func TestWithDeviceSelectsDBCDefault(t *testing.T) {
	lab, err := New(WithDevice(8))
	if err != nil {
		t.Fatal(err)
	}
	s, _ := ParseSequence("a b a b c c d d e e f f g g h h i i")
	res, err := lab.Place(context.Background(), s, PlaceOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Placement.NumDBCs() != 8 {
		t.Errorf("placement used %d DBCs, want the device's 8", res.Placement.NumDBCs())
	}
}

// --- Golden compat: legacy package-level functions vs Lab methods ----

// labEquivalentSeqs is a mixed workload for the parity tests.
func compatBenchmark(t *testing.T) *Benchmark {
	t.Helper()
	b, err := GenerateBenchmark("adpcm")
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// TestCompatPlaceTrace: PlaceTrace must be bit-identical to Lab.Place on
// a fresh Lab for every strategy (same placement, same shifts, same
// per-DBC attribution) — the wrapper and the session path share one
// implementation.
func TestCompatPlaceTrace(t *testing.T) {
	lab, err := New(WithWorkers(1))
	if err != nil {
		t.Fatal(err)
	}
	b := compatBenchmark(t)
	opts := PlaceOptions{
		GA: GAConfig{Mu: 10, Lambda: 10, Generations: 5, TournamentK: 4,
			MutationRate: 0.5, MoveWeight: 10, TransposeWeight: 10, PermuteWeight: 3, Seed: 1},
		RW: RWConfig{Iterations: 60, Seed: 1},
	}
	for _, s := range b.Sequences[:3] {
		for _, strat := range append(Strategies(), DMA2Opt, GA2Opt) {
			o := opts
			o.Strategy = strat
			legacy, err := PlaceTrace(s, o)
			if err != nil {
				t.Fatalf("%s: PlaceTrace: %v", strat, err)
			}
			session, err := lab.Place(context.Background(), s, o)
			if err != nil {
				t.Fatalf("%s: Lab.Place: %v", strat, err)
			}
			if legacy.Shifts != session.Shifts {
				t.Errorf("%s: shifts %d (legacy) vs %d (Lab)", strat, legacy.Shifts, session.Shifts)
			}
			if !legacy.Placement.Equal(session.Placement) {
				t.Errorf("%s: placements differ", strat)
			}
			if len(legacy.PerDBC) != len(session.PerDBC) {
				t.Fatalf("%s: PerDBC lengths differ", strat)
			}
			for d := range legacy.PerDBC {
				if legacy.PerDBC[d] != session.PerDBC[d] {
					t.Errorf("%s: PerDBC[%d] %d vs %d", strat, d, legacy.PerDBC[d], session.PerDBC[d])
				}
			}
		}
	}
}

// TestCompatPlaceBenchmark: the legacy wrapper and the Lab method agree
// exactly, for any worker count, with and without the kernel cache.
func TestCompatPlaceBenchmark(t *testing.T) {
	b := compatBenchmark(t)
	legacy, err := PlaceBenchmark(b, PlaceOptions{Strategy: DMASR})
	if err != nil {
		t.Fatal(err)
	}
	for _, cacheCap := range []int{0, DefaultKernelCacheSize} {
		lab, err := New(WithWorkers(4), WithKernelCache(cacheCap))
		if err != nil {
			t.Fatal(err)
		}
		session, err := lab.PlaceBenchmark(context.Background(), b, PlaceOptions{Strategy: DMASR})
		if err != nil {
			t.Fatal(err)
		}
		if legacy.TotalShifts != session.TotalShifts {
			t.Fatalf("cache=%d: totals %d vs %d", cacheCap, legacy.TotalShifts, session.TotalShifts)
		}
		for i := range legacy.Results {
			if legacy.Results[i].Shifts != session.Results[i].Shifts {
				t.Errorf("cache=%d seq %d: shifts differ", cacheCap, i)
			}
			if !legacy.Results[i].Placement.Equal(session.Results[i].Placement) {
				t.Errorf("cache=%d seq %d: placements differ", cacheCap, i)
			}
			for d := range legacy.Results[i].PerDBC {
				if legacy.Results[i].PerDBC[d] != session.Results[i].PerDBC[d] {
					t.Errorf("cache=%d seq %d: PerDBC[%d] differs", cacheCap, i, d)
				}
			}
		}
	}
}

// TestCompatSimulate: Simulate and SimulateBenchmark agree with their
// Lab equivalents bit-for-bit (float latency and energy included).
func TestCompatSimulate(t *testing.T) {
	lab, err := New(WithWorkers(3))
	if err != nil {
		t.Fatal(err)
	}
	b := compatBenchmark(t)
	dev, err := TableIDevice(4)
	if err != nil {
		t.Fatal(err)
	}

	s := b.Sequences[0]
	res, err := PlaceTrace(s, PlaceOptions{Strategy: DMASR})
	if err != nil {
		t.Fatal(err)
	}
	legacySim, err := Simulate(dev, s, res.Placement)
	if err != nil {
		t.Fatal(err)
	}
	sessionSim, err := lab.SimulateOn(context.Background(), dev, s, res.Placement)
	if err != nil {
		t.Fatal(err)
	}
	if legacySim != sessionSim {
		t.Errorf("Simulate differs: %+v vs %+v", legacySim, sessionSim)
	}

	legacyB, err := SimulateBenchmark(dev, b, DMASR, PlaceOptions{})
	if err != nil {
		t.Fatal(err)
	}
	sessionB, err := lab.SimulateBenchmarkOn(context.Background(), dev, b, PlaceOptions{Strategy: DMASR})
	if err != nil {
		t.Fatal(err)
	}
	if legacyB != sessionB {
		t.Errorf("SimulateBenchmark differs: %+v vs %+v", legacyB, sessionB)
	}
}

// TestCompatExperiment: Lab.Run produces the same dataset as the same
// driver run at the same scale through a second Lab — the experiment
// path is deterministic and Lab-scoped state does not leak into results.
func TestCompatExperiment(t *testing.T) {
	cfg := QuickConfig()
	cfg.Benchmarks = []string{"anagram", "fuzzy"}
	cfg.MaxSequences = 2
	cfg.MaxSequenceLen = 250
	cfg.DBCCounts = []int{2, 4}
	cfg.GA = GAConfig{Mu: 10, Lambda: 10, Generations: 6, TournamentK: 4,
		MutationRate: 0.5, MoveWeight: 10, TransposeWeight: 10, PermuteWeight: 3, Seed: 1}
	cfg.RW = RWConfig{Iterations: 80, Seed: 1}

	lab1, err := New(WithWorkers(1))
	if err != nil {
		t.Fatal(err)
	}
	lab8, err := New(WithWorkers(8))
	if err != nil {
		t.Fatal(err)
	}
	r1, err := lab1.Run(context.Background(), ExperimentSpec{Experiment: ExperimentFig4, Config: cfg})
	if err != nil {
		t.Fatal(err)
	}
	r8, err := lab8.Run(context.Background(), ExperimentSpec{Experiment: ExperimentFig4, Config: cfg})
	if err != nil {
		t.Fatal(err)
	}
	if r1.Render() != r8.Render() {
		t.Error("Fig4 datasets differ across Labs/worker counts")
	}
	if len(r1.Fig4.Rows) != 2*2 {
		t.Errorf("rows = %d, want 4", len(r1.Fig4.Rows))
	}
	// Unknown experiment is a typed error.
	if _, err := lab1.Run(context.Background(), ExperimentSpec{Experiment: "nope"}); err == nil {
		t.Error("unknown experiment accepted")
	}
	// Table 1 renders without running cells.
	tr, err := lab1.Run(context.Background(), ExperimentSpec{Experiment: ExperimentTable1})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(tr.Render(), "Number of DBCs") {
		t.Error("Table1 render missing header")
	}
}

// TestExperimentConfigPartialMerge: a partial ExperimentConfig keeps
// every field the caller set; only the knobs with no usable zero value
// (DBC counts, GA/RW budgets) are filled from QuickConfig.
func TestExperimentConfigPartialMerge(t *testing.T) {
	lab, err := New(WithWorkers(2))
	if err != nil {
		t.Fatal(err)
	}
	cfg := ExperimentConfig{ // no DBCCounts: filled from QuickConfig
		Benchmarks:     []string{"anagram"},
		MaxSequences:   1,
		MaxSequenceLen: 250,
		GA: GAConfig{Mu: 8, Lambda: 8, Generations: 7, TournamentK: 4,
			MutationRate: 0.5, MoveWeight: 10, TransposeWeight: 10, PermuteWeight: 3, Seed: 1},
	}
	res, err := lab.Run(context.Background(), ExperimentSpec{Experiment: ExperimentConvergence, Config: cfg})
	if err != nil {
		t.Fatal(err)
	}
	// The caller's GA budget must survive the merge: the convergence
	// trajectories are one entry per generation.
	if len(res.Convergence.Seeded) != 7 {
		t.Errorf("seeded trajectory has %d generations, want the caller's 7", len(res.Convergence.Seeded))
	}
	if res.Convergence.Benchmark != "anagram" {
		t.Errorf("benchmark = %s, want the caller's anagram", res.Convergence.Benchmark)
	}

	// A caller-set GA seed survives even when the budget fields are
	// unset (filled from QuickConfig): different seeds must be able to
	// produce different cold-GA trajectories through the merge.
	run := func(seed int64) []int64 {
		cfg := ExperimentConfig{
			Benchmarks:     []string{"anagram"},
			MaxSequences:   1,
			MaxSequenceLen: 250,
			GA:             GAConfig{Seed: seed},
		}
		r, err := lab.Run(context.Background(), ExperimentSpec{Experiment: ExperimentConvergence, Config: cfg})
		if err != nil {
			t.Fatal(err)
		}
		return r.Convergence.Cold
	}
	a, b := run(1), run(99)
	same := len(a) == len(b)
	if same {
		for i := range a {
			if a[i] != b[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Error("caller-set GA.Seed was dropped by the config merge (identical cold trajectories for seeds 1 and 99)")
	}
}

// --- Instance scoping under concurrency ------------------------------

// TestTwoLabsSameNameConcurrent registers *different* strategies under
// the same name in two Labs and runs both concurrently; with the old
// process-global registry the second registration would have failed, and
// any cross-talk corrupts the per-Lab results. Run under -race this also
// exercises the registry and kernel-cache locking.
func TestTwoLabsSameNameConcurrent(t *testing.T) {
	// Strategy A: everything in DBC 0. Strategy B: round-robin.
	all0 := func(s *Sequence, q int, opts StrategyOptions) (*Placement, int64, error) {
		p := &Placement{DBC: make([][]int, q)}
		seen := map[int]bool{}
		for _, a := range s.Accesses {
			if !seen[a.Var] {
				seen[a.Var] = true
				p.DBC[0] = append(p.DBC[0], a.Var)
			}
		}
		c, err := ShiftCost(s, p)
		return p, c, err
	}
	roundRobin := func(s *Sequence, q int, opts StrategyOptions) (*Placement, int64, error) {
		p := &Placement{DBC: make([][]int, q)}
		seen := map[int]bool{}
		i := 0
		for _, a := range s.Accesses {
			if !seen[a.Var] {
				seen[a.Var] = true
				p.DBC[i%q] = append(p.DBC[i%q], a.Var)
				i++
			}
		}
		c, err := ShiftCost(s, p)
		return p, c, err
	}

	labA, err := New(WithWorkers(4), WithStrategy("mine", all0))
	if err != nil {
		t.Fatal(err)
	}
	labB, err := New(WithWorkers(4), WithStrategy("mine", roundRobin))
	if err != nil {
		t.Fatal(err)
	}
	b := compatBenchmark(t)

	var wg sync.WaitGroup
	results := make([]*BenchmarkPlaceResult, 2)
	errs := make([]error, 2)
	for i, lab := range []*Lab{labA, labB} {
		wg.Add(1)
		go func(i int, lab *Lab) {
			defer wg.Done()
			results[i], errs[i] = lab.PlaceBenchmark(context.Background(), b,
				PlaceOptions{Strategy: "mine", DBCs: 4})
		}(i, lab)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("lab %d: %v", i, err)
		}
	}
	// The two Labs must have used their own algorithms: all0 leaves DBCs
	// 1..3 empty on every sequence, roundRobin does not (the benchmark
	// has sequences with >= 4 variables).
	spread := false
	for i := range b.Sequences {
		a, bb := results[0].Results[i].Placement, results[1].Results[i].Placement
		if len(a.DBC[1])+len(a.DBC[2])+len(a.DBC[3]) != 0 {
			t.Fatalf("lab A sequence %d: strategy cross-talk (non-empty DBC 1..3)", i)
		}
		if len(bb.DBC[1])+len(bb.DBC[2])+len(bb.DBC[3]) > 0 {
			spread = true
		}
	}
	if !spread {
		t.Fatal("lab B never spread variables: wrong strategy resolved")
	}
}

// --- Cancellation ----------------------------------------------------

// TestPlaceBenchmarkCancellation cancels the context from the progress
// callback mid-benchmark; the call must return the context error
// promptly instead of running the remaining cells.
func TestPlaceBenchmarkCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var mu sync.Mutex
	finished := 0
	lab, err := New(WithWorkers(2), WithProgress(func(ev ProgressEvent) {
		if !ev.Done {
			return
		}
		mu.Lock()
		finished++
		mu.Unlock()
		cancel() // cancel as soon as the first cell completes
	}))
	if err != nil {
		t.Fatal(err)
	}
	b := compatBenchmark(t)
	if len(b.Sequences) < 4 {
		t.Fatalf("want a benchmark with many sequences, got %d", len(b.Sequences))
	}
	_, err = lab.PlaceBenchmark(ctx, b, PlaceOptions{Strategy: DMASR})
	if err == nil {
		t.Fatal("cancelled PlaceBenchmark returned no error")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("error is %v, want context.Canceled", err)
	}
	mu.Lock()
	defer mu.Unlock()
	if finished >= len(b.Sequences) {
		t.Errorf("all %d cells ran despite cancellation", finished)
	}

	// An already-cancelled context aborts Place/Run before any work.
	if _, err := lab.Place(ctx, b.Sequences[0], PlaceOptions{}); !errors.Is(err, context.Canceled) {
		t.Errorf("Place on cancelled ctx: %v", err)
	}
	if _, err := lab.Run(ctx, ExperimentSpec{Experiment: ExperimentFig4}); !errors.Is(err, context.Canceled) {
		t.Errorf("Run on cancelled ctx: %v", err)
	}
	if _, err := lab.SimulateBenchmark(ctx, b, PlaceOptions{}); !errors.Is(err, context.Canceled) {
		t.Errorf("SimulateBenchmark on cancelled ctx: %v", err)
	}
}

// --- Progress events -------------------------------------------------

func TestProgressEvents(t *testing.T) {
	type key struct {
		strategy Strategy
		done     bool
	}
	counts := map[key]int{}
	var costs []int64
	lab, err := New(WithWorkers(3), WithProgress(func(ev ProgressEvent) {
		// The Lab serializes callbacks: no locking here, -race verifies.
		counts[key{ev.Strategy, ev.Done}]++
		if ev.Done {
			if ev.Err != nil {
				t.Errorf("cell error: %v", ev.Err)
			}
			costs = append(costs, ev.Shifts)
		}
	}))
	if err != nil {
		t.Fatal(err)
	}
	b := compatBenchmark(t)
	res, err := lab.PlaceBenchmark(context.Background(), b, PlaceOptions{Strategy: DMASR})
	if err != nil {
		t.Fatal(err)
	}
	n := len(b.Sequences)
	if counts[key{DMASR, false}] != n || counts[key{DMASR, true}] != n {
		t.Errorf("events: %d started, %d finished, want %d each",
			counts[key{DMASR, false}], counts[key{DMASR, true}], n)
	}
	var sum int64
	for _, c := range costs {
		sum += c
	}
	if sum != res.TotalShifts {
		t.Errorf("progress costs sum %d != total %d", sum, res.TotalShifts)
	}

	// Single-sequence Place reports one cell.
	counts = map[key]int{}
	if _, err := lab.Place(context.Background(), b.Sequences[0], PlaceOptions{}); err != nil {
		t.Fatal(err)
	}
	if counts[key{DMAOFU, false}] != 1 || counts[key{DMAOFU, true}] != 1 {
		t.Errorf("single place events: %+v", counts)
	}
}

// --- Kernel cache ----------------------------------------------------

// TestKernelCacheContentAddressed: repeated placement of content-equal
// sequences — different pointers — hits the cache; results stay
// identical with the cache disabled.
func TestKernelCacheContentAddressed(t *testing.T) {
	text := "a b a b c a c a d d a i e f e f g e g h g i h i"
	lab, err := New(WithWorkers(1))
	if err != nil {
		t.Fatal(err)
	}
	noCache, err := New(WithWorkers(1), WithKernelCache(0))
	if err != nil {
		t.Fatal(err)
	}
	var want *PlaceResult
	for i := 0; i < 5; i++ {
		s, err := ParseSequence(text) // fresh pointer every iteration
		if err != nil {
			t.Fatal(err)
		}
		got, err := lab.Place(context.Background(), s, PlaceOptions{Strategy: DMA2Opt, DBCs: 2})
		if err != nil {
			t.Fatal(err)
		}
		cold, err := noCache.Place(context.Background(), s, PlaceOptions{Strategy: DMA2Opt, DBCs: 2})
		if err != nil {
			t.Fatal(err)
		}
		if got.Shifts != cold.Shifts || !got.Placement.Equal(cold.Placement) {
			t.Fatalf("iteration %d: cached and uncached results differ", i)
		}
		if want == nil {
			want = got
		} else if got.Shifts != want.Shifts {
			t.Fatalf("iteration %d: result drifted", i)
		}
	}
	hits, misses := lab.cache.stats()
	if misses != 1 {
		t.Errorf("misses = %d, want 1 (one distinct trace)", misses)
	}
	if hits < 4 {
		t.Errorf("hits = %d, want >= 4 (four repeated placements)", hits)
	}
	if noCache.cache != nil {
		t.Error("WithKernelCache(0) did not disable the cache")
	}
}

// TestKernelCacheEviction: the cache is bounded LRU.
func TestKernelCacheEviction(t *testing.T) {
	lab, err := New(WithWorkers(1), WithKernelCache(2))
	if err != nil {
		t.Fatal(err)
	}
	traces := []string{"a b a b", "c d c d c", "e f e f e e"}
	for _, text := range traces {
		s, _ := ParseSequence(text)
		if _, err := lab.Place(context.Background(), s, PlaceOptions{}); err != nil {
			t.Fatal(err)
		}
	}
	if n := lab.cache.lru.Len(); n != 2 {
		t.Errorf("cache holds %d kernels, capacity 2", n)
	}
	// The oldest trace was evicted: placing it again misses.
	_, missesBefore := lab.cache.stats()
	s, _ := ParseSequence(traces[0])
	if _, err := lab.Place(context.Background(), s, PlaceOptions{}); err != nil {
		t.Fatal(err)
	}
	if _, misses := lab.cache.stats(); misses != missesBefore+1 {
		t.Errorf("expected an eviction-induced miss, misses %d -> %d", missesBefore, misses)
	}
}

// --- SimulateBenchmark satellite fixes -------------------------------

// TestSimulateBenchmarkDefaultsAndWorkers: the legacy wrapper now
// applies the same defaults as PlaceTrace (a missing strategy means
// DMA-OFU, not an error) and honors opts.Workers deterministically.
func TestSimulateBenchmarkDefaultsAndWorkers(t *testing.T) {
	b := compatBenchmark(t)
	dev, err := TableIDevice(4)
	if err != nil {
		t.Fatal(err)
	}
	// Default strategy: empty Strategy must behave like DMA-OFU.
	defaulted, err := SimulateBenchmark(dev, b, "", PlaceOptions{})
	if err != nil {
		t.Fatalf("empty strategy rejected: %v", err)
	}
	explicit, err := SimulateBenchmark(dev, b, DMAOFU, PlaceOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if defaulted != explicit {
		t.Errorf("empty-strategy result %+v != DMA-OFU %+v", defaulted, explicit)
	}
	// Worker counts do not change the totals (bit-identical floats).
	parallel, err := SimulateBenchmark(dev, b, DMAOFU, PlaceOptions{Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	if parallel != explicit {
		t.Errorf("workers=8 result %+v != sequential %+v", parallel, explicit)
	}
}
