package racetrack

import (
	"context"
	"testing"
)

// TestLabWithPortsAlignsModelAndSimulator pins the point of the
// port-aware cost stack at the public surface: on a multi-port Lab the
// cost a strategy reports is exactly the shift count the simulator
// replays on the device — the objective the optimizer searched is the
// one the hardware realizes.
func TestLabWithPortsAlignsModelAndSimulator(t *testing.T) {
	lab, err := New(WithDevice(4), WithPorts(2), WithWorkers(2))
	if err != nil {
		t.Fatal(err)
	}
	if got := lab.Device().Geometry.PortsPerTrack; got != 2 {
		t.Fatalf("device ports = %d, want 2", got)
	}
	seq, err := ParseSequence("a b a c b a d c a b e d a c e b a d e c a b a")
	if err != nil {
		t.Fatal(err)
	}
	for _, strat := range []Strategy{AFDOFU, DMASR, DMA2Opt, RW} {
		res, err := lab.Place(context.Background(), seq, PlaceOptions{Strategy: strat})
		if err != nil {
			t.Fatalf("%s: %v", strat, err)
		}
		sim, err := lab.Simulate(context.Background(), seq, res.Placement)
		if err != nil {
			t.Fatalf("%s: %v", strat, err)
		}
		if sim.Counts.Shifts != res.Shifts {
			t.Fatalf("%s: placed for %d shifts but the device replays %d", strat, res.Shifts, sim.Counts.Shifts)
		}
		var per int64
		for _, c := range res.PerDBC {
			per += c
		}
		if per != res.Shifts {
			t.Fatalf("%s: per-DBC attribution %d != total %d", strat, per, res.Shifts)
		}
	}

	// An explicit single-port override on the same Lab prices the
	// paper's model and agrees with the flat single-port oracle.
	res, err := lab.Place(context.Background(), seq, PlaceOptions{Strategy: DMASR, Ports: 1})
	if err != nil {
		t.Fatal(err)
	}
	oracle, err := ShiftCost(seq, res.Placement)
	if err != nil {
		t.Fatal(err)
	}
	if res.Shifts != oracle {
		t.Fatalf("Ports=1 override reported %d, oracle %d", res.Shifts, oracle)
	}
}

// TestLabWithPortsExperiments runs the ports sweep and a multi-port
// Fig. 4 slice through the session API.
func TestLabWithPortsExperiments(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment drivers in -short")
	}
	lab, err := New(WithDevice(2), WithWorkers(2))
	if err != nil {
		t.Fatal(err)
	}
	cfg := QuickConfig()
	cfg.Benchmarks = []string{"anagram"}
	cfg.MaxSequences = 1
	cfg.MaxSequenceLen = 200
	cfg.GA = GAConfig{Mu: 6, Lambda: 6, Generations: 3, TournamentK: 2,
		MutationRate: 0.5, MoveWeight: 10, TransposeWeight: 10, PermuteWeight: 3, Seed: 1}
	cfg.RW = RWConfig{Iterations: 40, Seed: 1}
	res, err := lab.Run(context.Background(), ExperimentSpec{
		Experiment: ExperimentPorts, Config: cfg, MaxPorts: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Ports.Rows) != 2 {
		t.Fatalf("rows = %d, want 2", len(res.Ports.Rows))
	}
	for _, row := range res.Ports.Rows {
		if row.DMA2OptReopt > row.DMA2Opt {
			t.Errorf("ports %d: reopt %d worse than replay %d", row.Ports, row.DMA2OptReopt, row.DMA2Opt)
		}
	}

	// A multi-port Lab threads its device's port count into every
	// experiment config.
	mp, err := New(WithDevice(2), WithPorts(4), WithWorkers(2))
	if err != nil {
		t.Fatal(err)
	}
	f4, err := mp.Run(context.Background(), ExperimentSpec{Experiment: ExperimentFig4, Config: cfg})
	if err != nil {
		t.Fatal(err)
	}
	if len(f4.Fig4.Rows) == 0 {
		t.Fatal("no Fig. 4 rows")
	}
}

// TestWithPortsValidation checks the option's error paths.
func TestWithPortsValidation(t *testing.T) {
	if _, err := New(WithPorts(0)); err == nil {
		t.Error("WithPorts(0) accepted")
	}
	// 4-DBC Table I device has 256 domains per track.
	if _, err := New(WithDevice(4), WithPorts(257)); err == nil {
		t.Error("more ports than domains accepted")
	}
	if _, err := New(WithDevice(4), WithPorts(256)); err != nil {
		t.Errorf("WithPorts at the domain bound rejected: %v", err)
	}
}
