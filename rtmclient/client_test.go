package rtmclient

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"
)

func okBody() string {
	return `{"strategy":"DMA-OFU","dbcs":4,"fingerprint":"1","shifts":7,"per_dbc":[7],"placement":[["a"]]}`
}

// TestRetriesShedsThenSucceeds: two 429s then a 200 — the client backs
// off and lands the request.
func TestRetriesShedsThenSucceeds(t *testing.T) {
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) <= 2 {
			w.WriteHeader(http.StatusTooManyRequests)
			w.Write([]byte(`{"error":"overloaded"}`))
			return
		}
		w.Write([]byte(okBody()))
	}))
	defer ts.Close()

	cl := New(ts.URL, WithRetries(5), WithBackoff(time.Millisecond, 4*time.Millisecond), WithJitterSeed(1))
	res, err := cl.Place(context.Background(), &PlaceRequest{Trace: "a"})
	if err != nil {
		t.Fatal(err)
	}
	if res.Shifts != 7 || calls.Load() != 3 {
		t.Fatalf("shifts=%d calls=%d, want 7 after exactly 3 attempts", res.Shifts, calls.Load())
	}
}

// TestHonorsRetryAfter: the server's Retry-After hint stretches the
// backoff beyond the client's own (tiny) envelope.
func TestHonorsRetryAfter(t *testing.T) {
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) == 1 {
			w.Header().Set("Retry-After", "1")
			w.WriteHeader(http.StatusTooManyRequests)
			w.Write([]byte(`{"error":"overloaded"}`))
			return
		}
		w.Write([]byte(okBody()))
	}))
	defer ts.Close()

	cl := New(ts.URL, WithRetries(2), WithBackoff(time.Millisecond, 2*time.Millisecond), WithJitterSeed(1))
	start := time.Now()
	if _, err := cl.Place(context.Background(), &PlaceRequest{Trace: "a"}); err != nil {
		t.Fatal(err)
	}
	if el := time.Since(start); el < 900*time.Millisecond {
		t.Fatalf("retried after %v, want >= ~1s (the server's Retry-After)", el)
	}
}

// TestNoRetryOnClientError: a 400 is deterministic — retrying wastes
// server capacity, so the client must not.
func TestNoRetryOnClientError(t *testing.T) {
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		w.WriteHeader(http.StatusBadRequest)
		w.Write([]byte(`{"error":"missing trace"}`))
	}))
	defer ts.Close()

	cl := New(ts.URL, WithRetries(5), WithBackoff(time.Millisecond, 2*time.Millisecond))
	_, err := cl.Place(context.Background(), &PlaceRequest{})
	var se *StatusError
	if !errors.As(err, &se) || se.Code != http.StatusBadRequest {
		t.Fatalf("err = %v, want StatusError 400", err)
	}
	if se.Message != "missing trace" {
		t.Fatalf("Message = %q, want the server's error string", se.Message)
	}
	if calls.Load() != 1 {
		t.Fatalf("client retried a 400: %d attempts", calls.Load())
	}
}

// TestRetryBudgetExhausted: a persistently overloaded server eventually
// yields the last StatusError, not an infinite loop.
func TestRetryBudgetExhausted(t *testing.T) {
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		w.WriteHeader(http.StatusServiceUnavailable)
		w.Write([]byte(`{"error":"draining"}`))
	}))
	defer ts.Close()

	cl := New(ts.URL, WithRetries(3), WithBackoff(time.Millisecond, 2*time.Millisecond), WithJitterSeed(7))
	_, err := cl.Place(context.Background(), &PlaceRequest{Trace: "a"})
	var se *StatusError
	if !errors.As(err, &se) || se.Code != http.StatusServiceUnavailable {
		t.Fatalf("err = %v, want StatusError 503", err)
	}
	if got := calls.Load(); got != 4 {
		t.Fatalf("attempts = %d, want 4 (1 + 3 retries)", got)
	}
}

// TestContextBoundsBackoff: the caller's context cuts through a long
// Retry-After sleep.
func TestContextBoundsBackoff(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Retry-After", "30")
		w.WriteHeader(http.StatusTooManyRequests)
		w.Write([]byte(`{"error":"overloaded"}`))
	}))
	defer ts.Close()

	cl := New(ts.URL, WithRetries(5), WithBackoff(time.Millisecond, 2*time.Millisecond))
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := cl.Place(ctx, &PlaceRequest{Trace: "a"})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
	if el := time.Since(start); el > 2*time.Second {
		t.Fatalf("context took %v to cut the backoff", el)
	}
}
