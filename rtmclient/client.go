// Package rtmclient is the client for the rtmserve placement service:
// the JSON wire types of the /v1/place endpoint and a small HTTP client
// with exponential backoff. The client is built for an overloaded
// service — a 429 shed or a 503 drain is retried with jittered backoff,
// honoring the server's Retry-After hint and the caller's context, so a
// fleet of clients converges onto the server's capacity instead of
// hammering it.
//
//	cl := rtmclient.New("http://127.0.0.1:8723")
//	res, err := cl.Place(ctx, &rtmclient.PlaceRequest{
//		Trace:    "a b a b c a c a d d a",
//		Strategy: "DMA-OFU",
//		DBCs:     4,
//	})
package rtmclient

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"strconv"
	"sync"
	"time"
)

// PlaceRequest is the body of POST /v1/place.
type PlaceRequest struct {
	// Trace is the access sequence in the text token format
	// (racetrack.ParseSequence): whitespace-separated variable names, a
	// "!" suffix marking writes. Required.
	Trace string `json:"trace"`
	// Strategy names the placement strategy (default DMA-OFU).
	Strategy string `json:"strategy,omitempty"`
	// DBCs, Capacity, Ports mirror racetrack.PlaceOptions (0 = server
	// defaults).
	DBCs     int `json:"dbcs,omitempty"`
	Capacity int `json:"capacity,omitempty"`
	Ports    int `json:"ports,omitempty"`
	// Objective selects the cost objective the placement is priced
	// under — "shifts", "energy", "runtime" or "faulty:<rate>" with
	// rate in [0,1). Empty skips pricing (the response carries no
	// Cost). The objective never changes the placement itself, only
	// the pricing, but it is part of the server's cache identity.
	Objective string `json:"objective,omitempty"`
	// DeadlineMillis asks the server to bound this request's search; the
	// effective deadline is min(DeadlineMillis, the server's maximum). A
	// search that hits its deadline returns its best-so-far placement
	// with Partial set rather than failing.
	DeadlineMillis int64 `json:"deadline_ms,omitempty"`
	// Tenant attributes the request for per-tenant admission control;
	// empty means the default tenant.
	Tenant string `json:"tenant,omitempty"`
}

// PlaceResponse is the body of a successful (HTTP 200) placement.
type PlaceResponse struct {
	// Strategy and DBCs echo the effective (defaulted) options.
	Strategy string `json:"strategy"`
	DBCs     int    `json:"dbcs"`
	// Fingerprint is the trace's content fingerprint (hex) — the
	// coalescing and cache key.
	Fingerprint string `json:"fingerprint"`
	// Shifts is the placement's total shift cost; PerDBC attributes it.
	Shifts int64   `json:"shifts"`
	PerDBC []int64 `json:"per_dbc"`
	// Placement lists each DBC's variables in offset order, by name.
	Placement [][]string `json:"placement"`
	// Partial marks a deadline-bounded search's best-so-far result.
	Partial bool `json:"partial,omitempty"`
	// Cached marks a result served from the persistent placement cache.
	Cached bool `json:"cached,omitempty"`
	// Coalesced marks a request that shared another in-flight identical
	// request's computation instead of running its own.
	Coalesced bool `json:"coalesced,omitempty"`
	// Cost is the placement priced under the request's objective; nil
	// when the request asked for none.
	Cost *PlaceCost `json:"cost,omitempty"`
}

// PlaceCost is the wire form of a priced placement (racetrack.Cost).
type PlaceCost struct {
	// Objective is the canonical objective spec the cost was priced
	// under (e.g. "energy", "faulty:0.01").
	Objective string `json:"objective"`
	// Shifts, Reads and Writes are the nominal event totals.
	Shifts int64 `json:"shifts"`
	Reads  int64 `json:"reads"`
	Writes int64 `json:"writes"`
	// FaultShifts is the expected extra correction shifts (0 unless the
	// objective is fault-aware).
	FaultShifts float64 `json:"fault_shifts,omitempty"`
	// RuntimeNS, DynamicPJ and LeakagePJ are the derived dimensions
	// (0 under the raw shift objective).
	RuntimeNS float64 `json:"runtime_ns,omitempty"`
	DynamicPJ float64 `json:"dynamic_pj,omitempty"`
	LeakagePJ float64 `json:"leakage_pj,omitempty"`
	// Scalar is the objective's scalarization of the above.
	Scalar float64 `json:"scalar"`
}

// ErrorResponse is the body of a non-200 response.
type ErrorResponse struct {
	Error string `json:"error"`
}

// StatusError reports a non-200 server response the client did not (or
// could no longer) retry.
type StatusError struct {
	// Code is the HTTP status code.
	Code int
	// Message is the server's error string.
	Message string
	// RetryAfter is the server's Retry-After hint, if any.
	RetryAfter time.Duration
}

func (e *StatusError) Error() string {
	return fmt.Sprintf("rtmclient: server returned %d: %s", e.Code, e.Message)
}

// Client talks to one rtmserve instance.
type Client struct {
	base string
	http *http.Client

	maxRetries int
	baseDelay  time.Duration
	maxDelay   time.Duration

	mu  sync.Mutex
	rng *rand.Rand
}

// Option configures a Client.
type Option func(*Client)

// WithHTTPClient substitutes the underlying HTTP client (default:
// http.DefaultClient with no client-side timeout — deadlines travel in
// the request context).
func WithHTTPClient(h *http.Client) Option { return func(c *Client) { c.http = h } }

// WithRetries bounds the retry budget for shed (429) and draining (503)
// responses; n == 0 disables retrying. Default 5.
func WithRetries(n int) Option { return func(c *Client) { c.maxRetries = n } }

// WithBackoff sets the backoff envelope: the first retry waits about
// base (jittered), doubling up to max. A server Retry-After overrides
// the computed delay when it is longer. Defaults: 100ms base, 5s max.
func WithBackoff(base, max time.Duration) Option {
	return func(c *Client) { c.baseDelay, c.maxDelay = base, max }
}

// WithJitterSeed fixes the backoff jitter stream (tests).
func WithJitterSeed(seed int64) Option {
	return func(c *Client) { c.rng = rand.New(rand.NewSource(seed)) }
}

// New builds a client for the service at base (e.g.
// "http://127.0.0.1:8723").
func New(base string, opts ...Option) *Client {
	c := &Client{
		base:       base,
		http:       http.DefaultClient,
		maxRetries: 5,
		baseDelay:  100 * time.Millisecond,
		maxDelay:   5 * time.Second,
		rng:        rand.New(rand.NewSource(time.Now().UnixNano())),
	}
	for _, o := range opts {
		o(c)
	}
	return c
}

// Place submits one placement request, retrying overload sheds with
// jittered exponential backoff. The context bounds the whole call —
// requests in flight, backoff sleeps and all retries; on expiry the
// context's error is returned.
func (c *Client) Place(ctx context.Context, req *PlaceRequest) (*PlaceResponse, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	body, err := json.Marshal(req)
	if err != nil {
		return nil, fmt.Errorf("rtmclient: encoding request: %w", err)
	}
	var last error
	for attempt := 0; ; attempt++ {
		res, retryable, err := c.placeOnce(ctx, body)
		if err == nil {
			return res, nil
		}
		last = err
		if !retryable || attempt >= c.maxRetries {
			return nil, last
		}
		delay := c.backoff(attempt)
		if se, ok := err.(*StatusError); ok && se.RetryAfter > delay {
			delay = se.RetryAfter
		}
		t := time.NewTimer(delay)
		select {
		case <-ctx.Done():
			t.Stop()
			return nil, ctx.Err()
		case <-t.C:
		}
	}
}

// placeOnce runs one HTTP round trip. retryable marks overload-class
// failures (shed, draining, transport errors) worth backing off on;
// 4xx rejections and deadline failures are not retried — the same
// request would fail the same way.
func (c *Client) placeOnce(ctx context.Context, body []byte) (res *PlaceResponse, retryable bool, err error) {
	hreq, err := http.NewRequestWithContext(ctx, http.MethodPost, c.base+"/v1/place", bytes.NewReader(body))
	if err != nil {
		return nil, false, fmt.Errorf("rtmclient: %w", err)
	}
	hreq.Header.Set("Content-Type", "application/json")
	hres, err := c.http.Do(hreq)
	if err != nil {
		if ctx.Err() != nil {
			return nil, false, ctx.Err()
		}
		return nil, true, fmt.Errorf("rtmclient: %w", err)
	}
	defer hres.Body.Close()
	raw, err := io.ReadAll(io.LimitReader(hres.Body, 64<<20))
	if err != nil {
		return nil, true, fmt.Errorf("rtmclient: reading response: %w", err)
	}
	if hres.StatusCode == http.StatusOK {
		out := &PlaceResponse{}
		if err := json.Unmarshal(raw, out); err != nil {
			return nil, false, fmt.Errorf("rtmclient: decoding response: %w", err)
		}
		return out, false, nil
	}
	se := &StatusError{Code: hres.StatusCode}
	var er ErrorResponse
	if json.Unmarshal(raw, &er) == nil && er.Error != "" {
		se.Message = er.Error
	} else {
		se.Message = http.StatusText(hres.StatusCode)
	}
	if secs, aerr := strconv.Atoi(hres.Header.Get("Retry-After")); aerr == nil && secs >= 0 {
		se.RetryAfter = time.Duration(secs) * time.Second
	}
	overloaded := hres.StatusCode == http.StatusTooManyRequests ||
		hres.StatusCode == http.StatusServiceUnavailable
	return nil, overloaded, se
}

// backoff computes the jittered exponential delay for a retry attempt:
// a uniformly random fraction of base·2^attempt, capped at max ("full
// jitter" — desynchronizes a fleet of retrying clients).
func (c *Client) backoff(attempt int) time.Duration {
	d := c.baseDelay << uint(attempt)
	if d <= 0 || d > c.maxDelay {
		d = c.maxDelay
	}
	c.mu.Lock()
	f := c.rng.Float64()
	c.mu.Unlock()
	return time.Duration(f * float64(d))
}
