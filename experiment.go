package racetrack

import (
	"context"
	"fmt"

	"repro/internal/eval"
)

// The experiment drivers behind the paper's tables and figures, promoted
// from internal/eval to the public API: Lab.Run dispatches a typed
// ExperimentSpec and returns the driver's typed dataset. Each result
// type carries a Render method (the aligned text table) and, where the
// figure has one, a WriteCSV method.

// An Experiment names one driver of the paper's evaluation (section IV)
// or one of the repository's extension studies.
type Experiment string

// The available experiments.
const (
	// ExperimentTable1 renders Table I (the device parameters).
	ExperimentTable1 Experiment = "table1"
	// ExperimentFig4 regenerates the per-benchmark normalized shift
	// costs of Fig. 4 for all six strategies.
	ExperimentFig4 Experiment = "fig4"
	// ExperimentFig5 regenerates the Fig. 5 energy breakdown.
	ExperimentFig5 Experiment = "fig5"
	// ExperimentFig6 regenerates the Fig. 6 DBC-count trade-off.
	ExperimentFig6 Experiment = "fig6"
	// ExperimentLatency regenerates the section IV-C latency numbers.
	ExperimentLatency Experiment = "latency"
	// ExperimentHeadline computes the abstract's aggregate claims.
	ExperimentHeadline Experiment = "headline"
	// ExperimentLongGA runs the section IV-B long-GA optimality probe.
	ExperimentLongGA Experiment = "longga"
	// ExperimentPorts sweeps the access-port count (extension study).
	ExperimentPorts Experiment = "ports"
	// ExperimentConvergence records seeded-vs-cold GA trajectories.
	ExperimentConvergence Experiment = "convergence"
	// ExperimentTensor runs the LCTES'19-style tensor-contraction study.
	ExperimentTensor Experiment = "tensor"
	// ExperimentPortfolio races the whole strategy portfolio per
	// sequence (extension study; see Lab.PlacePortfolio).
	ExperimentPortfolio Experiment = "portfolio"
	// ExperimentPareto sweeps Table I configurations × port counts ×
	// fault rates, re-optimizes per geometry, and reports the Pareto
	// front over (runtime, energy, area) (extension study; DESIGN.md
	// §15).
	ExperimentPareto Experiment = "pareto"
)

// Experiments lists every experiment in presentation order (the order
// `rtmbench -exp all` runs them in).
func Experiments() []Experiment {
	return []Experiment{
		ExperimentTable1, ExperimentFig4, ExperimentFig5, ExperimentFig6,
		ExperimentPorts, ExperimentPareto, ExperimentPortfolio,
		ExperimentLatency, ExperimentHeadline, ExperimentLongGA,
		ExperimentTensor, ExperimentConvergence,
	}
}

// ExperimentConfig scales an experiment: DBC counts, benchmark subset,
// sequence caps, GA/RW budgets and the engine worker-pool size
// (Parallel). The zero value is replaced by QuickConfig; see also
// FullConfig for the paper's published budgets.
type ExperimentConfig = eval.Config

// QuickConfig returns the scaled-down experiment configuration: the
// three longest sequences per benchmark and small GA/RW budgets. Trends
// remain visible; absolute ratios are noisier than FullConfig.
func QuickConfig() ExperimentConfig { return eval.Quick() }

// FullConfig returns the paper's published experiment scale: all
// benchmarks, all sequences, GA with µ = λ = 100 for 200 generations, RW
// with 60 000 iterations. This is expensive (hours).
func FullConfig() ExperimentConfig { return eval.Full() }

// The typed experiment datasets (see internal/eval for the field
// documentation of each).
type (
	// Fig4Result is the Fig. 4 dataset: per-benchmark shift totals
	// normalized to GA, plus the geomeans the paper quotes.
	Fig4Result = eval.Fig4Result
	// Fig5Result is the Fig. 5 dataset: the normalized energy breakdown
	// and the savings the paper quotes.
	Fig5Result = eval.Fig5Result
	// Fig6Result is the Fig. 6 dataset: the DBC-count trade-off rows.
	Fig6Result = eval.Fig6Result
	// LatencyResult carries the section IV-C latency improvements.
	LatencyResult = eval.LatencyResult
	// HeadlineResult carries the abstract's aggregate claims.
	HeadlineResult = eval.HeadlineResult
	// LongGAResult is the long-GA optimality probe.
	LongGAResult = eval.LongGAResult
	// PortsResult is the access-port sweep dataset.
	PortsResult = eval.PortsResult
	// ConvergenceResult records GA best-cost trajectories.
	ConvergenceResult = eval.ConvergenceResult
	// TensorResult is the tensor-contraction study dataset.
	TensorResult = eval.TensorResult
	// PortfolioStudyResult is the portfolio-race study dataset.
	PortfolioStudyResult = eval.PortfolioStudyResult
	// ParetoResult is the configuration-sweep dataset: every swept
	// (DBCs, ports, fault rate) point with its priced (runtime, energy,
	// area) coordinates and the non-dominated front.
	ParetoResult = eval.ParetoResult
	// ParetoPoint is one swept configuration of ParetoResult.
	ParetoPoint = eval.ParetoPoint
)

// An ExperimentSpec selects and parameterizes one experiment for
// Lab.Run.
type ExperimentSpec struct {
	// Experiment selects the driver.
	Experiment Experiment
	// Config scales the run; the zero value means QuickConfig(). When
	// Config.Parallel is 0 the Lab's worker-pool size applies.
	Config ExperimentConfig
	// MaxPorts bounds the ports sweep (ExperimentPorts); default 4.
	MaxPorts int
	// Generations is the long-GA budget (ExperimentLongGA); default
	// 2000, the paper's probe length.
	Generations int
	// Benchmark selects the benchmark for ExperimentConvergence (empty:
	// the largest sequence of the whole suite).
	Benchmark string
	// ParetoPorts lists the port counts of the Pareto configuration
	// sweep (ExperimentPareto); default {1, 2}.
	ParetoPorts []int
	// FaultRates lists the position-error rates of the Pareto sweep
	// (ExperimentPareto), each in [0, 1); default {0, 0.01}.
	FaultRates []float64
}

// An ExperimentResult carries the typed dataset of the one experiment
// that ran; exactly the field matching the spec's Experiment is set.
type ExperimentResult struct {
	Experiment  Experiment
	Table1      string
	Fig4        *Fig4Result
	Fig5        *Fig5Result
	Fig6        *Fig6Result
	Latency     *LatencyResult
	Headline    *HeadlineResult
	LongGA      *LongGAResult
	Ports       *PortsResult
	Convergence *ConvergenceResult
	Tensor      *TensorResult
	Portfolio   *PortfolioStudyResult
	Pareto      *ParetoResult
}

// Render returns the experiment's aligned text table (the same output
// rtmbench prints).
func (r *ExperimentResult) Render() string {
	switch {
	case r.Table1 != "":
		return r.Table1
	case r.Fig4 != nil:
		return r.Fig4.Render()
	case r.Fig5 != nil:
		return r.Fig5.Render()
	case r.Fig6 != nil:
		return r.Fig6.Render()
	case r.Latency != nil:
		return r.Latency.Render()
	case r.Headline != nil:
		return r.Headline.Render()
	case r.LongGA != nil:
		return r.LongGA.Render()
	case r.Ports != nil:
		return r.Ports.Render()
	case r.Convergence != nil:
		return r.Convergence.Render()
	case r.Tensor != nil:
		return r.Tensor.Render()
	case r.Portfolio != nil:
		return r.Portfolio.Render()
	case r.Pareto != nil:
		return r.Pareto.Render()
	}
	return ""
}

// Run executes one experiment of the paper's evaluation pipeline with
// this Lab's registry, kernel cache, progress callback and worker pool.
// Cancelling the context aborts the remaining experiment cells promptly.
func (l *Lab) Run(ctx context.Context, spec ExperimentSpec) (*ExperimentResult, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	cfg := l.experimentConfig(spec.Config)
	res := &ExperimentResult{Experiment: spec.Experiment}
	var err error
	switch spec.Experiment {
	case ExperimentTable1:
		res.Table1 = eval.Table1Render()
	case ExperimentFig4:
		res.Fig4, err = eval.Fig4(ctx, cfg)
	case ExperimentFig5:
		res.Fig5, err = eval.Fig5(ctx, cfg)
	case ExperimentFig6:
		res.Fig6, err = eval.Fig6(ctx, cfg)
	case ExperimentLatency:
		res.Latency, err = eval.Latency(ctx, cfg)
	case ExperimentHeadline:
		res.Headline, err = eval.Headline(ctx, cfg)
	case ExperimentLongGA:
		gens := spec.Generations
		if gens <= 0 {
			gens = 2000
		}
		res.LongGA, err = eval.LongGA(ctx, cfg, gens)
	case ExperimentPorts:
		ports := spec.MaxPorts
		if ports <= 0 {
			ports = 4
		}
		res.Ports, err = eval.PortsSweep(ctx, cfg, ports)
	case ExperimentConvergence:
		res.Convergence, err = eval.Convergence(ctx, cfg, spec.Benchmark)
	case ExperimentTensor:
		res.Tensor, err = eval.Tensor(ctx, cfg)
	case ExperimentPortfolio:
		res.Portfolio, err = eval.Portfolio(ctx, cfg)
	case ExperimentPareto:
		res.Pareto, err = eval.Pareto(ctx, cfg, spec.ParetoPorts, spec.FaultRates)
	default:
		err = fmt.Errorf("racetrack: unknown experiment %q", spec.Experiment)
	}
	if err != nil {
		return nil, err
	}
	return res, nil
}

// experimentConfig normalizes a spec's config against the Lab: a zero
// config becomes QuickConfig wholesale; a partial config keeps every
// field the caller set and fills only the missing knobs that have no
// usable zero value (DBC counts, GA and RW budgets) from QuickConfig —
// the sequence caps stay as given, because 0 already means "no cap".
// An unset worker-pool size becomes the Lab's, and the Lab's
// registry/kernel-cache/progress hooks are wired into the engine batch
// layer (overriding any caller-supplied hooks — the Lab's scoping is
// the point of running through a Lab).
func (l *Lab) experimentConfig(cfg ExperimentConfig) ExperimentConfig {
	quick := eval.Quick()
	gaZero := cfg.GA.Mu == 0 && cfg.GA.Seed == 0 && cfg.GA.Workers == 0 &&
		cfg.GA.ImproveWeight == 0 && len(cfg.GA.Seeds) == 0 && cfg.GA.Port == nil &&
		cfg.GA.Islands == 0
	rwZero := cfg.RW.Iterations == 0 && cfg.RW.Seed == 0
	zero := len(cfg.DBCCounts) == 0 && cfg.Benchmarks == nil &&
		cfg.MaxSequences == 0 && cfg.MaxSequenceLen == 0 &&
		gaZero && rwZero && cfg.Capacity == 0 && cfg.Ports == 0
	switch {
	case zero:
		quick.Parallel = cfg.Parallel
		cfg = quick
	default:
		if len(cfg.DBCCounts) == 0 {
			cfg.DBCCounts = quick.DBCCounts
		}
		if cfg.GA.Mu == 0 {
			// Fill the budget knobs with Quick's small ones — an unset
			// GA must not turn a quick run into the paper's hours-long
			// 200-generation default — but keep every caller-set field
			// (seed, fitness workers, memetic weight, injected seeds).
			ga := quick.GA
			if cfg.GA.Seed != 0 {
				ga.Seed = cfg.GA.Seed
			}
			ga.Workers = cfg.GA.Workers
			ga.ImproveWeight = cfg.GA.ImproveWeight
			ga.Seeds = cfg.GA.Seeds
			ga.Capacity = cfg.GA.Capacity
			ga.Kernel = cfg.GA.Kernel
			ga.Port = cfg.GA.Port
			ga.Islands = cfg.GA.Islands
			ga.MigrationEvery = cfg.GA.MigrationEvery
			ga.Elites = cfg.GA.Elites
			ga.IslandProgress = cfg.GA.IslandProgress
			cfg.GA = ga
		}
		if cfg.RW.Iterations == 0 {
			rw := quick.RW
			if cfg.RW.Seed != 0 {
				rw.Seed = cfg.RW.Seed
			}
			rw.Capacity = cfg.RW.Capacity
			rw.Kernel = cfg.RW.Kernel
			rw.Port = cfg.RW.Port
			cfg.RW = rw
		}
	}
	if cfg.Parallel == 0 {
		cfg.Parallel = l.workers
	}
	// The cost model follows the Lab's device: a WithPorts Lab runs its
	// experiments under the multi-port objective unless the spec pins a
	// port count of its own.
	if cfg.Ports == 0 {
		cfg.Ports = l.device.Geometry.PortsPerTrack
	}
	cfg.Hooks = l.hooks()
	return cfg
}
