package racetrack

import (
	"strings"
	"testing"

	"repro/internal/placement"
)

func TestParseSequence(t *testing.T) {
	s, err := ParseSequence("a b! a c")
	if err != nil {
		t.Fatal(err)
	}
	if s.Len() != 4 || s.NumVars() != 3 {
		t.Fatalf("len=%d vars=%d", s.Len(), s.NumVars())
	}
	if s.Writes() != 1 {
		t.Errorf("writes = %d, want 1", s.Writes())
	}
	if _, err := ParseSequence("   "); err == nil {
		t.Error("empty sequence accepted")
	}
}

func TestParseBenchmark(t *testing.T) {
	b, err := ParseBenchmark("demo", "seq f\na b a\nseq g\nx y\n")
	if err != nil {
		t.Fatal(err)
	}
	if len(b.Sequences) != 2 {
		t.Fatalf("sequences = %d", len(b.Sequences))
	}
}

func TestPlaceTraceDefaults(t *testing.T) {
	s, _ := ParseSequence("a b a b c c d d")
	res, err := PlaceTrace(s, PlaceOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Placement.NumDBCs() != 4 {
		t.Errorf("default DBCs = %d, want 4", res.Placement.NumDBCs())
	}
	if res.Shifts < 0 {
		t.Errorf("negative shifts")
	}
	if len(res.PerDBC) != 4 {
		t.Errorf("per-DBC breakdown has %d entries", len(res.PerDBC))
	}
	var sum int64
	for _, c := range res.PerDBC {
		sum += c
	}
	if sum != res.Shifts {
		t.Errorf("per-DBC sum %d != total %d", sum, res.Shifts)
	}
}

func TestPlaceTraceAllStrategies(t *testing.T) {
	s, _ := ParseSequence("a b a b c a c a d d a i e f e f g e g h g i h i")
	for _, strat := range Strategies() {
		opts := PlaceOptions{Strategy: strat, DBCs: 2,
			GA: placement.GAConfig{Mu: 10, Lambda: 10, Generations: 5, TournamentK: 4,
				MutationRate: 0.5, MoveWeight: 10, TransposeWeight: 10, PermuteWeight: 3, Seed: 1},
			RW: placement.RWConfig{Iterations: 50, Seed: 1}}
		res, err := PlaceTrace(s, opts)
		if err != nil {
			t.Fatalf("%s: %v", strat, err)
		}
		if err := res.Placement.Validate(s, 0); err != nil {
			t.Fatalf("%s: invalid placement: %v", strat, err)
		}
	}
}

func TestSimulateEndToEnd(t *testing.T) {
	s, _ := ParseSequence("a b a b! c a c a d d a")
	res, err := PlaceTrace(s, PlaceOptions{Strategy: DMASR, DBCs: 2})
	if err != nil {
		t.Fatal(err)
	}
	dev, err := TableIDevice(2)
	if err != nil {
		t.Fatal(err)
	}
	sr, err := Simulate(dev, s, res.Placement)
	if err != nil {
		t.Fatal(err)
	}
	if sr.Counts.Shifts != res.Shifts {
		t.Errorf("sim shifts %d != cost model %d", sr.Counts.Shifts, res.Shifts)
	}
	if sr.Counts.Writes != 1 || sr.Counts.Reads != 10 {
		t.Errorf("reads/writes = %d/%d", sr.Counts.Reads, sr.Counts.Writes)
	}
	if sr.LatencyNS <= 0 || sr.Energy.TotalPJ() <= 0 {
		t.Error("missing latency/energy")
	}
}

func TestSimulateBenchmark(t *testing.T) {
	b, _ := ParseBenchmark("demo", "seq f\na b a b\nseq g\nx x y\n")
	dev, _ := TableIDevice(4)
	r, err := SimulateBenchmark(dev, b, DMAOFU, PlaceOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if r.Sequences != 2 || r.Counts.Accesses() != 7 {
		t.Errorf("sequences=%d accesses=%d", r.Sequences, r.Counts.Accesses())
	}
}

func TestTableIDevice(t *testing.T) {
	for _, q := range TableIDBCCounts() {
		dev, err := TableIDevice(q)
		if err != nil {
			t.Fatal(err)
		}
		if dev.Geometry.DBCs() != q {
			t.Errorf("device DBCs = %d, want %d", dev.Geometry.DBCs(), q)
		}
		p, err := EnergyParams(q)
		if err != nil {
			t.Fatal(err)
		}
		if p.DBCs != q {
			t.Errorf("params DBCs = %d", p.DBCs)
		}
	}
	if _, err := TableIDevice(3); err == nil {
		t.Error("invalid DBC count accepted")
	}
}

func TestStrategiesList(t *testing.T) {
	got := Strategies()
	if len(got) != 6 {
		t.Fatalf("%d strategies, want 6", len(got))
	}
	joined := ""
	for _, s := range got {
		joined += string(s) + " "
	}
	for _, want := range []string{"AFD-OFU", "DMA-OFU", "DMA-Chen", "DMA-SR", "GA", "RW"} {
		if !strings.Contains(joined, want) {
			t.Errorf("missing strategy %s", want)
		}
	}
}

func TestBankedCycleSimulator(t *testing.T) {
	cs, err := NewBankedCycleSimulator(4, 4, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	s, _ := ParseSequence("a b c d a b c d")
	p := &Placement{DBC: [][]int{{0}, {1}, {2}, {3}}}
	open, err := SimulateCycles(cs, s, p, false)
	if err != nil {
		t.Fatal(err)
	}
	cs2, _ := NewBankedCycleSimulator(4, 4, 1.0)
	serial, err := SimulateCycles(cs2, s, p, true)
	if err != nil {
		t.Fatal(err)
	}
	if open.Cycles > serial.Cycles {
		t.Errorf("open-loop (%d) slower than serialized (%d)", open.Cycles, serial.Cycles)
	}
	// Invalid bank splits.
	if _, err := NewBankedCycleSimulator(4, 3, 1.0); err == nil {
		t.Error("3 banks for 4 DBCs accepted")
	}
	if _, err := NewBankedCycleSimulator(4, 0, 1.0); err == nil {
		t.Error("0 banks accepted")
	}
	if _, err := NewBankedCycleSimulator(5, 1, 1.0); err == nil {
		t.Error("non-Table-I DBC count accepted")
	}
}

func TestFacadeRTMCache(t *testing.T) {
	c, err := NewRTMCache(RTMCacheConfig{Sets: 2, Ways: 2, LineBytes: 64,
		Policy: CacheInsertNearPort, Ports: 1})
	if err != nil {
		t.Fatal(err)
	}
	if hit, _, _ := c.Access(0, false); hit {
		t.Error("cold hit")
	}
	if hit, _, _ := c.Access(0, false); !hit {
		t.Error("warm miss")
	}
	if c.Stats().Accesses() != 2 {
		t.Errorf("accesses = %d", c.Stats().Accesses())
	}
}

func TestFacadeCompileTraceError(t *testing.T) {
	if _, err := CompileTrace("x", "not a program"); err == nil {
		t.Error("garbage accepted")
	}
}
