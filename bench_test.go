// Benchmarks regenerating every table and figure of the paper (quick
// scale; use cmd/rtmbench -full for the paper's complete budgets) plus the
// ablations called out in DESIGN.md §6 and micro-benchmarks of the core
// algorithms.
//
// Figure/table benches report the headline statistic of their experiment
// via b.ReportMetric, so `go test -bench .` doubles as a one-shot
// reproduction summary.
package racetrack

import (
	"context"
	"testing"

	"repro/internal/eval"
	"repro/internal/offsetstone"
	"repro/internal/placement"
	"repro/internal/sim"
	"repro/internal/soa"
	"repro/internal/tensor"
	"repro/internal/trace"
)

// benchCfg is the evaluation scale used by the figure benchmarks: the
// Quick scale trimmed a little further so a full -bench=. run stays in
// seconds.
func benchCfg() eval.Config {
	cfg := eval.Quick()
	cfg.MaxSequences = 1
	cfg.MaxSequenceLen = 1200
	return cfg
}

// BenchmarkTableI regenerates Table I (static data; the bench measures
// the render path and asserts nothing is lost).
func BenchmarkTableI(b *testing.B) {
	n := 0
	for i := 0; i < b.N; i++ {
		n += len(eval.Table1Render())
	}
	if n == 0 {
		b.Fatal("empty Table I")
	}
}

// BenchmarkFig4 regenerates the Fig. 4 experiment and reports the
// AFD-OFU/DMA-OFU shift-improvement geomeans the paper quotes
// (2.4x/2.9x/2.8x/1.7x for 2/4/8/16 DBCs).
func BenchmarkFig4(b *testing.B) {
	cfg := benchCfg()
	var res *eval.Fig4Result
	for i := 0; i < b.N; i++ {
		var err error
		res, err = eval.Fig4(context.Background(), cfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, q := range cfg.DBCCounts {
		b.ReportMetric(res.AFDOverDMA[q], "afd/dma-"+itoa(q)+"dbc")
	}
}

// BenchmarkFig5 regenerates the Fig. 5 energy experiment and reports the
// DMA-SR total-energy savings vs AFD-OFU (paper: 77/70/50/21 % for
// 2/4/8/16 DBCs).
func BenchmarkFig5(b *testing.B) {
	cfg := benchCfg()
	var res *eval.Fig5Result
	for i := 0; i < b.N; i++ {
		var err error
		res, err = eval.Fig5(context.Background(), cfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, q := range cfg.DBCCounts {
		b.ReportMetric(100*res.EnergySavings[placement.StrategyDMASR][q], "sr-save%-"+itoa(q)+"dbc")
	}
}

// BenchmarkFig6 regenerates the Fig. 6 DBC trade-off and reports the
// DMA-SR shift improvement per DBC count (diminishing with DBC count).
func BenchmarkFig6(b *testing.B) {
	cfg := benchCfg()
	var res *eval.Fig6Result
	for i := 0; i < b.N; i++ {
		var err error
		res, err = eval.Fig6(context.Background(), cfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, row := range res.Rows {
		b.ReportMetric(row.ShiftImprovement, "shift-imp-"+itoa(row.DBCs)+"dbc")
	}
}

// BenchmarkLatency regenerates the section IV-C latency numbers and
// reports the DMA-SR improvement per DBC count (paper: 70.1/62/37.7/
// 14.6 %).
func BenchmarkLatency(b *testing.B) {
	cfg := benchCfg()
	var res *eval.LatencyResult
	for i := 0; i < b.N; i++ {
		var err error
		res, err = eval.Latency(context.Background(), cfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, q := range cfg.DBCCounts {
		b.ReportMetric(100*res.Improvement[placement.StrategyDMASR][q], "sr-lat%-"+itoa(q)+"dbc")
	}
}

// BenchmarkHeadline regenerates the abstract's aggregates (paper: 4.3x
// shifts, 46 % latency, 55 % energy).
func BenchmarkHeadline(b *testing.B) {
	cfg := benchCfg()
	var res *eval.HeadlineResult
	for i := 0; i < b.N; i++ {
		var err error
		res, err = eval.Headline(context.Background(), cfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(res.ShiftImprovement, "shift-x")
	b.ReportMetric(100*res.LatencyReduction, "latency-%")
	b.ReportMetric(100*res.EnergyReduction, "energy-%")
}

// BenchmarkLongGA runs a scaled version of the section IV-B optimality
// probe (paper: 2000 generations; here 60 to keep -bench=. fast) and
// reports the heuristic-to-GA gap.
func BenchmarkLongGA(b *testing.B) {
	cfg := benchCfg()
	var res *eval.LongGAResult
	for i := 0; i < b.N; i++ {
		var err error
		res, err = eval.LongGA(context.Background(), cfg, 60)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(100*res.GapFraction, "heuristic-gap-%")
}

// --- Ablations (DESIGN.md §6) ---------------------------------------

// ablationWorkload returns a mid-size sequence for operator ablations.
func ablationWorkload(b *testing.B) *trace.Sequence {
	b.Helper()
	bench, err := offsetstone.Generate("gsm")
	if err != nil {
		b.Fatal(err)
	}
	seq := bench.Sequences[0]
	for _, s := range bench.Sequences {
		if s.Len() > seq.Len() {
			seq = s
		}
	}
	return seq
}

func gaBase(seed int64) placement.GAConfig {
	return placement.GAConfig{Mu: 24, Lambda: 24, Generations: 25,
		TournamentK: 4, MutationRate: 0.5,
		MoveWeight: 10, TransposeWeight: 10, PermuteWeight: 3, Seed: seed}
}

// BenchmarkAblationGASeeding compares the paper's heuristic-seeded GA
// against a cold-start GA at the same budget.
func BenchmarkAblationGASeeding(b *testing.B) {
	seq := ablationWorkload(b)
	for _, mode := range []struct {
		name string
		cold bool
	}{{"seeded", false}, {"cold", true}} {
		b.Run(mode.name, func(b *testing.B) {
			var cost int64
			for i := 0; i < b.N; i++ {
				_, c, err := placement.Place(placement.StrategyGA, seq, 4,
					placement.Options{GA: gaBase(int64(i) + 1), DisableGASeeding: mode.cold})
				if err != nil {
					b.Fatal(err)
				}
				cost = c
			}
			b.ReportMetric(float64(cost), "shifts")
		})
	}
}

// BenchmarkAblationMutationSkew compares the paper's 10:10:3 mutation
// skew against uniform operator selection.
func BenchmarkAblationMutationSkew(b *testing.B) {
	seq := ablationWorkload(b)
	for _, mode := range []struct {
		name    string
		permute int
	}{{"skewed-10-10-3", 3}, {"uniform-10-10-10", 10}} {
		b.Run(mode.name, func(b *testing.B) {
			var cost int64
			for i := 0; i < b.N; i++ {
				cfg := gaBase(int64(i) + 1)
				cfg.PermuteWeight = mode.permute
				opts := placement.Options{GA: cfg}
				_, c, err := placement.Place(placement.StrategyGA, seq, 4, opts)
				if err != nil {
					b.Fatal(err)
				}
				cost = c
			}
			b.ReportMetric(float64(cost), "shifts")
		})
	}
}

// BenchmarkAblationDisjointIntra compares keeping the disjoint DBC in
// access order (Algorithm 1) against also re-running ShiftsReduce on it.
func BenchmarkAblationDisjointIntra(b *testing.B) {
	seq := ablationWorkload(b)
	a := trace.Analyze(seq)
	for _, mode := range []struct {
		name string
		from func(k int) int
	}{
		{"keep-access-order", func(k int) int { return k }},
		{"reorder-all-dbcs", func(int) int { return 0 }},
	} {
		b.Run(mode.name, func(b *testing.B) {
			var cost int64
			for i := 0; i < b.N; i++ {
				r, err := placement.DMA(a, 4, 0)
				if err != nil {
					b.Fatal(err)
				}
				p := placement.ApplyIntra(r.Placement, mode.from(r.DisjointDBCs), 4,
					placement.ShiftsReduce, seq, a)
				c, err := placement.ShiftCost(seq, p)
				if err != nil {
					b.Fatal(err)
				}
				cost = c
			}
			b.ReportMetric(float64(cost), "shifts")
		})
	}
}

// BenchmarkAblationAdmissionRule compares the paper's strict Av > sum
// admission against admitting ties (Av >= sum).
func BenchmarkAblationAdmissionRule(b *testing.B) {
	seq := ablationWorkload(b)
	a := trace.Analyze(seq)
	for _, mode := range []struct {
		name string
		ties bool
	}{{"strict", false}, {"admit-ties", true}} {
		b.Run(mode.name, func(b *testing.B) {
			var cost int64
			for i := 0; i < b.N; i++ {
				r, err := placement.DMAWithRule(a, 4, 0, mode.ties)
				if err != nil {
					b.Fatal(err)
				}
				c, err := placement.ShiftCost(seq, r.Placement)
				if err != nil {
					b.Fatal(err)
				}
				cost = c
			}
			b.ReportMetric(float64(cost), "shifts")
		})
	}
}

// BenchmarkAblationMultiSet compares plain DMA against the future-work
// multi-set extraction (paper section VI) on the synthetic suite.
func BenchmarkAblationMultiSet(b *testing.B) {
	seq := ablationWorkload(b)
	a := trace.Analyze(seq)
	for _, mode := range []struct {
		name  string
		multi bool
	}{{"single-set", false}, {"multi-set", true}} {
		b.Run(mode.name, func(b *testing.B) {
			var cost int64
			for i := 0; i < b.N; i++ {
				var p *placement.Placement
				if mode.multi {
					r, err := placement.DMAMulti(a, 4, 0, 0)
					if err != nil {
						b.Fatal(err)
					}
					p = r.Placement
				} else {
					r, err := placement.DMA(a, 4, 0)
					if err != nil {
						b.Fatal(err)
					}
					p = r.Placement
				}
				c, err := placement.ShiftCost(seq, p)
				if err != nil {
					b.Fatal(err)
				}
				cost = c
			}
			b.ReportMetric(float64(cost), "shifts")
		})
	}
}

// BenchmarkAblationTwoOpt measures what a 2-opt polish pass (the TSP view
// of offset assignment, the paper's ref [4]) adds on top of each intra
// heuristic.
func BenchmarkAblationTwoOpt(b *testing.B) {
	seq := ablationWorkload(b)
	a := trace.Analyze(seq)
	for _, mode := range []struct {
		name   string
		intra  placement.IntraHeuristic
		polish bool
	}{
		{"sr", placement.ShiftsReduce, false},
		{"sr+2opt", placement.ShiftsReduce, true},
		{"chen", placement.Chen, false},
		{"chen+2opt", placement.Chen, true},
	} {
		b.Run(mode.name, func(b *testing.B) {
			var cost int64
			for i := 0; i < b.N; i++ {
				r, err := placement.DMA(a, 4, 0)
				if err != nil {
					b.Fatal(err)
				}
				p := placement.ApplyIntra(r.Placement, r.DisjointDBCs, 4, mode.intra, seq, a)
				if mode.polish {
					p = placement.ApplyIntra(p, r.DisjointDBCs, 4, placement.TwoOpt, seq, a)
				}
				c, err := placement.ShiftCost(seq, p)
				if err != nil {
					b.Fatal(err)
				}
				cost = c
			}
			b.ReportMetric(float64(cost), "shifts")
		})
	}
}

// BenchmarkPortsSweep regenerates the access-port extension experiment
// (section II-B generalization): DMA-SR improvement over AFD-OFU per
// port count.
func BenchmarkPortsSweep(b *testing.B) {
	cfg := benchCfg()
	cfg.DBCCounts = []int{4}
	var res *eval.PortsResult
	for i := 0; i < b.N; i++ {
		var err error
		res, err = eval.PortsSweep(context.Background(), cfg, 4)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, row := range res.Rows {
		b.ReportMetric(row.Improved, "imp-"+itoa(row.Ports)+"port")
	}
}

// BenchmarkAblationRuntimeSwap compares static placement (the paper's
// approach) against runtime data swapping (ref [20]) and the combination,
// on the same workload and device. The paper's argument: placement gets
// the shifts down without the swap-induced write traffic.
func BenchmarkAblationRuntimeSwap(b *testing.B) {
	seq := ablationWorkload(b)
	simCfg, err := sim.TableIConfig(4)
	if err != nil {
		b.Fatal(err)
	}
	a := trace.Analyze(seq)
	// Naive layout for the dynamic-only variant: first-use round-robin.
	naive := placement.NewEmpty(4)
	for i, v := range a.ByFirstUse() {
		naive.DBC[i%4] = append(naive.DBC[i%4], v)
	}
	srPlace, _, err := placement.Place(placement.StrategyDMASR, seq, 4, placement.Options{})
	if err != nil {
		b.Fatal(err)
	}
	for _, mode := range []struct {
		name string
		p    *placement.Placement
		swap bool
	}{
		{"static-naive", naive, false},
		{"dynamic-swap", naive, true},
		{"static-dma-sr", srPlace, false},
		{"combined", srPlace, true},
	} {
		b.Run(mode.name, func(b *testing.B) {
			var shifts, writes int64
			for i := 0; i < b.N; i++ {
				r, err := sim.RunSequenceSwapping(simCfg, seq, mode.p,
					sim.SwapConfig{Enable: mode.swap})
				if err != nil {
					b.Fatal(err)
				}
				shifts, writes = r.Counts.Shifts, r.Counts.Writes
			}
			b.ReportMetric(float64(shifts), "shifts")
			b.ReportMetric(float64(writes), "writes")
		})
	}
}

// --- Micro-benchmarks -------------------------------------------------

func BenchmarkShiftCostEval(b *testing.B) {
	seq := ablationWorkload(b)
	a := trace.Analyze(seq)
	r, err := placement.DMA(a, 4, 0)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := placement.ShiftCost(seq, r.Placement); err != nil {
			b.Fatal(err)
		}
	}
	b.SetBytes(int64(seq.Len()))
}

func BenchmarkDMAHeuristic(b *testing.B) {
	seq := ablationWorkload(b)
	a := trace.Analyze(seq)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := placement.DMA(a, 4, 0); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkChenIntra(b *testing.B) {
	seq := ablationWorkload(b)
	a := trace.Analyze(seq)
	vars := a.ByFirstUse()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		placement.Chen(vars, seq, a)
	}
}

func BenchmarkShiftsReduceIntra(b *testing.B) {
	seq := ablationWorkload(b)
	a := trace.Analyze(seq)
	vars := a.ByFirstUse()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		placement.ShiftsReduce(vars, seq, a)
	}
}

func BenchmarkCycleSimSerialized(b *testing.B) {
	seq := ablationWorkload(b)
	a := trace.Analyze(seq)
	r, err := placement.DMA(a, 4, 0)
	if err != nil {
		b.Fatal(err)
	}
	cs, err := NewCycleSimulator(4, 1.0)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cs.Reset()
		if _, err := SimulateCycles(cs, seq, r.Placement, true); err != nil {
			b.Fatal(err)
		}
	}
	b.SetBytes(int64(seq.Len()))
}

// BenchmarkGALocalImprove compares the paper's GA against the memetic
// variant with the delta-evaluated local-improvement mutation enabled
// (GAConfig.ImproveWeight, the "GA-2opt" registry strategy) at the same
// generation budget: shifts should drop for a modest ns/op premium.
func BenchmarkGALocalImprove(b *testing.B) {
	seq := ablationWorkload(b)
	for _, mode := range []struct {
		name    string
		improve int
	}{{"off", 0}, {"on", 3}} {
		b.Run(mode.name, func(b *testing.B) {
			var cost int64
			for i := 0; i < b.N; i++ {
				cfg := gaBase(int64(i) + 1)
				cfg.ImproveWeight = mode.improve
				_, c, err := placement.Place(placement.StrategyGA, seq, 4,
					placement.Options{GA: cfg})
				if err != nil {
					b.Fatal(err)
				}
				cost = c
			}
			b.ReportMetric(float64(cost), "shifts")
		})
	}
}

// BenchmarkGAGeneration measures the steady-state cost of one GA
// generation: the cost kernel is built once outside the timer, exactly
// as the engine batch layer provides it to every GA cell in production
// (the build amortizes over a run's hundreds of generations, not over
// one).
func BenchmarkGAGeneration(b *testing.B) {
	seq := ablationWorkload(b)
	cfg := gaBase(1)
	cfg.Generations = 1
	cfg.Kernel = placement.NewCostKernel(seq)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cfg.Seed = int64(i) + 1
		if _, err := placement.GA(seq, 4, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRTMCacheAccess(b *testing.B) {
	c, err := NewRTMCache(RTMCacheConfig{Sets: 8, Ways: 8, LineBytes: 64,
		Policy: CacheInsertNearPort, Ports: 1})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := c.Access(int64(i*61%4096)*64, i%5 == 0); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(100*c.Stats().HitRatio(), "hit%")
}

func BenchmarkSOALiao(b *testing.B) {
	seq := ablationWorkload(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		order := soa.Liao(seq)
		if len(order) == 0 {
			b.Fatal("empty layout")
		}
	}
}

func BenchmarkTensorTrace(b *testing.B) {
	c := tensor.Contraction{I: 8, J: 8, K: 8, Order: tensor.IJK, Accumulate: true}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Trace(); err != nil {
			b.Fatal(err)
		}
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}
