// GA search: reproduce the paper's section III-C/IV-B methodology — use
// the µ+λ genetic algorithm as a near-optimal reference to judge how far
// the fast heuristics are from optimal on one workload, including the
// effect of seeding the GA with the heuristic placements (the paper seeds
// its GA; the cold-start variant is the ablation).
//
// Run with: go run ./examples/ga_search
package main

import (
	"fmt"
	"log"

	racetrack "repro"
	"repro/internal/placement"
)

func main() {
	bench, err := racetrack.GenerateBenchmark("adpcm")
	if err != nil {
		log.Fatal(err)
	}
	// Pick the benchmark's largest sequence, as the paper's long-GA probe
	// does.
	seq := bench.Sequences[0]
	for _, s := range bench.Sequences {
		if s.Len() > seq.Len() {
			seq = s
		}
	}
	const dbcs = 4
	fmt.Printf("adpcm, largest sequence: %d accesses over %d variables, %d DBCs\n\n",
		seq.Len(), seq.NumVars(), dbcs)

	// Fast heuristics first.
	best := int64(-1)
	for _, strategy := range []racetrack.Strategy{
		racetrack.AFDOFU, racetrack.DMAOFU, racetrack.DMAChen, racetrack.DMASR,
	} {
		res, err := racetrack.PlaceTrace(seq, racetrack.PlaceOptions{
			Strategy: strategy, DBCs: dbcs,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-9s %6d shifts\n", strategy, res.Shifts)
		if best < 0 || res.Shifts < best {
			best = res.Shifts
		}
	}

	// GA at two budgets, seeded (default) and cold.
	ga := placement.GAConfig{
		Mu: 50, Lambda: 50, Generations: 120, TournamentK: 4,
		MutationRate: 0.5, MoveWeight: 10, TransposeWeight: 10,
		PermuteWeight: 3, Seed: 1,
	}
	res, err := racetrack.PlaceTrace(seq, racetrack.PlaceOptions{
		Strategy: racetrack.GA, DBCs: dbcs, GA: ga,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-9s %6d shifts (seeded with heuristics, %d generations)\n",
		"GA", res.Shifts, ga.Generations)

	gap := 100 * float64(best-res.Shifts) / float64(res.Shifts)
	fmt.Printf("\nbest heuristic is %.1f%% above the GA reference ", gap)
	fmt.Println("(the paper reports ~38% after 2000 generations on its largest benchmark)")
}
