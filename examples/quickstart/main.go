// Quickstart: reproduce the paper's worked example (Fig. 3) through the
// racetrack.Lab session API.
//
// The figure places nine variables into two DBCs in two ways: the AFD
// baseline layout [a g b d h | e i c f] costs 24 + 15 = 39 shifts, and the
// paper's sequence-aware layout [b c d e h | a f g i] costs 4 + 7 = 11.
// This example first verifies that arithmetic with hand-built placements,
// then lets one Lab run every strategy of the library on the same trace
// and simulate the result on the paper's 2-DBC Table I device.
//
// Run with: go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"

	racetrack "repro"
)

func main() {
	ctx := context.Background()

	// One Lab is one session: its own strategy registry, the 2-DBC
	// Table I device as the default, and a kernel cache that makes the
	// repeated pricing of this trace below (eight strategies, one
	// sequence) essentially free after the first call.
	lab, err := racetrack.New(racetrack.WithDevice(2))
	if err != nil {
		log.Fatal(err)
	}

	// The access sequence of Fig. 3-(b): nine variables a..i, 24 accesses.
	seq, err := racetrack.ParseSequence(
		"a b a b c a c a d d a i e f e f g e g h g i h i")
	if err != nil {
		log.Fatal(err)
	}

	// Variable ids are assigned in order of first appearance; map names
	// back to ids to transcribe the figure's layouts.
	id := map[string]int{}
	for i, n := range seq.Names {
		id[n] = i
	}
	layout := func(dbc0, dbc1 []string) *racetrack.Placement {
		p := &racetrack.Placement{DBC: make([][]int, 2)}
		for _, n := range dbc0 {
			p.DBC[0] = append(p.DBC[0], id[n])
		}
		for _, n := range dbc1 {
			p.DBC[1] = append(p.DBC[1], id[n])
		}
		return p
	}

	fmt.Println("Fig. 3 worked example: 9 variables, 24 accesses, 2 DBCs")
	fmt.Println()
	afd := layout([]string{"a", "g", "b", "d", "h"}, []string{"e", "i", "c", "f"})
	dma := layout([]string{"b", "c", "d", "e", "h"}, []string{"a", "f", "g", "i"})
	for _, x := range []struct {
		name string
		p    *racetrack.Placement
		want int64
	}{
		{"AFD layout (Fig. 3-c)", afd, 39},
		{"sequence-aware layout (Fig. 3-d)", dma, 11},
	} {
		cost, err := racetrack.ShiftCost(seq, x.p)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-34s %s -> %d shifts (paper: %d)\n",
			x.name, x.p.Render(seq), cost, x.want)
	}

	// Now let the Lab place the trace itself with every registered
	// strategy — the paper's six plus the DMA-2opt/GA-2opt extensions.
	// The evaluated AFD-OFU strategy additionally reorders each DBC by
	// first use, so it lands below the figure's raw 39.
	fmt.Println()
	for _, strategy := range lab.RegisteredStrategies() {
		res, err := lab.Place(ctx, seq, racetrack.PlaceOptions{
			Strategy: strategy,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-8s %3d shifts   %s\n",
			strategy, res.Shifts, res.Placement.Render(seq))
	}

	// Simulate the DMA placement on the Lab's device (the paper's 2-DBC
	// 4 KiB configuration) to get latency and energy from Table I.
	res, err := lab.Place(ctx, seq, racetrack.PlaceOptions{
		Strategy: racetrack.DMAOFU,
	})
	if err != nil {
		log.Fatal(err)
	}
	sim, err := lab.Simulate(ctx, seq, res.Placement)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nDMA-OFU on the 2-DBC Table I device: %d shifts, %.2f ns, %.2f pJ\n",
		sim.Counts.Shifts, sim.LatencyNS, sim.Energy.TotalPJ())
}
