// Tensor contraction scenario: the paper's companion study (LCTES'19,
// ref [5]) ran tensor contractions on RTM scratchpads and reported large
// shift savings from placement. This example regenerates that flavour of
// result: a tiled matmul's scratchpad trace under three loop orders,
// placed with the baseline and with the paper's heuristic, on the 8-DBC
// Table I device.
//
// Run with: go run ./examples/tensor_contraction
package main

import (
	"fmt"
	"log"

	racetrack "repro"
	"repro/internal/tensor"
)

func main() {
	fmt.Println("tiled matmul C[i,j] += A[i,k]*B[k,j], 4x4x4 tiles, 8-DBC 4 KiB RTM")
	fmt.Printf("%-6s %10s %10s %10s %12s\n",
		"order", "accesses", "AFD-OFU", "DMA-SR", "improvement")

	dev, err := racetrack.TableIDevice(8)
	if err != nil {
		log.Fatal(err)
	}
	for _, order := range []tensor.LoopOrder{tensor.IJK, tensor.IKJ, tensor.JKI} {
		c := tensor.Contraction{I: 4, J: 4, K: 4, Order: order, Accumulate: true}
		seq, err := c.Trace()
		if err != nil {
			log.Fatal(err)
		}
		costs := map[racetrack.Strategy]int64{}
		for _, strategy := range []racetrack.Strategy{racetrack.AFDOFU, racetrack.DMASR} {
			res, err := racetrack.PlaceTrace(seq, racetrack.PlaceOptions{
				Strategy: strategy, DBCs: 8,
			})
			if err != nil {
				log.Fatal(err)
			}
			if _, err := racetrack.Simulate(dev, seq, res.Placement); err != nil {
				log.Fatal(err)
			}
			costs[strategy] = res.Shifts
		}
		imp := float64(costs[racetrack.AFDOFU]) / float64(max64(costs[racetrack.DMASR], 1))
		fmt.Printf("%-6s %10d %10d %10d %11.2fx\n",
			order, seq.Len(), costs[racetrack.AFDOFU], costs[racetrack.DMASR], imp)
	}
	fmt.Println("\nloop order changes reuse distance, and placement quality follows —")
	fmt.Println("the compiler owns both knobs (the LCTES'19 observation).")
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
