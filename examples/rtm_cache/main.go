// RTM cache scenario: the paper's introduction motivates racetrack
// memory throughout the hierarchy, citing TapeCache-style caches. This
// example runs a mixed hot/streaming address trace through the RTM-backed
// set-associative cache with both insertion policies and compares hit
// ratio against shift cost — the cache-level version of the
// shifts-vs-locality trade the placement heuristics make in scratchpads.
//
// Run with: go run ./examples/rtm_cache
package main

import (
	"fmt"
	"log"
	"math/rand"

	racetrack "repro"
)

func main() {
	// Workload: a hot working set revisited constantly plus a streaming
	// scan with little reuse, the classic cache-pressure mix.
	rng := rand.New(rand.NewSource(42))
	var addrs []int64
	hot := make([]int64, 12)
	for i := range hot {
		hot[i] = int64(i) * 64
	}
	for i := 0; i < 20000; i++ {
		if rng.Intn(3) == 0 {
			addrs = append(addrs, int64(16+rng.Intn(2048))*64) // stream
		} else {
			addrs = append(addrs, hot[rng.Intn(len(hot))]) // reuse
		}
	}

	params, err := racetrack.EnergyParams(8)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("RTM L1-style cache, 8 sets x 8 ways, 64 B lines, 1 port/track")
	fmt.Printf("%-22s %9s %9s %12s %12s\n", "policy", "hit rate", "shifts", "shifts/acc", "energy[nJ]")
	for _, mode := range []struct {
		name   string
		policy racetrack.RTMCacheConfig
	}{
		{"LRU", racetrack.RTMCacheConfig{Sets: 8, Ways: 8, LineBytes: 64, Policy: racetrack.CacheInsertLRU, Ports: 1}},
		{"near-port (shift-aware)", racetrack.RTMCacheConfig{Sets: 8, Ways: 8, LineBytes: 64, Policy: racetrack.CacheInsertNearPort, Ports: 1}},
	} {
		c, err := racetrack.NewRTMCache(mode.policy)
		if err != nil {
			log.Fatal(err)
		}
		for _, a := range addrs {
			if _, _, err := c.Access(a, rng.Intn(5) == 0); err != nil {
				log.Fatal(err)
			}
		}
		st := c.Stats()
		fmt.Printf("%-22s %8.1f%% %9d %12.3f %12.2f\n",
			mode.name,
			100*st.HitRatio(),
			st.Shifts,
			float64(st.Shifts)/float64(st.Accesses()),
			c.Energy(params).TotalPJ()/1e3)
	}
	fmt.Println("\nthe shift-aware policy trades a sliver of hit ratio for cheaper")
	fmt.Println("alignment — the cache-level analogue of the paper's placement story.")
}
