// Compiler flow: the end-to-end pipeline the paper sits in. A source
// program over scalar locals is compiled to a memory access sequence (one
// per function, as in OffsetStone), the placement algorithms lay the
// locals out in an RTM scratchpad, and the cycle-accurate simulator
// reports the runtime difference — including what happens when the
// scratchpad controller can exploit bank-level parallelism.
//
// Run with: go run ./examples/compiler_flow
package main

import (
	"fmt"
	"log"
	"strings"

	racetrack "repro"
)

// source builds a staged signal-chain program: each function runs many
// sequential loop stages over stage-local temporaries — the straight-line
// shape offset-assignment research targets. With more locals than DBC
// slots, the scratchpad gets crowded and temporal separation (the paper's
// heuristic) pays off.
func source() string {
	var sb strings.Builder
	emitStage := func(i, reps int) {
		fmt.Fprintf(&sb, "  loop %d\n", reps)
		fmt.Fprintf(&sb, "    c%d = r%d - o%d\n", i, i, i)
		fmt.Fprintf(&sb, "    r%d = c%d * g%d\n", i, i, i)
		fmt.Fprintf(&sb, "    k%d += r%d\n", i, i)
		sb.WriteString("  end\n")
	}
	sb.WriteString("# staged sensor pipeline over scratchpad locals\n")
	sb.WriteString("func calibrate\n")
	for i := 0; i < 10; i++ {
		emitStage(i, 12+i%3)
	}
	sb.WriteString("end\n")
	sb.WriteString("func smooth\n")
	for i := 0; i < 8; i++ {
		emitStage(i, 10)
	}
	sb.WriteString("end\n")
	sb.WriteString("func pack\n")
	for i := 0; i < 6; i++ {
		emitStage(i, 8+i)
	}
	sb.WriteString("end\n")
	return sb.String()
}

func main() {
	bench, err := racetrack.CompileTrace("pipeline", source())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("compiled %d functions:\n", len(bench.Sequences))
	for i, s := range bench.Sequences {
		fmt.Printf("  func %d: %d accesses over %d locals\n", i, s.Len(), s.NumVars())
	}

	const dbcs = 4
	fmt.Printf("\nplacement on a %d-DBC scratchpad:\n", dbcs)
	fmt.Printf("%-9s %10s %16s %16s\n", "strategy", "shifts", "serial cycles", "open-loop cycles")
	for _, strategy := range []racetrack.Strategy{racetrack.AFDOFU, racetrack.DMASR} {
		var shifts, serialCycles, openCycles int64
		for _, seq := range bench.Sequences {
			res, err := racetrack.PlaceTrace(seq, racetrack.PlaceOptions{
				Strategy: strategy, DBCs: dbcs,
			})
			if err != nil {
				log.Fatal(err)
			}
			// Cycle-accurate runs at 2 GHz: the closed-loop CPU model on
			// the stock single-bank device, and an open-loop run with the
			// four DBCs spread across four banks so shifting overlaps.
			cs, err := racetrack.NewCycleSimulator(dbcs, 2.0)
			if err != nil {
				log.Fatal(err)
			}
			serial, err := racetrack.SimulateCycles(cs, seq, res.Placement, true)
			if err != nil {
				log.Fatal(err)
			}
			banked, err := racetrack.NewBankedCycleSimulator(dbcs, dbcs, 2.0)
			if err != nil {
				log.Fatal(err)
			}
			open, err := racetrack.SimulateCycles(banked, seq, res.Placement, false)
			if err != nil {
				log.Fatal(err)
			}
			shifts += serial.Counts.Shifts
			serialCycles += serial.Cycles
			openCycles += open.Cycles
		}
		fmt.Printf("%-9s %10d %16d %16d\n", strategy, shifts, serialCycles, openCycles)
	}
	fmt.Println("\nserial = CPU issues one scratchpad access at a time (the paper's model);")
	fmt.Println("open-loop = a DMA engine streams requests, overlapping per-DBC shifting.")
}
