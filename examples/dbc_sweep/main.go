// DBC sweep: the paper's Fig. 6 asks how many DBCs an iso-capacity 4 KiB
// RTM should have. This example sweeps the four Table I configurations on
// one of the bundled synthetic OffsetStone workloads, placing with DMA-SR,
// and prints the shifts/latency/energy/area trade-off — reproducing the
// conclusion that 2 DBCs drown in shift energy, 16 DBCs in leakage and
// area, and the sweet spot sits at 4-8 DBCs.
//
// Run with: go run ./examples/dbc_sweep [benchmark]
package main

import (
	"fmt"
	"log"
	"os"

	racetrack "repro"
)

func main() {
	name := "gsm"
	if len(os.Args) > 1 {
		name = os.Args[1]
	}
	bench, err := racetrack.GenerateBenchmark(name)
	if err != nil {
		log.Fatalf("%v (try one of %v)", err, racetrack.BenchmarkNames())
	}
	fmt.Printf("benchmark %s: %d sequences, %d accesses\n\n",
		bench.Name, len(bench.Sequences), bench.TotalAccesses())

	fmt.Printf("%5s %10s %13s %13s %11s %11s\n",
		"DBCs", "shifts", "latency[us]", "energy[nJ]", "leak[%]", "area[mm2]")
	for _, dbcs := range racetrack.TableIDBCCounts() {
		dev, err := racetrack.TableIDevice(dbcs)
		if err != nil {
			log.Fatal(err)
		}
		res, err := racetrack.SimulateBenchmark(dev, bench, racetrack.DMASR,
			racetrack.PlaceOptions{})
		if err != nil {
			log.Fatal(err)
		}
		params, err := racetrack.EnergyParams(dbcs)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%5d %10d %13.2f %13.2f %10.1f%% %11.4f\n",
			dbcs,
			res.Counts.Shifts,
			res.LatencyNS/1e3,
			res.Energy.TotalPJ()/1e3,
			100*res.Energy.LeakagePJ/res.Energy.TotalPJ(),
			params.AreaMM2)
	}
	fmt.Println("\nreading the table: shift counts stop improving beyond 4-8 DBCs while")
	fmt.Println("leakage share and area keep growing — the paper's Fig. 6 trade-off.")
}
