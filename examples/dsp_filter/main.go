// DSP pipeline scenario: the paper motivates RTM scratchpads for embedded
// signal-processing workloads. This example builds the scratchpad trace a
// compiler would emit for a staged sensor-processing function — calibrate,
// window, filter, feature-extract, pack, each stage running a small loop
// over its own temporaries before the next stage begins — and shows how
// much shifting each placement strategy saves on a 4-DBC racetrack
// scratchpad, including latency and energy.
//
// Staged straight-line code is exactly where the paper's DMA heuristic
// shines: each stage's temporaries die before the next stage's are born,
// so whole groups of variables have disjoint lifespans and can share one
// DBC at almost zero shift cost.
//
// Run with: go run ./examples/dsp_filter
package main

import (
	"fmt"
	"log"
	"strings"

	racetrack "repro"
)

// pipelineTrace emits the access sequence of `stages` sequential
// processing stages. Each stage loops `reps` times over three private
// temporaries (accumulator, coefficient, sample) and touches the global
// `state` and `cfg` variables a few times — the bridge variables that
// stay live across the whole function.
func pipelineTrace(stages, reps int) string {
	var sb strings.Builder
	for s := 0; s < stages; s++ {
		acc := fmt.Sprintf("acc%d", s)
		coef := fmt.Sprintf("coef%d", s)
		smp := fmt.Sprintf("smp%d", s)
		sb.WriteString("state cfg ")
		for r := 0; r < reps; r++ {
			// acc += coef * smp, with the accumulator written back.
			fmt.Fprintf(&sb, "%s %s %s %s! ", smp, coef, acc, acc)
		}
		sb.WriteString("state! ")
	}
	return sb.String()
}

func main() {
	seq, err := racetrack.ParseSequence(pipelineTrace(12, 16))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("staged pipeline trace: %d accesses over %d variables\n\n",
		seq.Len(), seq.NumVars())

	dev, err := racetrack.TableIDevice(4)
	if err != nil {
		log.Fatal(err)
	}

	type row struct {
		strategy racetrack.Strategy
		shifts   int64
		latency  float64
		energy   float64
	}
	var rows []row
	var baseline row
	for _, strategy := range []racetrack.Strategy{
		racetrack.AFDOFU, racetrack.DMAOFU, racetrack.DMAChen, racetrack.DMASR,
	} {
		res, err := racetrack.PlaceTrace(seq, racetrack.PlaceOptions{
			Strategy: strategy, DBCs: 4,
		})
		if err != nil {
			log.Fatal(err)
		}
		sim, err := racetrack.Simulate(dev, seq, res.Placement)
		if err != nil {
			log.Fatal(err)
		}
		r := row{strategy, sim.Counts.Shifts, sim.LatencyNS, sim.Energy.TotalPJ()}
		rows = append(rows, r)
		if strategy == racetrack.AFDOFU {
			baseline = r
		}
	}

	fmt.Printf("%-9s %8s %12s %12s %20s\n", "strategy", "shifts", "latency[ns]", "energy[pJ]", "vs AFD-OFU")
	for _, r := range rows {
		fmt.Printf("%-9s %8d %12.1f %12.1f   %5.2fx shifts, %5.1f%% energy\n",
			r.strategy, r.shifts, r.latency, r.energy,
			float64(baseline.shifts)/float64(max64(r.shifts, 1)),
			100*(1-r.energy/baseline.energy))
	}
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
