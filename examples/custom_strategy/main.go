// Example custom_strategy plugs a user-defined placement strategy into a
// racetrack.Lab's instance registry and races it against the paper's
// heuristics and the built-in DMA-2opt extension, using the Lab's
// PlaceBenchmark to fan the benchmark's sequences out on the shared
// experiment engine.
//
// It also demonstrates the instance scoping the session API exists for:
// a second Lab registers a *different* strategy under the same name, and
// the two Labs run concurrently without interfering — with a process-
// global registry this would be a name collision.
package main

import (
	"context"
	"fmt"
	"log"
	"runtime"

	racetrack "repro"
)

// placeRoundRobin is the custom strategy: distribute variables over DBCs
// round-robin in order of first use. It is deliberately naive — the point
// is that a strategy written purely against the public API participates
// in every driver of its Lab that resolves strategies by name.
func placeRoundRobin(s *racetrack.Sequence, q int, opts racetrack.StrategyOptions) (*racetrack.Placement, int64, error) {
	p := &racetrack.Placement{DBC: make([][]int, q)}
	seen := make(map[int]bool)
	i := 0
	for _, a := range s.Accesses {
		if seen[a.Var] {
			continue
		}
		seen[a.Var] = true
		d := i % q
		if opts.Capacity > 0 {
			// Skip full DBCs; give up if every DBC is full.
			for tries := 0; len(p.DBC[d]) >= opts.Capacity; tries++ {
				if tries == q {
					return nil, 0, fmt.Errorf("round-robin: all %d DBCs full", q)
				}
				d = (d + 1) % q
			}
		}
		p.DBC[d] = append(p.DBC[d], a.Var)
		i++
	}
	c, err := racetrack.ShiftCost(s, p)
	return p, c, err
}

// placeSingleDBC is a second, even-more-naive strategy registered in a
// *different* Lab under the same name, to show registries are scoped per
// session.
func placeSingleDBC(s *racetrack.Sequence, q int, opts racetrack.StrategyOptions) (*racetrack.Placement, int64, error) {
	p := &racetrack.Placement{DBC: make([][]int, q)}
	seen := make(map[int]bool)
	for _, a := range s.Accesses {
		if !seen[a.Var] {
			seen[a.Var] = true
			p.DBC[0] = append(p.DBC[0], a.Var)
		}
	}
	c, err := racetrack.ShiftCost(s, p)
	return p, c, err
}

func main() {
	ctx := context.Background()

	labA, err := racetrack.New(
		racetrack.WithWorkers(runtime.NumCPU()),
		racetrack.WithStrategy("custom", placeRoundRobin),
	)
	if err != nil {
		log.Fatal(err)
	}
	labB, err := racetrack.New(
		racetrack.WithWorkers(runtime.NumCPU()),
		racetrack.WithStrategy("custom", placeSingleDBC),
	)
	if err != nil {
		log.Fatal(err)
	}

	bench, err := racetrack.GenerateBenchmark("gsm")
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("benchmark %s: %d sequences, %d workers\n\n",
		bench.Name, len(bench.Sequences), runtime.NumCPU())
	fmt.Printf("%-12s %12s\n", "strategy", "shifts")
	for _, id := range []racetrack.Strategy{
		"custom", racetrack.AFDOFU, racetrack.DMASR, racetrack.DMA2Opt,
	} {
		res, err := labA.PlaceBenchmark(ctx, bench, racetrack.PlaceOptions{
			Strategy: id,
			DBCs:     4,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-12s %12d\n", id, res.TotalShifts)
	}

	// The same name resolves to a different algorithm in the other Lab.
	resB, err := labB.PlaceBenchmark(ctx, bench, racetrack.PlaceOptions{
		Strategy: "custom", DBCs: 4,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nsecond Lab, same name %q, different algorithm: %d shifts\n",
		"custom", resB.TotalShifts)
}
