// Example custom_strategy plugs a user-defined placement strategy into
// the registry through the public racetrack.RegisterStrategy hook and
// races it against the paper's heuristics and the built-in DMA-2opt
// extension, using PlaceBenchmark to fan the benchmark's sequences out on
// the shared experiment engine.
package main

import (
	"fmt"
	"log"
	"runtime"

	racetrack "repro"
)

// placeRoundRobin is the custom strategy: distribute variables over DBCs
// round-robin in order of first use. It is deliberately naive — the point
// is that a strategy written purely against the public API participates
// in every driver that resolves strategies by name.
func placeRoundRobin(s *racetrack.Sequence, q int, opts racetrack.StrategyOptions) (*racetrack.Placement, int64, error) {
	p := &racetrack.Placement{DBC: make([][]int, q)}
	seen := make(map[int]bool)
	i := 0
	for _, a := range s.Accesses {
		if seen[a.Var] {
			continue
		}
		seen[a.Var] = true
		d := i % q
		if opts.Capacity > 0 {
			// Skip full DBCs; give up if every DBC is full.
			for tries := 0; len(p.DBC[d]) >= opts.Capacity; tries++ {
				if tries == q {
					return nil, 0, fmt.Errorf("round-robin: all %d DBCs full", q)
				}
				d = (d + 1) % q
			}
		}
		p.DBC[d] = append(p.DBC[d], a.Var)
		i++
	}
	c, err := racetrack.ShiftCost(s, p)
	return p, c, err
}

func main() {
	if err := racetrack.RegisterStrategy("RR-FirstUse", placeRoundRobin); err != nil {
		log.Fatal(err)
	}

	bench, err := racetrack.GenerateBenchmark("gsm")
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("benchmark %s: %d sequences, %d workers\n\n",
		bench.Name, len(bench.Sequences), runtime.NumCPU())
	fmt.Printf("%-12s %12s\n", "strategy", "shifts")
	for _, id := range []racetrack.Strategy{
		"RR-FirstUse", racetrack.AFDOFU, racetrack.DMASR, racetrack.DMA2Opt,
	} {
		res, err := racetrack.PlaceBenchmark(bench, racetrack.PlaceOptions{
			Strategy: id,
			DBCs:     4,
			Workers:  runtime.NumCPU(),
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-12s %12d\n", id, res.TotalShifts)
	}
}
