package rtmsim

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/energy"
	"repro/internal/placement"
	"repro/internal/rtm"
	"repro/internal/trace"
)

func tableISim(t testing.TB, dbcs int, policy Interleave) *Simulator {
	t.Helper()
	g, err := rtm.TableIGeometry(dbcs)
	if err != nil {
		t.Fatal(err)
	}
	p, err := energy.ForDBCs(dbcs)
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(g, p, 1.0, policy)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestTimingFromParams(t *testing.T) {
	p, _ := energy.ForDBCs(4) // read 0.84, write 1.14, shift 0.92 ns
	tm, err := TimingFromParams(p, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	if tm.ReadCycles != 1 || tm.WriteCycles != 2 || tm.ShiftCycles != 1 {
		t.Errorf("1 GHz cycles = %+v, want read 1 / write 2 / shift 1", tm)
	}
	tm, _ = TimingFromParams(p, 4.0)
	if tm.ReadCycles != 4 || tm.WriteCycles != 5 || tm.ShiftCycles != 4 {
		t.Errorf("4 GHz cycles = %+v", tm)
	}
	if _, err := TimingFromParams(p, 0); err == nil {
		t.Error("zero clock accepted")
	}
}

func TestAddressMapRoundTrip(t *testing.T) {
	g := rtm.Geometry{Banks: 2, SubarraysPerBank: 2, DBCsPerSubarray: 4,
		TracksPerDBC: 32, DomainsPerTrack: 64, PortsPerTrack: 1}
	for _, policy := range []Interleave{InterleaveDomain, InterleaveDBC} {
		m, err := NewAddressMap(g, policy)
		if err != nil {
			t.Fatal(err)
		}
		if m.Words() != 2*2*4*64 {
			t.Fatalf("words = %d", m.Words())
		}
		for addr := int64(0); addr < m.Words(); addr += 7 {
			c, err := m.Decode(addr)
			if err != nil {
				t.Fatal(err)
			}
			back, err := m.Encode(c)
			if err != nil {
				t.Fatal(err)
			}
			if back != addr {
				t.Fatalf("policy %d: %d -> %+v -> %d", policy, addr, c, back)
			}
		}
		if _, err := m.Decode(-1); err == nil {
			t.Error("negative address accepted")
		}
		if _, err := m.Decode(m.Words()); err == nil {
			t.Error("out-of-range address accepted")
		}
	}
}

func TestInterleavePolicies(t *testing.T) {
	g := rtm.Geometry{Banks: 2, SubarraysPerBank: 1, DBCsPerSubarray: 2,
		TracksPerDBC: 32, DomainsPerTrack: 8, PortsPerTrack: 1}
	dom, _ := NewAddressMap(g, InterleaveDomain)
	dbc, _ := NewAddressMap(g, InterleaveDBC)
	// Domain policy: addresses 0 and 1 share a DBC.
	c0, _ := dom.Decode(0)
	c1, _ := dom.Decode(1)
	if c0.Bank != c1.Bank || c0.DBC != c1.DBC || c1.Domain != c0.Domain+1 {
		t.Errorf("domain interleave: %+v then %+v", c0, c1)
	}
	// DBC policy: addresses 0 and 1 land in different DBCs.
	c0, _ = dbc.Decode(0)
	c1, _ = dbc.Decode(1)
	if c0.Bank == c1.Bank && c0.DBC == c1.DBC {
		t.Errorf("dbc interleave kept %+v and %+v together", c0, c1)
	}
}

// The serialized closed-loop simulation must reproduce the analytic cost
// model exactly: same shift counts, and total cycles equal to the sum of
// per-event cycle costs.
func TestSerializedMatchesAnalytic(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	for trial := 0; trial < 20; trial++ {
		nv := 2 + rng.Intn(12)
		vars := make([]int, 20+rng.Intn(80))
		for i := range vars {
			vars[i] = rng.Intn(nv)
		}
		seq := trace.NewSequence(vars...)
		a := trace.Analyze(seq)
		r, err := placement.DMA(a, 4, 0)
		if err != nil {
			t.Fatal(err)
		}
		wantShifts, err := placement.ShiftCost(seq, r.Placement)
		if err != nil {
			t.Fatal(err)
		}

		s := tableISim(t, 4, InterleaveDomain)
		stats, err := RunPlacement(s, seq, r.Placement, true)
		if err != nil {
			t.Fatal(err)
		}
		if stats.Counts.Shifts != wantShifts {
			t.Fatalf("trial %d: cycle-accurate shifts %d != analytic %d",
				trial, stats.Counts.Shifts, wantShifts)
		}
		tm, _ := TimingFromParams(mustParams(t, 4), 1.0)
		want := stats.Counts.Reads*tm.ReadCycles +
			stats.Counts.Writes*tm.WriteCycles +
			stats.Counts.Shifts*tm.ShiftCycles
		if stats.Cycles != want {
			t.Fatalf("trial %d: serialized cycles %d != analytic %d", trial, stats.Cycles, want)
		}
	}
}

func mustParams(t testing.TB, dbcs int) energy.Params {
	t.Helper()
	p, err := energy.ForDBCs(dbcs)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// Open-loop execution with multiple banks must finish no later than the
// serialized run, and bank parallelism must actually help on a
// bank-spread stream.
func TestBankParallelismSpeedsUp(t *testing.T) {
	g := rtm.Geometry{Banks: 4, SubarraysPerBank: 1, DBCsPerSubarray: 1,
		TracksPerDBC: 32, DomainsPerTrack: 64, PortsPerTrack: 1}
	params := mustParams(t, 4)
	s, err := New(g, params, 1.0, InterleaveDomain)
	if err != nil {
		t.Fatal(err)
	}
	// A stream striding across the 4 banks with long shifts each time.
	var reqs []Request
	for i := 0; i < 64; i++ {
		bank := i % 4
		domain := (i * 13) % 64
		addr, err := s.AddressMap().Encode(Coord{Bank: bank, Domain: domain})
		if err != nil {
			t.Fatal(err)
		}
		reqs = append(reqs, Request{Addr: addr, Dep: -1})
	}
	open, err := s.Run(reqs)
	if err != nil {
		t.Fatal(err)
	}
	s.Reset()
	ser := make([]Request, len(reqs))
	copy(ser, reqs)
	for i := range ser {
		ser[i].Dep = i - 1
	}
	serial, err := s.Run(ser)
	if err != nil {
		t.Fatal(err)
	}
	if open.Cycles >= serial.Cycles {
		t.Errorf("open-loop (%d cycles) not faster than serialized (%d)", open.Cycles, serial.Cycles)
	}
	if open.Counts.Shifts != serial.Counts.Shifts {
		t.Errorf("shift counts diverge: %d vs %d", open.Counts.Shifts, serial.Counts.Shifts)
	}
	if u := open.Utilization(); u <= serial.Utilization() {
		t.Errorf("open-loop utilization %.3f not above serialized %.3f", u, serial.Utilization())
	}
}

func TestRunValidation(t *testing.T) {
	s := tableISim(t, 4, InterleaveDomain)
	if _, err := s.Run(nil); err != ErrNoRequests {
		t.Errorf("empty stream: %v", err)
	}
	if _, err := s.Run([]Request{{Addr: 1 << 40}}); err == nil {
		t.Error("bad address accepted")
	}
	if _, err := s.Run([]Request{{Addr: 0, Dep: 0}}); err == nil {
		t.Error("self-dependency accepted")
	}
	if _, err := s.Run([]Request{{Addr: 0, Arrival: 5}, {Addr: 0, Arrival: 1}}); err == nil {
		t.Error("unsorted arrivals accepted")
	}
}

func TestQueueWaitAccounting(t *testing.T) {
	// Two same-bank requests arriving together: the second waits exactly
	// the first one's service time.
	g := rtm.Geometry{Banks: 1, SubarraysPerBank: 1, DBCsPerSubarray: 1,
		TracksPerDBC: 32, DomainsPerTrack: 64, PortsPerTrack: 1}
	s, err := New(g, mustParams(t, 4), 1.0, InterleaveDomain)
	if err != nil {
		t.Fatal(err)
	}
	reqs := []Request{
		{Addr: 0, Dep: -1},  // cold: free alignment, 1-cycle read
		{Addr: 10, Dep: -1}, // 10 shifts + read
	}
	stats, err := s.Run(reqs)
	if err != nil {
		t.Fatal(err)
	}
	if stats.QueueWaitCycles != 1 {
		t.Errorf("queue wait = %d, want 1 (second waits for first's read)", stats.QueueWaitCycles)
	}
	if stats.Counts.Shifts != 10 {
		t.Errorf("shifts = %d, want 10", stats.Counts.Shifts)
	}
	if stats.MaxQueueDepth != 2 {
		t.Errorf("max queue depth = %d, want 2", stats.MaxQueueDepth)
	}
}

// Preshift (oracle proactive alignment) hides shift latency behind
// arrival gaps without changing shift counts.
func TestPreshiftHidesShiftLatency(t *testing.T) {
	g := rtm.Geometry{Banks: 1, SubarraysPerBank: 1, DBCsPerSubarray: 1,
		TracksPerDBC: 32, DomainsPerTrack: 64, PortsPerTrack: 1}
	mk := func(preshift bool) Stats {
		s, err := New(g, mustParams(t, 4), 1.0, InterleaveDomain)
		if err != nil {
			t.Fatal(err)
		}
		s.Preshift = preshift
		// Requests spaced 20 cycles apart, each needing 10 shifts: the
		// idle gap fully hides the shifting.
		reqs := []Request{
			{Addr: 0, Arrival: 0, Dep: -1},
			{Addr: 10, Arrival: 20, Dep: -1},
			{Addr: 20, Arrival: 40, Dep: -1},
		}
		stats, err := s.Run(reqs)
		if err != nil {
			t.Fatal(err)
		}
		return stats
	}
	base := mk(false)
	pre := mk(true)
	if pre.Counts.Shifts != base.Counts.Shifts {
		t.Errorf("preshift changed shift counts: %d vs %d", pre.Counts.Shifts, base.Counts.Shifts)
	}
	if pre.Cycles >= base.Cycles {
		t.Errorf("preshift did not reduce makespan: %d vs %d", pre.Cycles, base.Cycles)
	}
	if pre.PreshiftHiddenCycles == 0 {
		t.Error("no cycles hidden")
	}
	if base.PreshiftHiddenCycles != 0 {
		t.Error("hidden cycles without preshift")
	}
	// With full hiding, only the access cycles remain on the critical
	// path after the last arrival.
	if want := int64(40 + 1); pre.Cycles != want {
		t.Errorf("preshift makespan = %d, want %d (last arrival + read)", pre.Cycles, want)
	}
}

// Preshift can never hide on back-to-back single-bank streams (no idle
// gaps exist).
func TestPreshiftNoGapNoGain(t *testing.T) {
	g := rtm.Geometry{Banks: 1, SubarraysPerBank: 1, DBCsPerSubarray: 1,
		TracksPerDBC: 32, DomainsPerTrack: 64, PortsPerTrack: 1}
	s, err := New(g, mustParams(t, 4), 1.0, InterleaveDomain)
	if err != nil {
		t.Fatal(err)
	}
	s.Preshift = true
	reqs := []Request{
		{Addr: 0, Dep: -1},
		{Addr: 30, Dep: 0},
		{Addr: 0, Dep: 1},
	}
	stats, err := s.Run(reqs)
	if err != nil {
		t.Fatal(err)
	}
	if stats.PreshiftHiddenCycles != 0 {
		t.Errorf("hidden %d cycles with no idle gaps", stats.PreshiftHiddenCycles)
	}
}

func TestAdapterErrors(t *testing.T) {
	s := tableISim(t, 4, InterleaveDomain)
	seq := trace.NewSequence(0, 1)
	wide := placement.NewEmpty(9)
	wide.DBC[0] = []int{0}
	wide.DBC[8] = []int{1}
	if _, err := RequestsFromPlacement(s, seq, wide, true); err == nil {
		t.Error("oversized placement accepted")
	}
	missing := &placement.Placement{DBC: [][]int{{0}}}
	if _, err := RequestsFromPlacement(s, seq, missing, true); err == nil {
		t.Error("unplaced variable accepted")
	}
	tall := &placement.Placement{DBC: [][]int{make([]int, 300)}}
	for i := range tall.DBC[0] {
		tall.DBC[0][i] = i
	}
	if _, err := RequestsFromPlacement(s, trace.NewSequence(0), tall, true); err == nil {
		t.Error("domain overflow accepted")
	}
}

// Property: total busy cycles never exceed banks x makespan, shifts are
// non-negative, and every request is served exactly once.
func TestStatsInvariants(t *testing.T) {
	f := func(raw []uint8) bool {
		if len(raw) == 0 {
			return true
		}
		s := tableISim(t, 8, InterleaveDBC)
		reqs := make([]Request, len(raw))
		for i, r := range raw {
			reqs[i] = Request{Addr: int64(r) % s.AddressMap().Words(), Write: r%3 == 0, Dep: -1}
		}
		stats, err := s.Run(reqs)
		if err != nil {
			return false
		}
		var served int64
		for _, n := range stats.PerBankRequests {
			served += n
		}
		if served != int64(len(reqs)) {
			return false
		}
		var busy int64
		for _, b := range stats.BusyCycles {
			busy += b
		}
		return busy <= stats.Cycles*int64(len(stats.BusyCycles)) &&
			stats.Counts.Shifts >= 0 &&
			stats.Counts.Accesses() == int64(len(reqs))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}
