package rtmsim

import (
	"fmt"

	"repro/internal/placement"
	"repro/internal/trace"
)

// RequestsFromPlacement converts an access sequence plus a placement into
// a request stream for the simulator. Placement DBC i maps to linear DBC
// i of the geometry (spread across banks by the geometry's layout), and
// the variable's offset maps to its domain index.
//
// serialized selects the closed-loop CPU model: request i depends on
// request i-1 (program order), which reproduces the analytic model's
// serialized latency. With serialized=false all requests arrive at cycle
// 0 and only bank conflicts order them — the open-loop bandwidth
// experiment.
func RequestsFromPlacement(s *Simulator, seq *trace.Sequence, p *placement.Placement, serialized bool) ([]Request, error) {
	if p.NumDBCs() > s.geo.DBCs() {
		return nil, fmt.Errorf("rtmsim: placement uses %d DBCs, device has %d", p.NumDBCs(), s.geo.DBCs())
	}
	if n := p.MaxDBCLen(); n > s.geo.DomainsPerTrack {
		return nil, fmt.Errorf("rtmsim: DBC occupancy %d exceeds %d domains", n, s.geo.DomainsPerTrack)
	}
	lookup, err := p.BuildLookup(seq.NumVars())
	if err != nil {
		return nil, err
	}
	perBank := s.geo.SubarraysPerBank * s.geo.DBCsPerSubarray
	reqs := make([]Request, 0, seq.Len())
	for i, a := range seq.Accesses {
		d := lookup.DBCOf[a.Var]
		if d < 0 {
			return nil, fmt.Errorf("rtmsim: access %d to unplaced variable %s", i, seq.Name(a.Var))
		}
		c := Coord{
			Bank:     d / perBank,
			Subarray: (d % perBank) / s.geo.DBCsPerSubarray,
			DBC:      d % s.geo.DBCsPerSubarray,
			Domain:   lookup.Offset[a.Var],
		}
		addr, err := s.amap.Encode(c)
		if err != nil {
			return nil, err
		}
		dep := -1
		if serialized && i > 0 {
			dep = i - 1
		}
		reqs = append(reqs, Request{Addr: addr, Write: a.Write, Arrival: 0, Dep: dep})
	}
	return reqs, nil
}

// RunPlacement is the one-call convenience: build the request stream and
// simulate it.
func RunPlacement(s *Simulator, seq *trace.Sequence, p *placement.Placement, serialized bool) (Stats, error) {
	reqs, err := RequestsFromPlacement(s, seq, p, serialized)
	if err != nil {
		return Stats{}, err
	}
	return s.Run(reqs)
}
