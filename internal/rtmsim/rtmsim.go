// Package rtmsim is a cycle-accurate racetrack-memory simulator in the
// spirit of RTSim (Khan et al., IEEE CAL 2019), the simulator the paper's
// evaluation runs on. Where internal/sim replays a trace analytically
// (event counts x Table I costs), rtmsim models the device's timing
// behaviour cycle by cycle:
//
//   - a memory controller with a FIFO request queue per bank;
//   - banks that serve requests independently (bank-level parallelism);
//   - per-DBC shift state machines: serving a request first issues the
//     shift operations needed to align the target domain with a port
//     (shiftCycles per single-domain shift), then the read or write;
//   - an address decoder mapping linear word addresses onto
//     bank/subarray/DBC/domain coordinates with a configurable
//     interleaving policy.
//
// The analytic model remains the source of truth for the paper's figures
// (identical event counts by construction — see TestSerializedMatchesAnalytic);
// rtmsim exists to answer the timing questions the analytic model cannot:
// queueing delay, bank conflicts, and the latency benefit of spreading
// DBCs across banks.
package rtmsim

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/energy"
	"repro/internal/rtm"
)

// Timing holds the controller's cycle counts per operation.
type Timing struct {
	// ClockGHz is the controller clock used to convert Table I
	// nanosecond latencies into cycles.
	ClockGHz float64
	// ReadCycles, WriteCycles are the port access times.
	ReadCycles, WriteCycles int64
	// ShiftCycles is the time of one single-domain shift.
	ShiftCycles int64
}

// TimingFromParams converts Table I latencies into cycles at the given
// clock, rounding up (a memory controller quantizes to cycles).
func TimingFromParams(p energy.Params, clockGHz float64) (Timing, error) {
	if clockGHz <= 0 {
		return Timing{}, fmt.Errorf("rtmsim: clock must be positive, got %v", clockGHz)
	}
	toCycles := func(ns float64) int64 {
		c := int64(math.Ceil(ns * clockGHz))
		if c < 1 {
			c = 1
		}
		return c
	}
	return Timing{
		ClockGHz:    clockGHz,
		ReadCycles:  toCycles(p.ReadLatencyNS),
		WriteCycles: toCycles(p.WriteLatencyNS),
		ShiftCycles: toCycles(p.ShiftLatencyNS),
	}, nil
}

// Interleave selects how consecutive word addresses map onto the array.
type Interleave int

const (
	// InterleaveDomain maps consecutive addresses to consecutive domains
	// of the same DBC (row-major within a DBC): good spatial locality on
	// a track, poor bank parallelism for streams.
	InterleaveDomain Interleave = iota
	// InterleaveDBC maps consecutive addresses to the same domain index
	// of consecutive DBCs: streams spread over DBCs and banks.
	InterleaveDBC
)

// Coord is a fully decoded physical location.
type Coord struct {
	Bank, Subarray, DBC, Domain int
}

// AddressMap decodes linear word addresses for a geometry.
type AddressMap struct {
	geo    rtm.Geometry
	policy Interleave
}

// NewAddressMap builds a decoder. The geometry must validate.
func NewAddressMap(g rtm.Geometry, policy Interleave) (*AddressMap, error) {
	if err := g.Validate(); err != nil {
		return nil, err
	}
	return &AddressMap{geo: g, policy: policy}, nil
}

// Words returns the number of word locations in the array.
func (m *AddressMap) Words() int64 {
	return int64(m.geo.DBCs()) * int64(m.geo.DomainsPerTrack)
}

// Decode maps a linear word address to coordinates.
func (m *AddressMap) Decode(addr int64) (Coord, error) {
	if addr < 0 || addr >= m.Words() {
		return Coord{}, fmt.Errorf("rtmsim: address %d out of range [0,%d)", addr, m.Words())
	}
	var dbcLinear, domain int
	switch m.policy {
	case InterleaveDomain:
		dbcLinear = int(addr / int64(m.geo.DomainsPerTrack))
		domain = int(addr % int64(m.geo.DomainsPerTrack))
	case InterleaveDBC:
		dbcLinear = int(addr % int64(m.geo.DBCs()))
		domain = int(addr / int64(m.geo.DBCs()))
	default:
		return Coord{}, fmt.Errorf("rtmsim: unknown interleave policy %d", m.policy)
	}
	perBank := m.geo.SubarraysPerBank * m.geo.DBCsPerSubarray
	return Coord{
		Bank:     dbcLinear / perBank,
		Subarray: (dbcLinear % perBank) / m.geo.DBCsPerSubarray,
		DBC:      dbcLinear % m.geo.DBCsPerSubarray,
		Domain:   domain,
	}, nil
}

// Encode maps coordinates back to a linear word address.
func (m *AddressMap) Encode(c Coord) (int64, error) {
	if c.Bank < 0 || c.Bank >= m.geo.Banks ||
		c.Subarray < 0 || c.Subarray >= m.geo.SubarraysPerBank ||
		c.DBC < 0 || c.DBC >= m.geo.DBCsPerSubarray ||
		c.Domain < 0 || c.Domain >= m.geo.DomainsPerTrack {
		return 0, fmt.Errorf("rtmsim: coordinates %+v out of range", c)
	}
	dbcLinear := (c.Bank*m.geo.SubarraysPerBank+c.Subarray)*m.geo.DBCsPerSubarray + c.DBC
	switch m.policy {
	case InterleaveDomain:
		return int64(dbcLinear)*int64(m.geo.DomainsPerTrack) + int64(c.Domain), nil
	case InterleaveDBC:
		return int64(c.Domain)*int64(m.geo.DBCs()) + int64(dbcLinear), nil
	}
	return 0, fmt.Errorf("rtmsim: unknown interleave policy %d", m.policy)
}

// Request is one memory operation presented to the controller.
type Request struct {
	// Addr is the linear word address.
	Addr int64
	// Write marks stores.
	Write bool
	// Arrival is the cycle the request enters the controller queue.
	Arrival int64
	// Dep, when >= 0, is the index of a request that must complete before
	// this one may issue (program-order dependency). The serialized
	// closed-loop model sets Dep = i-1 for every request i.
	Dep int
}

// Stats aggregates a simulation run.
type Stats struct {
	// Cycles is the completion time of the last request.
	Cycles int64
	// Shifts/Reads/Writes are event totals (identical to the analytic
	// model's counts for the same request stream).
	Counts energy.Counts
	// QueueWaitCycles accumulates time spent waiting for the bank (or a
	// dependency) after arrival.
	QueueWaitCycles int64
	// PreshiftHiddenCycles counts shift cycles overlapped with bank idle
	// time by the proactive-alignment policy (zero unless Preshift).
	PreshiftHiddenCycles int64
	// BusyCycles per bank: cycles the bank spent shifting or accessing.
	BusyCycles []int64
	// PerBankRequests counts requests served by each bank.
	PerBankRequests []int64
	// MaxQueueDepth is the deepest any bank queue got.
	MaxQueueDepth int
}

// Utilization returns the mean bank-busy fraction.
func (s Stats) Utilization() float64 {
	if s.Cycles == 0 || len(s.BusyCycles) == 0 {
		return 0
	}
	var busy int64
	for _, b := range s.BusyCycles {
		busy += b
	}
	return float64(busy) / (float64(s.Cycles) * float64(len(s.BusyCycles)))
}

// Simulator is the cycle-accurate controller + device model.
type Simulator struct {
	geo    rtm.Geometry
	timing Timing
	amap   *AddressMap

	// Preshift enables the proactive-alignment controller policy from the
	// related-work line the paper cites ([1], [12], [20], [21]): while a
	// bank sits idle before the next request starts (arrival gaps, cross-
	// bank stalls), the controller already shifts the target DBC toward
	// the upcoming access, hiding up to the idle gap's worth of shift
	// cycles. Shift *counts* (and hence shift energy) are unchanged; only
	// their latency is overlapped. The model is the oracle upper bound:
	// the controller is assumed to know the next request for the bank.
	Preshift bool

	// Per-DBC shift offsets (linear DBC index), -1 = cold (first access
	// aligns for free, matching the paper's cost model).
	offset []int
	ports  []int
}

// New builds a simulator for the geometry with Table I timing at the
// given clock.
func New(g rtm.Geometry, params energy.Params, clockGHz float64, policy Interleave) (*Simulator, error) {
	t, err := TimingFromParams(params, clockGHz)
	if err != nil {
		return nil, err
	}
	amap, err := NewAddressMap(g, policy)
	if err != nil {
		return nil, err
	}
	s := &Simulator{geo: g, timing: t, amap: amap}
	s.offset = make([]int, g.DBCs())
	for i := range s.offset {
		s.offset[i] = math.MinInt32 // cold
	}
	for j := 0; j < g.PortsPerTrack; j++ {
		s.ports = append(s.ports, j*g.DomainsPerTrack/g.PortsPerTrack)
	}
	return s, nil
}

// AddressMap exposes the simulator's decoder.
func (s *Simulator) AddressMap() *AddressMap { return s.amap }

// shiftsFor computes the shifts needed to align `domain` in linear DBC d
// and updates the DBC's offset.
func (s *Simulator) shiftsFor(d, domain int) int64 {
	if s.offset[d] == math.MinInt32 {
		// Cold DBC: pre-aligned to the first access.
		best := domain - s.ports[0]
		bestD := abs64(int64(domain - s.ports[0]))
		for _, p := range s.ports[1:] {
			if dd := abs64(int64(domain - p)); dd < bestD {
				bestD = dd
				best = domain - p
			}
		}
		s.offset[d] = best
		return 0
	}
	bestCost := int64(-1)
	bestOffset := 0
	for _, p := range s.ports {
		need := domain - p
		c := abs64(int64(need - s.offset[d]))
		if bestCost < 0 || c < bestCost {
			bestCost = c
			bestOffset = need
		}
	}
	s.offset[d] = bestOffset
	return bestCost
}

func abs64(x int64) int64 {
	if x < 0 {
		return -x
	}
	return x
}

// ErrNoRequests is returned when Run is called with an empty stream.
var ErrNoRequests = errors.New("rtmsim: empty request stream")

// Run simulates a request stream to completion. Requests must be sorted
// by Arrival; Dep must reference an earlier index or be negative. Each
// bank serves its queue FCFS; banks run in parallel.
func (s *Simulator) Run(reqs []Request) (Stats, error) {
	if len(reqs) == 0 {
		return Stats{}, ErrNoRequests
	}
	nBanks := s.geo.Banks
	stats := Stats{
		BusyCycles:      make([]int64, nBanks),
		PerBankRequests: make([]int64, nBanks),
	}
	bankFree := make([]int64, nBanks)
	done := make([]int64, len(reqs)) // completion cycle per request
	queued := make([][]int, nBanks)  // request indices per bank, FCFS

	coords := make([]Coord, len(reqs))
	for i, r := range reqs {
		c, err := s.amap.Decode(r.Addr)
		if err != nil {
			return Stats{}, fmt.Errorf("rtmsim: request %d: %w", i, err)
		}
		if r.Dep >= i {
			return Stats{}, fmt.Errorf("rtmsim: request %d depends on later request %d", i, r.Dep)
		}
		if i > 0 && r.Arrival < reqs[i-1].Arrival {
			return Stats{}, fmt.Errorf("rtmsim: request %d arrives before its predecessor", i)
		}
		coords[i] = c
		queued[c.Bank] = append(queued[c.Bank], i)
		if len(queued[c.Bank]) > stats.MaxQueueDepth {
			stats.MaxQueueDepth = len(queued[c.Bank])
		}
	}

	// Event loop: repeatedly pick the request that can start earliest
	// among each bank's queue head. A request may start when (a) it has
	// arrived, (b) its dependency completed, (c) its bank is free.
	// Deadlock-freedom: dependencies point to strictly earlier indices
	// and bank queues are FIFO in index order, so the globally smallest
	// unserved index always sits at its bank's head with its dependency
	// already served.
	pos := make([]int, nBanks) // next unserved index into queued[b]
	remaining := len(reqs)
	for remaining > 0 {
		// Find the bank whose head request has the smallest feasible
		// start cycle. Linear scan over banks is fine (bank counts are
		// small); the heap is kept for large configurations.
		bestBank := -1
		var bestStart int64
		for b := 0; b < nBanks; b++ {
			if pos[b] >= len(queued[b]) {
				continue
			}
			i := queued[b][pos[b]]
			start := reqs[i].Arrival
			if reqs[i].Dep >= 0 && done[reqs[i].Dep] > start {
				start = done[reqs[i].Dep]
			}
			if bankFree[b] > start {
				start = bankFree[b]
			}
			if bestBank < 0 || start < bestStart {
				bestBank, bestStart = b, start
			}
		}
		if bestBank < 0 {
			return Stats{}, errors.New("rtmsim: deadlock — no serviceable request")
		}
		b := bestBank
		i := queued[b][pos[b]]
		pos[b]++
		remaining--

		c := coords[i]
		dbcLinear := (c.Bank*s.geo.SubarraysPerBank+c.Subarray)*s.geo.DBCsPerSubarray + c.DBC
		shifts := s.shiftsFor(dbcLinear, c.Domain)
		var access int64
		if reqs[i].Write {
			access = s.timing.WriteCycles
			stats.Counts.Writes++
		} else {
			access = s.timing.ReadCycles
			stats.Counts.Reads++
		}
		stats.Counts.Shifts += shifts
		shiftCycles := shifts * s.timing.ShiftCycles
		if s.Preshift {
			// The bank was idle from bankFree[b] to bestStart; the
			// controller spent that gap pre-aligning this request's DBC.
			idle := bestStart - bankFree[b]
			if idle > 0 {
				hidden := shiftCycles
				if idle < hidden {
					hidden = idle
				}
				shiftCycles -= hidden
				stats.PreshiftHiddenCycles += hidden
			}
		}
		service := shiftCycles + access
		stats.QueueWaitCycles += bestStart - reqs[i].Arrival
		finish := bestStart + service
		bankFree[b] = finish
		done[i] = finish
		stats.BusyCycles[b] += service
		stats.PerBankRequests[b]++
		if finish > stats.Cycles {
			stats.Cycles = finish
		}
	}
	return stats, nil
}

// Reset cold-starts all DBCs.
func (s *Simulator) Reset() {
	for i := range s.offset {
		s.offset[i] = math.MinInt32
	}
}
