package rtm

import (
	"fmt"
	"math/rand"
)

// Shift-fault modeling: real racetrack shifts occasionally overshoot or
// undershoot by one domain (position errors — the reliability concern a
// production RTM controller must handle). FaultyEngine wraps a
// ShiftEngine with a per-shift error probability and a detect-and-correct
// controller: after every burst of shifts the position sensor is read
// and any residual misalignment is fixed with corrective shifts, which
// cost extra operations but preserve correctness. Fault injection is
// deterministic in the seed, so experiments are reproducible.
type FaultyEngine struct {
	engine *ShiftEngine
	// ErrorRate is the per-shift probability of a one-domain position
	// error.
	errorRate float64
	rng       *rand.Rand

	faults     int64
	corrective int64
}

// NewFaultyEngine wraps a fresh engine with the fault model.
func NewFaultyEngine(domains, ports int, errorRate float64, seed int64) (*FaultyEngine, error) {
	if errorRate < 0 || errorRate >= 1 {
		return nil, fmt.Errorf("rtm: error rate must be in [0,1), got %v", errorRate)
	}
	e, err := NewShiftEngine(domains, ports)
	if err != nil {
		return nil, err
	}
	return &FaultyEngine{
		engine:    e,
		errorRate: errorRate,
		rng:       rand.New(rand.NewSource(seed)),
	}, nil
}

// Access aligns location x, injecting position errors and issuing
// corrective shifts as needed. It returns the total number of physical
// shift operations performed (nominal + slip replays + corrections).
func (f *FaultyEngine) Access(x int) (int, error) {
	nominal, err := f.engine.Access(x)
	if err != nil {
		return 0, err
	}
	if f.errorRate == 0 || nominal == 0 {
		return nominal, nil
	}
	// Each nominal shift may slip by one domain, overshooting (+1) or
	// undershooting (-1) with equal probability. The controller's
	// position sensor reads the offset after the burst; the residual
	// misalignment is the *signed net* slip — opposite-direction slips
	// physically cancel and need no correction — and each residual
	// domain takes one corrective shift (which may itself slip again).
	// Summing slip magnitudes instead would charge corrective shifts
	// for misalignment that no longer exists.
	total := nominal
	pending := nominal
	for pending > 0 {
		net := 0
		slips := 0
		for i := 0; i < pending; i++ {
			if f.rng.Float64() < f.errorRate {
				slips++
				if f.rng.Intn(2) == 0 {
					net++
				} else {
					net--
				}
			}
		}
		f.faults += int64(slips)
		if net < 0 {
			net = -net
		}
		if net == 0 {
			break
		}
		// Corrective burst: one shift per residual domain of net slip.
		f.corrective += int64(net)
		total += net
		pending = net
	}
	return total, nil
}

// ErrorRate returns the per-shift position-error probability the engine
// was built with. The fault-aware cost model reads it to price expected
// correction overhead without replaying the engine.
func (f *FaultyEngine) ErrorRate() float64 { return f.errorRate }

// ExpectedShiftOverhead returns the analytic upper bound on a
// FaultyEngine's physical-to-nominal shift ratio at the given per-shift
// error rate. Every shift slips with probability p; each residual slip
// costs one corrective shift, which may itself slip, giving the
// geometric series 1 + p + p² + ... = 1/(1-p). It is an upper bound,
// not the exact expectation: within a burst, opposite-direction slips
// physically cancel before the controller corrects anything (see
// Access), so measured overhead is at or below this factor — asserted
// by TestExpectedShiftOverheadBoundsEngine.
func ExpectedShiftOverhead(errorRate float64) (float64, error) {
	if errorRate < 0 || errorRate >= 1 {
		return 0, fmt.Errorf("rtm: error rate must be in [0,1), got %v", errorRate)
	}
	return 1 / (1 - errorRate), nil
}

// Faults returns the number of injected position errors so far.
func (f *FaultyEngine) Faults() int64 { return f.faults }

// CorrectiveShifts returns the extra shifts spent on re-alignment.
func (f *FaultyEngine) CorrectiveShifts() int64 { return f.corrective }

// NominalShifts returns the fault-free shift count (the cost model's
// number).
func (f *FaultyEngine) NominalShifts() int64 { return f.engine.Shifts() }

// Reset cold-starts the engine and clears fault counters (the fault RNG
// stream continues, so distinct phases see distinct errors).
func (f *FaultyEngine) Reset() {
	f.engine.Reset()
	f.faults = 0
	f.corrective = 0
}
