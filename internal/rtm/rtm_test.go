package rtm

import (
	"testing"
	"testing/quick"
)

func TestTableIGeometry(t *testing.T) {
	for _, dbcs := range TableIDBCCounts() {
		g, err := TableIGeometry(dbcs)
		if err != nil {
			t.Fatalf("TableIGeometry(%d): %v", dbcs, err)
		}
		if err := g.Validate(); err != nil {
			t.Fatalf("geometry %d DBCs invalid: %v", dbcs, err)
		}
		// Iso-capacity: always 4 KiB.
		if got := g.CapacityBits(); got != 4*1024*8 {
			t.Errorf("%d DBCs: capacity = %d bits, want 32768", dbcs, got)
		}
		if g.TracksPerDBC != 32 {
			t.Errorf("%d DBCs: tracks = %d, want 32", dbcs, g.TracksPerDBC)
		}
		if g.DBCs() != dbcs {
			t.Errorf("DBCs() = %d, want %d", g.DBCs(), dbcs)
		}
	}
	if _, err := TableIGeometry(3); err == nil {
		t.Error("TableIGeometry(3) should fail")
	}
}

func TestTableIDomainCounts(t *testing.T) {
	want := map[int]int{2: 512, 4: 256, 8: 128, 16: 64}
	for dbcs, domains := range want {
		g, _ := TableIGeometry(dbcs)
		if g.DomainsPerTrack != domains {
			t.Errorf("%d DBCs: domains = %d, want %d", dbcs, g.DomainsPerTrack, domains)
		}
		if g.WordsPerDBC() != domains {
			t.Errorf("%d DBCs: words/DBC = %d, want %d", dbcs, g.WordsPerDBC(), domains)
		}
	}
}

func TestGeometryValidate(t *testing.T) {
	good := Geometry{Banks: 1, SubarraysPerBank: 1, DBCsPerSubarray: 2,
		TracksPerDBC: 32, DomainsPerTrack: 64, PortsPerTrack: 1}
	if err := good.Validate(); err != nil {
		t.Errorf("valid geometry rejected: %v", err)
	}
	cases := []Geometry{
		{},
		{Banks: 1, SubarraysPerBank: 1, DBCsPerSubarray: 1, TracksPerDBC: 32, DomainsPerTrack: 4, PortsPerTrack: 5},
		{Banks: 1, SubarraysPerBank: 1, DBCsPerSubarray: 1, TracksPerDBC: 32, DomainsPerTrack: 4, PortsPerTrack: 0},
		{Banks: -1, SubarraysPerBank: 1, DBCsPerSubarray: 1, TracksPerDBC: 32, DomainsPerTrack: 4, PortsPerTrack: 1},
	}
	for i, g := range cases {
		if err := g.Validate(); err == nil {
			t.Errorf("case %d: invalid geometry accepted: %+v", i, g)
		}
	}
}

func TestShiftEngineSinglePort(t *testing.T) {
	e, err := NewShiftEngine(16, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Cold start is free.
	if c, _ := e.Access(5); c != 0 {
		t.Errorf("cold access cost = %d, want 0", c)
	}
	// |7-5| = 2.
	if c, _ := e.Access(7); c != 2 {
		t.Errorf("5->7 cost = %d, want 2", c)
	}
	// Same location: free.
	if c, _ := e.Access(7); c != 0 {
		t.Errorf("7->7 cost = %d, want 0", c)
	}
	if c, _ := e.Access(0); c != 7 {
		t.Errorf("7->0 cost = %d, want 7", c)
	}
	if e.Shifts() != 9 {
		t.Errorf("total shifts = %d, want 9", e.Shifts())
	}
	if e.Accesses() != 4 {
		t.Errorf("accesses = %d, want 4", e.Accesses())
	}
}

func TestShiftEngineColdStartCharged(t *testing.T) {
	e, _ := NewShiftEngine(16, 1)
	e.ChargeColdStart = true
	if c, _ := e.Access(5); c != 5 {
		t.Errorf("charged cold access cost = %d, want 5", c)
	}
}

func TestShiftEngineTwoPorts(t *testing.T) {
	// Ports at 0 and 8 for 16 domains.
	e, _ := NewShiftEngine(16, 2)
	ports := e.Ports()
	if len(ports) != 2 || ports[0] != 0 || ports[1] != 8 {
		t.Fatalf("ports = %v, want [0 8]", ports)
	}
	// Cold: free, aligns port 8 under location 9 (nearest).
	if c, _ := e.Access(9); c != 0 {
		t.Errorf("cold cost = %d, want 0", c)
	}
	// offset is now 1 (9-8). Accessing 2: via port 0 needs offset 2
	// (dist 1); via port 8 needs offset -6 (dist 7). Expect 1.
	if c, _ := e.Access(2); c != 1 {
		t.Errorf("9->2 with 2 ports cost = %d, want 1", c)
	}
}

func TestShiftEngineErrors(t *testing.T) {
	if _, err := NewShiftEngine(0, 1); err == nil {
		t.Error("0 domains accepted")
	}
	if _, err := NewShiftEngine(8, 0); err == nil {
		t.Error("0 ports accepted")
	}
	if _, err := NewShiftEngine(8, 9); err == nil {
		t.Error("more ports than domains accepted")
	}
	e, _ := NewShiftEngine(8, 1)
	if _, err := e.Access(8); err == nil {
		t.Error("out-of-range access accepted")
	}
	if _, err := e.Access(-1); err == nil {
		t.Error("negative access accepted")
	}
	if _, err := e.CostOf(99); err == nil {
		t.Error("out-of-range CostOf accepted")
	}
}

func TestCostOfMatchesAccess(t *testing.T) {
	f := func(raw []uint8) bool {
		e, _ := NewShiftEngine(32, 1)
		for _, r := range raw {
			x := int(r % 32)
			want, _ := e.CostOf(x)
			got, _ := e.Access(x)
			if got != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: with a single port the engine's cost equals |x - prev| and the
// total equals the sum of absolute first differences.
func TestSinglePortMatchesAbsoluteDifference(t *testing.T) {
	f := func(raw []uint8) bool {
		e, _ := NewShiftEngine(64, 1)
		prev := -1
		var want int64
		for _, r := range raw {
			x := int(r % 64)
			c, err := e.Access(x)
			if err != nil {
				return false
			}
			exp := 0
			if prev >= 0 {
				exp = abs(x - prev)
			}
			if c != exp {
				return false
			}
			want += int64(exp)
			prev = x
		}
		return e.Shifts() == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: more ports never cost more, access by access, for the same
// request stream.
func TestMorePortsNeverWorse(t *testing.T) {
	f := func(raw []uint8, portsRaw uint8) bool {
		p := int(portsRaw%4) + 1
		e1, _ := NewShiftEngine(64, 1)
		ep, _ := NewShiftEngine(64, p)
		var t1, tp int64
		for _, r := range raw {
			x := int(r % 64)
			c1, _ := e1.Access(x)
			cp, _ := ep.Access(x)
			t1 += int64(c1)
			tp += int64(cp)
		}
		// Note: per-access greedy with more ports could in theory lose on
		// adversarial streams, but totals over the same greedy policy with
		// strictly more aligned ports at position 0 plus extras are safe
		// per-access: the 1-port engine's chosen offset is always available
		// to the p-port engine too, only compared against more options.
		return tp <= t1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestControllerRouting(t *testing.T) {
	g, _ := TableIGeometry(4)
	c, err := NewController(g)
	if err != nil {
		t.Fatal(err)
	}
	if c.NumDBCs() != 4 {
		t.Fatalf("NumDBCs = %d, want 4", c.NumDBCs())
	}
	// Independent engines: shifting in DBC 0 does not affect DBC 1.
	c.Access(0, 0)
	c.Access(0, 10)
	c.Access(1, 5)
	c.Access(1, 5)
	if got := c.TotalShifts(); got != 10 {
		t.Errorf("total shifts = %d, want 10", got)
	}
	if got := c.TotalAccesses(); got != 4 {
		t.Errorf("total accesses = %d, want 4", got)
	}
	if _, err := c.Access(9, 0); err == nil {
		t.Error("out-of-range DBC accepted")
	}
	c.Reset()
	if c.TotalShifts() != 0 || c.TotalAccesses() != 0 {
		t.Error("Reset did not clear counters")
	}
}

func TestEngineReset(t *testing.T) {
	e, _ := NewShiftEngine(8, 1)
	e.Access(3)
	e.Access(7)
	e.Reset()
	if e.Shifts() != 0 || e.Accesses() != 0 || e.Offset() != 0 {
		t.Error("Reset left state behind")
	}
	// Cold again: free access.
	if c, _ := e.Access(6); c != 0 {
		t.Error("engine not cold after Reset")
	}
}

func TestPortPositionsRule(t *testing.T) {
	pos, err := PortPositions(8, 2)
	if err != nil || len(pos) != 2 || pos[0] != 0 || pos[1] != 4 {
		t.Fatalf("PortPositions(8,2) = %v, %v", pos, err)
	}
	pos, err = PortPositions(9, 3)
	if err != nil || pos[0] != 0 || pos[1] != 3 || pos[2] != 6 {
		t.Fatalf("PortPositions(9,3) = %v, %v", pos, err)
	}
	if _, err := PortPositions(0, 1); err == nil {
		t.Error("zero domains accepted")
	}
	if _, err := PortPositions(4, 5); err == nil {
		t.Error("more ports than domains accepted")
	}
	g, err := TableIGeometry(4)
	if err != nil {
		t.Fatal(err)
	}
	gp, err := g.PortPositions()
	if err != nil || len(gp) != 1 || gp[0] != 0 {
		t.Fatalf("Table I port layout = %v, %v", gp, err)
	}
}

func TestNewShiftEngineAt(t *testing.T) {
	// A grown track keeps the fabricated layout: 12 domains, ports at
	// the 8-domain geometry's positions.
	e, err := NewShiftEngineAt(12, []int{0, 4})
	if err != nil {
		t.Fatal(err)
	}
	if got := e.Ports(); got[0] != 0 || got[1] != 4 {
		t.Fatalf("ports = %v", got)
	}
	// Equivalent accesses through NewShiftEngine(12, 2) would use ports
	// {0, 6}; pin the layouts apart.
	e2, _ := NewShiftEngine(12, 2)
	if got := e2.Ports(); got[1] == 4 {
		t.Fatalf("respaced layout %v unexpectedly equals fabricated layout", got)
	}
	if _, err := NewShiftEngineAt(4, nil); err == nil {
		t.Error("empty layout accepted")
	}
	if _, err := NewShiftEngineAt(4, []int{0, 4}); err == nil {
		t.Error("out-of-range port accepted")
	}
	if _, err := NewShiftEngineAt(4, []int{2, 1}); err == nil {
		t.Error("non-increasing layout accepted")
	}
}

func TestIsoCapacityGeometry(t *testing.T) {
	for _, q := range TableIDBCCounts() {
		ti, err := TableIGeometry(q)
		if err != nil {
			t.Fatal(err)
		}
		iso, err := IsoCapacityGeometry(q, 1)
		if err != nil {
			t.Fatal(err)
		}
		if ti != iso {
			t.Errorf("q=%d: Table I %+v != iso-capacity %+v", q, ti, iso)
		}
	}
	g, err := IsoCapacityGeometry(3, 2)
	if err != nil {
		t.Fatal(err)
	}
	if g.DomainsPerTrack != 341 || g.PortsPerTrack != 2 {
		t.Errorf("IsoCapacityGeometry(3,2) = %+v", g)
	}
	// Degenerate: domain count floored at the port count.
	g, err = IsoCapacityGeometry(2048, 3)
	if err != nil {
		t.Fatal(err)
	}
	if g.DomainsPerTrack != 3 {
		t.Errorf("floor failed: %+v", g)
	}
	if _, err := IsoCapacityGeometry(0, 1); err == nil {
		t.Error("zero DBCs accepted")
	}
	if _, err := IsoCapacityGeometry(4, 0); err == nil {
		t.Error("zero ports accepted")
	}
}
