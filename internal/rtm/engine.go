package rtm

import "fmt"

// ShiftEngine models the shift controller of one DBC. The engine tracks the
// current shift offset of the (lock-stepped) tracks and, for each requested
// word location, computes how many single-domain shift operations are
// needed to align that location with an access port.
//
// Physical model: a track has Domains word locations at logical positions
// 0..Domains-1 and Ports access ports at fixed physical positions. When the
// track has been shifted by s domains, location x sits over port p when
// x - s == p. Accessing x through port p therefore requires the shift
// offset to become x - p; the controller picks the port minimizing the
// distance from the current offset. With one port at position 0, the cost
// of accessing x after y is exactly |x - y| — the cost model of the paper.
//
// The first access of a cold engine is free by default, matching the
// paper's arithmetic in Fig. 3 (the port is considered pre-aligned to the
// first accessed location). Set ChargeColdStart to charge it from offset 0.
type ShiftEngine struct {
	domains int
	ports   []int
	offset  int
	warm    bool
	// ChargeColdStart charges the first access as a move from shift
	// offset 0 instead of treating it as free.
	ChargeColdStart bool

	shifts   int64
	accesses int64
}

// PortPositions returns the canonical evenly-spread port layout for a
// track of the given length: port j sits at floor(j*domains/ports), so a
// single port sits at position 0. This is the one deterministic rule
// every layer derives port positions from — the shift engines here, the
// cycle-accurate model in internal/rtmsim, the trace simulator
// (sim.RunSequence) and the placement cost stack
// (placement.NewPortModel) — so a placement priced by one layer scores
// identically on every other.
func PortPositions(domains, ports int) ([]int, error) {
	if domains <= 0 {
		return nil, fmt.Errorf("rtm: domains must be positive, got %d", domains)
	}
	if ports <= 0 || ports > domains {
		return nil, fmt.Errorf("rtm: ports must be in [1,%d], got %d", domains, ports)
	}
	pos := make([]int, ports)
	for j := range pos {
		pos[j] = j * domains / ports
	}
	return pos, nil
}

// NewShiftEngine creates a shift engine for a DBC with the given number of
// word locations and evenly spaced ports. ports must be in [1, domains].
func NewShiftEngine(domains, ports int) (*ShiftEngine, error) {
	pos, err := PortPositions(domains, ports)
	if err != nil {
		return nil, err
	}
	return &ShiftEngine{domains: domains, ports: pos}, nil
}

// NewShiftEngineAt creates a shift engine with an explicit port layout —
// the construction the simulator uses when a capacity-relaxed placement
// grows the track past the configured geometry: the domain count grows,
// but the ports stay at the physical positions the geometry fabricated
// them at (growing would otherwise silently displace them). Positions
// must be strictly increasing and inside [0, domains).
func NewShiftEngineAt(domains int, positions []int) (*ShiftEngine, error) {
	if domains <= 0 {
		return nil, fmt.Errorf("rtm: domains must be positive, got %d", domains)
	}
	if len(positions) == 0 {
		return nil, fmt.Errorf("rtm: at least one port position required")
	}
	for i, p := range positions {
		if p < 0 || p >= domains {
			return nil, fmt.Errorf("rtm: port position %d outside [0,%d)", p, domains)
		}
		if i > 0 && p <= positions[i-1] {
			return nil, fmt.Errorf("rtm: port positions must be strictly increasing, got %v", positions)
		}
	}
	return &ShiftEngine{domains: domains, ports: append([]int(nil), positions...)}, nil
}

// NewShiftEngineForGeometry builds a per-DBC engine from a geometry.
func NewShiftEngineForGeometry(g Geometry) (*ShiftEngine, error) {
	if err := g.Validate(); err != nil {
		return nil, err
	}
	return NewShiftEngine(g.DomainsPerTrack, g.PortsPerTrack)
}

// Domains returns the number of word locations the engine serves.
func (e *ShiftEngine) Domains() int { return e.domains }

// Ports returns a copy of the port positions.
func (e *ShiftEngine) Ports() []int { return append([]int(nil), e.ports...) }

// Offset returns the current shift offset of the track.
func (e *ShiftEngine) Offset() int { return e.offset }

// CostOf returns the number of shifts that accessing location x would take
// from the current state, without performing the access.
func (e *ShiftEngine) CostOf(x int) (int, error) {
	if x < 0 || x >= e.domains {
		return 0, fmt.Errorf("rtm: location %d out of range [0,%d)", x, e.domains)
	}
	if !e.warm && !e.ChargeColdStart {
		return 0, nil
	}
	best := -1
	for _, p := range e.ports {
		need := x - p
		d := need - e.offset
		if d < 0 {
			d = -d
		}
		if best < 0 || d < best {
			best = d
		}
	}
	return best, nil
}

// Access aligns location x with the nearest port, returning the number of
// shift operations issued.
func (e *ShiftEngine) Access(x int) (int, error) {
	if x < 0 || x >= e.domains {
		return 0, fmt.Errorf("rtm: location %d out of range [0,%d)", x, e.domains)
	}
	if !e.warm {
		e.warm = true
		if !e.ChargeColdStart {
			// Pre-align the cheapest port to x for free.
			e.offset = x - e.nearestPort(x)
			e.accesses++
			return 0, nil
		}
	}
	bestCost := -1
	bestOffset := 0
	for _, p := range e.ports {
		need := x - p
		d := need - e.offset
		if d < 0 {
			d = -d
		}
		if bestCost < 0 || d < bestCost {
			bestCost = d
			bestOffset = need
		}
	}
	e.offset = bestOffset
	e.shifts += int64(bestCost)
	e.accesses++
	return bestCost, nil
}

func (e *ShiftEngine) nearestPort(x int) int {
	best := e.ports[0]
	bestD := abs(x - best)
	for _, p := range e.ports[1:] {
		if d := abs(x - p); d < bestD {
			bestD = d
			best = p
		}
	}
	return best
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

// Shifts returns the total number of shift operations issued so far.
func (e *ShiftEngine) Shifts() int64 { return e.shifts }

// Accesses returns the total number of accesses served so far.
func (e *ShiftEngine) Accesses() int64 { return e.accesses }

// Reset returns the engine to the cold state with zero counters.
func (e *ShiftEngine) Reset() {
	e.offset = 0
	e.warm = false
	e.shifts = 0
	e.accesses = 0
}

// Controller aggregates one shift engine per DBC and routes accesses by
// (dbc, offset) pairs, accumulating per-DBC and total statistics. It is the
// minimal RTSim-like controller needed for placement studies.
type Controller struct {
	engines []*ShiftEngine
}

// NewController builds a controller for the geometry, one engine per DBC.
func NewController(g Geometry) (*Controller, error) {
	if err := g.Validate(); err != nil {
		return nil, err
	}
	c := &Controller{}
	for i := 0; i < g.DBCs(); i++ {
		e, err := NewShiftEngine(g.DomainsPerTrack, g.PortsPerTrack)
		if err != nil {
			return nil, err
		}
		c.engines = append(c.engines, e)
	}
	return c, nil
}

// NumDBCs returns the number of DBCs the controller manages.
func (c *Controller) NumDBCs() int { return len(c.engines) }

// Engine exposes the shift engine of one DBC (for configuration such as
// ChargeColdStart).
func (c *Controller) Engine(dbc int) (*ShiftEngine, error) {
	if dbc < 0 || dbc >= len(c.engines) {
		return nil, fmt.Errorf("rtm: DBC %d out of range [0,%d)", dbc, len(c.engines))
	}
	return c.engines[dbc], nil
}

// Access serves an access to the given word offset of the given DBC and
// returns the shifts issued.
func (c *Controller) Access(dbc, offset int) (int, error) {
	e, err := c.Engine(dbc)
	if err != nil {
		return 0, err
	}
	return e.Access(offset)
}

// TotalShifts sums shift counts over all DBCs.
func (c *Controller) TotalShifts() int64 {
	var t int64
	for _, e := range c.engines {
		t += e.Shifts()
	}
	return t
}

// TotalAccesses sums access counts over all DBCs.
func (c *Controller) TotalAccesses() int64 {
	var t int64
	for _, e := range c.engines {
		t += e.Accesses()
	}
	return t
}

// Reset cold-starts every DBC engine.
func (c *Controller) Reset() {
	for _, e := range c.engines {
		e.Reset()
	}
}
