package rtm

import (
	"math/rand"
	"testing"
)

func TestFaultyEngineZeroRateMatchesIdeal(t *testing.T) {
	ideal, _ := NewShiftEngine(64, 1)
	faulty, err := NewFaultyEngine(64, 1, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 200; i++ {
		x := rng.Intn(64)
		a, _ := ideal.Access(x)
		b, err := faulty.Access(x)
		if err != nil {
			t.Fatal(err)
		}
		if a != b {
			t.Fatalf("access %d: faulty(0) cost %d != ideal %d", i, b, a)
		}
	}
	if faulty.Faults() != 0 || faulty.CorrectiveShifts() != 0 {
		t.Error("zero-rate engine recorded faults")
	}
}

func TestFaultyEngineOverheadScalesWithRate(t *testing.T) {
	run := func(rate float64) (physical, nominal int64) {
		f, err := NewFaultyEngine(128, 1, rate, 7)
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(5))
		for i := 0; i < 2000; i++ {
			n, err := f.Access(rng.Intn(128))
			if err != nil {
				t.Fatal(err)
			}
			physical += int64(n)
		}
		return physical, f.NominalShifts()
	}
	p0, n0 := run(0)
	if p0 != n0 {
		t.Fatalf("zero rate: physical %d != nominal %d", p0, n0)
	}
	pLow, nLow := run(0.01)
	pHigh, nHigh := run(0.10)
	if nLow != n0 || nHigh != n0 {
		t.Fatal("nominal counts must be rate-independent")
	}
	if pLow <= n0 {
		t.Errorf("1%% rate produced no overhead: %d vs %d", pLow, n0)
	}
	if pHigh <= pLow {
		t.Errorf("10%% rate (%d) not costlier than 1%% (%d)", pHigh, pLow)
	}
	// Overhead should stay near rate/(1-rate): ~11% for rate 0.10.
	overhead := float64(pHigh-n0) / float64(n0)
	if overhead > 0.2 {
		t.Errorf("10%% rate overhead %.1f%% implausibly high", 100*overhead)
	}
}

func TestFaultyEngineDeterministic(t *testing.T) {
	run := func() int64 {
		f, _ := NewFaultyEngine(64, 1, 0.05, 42)
		rng := rand.New(rand.NewSource(9))
		var total int64
		for i := 0; i < 500; i++ {
			n, _ := f.Access(rng.Intn(64))
			total += int64(n)
		}
		return total
	}
	if run() != run() {
		t.Error("fault injection not deterministic for a fixed seed")
	}
}

func TestFaultyEngineValidation(t *testing.T) {
	if _, err := NewFaultyEngine(64, 1, -0.1, 1); err == nil {
		t.Error("negative rate accepted")
	}
	if _, err := NewFaultyEngine(64, 1, 1.0, 1); err == nil {
		t.Error("rate 1.0 accepted (correction would never terminate)")
	}
	f, _ := NewFaultyEngine(8, 1, 0.1, 1)
	if _, err := f.Access(9); err == nil {
		t.Error("out-of-range access accepted")
	}
	f.Access(3)
	f.Reset()
	if f.NominalShifts() != 0 {
		t.Error("Reset did not clear the engine")
	}
}
