package rtm

import (
	"math/rand"
	"testing"
)

func TestFaultyEngineZeroRateMatchesIdeal(t *testing.T) {
	ideal, _ := NewShiftEngine(64, 1)
	faulty, err := NewFaultyEngine(64, 1, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 200; i++ {
		x := rng.Intn(64)
		a, _ := ideal.Access(x)
		b, err := faulty.Access(x)
		if err != nil {
			t.Fatal(err)
		}
		if a != b {
			t.Fatalf("access %d: faulty(0) cost %d != ideal %d", i, b, a)
		}
	}
	if faulty.Faults() != 0 || faulty.CorrectiveShifts() != 0 {
		t.Error("zero-rate engine recorded faults")
	}
}

func TestFaultyEngineOverheadScalesWithRate(t *testing.T) {
	run := func(rate float64) (physical, nominal int64) {
		f, err := NewFaultyEngine(128, 1, rate, 7)
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(5))
		for i := 0; i < 2000; i++ {
			n, err := f.Access(rng.Intn(128))
			if err != nil {
				t.Fatal(err)
			}
			physical += int64(n)
		}
		return physical, f.NominalShifts()
	}
	p0, n0 := run(0)
	if p0 != n0 {
		t.Fatalf("zero rate: physical %d != nominal %d", p0, n0)
	}
	pLow, nLow := run(0.01)
	pHigh, nHigh := run(0.10)
	if nLow != n0 || nHigh != n0 {
		t.Fatal("nominal counts must be rate-independent")
	}
	if pLow <= n0 {
		t.Errorf("1%% rate produced no overhead: %d vs %d", pLow, n0)
	}
	if pHigh <= pLow {
		t.Errorf("10%% rate (%d) not costlier than 1%% (%d)", pHigh, pLow)
	}
	// Overhead should stay near rate/(1-rate): ~11% for rate 0.10.
	overhead := float64(pHigh-n0) / float64(n0)
	if overhead > 0.2 {
		t.Errorf("10%% rate overhead %.1f%% implausibly high", 100*overhead)
	}
}

func TestFaultyEngineDeterministic(t *testing.T) {
	run := func() int64 {
		f, _ := NewFaultyEngine(64, 1, 0.05, 42)
		rng := rand.New(rand.NewSource(9))
		var total int64
		for i := 0; i < 500; i++ {
			n, _ := f.Access(rng.Intn(64))
			total += int64(n)
		}
		return total
	}
	if run() != run() {
		t.Error("fault injection not deterministic for a fixed seed")
	}
}

// TestFaultyEngineSignedSlipExpectation pins the corrected burst model:
// slips are ±1 with equal probability, so the residual misalignment a
// burst needs correcting is the *net* slip, not the slip count. For a
// burst of n shifts at rate r the net slip is a sum of k ~ Bin(n, r)
// independent signs: mean 0, variance E[k] = n·r, hence
// E|net| ≈ sqrt(2·n·r/π) (half-normal). With n = 100 and r = 0.2 that
// is ≈ 3.6 corrective shifts per burst (≈ 4.2 with the recursive
// correction rounds) — the magnitude-sum model charged ≈ 25. The test
// drives 2000 identical 100-shift bursts and pins the mean corrective
// cost to the corrected expectation's band; the standard error of the
// mean is ≈ 0.06, so the band is >10 sigma wide on both sides.
func TestFaultyEngineSignedSlipExpectation(t *testing.T) {
	const (
		bursts = 2000
		n      = 100
		rate   = 0.2
	)
	f, err := NewFaultyEngine(n+1, 1, rate, 11)
	if err != nil {
		t.Fatal(err)
	}
	f.Access(0) // warm up: the first access is free
	for i := 0; i < bursts; i++ {
		if i%2 == 0 {
			f.Access(n)
		} else {
			f.Access(0)
		}
	}
	meanCorrective := float64(f.CorrectiveShifts()) / bursts
	if meanCorrective < 2.5 || meanCorrective > 5.5 {
		t.Errorf("mean corrective shifts per 100-shift burst = %.2f, want ≈ 4.2 (signed net slip)", meanCorrective)
	}
	// The old magnitude-sum accounting would sit near r/(1-r)·n = 25
	// per burst; anything close means cancellation is not happening.
	if meanCorrective > 8 {
		t.Errorf("mean corrective %.2f per burst: opposite-direction slips are not cancelling", meanCorrective)
	}
	// Faults counts every injected slip; corrections only the residual.
	meanFaults := float64(f.Faults()) / bursts
	if meanFaults < 15 || meanFaults > 26 {
		t.Errorf("mean injected slips per burst = %.2f, want ≈ 21", meanFaults)
	}
	if f.CorrectiveShifts() >= f.Faults() {
		t.Errorf("corrective shifts %d not below injected slips %d", f.CorrectiveShifts(), f.Faults())
	}
}

func TestFaultyEngineValidation(t *testing.T) {
	if _, err := NewFaultyEngine(64, 1, -0.1, 1); err == nil {
		t.Error("negative rate accepted")
	}
	if _, err := NewFaultyEngine(64, 1, 1.0, 1); err == nil {
		t.Error("rate 1.0 accepted (correction would never terminate)")
	}
	f, _ := NewFaultyEngine(8, 1, 0.1, 1)
	if _, err := f.Access(9); err == nil {
		t.Error("out-of-range access accepted")
	}
	f.Access(3)
	f.Reset()
	if f.NominalShifts() != 0 {
		t.Error("Reset did not clear the engine")
	}
}
