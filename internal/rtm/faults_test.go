package rtm

import (
	"fmt"
	"math/rand"
	"testing"
)

func TestFaultyEngineZeroRateMatchesIdeal(t *testing.T) {
	ideal, _ := NewShiftEngine(64, 1)
	faulty, err := NewFaultyEngine(64, 1, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 200; i++ {
		x := rng.Intn(64)
		a, _ := ideal.Access(x)
		b, err := faulty.Access(x)
		if err != nil {
			t.Fatal(err)
		}
		if a != b {
			t.Fatalf("access %d: faulty(0) cost %d != ideal %d", i, b, a)
		}
	}
	if faulty.Faults() != 0 || faulty.CorrectiveShifts() != 0 {
		t.Error("zero-rate engine recorded faults")
	}
}

func TestFaultyEngineOverheadScalesWithRate(t *testing.T) {
	run := func(rate float64) (physical, nominal int64) {
		f, err := NewFaultyEngine(128, 1, rate, 7)
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(5))
		for i := 0; i < 2000; i++ {
			n, err := f.Access(rng.Intn(128))
			if err != nil {
				t.Fatal(err)
			}
			physical += int64(n)
		}
		return physical, f.NominalShifts()
	}
	p0, n0 := run(0)
	if p0 != n0 {
		t.Fatalf("zero rate: physical %d != nominal %d", p0, n0)
	}
	pLow, nLow := run(0.01)
	pHigh, nHigh := run(0.10)
	if nLow != n0 || nHigh != n0 {
		t.Fatal("nominal counts must be rate-independent")
	}
	if pLow <= n0 {
		t.Errorf("1%% rate produced no overhead: %d vs %d", pLow, n0)
	}
	if pHigh <= pLow {
		t.Errorf("10%% rate (%d) not costlier than 1%% (%d)", pHigh, pLow)
	}
	// Overhead should stay near rate/(1-rate): ~11% for rate 0.10.
	overhead := float64(pHigh-n0) / float64(n0)
	if overhead > 0.2 {
		t.Errorf("10%% rate overhead %.1f%% implausibly high", 100*overhead)
	}
}

func TestFaultyEngineDeterministic(t *testing.T) {
	run := func() int64 {
		f, _ := NewFaultyEngine(64, 1, 0.05, 42)
		rng := rand.New(rand.NewSource(9))
		var total int64
		for i := 0; i < 500; i++ {
			n, _ := f.Access(rng.Intn(64))
			total += int64(n)
		}
		return total
	}
	if run() != run() {
		t.Error("fault injection not deterministic for a fixed seed")
	}
}

// TestFaultyEngineSignedSlipExpectation pins the corrected burst model
// across error rates: slips are ±1 with equal probability, so the
// residual misalignment a burst needs correcting is the *net* slip, not
// the slip count. For a burst of n shifts at rate r the net slip is a
// sum of k ~ Bin(n, r) independent signs: mean 0, variance E[k] = n·r,
// hence E|net| ≈ sqrt(2·n·r/π) (half-normal), plus the geometric tail
// of the recursive correction rounds. With n = 100 that is ≈ 1.8 / 4.2
// / 7 corrective shifts per burst at r = 0.05 / 0.2 / 0.4 — where the
// magnitude-sum model would charge ≈ r/(1-r)·n (5.3 / 25 / 67). The
// test drives 2000 identical 100-shift bursts per rate and pins the
// mean corrective cost to the corrected expectation's band; the
// standard error of each mean is well under a tenth of the band width.
func TestFaultyEngineSignedSlipExpectation(t *testing.T) {
	const (
		bursts = 2000
		n      = 100
	)
	cases := []struct {
		rate                         float64
		minCorrective, maxCorrective float64
		minFaults, maxFaults         float64
	}{
		{rate: 0.05, minCorrective: 1.0, maxCorrective: 3.0, minFaults: 3.5, maxFaults: 7.5},
		{rate: 0.2, minCorrective: 2.5, maxCorrective: 5.5, minFaults: 15, maxFaults: 26},
		{rate: 0.4, minCorrective: 4.0, maxCorrective: 10.5, minFaults: 34, maxFaults: 55},
	}
	for _, tc := range cases {
		t.Run(fmt.Sprintf("rate=%v", tc.rate), func(t *testing.T) {
			f, err := NewFaultyEngine(n+1, 1, tc.rate, 11)
			if err != nil {
				t.Fatal(err)
			}
			if f.ErrorRate() != tc.rate {
				t.Fatalf("ErrorRate() = %v, want %v", f.ErrorRate(), tc.rate)
			}
			f.Access(0) // warm up: the first access is free
			for i := 0; i < bursts; i++ {
				if i%2 == 0 {
					f.Access(n)
				} else {
					f.Access(0)
				}
			}
			meanCorrective := float64(f.CorrectiveShifts()) / bursts
			if meanCorrective < tc.minCorrective || meanCorrective > tc.maxCorrective {
				t.Errorf("mean corrective shifts per %d-shift burst = %.2f, want in [%.1f, %.1f] (signed net slip)",
					n, meanCorrective, tc.minCorrective, tc.maxCorrective)
			}
			// The old magnitude-sum accounting would sit near r/(1-r)·n
			// per burst; anything close means cancellation is broken.
			if magnitude := tc.rate / (1 - tc.rate) * n; meanCorrective > magnitude/2 {
				t.Errorf("mean corrective %.2f per burst near the magnitude-sum model's %.1f: opposite-direction slips are not cancelling",
					meanCorrective, magnitude)
			}
			// Faults counts every injected slip; corrections only the
			// residual.
			meanFaults := float64(f.Faults()) / bursts
			if meanFaults < tc.minFaults || meanFaults > tc.maxFaults {
				t.Errorf("mean injected slips per burst = %.2f, want in [%.1f, %.1f]", meanFaults, tc.minFaults, tc.maxFaults)
			}
			if f.CorrectiveShifts() >= f.Faults() {
				t.Errorf("corrective shifts %d not below injected slips %d", f.CorrectiveShifts(), f.Faults())
			}
		})
	}
}

// TestExpectedShiftOverheadBoundsEngine checks the analytic 1/(1-p)
// factor the fault-aware cost model prices with: it must upper-bound
// the measured physical/nominal shift ratio of a real FaultyEngine run
// (signed-slip cancellation keeps the truth below the bound) while
// staying meaningful — at least 1, and exceeded by no run.
func TestExpectedShiftOverheadBoundsEngine(t *testing.T) {
	for _, rate := range []float64{0, 0.01, 0.05, 0.2, 0.4} {
		t.Run(fmt.Sprintf("rate=%v", rate), func(t *testing.T) {
			bound, err := ExpectedShiftOverhead(rate)
			if err != nil {
				t.Fatal(err)
			}
			if bound < 1 {
				t.Fatalf("bound %v below 1", bound)
			}
			f, err := NewFaultyEngine(128, 1, rate, 3)
			if err != nil {
				t.Fatal(err)
			}
			rng := rand.New(rand.NewSource(5))
			var physical int64
			for i := 0; i < 2000; i++ {
				c, err := f.Access(rng.Intn(128))
				if err != nil {
					t.Fatal(err)
				}
				physical += int64(c)
			}
			nominal := f.NominalShifts()
			if nominal == 0 {
				t.Fatal("no nominal shifts")
			}
			ratio := float64(physical) / float64(nominal)
			if ratio > bound {
				t.Errorf("measured overhead %.4f exceeds the analytic bound %.4f at rate %v", ratio, bound, rate)
			}
			if rate == 0 && ratio != 1 {
				t.Errorf("zero-rate ratio %v != 1", ratio)
			}
		})
	}
	if _, err := ExpectedShiftOverhead(-0.1); err == nil {
		t.Error("negative rate accepted")
	}
	if _, err := ExpectedShiftOverhead(1); err == nil {
		t.Error("rate 1 accepted (the series diverges)")
	}
}

func TestFaultyEngineValidation(t *testing.T) {
	if _, err := NewFaultyEngine(64, 1, -0.1, 1); err == nil {
		t.Error("negative rate accepted")
	}
	if _, err := NewFaultyEngine(64, 1, 1.0, 1); err == nil {
		t.Error("rate 1.0 accepted (correction would never terminate)")
	}
	f, _ := NewFaultyEngine(8, 1, 0.1, 1)
	if _, err := f.Access(9); err == nil {
		t.Error("out-of-range access accepted")
	}
	f.Access(3)
	f.Reset()
	if f.NominalShifts() != 0 {
		t.Error("Reset did not clear the engine")
	}
}
