// Package rtm models the racetrack-memory device: its geometry (banks,
// subarrays, domain block clusters, nanotracks, domains), the access-port
// configuration, and a shift engine that tracks track alignment and counts
// the shift operations an RTM controller would issue.
//
// The model follows section II-A of "Generalized Data Placement Strategies
// for Racetrack Memories" (DATE 2020): a DBC groups T nanotracks; a memory
// object (one T-bit word) is bit-interleaved across the T tracks at one
// domain position, so accessing it means shifting all tracks of the DBC in
// lock-step until that position is under an access port.
package rtm

import (
	"errors"
	"fmt"
)

// Geometry describes one RTM array instance.
type Geometry struct {
	// Banks is the number of independent banks. Placement experiments in
	// the paper use a single bank.
	Banks int
	// SubarraysPerBank is the number of subarrays per bank.
	SubarraysPerBank int
	// DBCsPerSubarray is the number of domain block clusters per subarray.
	DBCsPerSubarray int
	// TracksPerDBC is T, the number of nanotracks ganged per DBC: one bit
	// of a word per track. Table I of the paper uses 32.
	TracksPerDBC int
	// DomainsPerTrack is K, the number of data domains (bits) per track,
	// i.e. the number of word locations per DBC.
	DomainsPerTrack int
	// PortsPerTrack is the number of read/write access ports per track.
	// The paper's evaluation uses 1; the generalized model accepts more.
	PortsPerTrack int
	// OverheadDomainsPerSide is the number of extra (data-free) domains on
	// each end of a track that allow shifting the full data region past a
	// port without losing bits. Physical racetracks need K-1 of them in
	// the worst case for a single-port track; the value only affects
	// reported area, not shift counts.
	OverheadDomainsPerSide int
}

// Validate checks that the geometry is physically meaningful.
func (g Geometry) Validate() error {
	switch {
	case g.Banks <= 0:
		return errors.New("rtm: Banks must be positive")
	case g.SubarraysPerBank <= 0:
		return errors.New("rtm: SubarraysPerBank must be positive")
	case g.DBCsPerSubarray <= 0:
		return errors.New("rtm: DBCsPerSubarray must be positive")
	case g.TracksPerDBC <= 0:
		return errors.New("rtm: TracksPerDBC must be positive")
	case g.DomainsPerTrack <= 0:
		return errors.New("rtm: DomainsPerTrack must be positive")
	case g.PortsPerTrack <= 0:
		return errors.New("rtm: PortsPerTrack must be positive")
	case g.PortsPerTrack > g.DomainsPerTrack:
		return fmt.Errorf("rtm: %d ports exceed %d domains per track",
			g.PortsPerTrack, g.DomainsPerTrack)
	case g.OverheadDomainsPerSide < 0:
		return errors.New("rtm: OverheadDomainsPerSide must be non-negative")
	}
	return nil
}

// DBCs returns the total number of DBCs in the array.
func (g Geometry) DBCs() int { return g.Banks * g.SubarraysPerBank * g.DBCsPerSubarray }

// CapacityBits returns the data capacity of the array in bits.
func (g Geometry) CapacityBits() int64 {
	return int64(g.DBCs()) * int64(g.TracksPerDBC) * int64(g.DomainsPerTrack)
}

// WordsPerDBC returns the number of word locations a DBC offers, which is
// the number of domains per track (one word per domain position).
func (g Geometry) WordsPerDBC() int { return g.DomainsPerTrack }

// PortPositions returns the geometry's canonical access-port layout:
// PortsPerTrack ports evenly spread over DomainsPerTrack domains (see
// the package-level PortPositions rule). The geometry must be valid.
func (g Geometry) PortPositions() ([]int, error) {
	return PortPositions(g.DomainsPerTrack, g.PortsPerTrack)
}

// PhysicalDomainsPerTrack returns the fabricated track length including
// the overhead domains on both ends that let the data region shift past
// the ports without losing bits.
func (g Geometry) PhysicalDomainsPerTrack() int {
	return g.DomainsPerTrack + 2*g.OverheadDomainsPerSide
}

// String summarizes the geometry.
func (g Geometry) String() string {
	return fmt.Sprintf("%d bank(s) x %d subarray(s) x %d DBC(s), %d tracks/DBC, %d domains/track, %d port(s)/track (%.1f KiB)",
		g.Banks, g.SubarraysPerBank, g.DBCsPerSubarray, g.TracksPerDBC,
		g.DomainsPerTrack, g.PortsPerTrack, float64(g.CapacityBits())/8192)
}

// TableIGeometry returns the iso-capacity 4 KiB geometry of Table I for the
// given DBC count (2, 4, 8 or 16): 32 tracks per DBC and 512/256/128/64
// domains per track respectively.
func TableIGeometry(dbcs int) (Geometry, error) {
	switch dbcs {
	case 2, 4, 8, 16:
		return IsoCapacityGeometry(dbcs, 1)
	}
	return Geometry{}, fmt.Errorf("rtm: no Table I configuration with %d DBCs (want 2, 4, 8 or 16)", dbcs)
}

// IsoCapacityGeometry generalizes the Table I rows to any DBC and port
// count under the same iso-capacity rule: 32 tracks per DBC and 1024
// words total, so DomainsPerTrack is 1024/dbcs (floored at the port
// count so the layout stays constructible). For dbcs in {2, 4, 8, 16}
// and one port this is exactly the Table I device. It is the single
// deterministic device rule the multi-port cost stack derives domain
// counts and port spacings from when no explicit geometry is at hand
// (see placement.Options.Ports and eval.PortsSweep), which keeps the
// optimizers' objective aligned with what sim.RunSequence later replays.
func IsoCapacityGeometry(dbcs, ports int) (Geometry, error) {
	if dbcs <= 0 {
		return Geometry{}, fmt.Errorf("rtm: DBC count must be positive, got %d", dbcs)
	}
	if ports <= 0 {
		return Geometry{}, fmt.Errorf("rtm: port count must be positive, got %d", ports)
	}
	domains := isoCapacityWords / dbcs
	if domains < ports {
		domains = ports
	}
	if domains < 1 {
		domains = 1
	}
	g := Geometry{
		Banks:            1,
		SubarraysPerBank: 1,
		DBCsPerSubarray:  dbcs,
		TracksPerDBC:     32,
		DomainsPerTrack:  domains,
		PortsPerTrack:    ports,
	}
	if err := g.Validate(); err != nil {
		return Geometry{}, err
	}
	return g, nil
}

// isoCapacityWords is the word total of the paper's 4 KiB array: 1024
// words of TracksPerDBC = 32 bits.
const isoCapacityWords = 1024

// TableIDBCCounts lists the DBC counts evaluated in the paper.
func TableIDBCCounts() []int { return []int{2, 4, 8, 16} }
