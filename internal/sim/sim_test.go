package sim

import (
	"math"
	"testing"

	"repro/internal/energy"
	"repro/internal/placement"
	"repro/internal/rtm"
	"repro/internal/trace"
)

func cfg4(t *testing.T) Config {
	t.Helper()
	c, err := TableIConfig(4)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestTableIConfig(t *testing.T) {
	for _, dbcs := range rtm.TableIDBCCounts() {
		c, err := TableIConfig(dbcs)
		if err != nil {
			t.Fatal(err)
		}
		if c.Geometry.DBCs() != dbcs || c.Params.DBCs != dbcs {
			t.Errorf("config mismatch for %d DBCs: geo=%d params=%d",
				dbcs, c.Geometry.DBCs(), c.Params.DBCs)
		}
	}
	if _, err := TableIConfig(5); err == nil {
		t.Error("TableIConfig(5) should fail")
	}
}

func TestRunSequenceCountsMatchCostModel(t *testing.T) {
	cfg := cfg4(t)
	s, _ := trace.NewNamedSequence("a", "b", "a", "c!", "b")
	p := &placement.Placement{DBC: [][]int{{0, 1}, {2}}}
	r, err := RunSequence(cfg, s, p)
	if err != nil {
		t.Fatal(err)
	}
	wantShifts, err := placement.ShiftCost(s, p)
	if err != nil {
		t.Fatal(err)
	}
	if r.Counts.Shifts != wantShifts {
		t.Errorf("shifts = %d, want %d", r.Counts.Shifts, wantShifts)
	}
	if r.Counts.Reads != 4 || r.Counts.Writes != 1 {
		t.Errorf("reads/writes = %d/%d, want 4/1", r.Counts.Reads, r.Counts.Writes)
	}
	wantLat := cfg.Params.LatencyNS(r.Counts)
	if math.Abs(r.LatencyNS-wantLat) > 1e-9 {
		t.Errorf("latency = %v, want %v", r.LatencyNS, wantLat)
	}
	wantE := cfg.Params.Energy(r.Counts)
	if math.Abs(r.Energy.TotalPJ()-wantE.TotalPJ()) > 1e-9 {
		t.Errorf("energy = %v, want %v", r.Energy.TotalPJ(), wantE.TotalPJ())
	}
}

func TestRunSequenceErrors(t *testing.T) {
	cfg := cfg4(t)
	s := trace.NewSequence(0, 1)
	// Too many DBCs used.
	wide := placement.NewEmpty(9)
	wide.DBC[0] = []int{0}
	wide.DBC[8] = []int{1}
	if _, err := RunSequence(cfg, s, wide); err == nil {
		t.Error("placement wider than device accepted")
	}
	// Unplaced variable.
	missing := &placement.Placement{DBC: [][]int{{0}}}
	if _, err := RunSequence(cfg, s, missing); err == nil {
		t.Error("unplaced variable accepted")
	}
}

func TestCapacityEnforcement(t *testing.T) {
	cfg, _ := TableIConfig(16) // 64 domains per DBC
	cfg.EnforceCapacity = true
	vars := make([]int, 100)
	for i := range vars {
		vars[i] = i
	}
	s := trace.NewSequence(vars...)
	p := &placement.Placement{DBC: [][]int{vars}}
	if _, err := RunSequence(cfg, s, p); err == nil {
		t.Error("overflowing placement accepted with EnforceCapacity")
	}
	cfg.EnforceCapacity = false
	if _, err := RunSequence(cfg, s, p); err != nil {
		t.Errorf("relaxed capacity should accept: %v", err)
	}
}

func TestRunSequencesAccumulate(t *testing.T) {
	cfg := cfg4(t)
	var total Result
	for _, s := range []*trace.Sequence{
		trace.NewSequence(0, 1, 0, 1),
		trace.NewSequence(0, 0, 1, 2),
	} {
		p, _, err := placement.Place(placement.StrategyDMAOFU, s, cfg.Geometry.DBCs(), placement.Options{})
		if err != nil {
			t.Fatal(err)
		}
		r, err := RunSequence(cfg, s, p)
		if err != nil {
			t.Fatal(err)
		}
		total.Add(r)
	}
	if total.Sequences != 2 {
		t.Errorf("sequences = %d, want 2", total.Sequences)
	}
	if total.Counts.Accesses() != 8 {
		t.Errorf("accesses = %d, want 8", total.Counts.Accesses())
	}
	if total.LatencyNS <= 0 || total.Energy.TotalPJ() <= 0 {
		t.Error("no latency/energy accumulated")
	}
}

func TestResultAdd(t *testing.T) {
	a := Result{Counts: energy.Counts{Reads: 1, Shifts: 2}, LatencyNS: 3, Sequences: 1}
	a.Add(Result{Counts: energy.Counts{Reads: 2, Shifts: 5}, LatencyNS: 4, Sequences: 1})
	if a.Counts.Reads != 3 || a.Counts.Shifts != 7 || a.LatencyNS != 7 || a.Sequences != 2 {
		t.Errorf("Add gave %+v", a)
	}
}

// Fewer shifts must never produce more energy or latency under the same
// configuration — the monotonicity the paper's Fig. 5 argument rests on.
func TestBetterPlacementNeverCostsMore(t *testing.T) {
	cfg := cfg4(t)
	s := trace.NewSequence(0, 1, 2, 3, 0, 1, 2, 3, 0, 1)
	good := &placement.Placement{DBC: [][]int{{0, 1}, {2, 3}}}
	bad := &placement.Placement{DBC: [][]int{{0, 2, 1, 3}, {}}}
	rg, err := RunSequence(cfg, s, good)
	if err != nil {
		t.Fatal(err)
	}
	rb, err := RunSequence(cfg, s, bad)
	if err != nil {
		t.Fatal(err)
	}
	if rg.Counts.Shifts >= rb.Counts.Shifts {
		t.Fatalf("test setup wrong: good %d shifts, bad %d", rg.Counts.Shifts, rb.Counts.Shifts)
	}
	if rg.LatencyNS > rb.LatencyNS {
		t.Error("fewer shifts but higher latency")
	}
	if rg.Energy.TotalPJ() > rb.Energy.TotalPJ() {
		t.Error("fewer shifts but higher energy")
	}
}

// TestRunSequenceGrownTrackKeepsPorts is the regression test for the
// multi-port growth bug: when a capacity-relaxed placement exceeds the
// geometry's domain count, the engines must keep the geometry's
// fabricated port positions — sizing the port spread to the grown track
// would silently displace the ports and diverge from every evaluator
// that priced the placement against the configured device.
func TestRunSequenceGrownTrackKeepsPorts(t *testing.T) {
	g := rtm.Geometry{Banks: 1, SubarraysPerBank: 1, DBCsPerSubarray: 1,
		TracksPerDBC: 1, DomainsPerTrack: 8, PortsPerTrack: 2}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	cfg := Config{Geometry: g}

	// One DBC of 12 variables grows the 8-domain track to 12 domains;
	// the access pattern bounces between offsets 0 and 6.
	names := make([]string, 12)
	vars := make([]int, 12)
	for i := range names {
		names[i] = string(rune('a' + i))
		vars[i] = i
	}
	s := &trace.Sequence{Names: names}
	s.Append(0, false)
	s.Append(6, false)
	s.Append(0, false)
	p := &placement.Placement{DBC: [][]int{vars}}

	res, err := RunSequence(cfg, s, p)
	if err != nil {
		t.Fatal(err)
	}
	// Fabricated layout {0, 4}: a(0) free; g(6) -> 2 shifts via the
	// port at 4; a(0) -> 2 shifts back. A layout respaced to the grown
	// 12-domain track ({0, 6}) would serve the whole pattern for free.
	if res.Counts.Shifts != 4 {
		t.Fatalf("grown-track shifts = %d, want 4 (geometry port layout)", res.Counts.Shifts)
	}
	want, err := placement.EngineCostAt(s, p, 12, []int{0, 4})
	if err != nil {
		t.Fatal(err)
	}
	if res.Counts.Shifts != want {
		t.Fatalf("sim %d != evaluator %d on the same layout", res.Counts.Shifts, want)
	}
	// And the exact multi-port evaluator agrees on the same model.
	m, err := placement.NewPortModel(8, 2)
	if err != nil {
		t.Fatal(err)
	}
	pc, err := placement.PortCost(s, p, m)
	if err != nil {
		t.Fatal(err)
	}
	if pc != res.Counts.Shifts {
		t.Fatalf("PortCost %d != simulated %d", pc, res.Counts.Shifts)
	}
}
