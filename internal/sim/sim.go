// Package sim is the trace-driven RTM simulator used by the evaluation —
// the stand-in for RTSim (see DESIGN.md §3). It replays access sequences
// against a placement on a configured RTM device, drives one shift engine
// per DBC, and converts the resulting event counts into latency and energy
// using the Table I model.
package sim

import (
	"fmt"

	"repro/internal/energy"
	"repro/internal/placement"
	"repro/internal/rtm"
	"repro/internal/trace"
)

// Config describes the simulated device.
type Config struct {
	// Geometry is the RTM array layout.
	Geometry rtm.Geometry
	// Params is the timing/energy/area model; its DBC count should match
	// the geometry (helpers below guarantee this).
	Params energy.Params
	// EnforceCapacity rejects placements that overflow a DBC's domain
	// count. The paper's evaluation does not enforce capacity (some
	// OffsetStone functions exceed the 4 KiB array); disabled by default.
	EnforceCapacity bool
}

// TableIConfig builds the simulator configuration for one of the paper's
// iso-capacity configurations (2, 4, 8 or 16 DBCs).
func TableIConfig(dbcs int) (Config, error) {
	g, err := rtm.TableIGeometry(dbcs)
	if err != nil {
		return Config{}, err
	}
	p, err := energy.ForDBCs(dbcs)
	if err != nil {
		return Config{}, err
	}
	return Config{Geometry: g, Params: p}, nil
}

// Result aggregates the outcome of simulating one or more sequences.
type Result struct {
	// Counts are the raw event totals.
	Counts energy.Counts
	// LatencyNS is the serialized runtime.
	LatencyNS float64
	// Energy is the leakage / read-write / shift breakdown.
	Energy energy.Breakdown
	// Sequences is the number of sequences replayed.
	Sequences int
}

// Add merges another result (e.g. of the next sequence) into r.
func (r *Result) Add(other Result) {
	r.Counts.Add(other.Counts)
	r.LatencyNS += other.LatencyNS
	r.Energy.Add(other.Energy)
	r.Sequences += other.Sequences
}

// RunSequence replays one sequence with its placement on the device.
func RunSequence(cfg Config, s *trace.Sequence, p *placement.Placement) (Result, error) {
	if p.NumDBCs() > cfg.Geometry.DBCs() {
		return Result{}, fmt.Errorf("sim: placement uses %d DBCs, device has %d", p.NumDBCs(), cfg.Geometry.DBCs())
	}
	if cfg.EnforceCapacity {
		if n := p.MaxDBCLen(); n > cfg.Geometry.WordsPerDBC() {
			return Result{}, fmt.Errorf("sim: DBC occupancy %d exceeds %d domains", n, cfg.Geometry.WordsPerDBC())
		}
	}
	lookup, err := p.BuildLookup(s.NumVars())
	if err != nil {
		return Result{}, err
	}

	// The device may have fewer domains than the (capacity-relaxed)
	// placement needs; size engines to the placement so the shift counts
	// remain those of the cost model. Energy/latency per shift still come
	// from the configured Params. The access ports stay at the positions
	// the *geometry* fabricated them at: growing the track must not
	// silently respace the ports, or the simulated costs diverge from
	// every evaluator that priced the placement against the configured
	// device (regression-tested in TestRunSequenceGrownTrackKeepsPorts).
	ports, err := cfg.Geometry.PortPositions()
	if err != nil {
		return Result{}, err
	}
	domains := cfg.Geometry.WordsPerDBC()
	if n := p.MaxDBCLen(); n > domains {
		domains = n
	}
	engines := make([]*rtm.ShiftEngine, p.NumDBCs())
	for i := range engines {
		e, err := rtm.NewShiftEngineAt(domains, ports)
		if err != nil {
			return Result{}, err
		}
		engines[i] = e
	}

	var c energy.Counts
	for i, a := range s.Accesses {
		d := lookup.DBCOf[a.Var]
		if d < 0 {
			return Result{}, fmt.Errorf("sim: access %d to unplaced variable %s", i, s.Name(a.Var))
		}
		shifts, err := engines[d].Access(lookup.Offset[a.Var])
		if err != nil {
			return Result{}, err
		}
		c.Shifts += int64(shifts)
		if a.Write {
			c.Writes++
		} else {
			c.Reads++
		}
	}

	return Result{
		Counts:    c,
		LatencyNS: cfg.Params.LatencyNS(c),
		Energy:    cfg.Params.Energy(c),
		Sequences: 1,
	}, nil
}

// Benchmark-level simulation (place every sequence with a strategy,
// replay, accumulate) lives in the engine batch layer
// (engine.BatchSimulateWith) and the public session API
// (racetrack.Lab.SimulateBenchmark); this package only simulates one
// already-placed sequence at a time.
