package sim

import (
	"fmt"

	"repro/internal/energy"
	"repro/internal/placement"
	"repro/internal/trace"
)

// Runtime data swapping — the dynamic technique of Sun et al. (DAC'13,
// the paper's ref [20]) that the static-placement approach is positioned
// against: instead of (or on top of) a good initial layout, the RTM
// controller reorganizes data online, promoting a variable one offset
// toward the access port each time it is used (the classic "transpose"
// self-organizing-list rule). Each swap exchanges two adjacent words,
// which costs extra shifts and two extra writes.
//
// RunSequenceSwapping replays a trace under this policy so static and
// dynamic (and combined) approaches can be compared head to head; the
// paper's claim is that compile-time placement achieves the benefit
// without the runtime overhead, and TestSwapVsStatic exercises exactly
// that comparison.

// SwapConfig tunes the online policy.
type SwapConfig struct {
	// Enable turns swapping on; zero value replays statically.
	Enable bool
	// SwapShiftCost is the number of shift operations charged per swap
	// (moving both words through the port buffer; default 2 when 0).
	SwapShiftCost int
	// MinGain only swaps when the accessed variable's use count exceeds
	// the neighbour's by this margin, damping thrash (default 1 when 0).
	MinGain int
}

// SwapResult extends Result with reorganization statistics.
type SwapResult struct {
	Result
	Swaps int64
}

// RunSequenceSwapping replays one sequence with the transpose policy on
// top of the given initial placement.
func RunSequenceSwapping(cfg Config, s *trace.Sequence, p *placement.Placement, sw SwapConfig) (SwapResult, error) {
	if !sw.Enable {
		r, err := RunSequence(cfg, s, p)
		return SwapResult{Result: r}, err
	}
	if sw.SwapShiftCost == 0 {
		sw.SwapShiftCost = 2
	}
	if sw.MinGain == 0 {
		sw.MinGain = 1
	}
	lookup, err := p.BuildLookup(s.NumVars())
	if err != nil {
		return SwapResult{}, err
	}
	// Mutable copies of the layout: order[d][off] = variable.
	order := make([][]int, p.NumDBCs())
	for d := range order {
		order[d] = append([]int(nil), p.DBC[d]...)
	}
	dbcOf := append([]int(nil), lookup.DBCOf...)
	offset := append([]int(nil), lookup.Offset...)
	uses := make([]int64, s.NumVars())

	last := make([]int, p.NumDBCs())
	for i := range last {
		last[i] = -1
	}

	var c energy.Counts
	var swaps int64
	for i, a := range s.Accesses {
		d := dbcOf[a.Var]
		if d < 0 {
			return SwapResult{}, fmt.Errorf("sim: access %d to unplaced variable %s", i, s.Name(a.Var))
		}
		off := offset[a.Var]
		if prev := last[d]; prev >= 0 {
			delta := off - prev
			if delta < 0 {
				delta = -delta
			}
			c.Shifts += int64(delta)
		}
		if a.Write {
			c.Writes++
		} else {
			c.Reads++
		}
		uses[a.Var]++

		// Transpose rule: promote toward offset 0 (the port position)
		// when this variable is now hotter than its port-side neighbour.
		cur := off
		if cur > 0 {
			nb := order[d][cur-1]
			if uses[a.Var] >= uses[nb]+int64(sw.MinGain) {
				order[d][cur-1], order[d][cur] = order[d][cur], order[d][cur-1]
				offset[a.Var] = cur - 1
				offset[nb] = cur
				c.Shifts += int64(sw.SwapShiftCost)
				c.Writes += 2 // both words rewritten
				swaps++
				cur--
			}
		}
		last[d] = cur
	}

	return SwapResult{
		Result: Result{
			Counts:    c,
			LatencyNS: cfg.Params.LatencyNS(c),
			Energy:    cfg.Params.Energy(c),
			Sequences: 1,
		},
		Swaps: swaps,
	}, nil
}
