package sim

import (
	"math/rand"
	"testing"

	"repro/internal/placement"
	"repro/internal/trace"
)

func TestSwapDisabledMatchesStatic(t *testing.T) {
	cfg := cfg4(t)
	s := trace.NewSequence(0, 1, 2, 0, 1, 2)
	p := &placement.Placement{DBC: [][]int{{0, 1, 2}, {}, {}, {}}}
	static, err := RunSequence(cfg, s, p)
	if err != nil {
		t.Fatal(err)
	}
	swr, err := RunSequenceSwapping(cfg, s, p, SwapConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if swr.Counts != static.Counts || swr.Swaps != 0 {
		t.Errorf("disabled swapping diverged: %+v vs %+v", swr.Counts, static.Counts)
	}
}

func TestSwapPromotesHotVariable(t *testing.T) {
	cfg := cfg4(t)
	// Variable 3 starts at the far end but is accessed constantly; the
	// transpose rule must migrate it toward offset 0, making a bad static
	// layout cheap over time.
	var vars []int
	vars = append(vars, 0, 1, 2) // warm up counters of the front vars
	for i := 0; i < 50; i++ {
		vars = append(vars, 3, 0) // alternate hot tail with the head
	}
	s := trace.NewSequence(vars...)
	p := &placement.Placement{DBC: [][]int{{0, 1, 2, 3}, {}, {}, {}}}

	static, err := RunSequence(cfg, s, p)
	if err != nil {
		t.Fatal(err)
	}
	dyn, err := RunSequenceSwapping(cfg, s, p, SwapConfig{Enable: true})
	if err != nil {
		t.Fatal(err)
	}
	if dyn.Swaps == 0 {
		t.Fatal("no swaps happened")
	}
	if dyn.Counts.Shifts >= static.Counts.Shifts {
		t.Errorf("swapping did not reduce shifts on a hot-tail trace: %d vs %d",
			dyn.Counts.Shifts, static.Counts.Shifts)
	}
	// Swapping costs writes.
	if dyn.Counts.Writes <= static.Counts.Writes {
		t.Error("swap write overhead not accounted")
	}
}

func TestSwapVsStatic(t *testing.T) {
	// The paper's positioning: good static placement (DMA-SR) captures
	// most of the benefit without runtime overhead. Compare (a) bad
	// static, (b) bad static + swapping, (c) DMA-SR static, on a phased
	// trace.
	cfg := cfg4(t)
	rng := rand.New(rand.NewSource(7))
	var vars []int
	for phase := 0; phase < 8; phase++ {
		base := phase * 3
		for i := 0; i < 60; i++ {
			vars = append(vars, base+rng.Intn(3))
		}
	}
	s := trace.NewSequence(vars...)

	// (a) adversarial static: everything in one DBC, with each phase's
	// three variables strided 8 apart so every within-phase transition
	// travels far.
	a := trace.Analyze(s)
	all := a.ByFirstUse()
	bad := placement.NewEmpty(4)
	strided := make([]int, len(all))
	for i, v := range all {
		slot := (i%3)*8 + i/3
		strided[slot] = v
	}
	bad.DBC[0] = strided
	badStatic, err := RunSequence(cfg, s, bad)
	if err != nil {
		t.Fatal(err)
	}
	badSwap, err := RunSequenceSwapping(cfg, s, bad, SwapConfig{Enable: true})
	if err != nil {
		t.Fatal(err)
	}
	dmasr, _, err := placement.Place(placement.StrategyDMASR, s, 4, placement.Options{})
	if err != nil {
		t.Fatal(err)
	}
	good, err := RunSequence(cfg, s, dmasr)
	if err != nil {
		t.Fatal(err)
	}

	if badSwap.Counts.Shifts >= badStatic.Counts.Shifts {
		t.Errorf("swapping failed to improve the bad layout: %d vs %d",
			badSwap.Counts.Shifts, badStatic.Counts.Shifts)
	}
	if good.Counts.Shifts >= badStatic.Counts.Shifts {
		t.Errorf("DMA-SR failed to beat the bad layout: %d vs %d",
			good.Counts.Shifts, badStatic.Counts.Shifts)
	}
	// Static placement needs no extra writes; swapping does. That's the
	// paper's "no hardware overhead" argument in numbers.
	if badSwap.Counts.Writes <= good.Counts.Writes {
		t.Error("expected swap-induced write overhead over static placement")
	}
}

func TestSwapErrorPaths(t *testing.T) {
	cfg := cfg4(t)
	s := trace.NewSequence(0, 1)
	missing := &placement.Placement{DBC: [][]int{{0}}}
	if _, err := RunSequenceSwapping(cfg, s, missing, SwapConfig{Enable: true}); err == nil {
		t.Error("unplaced variable accepted")
	}
}

func TestSwapConservation(t *testing.T) {
	// Property-style: after any run, the dynamic layout must still be a
	// permutation (each access count conserved; verified indirectly via
	// total accesses).
	cfg := cfg4(t)
	rng := rand.New(rand.NewSource(19))
	for trial := 0; trial < 20; trial++ {
		n := 2 + rng.Intn(10)
		length := 10 + rng.Intn(100)
		vars := make([]int, length)
		for i := range vars {
			vars[i] = rng.Intn(n)
		}
		s := trace.NewSequence(vars...)
		a := trace.Analyze(s)
		p := placement.NewEmpty(4)
		for i, v := range a.ByFirstUse() {
			p.DBC[i%4] = append(p.DBC[i%4], v)
		}
		r, err := RunSequenceSwapping(cfg, s, p, SwapConfig{Enable: true})
		if err != nil {
			t.Fatal(err)
		}
		if r.Counts.Accesses() != int64(length)+2*r.Swaps {
			t.Fatalf("trial %d: access conservation broken: %d accesses, %d swaps",
				trial, r.Counts.Accesses(), r.Swaps)
		}
	}
}
