package analysis

import (
	"fmt"
	"go/ast"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"testing"
)

// The golden harness mirrors analysistest: testdata packages carry
// expectations as comments of the form
//
//	// want "substring" ["substring" ...]
//
// on the line the diagnostic is reported at. Every reported diagnostic
// must be matched by a want on its line (substring match against
// "analyzer: message"), and every want must be consumed by exactly one
// diagnostic. A clean file simply has no want comments.

var wantRE = regexp.MustCompile(`"([^"]*)"`)

type want struct {
	file string
	line int
	pat  string
	hit  bool
}

// collectWants extracts the expectations from a loaded package's
// comments.
func collectWants(t *testing.T, pkg *Package) []*want {
	t.Helper()
	var wants []*want
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				rest, ok := strings.CutPrefix(c.Text, "// want ")
				if !ok {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				ms := wantRE.FindAllStringSubmatch(rest, -1)
				if len(ms) == 0 {
					t.Fatalf("%s: malformed want comment %q", pos, c.Text)
				}
				for _, m := range ms {
					wants = append(wants, &want{file: pos.Filename, line: pos.Line, pat: m[1]})
				}
			}
		}
	}
	return wants
}

// runGolden loads testdata/<dir> under the fake import path asPath,
// runs the analyzer (plus the suppress meta-check RunPackage always
// includes), and diffs diagnostics against the want comments.
func runGolden(t *testing.T, a *Analyzer, dir, asPath string) {
	t.Helper()
	pkg, err := LoadDir(filepath.Join("testdata", dir), asPath)
	if err != nil {
		t.Fatalf("loading testdata/%s: %v", dir, err)
	}
	diags := RunPackage(pkg, []*Analyzer{a})
	wants := collectWants(t, pkg)

	var unexpected []string
	for _, d := range diags {
		got := fmt.Sprintf("%s: %s", d.Analyzer, d.Message)
		matched := false
		for _, w := range wants {
			if !w.hit && w.file == d.Pos.Filename && w.line == d.Pos.Line && strings.Contains(got, w.pat) {
				w.hit = true
				matched = true
				break
			}
		}
		if !matched {
			unexpected = append(unexpected, fmt.Sprintf("%s: %s", d.Pos, got))
		}
	}
	sort.Strings(unexpected)
	for _, u := range unexpected {
		t.Errorf("unexpected diagnostic:\n  %s", u)
	}
	for _, w := range wants {
		if !w.hit {
			t.Errorf("missing diagnostic: %s:%d: want %q", w.file, w.line, w.pat)
		}
	}
}

func TestDetCheckGolden(t *testing.T) {
	// The fake import path makes the testdata package
	// determinism-critical.
	runGolden(t, DetCheck, "detcheck", "repro/internal/engine")
}

func TestDetCheckSuppressed(t *testing.T) {
	runGolden(t, DetCheck, "detcheck_ok", "repro/internal/placement")
}

func TestDetCheckNonCriticalPackageIsExempt(t *testing.T) {
	// Identical nondeterminism sources, loaded under a path outside the
	// critical set: zero diagnostics expected (the files carry no
	// wants).
	runGolden(t, DetCheck, "detcheck_exempt", "repro/internal/report")
}

func TestCtxCheckGolden(t *testing.T) {
	runGolden(t, CtxCheck, "ctxcheck", "repro/internal/service")
}

func TestCtxCheckSuppressed(t *testing.T) {
	runGolden(t, CtxCheck, "ctxcheck_ok", "repro/internal/service")
}

func TestHotAllocGolden(t *testing.T) {
	runGolden(t, HotAlloc, "hotalloc", "repro/internal/kernel")
}

func TestHotAllocSuppressed(t *testing.T) {
	runGolden(t, HotAlloc, "hotalloc_ok", "repro/internal/kernel")
}

func TestNoPanicGolden(t *testing.T) {
	runGolden(t, NoPanic, "nopanic", "repro/internal/lib")
}

func TestNoPanicSuppressed(t *testing.T) {
	runGolden(t, NoPanic, "nopanic_ok", "repro/internal/lib")
}

func TestNoPanicMainPackageIsExempt(t *testing.T) {
	runGolden(t, NoPanic, "nopanic_main", "repro/cmd/tool")
}

func TestMalformedSuppressions(t *testing.T) {
	// The suppress meta-check runs with any analyzer; its diagnostics
	// land on the directive lines, so they are asserted directly.
	pkg, err := LoadDir(filepath.Join("testdata", "suppress"), "repro/internal/lib")
	if err != nil {
		t.Fatalf("loading testdata/suppress: %v", err)
	}
	diags := RunPackage(pkg, []*Analyzer{NoPanic})
	wantSubstrings := []string{
		"suppression for nopanic is missing its reason",
		"suppression names unknown analyzer nosuchcheck",
		"malformed rtmlint directive",
	}
	if len(diags) != len(wantSubstrings) {
		t.Fatalf("got %d diagnostics, want %d:\n%v", len(diags), len(wantSubstrings), diags)
	}
	for i, sub := range wantSubstrings {
		if diags[i].Analyzer != "suppress" || !strings.Contains(diags[i].Message, sub) {
			t.Errorf("diagnostic %d = %q, want analyzer suppress containing %q", i, diags[i], sub)
		}
	}
}

func TestSuppressionParsing(t *testing.T) {
	cases := []struct {
		text         string
		name, reason string
		ok           bool
	}{
		{"//rtmlint:nopanic-ok invariant guard", "nopanic", "invariant guard", true},
		{"//rtmlint:detcheck-ok   spaced   reason", "detcheck", "spaced   reason", true},
		{"//rtmlint:nopanic-ok", "nopanic", "", true}, // missing reason: parses, never suppresses
		{"//rtmlint:nopanic", "", "", true},           // malformed: no -ok
		{"// rtmlint:nopanic-ok x", "", "", false},    // space breaks the directive
		{"// plain comment", "", "", false},
	}
	for _, c := range cases {
		name, reason, ok := parseSuppression(&ast.Comment{Text: c.text})
		if name != c.name || reason != c.reason || ok != c.ok {
			t.Errorf("parseSuppression(%q) = (%q, %q, %v), want (%q, %q, %v)",
				c.text, name, reason, ok, c.name, c.reason, c.ok)
		}
	}
}
