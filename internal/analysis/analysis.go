// Package analysis is the rtmlint invariant suite: a set of static
// analyzers that machine-check the repository's cross-cutting contracts
// — determinism (DESIGN.md §§4,11), context propagation (§9), hot-path
// allocation freedom (§8), and no-panic library code (§13) — plus the
// small driver framework they run on.
//
// The framework deliberately mirrors golang.org/x/tools/go/analysis
// (Analyzer, Pass, Reportf, analysistest-style golden files) but is
// built purely on the standard library (go/ast, go/types, go/build and
// the offline "source" importer). The module has zero external
// dependencies and the build environment cannot assume network access
// to fetch x/tools, so the dependency is gated out rather than pinned;
// if the module ever vendors x/tools these analyzers port mechanically
// (each Run is a pure function of the type-checked syntax). See
// DESIGN.md §14.
//
// Diagnostics are suppressed by an explicit annotation on the flagged
// line (or the line immediately above):
//
//	//rtmlint:<analyzer>-ok <reason>
//
// The reason is mandatory: a suppression without one is itself a
// diagnostic. The grammar is defined in suppress.go.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// An Analyzer is one named invariant check. Run inspects the package in
// pass and reports findings via pass.Reportf; it must not retain the
// pass. Analyzers are stateless and safe to reuse across packages.
type Analyzer struct {
	Name string // short lowercase identifier, used in the suppression grammar
	Doc  string // one-line summary of the invariant
	Run  func(*Pass)
}

// A Pass carries one analyzer's view of one type-checked package.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File // non-test files only, build-tag filtered
	Path     string      // import path ("repro/internal/engine")
	Pkg      *types.Package
	Info     *types.Info

	sup   *suppressions
	diags *[]Diagnostic
}

// A Diagnostic is one finding, resolved to a concrete position.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s: %s", d.Pos, d.Analyzer, d.Message)
}

// Reportf records a finding at pos unless an in-scope
// //rtmlint:<name>-ok suppression covers it. Suppressions missing a
// reason do not suppress (the malformed comment is reported separately
// by CheckSuppressions).
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	position := p.Fset.Position(pos)
	if p.sup != nil && p.sup.covers(p.Analyzer.Name, position) {
		return
	}
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      position,
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// TypeOf returns the static type of e, or nil when unknown.
func (p *Pass) TypeOf(e ast.Expr) types.Type {
	if t, ok := p.Info.Types[e]; ok {
		return t.Type
	}
	if id, ok := e.(*ast.Ident); ok {
		if obj := p.Info.ObjectOf(id); obj != nil {
			return obj.Type()
		}
	}
	return nil
}

// Analyzers returns the full suite in a fixed order.
func Analyzers() []*Analyzer {
	return []*Analyzer{DetCheck, CtxCheck, HotAlloc, NoPanic}
}

// AnalyzerNames returns the set of valid suppression-grammar names.
func AnalyzerNames() map[string]bool {
	m := make(map[string]bool)
	for _, a := range Analyzers() {
		m[a.Name] = true
	}
	return m
}

// RunPackage runs the given analyzers over one loaded package and
// returns the surviving diagnostics sorted by position. Malformed
// suppression comments (unknown analyzer name, missing reason) are
// included as diagnostics from the pseudo-analyzer "suppress".
func RunPackage(pkg *Package, analyzers []*Analyzer) []Diagnostic {
	var diags []Diagnostic
	sup := collectSuppressions(pkg.Fset, pkg.Files)
	diags = append(diags, CheckSuppressions(pkg.Fset, pkg.Files, AnalyzerNames())...)
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer: a,
			Fset:     pkg.Fset,
			Files:    pkg.Files,
			Path:     pkg.Path,
			Pkg:      pkg.Types,
			Info:     pkg.Info,
			sup:      sup,
			diags:    &diags,
		}
		a.Run(pass)
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i].Pos, diags[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Column != b.Column {
			return a.Column < b.Column
		}
		return diags[i].Analyzer < diags[j].Analyzer
	})
	return diags
}

// inspectStack walks root in source order invoking f with each node and
// the stack of its ancestors (outermost first, not including n). If f
// returns false the node's children are skipped.
func inspectStack(root ast.Node, f func(n ast.Node, stack []ast.Node) bool) {
	var stack []ast.Node
	ast.Inspect(root, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		descend := f(n, stack)
		if descend {
			stack = append(stack, n)
			return true
		}
		return false
	})
}
