package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// NoPanic forbids process-killing escapes in library code: panic,
// log.Fatal*/log.Panic*, and os.Exit. Library errors must flow back as
// error values — the server's failure-containment story (DESIGN.md
// §13) depends on no callee being able to take the process down, and
// PR 8 converted the last construction panics to errors; this keeps
// them out. Package main (the cmd/ binaries) is exempt: a CLI's
// top-level error handler is exactly where Fatal and Exit belong.
var NoPanic = &Analyzer{
	Name: "nopanic",
	Doc:  "forbid panic/log.Fatal/os.Exit in non-main library code",
	Run:  runNoPanic,
}

func runNoPanic(pass *Pass) {
	if pass.Pkg.Name() == "main" {
		return
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if id, ok := call.Fun.(*ast.Ident); ok {
				if b, ok := pass.Info.Uses[id].(*types.Builtin); ok && b.Name() == "panic" {
					pass.Reportf(call.Pos(), "panic in library code: return an error instead (callers contain failures, they don't crash)")
					return true
				}
			}
			fn := calleeFunc(pass, call.Fun)
			if fn == nil || fn.Pkg() == nil {
				return true
			}
			switch pkg, name := fn.Pkg().Path(), fn.Name(); {
			case pkg == "log" && (strings.HasPrefix(name, "Fatal") || strings.HasPrefix(name, "Panic")):
				pass.Reportf(call.Pos(), "log.%s in library code kills the process: return an error instead", name)
			case pkg == "os" && name == "Exit":
				pass.Reportf(call.Pos(), "os.Exit in library code: return an error and let main decide the exit code")
			}
			return true
		})
	}
}
