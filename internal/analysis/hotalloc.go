package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// HotPathDirective marks a function as allocation-free: the CI bench
// gate holds its allocs/op at zero (DESIGN.md §8), and HotAlloc turns
// that runtime contract into a compile-time diagnostic with file:line.
const HotPathDirective = "//rtm:hotpath"

// HotAlloc checks functions carrying a //rtm:hotpath doc directive for
// allocation-introducing constructs:
//
//   - make / new / slice, map, and &T{} composite literals (value
//     struct and array literals stay on the stack and pass);
//   - append, unless in the self-append reuse idiom `x = append(x, …)`
//     (amortized growth against a retained buffer);
//   - string ↔ []byte conversions, which copy (the compiler-recognized
//     no-copy map lookup `m[string(b)]` passes);
//   - non-constant string concatenation;
//   - interface boxing: a concrete non-pointer-shaped value passed to
//     an interface parameter heap-allocates its box (this is what makes
//     a stray fmt call in a hot loop expensive);
//   - func literals (closure capture), go, and defer statements.
//
// The check is intraprocedural and syntactic: it cannot see escape
// analysis, so a flagged construct the compiler provably keeps on the
// stack — or one confined to a cold error branch — carries a
// //rtmlint:hotalloc-ok suppression with the justification.
var HotAlloc = &Analyzer{
	Name: "hotalloc",
	Doc:  "flag allocation-introducing constructs in //rtm:hotpath functions",
	Run:  runHotAlloc,
}

func runHotAlloc(pass *Pass) {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !isHotPath(fd) {
				continue
			}
			checkHotBody(pass, fd)
		}
	}
}

// isHotPath reports whether the function's doc comment carries the
// //rtm:hotpath directive (alone or with a trailing note).
func isHotPath(fd *ast.FuncDecl) bool {
	if fd.Doc == nil {
		return false
	}
	for _, c := range fd.Doc.List {
		if c.Text == HotPathDirective || strings.HasPrefix(c.Text, HotPathDirective+" ") {
			return true
		}
	}
	return false
}

func checkHotBody(pass *Pass, fd *ast.FuncDecl) {
	inspectStack(fd.Body, func(n ast.Node, stack []ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			pass.Reportf(n.Pos(), "func literal in hot path: closures capturing variables allocate")
			return false // its body is the closure's problem, not this path's
		case *ast.GoStmt:
			pass.Reportf(n.Pos(), "go statement in hot path: spawning allocates a goroutine")
		case *ast.DeferStmt:
			pass.Reportf(n.Pos(), "defer in hot path: deferred calls in loops allocate and delay release")
		case *ast.CompositeLit:
			hotCompositeLit(pass, n, stack)
		case *ast.CallExpr:
			hotCall(pass, n, stack)
		case *ast.BinaryExpr:
			if n.Op.String() == "+" {
				if t := pass.TypeOf(n); t != nil && isString(t) && !isConstExpr(pass, n) {
					pass.Reportf(n.Pos(), "string concatenation in hot path allocates the result")
				}
			}
		}
		return true
	})
}

// hotCompositeLit flags slice/map literals and &T{} (heap escape);
// value struct and array literals pass.
func hotCompositeLit(pass *Pass, lit *ast.CompositeLit, stack []ast.Node) {
	if len(stack) > 0 {
		if parent, ok := stack[len(stack)-1].(*ast.CompositeLit); ok && parent != nil {
			return // inner literal of an already-reported outer one
		}
		if u, ok := stack[len(stack)-1].(*ast.UnaryExpr); ok && u.Op.String() == "&" {
			pass.Reportf(u.Pos(), "&%s{…} in hot path escapes to the heap", typeLabel(pass, lit))
			return
		}
	}
	t := pass.TypeOf(lit)
	if t == nil {
		return
	}
	switch t.Underlying().(type) {
	case *types.Slice:
		pass.Reportf(lit.Pos(), "slice literal in hot path allocates its backing array")
	case *types.Map:
		pass.Reportf(lit.Pos(), "map literal in hot path allocates")
	}
}

// hotCall dispatches the call-shaped checks: builtins, conversions, and
// interface boxing of arguments.
func hotCall(pass *Pass, call *ast.CallExpr, stack []ast.Node) {
	// Builtins.
	if id, ok := call.Fun.(*ast.Ident); ok {
		if b, ok := pass.Info.Uses[id].(*types.Builtin); ok {
			switch b.Name() {
			case "make":
				pass.Reportf(call.Pos(), "make in hot path allocates: hoist to setup and reuse")
			case "new":
				pass.Reportf(call.Pos(), "new in hot path allocates: hoist to setup and reuse")
			case "append":
				if !isSelfAppend(call, stack) {
					pass.Reportf(call.Pos(), "append to a fresh slice in hot path allocates: use the `x = append(x, …)` reuse idiom on a retained buffer")
				}
			}
			return
		}
	}
	// string ↔ []byte conversions.
	if tv, ok := pass.Info.Types[call.Fun]; ok && tv.IsType() && len(call.Args) == 1 {
		to, from := tv.Type, pass.TypeOf(call.Args[0])
		if to != nil && from != nil {
			s2b := isString(from) && isByteSlice(to)
			b2s := isByteSlice(from) && isString(to)
			if b2s && isMapIndexRead(call, stack) {
				return // m[string(b)] is the compiler's no-copy lookup
			}
			if s2b || b2s {
				pass.Reportf(call.Pos(), "%s conversion in hot path copies", convLabel(s2b))
			}
		}
		return
	}
	// Interface boxing of arguments.
	sig, ok := pass.TypeOf(call.Fun).(*types.Signature)
	if !ok {
		return
	}
	for i, arg := range call.Args {
		pt := paramType(sig, i, call.Ellipsis.IsValid())
		if pt == nil || !types.IsInterface(pt) {
			continue
		}
		at := pass.TypeOf(arg)
		if at == nil || types.IsInterface(at) || isUntypedNil(pass, arg) || pointerShaped(at) || isConstExpr(pass, arg) {
			continue
		}
		pass.Reportf(arg.Pos(), "passing %s to interface parameter boxes it on the heap", at.String())
	}
}

// isSelfAppend recognizes `x = append(x, …)` — single-assign whose sole
// RHS is this append and whose LHS prints identically to the first
// argument.
func isSelfAppend(call *ast.CallExpr, stack []ast.Node) bool {
	if len(call.Args) == 0 || len(stack) == 0 {
		return false
	}
	assign, ok := stack[len(stack)-1].(*ast.AssignStmt)
	if !ok || len(assign.Lhs) != 1 || len(assign.Rhs) != 1 || assign.Rhs[0] != call {
		return false
	}
	return types.ExprString(assign.Lhs[0]) == types.ExprString(call.Args[0])
}

// isMapIndexRead reports whether conv is the index operand of a map
// read (not the target of an assignment).
func isMapIndexRead(conv ast.Expr, stack []ast.Node) bool {
	if len(stack) == 0 {
		return false
	}
	idx, ok := stack[len(stack)-1].(*ast.IndexExpr)
	if !ok || idx.Index != conv {
		return false
	}
	if len(stack) >= 2 {
		if assign, ok := stack[len(stack)-2].(*ast.AssignStmt); ok {
			for _, lhs := range assign.Lhs {
				if lhs == idx {
					return false
				}
			}
		}
	}
	return true
}

func paramType(sig *types.Signature, i int, hasEllipsis bool) types.Type {
	n := sig.Params().Len()
	if n == 0 {
		return nil
	}
	if sig.Variadic() && i >= n-1 {
		last := sig.Params().At(n - 1).Type()
		sl, ok := last.(*types.Slice)
		if !ok {
			return nil
		}
		if hasEllipsis {
			return last // arg is passed as the slice itself, no boxing per element
		}
		return sl.Elem()
	}
	if i >= n {
		return nil
	}
	return sig.Params().At(i).Type()
}

func isString(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isByteSlice(t types.Type) bool {
	sl, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := sl.Elem().Underlying().(*types.Basic)
	return ok && b.Kind() == types.Byte
}

// pointerShaped reports whether values of t fit in an interface's data
// word without an allocation.
func pointerShaped(t types.Type) bool {
	switch t.Underlying().(type) {
	case *types.Pointer, *types.Chan, *types.Map, *types.Signature:
		return true
	case *types.Basic:
		b := t.Underlying().(*types.Basic)
		return b.Kind() == types.UnsafePointer
	}
	return false
}

func isUntypedNil(pass *Pass, e ast.Expr) bool {
	tv, ok := pass.Info.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	b, ok := tv.Type.(*types.Basic)
	return ok && b.Kind() == types.UntypedNil
}

// isConstExpr reports whether the expression has a compile-time value
// (constants box into read-only statics, not per-call heap objects).
func isConstExpr(pass *Pass, e ast.Expr) bool {
	tv, ok := pass.Info.Types[e]
	return ok && tv.Value != nil
}

func convLabel(s2b bool) string {
	if s2b {
		return "string→[]byte"
	}
	return "[]byte→string"
}

func typeLabel(pass *Pass, lit *ast.CompositeLit) string {
	if lit.Type == nil {
		return "T"
	}
	return types.ExprString(lit.Type)
}
