package analysis

import (
	"go/ast"
	"go/types"
)

// CtxCheck enforces the context-propagation discipline of DESIGN.md §9:
// below the public surface every long-running call chain threads one
// context.Context, so cancellation and deadlines reach every layer.
//
//   - context.Background()/context.TODO() are flagged in library
//     (non-main) packages: a fresh root context below the surface
//     detaches the callee from the caller's cancellation. The one
//     sanctioned shape stays quiet: the nil-guard default
//     `if ctx == nil { ctx = context.Background() }`, which only fires
//     when no caller context exists at all.
//   - Struct fields of type context.Context are flagged: a stored
//     context outlives the request that created it (the documented
//     exception, the coalescing flight, carries a suppression).
var CtxCheck = &Analyzer{
	Name: "ctxcheck",
	Doc:  "flag context.Background/TODO below the public surface and contexts stored in structs",
	Run:  runCtxCheck,
}

func runCtxCheck(pass *Pass) {
	if pass.Pkg.Name() == "main" {
		return // entry points mint the root context by definition
	}
	for _, f := range pass.Files {
		inspectStack(f, func(n ast.Node, stack []ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				ctxCheckRootCall(pass, n, stack)
			case *ast.StructType:
				ctxCheckStoredField(pass, n)
			}
			return true
		})
	}
}

// ctxCheckRootCall flags context.Background()/TODO() except inside the
// nil-guard defaulting idiom.
func ctxCheckRootCall(pass *Pass, call *ast.CallExpr, stack []ast.Node) {
	fn := calleeFunc(pass, call.Fun)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "context" {
		return
	}
	name := fn.Name()
	if name != "Background" && name != "TODO" {
		return
	}
	if isNilGuardDefault(pass, call, stack) {
		return
	}
	pass.Reportf(call.Pos(), "context.%s() below the public surface: thread the caller's ctx instead (or guard `if ctx == nil` to default one)", name)
}

// isNilGuardDefault recognizes
//
//	if ctx == nil {
//		ctx = context.Background()
//	}
//
// — the call must be the sole RHS of an assignment to x, the assignment
// a direct statement of an if-body whose condition is `x == nil` (or
// `nil == x`) over the same object.
func isNilGuardDefault(pass *Pass, call *ast.CallExpr, stack []ast.Node) bool {
	if len(stack) < 3 {
		return false
	}
	assign, ok := stack[len(stack)-1].(*ast.AssignStmt)
	if !ok || len(assign.Lhs) != 1 || len(assign.Rhs) != 1 || assign.Rhs[0] != call {
		return false
	}
	lhs, ok := assign.Lhs[0].(*ast.Ident)
	if !ok {
		return false
	}
	if _, ok := stack[len(stack)-2].(*ast.BlockStmt); !ok {
		return false
	}
	ifStmt, ok := stack[len(stack)-3].(*ast.IfStmt)
	if !ok || ifStmt.Body != stack[len(stack)-2] {
		return false
	}
	bin, ok := ifStmt.Cond.(*ast.BinaryExpr)
	if !ok || bin.Op.String() != "==" {
		return false
	}
	var condIdent *ast.Ident
	if isNilIdent(pass, bin.Y) {
		condIdent, _ = bin.X.(*ast.Ident)
	} else if isNilIdent(pass, bin.X) {
		condIdent, _ = bin.Y.(*ast.Ident)
	}
	if condIdent == nil {
		return false
	}
	lo, co := pass.Info.ObjectOf(lhs), pass.Info.ObjectOf(condIdent)
	return lo != nil && lo == co
}

func isNilIdent(pass *Pass, e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	if !ok {
		return false
	}
	_, isNil := pass.Info.ObjectOf(id).(*types.Nil)
	return isNil
}

// ctxCheckStoredField flags struct fields whose type is
// context.Context.
func ctxCheckStoredField(pass *Pass, st *ast.StructType) {
	for _, field := range st.Fields.List {
		t := pass.TypeOf(field.Type)
		if t == nil || !isContextType(t) {
			continue
		}
		pass.Reportf(field.Pos(), "context.Context stored in a struct outlives its request: pass ctx as a parameter instead")
	}
}

// isContextType reports whether t is exactly context.Context.
func isContextType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context"
}
