package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// DetCriticalSuffixes names the packages whose results must be
// bit-identical at any worker count and across runs (DESIGN.md §§4,11):
// the engine and pool (deterministic scheduling), placement (search +
// cost), trace (kernel construction, binary format), plus the packages
// whose outputs are reproducibility contracts in their own right — eval
// (experiment tables), sim (replay oracle), rtm (shift physics,
// seeded fault model), offsetstone (seeded workload generation), and
// energy (the Table I constants every cost model prices with — a
// nondeterministic parameter lookup would unpin every priced result).
// Matched by import-path suffix so analyzer golden tests can pose as a
// critical package.
var DetCriticalSuffixes = []string{
	"internal/engine",
	"internal/pool",
	"internal/placement",
	"internal/trace",
	"internal/eval",
	"internal/sim",
	"internal/rtm",
	"internal/offsetstone",
	"internal/energy",
}

// DetCheck flags nondeterminism sources in determinism-critical
// packages:
//
//   - wall-clock reads (time.Now/Since/Until) — results must be a pure
//     function of inputs and seeds, never of elapsed time;
//   - the global math/rand generator (shared, lock-ordered by
//     scheduling) — all randomness must flow through an explicitly
//     seeded *rand.Rand;
//   - map iteration whose order can leak into an outcome: a range over
//     a map whose body appends, sends, returns, or breaks is
//     order-sensitive (iterate a sorted key slice instead);
//   - select over multiple value-binding receives — which result wins
//     is scheduler-chosen (a lone result channel raced against
//     ctx.Done() is the sanctioned shape and stays quiet).
var DetCheck = &Analyzer{
	Name: "detcheck",
	Doc:  "flag nondeterminism sources (clock, global rand, map-order, racy select) in determinism-critical packages",
	Run:  runDetCheck,
}

func runDetCheck(pass *Pass) {
	critical := false
	for _, s := range DetCriticalSuffixes {
		if pass.Path == s || strings.HasSuffix(pass.Path, "/"+s) {
			critical = true
			break
		}
	}
	if !critical {
		return
	}
	for _, f := range pass.Files {
		inspectStack(f, func(n ast.Node, stack []ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				detCheckCall(pass, n)
			case *ast.RangeStmt:
				detCheckMapRange(pass, n, stack)
			case *ast.SelectStmt:
				detCheckSelect(pass, n)
			}
			return true
		})
	}
}

// detCheckCall flags clock reads and global math/rand use.
func detCheckCall(pass *Pass, call *ast.CallExpr) {
	fn := calleeFunc(pass, call.Fun)
	if fn == nil || fn.Pkg() == nil {
		return
	}
	pkg, name := fn.Pkg().Path(), fn.Name()
	switch pkg {
	case "time":
		switch name {
		case "Now", "Since", "Until":
			pass.Reportf(call.Pos(), "time.%s in a determinism-critical package: results must not depend on the clock", name)
		}
	case "math/rand", "math/rand/v2":
		sig, ok := fn.Type().(*types.Signature)
		if !ok || sig.Recv() != nil {
			return // methods on an explicit *rand.Rand are deterministic per seed
		}
		switch name {
		case "New", "NewSource", "NewZipf", "NewPCG", "NewChaCha8":
			return // constructors taking an explicit seed/source
		}
		pass.Reportf(call.Pos(), "global %s.%s: use an explicitly seeded *rand.Rand so results are a function of the seed", pathBase(pkg), name)
	}
}

// detCheckMapRange flags ranges over maps whose body contains an
// order-sensitive construct. Pure commutative accumulation (sums,
// counters, map-keyed writes) ranges freely; anything that records,
// emits, or exits in encounter order depends on randomized map order.
// One laundering pattern is recognized and passes: a slice appended to
// in the loop whose base expression is later handed to a sort/slices
// call in the same function ("collect then sort").
func detCheckMapRange(pass *Pass, rng *ast.RangeStmt, stack []ast.Node) {
	t := pass.TypeOf(rng.X)
	if t == nil {
		return
	}
	if _, ok := t.Underlying().(*types.Map); !ok {
		return
	}
	sensitive := "" // worst non-append construct found
	var appendTargets []string
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		if sensitive != "" {
			return false
		}
		switch n := n.(type) {
		case *ast.CallExpr:
			if id, ok := n.Fun.(*ast.Ident); ok {
				if b, ok := pass.Info.Uses[id].(*types.Builtin); ok && b.Name() == "append" && len(n.Args) > 0 {
					appendTargets = append(appendTargets, types.ExprString(n.Args[0]))
				}
			}
		case *ast.SendStmt:
			sensitive = "a channel send"
			return false
		case *ast.ReturnStmt:
			sensitive = "a return"
			return false
		case *ast.BranchStmt:
			if n.Tok.String() == "break" {
				sensitive = "a break"
				return false
			}
		case *ast.FuncLit:
			return false // a deferred/assigned closure runs outside this iteration order
		}
		return true
	})
	if sensitive == "" && len(appendTargets) > 0 && !allSortedAfter(pass, rng, stack, appendTargets) {
		sensitive = "an append"
	}
	if sensitive != "" {
		pass.Reportf(rng.Pos(), "map iteration order reaches %s: iterate sorted keys so the result is deterministic", sensitive)
	}
}

// allSortedAfter reports whether every append target collected in the
// map-range loop is later (in the enclosing function, after the loop)
// passed to a sort or slices call — the collect-then-sort laundering
// that restores a deterministic order. The match is textual on the
// expression, so an aliased sort does not count and needs an explicit
// suppression.
func allSortedAfter(pass *Pass, rng *ast.RangeStmt, stack []ast.Node, targets []string) bool {
	var body *ast.BlockStmt
	for i := len(stack) - 1; i >= 0; i-- {
		switch fn := stack[i].(type) {
		case *ast.FuncDecl:
			body = fn.Body
		case *ast.FuncLit:
			body = fn.Body
		}
		if body != nil {
			break
		}
	}
	if body == nil {
		return false
	}
	sorted := make(map[string]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < rng.End() {
			return true
		}
		fn := calleeFunc(pass, call.Fun)
		if fn == nil || fn.Pkg() == nil {
			return true
		}
		if p := fn.Pkg().Path(); p != "sort" && p != "slices" {
			return true
		}
		for _, arg := range call.Args {
			sorted[types.ExprString(arg)] = true
		}
		return true
	})
	for _, t := range targets {
		if !sorted[t] {
			return false
		}
	}
	return true
}

// detCheckSelect flags selects where two or more cases bind a received
// value: whichever channel is ready first wins, so the bound result is
// schedule-dependent.
func detCheckSelect(pass *Pass, sel *ast.SelectStmt) {
	binding := 0
	for _, clause := range sel.Body.List {
		comm, ok := clause.(*ast.CommClause)
		if !ok || comm.Comm == nil {
			continue
		}
		if assign, ok := comm.Comm.(*ast.AssignStmt); ok {
			if len(assign.Rhs) == 1 {
				if _, ok := assign.Rhs[0].(*ast.UnaryExpr); ok {
					binding++
				}
			}
		}
	}
	if binding >= 2 {
		pass.Reportf(sel.Pos(), "select binds results from %d channels: the winner is scheduler-chosen, so downstream state depends on timing", binding)
	}
}

// calleeFunc resolves a call target to its *types.Func, for both plain
// and selector calls. Returns nil for builtins, type conversions, and
// indirect calls through variables.
func calleeFunc(pass *Pass, fun ast.Expr) *types.Func {
	switch fun := fun.(type) {
	case *ast.Ident:
		fn, _ := pass.Info.Uses[fun].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		fn, _ := pass.Info.Uses[fun.Sel].(*types.Func)
		return fn
	case *ast.ParenExpr:
		return calleeFunc(pass, fun.X)
	case *ast.IndexExpr: // generic instantiation f[T](...)
		return calleeFunc(pass, fun.X)
	}
	return nil
}

func pathBase(p string) string {
	if i := strings.LastIndexByte(p, '/'); i >= 0 {
		return p[i+1:]
	}
	return p
}
