package analysis

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// A Package is one type-checked, build-tag-filtered package of the
// module (non-test files only: the invariants under check are library
// contracts, and test files are exempt from all of them by design).
type Package struct {
	Path  string // import path
	Dir   string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// A Loader parses and type-checks packages of a single module without
// external tooling: module-internal imports are resolved by recursive
// loading, standard-library imports through the compiler-independent
// "source" importer (works offline, no export data needed). Not safe
// for concurrent use.
type Loader struct {
	ModuleRoot string // absolute path of the directory holding go.mod
	ModulePath string // module path declared in go.mod

	fset    *token.FileSet
	std     types.ImporterFrom
	pkgs    map[string]*Package // by import path, nil while loading
	loading map[string]bool
	errs    []error
}

// NewLoader builds a loader for the module rooted at or above dir.
func NewLoader(dir string) (*Loader, error) {
	root, modPath, err := findModule(dir)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	std, ok := importer.ForCompiler(fset, "source", nil).(types.ImporterFrom)
	if !ok {
		return nil, fmt.Errorf("analysis: source importer lacks ImportFrom")
	}
	return &Loader{
		ModuleRoot: root,
		ModulePath: modPath,
		fset:       fset,
		std:        std,
		pkgs:       make(map[string]*Package),
		loading:    make(map[string]bool),
	}, nil
}

// findModule walks up from dir to the enclosing go.mod.
func findModule(dir string) (root, modPath string, err error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", "", err
	}
	for d := abs; ; {
		data, err := os.ReadFile(filepath.Join(d, "go.mod"))
		if err == nil {
			for _, line := range strings.Split(string(data), "\n") {
				if rest, ok := strings.CutPrefix(strings.TrimSpace(line), "module "); ok {
					return d, strings.TrimSpace(rest), nil
				}
			}
			return "", "", fmt.Errorf("analysis: %s/go.mod has no module line", d)
		}
		parent := filepath.Dir(d)
		if parent == d {
			return "", "", fmt.Errorf("analysis: no go.mod at or above %s", abs)
		}
		d = parent
	}
}

// Load resolves the patterns ("./...", "dir/...", plain directories —
// resolved relative to base) to package directories, loads and
// type-checks each, and returns them sorted by import path. Any parse
// or type error fails the whole load: the linter must not silently
// pass over code it could not see.
func (l *Loader) Load(base string, patterns []string) ([]*Package, error) {
	dirs, err := l.expand(base, patterns)
	if err != nil {
		return nil, err
	}
	var pkgs []*Package
	for _, dir := range dirs {
		rel, err := filepath.Rel(l.ModuleRoot, dir)
		if err != nil || strings.HasPrefix(rel, "..") {
			return nil, fmt.Errorf("analysis: %s is outside module %s", dir, l.ModuleRoot)
		}
		path := l.ModulePath
		if rel != "." {
			path = l.ModulePath + "/" + filepath.ToSlash(rel)
		}
		pkg, err := l.loadPackage(path)
		if err != nil {
			if _, ok := err.(*build.NoGoError); ok {
				continue
			}
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	sort.Slice(pkgs, func(i, j int) bool { return pkgs[i].Path < pkgs[j].Path })
	return pkgs, nil
}

// expand turns patterns into a deduplicated list of candidate package
// directories. A trailing "..." walks the subtree, skipping testdata,
// hidden directories, and nested modules.
func (l *Loader) expand(base string, patterns []string) ([]string, error) {
	seen := make(map[string]bool)
	var dirs []string
	add := func(d string) {
		if !seen[d] {
			seen[d] = true
			dirs = append(dirs, d)
		}
	}
	for _, pat := range patterns {
		recursive := false
		if rest, ok := strings.CutSuffix(pat, "..."); ok {
			recursive = true
			pat = strings.TrimSuffix(rest, "/")
			if pat == "" {
				pat = "."
			}
		}
		root := pat
		if !filepath.IsAbs(root) {
			root = filepath.Join(base, root)
		}
		if !recursive {
			add(root)
			continue
		}
		err := filepath.WalkDir(root, func(p string, d os.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() {
				return nil
			}
			name := d.Name()
			if p != root {
				if strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") || name == "testdata" {
					return filepath.SkipDir
				}
				// A nested go.mod starts a different module.
				if _, err := os.Stat(filepath.Join(p, "go.mod")); err == nil {
					return filepath.SkipDir
				}
			}
			add(p)
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	return dirs, nil
}

// loadPackage loads one import path, memoized, detecting cycles.
func (l *Loader) loadPackage(path string) (*Package, error) {
	if pkg, ok := l.pkgs[path]; ok {
		return pkg, nil
	}
	if l.loading[path] {
		return nil, fmt.Errorf("analysis: import cycle through %s", path)
	}
	l.loading[path] = true
	defer delete(l.loading, path)

	rel := strings.TrimPrefix(path, l.ModulePath)
	dir := filepath.Join(l.ModuleRoot, filepath.FromSlash(strings.TrimPrefix(rel, "/")))
	pkg, err := l.checkDir(dir, path)
	if err != nil {
		return nil, err
	}
	l.pkgs[path] = pkg
	return pkg, nil
}

// checkDir parses the build-selected non-test files of dir and
// type-checks them as import path `path`.
func (l *Loader) checkDir(dir, path string) (*Package, error) {
	bp, err := build.Default.ImportDir(dir, 0)
	if err != nil {
		return nil, err // includes *build.NoGoError for file-less dirs
	}
	names := append([]string(nil), bp.GoFiles...)
	sort.Strings(names)
	files := make([]*ast.File, 0, len(names))
	for _, name := range names {
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
	}
	var typeErrs []error
	conf := types.Config{
		Importer: (*loaderImporter)(l),
		Error:    func(err error) { typeErrs = append(typeErrs, err) },
	}
	tpkg, err := conf.Check(path, l.fset, files, info)
	if len(typeErrs) > 0 {
		max := len(typeErrs)
		if max > 5 {
			max = 5
		}
		msgs := make([]string, 0, max)
		for _, e := range typeErrs[:max] {
			msgs = append(msgs, e.Error())
		}
		return nil, fmt.Errorf("analysis: type-checking %s failed:\n\t%s", path, strings.Join(msgs, "\n\t"))
	}
	if err != nil {
		return nil, fmt.Errorf("analysis: type-checking %s: %w", path, err)
	}
	return &Package{Path: path, Dir: dir, Fset: l.fset, Files: files, Types: tpkg, Info: info}, nil
}

// LoadDir type-checks a single directory under a caller-chosen import
// path, resolving only standard-library imports — the entry point the
// analyzer golden tests use (the fake path lets a testdata package pose
// as e.g. repro/internal/engine to a path-sensitive analyzer).
func LoadDir(dir, asPath string) (*Package, error) {
	fset := token.NewFileSet()
	std, ok := importer.ForCompiler(fset, "source", nil).(types.ImporterFrom)
	if !ok {
		return nil, fmt.Errorf("analysis: source importer lacks ImportFrom")
	}
	l := &Loader{
		ModuleRoot: dir,
		ModulePath: asPath,
		fset:       fset,
		std:        std,
		pkgs:       make(map[string]*Package),
		loading:    make(map[string]bool),
	}
	return l.checkDir(dir, asPath)
}

// loaderImporter adapts Loader to types.Importer: module-internal paths
// recurse into the loader, everything else is treated as stdlib.
type loaderImporter Loader

func (li *loaderImporter) Import(path string) (*types.Package, error) {
	return li.ImportFrom(path, "", 0)
}

func (li *loaderImporter) ImportFrom(path, dir string, mode types.ImportMode) (*types.Package, error) {
	l := (*Loader)(li)
	if path == l.ModulePath || strings.HasPrefix(path, l.ModulePath+"/") {
		pkg, err := l.loadPackage(path)
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	return l.std.ImportFrom(path, dir, mode)
}
