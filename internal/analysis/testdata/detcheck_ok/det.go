// Package det demonstrates honored detcheck suppressions: the same
// constructs as the positive suite, each with a reasoned annotation,
// producing zero diagnostics.
package det

import (
	"math/rand"
	"time"
)

func suppressedClock() time.Time {
	//rtmlint:detcheck-ok progress timestamps are display-only and never feed a result
	return time.Now()
}

func suppressedGlobalRand() int {
	return rand.Intn(10) //rtmlint:detcheck-ok test fixture shuffling, order never observed
}

func suppressedMapOrder(m map[int]int) []int {
	var out []int
	//rtmlint:detcheck-ok order laundered by the caller's sort, which the textual match cannot see
	for k := range m {
		out = append(out, k)
	}
	return out
}
