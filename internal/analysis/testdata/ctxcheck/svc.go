// Package svc exercises ctxcheck's positive cases in a library (non-
// main) package.
package svc

import "context"

type job struct {
	name string
	ctx  context.Context // want "ctxcheck: context.Context stored in a struct"
}

func freshRootBelowSurface(q string) error {
	ctx := context.Background() // want "ctxcheck: context.Background"
	return run(ctx, q)
}

func todoBelowSurface(q string) error {
	return run(context.TODO(), q) // want "ctxcheck: context.TODO"
}

func detachesInsteadOfThreading(ctx context.Context, q string) error {
	return run(context.Background(), q) // want "ctxcheck: context.Background"
}

// The nil-guard defaulting idiom is the sanctioned shape and stays
// quiet.
func nilGuardDefaultIsFine(ctx context.Context, q string) error {
	if ctx == nil {
		ctx = context.Background()
	}
	return run(ctx, q)
}

func threadingIsFine(ctx context.Context, q string) error {
	return run(ctx, q)
}

func run(ctx context.Context, q string) error {
	<-ctx.Done()
	_ = q
	return ctx.Err()
}

var _ = job{}
