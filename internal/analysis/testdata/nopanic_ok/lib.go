// Package lib demonstrates an honored nopanic suppression.
package lib

func mustAligned(off int) int {
	if off%8 != 0 {
		//rtmlint:nopanic-ok unreachable by construction: offsets are multiples of 8 from the builder
		panic("unaligned offset")
	}
	return off / 8
}
