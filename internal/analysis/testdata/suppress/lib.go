// Package lib exercises the suppress meta-check: malformed directives
// are diagnostics in their own right (asserted directly by
// TestMalformedSuppressions, not via want comments — the diagnostics
// land on the directive lines themselves).
package lib

func missingReason(n int) int {
	//rtmlint:nopanic-ok
	return n
}

func unknownAnalyzer(n int) int {
	//rtmlint:nosuchcheck-ok some reason
	return n
}

func noOkSuffix(n int) int {
	//rtmlint:nopanic
	return n
}
