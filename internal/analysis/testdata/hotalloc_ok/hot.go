// Package hot demonstrates honored hotalloc suppressions.
package hot

// replay is hot; the closure is provably non-escaping and the bench
// gate pins 0 allocs/op, so the finding is suppressed with the
// justification.
//
//rtm:hotpath
func replay(xs []int) int64 {
	var total int64
	//rtmlint:hotalloc-ok closure never escapes, stays on the stack; bench gate pins 0 allocs/op
	add := func(v int) { total += int64(v) }
	for _, x := range xs {
		add(x)
	}
	return total
}

// grow is hot; the make only fires on the cold resize path.
//
//rtm:hotpath
func grow(buf []int, n int) []int {
	if cap(buf) < n {
		buf = make([]int, n) //rtmlint:hotalloc-ok cold resize path, amortized to zero by reuse
	}
	return buf[:n]
}
