// Package lib exercises nopanic in a library package.
package lib

import (
	"errors"
	"log"
	"os"
)

func construct(n int) (int, error) {
	if n < 0 {
		panic("negative") // want "nopanic: panic in library code"
	}
	return n, nil
}

func fatal(err error) {
	log.Fatalf("boom: %v", err) // want "nopanic: log.Fatalf in library code"
}

func exit() {
	os.Exit(1) // want "nopanic: os.Exit in library code"
}

// Returning errors is the sanctioned shape.
func constructed(n int) (int, error) {
	if n < 0 {
		return 0, errors.New("negative")
	}
	return n, nil
}

// recover and error wrapping are fine; only the killers are flagged.
func contained(f func()) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = errors.New("contained")
		}
	}()
	f()
	return nil
}
