// Package det exercises detcheck's positive cases; the harness loads
// it as repro/internal/engine, a determinism-critical path.
package det

import (
	"math/rand"
	"sort"
	"time"
)

func clockFeedsResult() int64 {
	start := time.Now() // want "detcheck: time.Now"
	_ = start
	return time.Since(start).Nanoseconds() // want "detcheck: time.Since"
}

func globalRand() int {
	return rand.Intn(10) // want "detcheck: global rand.Intn"
}

func seededRandIsFine(seed int64) int {
	rng := rand.New(rand.NewSource(seed))
	return rng.Intn(10)
}

func mapOrderLeaksIntoSlice(m map[int]int) []int {
	var out []int
	for k := range m { // want "detcheck: map iteration order reaches an append"
		out = append(out, k)
	}
	return out
}

func mapOrderLeaksViaEarlyReturn(m map[int]string) string {
	for _, v := range m { // want "detcheck: map iteration order reaches a return"
		if len(v) > 3 {
			return v
		}
	}
	return ""
}

func mapOrderLeaksViaBreak(m map[int]int) int {
	best := -1
	for k := range m { // want "detcheck: map iteration order reaches a break"
		if k > 100 {
			best = k
			break
		}
	}
	return best
}

func mapOrderLeaksIntoChannel(m map[int]int, ch chan int) {
	for k := range m { // want "detcheck: map iteration order reaches a channel send"
		ch <- k
	}
}

// Commutative accumulation is order-independent and stays quiet.
func mapSumIsFine(m map[int]int64) int64 {
	var total int64
	for _, v := range m {
		total += v
	}
	return total
}

// The collect-then-sort laundering restores determinism and stays
// quiet.
func sortedKeysAreFine(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func racySelect(a, b chan int) int {
	select { // want "detcheck: select binds results from 2 channels"
	case x := <-a:
		return x
	case y := <-b:
		return y
	}
}

// One result channel raced against cancellation is the sanctioned
// shape.
func resultOrCancelIsFine(res chan int, done chan struct{}) int {
	select {
	case x := <-res:
		return x
	case <-done:
		return -1
	}
}
