// Command main shows that package main is exempt from nopanic: a CLI's
// top-level error handler is where Fatal and Exit belong.
package main

import (
	"log"
	"os"
)

func main() {
	if len(os.Args) < 2 {
		log.Fatal("usage: main <arg>")
	}
	if os.Args[1] == "boom" {
		panic("demo")
	}
	os.Exit(0)
}
