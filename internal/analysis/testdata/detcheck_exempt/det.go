// Package det carries nondeterminism sources but is loaded under a
// non-critical import path: detcheck must not report anything.
package det

import (
	"math/rand"
	"time"
)

func clock() time.Time { return time.Now() }

func globalRand() int { return rand.Intn(10) }

func mapOrder(m map[int]int) []int {
	var out []int
	for k := range m {
		out = append(out, k)
	}
	return out
}
