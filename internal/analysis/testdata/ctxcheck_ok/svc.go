// Package svc demonstrates honored ctxcheck suppressions.
package svc

import "context"

type flight struct {
	//rtmlint:ctxcheck-ok documented coalescing-flight exception: the flight outlives any single waiter
	base context.Context
}

func compatWrapper(q string) error {
	//rtmlint:ctxcheck-ok legacy compat wrapper is the public surface; no caller context exists
	return run(context.Background(), q)
}

func run(ctx context.Context, q string) error {
	_ = q
	return ctx.Err()
}

var _ = flight{}
