// Package hot exercises hotalloc: only functions annotated
// //rtm:hotpath are checked.
package hot

import "fmt"

type point struct{ x, y int }

// score is a hot inner loop.
//
//rtm:hotpath
func score(buf []int, n int) int {
	s := make([]int, n)           // want "hotalloc: make in hot path"
	p := new(point)               // want "hotalloc: new in hot path"
	q := &point{x: 1}             // want "hotalloc: &point{…} in hot path escapes"
	lit := []int{1, 2, 3}         // want "hotalloc: slice literal in hot path"
	m := map[int]int{}            // want "hotalloc: map literal in hot path"
	fresh := append(buf[:0:0], 1) // want "hotalloc: append to a fresh slice"
	buf = append(buf, n)          // self-append reuse idiom: fine
	v := point{x: 2}              // value struct literal stays on the stack: fine
	return len(s) + p.x + q.x + len(lit) + len(m) + len(fresh) + len(buf) + v.x
}

//rtm:hotpath
func conversions(s string, b []byte, idx map[string]int) (int, string) {
	bs := []byte(s)     // want "hotalloc: string→[]byte conversion"
	ss := string(b)     // want "hotalloc: []byte→string conversion"
	n := idx[string(b)] // compiler-recognized no-copy map lookup: fine
	return len(bs) + n, ss
}

//rtm:hotpath
func boxingAndClosures(v int64, err error) string {
	msg := fmt.Sprintf("v=%d", v)  // want "hotalloc: passing int64 to interface parameter boxes it"
	f := func() int64 { return v } // want "hotalloc: func literal in hot path"
	defer release()                // want "hotalloc: defer in hot path"
	_ = fmt.Sprint(err)            // error is already an interface: no boxing reported
	_ = fmt.Sprint("const")        // constants land in read-only statics: fine
	_ = f
	return msg
}

//rtm:hotpath
func concat(a, b string) string {
	return a + b // want "hotalloc: string concatenation in hot path"
}

// unannotated is the identical code without the directive: never
// checked.
func unannotated(n int) []int {
	s := make([]int, n)
	return append(s, n)
}

func release() {}
