package analysis

import (
	"go/ast"
	"go/token"
	"strings"
)

// The suppression grammar: a line comment of the form
//
//	//rtmlint:<analyzer>-ok <reason>
//
// placed on the flagged line, or alone on the line immediately above
// it, suppresses that analyzer's diagnostics for that line. The reason
// is mandatory and free-form — it is the reviewer-facing justification
// — and a suppression without one suppresses nothing and is reported
// by CheckSuppressions. The directive spelling is strict: no space
// before "rtmlint:" (matching Go directive convention, so gofmt leaves
// it alone).
const suppressPrefix = "rtmlint:"

// A suppression is one parsed //rtmlint: directive.
type suppression struct {
	name   string // analyzer name ("detcheck", ...)
	reason string
	pos    token.Position
}

// suppressions indexes parsed directives by (file, line).
type suppressions struct {
	byLine map[lineKey][]suppression
}

type lineKey struct {
	file string
	line int
}

// parseSuppression decodes one comment, returning ok=false when the
// comment is not an rtmlint directive at all. Malformed directives
// (missing "-ok", empty reason) return ok=true with the defect encoded
// as an empty name or reason for CheckSuppressions to report.
func parseSuppression(c *ast.Comment) (name, reason string, ok bool) {
	text := c.Text
	if !strings.HasPrefix(text, "//"+suppressPrefix) {
		return "", "", false
	}
	rest := strings.TrimPrefix(text, "//"+suppressPrefix)
	// Split "<name>-ok <reason>".
	head, reason, _ := strings.Cut(rest, " ")
	name, found := strings.CutSuffix(head, "-ok")
	if !found {
		return "", "", true // malformed: not the -ok form
	}
	return name, strings.TrimSpace(reason), true
}

// collectSuppressions indexes every well-formed directive in the files.
func collectSuppressions(fset *token.FileSet, files []*ast.File) *suppressions {
	s := &suppressions{byLine: make(map[lineKey][]suppression)}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				name, reason, ok := parseSuppression(c)
				if !ok || name == "" || reason == "" {
					continue // malformed directives never suppress
				}
				pos := fset.Position(c.Pos())
				k := lineKey{pos.Filename, pos.Line}
				s.byLine[k] = append(s.byLine[k], suppression{name, reason, pos})
			}
		}
	}
	return s
}

// covers reports whether a directive for analyzer name is in scope for
// a diagnostic at pos: same line, or the line immediately above.
func (s *suppressions) covers(name string, pos token.Position) bool {
	for _, line := range [2]int{pos.Line, pos.Line - 1} {
		for _, sup := range s.byLine[lineKey{pos.Filename, line}] {
			if sup.name == name {
				return true
			}
		}
	}
	return false
}

// CheckSuppressions reports malformed //rtmlint: directives: unknown
// analyzer names (typos silently suppress nothing — surface them) and
// missing reasons (every suppression must justify itself). Reported
// under the pseudo-analyzer name "suppress".
func CheckSuppressions(fset *token.FileSet, files []*ast.File, known map[string]bool) []Diagnostic {
	var diags []Diagnostic
	report := func(c *ast.Comment, msg string) {
		diags = append(diags, Diagnostic{
			Pos:      fset.Position(c.Pos()),
			Analyzer: "suppress",
			Message:  msg,
		})
	}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				name, reason, ok := parseSuppression(c)
				switch {
				case !ok:
					continue
				case name == "":
					report(c, "malformed rtmlint directive: want //rtmlint:<analyzer>-ok <reason>")
				case !known[name]:
					report(c, "rtmlint suppression names unknown analyzer "+name)
				case reason == "":
					report(c, "rtmlint suppression for "+name+" is missing its reason")
				}
			}
		}
	}
	return diags
}
