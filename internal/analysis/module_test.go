package analysis

import (
	"os"
	"path/filepath"
	"testing"
)

// TestModuleIsLintClean runs the full suite over the enclosing module —
// the same verdict as `go run ./cmd/rtmlint ./...` — so tier-1
// `go test ./...` enforces the invariant catalog without needing the
// CI lint job. A finding here means either fix the code or suppress it
// with a reasoned //rtmlint:<analyzer>-ok annotation.
func TestModuleIsLintClean(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole module; skipped in -short")
	}
	loader, err := NewLoader(".")
	if err != nil {
		t.Fatalf("NewLoader: %v", err)
	}
	pkgs, err := loader.Load(loader.ModuleRoot, []string{"./..."})
	if err != nil {
		t.Fatalf("loading module packages: %v", err)
	}
	if len(pkgs) < 10 {
		t.Fatalf("loaded only %d packages — pattern expansion is broken", len(pkgs))
	}
	for _, pkg := range pkgs {
		for _, d := range RunPackage(pkg, Analyzers()) {
			t.Errorf("%s", d)
		}
	}
}

// TestSeededViolationFails writes a throwaway module with a
// determinism violation in a critical package and proves the suite
// catches it end to end (loader → type check → analyzer → diagnostic):
// the drill for "a single time.Now() would ship silently" staying
// impossible.
func TestSeededViolationFails(t *testing.T) {
	root := t.TempDir()
	pkgDir := filepath.Join(root, "internal", "engine")
	if err := os.MkdirAll(pkgDir, 0o755); err != nil {
		t.Fatal(err)
	}
	write := func(name, content string) {
		t.Helper()
		if err := os.WriteFile(name, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	write(filepath.Join(root, "go.mod"), "module example.test/seeded\n\ngo 1.23\n")
	write(filepath.Join(pkgDir, "engine.go"), `package engine

import "time"

func Stamp() int64 { return time.Now().UnixNano() }
`)

	loader, err := NewLoader(root)
	if err != nil {
		t.Fatalf("NewLoader: %v", err)
	}
	pkgs, err := loader.Load(root, []string{"./..."})
	if err != nil {
		t.Fatalf("loading seeded module: %v", err)
	}
	if len(pkgs) != 1 {
		t.Fatalf("loaded %d packages, want 1", len(pkgs))
	}
	diags := RunPackage(pkgs[0], Analyzers())
	if len(diags) != 1 {
		t.Fatalf("got %d diagnostics, want exactly the seeded time.Now finding:\n%v", len(diags), diags)
	}
	if diags[0].Analyzer != "detcheck" {
		t.Fatalf("diagnostic %v, want a detcheck finding", diags[0])
	}
}
