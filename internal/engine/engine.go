// Package engine is the shared concurrent experiment engine (see
// DESIGN.md §4). Every batch computation in the repository — the eval
// drivers behind the paper's figures, the public PlaceBenchmark API and
// the CLI tools — fans work out through the same deterministic worker
// pool instead of hand-rolling goroutine plumbing.
//
// The pool itself lives in internal/pool (a leaf package, so the
// placement layer's island GA and portfolio race can share it without an
// import cycle); Run and Map here are thin aliases kept for the engine's
// callers. The determinism contract is the pool's: results are
// position-stable and independent of worker count and scheduling.
package engine

import (
	"context"

	"repro/internal/pool"
)

// Run executes fn(ctx, i) for every i in [0, n) on up to `workers`
// goroutines (0 or 1 means sequential; workers are additionally capped at
// n). On failure it returns the error of the lowest-index failing job
// among those that ran, so error reporting does not flap with goroutine
// completion order.
//
// Cancellation: the supplied context is propagated to every job, and the
// first failure cancels the derived context, so long-running jobs can
// bail out early and unstarted jobs are skipped. Run itself stops
// dispatching once the context is done and returns ctx.Err() when no job
// error outranks it.
func Run(ctx context.Context, n, workers int, fn func(ctx context.Context, i int) error) error {
	return pool.Run(ctx, n, workers, fn)
}

// Map runs fn over [0, n) with Run and collects the results in input
// order. On error the partial results are discarded.
func Map[T any](ctx context.Context, n, workers int, fn func(ctx context.Context, i int) (T, error)) ([]T, error) {
	return pool.Map(ctx, n, workers, fn)
}
