package engine

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/offsetstone"
	"repro/internal/placement"
	"repro/internal/sim"
	"repro/internal/trace"
)

func TestRunExecutesEveryJobOnce(t *testing.T) {
	for _, workers := range []int{0, 1, 3, 8, 100} {
		n := 37
		counts := make([]int32, n)
		err := Run(context.Background(), n, workers, func(_ context.Context, i int) error {
			atomic.AddInt32(&counts[i], 1)
			return nil
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i, c := range counts {
			if c != 1 {
				t.Fatalf("workers=%d: job %d ran %d times", workers, i, c)
			}
		}
	}
}

func TestRunReturnsLowestIndexError(t *testing.T) {
	boom7 := errors.New("boom 7")
	for _, workers := range []int{1, 4} {
		err := Run(context.Background(), 64, workers, func(_ context.Context, i int) error {
			switch i {
			case 7:
				return boom7
			case 23:
				return errors.New("boom 23")
			}
			return nil
		})
		if !errors.Is(err, boom7) {
			t.Fatalf("workers=%d: got %v, want boom 7", workers, err)
		}
	}
}

func TestRunCancellationStopsDispatch(t *testing.T) {
	var ran int32
	err := Run(context.Background(), 1000, 2, func(ctx context.Context, i int) error {
		atomic.AddInt32(&ran, 1)
		if i == 0 {
			return errors.New("first job fails")
		}
		// Later jobs see the cancellation and bail out quickly.
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(time.Millisecond):
			return nil
		}
	})
	if err == nil || !strings.Contains(err.Error(), "first job fails") {
		t.Fatalf("got %v, want the root-cause error", err)
	}
	if n := atomic.LoadInt32(&ran); n == 1000 {
		t.Error("cancellation did not stop dispatch")
	}
}

func TestRunNilContextAndEmptyBatch(t *testing.T) {
	if err := Run(nil, 0, 4, func(_ context.Context, i int) error { return nil }); err != nil {
		t.Fatalf("nil ctx, empty batch: %v", err)
	}
	if err := Run(nil, 3, 2, func(_ context.Context, i int) error { return nil }); err != nil {
		t.Fatalf("nil ctx: %v", err)
	}
	out, err := Map(context.Background(), 0, 4, func(_ context.Context, i int) (int, error) { return 0, nil })
	if err != nil || len(out) != 0 {
		t.Fatalf("empty Map: %v, %v", out, err)
	}
}

func TestRunHonorsCallerContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	err := Run(ctx, 10, 4, func(_ context.Context, i int) error { return nil })
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v, want context.Canceled", err)
	}
}

func TestMapCollectsInOrder(t *testing.T) {
	out, err := Map(context.Background(), 20, 5, func(_ context.Context, i int) (int, error) {
		return i * i, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range out {
		if v != i*i {
			t.Fatalf("out[%d] = %d", i, v)
		}
	}
	if _, err := Map(context.Background(), 5, 2, func(_ context.Context, i int) (int, error) {
		return 0, fmt.Errorf("fail %d", i)
	}); err == nil {
		t.Fatal("error not propagated")
	}
}

// testJobs builds a realistic mixed batch over a generated benchmark:
// every (sequence × heuristic strategy × DBC count) cell.
func testJobs(t testing.TB, bench string) []PlaceJob {
	t.Helper()
	b, err := offsetstone.Generate(bench)
	if err != nil {
		t.Fatal(err)
	}
	var jobs []PlaceJob
	for _, q := range []int{2, 4} {
		for _, id := range placement.HeuristicStrategies() {
			for _, s := range b.Sequences {
				jobs = append(jobs, PlaceJob{Sequence: s, Strategy: id, DBCs: q})
			}
		}
	}
	return jobs
}

// TestBatchPlaceDeterministic is the engine determinism contract: the
// same batch must produce identical placements and shift counts for
// workers=1 and workers=8.
func TestBatchPlaceDeterministic(t *testing.T) {
	jobs := testJobs(t, "gsm")
	seq, err := BatchPlace(context.Background(), jobs, 1)
	if err != nil {
		t.Fatal(err)
	}
	par, err := BatchPlace(context.Background(), jobs, 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(seq) != len(par) {
		t.Fatalf("lengths differ: %d vs %d", len(seq), len(par))
	}
	for i := range seq {
		if seq[i].Shifts != par[i].Shifts {
			t.Errorf("job %d: shifts %d vs %d", i, seq[i].Shifts, par[i].Shifts)
		}
		if !seq[i].Placement.Equal(par[i].Placement) {
			t.Errorf("job %d: placements differ", i)
		}
	}
}

// TestBatchSimulateDeterministic extends the contract to full simulation
// cells (placement + device replay + Table I latency/energy).
func TestBatchSimulateDeterministic(t *testing.T) {
	b, err := offsetstone.Generate("adpcm")
	if err != nil {
		t.Fatal(err)
	}
	var jobs []SimJob
	for _, q := range []int{2, 4} {
		cfg, err := sim.TableIConfig(q)
		if err != nil {
			t.Fatal(err)
		}
		for _, id := range placement.HeuristicStrategies() {
			for _, s := range b.Sequences {
				jobs = append(jobs, SimJob{Config: cfg, Sequence: s, Strategy: id})
			}
		}
	}
	one, err := BatchSimulate(context.Background(), jobs, 1)
	if err != nil {
		t.Fatal(err)
	}
	eight, err := BatchSimulate(context.Background(), jobs, 8)
	if err != nil {
		t.Fatal(err)
	}
	for i := range one {
		if one[i] != eight[i] {
			t.Errorf("cell %d: %+v vs %+v", i, one[i], eight[i])
		}
	}
}

func TestBatchPlaceUnknownStrategy(t *testing.T) {
	s, err := trace.NewNamedSequence("a", "b", "a")
	if err != nil {
		t.Fatal(err)
	}
	jobs := []PlaceJob{
		{Sequence: s, Strategy: placement.StrategyDMASR, DBCs: 2},
		{Sequence: s, Strategy: "no-such-strategy", DBCs: 2},
	}
	if _, err := BatchPlace(context.Background(), jobs, 4); err == nil {
		t.Fatal("unknown strategy accepted")
	}
}

// BenchmarkBatch measures batch placement throughput; run with
// -cpu 1,4 to see the engine scale across cores (workers follow
// GOMAXPROCS).
func BenchmarkBatch(b *testing.B) {
	jobs := testJobs(b, "gsm")
	workers := runtime.GOMAXPROCS(0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := BatchPlace(context.Background(), jobs, workers); err != nil {
			b.Fatal(err)
		}
	}
}
