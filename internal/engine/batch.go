package engine

import (
	"context"
	"fmt"

	"repro/internal/placement"
	"repro/internal/sim"
	"repro/internal/trace"
)

// Hooks customizes how a batch resolves, prices and reports its cells.
// The zero value reproduces the plain batch behaviour: strategies resolve
// against the process-wide registry, kernels are built per batch, and no
// progress is reported. The public session API (racetrack.Lab) supplies
// all three so instance registries, the content-addressed kernel cache
// and progress callbacks reach every worker.
type Hooks struct {
	// Resolve maps a strategy name to its implementation. Nil means the
	// process-wide placement registry.
	Resolve func(placement.StrategyID) (placement.Strategy, bool)
	// Progress, when non-nil, is called from worker goroutines as cells
	// start and finish; it must be safe for concurrent use.
	Progress func(Event)
	// Kernel, when non-nil, supplies the cost kernel for a sequence
	// (called once per distinct sequence per batch, possibly
	// concurrently). The returned kernel must be bound to exactly the
	// given sequence — content-addressed caches rebind before returning.
	// Nil means build a fresh kernel per batch.
	Kernel func(*trace.Sequence) *placement.CostKernel
}

// resolve returns the effective strategy resolver.
func (h Hooks) resolve() func(placement.StrategyID) (placement.Strategy, bool) {
	if h.Resolve != nil {
		return h.Resolve
	}
	return placement.LookupStrategy
}

// Place resolves the named strategy through the hooks' resolver and
// runs it — the single place the batch layer (and the eval drivers'
// inline probes) turn a strategy name into a placement.
func (h Hooks) Place(id placement.StrategyID, s *trace.Sequence, q int, opts placement.Options) (*placement.Placement, int64, error) {
	st, ok := h.resolve()(id)
	if !ok {
		return nil, 0, fmt.Errorf("placement: unknown strategy %q", id)
	}
	return st.Place(s, q, opts)
}

// An Event reports the life cycle of one batch cell to the Progress hook:
// once with Done == false when a worker picks the cell up, and once with
// Done == true (carrying the shift count or the error) when it finishes.
type Event struct {
	// Index identifies the cell within its batch of Total cells.
	Index, Total int
	// Sequence, Strategy and DBCs describe the cell's work item.
	Sequence *trace.Sequence
	Strategy placement.StrategyID
	DBCs     int
	// Done distinguishes the started (false) from the finished (true)
	// notification.
	Done bool
	// Shifts is the cell's shift cost, valid when Done && Err == nil.
	Shifts int64
	// Err is the cell's failure, if any, on the finished notification.
	Err error
}

// A PlaceJob is one placement cell: run one registry strategy on one
// sequence at one DBC count. Options carries the full per-cell knob
// set, including the cost model: Options.Ports > 1 makes the cell
// optimize and report under the exact multi-port model (the batch
// kernel is still threaded — the single-port surrogate stages inside
// port-aware strategies use it).
type PlaceJob struct {
	Sequence *trace.Sequence
	Strategy placement.StrategyID
	DBCs     int
	Options  placement.Options
}

// PlaceOutcome is the result of one PlaceJob.
type PlaceOutcome struct {
	Placement *placement.Placement
	Shifts    int64
}

// BatchPlace runs every placement job on a worker pool of the given size
// and returns the outcomes in job order. Results are identical for any
// worker count; the first failing job (lowest index) aborts the batch.
//
// Before dispatch, one placement.CostKernel is built per distinct
// sequence in the batch (in parallel, on the same worker budget) and
// threaded to every job via Options.Kernel: the eval drivers typically
// submit the same sequence under many strategies and DBC counts, and the
// shared kernel lets each cell price placements in O(nnz) instead of
// replaying the access stream. Costs are bit-identical either way, so
// batch results do not depend on the sharing.
func BatchPlace(ctx context.Context, jobs []PlaceJob, workers int) ([]PlaceOutcome, error) {
	return BatchPlaceWith(ctx, jobs, workers, Hooks{})
}

// BatchPlaceWith is BatchPlace with resolution, kernel sourcing and
// progress reporting customized by hooks.
func BatchPlaceWith(ctx context.Context, jobs []PlaceJob, workers int, hooks Hooks) ([]PlaceOutcome, error) {
	kernels, err := batchKernels(ctx, len(jobs), workers, hooks, func(i int) *trace.Sequence { return jobs[i].Sequence })
	if err != nil {
		return nil, err
	}
	return Map(ctx, len(jobs), workers, func(ctx context.Context, i int) (PlaceOutcome, error) {
		j := jobs[i]
		if hooks.Progress != nil {
			hooks.Progress(Event{Index: i, Total: len(jobs), Sequence: j.Sequence, Strategy: j.Strategy, DBCs: j.DBCs})
		}
		j.Options.Kernel = kernels[j.Sequence]
		// Thread the batch context to the cell so long-running search
		// strategies (the GA) can honor cancellation mid-search.
		j.Options.Context = ctx
		p, c, err := hooks.Place(j.Strategy, j.Sequence, j.DBCs, j.Options)
		if hooks.Progress != nil {
			hooks.Progress(Event{Index: i, Total: len(jobs), Sequence: j.Sequence, Strategy: j.Strategy, DBCs: j.DBCs, Done: true, Shifts: c, Err: err})
		}
		if err != nil {
			return PlaceOutcome{}, fmt.Errorf("engine: cell %d (%s, q=%d): %w", i, j.Strategy, j.DBCs, err)
		}
		return PlaceOutcome{Placement: p, Shifts: c}, nil
	})
}

// batchKernels builds the per-sequence cost kernels of a batch: one per
// distinct sequence (pointer identity), constructed concurrently through
// the same deterministic worker pool the batch itself runs on. When the
// hooks supply a kernel source (the session kernel cache), it is
// consulted instead of building from scratch.
func batchKernels(ctx context.Context, n, workers int, hooks Hooks, seqAt func(i int) *trace.Sequence) (map[*trace.Sequence]*placement.CostKernel, error) {
	var distinct []*trace.Sequence
	kernels := make(map[*trace.Sequence]*placement.CostKernel, 8)
	for i := 0; i < n; i++ {
		s := seqAt(i)
		if s == nil {
			continue
		}
		if _, seen := kernels[s]; !seen {
			kernels[s] = nil
			distinct = append(distinct, s)
		}
	}
	source := hooks.Kernel
	if source == nil {
		source = placement.NewCostKernel
	}
	built, err := Map(ctx, len(distinct), workers, func(_ context.Context, i int) (*placement.CostKernel, error) {
		return source(distinct[i]), nil
	})
	if err != nil {
		return nil, err
	}
	for i, s := range distinct {
		kernels[s] = built[i]
	}
	return kernels, nil
}

// A SimJob is one simulation cell: place one sequence with one registry
// strategy and replay it on the configured device.
type SimJob struct {
	Config   sim.Config
	Sequence *trace.Sequence
	Strategy placement.StrategyID
	Options  placement.Options
}

// BatchSimulate runs every simulation cell on a worker pool of the given
// size and returns the per-cell results in job order. Callers aggregate
// the returned slice in input order, so totals (including float latency
// and energy sums) are bit-identical for any worker count. As in
// BatchPlace, one cost kernel per distinct sequence is shared across the
// cells' placement phases.
func BatchSimulate(ctx context.Context, jobs []SimJob, workers int) ([]sim.Result, error) {
	return BatchSimulateWith(ctx, jobs, workers, Hooks{})
}

// BatchSimulateWith is BatchSimulate with resolution, kernel sourcing and
// progress reporting customized by hooks.
func BatchSimulateWith(ctx context.Context, jobs []SimJob, workers int, hooks Hooks) ([]sim.Result, error) {
	kernels, err := batchKernels(ctx, len(jobs), workers, hooks, func(i int) *trace.Sequence { return jobs[i].Sequence })
	if err != nil {
		return nil, err
	}
	return Map(ctx, len(jobs), workers, func(ctx context.Context, i int) (sim.Result, error) {
		j := jobs[i]
		q := j.Config.Geometry.DBCs()
		if hooks.Progress != nil {
			hooks.Progress(Event{Index: i, Total: len(jobs), Sequence: j.Sequence, Strategy: j.Strategy, DBCs: q})
		}
		j.Options.Kernel = kernels[j.Sequence]
		j.Options.Context = ctx
		var r sim.Result
		p, _, err := hooks.Place(j.Strategy, j.Sequence, q, j.Options)
		if err == nil {
			r, err = sim.RunSequence(j.Config, j.Sequence, p)
		}
		if hooks.Progress != nil {
			hooks.Progress(Event{Index: i, Total: len(jobs), Sequence: j.Sequence, Strategy: j.Strategy, DBCs: q, Done: true, Shifts: r.Counts.Shifts, Err: err})
		}
		if err != nil {
			return sim.Result{}, fmt.Errorf("engine: cell %d (%s, q=%d): %w", i, j.Strategy, q, err)
		}
		return r, nil
	})
}
