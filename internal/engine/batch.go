package engine

import (
	"context"
	"fmt"

	"repro/internal/placement"
	"repro/internal/sim"
	"repro/internal/trace"
)

// A PlaceJob is one placement cell: run one registry strategy on one
// sequence at one DBC count.
type PlaceJob struct {
	Sequence *trace.Sequence
	Strategy placement.StrategyID
	DBCs     int
	Options  placement.Options
}

// PlaceOutcome is the result of one PlaceJob.
type PlaceOutcome struct {
	Placement *placement.Placement
	Shifts    int64
}

// BatchPlace runs every placement job on a worker pool of the given size
// and returns the outcomes in job order. Results are identical for any
// worker count; the first failing job (lowest index) aborts the batch.
func BatchPlace(ctx context.Context, jobs []PlaceJob, workers int) ([]PlaceOutcome, error) {
	return Map(ctx, len(jobs), workers, func(_ context.Context, i int) (PlaceOutcome, error) {
		j := jobs[i]
		p, c, err := placement.Place(j.Strategy, j.Sequence, j.DBCs, j.Options)
		if err != nil {
			return PlaceOutcome{}, fmt.Errorf("engine: cell %d (%s, q=%d): %w", i, j.Strategy, j.DBCs, err)
		}
		return PlaceOutcome{Placement: p, Shifts: c}, nil
	})
}

// A SimJob is one simulation cell: place one sequence with one registry
// strategy and replay it on the configured device.
type SimJob struct {
	Config   sim.Config
	Sequence *trace.Sequence
	Strategy placement.StrategyID
	Options  placement.Options
}

// BatchSimulate runs every simulation cell on a worker pool of the given
// size and returns the per-cell results in job order. Callers aggregate
// the returned slice in input order, so totals (including float latency
// and energy sums) are bit-identical for any worker count.
func BatchSimulate(ctx context.Context, jobs []SimJob, workers int) ([]sim.Result, error) {
	return Map(ctx, len(jobs), workers, func(_ context.Context, i int) (sim.Result, error) {
		j := jobs[i]
		r, err := sim.RunCell(j.Config, j.Sequence, j.Strategy, j.Options)
		if err != nil {
			return sim.Result{}, fmt.Errorf("engine: cell %d (%s, q=%d): %w", i, j.Strategy, j.Config.Geometry.DBCs(), err)
		}
		return r, nil
	})
}
