package engine

import (
	"context"
	"fmt"

	"repro/internal/placement"
	"repro/internal/sim"
	"repro/internal/trace"
)

// A PlaceJob is one placement cell: run one registry strategy on one
// sequence at one DBC count.
type PlaceJob struct {
	Sequence *trace.Sequence
	Strategy placement.StrategyID
	DBCs     int
	Options  placement.Options
}

// PlaceOutcome is the result of one PlaceJob.
type PlaceOutcome struct {
	Placement *placement.Placement
	Shifts    int64
}

// BatchPlace runs every placement job on a worker pool of the given size
// and returns the outcomes in job order. Results are identical for any
// worker count; the first failing job (lowest index) aborts the batch.
//
// Before dispatch, one placement.CostKernel is built per distinct
// sequence in the batch (in parallel, on the same worker budget) and
// threaded to every job via Options.Kernel: the eval drivers typically
// submit the same sequence under many strategies and DBC counts, and the
// shared kernel lets each cell price placements in O(nnz) instead of
// replaying the access stream. Costs are bit-identical either way, so
// batch results do not depend on the sharing.
func BatchPlace(ctx context.Context, jobs []PlaceJob, workers int) ([]PlaceOutcome, error) {
	kernels, err := batchKernels(ctx, len(jobs), workers, func(i int) *trace.Sequence { return jobs[i].Sequence })
	if err != nil {
		return nil, err
	}
	return Map(ctx, len(jobs), workers, func(_ context.Context, i int) (PlaceOutcome, error) {
		j := jobs[i]
		j.Options.Kernel = kernels[j.Sequence]
		p, c, err := placement.Place(j.Strategy, j.Sequence, j.DBCs, j.Options)
		if err != nil {
			return PlaceOutcome{}, fmt.Errorf("engine: cell %d (%s, q=%d): %w", i, j.Strategy, j.DBCs, err)
		}
		return PlaceOutcome{Placement: p, Shifts: c}, nil
	})
}

// batchKernels builds the per-sequence cost kernels of a batch: one per
// distinct sequence (pointer identity), constructed concurrently through
// the same deterministic worker pool the batch itself runs on.
func batchKernels(ctx context.Context, n, workers int, seqAt func(i int) *trace.Sequence) (map[*trace.Sequence]*placement.CostKernel, error) {
	var distinct []*trace.Sequence
	kernels := make(map[*trace.Sequence]*placement.CostKernel, 8)
	for i := 0; i < n; i++ {
		s := seqAt(i)
		if s == nil {
			continue
		}
		if _, seen := kernels[s]; !seen {
			kernels[s] = nil
			distinct = append(distinct, s)
		}
	}
	built, err := Map(ctx, len(distinct), workers, func(_ context.Context, i int) (*placement.CostKernel, error) {
		return placement.NewCostKernel(distinct[i]), nil
	})
	if err != nil {
		return nil, err
	}
	for i, s := range distinct {
		kernels[s] = built[i]
	}
	return kernels, nil
}

// A SimJob is one simulation cell: place one sequence with one registry
// strategy and replay it on the configured device.
type SimJob struct {
	Config   sim.Config
	Sequence *trace.Sequence
	Strategy placement.StrategyID
	Options  placement.Options
}

// BatchSimulate runs every simulation cell on a worker pool of the given
// size and returns the per-cell results in job order. Callers aggregate
// the returned slice in input order, so totals (including float latency
// and energy sums) are bit-identical for any worker count. As in
// BatchPlace, one cost kernel per distinct sequence is shared across the
// cells' placement phases.
func BatchSimulate(ctx context.Context, jobs []SimJob, workers int) ([]sim.Result, error) {
	kernels, err := batchKernels(ctx, len(jobs), workers, func(i int) *trace.Sequence { return jobs[i].Sequence })
	if err != nil {
		return nil, err
	}
	return Map(ctx, len(jobs), workers, func(_ context.Context, i int) (sim.Result, error) {
		j := jobs[i]
		j.Options.Kernel = kernels[j.Sequence]
		r, err := sim.RunCell(j.Config, j.Sequence, j.Strategy, j.Options)
		if err != nil {
			return sim.Result{}, fmt.Errorf("engine: cell %d (%s, q=%d): %w", i, j.Strategy, j.Config.Geometry.DBCs(), err)
		}
		return r, nil
	})
}
