package eval

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"

	"repro/internal/placement"
)

// CSV writers for the experiment datasets, so the figures can be re-drawn
// with external plotting tools. Each writer emits one row per data point
// with a stable header.

// WriteCSV renders the Fig. 4 dataset: benchmark, dbcs, strategy, shifts,
// normalized-to-GA.
func (r *Fig4Result) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"benchmark", "dbcs", "strategy", "shifts", "normalized_to_ga"}); err != nil {
		return err
	}
	for _, row := range r.Rows {
		for _, id := range placement.AllStrategies() {
			rec := []string{
				row.Benchmark,
				strconv.Itoa(row.DBCs),
				string(id),
				strconv.FormatInt(row.Shifts[id], 10),
				formatFloat(row.Normalized[id]),
			}
			if err := cw.Write(rec); err != nil {
				return err
			}
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteCSV renders the Fig. 5 dataset: dbcs, strategy, leakage, rd/wr,
// shift (all normalized to the AFD-OFU total) and absolute totals.
func (r *Fig5Result) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"dbcs", "strategy", "leakage_norm", "readwrite_norm", "shift_norm", "total_pj", "latency_ns", "shifts"}); err != nil {
		return err
	}
	for _, c := range r.Cells {
		rec := []string{
			strconv.Itoa(c.DBCs),
			string(c.Strategy),
			formatFloat(c.Leakage),
			formatFloat(c.ReadWrite),
			formatFloat(c.Shift),
			formatFloat(c.TotalPJ),
			formatFloat(c.LatencyNS),
			strconv.FormatInt(c.Shifts, 10),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteCSV renders the Fig. 6 dataset.
func (r *Fig6Result) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"dbcs", "shift_improvement", "latency_improvement", "energy_improvement", "area_improvement", "shifts_dmasr", "shifts_afd", "latency_ns", "energy_pj", "area_mm2"}); err != nil {
		return err
	}
	for _, row := range r.Rows {
		rec := []string{
			strconv.Itoa(row.DBCs),
			formatFloat(row.ShiftImprovement),
			formatFloat(row.LatencyImprovement),
			formatFloat(row.EnergyImprovement),
			formatFloat(row.AreaImprovement),
			strconv.FormatInt(row.ShiftsDMASR, 10),
			strconv.FormatInt(row.ShiftsAFD, 10),
			formatFloat(row.LatencyNS),
			formatFloat(row.TotalEnergyPJ),
			formatFloat(row.AreaMM2),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteCSV renders the ports sweep: replay-only and re-optimized totals
// per strategy and port count.
func (r *PortsResult) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"ports", "afd_ofu_shifts", "dma_sr_shifts", "dma_2opt_shifts",
		"afd_ofu_reopt_shifts", "dma_sr_reopt_shifts", "dma_2opt_reopt_shifts", "improvement"}); err != nil {
		return err
	}
	for _, row := range r.Rows {
		rec := []string{
			strconv.Itoa(row.Ports),
			strconv.FormatInt(row.AFDOFU, 10),
			strconv.FormatInt(row.DMASR, 10),
			strconv.FormatInt(row.DMA2Opt, 10),
			strconv.FormatInt(row.AFDOFUReopt, 10),
			strconv.FormatInt(row.DMASRReopt, 10),
			strconv.FormatInt(row.DMA2OptReopt, 10),
			formatFloat(row.Improved),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

func formatFloat(f float64) string {
	return fmt.Sprintf("%.6g", f)
}
