package eval

import (
	"context"
	"fmt"
	"strings"

	"repro/internal/placement"
)

// PortfolioStudyRow reports one benchmark's strategy race: every
// sequence is placed by racing the whole portfolio concurrently
// (placement.RacePortfolio), and the row accumulates the winners' shift
// total plus how often each strategy won.
type PortfolioStudyRow struct {
	Benchmark string
	Sequences int
	// Shifts is the benchmark's portfolio total: the winning strategy's
	// cost per sequence, summed. By construction it is the per-sequence
	// minimum over the portfolio — never worse than any single
	// strategy's benchmark total.
	Shifts int64
	// Wins counts race wins per strategy, aligned with the result's
	// Strategies order.
	Wins []int
}

// PortfolioStudyResult is the portfolio-race dataset: the paper runs
// one strategy per experiment cell; this extension study races all of
// them per sequence and reports what a portfolio scheduler would ship.
type PortfolioStudyResult struct {
	Strategies []placement.StrategyID
	Rows       []PortfolioStudyRow
	DBCs       int
	// TotalShifts sums the per-benchmark portfolio totals.
	TotalShifts int64
	// Wins aggregates race wins per strategy over the whole suite.
	Wins []int
	// Raced counts strategy runs over all races; Abandoned counts how
	// many of them the incumbent bound pruned before full pricing.
	Raced, Abandoned int
}

// portfolioStrategies lists the raced strategies in deterministic
// tie-break order: the six paper strategies first, then the two
// extension strategies — the Registered() order of a fresh registry,
// pinned here so the study does not shift when plugins register.
func portfolioStrategies() []placement.StrategyID {
	return append(placement.AllStrategies(),
		placement.StrategyDMATwoOpt, placement.StrategyGAMemetic)
}

// Portfolio races the strategy portfolio on every sequence of the suite
// at the first configured DBC count. Races run one sequence at a time;
// the configured worker budget parallelizes the strategies inside each
// race (the GA/RW cells dominate a race's wall clock, so racing them
// against the heuristics is where the concurrency pays).
func Portfolio(ctx context.Context, cfg Config) (*PortfolioStudyResult, error) {
	q, err := cfg.firstDBCs()
	if err != nil {
		return nil, fmt.Errorf("eval: portfolio: %w", err)
	}
	suite, err := cfg.suite()
	if err != nil {
		return nil, err
	}
	ids := portfolioStrategies()
	res := &PortfolioStudyResult{Strategies: ids, DBCs: q, Wins: make([]int, len(ids))}
	winIdx := make(map[placement.StrategyID]int, len(ids))
	for i, id := range ids {
		winIdx[id] = i
	}
	opts := cfg.options()
	for _, b := range suite {
		row := PortfolioStudyRow{Benchmark: b.Name, Sequences: len(b.Sequences), Wins: make([]int, len(ids))}
		for _, s := range b.Sequences {
			r, err := placement.RacePortfolio(ctx, s, q, placement.PortfolioConfig{
				Strategies: ids,
				Resolve:    cfg.Hooks.Resolve,
				Workers:    cfg.workers(),
				Options:    opts,
			})
			if err != nil {
				return nil, fmt.Errorf("eval: portfolio: %s: %w", b.Name, err)
			}
			row.Shifts += r.Cost
			row.Wins[winIdx[r.Winner]]++
			res.Raced += len(r.Entries)
			for _, e := range r.Entries {
				if e.Abandoned {
					res.Abandoned++
				}
			}
		}
		for i, w := range row.Wins {
			res.Wins[i] += w
		}
		res.TotalShifts += row.Shifts
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// Render prints the study.
func (r *PortfolioStudyResult) Render() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Portfolio race — per-sequence winner over %d strategies (%d DBCs)\n", len(r.Strategies), r.DBCs)
	fmt.Fprintf(&sb, "%-14s %5s %12s", "benchmark", "seqs", "shifts")
	for _, id := range r.Strategies {
		fmt.Fprintf(&sb, " %9s", id)
	}
	sb.WriteString("\n")
	for _, row := range r.Rows {
		fmt.Fprintf(&sb, "%-14s %5d %12d", row.Benchmark, row.Sequences, row.Shifts)
		for _, w := range row.Wins {
			fmt.Fprintf(&sb, " %9d", w)
		}
		sb.WriteString("\n")
	}
	fmt.Fprintf(&sb, "%-14s %5s %12d", "total", "", r.TotalShifts)
	for _, w := range r.Wins {
		fmt.Fprintf(&sb, " %9d", w)
	}
	sb.WriteString("\n")
	if r.Raced > 0 {
		fmt.Fprintf(&sb, "bounded pricing pruned %d of %d strategy runs (%.0f%%)\n",
			r.Abandoned, r.Raced, 100*float64(r.Abandoned)/float64(r.Raced))
	}
	return sb.String()
}
