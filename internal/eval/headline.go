package eval

import (
	"context"
	"fmt"
	"strings"

	"repro/internal/placement"
	"repro/internal/trace"
)

// HeadlineResult carries the abstract's aggregate claims: averaged over
// all benchmarks and all DBC configurations, the proposed approach (best
// DMA variant, DMA-SR) improves shifts by 4.3x and reduces latency and
// energy by 46 % and 55 % versus the state of the art (AFD-OFU).
type HeadlineResult struct {
	// ShiftImprovement is the geomean over benchmarks x DBC counts of
	// AFD-OFU shifts / DMA-SR shifts.
	ShiftImprovement float64
	// LatencyReduction and EnergyReduction are mean fractional savings.
	LatencyReduction float64
	EnergyReduction  float64
}

// Headline computes the abstract-level aggregates.
func Headline(ctx context.Context, cfg Config) (*HeadlineResult, error) {
	suite, err := cfg.suite()
	if err != nil {
		return nil, err
	}
	// The abstract's aggregates need per-benchmark ratios, which the
	// simGrid granularity provides directly.
	strategies := []placement.StrategyID{placement.StrategyAFDOFU, placement.StrategyDMASR}
	grid, err := simGrid(ctx, cfg, suite, strategies)
	if err != nil {
		return nil, fmt.Errorf("eval: headline: %w", err)
	}

	var shiftRatios, latSavings, energySavings []float64
	for qi := range cfg.DBCCounts {
		for bi := range suite {
			afd := grid[(qi*len(suite)+bi)*len(strategies)]
			dma := grid[(qi*len(suite)+bi)*len(strategies)+1]
			shiftRatios = append(shiftRatios, ratio(float64(afd.Counts.Shifts), float64(dma.Counts.Shifts)))
			latSavings = append(latSavings, 1-ratio(dma.LatencyNS, afd.LatencyNS))
			energySavings = append(energySavings, 1-ratio(dma.Energy.TotalPJ(), afd.Energy.TotalPJ()))
		}
	}
	return &HeadlineResult{
		ShiftImprovement: Geomean(shiftRatios),
		LatencyReduction: Mean(latSavings),
		EnergyReduction:  Mean(energySavings),
	}, nil
}

// Render prints the headline aggregates next to the paper's claims.
func (r *HeadlineResult) Render() string {
	var sb strings.Builder
	sb.WriteString("Headline aggregates (all benchmarks x all DBC configs, DMA-SR vs AFD-OFU)\n")
	fmt.Fprintf(&sb, "  shift improvement: %5.2fx   (paper: 4.3x)\n", r.ShiftImprovement)
	fmt.Fprintf(&sb, "  latency reduction: %5.1f%%  (paper: 46%%)\n", 100*r.LatencyReduction)
	fmt.Fprintf(&sb, "  energy reduction:  %5.1f%%  (paper: 55%%)\n", 100*r.EnergyReduction)
	return sb.String()
}

// LongGAResult is the section IV-B optimality probe: the GA run much
// longer on the benchmark with the largest access sequence, compared to
// the best heuristic (paper: heuristic ~38 % worse than the long-GA best).
type LongGAResult struct {
	Benchmark     string
	SequenceLen   int
	BestHeuristic placement.StrategyID
	HeuristicCost int64
	GACost        int64
	// GapFraction is (heuristic - GA) / GA.
	GapFraction float64
}

// LongGA runs the probe. generations overrides the configured GA budget
// (the paper uses 2000); the DBC count is the first configured one.
func LongGA(ctx context.Context, cfg Config, generations int) (*LongGAResult, error) {
	suite, err := cfg.suite()
	if err != nil {
		return nil, err
	}
	// Largest access sequence in the suite.
	var bench *trace.Benchmark
	var seq *trace.Sequence
	for _, b := range suite {
		for _, s := range b.Sequences {
			if seq == nil || s.Len() > seq.Len() {
				bench, seq = b, s
			}
		}
	}
	if seq == nil {
		return nil, fmt.Errorf("eval: empty suite")
	}
	q, err := cfg.firstDBCs()
	if err != nil {
		return nil, err
	}
	opts := cfg.options()

	best := placement.StrategyID("")
	var bestCost int64 = -1
	for _, id := range placement.HeuristicStrategies() {
		_, c, err := cfg.place(ctx, id, seq, q, opts)
		if err != nil {
			return nil, err
		}
		if bestCost < 0 || c < bestCost {
			best, bestCost = id, c
		}
	}

	ga := cfg.GA
	ga.Generations = generations
	gaOpts := opts
	gaOpts.GA = ga
	_, gaCost, err := cfg.place(ctx, placement.StrategyGA, seq, q, gaOpts)
	if err != nil {
		return nil, err
	}
	return &LongGAResult{
		Benchmark:     bench.Name,
		SequenceLen:   seq.Len(),
		BestHeuristic: best,
		HeuristicCost: bestCost,
		GACost:        gaCost,
		GapFraction:   ratio(float64(bestCost-gaCost), float64(gaCost)),
	}, nil
}

// Render prints the probe result.
func (r *LongGAResult) Render() string {
	return fmt.Sprintf(
		"Long-GA probe on %s (largest sequence, %d accesses):\n  best heuristic %s = %d shifts, long GA = %d shifts, gap = %.1f%% (paper: ~38%%)\n",
		r.Benchmark, r.SequenceLen, r.BestHeuristic, r.HeuristicCost, r.GACost, 100*r.GapFraction)
}
