package eval

import (
	"context"
	"fmt"
	"io"
	"strings"

	"repro/internal/placement"
	"repro/internal/trace"
)

// ConvergenceResult records GA best-cost trajectories on one sequence,
// seeded with the heuristics (the paper's configuration) versus
// cold-started — the data behind the paper's section IV-B discussion of
// how far the heuristics sit from the search optimum.
type ConvergenceResult struct {
	Benchmark   string
	SequenceLen int
	// Seeded and Cold are best-cost-after-generation trajectories.
	Seeded []int64
	Cold   []int64
	// HeuristicCost is the best fast-heuristic result, the natural
	// horizontal reference line.
	HeuristicCost int64
}

// Convergence runs the two GA variants on the largest sequence of the
// named benchmark (or of the whole suite when name is empty).
func Convergence(ctx context.Context, cfg Config, name string) (*ConvergenceResult, error) {
	if name != "" {
		cfg.Benchmarks = []string{name}
	}
	suite, err := cfg.suite()
	if err != nil {
		return nil, err
	}
	var bench *trace.Benchmark
	var seq *trace.Sequence
	for _, b := range suite {
		for _, s := range b.Sequences {
			if seq == nil || s.Len() > seq.Len() {
				bench, seq = b, s
			}
		}
	}
	if seq == nil {
		return nil, fmt.Errorf("eval: empty suite")
	}
	q, err := cfg.firstDBCs()
	if err != nil {
		return nil, err
	}
	opts := cfg.options()

	res := &ConvergenceResult{Benchmark: bench.Name, SequenceLen: seq.Len()}
	res.HeuristicCost = int64(-1)
	var seeds []*placement.Placement
	for _, id := range placement.HeuristicStrategies() {
		p, c, err := cfg.place(ctx, id, seq, q, opts)
		if err != nil {
			return nil, err
		}
		seeds = append(seeds, p)
		if res.HeuristicCost < 0 || c < res.HeuristicCost {
			res.HeuristicCost = c
		}
	}

	if err := ctx.Err(); err != nil {
		return nil, err
	}
	seeded := cfg.GA
	seeded.Seeds = seeds
	r1, err := placement.GA(seq, q, seeded)
	if err != nil {
		return nil, err
	}
	res.Seeded = r1.History

	if err := ctx.Err(); err != nil {
		return nil, err
	}
	cold := cfg.GA
	cold.Seeds = nil
	r2, err := placement.GA(seq, q, cold)
	if err != nil {
		return nil, err
	}
	res.Cold = r2.History
	return res, nil
}

// Render prints the trajectories at a handful of checkpoints.
func (r *ConvergenceResult) Render() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "GA convergence on %s (largest sequence, %d accesses); best heuristic = %d shifts\n",
		r.Benchmark, r.SequenceLen, r.HeuristicCost)
	fmt.Fprintf(&sb, "%12s %10s %10s\n", "generation", "seeded", "cold")
	n := len(r.Seeded)
	if len(r.Cold) < n {
		n = len(r.Cold)
	}
	if n == 0 {
		return sb.String()
	}
	checkpoints := []int{0, n / 4, n / 2, 3 * n / 4, n - 1}
	last := -1
	for _, c := range checkpoints {
		if c == last {
			continue
		}
		last = c
		fmt.Fprintf(&sb, "%12d %10d %10d\n", c+1, r.Seeded[c], r.Cold[c])
	}
	return sb.String()
}

// WriteCSV emits generation,seeded,cold rows.
func (r *ConvergenceResult) WriteCSV(w io.Writer) error {
	if _, err := fmt.Fprintln(w, "generation,seeded_best,cold_best"); err != nil {
		return err
	}
	n := len(r.Seeded)
	if len(r.Cold) < n {
		n = len(r.Cold)
	}
	for i := 0; i < n; i++ {
		if _, err := fmt.Fprintf(w, "%d,%d,%d\n", i+1, r.Seeded[i], r.Cold[i]); err != nil {
			return err
		}
	}
	return nil
}
