// Package eval is the experiment harness: one driver per table and figure
// of the paper's evaluation (section IV). Each driver regenerates the
// corresponding rows/series — per-benchmark normalized shift costs
// (Fig. 4), the energy breakdown (Fig. 5), the DBC-count trade-off
// (Fig. 6), the latency improvements quoted in section IV-C, Table I, the
// abstract's headline aggregates, and the long-GA optimality probe.
//
// Absolute values differ from the paper (the workloads are synthetic, see
// DESIGN.md §3); the drivers exist to reproduce the paper's shape: which
// strategy wins, by roughly what factor, and where the trends cross.
package eval

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sort"

	"repro/internal/engine"
	"repro/internal/offsetstone"
	"repro/internal/placement"
	"repro/internal/sim"
	"repro/internal/trace"
)

// Config scales the experiments. The zero value is unusable; start from
// Quick() or Full().
type Config struct {
	// DBCCounts lists the RTM configurations (paper: 2, 4, 8, 16).
	DBCCounts []int
	// Benchmarks selects benchmark names; nil means the whole suite.
	Benchmarks []string
	// MaxSequences caps the number of sequences per benchmark (0 = all).
	// Quick runs cap this to bound GA time.
	MaxSequences int
	// MaxSequenceLen skips sequences longer than this (0 = no limit).
	MaxSequenceLen int
	// GA are the genetic-algorithm parameters.
	GA placement.GAConfig
	// RW are the random-walk parameters.
	RW placement.RWConfig
	// Capacity, when positive, enforces per-DBC capacity during
	// placement. The paper's evaluation leaves this off.
	Capacity int
	// Ports is the access-port count per track of the simulated devices
	// and of the cost model every strategy optimizes and is scored
	// under (0 or 1 = the paper's single-port evaluation). The port
	// layout derives from the Table I track length of each DBC count
	// (the iso-capacity device rule), so placement, evaluation and
	// simulation agree on one geometry. PortsSweep ignores this and
	// sweeps its own range.
	Ports int
	// Parallel sizes the engine worker pool shared by the experiment
	// drivers: up to this many (sequence × strategy × DBC-count) cells
	// run concurrently (0 or 1 = sequential). Results are deterministic
	// regardless of the worker count.
	Parallel int
	// Hooks customizes strategy resolution, kernel sourcing and progress
	// reporting for every cell the drivers dispatch. The zero value uses
	// the process-wide registry with per-batch kernels and no progress.
	// The public session API (racetrack.Lab) threads its instance
	// registry, kernel cache and progress callback through here.
	Hooks engine.Hooks
}

// Full returns the paper's published experiment scale: all benchmarks,
// all sequences, GA with µ = λ = 100 for 200 generations, RW with 60 000
// iterations. This is expensive (hours); use Quick for smoke runs.
func Full() Config {
	return Config{
		DBCCounts: []int{2, 4, 8, 16},
		GA:        placement.DefaultGAConfig(),
		RW:        placement.DefaultRWConfig(),
	}
}

// Quick returns a scaled-down configuration with the same structure: the
// three longest sequences per benchmark (benchmark totals in the paper
// are dominated by the large functions; keeping only small ones would
// distort the trends) and a small GA/RW budget. Trends remain visible;
// absolute ratios are noisier than Full. The caps were raised from
// 2/2500 to cover more of the large sequences that dominate the paper's
// totals; quick-sweep runtime stays bounded by the small GA/RW budgets
// (the six paper strategies replay traces per evaluation — only the
// 2-opt-polished extension strategies use the incremental DeltaEvaluator
// of placement/delta.go).
func Quick() Config {
	return Config{
		DBCCounts:      []int{2, 4, 8, 16},
		MaxSequences:   3,
		MaxSequenceLen: 3000,
		GA: placement.GAConfig{Mu: 24, Lambda: 24, Generations: 30,
			TournamentK: 4, MutationRate: 0.5,
			MoveWeight: 10, TransposeWeight: 10, PermuteWeight: 3, Seed: 1},
		RW: placement.RWConfig{Iterations: 720, Seed: 1},
	}
}

// suite materializes the configured benchmarks with the sequence caps
// applied.
func (c Config) suite() ([]*trace.Benchmark, error) {
	names := c.Benchmarks
	if names == nil {
		names = offsetstone.Names()
	}
	out := make([]*trace.Benchmark, 0, len(names))
	for _, n := range names {
		b, err := offsetstone.Generate(n)
		if err != nil {
			return nil, err
		}
		if c.MaxSequenceLen > 0 {
			kept := b.Sequences[:0]
			for _, s := range b.Sequences {
				if s.Len() <= c.MaxSequenceLen {
					kept = append(kept, s)
				}
			}
			b.Sequences = kept
		}
		if c.MaxSequences > 0 && len(b.Sequences) > c.MaxSequences {
			// Keep the longest sequences: benchmark-level costs are
			// dominated by the big functions, and trimming to the small
			// ones would misrepresent the suite.
			sort.SliceStable(b.Sequences, func(i, j int) bool {
				return b.Sequences[i].Len() > b.Sequences[j].Len()
			})
			b.Sequences = b.Sequences[:c.MaxSequences]
		}
		if len(b.Sequences) == 0 {
			continue // nothing small enough survived the caps
		}
		out = append(out, b)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("eval: no benchmarks left after filtering")
	}
	return out, nil
}

// ErrNoDBCCounts reports a Config whose DBCCounts list is empty — the
// drivers that evaluate at one DBC count (ports, headline, convergence,
// tensor, the Fig. 6 base row) have no configuration to run at.
var ErrNoDBCCounts = errors.New("eval: config has no DBC counts")

// firstDBCs returns the first configured DBC count, or a typed error
// when the list is empty or invalid (previously an index panic).
func (c Config) firstDBCs() (int, error) {
	if len(c.DBCCounts) == 0 {
		return 0, ErrNoDBCCounts
	}
	if q := c.DBCCounts[0]; q > 0 {
		return q, nil
	}
	return 0, fmt.Errorf("eval: invalid DBC count %d", c.DBCCounts[0])
}

// options builds placement options from the config. PortDomains stays
// unset: the strategies resolve the layout from the iso-capacity rule
// for their DBC count, which equals the Table I track length the
// device helper below simulates with.
func (c Config) options() placement.Options {
	return placement.Options{Capacity: c.Capacity, GA: c.GA, RW: c.RW, Ports: c.Ports}
}

// device returns the simulated Table I device for q DBCs with the
// configured port count applied to its geometry — the one place the
// sim-based drivers derive devices from, so the simulator replays
// exactly the geometry the placements were optimized against.
func (c Config) device(q int) (sim.Config, error) {
	dev, err := sim.TableIConfig(q)
	if err != nil {
		return sim.Config{}, err
	}
	if c.Ports > 1 {
		dev.Geometry.PortsPerTrack = c.Ports
		if err := dev.Geometry.Validate(); err != nil {
			return sim.Config{}, err
		}
	}
	return dev, nil
}

// workers is the engine worker-pool size implied by Parallel. Every
// driver fans its experiment cells out through internal/engine with this
// count; results are deterministic regardless (see DESIGN.md §4).
func (c Config) workers() int {
	if c.Parallel < 1 {
		return 1
	}
	return c.Parallel
}

// place runs one strategy on one sequence outside the batch layer (the
// probes that place a handful of cells inline), honoring the configured
// resolver hook and bailing out on a cancelled context.
func (c Config) place(ctx context.Context, id placement.StrategyID, s *trace.Sequence, q int, opts placement.Options) (*placement.Placement, int64, error) {
	if err := ctx.Err(); err != nil {
		return nil, 0, err
	}
	return c.Hooks.Place(id, s, q, opts)
}

// Geomean returns the geometric mean of strictly positive values; zero or
// negative entries are clamped to tiny to stay defined (they indicate a
// degenerate benchmark, not a meaningful ratio).
func Geomean(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	sum := 0.0
	for _, x := range xs {
		if x <= 0 {
			x = 1e-12
		}
		sum += math.Log(x)
	}
	return math.Exp(sum / float64(len(xs)))
}

// Mean returns the arithmetic mean.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// ratio returns a/b guarding against a zero denominator (degenerate
// benchmarks whose optimal cost is zero).
func ratio(a, b float64) float64 {
	if b == 0 {
		if a == 0 {
			return 1
		}
		b = 1
	}
	return a / b
}
