package eval

import (
	"context"
	"fmt"
	"strings"

	"repro/internal/energy"
	"repro/internal/placement"
	"repro/internal/sim"
)

// Fig6Row captures the DBC-count trade-off for the best-performing
// configuration (DMA-SR), as in the paper's Fig. 6:
//
//   - ShiftImprovement and LatencyImprovement are the factors by which
//     DMA-SR beats AFD-OFU at the same DBC count (these shrink as DBCs
//     grow — the paper's "diminishing improvement");
//   - EnergyImprovement is the total DMA-SR energy at 2 DBCs divided by
//     the total at this DBC count (peaks at 4-8 DBCs: 2 DBCs drown in
//     shift energy, 16 DBCs in leakage);
//   - AreaImprovement is area(2 DBCs)/area(n DBCs), monotonically falling
//     below 1 (ports cost area — the paper's "clear rising trend" in
//     area).
type Fig6Row struct {
	DBCs               int
	ShiftImprovement   float64
	LatencyImprovement float64
	EnergyImprovement  float64
	AreaImprovement    float64
	// Raw values for EXPERIMENTS.md.
	ShiftsDMASR   int64
	ShiftsAFD     int64
	LatencyNS     float64
	TotalEnergyPJ float64
	AreaMM2       float64
}

// Fig6Result is the Fig. 6 dataset.
type Fig6Result struct {
	Rows []Fig6Row
}

// Fig6 regenerates the DBC-count trade-off study for DMA-SR, one engine
// cell per (DBC count × strategy × sequence).
func Fig6(ctx context.Context, cfg Config) (*Fig6Result, error) {
	suite, err := cfg.suite()
	if err != nil {
		return nil, err
	}
	strategies := []placement.StrategyID{placement.StrategyDMASR, placement.StrategyAFDOFU}
	grid, err := simGrid(ctx, cfg, suite, strategies)
	if err != nil {
		return nil, fmt.Errorf("eval: fig6: %w", err)
	}

	type perQ struct {
		dmasr sim.Result
		afd   sim.Result
		area  float64
	}
	data := map[int]*perQ{}
	for qi, q := range cfg.DBCCounts {
		simCfg, err := cfg.device(q)
		if err != nil {
			return nil, err
		}
		data[q] = &perQ{
			area:  simCfg.Params.AreaMM2,
			dmasr: gridTotal(grid, len(suite), len(strategies), qi, 0),
			afd:   gridTotal(grid, len(suite), len(strategies), qi, 1),
		}
	}

	baseQ, err := cfg.firstDBCs()
	if err != nil {
		return nil, err
	}
	base := data[baseQ]
	res := &Fig6Result{}
	for _, q := range cfg.DBCCounts {
		d := data[q]
		res.Rows = append(res.Rows, Fig6Row{
			DBCs:               q,
			ShiftImprovement:   ratio(float64(d.afd.Counts.Shifts), float64(d.dmasr.Counts.Shifts)),
			LatencyImprovement: ratio(d.afd.LatencyNS, d.dmasr.LatencyNS),
			EnergyImprovement:  ratio(base.dmasr.Energy.TotalPJ(), d.dmasr.Energy.TotalPJ()),
			AreaImprovement:    ratio(base.area, d.area),
			ShiftsDMASR:        d.dmasr.Counts.Shifts,
			ShiftsAFD:          d.afd.Counts.Shifts,
			LatencyNS:          d.dmasr.LatencyNS,
			TotalEnergyPJ:      d.dmasr.Energy.TotalPJ(),
			AreaMM2:            d.area,
		})
	}
	return res, nil
}

// Render prints the Fig. 6 bars as text.
func (r *Fig6Result) Render() string {
	var sb strings.Builder
	sb.WriteString("Fig. 6 — DMA-SR trade-offs vs DBC count (improvements, normalized)\n")
	fmt.Fprintf(&sb, "%6s %10s %10s %10s %10s\n", "DBCs", "shifts", "latency", "energy", "area")
	for _, row := range r.Rows {
		fmt.Fprintf(&sb, "%6d %10.2f %10.2f %10.2f %10.2f\n",
			row.DBCs, row.ShiftImprovement, row.LatencyImprovement,
			row.EnergyImprovement, row.AreaImprovement)
	}
	return sb.String()
}

// Table1Render prints Table I in the paper's layout.
func Table1Render() string {
	var sb strings.Builder
	sb.WriteString("Table I — memory system parameters (4 KiB RTM, 32 nm, 32 tracks/DBC)\n")
	rows := energy.TableI()
	fmt.Fprintf(&sb, "%-28s", "Number of DBCs")
	for _, p := range rows {
		fmt.Fprintf(&sb, "%10d", p.DBCs)
	}
	sb.WriteByte('\n')
	line := func(label string, f func(energy.Params) float64, format string) {
		fmt.Fprintf(&sb, "%-28s", label)
		for _, p := range rows {
			fmt.Fprintf(&sb, format, f(p))
		}
		sb.WriteByte('\n')
	}
	fmt.Fprintf(&sb, "%-28s", "Domains in a DBC")
	for _, p := range rows {
		fmt.Fprintf(&sb, "%10d", p.DomainsPerDBC)
	}
	sb.WriteByte('\n')
	line("Leakage power [mW]", func(p energy.Params) float64 { return p.LeakagePowerMW }, "%10.2f")
	line("Write energy [pJ]", func(p energy.Params) float64 { return p.WriteEnergyPJ }, "%10.2f")
	line("Read energy [pJ]", func(p energy.Params) float64 { return p.ReadEnergyPJ }, "%10.2f")
	line("Shift energy [pJ]", func(p energy.Params) float64 { return p.ShiftEnergyPJ }, "%10.2f")
	line("Read latency [ns]", func(p energy.Params) float64 { return p.ReadLatencyNS }, "%10.2f")
	line("Write latency [ns]", func(p energy.Params) float64 { return p.WriteLatencyNS }, "%10.2f")
	line("Shift latency [ns]", func(p energy.Params) float64 { return p.ShiftLatencyNS }, "%10.2f")
	line("Area [mm2]", func(p energy.Params) float64 { return p.AreaMM2 }, "%10.4f")
	return sb.String()
}
