package eval

import (
	"bytes"
	"context"
	"math/rand"
	"reflect"
	"strings"
	"testing"
)

// paretoCloud builds a deterministic synthetic point cloud for the
// dominance property tests: coordinates drawn from a small grid so
// ties, strict dominance and incomparability all occur.
func paretoCloud(seed int64, n int) []ParetoPoint {
	rng := rand.New(rand.NewSource(seed))
	pts := make([]ParetoPoint, n)
	for i := range pts {
		pts[i] = ParetoPoint{
			DBCs:      2 << (i % 4),
			RuntimeNS: float64(rng.Intn(6)),
			EnergyPJ:  float64(rng.Intn(6)),
			AreaMM2:   float64(rng.Intn(4)),
		}
	}
	return pts
}

// TestDominatesProperties pins the order-theoretic properties of the
// dominance relation: irreflexivity, asymmetry, and transitivity.
func TestDominatesProperties(t *testing.T) {
	pts := paretoCloud(11, 40)
	for i, a := range pts {
		if Dominates(a, a) {
			t.Fatalf("point %d dominates itself: %+v", i, a)
		}
		for j, b := range pts {
			if Dominates(a, b) && Dominates(b, a) {
				t.Fatalf("mutual dominance between %d and %d: %+v / %+v", i, j, a, b)
			}
			for k, c := range pts {
				if Dominates(a, b) && Dominates(b, c) && !Dominates(a, c) {
					t.Fatalf("dominance not transitive over %d, %d, %d", i, j, k)
				}
			}
		}
	}
}

// TestMarkParetoFrontMinimality pins MarkPareto's contract: a point is
// flagged iff some input point dominates it, the returned front lists
// exactly the unflagged points, the front is minimal (no front point
// dominates another), and it is complete (every dominated point is
// dominated by some front point — the relation is a strict partial
// order on a finite set, so maximal elements cover it).
func TestMarkParetoFrontMinimality(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		pts := paretoCloud(seed, 25)
		front := MarkPareto(pts)
		inFront := make(map[int]bool, len(front))
		for _, i := range front {
			inFront[i] = true
		}
		for i := range pts {
			dominated := false
			for j := range pts {
				if i != j && Dominates(pts[j], pts[i]) {
					dominated = true
					break
				}
			}
			if pts[i].Dominated != dominated {
				t.Fatalf("seed %d point %d: Dominated=%v, brute force %v", seed, i, pts[i].Dominated, dominated)
			}
			if inFront[i] == dominated {
				t.Fatalf("seed %d point %d: front membership disagrees with flag", seed, i)
			}
			if !dominated {
				continue
			}
			// Completeness: some *front* point dominates it.
			covered := false
			for _, j := range front {
				if Dominates(pts[j], pts[i]) {
					covered = true
					break
				}
			}
			if !covered {
				t.Fatalf("seed %d point %d dominated but not covered by the front", seed, i)
			}
		}
		// Minimality: front points are mutually non-dominating.
		for _, i := range front {
			for _, j := range front {
				if i != j && Dominates(pts[i], pts[j]) {
					t.Fatalf("seed %d: front point %d dominates front point %d", seed, i, j)
				}
			}
		}
	}
}

// paretoTestConfig is a tiny sweep configuration that keeps the
// end-to-end test fast: one benchmark, short sequences, two Table I
// DBC counts.
func paretoTestConfig() Config {
	cfg := Quick()
	cfg.Benchmarks = []string{"adpcm"}
	cfg.MaxSequences = 2
	cfg.MaxSequenceLen = 400
	cfg.DBCCounts = []int{2, 4}
	return cfg
}

// TestParetoSweep runs the driver end to end and checks structure:
// deterministic across runs and worker counts, points in sweep order,
// dominance flags consistent, the area axis matching Table I, and the
// fault-rate axis only inflating runtime/energy (never shifts).
func TestParetoSweep(t *testing.T) {
	cfg := paretoTestConfig()
	ctx := context.Background()
	ports := []int{1, 2}
	rates := []float64{0, 0.1}
	res, err := Pareto(ctx, cfg, ports, rates)
	if err != nil {
		t.Fatal(err)
	}
	if want := len(cfg.DBCCounts) * len(ports) * len(rates); len(res.Points) != want {
		t.Fatalf("%d points, want %d", len(res.Points), want)
	}
	// Sweep order: (DBCs, Ports, FaultRate) in the configured order.
	i := 0
	for _, q := range cfg.DBCCounts {
		for _, p := range ports {
			var shifts int64 = -1
			for _, r := range rates {
				pt := res.Points[i]
				if pt.DBCs != q || pt.Ports != p || pt.FaultRate != r {
					t.Fatalf("point %d is (%d,%d,%g), want (%d,%d,%g)", i, pt.DBCs, pt.Ports, pt.FaultRate, q, p, r)
				}
				if pt.Shifts <= 0 || pt.Reads <= 0 || pt.Writes <= 0 {
					t.Fatalf("point %d has empty tally: %+v", i, pt)
				}
				// Fault rates reuse the geometry's placements: the
				// nominal tally must not move along the rate axis.
				if shifts == -1 {
					shifts = pt.Shifts
				} else if pt.Shifts != shifts {
					t.Fatalf("fault rate changed the shift count: %d vs %d", pt.Shifts, shifts)
				}
				i++
			}
		}
	}
	// Higher fault rate strictly inflates runtime and energy.
	for i := 0; i+1 < len(res.Points); i += 2 {
		clean, faulty := res.Points[i], res.Points[i+1]
		if faulty.RuntimeNS <= clean.RuntimeNS || faulty.EnergyPJ <= clean.EnergyPJ {
			t.Errorf("fault rate did not inflate point %d: %+v vs %+v", i, clean, faulty)
		}
		if faulty.AreaMM2 != clean.AreaMM2 {
			t.Errorf("fault rate moved the area: %+v vs %+v", clean, faulty)
		}
	}
	// Dominance flags match a brute-force recomputation.
	pts := append([]ParetoPoint(nil), res.Points...)
	if front := MarkPareto(pts); !reflect.DeepEqual(front, res.Front) || !reflect.DeepEqual(pts, res.Points) {
		t.Error("result's dominance flags disagree with MarkPareto")
	}
	if len(res.Front) == 0 {
		t.Fatal("empty Pareto front")
	}

	// Determinism: same config, parallel workers, identical dataset.
	cfg2 := cfg
	cfg2.Parallel = 4
	res2, err := Pareto(ctx, cfg2, ports, rates)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res.Points, res2.Points) {
		t.Error("sweep is not deterministic across worker counts")
	}

	// Render and CSV cover every point.
	if out := res.Render(); strings.Count(out, "\n") < len(res.Points)+2 {
		t.Errorf("render too short:\n%s", out)
	}
	var buf bytes.Buffer
	if err := res.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	if lines := strings.Count(buf.String(), "\n"); lines != len(res.Points)+1 {
		t.Errorf("CSV has %d lines for %d points", lines, len(res.Points))
	}
}

// TestParetoValidation pins the driver's input validation.
func TestParetoValidation(t *testing.T) {
	cfg := paretoTestConfig()
	ctx := context.Background()
	if _, err := Pareto(ctx, cfg, []int{0}, nil); err == nil {
		t.Error("port count 0 accepted")
	}
	if _, err := Pareto(ctx, cfg, nil, []float64{1}); err == nil {
		t.Error("fault rate 1 accepted")
	}
	if _, err := Pareto(ctx, cfg, nil, []float64{-0.5}); err == nil {
		t.Error("negative fault rate accepted")
	}
	bad := cfg
	bad.DBCCounts = nil
	if _, err := Pareto(ctx, bad, nil, nil); err != ErrNoDBCCounts {
		t.Errorf("empty DBC counts: %v", err)
	}
	bad = cfg
	bad.DBCCounts = []int{3}
	if _, err := Pareto(ctx, bad, nil, nil); err == nil {
		t.Error("non-Table-I DBC count accepted (pricing has no constants)")
	}
}

// BenchmarkPareto measures the dominance pass over a realistic point
// cloud — the post-placement cost of the sweep (placement itself is
// benchmarked by the strategy benchmarks).
func BenchmarkPareto(b *testing.B) {
	pts := paretoCloud(7, 512)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MarkPareto(pts)
	}
}
