package eval

import (
	"context"
	"fmt"
	"strings"

	"repro/internal/placement"
	"repro/internal/tensor"
)

// TensorRow is one contraction's shift costs under the baseline and the
// paper's best configuration.
type TensorRow struct {
	Shape    string
	Accesses int
	AFDOFU   int64
	DMASR    int64
	Improved float64
}

// TensorResult reproduces the flavour of the authors' LCTES'19 companion
// result: placement gains on tensor-contraction scratchpad traces.
type TensorResult struct {
	Rows []TensorRow
	DBCs int
}

// Tensor runs the bundled contraction suite at the first configured DBC
// count.
func Tensor(ctx context.Context, cfg Config) (*TensorResult, error) {
	q, err := cfg.firstDBCs()
	if err != nil {
		return nil, err
	}
	opts := cfg.options()
	res := &TensorResult{DBCs: q}
	for _, c := range tensor.Suite() {
		seq, err := c.Trace()
		if err != nil {
			return nil, err
		}
		_, afd, err := cfg.place(ctx, placement.StrategyAFDOFU, seq, q, opts)
		if err != nil {
			return nil, err
		}
		_, sr, err := cfg.place(ctx, placement.StrategyDMASR, seq, q, opts)
		if err != nil {
			return nil, err
		}
		res.Rows = append(res.Rows, TensorRow{
			Shape:    fmt.Sprintf("%dx%dx%d/%s", c.I, c.J, c.K, c.Order),
			Accesses: seq.Len(),
			AFDOFU:   afd,
			DMASR:    sr,
			Improved: ratio(float64(afd), float64(sr)),
		})
	}
	return res, nil
}

// Render prints the contraction table.
func (r *TensorResult) Render() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Tensor contractions on an RTM scratchpad (%d DBCs; LCTES'19 flavour)\n", r.DBCs)
	fmt.Fprintf(&sb, "%-14s %9s %10s %10s %12s\n", "shape/order", "accesses", "AFD-OFU", "DMA-SR", "improvement")
	for _, row := range r.Rows {
		fmt.Fprintf(&sb, "%-14s %9d %10d %10d %11.2fx\n",
			row.Shape, row.Accesses, row.AFDOFU, row.DMASR, row.Improved)
	}
	return sb.String()
}
