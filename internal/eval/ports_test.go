package eval

import (
	"context"
	"errors"
	"strings"
	"testing"
)

func TestPortsSweep(t *testing.T) {
	cfg := tinyConfig()
	res, err := PortsSweep(context.Background(), cfg, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("rows = %d, want 3", len(res.Rows))
	}
	// Shift totals must be non-increasing in the port count for both
	// strategies (more ports never hurt, property-tested in rtm).
	for i := 1; i < len(res.Rows); i++ {
		if res.Rows[i].AFDOFU > res.Rows[i-1].AFDOFU {
			t.Errorf("AFD shifts rose with ports: %v -> %v", res.Rows[i-1], res.Rows[i])
		}
		if res.Rows[i].DMASR > res.Rows[i-1].DMASR {
			t.Errorf("DMA shifts rose with ports: %v -> %v", res.Rows[i-1], res.Rows[i])
		}
	}
	// DMA-SR wins at one port (the paper's setting).
	if res.Rows[0].Improved <= 1 {
		t.Errorf("1-port improvement %.2f, want > 1", res.Rows[0].Improved)
	}
	// The device geometry is fixed across the sweep (the iso-capacity
	// track length for the DBC count), not derived per sequence.
	if res.Domains != 512 { // 2 DBCs -> 512 domains (Table I)
		t.Errorf("Domains = %d, want 512", res.Domains)
	}
	for _, row := range res.Rows {
		// Re-optimizing under the true objective can never lose to
		// replaying the single-port placement on the same device: the
		// heuristics are cost-model-free (equal), and DMA-2opt's
		// port polish starts from the single-port result.
		if row.AFDOFUReopt > row.AFDOFU {
			t.Errorf("ports %d: AFD-OFU reopt %d worse than replay %d", row.Ports, row.AFDOFUReopt, row.AFDOFU)
		}
		if row.DMASRReopt > row.DMASR {
			t.Errorf("ports %d: DMA-SR reopt %d worse than replay %d", row.Ports, row.DMASRReopt, row.DMASR)
		}
		if row.DMA2OptReopt > row.DMA2Opt {
			t.Errorf("ports %d: DMA-2opt reopt %d worse than replay %d", row.Ports, row.DMA2OptReopt, row.DMA2Opt)
		}
	}
	// At one port, re-optimization is the identical single-port path.
	if r0 := res.Rows[0]; r0.AFDOFU != r0.AFDOFUReopt || r0.DMASR != r0.DMASRReopt || r0.DMA2Opt != r0.DMA2OptReopt {
		t.Errorf("1-port reopt diverges from replay: %+v", r0)
	}
	if !strings.Contains(res.Render(), "Ports sweep") {
		t.Error("render missing header")
	}
	if _, err := PortsSweep(context.Background(), cfg, 0); err == nil {
		t.Error("maxPorts=0 accepted")
	}
}

// TestPortsSweepValidatesDBCCounts pins the typed error for an empty
// DBCCounts list (previously an index-out-of-range panic).
func TestPortsSweepValidatesDBCCounts(t *testing.T) {
	cfg := tinyConfig()
	cfg.DBCCounts = nil
	_, err := PortsSweep(context.Background(), cfg, 2)
	if !errors.Is(err, ErrNoDBCCounts) {
		t.Fatalf("err = %v, want ErrNoDBCCounts", err)
	}
	cfg.DBCCounts = []int{0}
	if _, err := PortsSweep(context.Background(), cfg, 2); err == nil {
		t.Fatal("non-positive DBC count accepted")
	}
}

func TestCSVExports(t *testing.T) {
	cfg := tinyConfig()

	f4, err := Fig4(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := f4.WriteCSV(&sb); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(sb.String()), "\n")
	// Header + 6 strategies x rows.
	if want := 1 + 6*len(f4.Rows); len(lines) != want {
		t.Errorf("fig4 csv has %d lines, want %d", len(lines), want)
	}
	if !strings.HasPrefix(lines[0], "benchmark,dbcs,strategy") {
		t.Errorf("fig4 csv header = %q", lines[0])
	}

	f5, err := Fig5(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	sb.Reset()
	if err := f5.WriteCSV(&sb); err != nil {
		t.Fatal(err)
	}
	if n := strings.Count(sb.String(), "\n"); n != len(f5.Cells)+1 {
		t.Errorf("fig5 csv rows = %d, want %d", n, len(f5.Cells)+1)
	}

	f6, err := Fig6(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	sb.Reset()
	if err := f6.WriteCSV(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "dbcs,shift_improvement") {
		t.Error("fig6 csv missing header")
	}

	ports, err := PortsSweep(context.Background(), cfg, 2)
	if err != nil {
		t.Fatal(err)
	}
	sb.Reset()
	if err := ports.WriteCSV(&sb); err != nil {
		t.Fatal(err)
	}
	if n := strings.Count(sb.String(), "\n"); n != 3 {
		t.Errorf("ports csv rows = %d, want 3", n)
	}
}
