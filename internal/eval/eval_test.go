package eval

import (
	"context"
	"math"
	"strings"
	"testing"

	"repro/internal/placement"
)

// tinyConfig is a minimal configuration for fast unit tests: a few small
// benchmarks, short sequences, tiny GA/RW budgets.
func tinyConfig() Config {
	c := Quick()
	c.Benchmarks = []string{"anagram", "dspstone", "fuzzy"}
	c.MaxSequences = 2
	c.MaxSequenceLen = 250
	c.GA = placement.GAConfig{Mu: 12, Lambda: 12, Generations: 10,
		TournamentK: 4, MutationRate: 0.5,
		MoveWeight: 10, TransposeWeight: 10, PermuteWeight: 3, Seed: 1}
	c.RW = placement.RWConfig{Iterations: 120, Seed: 1}
	c.DBCCounts = []int{2, 4}
	return c
}

func TestGeomeanAndMean(t *testing.T) {
	if g := Geomean([]float64{1, 4}); math.Abs(g-2) > 1e-9 {
		t.Errorf("geomean(1,4) = %v, want 2", g)
	}
	if g := Geomean([]float64{2, 2, 2}); math.Abs(g-2) > 1e-9 {
		t.Errorf("geomean(2,2,2) = %v", g)
	}
	if !math.IsNaN(Geomean(nil)) {
		t.Error("geomean(nil) should be NaN")
	}
	if m := Mean([]float64{1, 2, 3}); math.Abs(m-2) > 1e-9 {
		t.Errorf("mean = %v", m)
	}
	if !math.IsNaN(Mean(nil)) {
		t.Error("mean(nil) should be NaN")
	}
}

func TestRatioGuards(t *testing.T) {
	if r := ratio(0, 0); r != 1 {
		t.Errorf("ratio(0,0) = %v, want 1", r)
	}
	if r := ratio(5, 0); r != 5 {
		t.Errorf("ratio(5,0) = %v, want 5", r)
	}
	if r := ratio(6, 3); r != 2 {
		t.Errorf("ratio(6,3) = %v, want 2", r)
	}
}

func TestSuiteFiltering(t *testing.T) {
	c := tinyConfig()
	suite, err := c.suite()
	if err != nil {
		t.Fatal(err)
	}
	if len(suite) == 0 {
		t.Fatal("empty suite")
	}
	for _, b := range suite {
		if len(b.Sequences) > c.MaxSequences {
			t.Errorf("%s kept %d sequences, cap %d", b.Name, len(b.Sequences), c.MaxSequences)
		}
		for _, s := range b.Sequences {
			if s.Len() > c.MaxSequenceLen {
				t.Errorf("%s kept sequence of length %d, cap %d", b.Name, s.Len(), c.MaxSequenceLen)
			}
		}
	}
	bad := Config{Benchmarks: []string{"nope"}}
	if _, err := bad.suite(); err == nil {
		t.Error("unknown benchmark accepted")
	}
}

func TestFig4TinyRun(t *testing.T) {
	res, err := Fig4(context.Background(), tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3*2 {
		t.Fatalf("rows = %d, want 6 (3 benchmarks x 2 DBC counts)", len(res.Rows))
	}
	for _, row := range res.Rows {
		// GA normalizes to exactly 1 against itself.
		if math.Abs(row.Normalized[placement.StrategyGA]-1) > 1e-9 {
			t.Errorf("%s q=%d: GA normalized = %v", row.Benchmark, row.DBCs, row.Normalized[placement.StrategyGA])
		}
		for id, n := range row.Normalized {
			if n < 0 || math.IsNaN(n) {
				t.Errorf("%s q=%d %s: bad normalized %v", row.Benchmark, row.DBCs, id, n)
			}
		}
	}
	// The paper's central claim, at any scale: DMA beats AFD on average.
	for q, g := range res.AFDOverDMA {
		if g <= 1.0 {
			t.Errorf("q=%d: AFD-OFU/DMA-OFU geomean = %.3f, want > 1 (DMA must win)", q, g)
		}
	}
	// Render must mention every benchmark and strategy.
	text := res.Render()
	for _, want := range []string{"anagram", "dspstone", "fuzzy", "AFD-OFU", "geomean"} {
		if !strings.Contains(text, want) {
			t.Errorf("render missing %q", want)
		}
	}
}

func TestFig5TinyRun(t *testing.T) {
	res, err := Fig5(context.Background(), tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range []int{2, 4} {
		base, ok := res.Cell(placement.StrategyAFDOFU, q)
		if !ok {
			t.Fatalf("missing AFD-OFU cell for q=%d", q)
		}
		// AFD-OFU normalizes to 1.
		total := base.Leakage + base.ReadWrite + base.Shift
		if math.Abs(total-1) > 1e-9 {
			t.Errorf("q=%d: AFD-OFU normalized total = %v, want 1", q, total)
		}
		// DMA variants must save energy.
		for _, id := range []placement.StrategyID{placement.StrategyDMAOFU, placement.StrategyDMASR} {
			c, ok := res.Cell(id, q)
			if !ok {
				t.Fatalf("missing %s cell", id)
			}
			if got := c.Leakage + c.ReadWrite + c.Shift; got >= 1 {
				t.Errorf("q=%d %s: normalized energy %v, want < 1", q, id, got)
			}
			if res.EnergySavings[id][q] <= 0 {
				t.Errorf("q=%d %s: no energy saving", q, id)
			}
		}
	}
	if !strings.Contains(res.Render(), "Energy savings") {
		t.Error("render missing savings block")
	}
}

func TestLatencyTinyRun(t *testing.T) {
	res, err := Latency(context.Background(), tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range LatencyStrategies() {
		for q, imp := range res.Improvement[id] {
			if imp <= 0 || imp >= 1 {
				t.Errorf("%s q=%d: latency improvement %.3f outside (0,1)", id, q, imp)
			}
		}
	}
	if !strings.Contains(res.Render(), "latency improvement") {
		t.Error("render missing header")
	}
}

func TestFig6TinyRun(t *testing.T) {
	cfg := tinyConfig()
	cfg.DBCCounts = []int{2, 4, 8, 16}
	res, err := Fig6(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 4 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	// Area improvement must fall monotonically (ports cost area).
	for i := 1; i < len(res.Rows); i++ {
		if res.Rows[i].AreaImprovement >= res.Rows[i-1].AreaImprovement {
			t.Errorf("area improvement should fall: %v then %v",
				res.Rows[i-1].AreaImprovement, res.Rows[i].AreaImprovement)
		}
	}
	// Shift improvement at the smallest DBC count must exceed the largest
	// count's (the paper's diminishing-returns trend).
	first, last := res.Rows[0], res.Rows[len(res.Rows)-1]
	if first.ShiftImprovement <= last.ShiftImprovement {
		t.Errorf("shift improvement should diminish with DBC count: %v -> %v",
			first.ShiftImprovement, last.ShiftImprovement)
	}
	if !strings.Contains(res.Render(), "Fig. 6") {
		t.Error("render missing header")
	}
}

func TestTable1Render(t *testing.T) {
	text := Table1Render()
	for _, want := range []string{"Number of DBCs", "512", "3.39", "0.0279", "Shift latency"} {
		if !strings.Contains(text, want) {
			t.Errorf("Table I render missing %q", want)
		}
	}
}

func TestHeadlineTinyRun(t *testing.T) {
	res, err := Headline(context.Background(), tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	if res.ShiftImprovement <= 1 {
		t.Errorf("shift improvement %.2f, want > 1", res.ShiftImprovement)
	}
	if res.LatencyReduction <= 0 || res.EnergyReduction <= 0 {
		t.Errorf("savings should be positive: lat=%v energy=%v",
			res.LatencyReduction, res.EnergyReduction)
	}
	if !strings.Contains(res.Render(), "paper: 4.3x") {
		t.Error("render missing paper reference")
	}
}

func TestLongGATinyRun(t *testing.T) {
	cfg := tinyConfig()
	res, err := LongGA(context.Background(), cfg, 15)
	if err != nil {
		t.Fatal(err)
	}
	if res.GACost < 0 || res.HeuristicCost < 0 {
		t.Error("negative costs")
	}
	if res.SequenceLen == 0 {
		t.Error("did not pick a sequence")
	}
	if !strings.Contains(res.Render(), res.Benchmark) {
		t.Error("render missing benchmark name")
	}
}

func TestConvergence(t *testing.T) {
	cfg := tinyConfig()
	res, err := Convergence(context.Background(), cfg, "dspstone")
	if err != nil {
		t.Fatal(err)
	}
	if res.Benchmark != "dspstone" {
		t.Errorf("benchmark = %s", res.Benchmark)
	}
	if len(res.Seeded) != cfg.GA.Generations || len(res.Cold) != cfg.GA.Generations {
		t.Fatalf("trajectory lengths %d/%d, want %d", len(res.Seeded), len(res.Cold), cfg.GA.Generations)
	}
	// The seeded GA starts from the heuristics, so its best can never be
	// worse than the best heuristic at any generation.
	for i, c := range res.Seeded {
		if c > res.HeuristicCost {
			t.Fatalf("seeded GA above its own seed at generation %d: %d > %d", i, c, res.HeuristicCost)
		}
	}
	// Trajectories are monotone non-increasing.
	for i := 1; i < len(res.Cold); i++ {
		if res.Cold[i] > res.Cold[i-1] || res.Seeded[i] > res.Seeded[i-1] {
			t.Fatal("non-monotone trajectory")
		}
	}
	if !strings.Contains(res.Render(), "GA convergence") {
		t.Error("render missing header")
	}
	var sb strings.Builder
	if err := res.WriteCSV(&sb); err != nil {
		t.Fatal(err)
	}
	if n := strings.Count(sb.String(), "\n"); n != cfg.GA.Generations+1 {
		t.Errorf("csv rows = %d", n)
	}
	if _, err := Convergence(context.Background(), cfg, "nope"); err == nil {
		t.Error("unknown benchmark accepted")
	}
}

// Parallel evaluation must produce byte-identical results to sequential.
func TestFig4ParallelDeterministic(t *testing.T) {
	seq := tinyConfig()
	par := tinyConfig()
	par.Parallel = 4
	r1, err := Fig4(context.Background(), seq)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Fig4(context.Background(), par)
	if err != nil {
		t.Fatal(err)
	}
	if len(r1.Rows) != len(r2.Rows) {
		t.Fatalf("row counts differ: %d vs %d", len(r1.Rows), len(r2.Rows))
	}
	for i := range r1.Rows {
		a, b := r1.Rows[i], r2.Rows[i]
		if a.Benchmark != b.Benchmark || a.DBCs != b.DBCs {
			t.Fatalf("row %d order differs: %s/%d vs %s/%d", i, a.Benchmark, a.DBCs, b.Benchmark, b.DBCs)
		}
		for id, v := range a.Shifts {
			if b.Shifts[id] != v {
				t.Fatalf("row %d %s: %d vs %d", i, id, v, b.Shifts[id])
			}
		}
	}
	for q, g := range r1.Geomean {
		for id, v := range g {
			if r2.Geomean[q][id] != v {
				t.Fatalf("geomean %d/%s differs", q, id)
			}
		}
	}
}

func TestTensorExperiment(t *testing.T) {
	res, err := Tensor(context.Background(), tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) == 0 {
		t.Fatal("no rows")
	}
	wins := 0
	for _, row := range res.Rows {
		if row.AFDOFU < 0 || row.DMASR < 0 {
			t.Fatalf("negative costs: %+v", row)
		}
		if row.Improved >= 1 {
			wins++
		}
	}
	if wins*2 < len(res.Rows) {
		t.Errorf("DMA-SR won only %d/%d contractions", wins, len(res.Rows))
	}
	if !strings.Contains(res.Render(), "Tensor contractions") {
		t.Error("render missing header")
	}
}
