package eval

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/placement"
	"repro/internal/trace"
)

// Fig4Row is one benchmark's shift totals for every strategy at one DBC
// count, normalized to the GA result (GA == 1), exactly as plotted in the
// paper's Fig. 4.
type Fig4Row struct {
	Benchmark string
	DBCs      int
	// Shifts maps strategy -> total shifts across the benchmark's
	// sequences.
	Shifts map[placement.StrategyID]int64
	// Normalized maps strategy -> shifts / GA shifts.
	Normalized map[placement.StrategyID]float64
}

// Fig4Result is the full Fig. 4 dataset plus the geometric means the
// paper quotes in section IV-B.
type Fig4Result struct {
	Rows []Fig4Row
	// Geomean maps DBC count -> strategy -> geometric mean of the
	// normalized cost over all benchmarks.
	Geomean map[int]map[placement.StrategyID]float64
	// AFDOverDMA maps DBC count -> geomean of AFD-OFU/DMA-OFU shift
	// ratios (the paper reports 2.4x, 2.9x, 2.8x, 1.7x for 2/4/8/16).
	AFDOverDMA map[int]float64
	// DMAOverChen and DMAOverSR report the additional factor the intra
	// heuristics contribute on top of DMA-OFU (paper: 1.8x/1.6x/1.3x/1.4x
	// and 2.0x/1.8x/1.5x/1.6x).
	DMAOverChen map[int]float64
	DMAOverSR   map[int]float64
}

// Fig4 regenerates the Fig. 4 experiment: all six strategies on every
// benchmark for every configured DBC count.
func Fig4(cfg Config) (*Fig4Result, error) {
	suite, err := cfg.suite()
	if err != nil {
		return nil, err
	}
	opts := cfg.options()

	res := &Fig4Result{
		Geomean:     map[int]map[placement.StrategyID]float64{},
		AFDOverDMA:  map[int]float64{},
		DMAOverChen: map[int]float64{},
		DMAOverSR:   map[int]float64{},
	}
	for _, q := range cfg.DBCCounts {
		type acc struct{ norm []float64 }
		perStrategy := map[placement.StrategyID]*acc{}
		for _, id := range placement.AllStrategies() {
			perStrategy[id] = &acc{}
		}
		var afdOverDMA, dmaOverChen, dmaOverSR []float64

		// Benchmarks are independent; compute their rows in parallel and
		// aggregate in suite order.
		rows := make([]Fig4Row, len(suite))
		q := q
		err := cfg.forEach(len(suite), func(i int) error {
			b := suite[i]
			row := Fig4Row{
				Benchmark:  b.Name,
				DBCs:       q,
				Shifts:     map[placement.StrategyID]int64{},
				Normalized: map[placement.StrategyID]float64{},
			}
			for _, id := range placement.AllStrategies() {
				total, err := benchmarkShifts(id, b, q, opts)
				if err != nil {
					return fmt.Errorf("eval: fig4 %s/%s q=%d: %w", b.Name, id, q, err)
				}
				row.Shifts[id] = total
			}
			ga := row.Shifts[placement.StrategyGA]
			for _, id := range placement.AllStrategies() {
				row.Normalized[id] = ratio(float64(row.Shifts[id]), float64(ga))
			}
			rows[i] = row
			return nil
		})
		if err != nil {
			return nil, err
		}
		for _, row := range rows {
			for _, id := range placement.AllStrategies() {
				perStrategy[id].norm = append(perStrategy[id].norm, row.Normalized[id])
			}
			afdOverDMA = append(afdOverDMA,
				ratio(float64(row.Shifts[placement.StrategyAFDOFU]), float64(row.Shifts[placement.StrategyDMAOFU])))
			dmaOverChen = append(dmaOverChen,
				ratio(float64(row.Shifts[placement.StrategyDMAOFU]), float64(row.Shifts[placement.StrategyDMAChen])))
			dmaOverSR = append(dmaOverSR,
				ratio(float64(row.Shifts[placement.StrategyDMAOFU]), float64(row.Shifts[placement.StrategyDMASR])))
			res.Rows = append(res.Rows, row)
		}

		res.Geomean[q] = map[placement.StrategyID]float64{}
		for id, a := range perStrategy {
			res.Geomean[q][id] = Geomean(a.norm)
		}
		res.AFDOverDMA[q] = Geomean(afdOverDMA)
		res.DMAOverChen[q] = Geomean(dmaOverChen)
		res.DMAOverSR[q] = Geomean(dmaOverSR)
	}
	return res, nil
}

// benchmarkShifts totals the shift cost of one strategy over a benchmark's
// sequences (each sequence is an independent placement problem).
func benchmarkShifts(id placement.StrategyID, b *trace.Benchmark, q int, opts placement.Options) (int64, error) {
	var total int64
	for _, s := range b.Sequences {
		_, c, err := placement.Place(id, s, q, opts)
		if err != nil {
			return 0, err
		}
		total += c
	}
	return total, nil
}

// Render prints the Fig. 4 dataset as an aligned text table, one block per
// DBC count, mirroring the paper's per-benchmark bars plus the geomean
// row.
func (r *Fig4Result) Render() string {
	var sb strings.Builder
	order := placement.AllStrategies()
	dbcs := sortedKeys(r.Geomean)
	for _, q := range dbcs {
		fmt.Fprintf(&sb, "Fig. 4 — shift cost normalized to GA, %d DBCs\n", q)
		fmt.Fprintf(&sb, "%-10s", "benchmark")
		for _, id := range order {
			fmt.Fprintf(&sb, " %10s", id)
		}
		sb.WriteByte('\n')
		for _, row := range r.Rows {
			if row.DBCs != q {
				continue
			}
			fmt.Fprintf(&sb, "%-10s", row.Benchmark)
			for _, id := range order {
				fmt.Fprintf(&sb, " %10.2f", row.Normalized[id])
			}
			sb.WriteByte('\n')
		}
		fmt.Fprintf(&sb, "%-10s", "geomean")
		for _, id := range order {
			fmt.Fprintf(&sb, " %10.2f", r.Geomean[q][id])
		}
		fmt.Fprintf(&sb, "\n  AFD-OFU/DMA-OFU = %.2fx   DMA-OFU/DMA-Chen = %.2fx   DMA-OFU/DMA-SR = %.2fx\n\n",
			r.AFDOverDMA[q], r.DMAOverChen[q], r.DMAOverSR[q])
	}
	return sb.String()
}

func sortedKeys[V any](m map[int]V) []int {
	out := make([]int, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Ints(out)
	return out
}
