package eval

import (
	"context"
	"fmt"
	"sort"
	"strings"

	"repro/internal/engine"
	"repro/internal/placement"
)

// Fig4Row is one benchmark's shift totals for every strategy at one DBC
// count, normalized to the GA result (GA == 1), exactly as plotted in the
// paper's Fig. 4.
type Fig4Row struct {
	Benchmark string
	DBCs      int
	// Shifts maps strategy -> total shifts across the benchmark's
	// sequences.
	Shifts map[placement.StrategyID]int64
	// Normalized maps strategy -> shifts / GA shifts.
	Normalized map[placement.StrategyID]float64
}

// Fig4Result is the full Fig. 4 dataset plus the geometric means the
// paper quotes in section IV-B.
type Fig4Result struct {
	Rows []Fig4Row
	// Geomean maps DBC count -> strategy -> geometric mean of the
	// normalized cost over all benchmarks.
	Geomean map[int]map[placement.StrategyID]float64
	// AFDOverDMA maps DBC count -> geomean of AFD-OFU/DMA-OFU shift
	// ratios (the paper reports 2.4x, 2.9x, 2.8x, 1.7x for 2/4/8/16).
	AFDOverDMA map[int]float64
	// DMAOverChen and DMAOverSR report the additional factor the intra
	// heuristics contribute on top of DMA-OFU (paper: 1.8x/1.6x/1.3x/1.4x
	// and 2.0x/1.8x/1.5x/1.6x).
	DMAOverChen map[int]float64
	DMAOverSR   map[int]float64
}

// Fig4 regenerates the Fig. 4 experiment: all six strategies on every
// benchmark for every configured DBC count. The context cancels the
// remaining cells.
func Fig4(ctx context.Context, cfg Config) (*Fig4Result, error) {
	suite, err := cfg.suite()
	if err != nil {
		return nil, err
	}
	opts := cfg.options()

	// One placement job per (DBC count × benchmark × strategy × sequence)
	// cell, submitted to the shared engine as a single batch; the cell
	// index array maps outcomes back to their aggregation row.
	type cellKey struct {
		qi, bi int
		id     placement.StrategyID
	}
	var jobs []engine.PlaceJob
	var cells []cellKey
	for qi, q := range cfg.DBCCounts {
		for bi, b := range suite {
			for _, id := range placement.AllStrategies() {
				for _, s := range b.Sequences {
					jobs = append(jobs, engine.PlaceJob{Sequence: s, Strategy: id, DBCs: q, Options: opts})
					cells = append(cells, cellKey{qi: qi, bi: bi, id: id})
				}
			}
		}
	}
	out, err := engine.BatchPlaceWith(ctx, jobs, cfg.workers(), cfg.Hooks)
	if err != nil {
		return nil, fmt.Errorf("eval: fig4: %w", err)
	}

	// Aggregate sequence cells into per-benchmark rows in input order.
	rows := make([]map[placement.StrategyID]int64, len(cfg.DBCCounts)*len(suite))
	for i := range rows {
		rows[i] = map[placement.StrategyID]int64{}
	}
	for i, o := range out {
		c := cells[i]
		rows[c.qi*len(suite)+c.bi][c.id] += o.Shifts
	}

	res := &Fig4Result{
		Geomean:     map[int]map[placement.StrategyID]float64{},
		AFDOverDMA:  map[int]float64{},
		DMAOverChen: map[int]float64{},
		DMAOverSR:   map[int]float64{},
	}
	for qi, q := range cfg.DBCCounts {
		perStrategy := map[placement.StrategyID][]float64{}
		var afdOverDMA, dmaOverChen, dmaOverSR []float64
		for bi, b := range suite {
			shifts := rows[qi*len(suite)+bi]
			row := Fig4Row{
				Benchmark:  b.Name,
				DBCs:       q,
				Shifts:     shifts,
				Normalized: map[placement.StrategyID]float64{},
			}
			ga := shifts[placement.StrategyGA]
			for _, id := range placement.AllStrategies() {
				row.Normalized[id] = ratio(float64(shifts[id]), float64(ga))
				perStrategy[id] = append(perStrategy[id], row.Normalized[id])
			}
			afdOverDMA = append(afdOverDMA,
				ratio(float64(shifts[placement.StrategyAFDOFU]), float64(shifts[placement.StrategyDMAOFU])))
			dmaOverChen = append(dmaOverChen,
				ratio(float64(shifts[placement.StrategyDMAOFU]), float64(shifts[placement.StrategyDMAChen])))
			dmaOverSR = append(dmaOverSR,
				ratio(float64(shifts[placement.StrategyDMAOFU]), float64(shifts[placement.StrategyDMASR])))
			res.Rows = append(res.Rows, row)
		}
		res.Geomean[q] = map[placement.StrategyID]float64{}
		for id, norm := range perStrategy {
			res.Geomean[q][id] = Geomean(norm)
		}
		res.AFDOverDMA[q] = Geomean(afdOverDMA)
		res.DMAOverChen[q] = Geomean(dmaOverChen)
		res.DMAOverSR[q] = Geomean(dmaOverSR)
	}
	return res, nil
}

// Render prints the Fig. 4 dataset as an aligned text table, one block per
// DBC count, mirroring the paper's per-benchmark bars plus the geomean
// row.
func (r *Fig4Result) Render() string {
	var sb strings.Builder
	order := placement.AllStrategies()
	dbcs := sortedKeys(r.Geomean)
	for _, q := range dbcs {
		fmt.Fprintf(&sb, "Fig. 4 — shift cost normalized to GA, %d DBCs\n", q)
		fmt.Fprintf(&sb, "%-10s", "benchmark")
		for _, id := range order {
			fmt.Fprintf(&sb, " %10s", id)
		}
		sb.WriteByte('\n')
		for _, row := range r.Rows {
			if row.DBCs != q {
				continue
			}
			fmt.Fprintf(&sb, "%-10s", row.Benchmark)
			for _, id := range order {
				fmt.Fprintf(&sb, " %10.2f", row.Normalized[id])
			}
			sb.WriteByte('\n')
		}
		fmt.Fprintf(&sb, "%-10s", "geomean")
		for _, id := range order {
			fmt.Fprintf(&sb, " %10.2f", r.Geomean[q][id])
		}
		fmt.Fprintf(&sb, "\n  AFD-OFU/DMA-OFU = %.2fx   DMA-OFU/DMA-Chen = %.2fx   DMA-OFU/DMA-SR = %.2fx\n\n",
			r.AFDOverDMA[q], r.DMAOverChen[q], r.DMAOverSR[q])
	}
	return sb.String()
}

func sortedKeys[V any](m map[int]V) []int {
	out := make([]int, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Ints(out)
	return out
}
