package eval

import (
	"context"
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
	"strings"

	"repro/internal/energy"
	"repro/internal/engine"
	"repro/internal/placement"
	"repro/internal/rtm"
)

// Pareto configuration sweep (extension study, DESIGN.md §15): the
// paper fixes one device per experiment, but an architect choosing a
// racetrack configuration trades runtime against energy against area
// across the whole Table I design space. This driver sweeps DBC counts
// × access-port counts × fault rates, re-optimizes the suite's
// placements at every (DBCs, ports) geometry, prices each point with
// the fault-aware CostModel, and reports the Pareto front over
// (runtime, energy, area) with dominated points flagged.
//
// Fault rates share placements within a geometry by construction, not
// by shortcut: the faulty objective is strictly monotone in the shift
// count (costmodel.go), so re-optimizing at every fault rate provably
// returns the same placements — the sweep prices the rate axis instead
// of re-searching it, and the result is bit-identical to per-point
// re-optimization.

// A ParetoPoint is one swept configuration with its suite totals.
type ParetoPoint struct {
	// DBCs, Ports and FaultRate identify the configuration.
	DBCs      int
	Ports     int
	FaultRate float64
	// Shifts, Reads, Writes are the suite's nominal event totals under
	// the placements optimized for this geometry.
	Shifts int64
	Reads  int64
	Writes int64
	// RuntimeNS and EnergyPJ price the totals (fault overhead included);
	// AreaMM2 is the Table I array area. These are the three minimized
	// dimensions.
	RuntimeNS float64
	EnergyPJ  float64
	AreaMM2   float64
	// Dominated is true when some other swept point is no worse in all
	// three dimensions and strictly better in one.
	Dominated bool
}

// ParetoResult is the configuration-sweep dataset. Points are ordered
// by (DBCs, Ports, FaultRate) — the deterministic sweep order.
type ParetoResult struct {
	Points []ParetoPoint
	// Front indexes the non-dominated points, in sweep order.
	Front []int
	// Strategy is the placement strategy every point re-optimized with.
	Strategy placement.StrategyID
}

// Dominates reports whether a dominates b in the minimization sense of
// the sweep's three dimensions: a is no worse in runtime, energy and
// area, and strictly better in at least one. It is irreflexive and
// asymmetric (TestDominatesProperties).
func Dominates(a, b ParetoPoint) bool {
	if a.RuntimeNS > b.RuntimeNS || a.EnergyPJ > b.EnergyPJ || a.AreaMM2 > b.AreaMM2 {
		return false
	}
	return a.RuntimeNS < b.RuntimeNS || a.EnergyPJ < b.EnergyPJ || a.AreaMM2 < b.AreaMM2
}

// MarkPareto flags every dominated point in place and returns the
// indices of the front, in input order. The front is minimal and
// complete: a point is flagged iff some input point dominates it, so no
// front point dominates another front point.
func MarkPareto(points []ParetoPoint) []int {
	front := make([]int, 0, len(points))
	for i := range points {
		points[i].Dominated = false
		for j := range points {
			if i != j && Dominates(points[j], points[i]) {
				points[i].Dominated = true
				break
			}
		}
		if !points[i].Dominated {
			front = append(front, i)
		}
	}
	return front
}

// paretoStrategy is the sweep's re-optimization strategy: DMA-2opt is
// the strongest objective-aware strategy that stays affordable across
// a full configuration grid (the GA would multiply the sweep cost by
// its generation budget).
const paretoStrategy = placement.StrategyDMATwoOpt

// Pareto sweeps cfg.DBCCounts × ports × faultRates, re-optimizing the
// suite per geometry with DMA-2opt and pricing every point under the
// fault-aware cost model. ports defaults to {1, 2} and faultRates to
// {0, 0.01} when empty; DBC counts must have Table I rows (the pricing
// needs the published constants). The result is deterministic for a
// fixed config regardless of Parallel.
func Pareto(ctx context.Context, cfg Config, ports []int, faultRates []float64) (*ParetoResult, error) {
	if len(ports) == 0 {
		ports = []int{1, 2}
	}
	if len(faultRates) == 0 {
		faultRates = []float64{0, 0.01}
	}
	for _, p := range ports {
		if p < 1 {
			return nil, fmt.Errorf("eval: pareto: port count must be >= 1, got %d", p)
		}
	}
	for _, r := range faultRates {
		if _, err := rtm.ExpectedShiftOverhead(r); err != nil {
			return nil, fmt.Errorf("eval: pareto: %w", err)
		}
	}
	if len(cfg.DBCCounts) == 0 {
		return nil, ErrNoDBCCounts
	}
	suite, err := cfg.suite()
	if err != nil {
		return nil, err
	}
	res := &ParetoResult{Strategy: paretoStrategy}
	for _, q := range cfg.DBCCounts {
		params, err := energy.ForDBCs(q)
		if err != nil {
			return nil, fmt.Errorf("eval: pareto: %w", err)
		}
		geo, err := rtm.IsoCapacityGeometry(q, 1)
		if err != nil {
			return nil, fmt.Errorf("eval: pareto: %w", err)
		}
		words := geo.WordsPerDBC()
		for _, p := range ports {
			if p > words {
				return nil, fmt.Errorf("eval: pareto: %d ports exceed the %d domains of the %d-DBC device", p, words, q)
			}
			// Re-optimize the suite at this geometry: the strategy
			// searches under the exact multi-port objective when p > 1.
			opts := cfg.options()
			opts.Ports = p
			if p > 1 {
				opts.PortDomains = words
			}
			var jobs []engine.PlaceJob
			for _, b := range suite {
				for _, s := range b.Sequences {
					jobs = append(jobs, engine.PlaceJob{Sequence: s, Strategy: paretoStrategy, DBCs: q, Options: opts})
				}
			}
			placed, err := engine.BatchPlaceWith(ctx, jobs, cfg.workers(), cfg.Hooks)
			if err != nil {
				return nil, fmt.Errorf("eval: pareto %d DBCs %d ports: %w", q, p, err)
			}
			var tally placement.Tally
			i := 0
			for _, b := range suite {
				for _, s := range b.Sequences {
					tally.Add(placement.TallyOf(s, placed[i].Shifts))
					i++
				}
			}
			// Price the fault-rate axis: same placements, same tally —
			// only the correction overhead moves (see the package
			// comment for why this equals per-rate re-optimization).
			for _, rate := range faultRates {
				m, err := placement.NewCostModel(placement.ObjectiveFaulty, params, rate)
				if err != nil {
					return nil, fmt.Errorf("eval: pareto: %w", err)
				}
				c := m.Price(tally)
				res.Points = append(res.Points, ParetoPoint{
					DBCs: q, Ports: p, FaultRate: rate,
					Shifts: c.Shifts, Reads: c.Reads, Writes: c.Writes,
					RuntimeNS: c.RuntimeNS,
					EnergyPJ:  c.TotalEnergyPJ(),
					AreaMM2:   params.AreaMM2,
				})
			}
		}
	}
	res.Front = MarkPareto(res.Points)
	return res, nil
}

// Render prints the sweep with the front marked.
func (r *ParetoResult) Render() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Pareto configuration sweep — %s re-optimized per geometry; minimizing (runtime, energy, area)\n", r.Strategy)
	fmt.Fprintf(&sb, "%6s %6s %8s %14s %16s %16s %10s %7s\n",
		"dbcs", "ports", "fault", "shifts", "runtime_ns", "energy_pj", "area_mm2", "front")
	for _, p := range r.Points {
		mark := "*"
		if p.Dominated {
			mark = ""
		}
		fmt.Fprintf(&sb, "%6d %6d %8.3g %14d %16.1f %16.1f %10.4f %7s\n",
			p.DBCs, p.Ports, p.FaultRate, p.Shifts, p.RuntimeNS, p.EnergyPJ, p.AreaMM2, mark)
	}
	fmt.Fprintf(&sb, "front: %d of %d points non-dominated\n", len(r.Front), len(r.Points))
	return sb.String()
}

// WriteCSV exports the sweep for plotting.
func (r *ParetoResult) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"dbcs", "ports", "fault_rate", "shifts", "reads", "writes",
		"runtime_ns", "energy_pj", "area_mm2", "dominated"}); err != nil {
		return err
	}
	for _, p := range r.Points {
		rec := []string{
			strconv.Itoa(p.DBCs),
			strconv.Itoa(p.Ports),
			strconv.FormatFloat(p.FaultRate, 'g', -1, 64),
			strconv.FormatInt(p.Shifts, 10),
			strconv.FormatInt(p.Reads, 10),
			strconv.FormatInt(p.Writes, 10),
			formatFloat(p.RuntimeNS),
			formatFloat(p.EnergyPJ),
			formatFloat(p.AreaMM2),
			strconv.FormatBool(p.Dominated),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
