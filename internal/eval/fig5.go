package eval

import (
	"context"
	"fmt"
	"strings"

	"repro/internal/engine"
	"repro/internal/placement"
	"repro/internal/sim"
	"repro/internal/trace"
)

// simGrid fans one simulation cell per (DBC count × benchmark × strategy
// × sequence) out through the engine and returns the totals accumulated
// per (DBC-count, benchmark, strategy) — indexed
// (qi*len(suite)+bi)*len(strategies)+si — in deterministic input order.
// It is the shared core of the Fig. 5, Fig. 6, latency and headline
// drivers; per-sequence results fold into per-benchmark subtotals in
// sequence order, matching the aggregation of the pre-engine drivers
// bit-for-bit.
func simGrid(ctx context.Context, cfg Config, suite []*trace.Benchmark, strategies []placement.StrategyID) ([]sim.Result, error) {
	opts := cfg.options()
	type cellKey struct{ qi, bi, si int }
	var jobs []engine.SimJob
	var cells []cellKey
	for qi, q := range cfg.DBCCounts {
		simCfg, err := cfg.device(q)
		if err != nil {
			return nil, err
		}
		for bi, b := range suite {
			for si := range strategies {
				for _, s := range b.Sequences {
					jobs = append(jobs, engine.SimJob{Config: simCfg, Sequence: s, Strategy: strategies[si], Options: opts})
					cells = append(cells, cellKey{qi: qi, bi: bi, si: si})
				}
			}
		}
	}
	out, err := engine.BatchSimulateWith(ctx, jobs, cfg.workers(), cfg.Hooks)
	if err != nil {
		return nil, err
	}
	totals := make([]sim.Result, len(cfg.DBCCounts)*len(suite)*len(strategies))
	for i, r := range out {
		c := cells[i]
		totals[(c.qi*len(suite)+c.bi)*len(strategies)+c.si].Add(r)
	}
	return totals, nil
}

// gridTotal sums one strategy's per-benchmark grid entries for one DBC
// count in suite order (the same benchmark-subtotal-then-suite order the
// pre-engine drivers used, preserving float bit-identity).
func gridTotal(grid []sim.Result, nb, ns, qi, si int) sim.Result {
	var agg sim.Result
	for bi := 0; bi < nb; bi++ {
		agg.Add(grid[(qi*nb+bi)*ns+si])
	}
	return agg
}

// EnergyStrategies are the three strategies the paper's Fig. 5 compares.
func EnergyStrategies() []placement.StrategyID {
	return []placement.StrategyID{
		placement.StrategyAFDOFU,
		placement.StrategyDMAOFU,
		placement.StrategyDMASR,
	}
}

// Fig5Cell is the energy breakdown of one strategy at one DBC count,
// summed over the whole suite and normalized to the AFD-OFU total at the
// same DBC count (AFD-OFU == 1.0), as plotted in Fig. 5.
type Fig5Cell struct {
	Strategy placement.StrategyID
	DBCs     int
	// Leakage, ReadWrite, Shift are the normalized components; their sum
	// is the normalized total energy.
	Leakage, ReadWrite, Shift float64
	// TotalPJ is the absolute total for reference.
	TotalPJ float64
	// LatencyNS is the absolute runtime (used by the section IV-C
	// latency numbers, which share this experiment's raw data).
	LatencyNS float64
	// Shifts is the absolute shift count.
	Shifts int64
}

// Fig5Result is the Fig. 5 dataset plus the savings the paper quotes:
// energy reduction of DMA-OFU and DMA-SR relative to AFD-OFU per DBC count
// (paper: 61/62/44/13 % and 77/70/50/21 %).
type Fig5Result struct {
	Cells []Fig5Cell
	// EnergySavings maps strategy -> DBC count -> fractional energy
	// saving vs AFD-OFU (0.61 means 61 % less energy).
	EnergySavings map[placement.StrategyID]map[int]float64
}

// Fig5 regenerates the energy-breakdown experiment by simulating the suite
// under each strategy and Table I configuration, one engine cell per
// sequence.
func Fig5(ctx context.Context, cfg Config) (*Fig5Result, error) {
	suite, err := cfg.suite()
	if err != nil {
		return nil, err
	}
	strategies := EnergyStrategies()
	grid, err := simGrid(ctx, cfg, suite, strategies)
	if err != nil {
		return nil, fmt.Errorf("eval: fig5: %w", err)
	}

	res := &Fig5Result{EnergySavings: map[placement.StrategyID]map[int]float64{}}
	for qi, q := range cfg.DBCCounts {
		totals := map[placement.StrategyID]sim.Result{}
		for si, id := range strategies {
			totals[id] = gridTotal(grid, len(suite), len(strategies), qi, si)
		}
		base := totals[placement.StrategyAFDOFU].Energy.TotalPJ()
		for _, id := range strategies {
			t := totals[id]
			res.Cells = append(res.Cells, Fig5Cell{
				Strategy:  id,
				DBCs:      q,
				Leakage:   ratio(t.Energy.LeakagePJ, base),
				ReadWrite: ratio(t.Energy.ReadWritePJ, base),
				Shift:     ratio(t.Energy.ShiftPJ, base),
				TotalPJ:   t.Energy.TotalPJ(),
				LatencyNS: t.LatencyNS,
				Shifts:    t.Counts.Shifts,
			})
			if id != placement.StrategyAFDOFU {
				if res.EnergySavings[id] == nil {
					res.EnergySavings[id] = map[int]float64{}
				}
				res.EnergySavings[id][q] = 1 - ratio(t.Energy.TotalPJ(), base)
			}
		}
	}
	return res, nil
}

// Cell returns the cell for a strategy and DBC count.
func (r *Fig5Result) Cell(id placement.StrategyID, dbcs int) (Fig5Cell, bool) {
	for _, c := range r.Cells {
		if c.Strategy == id && c.DBCs == dbcs {
			return c, true
		}
	}
	return Fig5Cell{}, false
}

// Render prints the Fig. 5 stacked-bar data as text.
func (r *Fig5Result) Render() string {
	var sb strings.Builder
	sb.WriteString("Fig. 5 — energy breakdown normalized to AFD-OFU per DBC count\n")
	fmt.Fprintf(&sb, "%6s %-8s %9s %9s %9s %9s\n", "DBCs", "strategy", "leakage", "rd/wr", "shift", "total")
	for _, c := range r.Cells {
		fmt.Fprintf(&sb, "%6d %-8s %9.3f %9.3f %9.3f %9.3f\n",
			c.DBCs, c.Strategy, c.Leakage, c.ReadWrite, c.Shift,
			c.Leakage+c.ReadWrite+c.Shift)
	}
	sb.WriteString("\nEnergy savings vs AFD-OFU:\n")
	for _, id := range []placement.StrategyID{placement.StrategyDMAOFU, placement.StrategyDMASR} {
		fmt.Fprintf(&sb, "  %-8s", id)
		for _, q := range sortedKeys(r.EnergySavings[id]) {
			fmt.Fprintf(&sb, "  %d-DBC: %5.1f%%", q, 100*r.EnergySavings[id][q])
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}

// LatencyResult carries the section IV-C latency-improvement numbers:
// fractional access-latency reduction vs AFD-OFU per strategy and DBC
// count (paper: DMA-OFU 50.3/50.5/33.1/10.4 %, DMA-Chen 68.1/60.1/36.5/
// 13.4 %, DMA-SR 70.1/62/37.7/14.6 %).
type LatencyResult struct {
	// Improvement maps strategy -> DBC count -> fractional latency
	// reduction vs AFD-OFU.
	Improvement map[placement.StrategyID]map[int]float64
}

// LatencyStrategies are the strategies section IV-C quotes.
func LatencyStrategies() []placement.StrategyID {
	return []placement.StrategyID{
		placement.StrategyDMAOFU,
		placement.StrategyDMAChen,
		placement.StrategyDMASR,
	}
}

// Latency regenerates the section IV-C latency comparison through the
// same engine grid as Fig. 5.
func Latency(ctx context.Context, cfg Config) (*LatencyResult, error) {
	suite, err := cfg.suite()
	if err != nil {
		return nil, err
	}
	all := append([]placement.StrategyID{placement.StrategyAFDOFU}, LatencyStrategies()...)
	grid, err := simGrid(ctx, cfg, suite, all)
	if err != nil {
		return nil, fmt.Errorf("eval: latency: %w", err)
	}
	res := &LatencyResult{Improvement: map[placement.StrategyID]map[int]float64{}}
	for qi, q := range cfg.DBCCounts {
		lat := map[placement.StrategyID]float64{}
		for si, id := range all {
			lat[id] = gridTotal(grid, len(suite), len(all), qi, si).LatencyNS
		}
		for _, id := range LatencyStrategies() {
			if res.Improvement[id] == nil {
				res.Improvement[id] = map[int]float64{}
			}
			res.Improvement[id][q] = 1 - ratio(lat[id], lat[placement.StrategyAFDOFU])
		}
	}
	return res, nil
}

// Render prints the latency improvements.
func (r *LatencyResult) Render() string {
	var sb strings.Builder
	sb.WriteString("Section IV-C — RTM access latency improvement vs AFD-OFU\n")
	for _, id := range LatencyStrategies() {
		fmt.Fprintf(&sb, "  %-9s", id)
		for _, q := range sortedKeys(r.Improvement[id]) {
			fmt.Fprintf(&sb, "  %d-DBC: %5.1f%%", q, 100*r.Improvement[id][q])
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}
