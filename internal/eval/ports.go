package eval

import (
	"context"
	"fmt"
	"strings"

	"repro/internal/engine"
	"repro/internal/placement"
	"repro/internal/rtm"
	"repro/internal/trace"
)

// PortsRow reports the shift totals for one access-port count, summed
// over the suite. The paper's evaluation uses one port per track and
// argues (section II-B/III) that its heuristic — unlike Chen's
// multi-DBC scheme, which requires two or more ports — works for any
// port count; this extension experiment quantifies that claim with the
// exact multi-port cost model.
//
// Each strategy contributes two numbers per port count:
//
//   - the *replay* total — the placement optimized under the paper's
//     single-port model, replayed on the multi-port device (what an
//     optimizer unaware of the geometry would ship), and
//   - the *re-optimized* total — the strategy re-run with
//     placement.Options.Ports set, so search happens under the true
//     objective.
//
// The constructive heuristics (AFD-OFU, DMA-SR) are cost-model-free,
// so their two totals coincide; the search strategies (DMA-2opt here)
// close the gap the mispriced proxy leaves. Re-optimized totals never
// exceed replay totals at the same port count (the port-aware polish
// starts from the single-port result and only accepts improvements;
// asserted in TestPortsSweepReoptNeverWorse).
type PortsRow struct {
	Ports int
	// Replay-only totals: single-port placements scored at this port
	// count.
	AFDOFU  int64
	DMASR   int64
	DMA2Opt int64
	// Re-optimized totals: each strategy re-run with Options.Ports.
	AFDOFUReopt  int64
	DMASRReopt   int64
	DMA2OptReopt int64
	Improved     float64 // AFDOFU / DMASR (replay totals)
}

// PortsResult is the ports-sweep dataset.
type PortsResult struct {
	Rows []PortsRow
	DBCs int
	// Domains is the per-track domain count of the device the port
	// layouts derive from (the iso-capacity rule for DBCs — the Table I
	// track length for Table I DBC counts). Every row's engines keep
	// this layout; ports never move with a placement's occupancy.
	Domains int
}

// portsStrategies lists the sweep's strategies in presentation order.
func portsStrategies() []placement.StrategyID {
	return []placement.StrategyID{
		placement.StrategyAFDOFU,
		placement.StrategyDMASR,
		placement.StrategyDMATwoOpt,
	}
}

// PortsSweep evaluates shift totals for 1..maxPorts access ports per
// track at the first configured DBC count. The device geometry — and
// with it the port spacing — is fixed by the iso-capacity rule for that
// DBC count and shared with sim.RunSequence, so the scores here are the
// ones a simulation of the same device would produce.
func PortsSweep(ctx context.Context, cfg Config, maxPorts int) (*PortsResult, error) {
	if maxPorts < 1 {
		return nil, fmt.Errorf("eval: maxPorts must be >= 1, got %d", maxPorts)
	}
	q, err := cfg.firstDBCs()
	if err != nil {
		return nil, fmt.Errorf("eval: ports: %w", err)
	}
	geo, err := rtm.IsoCapacityGeometry(q, 1)
	if err != nil {
		return nil, fmt.Errorf("eval: ports: %w", err)
	}
	words := geo.WordsPerDBC()
	if maxPorts > words {
		return nil, fmt.Errorf("eval: %d ports exceed the %d domains of the %d-DBC device", maxPorts, words, q)
	}
	suite, err := cfg.suite()
	if err != nil {
		return nil, err
	}
	strategies := portsStrategies()

	var seqs []*trace.Sequence
	for _, b := range suite {
		seqs = append(seqs, b.Sequences...)
	}
	// The replay rows share one set of single-port placements: place
	// every sequence once per strategy through the engine, then score
	// the placements under each port count's model.
	baseOpts := cfg.options()
	baseOpts.Ports = 0
	var jobs []engine.PlaceJob
	for _, s := range seqs {
		for _, id := range strategies {
			jobs = append(jobs, engine.PlaceJob{Sequence: s, Strategy: id, DBCs: q, Options: baseOpts})
		}
	}
	placed, err := engine.BatchPlaceWith(ctx, jobs, cfg.workers(), cfg.Hooks)
	if err != nil {
		return nil, fmt.Errorf("eval: ports: %w", err)
	}

	res := &PortsResult{DBCs: q, Domains: words}
	ns := len(strategies)
	for ports := 1; ports <= maxPorts; ports++ {
		model, err := placement.NewPortModel(words, ports)
		if err != nil {
			return nil, fmt.Errorf("eval: ports: %w", err)
		}
		replay, err := engine.Map(ctx, len(seqs), cfg.workers(),
			func(_ context.Context, i int) ([]int64, error) {
				costs := make([]int64, ns)
				for si := range strategies {
					c, err := placement.PortCost(seqs[i], placed[i*ns+si].Placement, model)
					if err != nil {
						return nil, err
					}
					costs[si] = c
				}
				return costs, nil
			})
		if err != nil {
			return nil, fmt.Errorf("eval: ports: %w", err)
		}

		// The re-optimized rows re-run the strategies under this port
		// count's objective (Options.Ports); the reported cell cost of
		// each job is already the exact multi-port score. Two cases are
		// provably identical to the replay rows and are copied instead
		// of recomputed: the whole 1-port row (Ports == 1 resolves to
		// the single-port model the base placements used), and the
		// constructive heuristics at any port count (AFD-OFU and DMA-SR
		// never consult the cost model, so re-running them reproduces
		// the same placement). Only DMA-2opt — the strategy whose
		// search actually responds to the objective — is re-placed.
		var reopt []engine.PlaceOutcome
		if ports > 1 {
			reoptOpts := cfg.options()
			reoptOpts.Ports = ports
			reoptOpts.PortDomains = words
			var reoptJobs []engine.PlaceJob
			for _, s := range seqs {
				reoptJobs = append(reoptJobs, engine.PlaceJob{Sequence: s, Strategy: placement.StrategyDMATwoOpt, DBCs: q, Options: reoptOpts})
			}
			reopt, err = engine.BatchPlaceWith(ctx, reoptJobs, cfg.workers(), cfg.Hooks)
			if err != nil {
				return nil, fmt.Errorf("eval: ports: %w", err)
			}
		}

		row := PortsRow{Ports: ports}
		for i := range seqs {
			row.AFDOFU += replay[i][0]
			row.DMASR += replay[i][1]
			row.DMA2Opt += replay[i][2]
			if ports > 1 {
				row.DMA2OptReopt += reopt[i].Shifts
			}
		}
		row.AFDOFUReopt = row.AFDOFU
		row.DMASRReopt = row.DMASR
		if ports == 1 {
			row.DMA2OptReopt = row.DMA2Opt
		}
		row.Improved = ratio(float64(row.AFDOFU), float64(row.DMASR))
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// Render prints the sweep.
func (r *PortsResult) Render() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Ports sweep — total shifts vs access ports per track (%d DBCs, %d domains/track)\n", r.DBCs, r.Domains)
	fmt.Fprintf(&sb, "replay: single-port placements rescored; reopt: strategies re-optimized per port count\n")
	fmt.Fprintf(&sb, "%6s %12s %12s %12s %12s %12s %12s %12s\n",
		"ports", "AFD-OFU", "DMA-SR", "DMA-2opt", "AFD reopt", "DMA reopt", "2opt reopt", "improvement")
	for _, row := range r.Rows {
		fmt.Fprintf(&sb, "%6d %12d %12d %12d %12d %12d %12d %11.2fx\n",
			row.Ports, row.AFDOFU, row.DMASR, row.DMA2Opt,
			row.AFDOFUReopt, row.DMASRReopt, row.DMA2OptReopt, row.Improved)
	}
	return sb.String()
}
