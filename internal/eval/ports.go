package eval

import (
	"context"
	"fmt"
	"strings"

	"repro/internal/engine"
	"repro/internal/placement"
	"repro/internal/trace"
)

// PortsRow reports the shift totals for one access-port count, summed
// over the suite, for AFD-OFU and DMA-SR. The paper's evaluation uses one
// port per track and argues (section II-B/III) that its heuristic — unlike
// Chen's multi-DBC scheme, which requires two or more ports — works for
// any port count; this extension experiment quantifies that claim with
// the generalized shift engine.
type PortsRow struct {
	Ports    int
	AFDOFU   int64
	DMASR    int64
	Improved float64 // AFDOFU / DMASR
}

// PortsResult is the ports-sweep dataset.
type PortsResult struct {
	Rows []PortsRow
	DBCs int
}

// PortsSweep evaluates shift counts for 1..maxPorts access ports per
// track at the first configured DBC count.
func PortsSweep(ctx context.Context, cfg Config, maxPorts int) (*PortsResult, error) {
	if maxPorts < 1 {
		return nil, fmt.Errorf("eval: maxPorts must be >= 1, got %d", maxPorts)
	}
	suite, err := cfg.suite()
	if err != nil {
		return nil, err
	}
	opts := cfg.options()
	q := cfg.DBCCounts[0]

	// Placements do not depend on the port count: place every sequence
	// once per strategy through the engine (the pre-engine driver
	// re-placed the whole suite for every port count), then replay the
	// placements through multi-port shift engines per port count.
	var seqs []*trace.Sequence
	for _, b := range suite {
		seqs = append(seqs, b.Sequences...)
	}
	var jobs []engine.PlaceJob
	for _, s := range seqs {
		jobs = append(jobs,
			engine.PlaceJob{Sequence: s, Strategy: placement.StrategyAFDOFU, DBCs: q, Options: opts},
			engine.PlaceJob{Sequence: s, Strategy: placement.StrategyDMASR, DBCs: q, Options: opts})
	}
	placed, err := engine.BatchPlaceWith(ctx, jobs, cfg.workers(), cfg.Hooks)
	if err != nil {
		return nil, fmt.Errorf("eval: ports: %w", err)
	}

	res := &PortsResult{DBCs: q}
	for ports := 1; ports <= maxPorts; ports++ {
		type pair struct{ afd, dma int64 }
		costs, err := engine.Map(ctx, len(seqs), cfg.workers(),
			func(_ context.Context, i int) (pair, error) {
				s := seqs[i]
				pa, pd := placed[2*i].Placement, placed[2*i+1].Placement
				domains := maxInt(pa.MaxDBCLen(), maxInt(pd.MaxDBCLen(), ports))
				ca, err := placement.EngineCost(s, pa, domains, ports)
				if err != nil {
					return pair{}, err
				}
				cd, err := placement.EngineCost(s, pd, domains, ports)
				if err != nil {
					return pair{}, err
				}
				return pair{afd: ca, dma: cd}, nil
			})
		if err != nil {
			return nil, fmt.Errorf("eval: ports: %w", err)
		}
		var afd, dma int64
		for _, c := range costs {
			afd += c.afd
			dma += c.dma
		}
		res.Rows = append(res.Rows, PortsRow{
			Ports:    ports,
			AFDOFU:   afd,
			DMASR:    dma,
			Improved: ratio(float64(afd), float64(dma)),
		})
	}
	return res, nil
}

// Render prints the sweep.
func (r *PortsResult) Render() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Ports sweep — total shifts vs access ports per track (%d DBCs)\n", r.DBCs)
	fmt.Fprintf(&sb, "%6s %12s %12s %12s\n", "ports", "AFD-OFU", "DMA-SR", "improvement")
	for _, row := range r.Rows {
		fmt.Fprintf(&sb, "%6d %12d %12d %11.2fx\n", row.Ports, row.AFDOFU, row.DMASR, row.Improved)
	}
	return sb.String()
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
