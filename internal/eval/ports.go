package eval

import (
	"fmt"
	"strings"

	"repro/internal/placement"
)

// PortsRow reports the shift totals for one access-port count, summed
// over the suite, for AFD-OFU and DMA-SR. The paper's evaluation uses one
// port per track and argues (section II-B/III) that its heuristic — unlike
// Chen's multi-DBC scheme, which requires two or more ports — works for
// any port count; this extension experiment quantifies that claim with
// the generalized shift engine.
type PortsRow struct {
	Ports    int
	AFDOFU   int64
	DMASR    int64
	Improved float64 // AFDOFU / DMASR
}

// PortsResult is the ports-sweep dataset.
type PortsResult struct {
	Rows []PortsRow
	DBCs int
}

// PortsSweep evaluates shift counts for 1..maxPorts access ports per
// track at the first configured DBC count.
func PortsSweep(cfg Config, maxPorts int) (*PortsResult, error) {
	if maxPorts < 1 {
		return nil, fmt.Errorf("eval: maxPorts must be >= 1, got %d", maxPorts)
	}
	suite, err := cfg.suite()
	if err != nil {
		return nil, err
	}
	opts := cfg.options()
	q := cfg.DBCCounts[0]

	res := &PortsResult{DBCs: q}
	for ports := 1; ports <= maxPorts; ports++ {
		var afd, dma int64
		for _, b := range suite {
			for _, s := range b.Sequences {
				pa, _, err := placement.Place(placement.StrategyAFDOFU, s, q, opts)
				if err != nil {
					return nil, err
				}
				pd, _, err := placement.Place(placement.StrategyDMASR, s, q, opts)
				if err != nil {
					return nil, err
				}
				domains := maxInt(pa.MaxDBCLen(), maxInt(pd.MaxDBCLen(), ports))
				ca, err := placement.EngineCost(s, pa, domains, ports)
				if err != nil {
					return nil, err
				}
				cd, err := placement.EngineCost(s, pd, domains, ports)
				if err != nil {
					return nil, err
				}
				afd += ca
				dma += cd
			}
		}
		res.Rows = append(res.Rows, PortsRow{
			Ports:    ports,
			AFDOFU:   afd,
			DMASR:    dma,
			Improved: ratio(float64(afd), float64(dma)),
		})
	}
	return res, nil
}

// Render prints the sweep.
func (r *PortsResult) Render() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Ports sweep — total shifts vs access ports per track (%d DBCs)\n", r.DBCs)
	fmt.Fprintf(&sb, "%6s %12s %12s %12s\n", "ports", "AFD-OFU", "DMA-SR", "improvement")
	for _, row := range r.Rows {
		fmt.Fprintf(&sb, "%6d %12d %12d %11.2fx\n", row.Ports, row.AFDOFU, row.DMASR, row.Improved)
	}
	return sb.String()
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
