// Package server is the placement service behind cmd/rtmserve: an HTTP
// front-end over racetrack.Lab designed around staying up — admission
// control with bounded queuing and load shedding, per-request deadlines
// that return best-so-far placements instead of hanging workers,
// request coalescing by trace fingerprint, a crash-safe persistent
// placement cache (internal/server/diskcache), per-request panic
// containment, and graceful draining. See DESIGN.md §13 for the
// failure-mode table.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log"
	"net/http"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	racetrack "repro"
	"repro/internal/server/diskcache"
	"repro/rtmclient"
)

// Config parameterizes a Server.
type Config struct {
	// Lab executes the placements. Required.
	Lab *racetrack.Lab
	// Cache, when non-nil, persists finished placements across restarts.
	Cache *diskcache.Cache
	// MaxConcurrent bounds concurrently executing placements (default:
	// GOMAXPROCS). MaxQueue bounds how many admitted requests may wait
	// for a slot before arrivals are shed (default 64).
	MaxConcurrent int
	MaxQueue      int
	// TenantCap bounds one tenant's running+queued requests (0 = no
	// per-tenant cap).
	TenantCap int
	// MaxDeadline is the server-side ceiling on a request's search
	// budget; a client asking for more (or for nothing) gets
	// min(request, MaxDeadline). Default 30s.
	MaxDeadline time.Duration
	// RetryAfter is the backoff hint attached to sheds and drain
	// rejections. Default 1s.
	RetryAfter time.Duration
	// DefaultDBCs is the DBC count used when a request leaves dbcs
	// unset; it participates in the coalescing/cache key. Default 4.
	DefaultDBCs int
	// Spin artificially lengthens every placement by sleeping inside the
	// admitted worker slot — a load-testing knob (cmd/rtmserve -spin) to
	// provoke queuing and shedding deterministically. 0 in production.
	Spin time.Duration
	// Log receives operational messages (nil = standard logger).
	Log *log.Logger
}

// Server is the placement service. Build with New, mount Handler, and
// on shutdown call BeginDrain + Drain.
type Server struct {
	cfg   Config
	adm   *admission
	group *flightGroup
	gate  *drainGate

	//rtmlint:ctxcheck-ok server-lifetime root for coalesced flights (DESIGN.md §13); cancelled exactly once at drain
	baseCtx    context.Context
	baseCancel context.CancelFunc

	m metrics
}

// metrics are the service counters exported by /statz.
type metrics struct {
	requests, badRequests, shed, deadline, canceled atomic.Int64
	ok, partial, cacheHits, coalesced, panics       atomic.Int64
	internalErrors                                  atomic.Int64
}

// New validates the config and builds the service.
func New(cfg Config) (*Server, error) {
	if cfg.Lab == nil {
		return nil, fmt.Errorf("server: Config.Lab is required")
	}
	if cfg.MaxConcurrent <= 0 {
		cfg.MaxConcurrent = runtime.GOMAXPROCS(0)
	}
	if cfg.MaxQueue < 0 {
		return nil, fmt.Errorf("server: negative MaxQueue %d", cfg.MaxQueue)
	}
	if cfg.MaxQueue == 0 {
		cfg.MaxQueue = 64
	}
	if cfg.MaxDeadline <= 0 {
		cfg.MaxDeadline = 30 * time.Second
	}
	if cfg.RetryAfter <= 0 {
		cfg.RetryAfter = time.Second
	}
	if cfg.DefaultDBCs <= 0 {
		cfg.DefaultDBCs = 4
	}
	if cfg.Log == nil {
		cfg.Log = log.Default()
	}
	//rtmlint:ctxcheck-ok the flight root is deliberately detached: a leader disconnect must not cancel followers (DESIGN.md §13)
	ctx, cancel := context.WithCancel(context.Background())
	return &Server{
		cfg:        cfg,
		adm:        newAdmission(cfg.MaxConcurrent, cfg.MaxQueue, cfg.TenantCap),
		group:      newFlightGroup(ctx),
		gate:       &drainGate{},
		baseCtx:    ctx,
		baseCancel: cancel,
	}, nil
}

// Handler mounts the service endpoints: POST /v1/place, GET /healthz,
// GET /statz.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/place", s.withRecovery(s.handlePlace))
	mux.HandleFunc("/healthz", s.withRecovery(s.handleHealth))
	mux.HandleFunc("/statz", s.withRecovery(s.handleStats))
	return mux
}

// withRecovery contains a per-request panic: the one request gets a 500
// and the server keeps serving. (net/http would also recover, but by
// killing the connection without a response.)
func (s *Server) withRecovery(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		defer func() {
			if v := recover(); v != nil {
				s.m.panics.Add(1)
				s.cfg.Log.Printf("rtmserve: panic serving %s: %v", r.URL.Path, v)
				s.writeError(w, http.StatusInternalServerError, "internal error", 0)
			}
		}()
		h(w, r)
	}
}

func (s *Server) handlePlace(w http.ResponseWriter, r *http.Request) {
	s.m.requests.Add(1)
	if r.Method != http.MethodPost {
		s.writeError(w, http.StatusMethodNotAllowed, "POST required", 0)
		return
	}
	if !s.gate.enter() {
		s.writeError(w, http.StatusServiceUnavailable, "draining", s.cfg.RetryAfter)
		return
	}
	defer s.gate.exit()

	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, MaxBodyBytes))
	if err != nil {
		s.m.badRequests.Add(1)
		s.writeError(w, http.StatusBadRequest, fmt.Sprintf("reading body: %v", err), 0)
		return
	}
	req, err := decodePlaceRequest(body)
	if err != nil {
		s.m.badRequests.Add(1)
		s.writeError(w, http.StatusBadRequest, err.Error(), 0)
		return
	}
	s.applyDefaults(req)
	model, err := s.resolveObjective(req)
	if err != nil {
		// The spec was syntax-checked at decode time, so a failure here
		// is a semantic mismatch with the effective options (e.g. a
		// derived objective on a DBC count with no Table I row) — still
		// the client's ask, still a 400.
		s.m.badRequests.Add(1)
		s.writeError(w, http.StatusBadRequest, err.Error(), 0)
		return
	}
	objective := ""
	if model != nil {
		objective = model.Spec()
	}

	fp := req.seq.Fingerprint()
	key := diskcache.Key{
		Fingerprint: fp,
		Strategy:    string(req.strategy),
		Objective:   objective,
		DBCs:        req.dbcs,
		Capacity:    req.capacity,
		Ports:       req.ports,
	}

	// Warm path: a verified persistent-cache entry answers without
	// touching admission — a restart serves its working set immediately.
	if resp := s.fromCache(key, req, model); resp != nil {
		s.m.cacheHits.Add(1)
		s.m.ok.Add(1)
		s.writeJSON(w, http.StatusOK, resp)
		return
	}

	flightKey := fmt.Sprintf("%016x|%s|%s|%d|%d|%d", fp, req.strategy, objective, req.dbcs, req.capacity, req.ports)
	resp, err, shared := s.group.do(r.Context(), flightKey, func(fctx context.Context) (*rtmclient.PlaceResponse, error) {
		return s.compute(fctx, key, req)
	})
	if shared {
		s.m.coalesced.Add(1)
	}
	if err != nil {
		s.writeFailure(w, err)
		return
	}
	if shared {
		// The flight result is shared; flag the copy, not the original.
		cp := *resp
		cp.Coalesced = true
		resp = &cp
	}
	if resp.Partial {
		s.m.partial.Add(1)
	}
	s.m.ok.Add(1)
	s.writeJSON(w, http.StatusOK, resp)
}

// applyDefaults resolves the request's effective options — they key the
// coalescing and the persistent cache, so "dbcs: 0" and "dbcs: 4" must
// be the same work item.
func (s *Server) applyDefaults(req *placeRequest) {
	if req.strategy == "" {
		req.strategy = racetrack.DMAOFU
	}
	if req.dbcs == 0 {
		req.dbcs = s.cfg.DefaultDBCs
	}
	if req.deadline <= 0 || req.deadline > s.cfg.MaxDeadline {
		req.deadline = s.cfg.MaxDeadline
	}
}

// resolveObjective builds the request's cost model (nil when no pricing
// was asked for). Its canonical Spec — not the raw request string — is
// the cache/coalescing key material, so "faulty:0.50" and "faulty:0.5"
// are the same work item.
func (s *Server) resolveObjective(req *placeRequest) (*racetrack.CostModel, error) {
	if req.objective == "" {
		return nil, nil
	}
	obj, rate, err := racetrack.ParseObjective(req.objective)
	if err != nil {
		return nil, err
	}
	if obj == racetrack.ObjectiveShifts {
		return racetrack.DefaultCostModel(), nil
	}
	params, err := racetrack.EnergyParams(req.dbcs)
	if err != nil {
		return nil, fmt.Errorf("objective %q: %v", req.objective, err)
	}
	return racetrack.NewCostModel(obj, params, rate)
}

// wireCost renders a priced cost for the response; spec is the
// canonical objective spec (the key material).
func wireCost(spec string, c *racetrack.Cost) *rtmclient.PlaceCost {
	if c == nil {
		return nil
	}
	return &rtmclient.PlaceCost{
		Objective:   spec,
		Shifts:      c.Shifts,
		Reads:       c.Reads,
		Writes:      c.Writes,
		FaultShifts: c.FaultShifts,
		RuntimeNS:   c.RuntimeNS,
		DynamicPJ:   c.DynamicPJ,
		LeakagePJ:   c.LeakagePJ,
		Scalar:      c.Scalar,
	}
}

// compute runs inside the (possibly shared) flight: admission, the
// deadline-bounded placement, and the cache write-back. A panic in a
// strategy is contained here — the flight goroutine must never crash
// the process — and surfaces as an internal error to every waiter.
func (s *Server) compute(fctx context.Context, key diskcache.Key, req *placeRequest) (resp *rtmclient.PlaceResponse, err error) {
	defer func() {
		if v := recover(); v != nil {
			s.m.panics.Add(1)
			s.cfg.Log.Printf("rtmserve: panic in placement %016x/%s: %v", key.Fingerprint, key.Strategy, v)
			resp, err = nil, &panicError{fmt.Sprintf("%v", v)}
		}
	}()

	release, err := s.adm.admit(fctx, req.tenant)
	if err != nil {
		return nil, err
	}
	defer release()

	if s.cfg.Spin > 0 {
		t := time.NewTimer(s.cfg.Spin)
		select {
		case <-fctx.Done():
			t.Stop()
			return nil, fctx.Err()
		case <-t.C:
		}
	}

	ctx, cancel := context.WithTimeout(fctx, req.deadline)
	defer cancel()
	res, perr := s.cfg.Lab.Place(ctx, req.seq, racetrack.PlaceOptions{
		Strategy:  req.strategy,
		DBCs:      req.dbcs,
		Capacity:  req.capacity,
		Ports:     req.ports,
		Objective: key.Objective,
	})
	if res == nil {
		// No result at all: a failed strategy, or a deadline that
		// expired before any search state existed.
		return nil, perr
	}
	partial := perr != nil // deadline hit: best-so-far rides along

	resp = &rtmclient.PlaceResponse{
		Strategy:    string(req.strategy),
		DBCs:        req.dbcs,
		Fingerprint: fmt.Sprintf("%016x", key.Fingerprint),
		Shifts:      res.Shifts,
		PerDBC:      res.PerDBC,
		Placement:   namedPlacement(req.seq, res.Placement),
		Partial:     partial,
		Cost:        wireCost(key.Objective, res.Cost),
	}
	if !partial && s.cfg.Cache != nil {
		entry := &diskcache.Entry{Key: key, Shifts: res.Shifts, PerDBC: res.PerDBC, DBC: res.Placement.DBC}
		if werr := s.cfg.Cache.Put(entry); werr != nil {
			// Best-effort durability: a failed write-back costs warmth,
			// never the request.
			s.cfg.Log.Printf("rtmserve: cache write-back failed: %v", werr)
		}
	}
	return resp, nil
}

// fromCache serves a verified persistent-cache hit: the entry's
// checksum and key were verified by diskcache, and the placement is
// additionally validated against the actual sequence — a fingerprint
// collision (different trace, same fingerprint) fails validation and
// falls through to a rebuild that overwrites the entry.
func (s *Server) fromCache(key diskcache.Key, req *placeRequest, model *racetrack.CostModel) *rtmclient.PlaceResponse {
	if s.cfg.Cache == nil {
		return nil
	}
	e, ok := s.cfg.Cache.Get(key)
	if !ok {
		return nil
	}
	p := &racetrack.Placement{DBC: e.DBC}
	if err := p.Validate(req.seq, req.capacity); err != nil {
		s.cfg.Log.Printf("rtmserve: cache entry %016x/%s does not fit its trace (fingerprint collision?): %v",
			key.Fingerprint, key.Strategy, err)
		return nil
	}
	resp := &rtmclient.PlaceResponse{
		Strategy:    string(req.strategy),
		DBCs:        req.dbcs,
		Fingerprint: fmt.Sprintf("%016x", key.Fingerprint),
		Shifts:      e.Shifts,
		PerDBC:      e.PerDBC,
		Placement:   namedPlacement(req.seq, p),
		Cached:      true,
	}
	if model != nil {
		// Entries store the nominal result; pricing is deterministic
		// arithmetic over it, so a hit re-prices instead of persisting
		// derived floats (the key pinned the same objective).
		c := model.Price(racetrack.TallyOf(req.seq, e.Shifts))
		resp.Cost = wireCost(key.Objective, &c)
	}
	return resp
}

// namedPlacement renders a placement's DBC lists with the sequence's
// variable names.
func namedPlacement(seq *racetrack.Sequence, p *racetrack.Placement) [][]string {
	out := make([][]string, len(p.DBC))
	for i, d := range p.DBC {
		out[i] = make([]string, len(d))
		for j, v := range d {
			out[i][j] = seq.Name(v)
		}
	}
	return out
}

// panicError is a contained strategy panic, reported to every waiter of
// the flight as an internal error.
type panicError struct{ msg string }

func (e *panicError) Error() string { return "placement panicked: " + e.msg }

// writeFailure maps a flight error onto an HTTP status.
func (s *Server) writeFailure(w http.ResponseWriter, err error) {
	var shed *shedError
	switch {
	case errors.As(err, &shed):
		s.m.shed.Add(1)
		s.writeError(w, http.StatusTooManyRequests, shed.Error(), s.cfg.RetryAfter)
	case errors.Is(err, context.DeadlineExceeded):
		s.m.deadline.Add(1)
		s.writeError(w, http.StatusGatewayTimeout, "deadline exceeded before any placement existed", 0)
	case errors.Is(err, context.Canceled):
		// The client went away (or the drain cancelled the flight);
		// nobody meaningful is listening, but answer anyway.
		s.m.canceled.Add(1)
		s.writeError(w, http.StatusServiceUnavailable, "request cancelled", s.cfg.RetryAfter)
	default:
		s.m.internalErrors.Add(1)
		s.writeError(w, http.StatusInternalServerError, err.Error(), 0)
	}
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	if s.gate.isDraining() {
		s.writeError(w, http.StatusServiceUnavailable, "draining", s.cfg.RetryAfter)
		return
	}
	w.WriteHeader(http.StatusOK)
	fmt.Fprintln(w, "ok")
}

// Stats is the /statz payload.
type Stats struct {
	Requests    int64 `json:"requests"`
	OK          int64 `json:"ok"`
	Partial     int64 `json:"partial"`
	BadRequests int64 `json:"bad_requests"`
	Shed        int64 `json:"shed"`
	Deadline    int64 `json:"deadline"`
	Canceled    int64 `json:"canceled"`
	Coalesced   int64 `json:"coalesced"`
	CacheServed int64 `json:"cache_served"`
	Panics      int64 `json:"panics"`
	Internal    int64 `json:"internal_errors"`

	Running int64 `json:"running"`
	Queued  int64 `json:"queued"`

	KernelCacheHits   int64 `json:"kernel_cache_hits"`
	KernelCacheMisses int64 `json:"kernel_cache_misses"`

	DiskCache *diskcache.Stats `json:"disk_cache,omitempty"`
}

func (s *Server) stats() Stats {
	running, queued := s.adm.load()
	kh, km := s.cfg.Lab.KernelCacheStats()
	st := Stats{
		Requests:    s.m.requests.Load(),
		OK:          s.m.ok.Load(),
		Partial:     s.m.partial.Load(),
		BadRequests: s.m.badRequests.Load(),
		Shed:        s.m.shed.Load(),
		Deadline:    s.m.deadline.Load(),
		Canceled:    s.m.canceled.Load(),
		Coalesced:   s.m.coalesced.Load(),
		CacheServed: s.m.cacheHits.Load(),
		Panics:      s.m.panics.Load(),
		Internal:    s.m.internalErrors.Load(),

		Running: int64(running),
		Queued:  int64(queued),

		KernelCacheHits:   kh,
		KernelCacheMisses: km,
	}
	if s.cfg.Cache != nil {
		dc := s.cfg.Cache.Stats()
		st.DiskCache = &dc
	}
	return st
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	s.writeJSON(w, http.StatusOK, s.stats())
}

// BeginDrain stops admitting new requests: /v1/place answers 503 with a
// Retry-After, /healthz flips unhealthy so balancers steer away.
// In-flight requests keep running.
func (s *Server) BeginDrain() { s.gate.beginDrain() }

// Drain completes a graceful shutdown: BeginDrain, wait for every
// in-flight request and flight to finish (bounded by ctx), then flush
// the persistent cache. On ctx expiry the remaining flights are
// cancelled (their searches return best-so-far to their waiters) and
// ctx's error is returned.
func (s *Server) Drain(ctx context.Context) error {
	idle := s.gate.beginDrain()
	select {
	case <-idle:
	case <-ctx.Done():
		s.baseCancel()
		return ctx.Err()
	}
	s.group.wait()
	s.baseCancel()
	if s.cfg.Cache != nil {
		if err := s.cfg.Cache.Flush(); err != nil {
			return fmt.Errorf("server: flushing cache: %w", err)
		}
	}
	return nil
}

func (s *Server) writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	if err := enc.Encode(v); err != nil {
		s.cfg.Log.Printf("rtmserve: writing response: %v", err)
	}
}

func (s *Server) writeError(w http.ResponseWriter, code int, msg string, retryAfter time.Duration) {
	if retryAfter > 0 {
		secs := int(retryAfter.Round(time.Second) / time.Second)
		if secs < 1 {
			secs = 1
		}
		w.Header().Set("Retry-After", strconv.Itoa(secs))
	}
	s.writeJSON(w, code, rtmclient.ErrorResponse{Error: msg})
}

// drainGate tracks in-flight requests and refuses new ones once
// draining. It replaces a bare WaitGroup because enters race drains: a
// WaitGroup forbids Add concurrent with Wait at zero, the gate makes
// the same situation a clean refusal.
type drainGate struct {
	mu       sync.Mutex
	n        int
	draining bool
	idle     chan struct{}
	closed   bool
}

func (g *drainGate) enter() bool {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.draining {
		return false
	}
	g.n++
	return true
}

func (g *drainGate) exit() {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.n--
	g.maybeIdle()
}

func (g *drainGate) isDraining() bool {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.draining
}

// beginDrain flips the gate and returns a channel closed when the last
// in-flight request exits (immediately if none are in flight).
func (g *drainGate) beginDrain() <-chan struct{} {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.draining = true
	if g.idle == nil {
		g.idle = make(chan struct{})
	}
	g.maybeIdle()
	return g.idle
}

func (g *drainGate) maybeIdle() {
	if g.draining && g.n == 0 && g.idle != nil && !g.closed {
		close(g.idle)
		g.closed = true
	}
}
