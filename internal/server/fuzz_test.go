package server

import "testing"

// FuzzDecodePlaceRequest fuzzes the untrusted request boundary:
// arbitrary bytes must decode to a valid request or a client error —
// never a panic (the per-request recovery would turn one into a 500,
// but the decoder must not rely on it).
func FuzzDecodePlaceRequest(f *testing.F) {
	f.Add([]byte(`{"trace":"a b a b c a c a"}`))
	f.Add([]byte(`{"trace":"a b!","strategy":"GA","dbcs":4,"capacity":64,"ports":2,"deadline_ms":100,"tenant":"t"}`))
	f.Add([]byte(`{"trace":"a b","objective":"faulty:0.01"}`))
	f.Add([]byte(`{"trace":"a b","objective":"watts"}`))
	f.Add([]byte(`{"trace":""}`))
	f.Add([]byte(`{"trace":"a","dbcs":-1}`))
	f.Add([]byte(`{"trace":"a","dbcs":99999999}`))
	f.Add([]byte(`{"trace":"a"} trailing`))
	f.Add([]byte(`{"unknown":true}`))
	f.Add([]byte(`not json at all`))
	f.Add([]byte(``))
	f.Add([]byte("\x00\xff\xfe"))
	f.Add([]byte(`{"trace":42}`))
	f.Add([]byte(`[{"trace":"a"}]`))
	f.Fuzz(func(t *testing.T, data []byte) {
		req, err := decodePlaceRequest(data)
		if (req == nil) == (err == nil) {
			t.Fatalf("decodePlaceRequest: exactly one of request/error must be set (req=%v err=%v)", req, err)
		}
		if req != nil && req.seq == nil {
			t.Fatal("decoded request without a sequence")
		}
	})
}
