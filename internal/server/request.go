package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"time"

	racetrack "repro"
	"repro/rtmclient"
)

// Request decoding: the untrusted boundary. A body of arbitrary bytes
// becomes a typed, validated placement request or a client error —
// never a panic and never an unbounded allocation (the handler caps the
// body size with http.MaxBytesReader before this sees it; the numeric
// caps below bound what a hostile but well-formed request can ask for).

// Request size/field caps.
const (
	// MaxBodyBytes bounds the /v1/place request body.
	MaxBodyBytes = 16 << 20
	// maxDBCs/maxPorts/maxCapacity bound the placement options a request
	// may select — generous multiples of any Table I device.
	maxDBCs     = 4096
	maxPorts    = 1024
	maxCapacity = 1 << 30
	// maxTenantLen bounds the tenant label (it keys an accounting map).
	maxTenantLen = 128
	// maxObjectiveLen bounds the objective spec before parsing.
	maxObjectiveLen = 64
)

// placeRequest is the decoded, validated form of one /v1/place call.
type placeRequest struct {
	seq      *racetrack.Sequence
	strategy racetrack.Strategy
	dbcs     int
	capacity int
	ports    int
	deadline time.Duration // client ask; 0 = use the server default
	tenant   string
	// objective is the request's cost-objective spec, syntax-checked at
	// decode time ("" = no pricing). It is canonicalized against the
	// effective DBC count after defaulting (Server.resolveObjective) —
	// the canonical spec, not this raw string, keys the caches.
	objective string
}

// decodePlaceRequest turns an uploaded body into a typed request. Every
// failure is a client error (HTTP 400); malformed input of any shape
// must come back as an error, never a panic (FuzzDecodePlaceRequest
// pins this).
func decodePlaceRequest(body []byte) (*placeRequest, error) {
	dec := json.NewDecoder(bytes.NewReader(body))
	dec.DisallowUnknownFields()
	var wire rtmclient.PlaceRequest
	if err := dec.Decode(&wire); err != nil {
		return nil, fmt.Errorf("invalid request body: %v", err)
	}
	if dec.More() {
		return nil, fmt.Errorf("invalid request body: trailing data after the JSON object")
	}
	if wire.Trace == "" {
		return nil, fmt.Errorf("missing trace")
	}
	switch {
	case wire.DBCs < 0 || wire.DBCs > maxDBCs:
		return nil, fmt.Errorf("dbcs %d out of range [0,%d]", wire.DBCs, maxDBCs)
	case wire.Capacity < 0 || wire.Capacity > maxCapacity:
		return nil, fmt.Errorf("capacity %d out of range [0,%d]", wire.Capacity, maxCapacity)
	case wire.Ports < 0 || wire.Ports > maxPorts:
		return nil, fmt.Errorf("ports %d out of range [0,%d]", wire.Ports, maxPorts)
	case wire.DeadlineMillis < 0:
		return nil, fmt.Errorf("deadline_ms %d is negative", wire.DeadlineMillis)
	case len(wire.Tenant) > maxTenantLen:
		return nil, fmt.Errorf("tenant label longer than %d bytes", maxTenantLen)
	case len(wire.Objective) > maxObjectiveLen:
		return nil, fmt.Errorf("objective spec longer than %d bytes", maxObjectiveLen)
	}
	if wire.Objective != "" {
		if _, _, err := racetrack.ParseObjective(wire.Objective); err != nil {
			return nil, fmt.Errorf("invalid objective: %v", err)
		}
	}
	seq, err := racetrack.ParseSequence(wire.Trace)
	if err != nil {
		return nil, fmt.Errorf("invalid trace: %v", err)
	}
	return &placeRequest{
		seq:       seq,
		strategy:  racetrack.Strategy(wire.Strategy),
		dbcs:      wire.DBCs,
		capacity:  wire.Capacity,
		ports:     wire.Ports,
		deadline:  time.Duration(wire.DeadlineMillis) * time.Millisecond,
		tenant:    wire.Tenant,
		objective: wire.Objective,
	}, nil
}
