package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	racetrack "repro"
	"repro/internal/placement"
	"repro/internal/server/diskcache"
	"repro/rtmclient"
)

// newTestServer builds a Server over a fresh Lab (plus any custom
// strategies) and mounts it on an httptest server.
func newTestServer(t *testing.T, cfg Config, strategies ...racetrack.Option) (*Server, *httptest.Server) {
	t.Helper()
	lab, err := racetrack.New(strategies...)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Lab = lab
	srv, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return srv, ts
}

// post submits one /v1/place body and returns the status, headers and
// decoded response (place or error).
func post(t *testing.T, url string, body string) (int, http.Header, *rtmclient.PlaceResponse, *rtmclient.ErrorResponse) {
	t.Helper()
	res, err := http.Post(url+"/v1/place", "application/json", bytes.NewReader([]byte(body)))
	if err != nil {
		t.Fatalf("POST: %v", err)
	}
	defer res.Body.Close()
	raw, err := io.ReadAll(res.Body)
	if err != nil {
		t.Fatalf("reading response: %v", err)
	}
	if res.StatusCode == http.StatusOK {
		out := &rtmclient.PlaceResponse{}
		if err := json.Unmarshal(raw, out); err != nil {
			t.Fatalf("decoding 200 body %q: %v", raw, err)
		}
		return res.StatusCode, res.Header, out, nil
	}
	er := &rtmclient.ErrorResponse{}
	if err := json.Unmarshal(raw, er); err != nil {
		t.Fatalf("decoding %d body %q: %v", res.StatusCode, raw, err)
	}
	return res.StatusCode, res.Header, nil, er
}

func placeBody(trace, strategy string, extra string) string {
	b := fmt.Sprintf(`{"trace":%q`, trace)
	if strategy != "" {
		b += fmt.Sprintf(`,"strategy":%q`, strategy)
	}
	return b + extra + `}`
}

// TestOverloadShedsWith429 floods a 1-slot, 1-queue server with
// distinct traces: the overflow must be shed immediately with 429 and a
// Retry-After hint, while every accepted request completes normally.
func TestOverloadShedsWith429(t *testing.T) {
	_, ts := newTestServer(t, Config{
		MaxConcurrent: 1,
		MaxQueue:      1,
		Spin:          300 * time.Millisecond,
		RetryAfter:    2 * time.Second,
	})

	const n = 8
	type outcome struct {
		code  int
		hdr   http.Header
		place *rtmclient.PlaceResponse
	}
	out := make([]outcome, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			code, hdr, pr, _ := post(t, ts.URL, placeBody(fmt.Sprintf("a b a b uniq%d", i), "", ""))
			out[i] = outcome{code, hdr, pr}
		}(i)
	}
	wg.Wait()

	var ok, shed int
	for i, o := range out {
		switch o.code {
		case http.StatusOK:
			ok++
			if o.place.Shifts < 0 || len(o.place.Placement) == 0 {
				t.Errorf("request %d: accepted but result is empty: %+v", i, o.place)
			}
		case http.StatusTooManyRequests:
			shed++
			if ra := o.hdr.Get("Retry-After"); ra != "2" {
				t.Errorf("request %d: shed without Retry-After hint (got %q)", i, ra)
			}
		default:
			t.Errorf("request %d: unexpected status %d", i, o.code)
		}
	}
	if ok < 2 || shed < 1 || ok+shed != n {
		t.Fatalf("ok=%d shed=%d of %d: want >=2 accepted (slot+queue), >=1 shed, none lost", ok, shed, n)
	}
}

// TestCoalescing submits identical concurrent requests and asserts the
// strategy ran exactly once — the others shared the flight.
func TestCoalescing(t *testing.T) {
	var calls atomic.Int64
	slow := func(s *racetrack.Sequence, q int, opts racetrack.StrategyOptions) (*racetrack.Placement, int64, error) {
		calls.Add(1)
		select {
		case <-opts.Context.Done():
			return nil, 0, opts.Context.Err()
		case <-time.After(150 * time.Millisecond):
		}
		return placement.Place(placement.StrategyDMAOFU, s, q, placement.Options{Capacity: opts.Capacity})
	}
	_, ts := newTestServer(t, Config{MaxConcurrent: 4, MaxQueue: 16},
		racetrack.WithStrategy("slowcount", slow))

	const n = 6
	body := placeBody("a b a b c a c a", "slowcount", "")
	codes := make([]int, n)
	places := make([]*rtmclient.PlaceResponse, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			codes[i], _, places[i], _ = post(t, ts.URL, body)
		}(i)
	}
	wg.Wait()

	coalesced := 0
	for i := 0; i < n; i++ {
		if codes[i] != http.StatusOK {
			t.Fatalf("request %d: status %d", i, codes[i])
		}
		if places[i].Shifts != places[0].Shifts || places[i].Fingerprint != places[0].Fingerprint {
			t.Fatalf("request %d: diverging result %+v vs %+v", i, places[i], places[0])
		}
		if places[i].Coalesced {
			coalesced++
		}
	}
	if got := calls.Load(); got != 1 {
		t.Fatalf("strategy ran %d times for %d identical concurrent requests, want exactly 1", got, n)
	}
	if coalesced != n-1 {
		t.Fatalf("coalesced=%d, want %d (all but the flight leader)", coalesced, n-1)
	}
}

// TestPanicContained sends a request whose strategy panics: that one
// request gets a 500 and the server keeps serving.
func TestPanicContained(t *testing.T) {
	boom := func(s *racetrack.Sequence, q int, opts racetrack.StrategyOptions) (*racetrack.Placement, int64, error) {
		panic("strategy exploded")
	}
	srv, ts := newTestServer(t, Config{}, racetrack.WithStrategy("panicker", boom))

	code, _, _, er := post(t, ts.URL, placeBody("a b a b", "panicker", ""))
	if code != http.StatusInternalServerError {
		t.Fatalf("panicking strategy: status %d, want 500", code)
	}
	if er == nil || er.Error == "" {
		t.Fatal("panicking strategy: no error body")
	}
	// The server survived; a normal request still works.
	code, _, pr, _ := post(t, ts.URL, placeBody("a b a b", "", ""))
	if code != http.StatusOK || pr == nil {
		t.Fatalf("request after panic: status %d, want 200", code)
	}
	if got := srv.stats().Panics; got != 1 {
		t.Fatalf("stats.Panics = %d, want 1", got)
	}
}

// TestDeadlinePartial asks for a deadline shorter than the strategy
// needs: the response carries the best-so-far placement with Partial
// set, and the partial result is NOT written to the persistent cache.
func TestDeadlinePartial(t *testing.T) {
	blocker := func(s *racetrack.Sequence, q int, opts racetrack.StrategyOptions) (*racetrack.Placement, int64, error) {
		p, c, err := placement.Place(placement.StrategyDMAOFU, s, q, placement.Options{Capacity: opts.Capacity})
		if err != nil {
			return nil, 0, err
		}
		<-opts.Context.Done() // hold the best-so-far until the deadline
		return p, c, opts.Context.Err()
	}
	cache, err := diskcache.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	_, ts := newTestServer(t, Config{Cache: cache},
		racetrack.WithStrategy("blocker", blocker))

	for round := 0; round < 2; round++ {
		code, _, pr, _ := post(t, ts.URL, placeBody("a b a b c a c a", "blocker", `,"deadline_ms":100`))
		if code != http.StatusOK {
			t.Fatalf("round %d: status %d, want 200 with partial result", round, code)
		}
		if !pr.Partial {
			t.Fatalf("round %d: response not marked partial: %+v", round, pr)
		}
		if pr.Cached {
			t.Fatalf("round %d: partial result was served from cache — partials must not be cached", round)
		}
		if pr.Shifts <= 0 || len(pr.Placement) == 0 {
			t.Fatalf("round %d: partial without a usable placement: %+v", round, pr)
		}
	}
	if st := cache.Stats(); st.Writes != 0 {
		t.Fatalf("cache writes = %d, want 0 (partials are not durable)", st.Writes)
	}
}

// TestCacheRoundTripThroughServer pins the warm path: the second
// identical request is served from the persistent cache with the same
// result.
func TestCacheRoundTripThroughServer(t *testing.T) {
	cache, err := diskcache.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	_, ts := newTestServer(t, Config{Cache: cache})

	body := placeBody("a b a b c a c a d d a", "", "")
	code, _, first, _ := post(t, ts.URL, body)
	if code != http.StatusOK || first.Cached {
		t.Fatalf("first request: code=%d cached=%v, want cold 200", code, first.Cached)
	}
	code, _, second, _ := post(t, ts.URL, body)
	if code != http.StatusOK || !second.Cached {
		t.Fatalf("second request: code=%d cached=%v, want warm 200", code, second.Cached)
	}
	if second.Shifts != first.Shifts || second.Fingerprint != first.Fingerprint {
		t.Fatalf("cache served a different result: %+v vs %+v", second, first)
	}
}

// TestObjectiveCacheIdentity pins the cost objective as cache key
// material: a layout cached under one objective must not answer a
// request for another (the response would be missing or carrying the
// wrong cost dimensions), equivalent specs must share one entry, and
// priced hits must carry the same cost a cold compute produces.
func TestObjectiveCacheIdentity(t *testing.T) {
	cache, err := diskcache.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	_, ts := newTestServer(t, Config{Cache: cache})
	trace := "a b a b c a c a d d a"

	code, _, plain, _ := post(t, ts.URL, placeBody(trace, "", ""))
	if code != http.StatusOK || plain.Cached || plain.Cost != nil {
		t.Fatalf("cold unpriced request: code=%d %+v", code, plain)
	}
	// Same trace, different objective: the unpriced entry must not be
	// served — this request needs a cost the entry never had.
	code, _, priced, _ := post(t, ts.URL, placeBody(trace, "", `,"objective":"energy"`))
	if code != http.StatusOK || priced.Cached {
		t.Fatalf("objective change served a stale cache entry: code=%d %+v", code, priced)
	}
	if priced.Cost == nil || priced.Cost.Objective != "energy" || priced.Cost.Scalar <= 0 {
		t.Fatalf("priced response without cost: %+v", priced.Cost)
	}
	if priced.Shifts != plain.Shifts {
		t.Fatalf("objective changed the placement: %d vs %d shifts", priced.Shifts, plain.Shifts)
	}
	// Same objective again: now warm, and the re-priced hit must match
	// the cold compute bit for bit.
	code, _, warm, _ := post(t, ts.URL, placeBody(trace, "", `,"objective":"energy"`))
	if code != http.StatusOK || !warm.Cached {
		t.Fatalf("identical priced request missed the cache: code=%d %+v", code, warm)
	}
	if warm.Cost == nil || *warm.Cost != *priced.Cost {
		t.Fatalf("cache hit re-priced differently: %+v vs %+v", warm.Cost, priced.Cost)
	}
	// Canonicalization: "faulty:0.50" and "faulty:0.5" are one work item.
	code, _, f1, _ := post(t, ts.URL, placeBody(trace, "", `,"objective":"faulty:0.50"`))
	if code != http.StatusOK || f1.Cached {
		t.Fatalf("cold faulty request: code=%d %+v", code, f1)
	}
	code, _, f2, _ := post(t, ts.URL, placeBody(trace, "", `,"objective":"faulty:0.5"`))
	if code != http.StatusOK || !f2.Cached {
		t.Fatalf("equivalent faulty spec missed the cache: code=%d %+v", code, f2)
	}
	if f2.Cost == nil || f2.Cost.Objective != "faulty:0.5" || *f2.Cost != *f1.Cost {
		t.Fatalf("canonicalized specs priced differently: %+v vs %+v", f2.Cost, f1.Cost)
	}
}

// TestDrain verifies graceful shutdown: draining refuses new work with
// 503 + Retry-After, lets the in-flight request finish, and Drain
// returns once idle.
func TestDrain(t *testing.T) {
	srv, ts := newTestServer(t, Config{
		MaxConcurrent: 2,
		Spin:          200 * time.Millisecond,
		RetryAfter:    time.Second,
	})

	type result struct {
		code int
		pr   *rtmclient.PlaceResponse
	}
	inflight := make(chan result, 1)
	go func() {
		code, _, pr, _ := post(t, ts.URL, placeBody("a b a b inflight", "", ""))
		inflight <- result{code, pr}
	}()
	time.Sleep(50 * time.Millisecond) // let it get admitted
	srv.BeginDrain()

	code, hdr, _, _ := post(t, ts.URL, placeBody("a b a b late", "", ""))
	if code != http.StatusServiceUnavailable {
		t.Fatalf("request during drain: status %d, want 503", code)
	}
	if hdr.Get("Retry-After") == "" {
		t.Fatal("drain rejection without Retry-After")
	}
	if hres, err := http.Get(ts.URL + "/healthz"); err != nil || hres.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("healthz during drain: %v %v, want 503", hres, err)
	}

	got := <-inflight
	if got.code != http.StatusOK {
		t.Fatalf("in-flight request during drain: status %d, want 200 (drain must not kill it)", got.code)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Drain(ctx); err != nil {
		t.Fatalf("Drain: %v", err)
	}
}

// TestBadRequests pins the untrusted boundary: malformed bodies are 4xx
// client errors, never 500s and never panics.
func TestBadRequests(t *testing.T) {
	srv, ts := newTestServer(t, Config{})
	cases := []struct {
		name, body string
	}{
		{"empty", ``},
		{"not json", `{"trace"`},
		{"wrong type", `{"trace":42}`},
		{"unknown field", `{"trace":"a b","nope":1}`},
		{"trailing data", `{"trace":"a b"} extra`},
		{"empty trace", `{"trace":""}`},
		{"negative dbcs", `{"trace":"a b","dbcs":-1}`},
		{"huge dbcs", `{"trace":"a b","dbcs":1000000}`},
		{"negative deadline", `{"trace":"a b","deadline_ms":-5}`},
		{"unknown strategy", `{"trace":"a b","strategy":"no-such"}`},
		{"unknown objective", `{"trace":"a b","objective":"watts"}`},
		{"fault rate 1", `{"trace":"a b","objective":"faulty:1"}`},
		{"objective without Table I row", `{"trace":"a b","dbcs":3,"objective":"energy"}`},
	}
	for _, tc := range cases {
		code, _, _, er := post(t, ts.URL, tc.body)
		if tc.name == "unknown strategy" {
			// Resolved at placement time, not decode time: an internal
			// error class is acceptable, a panic is not.
			if code != http.StatusBadRequest && code != http.StatusInternalServerError {
				t.Errorf("%s: status %d", tc.name, code)
			}
			continue
		}
		if code != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", tc.name, code)
		}
		if er == nil || er.Error == "" {
			t.Errorf("%s: missing error body", tc.name)
		}
	}
	if res, err := http.Get(ts.URL + "/v1/place"); err != nil || res.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /v1/place: %v %v, want 405", res, err)
	}
	if got := srv.stats().Panics; got != 0 {
		t.Fatalf("bad requests caused %d panics", got)
	}
}

// TestStatz sanity-checks the observability endpoint.
func TestStatz(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	post(t, ts.URL, placeBody("a b a b", "", ""))
	res, err := http.Get(ts.URL + "/statz")
	if err != nil {
		t.Fatal(err)
	}
	defer res.Body.Close()
	var st Stats
	if err := json.NewDecoder(res.Body).Decode(&st); err != nil {
		t.Fatalf("decoding statz: %v", err)
	}
	if st.Requests < 1 || st.OK < 1 {
		t.Fatalf("statz after one request: %+v", st)
	}
}
