package server

import (
	"context"
	"fmt"
	"sync"
)

// Admission control: the server accepts work up to a fixed concurrency,
// queues a bounded number of requests beyond that, and sheds the rest
// immediately — an overloaded server answers "try later" in
// microseconds instead of queuing unboundedly until it OOMs or times
// everything out. Per-tenant caps bound how much of the server one
// tenant can hold (running plus queued), so a single flooding client
// degrades itself, not its neighbors.

// shedError reports a load-shedding decision: the request was never
// admitted and the client should retry after backing off (HTTP 429 +
// Retry-After).
type shedError struct{ reason string }

func (e *shedError) Error() string { return "overloaded: " + e.reason }

// admission is the bounded work queue. Slot handoff is a channel
// semaphore — waiters are woken in no particular order, which is fine
// for a shedding server (fairness comes from the bounded queue: nobody
// waits behind more than maxQueue requests).
type admission struct {
	slots    chan struct{}
	maxQueue int

	mu        sync.Mutex
	queued    int
	perTenant map[string]int // running + queued, per tenant
	tenantCap int
}

func newAdmission(maxConcurrent, maxQueue, tenantCap int) *admission {
	return &admission{
		slots:     make(chan struct{}, maxConcurrent),
		maxQueue:  maxQueue,
		perTenant: make(map[string]int),
		tenantCap: tenantCap,
	}
}

// admit blocks until the request holds a work slot, the bounded queue
// rejects it (a *shedError — shed immediately, no waiting), or the
// context expires while queued. On success the returned release — safe
// to call more than once — must be called when the work finishes.
func (a *admission) admit(ctx context.Context, tenant string) (release func(), err error) {
	a.mu.Lock()
	if a.tenantCap > 0 && a.perTenant[tenant] >= a.tenantCap {
		a.mu.Unlock()
		return nil, &shedError{fmt.Sprintf("tenant %q at its concurrency cap (%d)", tenant, a.tenantCap)}
	}
	// Fast path: a free slot means no queuing at all.
	select {
	case a.slots <- struct{}{}:
		a.perTenant[tenant]++
		a.mu.Unlock()
		return a.releaser(tenant), nil
	default:
	}
	if a.queued >= a.maxQueue {
		a.mu.Unlock()
		return nil, &shedError{fmt.Sprintf("admission queue full (%d waiting)", a.maxQueue)}
	}
	a.queued++
	a.perTenant[tenant]++
	a.mu.Unlock()

	select {
	case a.slots <- struct{}{}:
		a.mu.Lock()
		a.queued--
		a.mu.Unlock()
		return a.releaser(tenant), nil
	case <-ctx.Done():
		a.mu.Lock()
		a.queued--
		a.dropTenant(tenant)
		a.mu.Unlock()
		return nil, ctx.Err()
	}
}

func (a *admission) releaser(tenant string) func() {
	var once sync.Once
	return func() {
		once.Do(func() {
			<-a.slots
			a.mu.Lock()
			a.dropTenant(tenant)
			a.mu.Unlock()
		})
	}
}

// dropTenant decrements a tenant's count, deleting the map entry at
// zero so the accounting map stays bounded by live tenants.
func (a *admission) dropTenant(tenant string) {
	if a.perTenant[tenant]--; a.perTenant[tenant] <= 0 {
		delete(a.perTenant, tenant)
	}
}

// load reports the current (running, queued) counts.
func (a *admission) load() (running, queued int) {
	a.mu.Lock()
	defer a.mu.Unlock()
	return len(a.slots), a.queued
}
