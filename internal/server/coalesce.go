package server

import (
	"context"
	"sync"

	"repro/rtmclient"
)

// Request coalescing (singleflight): identical in-flight requests —
// same trace fingerprint, same effective options — share one kernel
// build and one placement. Unlike the classic singleflight, the shared
// computation is NOT bound to its first caller's lifetime: it runs
// under its own context and is cancelled only when every waiter has
// gone, so a leader disconnecting mid-search does not fail the
// followers, and a flight nobody is left waiting for stops burning a
// worker slot. Errors (a shed, a panic converted to an error) propagate
// to every waiter of the flight.

// flight is one in-progress shared computation.
type flight struct {
	done   chan struct{}
	cancel context.CancelFunc
	// res/err are written once before done is closed; the close is the
	// happens-before edge for readers.
	res *rtmclient.PlaceResponse
	err error

	waiters int
}

// flightGroup coalesces work by key.
type flightGroup struct {
	//rtmlint:ctxcheck-ok documented coalescing-flight exception (DESIGN.md §13): flights outlive any single waiter by design
	base context.Context // server lifetime: drains cancel outstanding flights

	mu      sync.Mutex
	flights map[string]*flight
	wg      sync.WaitGroup // running flight goroutines (drain waits on it)
}

func newFlightGroup(base context.Context) *flightGroup {
	return &flightGroup{base: base, flights: make(map[string]*flight)}
}

// do returns the result of the flight for key, starting it with fn if
// none is in progress. shared reports that an existing flight was
// joined. The caller's ctx bounds only the caller's wait: on expiry the
// caller leaves with ctx.Err() and the flight keeps running for the
// remaining waiters — unless the caller was the last one, in which case
// the flight's context is cancelled and the search returns best-so-far
// to nobody.
func (g *flightGroup) do(ctx context.Context, key string, fn func(context.Context) (*rtmclient.PlaceResponse, error)) (res *rtmclient.PlaceResponse, err error, shared bool) {
	g.mu.Lock()
	f, ok := g.flights[key]
	if !ok {
		fctx, cancel := context.WithCancel(g.base)
		f = &flight{done: make(chan struct{}), cancel: cancel}
		g.flights[key] = f
		g.wg.Add(1)
		go func() {
			defer g.wg.Done()
			f.res, f.err = fn(fctx)
			g.mu.Lock()
			// Stop matching new arrivals before signalling: a waiter
			// joining after completion would otherwise miss the result's
			// lifetime guarantees.
			if g.flights[key] == f {
				delete(g.flights, key)
			}
			g.mu.Unlock()
			close(f.done)
			cancel()
		}()
	}
	f.waiters++
	g.mu.Unlock()

	select {
	case <-f.done:
		g.mu.Lock()
		f.waiters--
		g.mu.Unlock()
		return f.res, f.err, ok
	case <-ctx.Done():
		g.mu.Lock()
		f.waiters--
		last := f.waiters == 0
		if last && g.flights[key] == f {
			// Nobody is waiting anymore: let a future identical request
			// start fresh instead of joining an abandoned flight.
			delete(g.flights, key)
		}
		g.mu.Unlock()
		if last {
			f.cancel()
		}
		return nil, ctx.Err(), ok
	}
}

// wait blocks until every running flight goroutine has returned. Only
// meaningful once no new flights can start (the drain gate has closed).
func (g *flightGroup) wait() { g.wg.Wait() }
