package diskcache

import (
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

func testEntry() *Entry {
	return &Entry{
		Key:    Key{Fingerprint: 0xdeadbeefcafe, Strategy: "DMA-OFU", DBCs: 4, Capacity: 64, Ports: 1},
		Shifts: 1234,
		PerDBC: []int64{400, 400, 234, 200},
		DBC:    [][]int{{0, 2}, {1}, {3, 4, 5}, {}},
	}
}

func TestRoundTrip(t *testing.T) {
	c, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	e := testEntry()
	if _, ok := c.Get(e.Key); ok {
		t.Fatal("hit on an empty cache")
	}
	if err := c.Put(e); err != nil {
		t.Fatal(err)
	}
	got, ok := c.Get(e.Key)
	if !ok {
		t.Fatal("miss after Put")
	}
	if !reflect.DeepEqual(got, e) {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, e)
	}
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Writes != 1 {
		t.Fatalf("stats = %+v, want 1 hit / 1 miss / 1 write", st)
	}
}

// TestObjectiveKeysSeparateEntries pins the objective as key material:
// entries stored under one objective are invisible to every other (a
// stale layout must never answer a request priced differently), and
// distinct objectives coexist as distinct files.
func TestObjectiveKeysSeparateEntries(t *testing.T) {
	c, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	plain := testEntry()
	energy := testEntry()
	energy.Key.Objective = "energy"
	energy.Shifts = 999
	if err := c.Put(plain); err != nil {
		t.Fatal(err)
	}
	if err := c.Put(energy); err != nil {
		t.Fatal(err)
	}
	for _, obj := range []string{"runtime", "faulty:0.01"} {
		k := plain.Key
		k.Objective = obj
		if _, ok := c.Get(k); ok {
			t.Fatalf("objective %q served an entry stored under another objective", obj)
		}
	}
	if got, ok := c.Get(plain.Key); !ok || got.Shifts != plain.Shifts {
		t.Fatalf("unpriced entry lost: ok=%v %+v", ok, got)
	}
	if got, ok := c.Get(energy.Key); !ok || got.Shifts != energy.Shifts {
		t.Fatalf("energy entry lost: ok=%v %+v", ok, got)
	}
}

func TestReopenSurvives(t *testing.T) {
	dir := t.TempDir()
	c, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	e := testEntry()
	if err := c.Put(e); err != nil {
		t.Fatal(err)
	}
	c2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if got, ok := c2.Get(e.Key); !ok || got.Shifts != e.Shifts {
		t.Fatalf("entry did not survive reopen (ok=%v)", ok)
	}
}

// entryFile locates the single .rtpc file in the cache directory.
func entryFile(t *testing.T, dir string) string {
	t.Helper()
	m, err := filepath.Glob(filepath.Join(dir, "*.rtpc"))
	if err != nil || len(m) != 1 {
		t.Fatalf("want exactly one entry file, got %v (err %v)", m, err)
	}
	return m[0]
}

// corrupt tests: a damaged entry is a miss that quarantines the file,
// and a subsequent Put rebuilds it — corruption is never fatal and
// never visible as a wrong answer.
func TestCorruptEntryQuarantinedAndRebuilt(t *testing.T) {
	dir := t.TempDir()
	c, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	e := testEntry()
	if err := c.Put(e); err != nil {
		t.Fatal(err)
	}
	path := entryFile(t, dir)
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)/2] ^= 0xff // flip a payload byte: the checksum must catch it
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	if _, ok := c.Get(e.Key); ok {
		t.Fatal("corrupt entry served as a hit")
	}
	if st := c.Stats(); st.Quarantined != 1 {
		t.Fatalf("Quarantined = %d, want 1", st.Quarantined)
	}
	if bad, _ := filepath.Glob(filepath.Join(dir, "*.bad")); len(bad) != 1 {
		t.Fatalf("want one quarantined .bad file, got %v", bad)
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Fatalf("corrupt entry still at %s (err %v)", path, err)
	}

	// Rebuild: Put again, Get serves the fresh entry.
	if err := c.Put(e); err != nil {
		t.Fatal(err)
	}
	if got, ok := c.Get(e.Key); !ok || got.Shifts != e.Shifts {
		t.Fatalf("rebuild after quarantine failed (ok=%v)", ok)
	}
}

func TestTruncatedEntryQuarantined(t *testing.T) {
	dir := t.TempDir()
	c, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	e := testEntry()
	if err := c.Put(e); err != nil {
		t.Fatal(err)
	}
	path := entryFile(t, dir)
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for cut := 0; cut < len(raw); cut += 7 {
		if err := os.WriteFile(path, raw[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		if _, ok := c.Get(e.Key); ok {
			t.Fatalf("truncation at %d bytes served as a hit", cut)
		}
		// Clear the quarantine file so the next iteration's rename can't
		// collide, and restore the entry for the next cut.
		bad, _ := filepath.Glob(filepath.Join(dir, "*.bad"))
		for _, b := range bad {
			os.Remove(b)
		}
	}
	if st := c.Stats(); st.Quarantined == 0 {
		t.Fatal("no truncation was quarantined")
	}
}

// TestWrongKeyQuarantined plants a valid entry under another key's
// filename (what a filename-hash collision or a mangled directory looks
// like): the load verifies the embedded key and refuses the entry.
func TestWrongKeyQuarantined(t *testing.T) {
	dir := t.TempDir()
	c, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	e := testEntry()
	if err := c.Put(e); err != nil {
		t.Fatal(err)
	}
	other := e.Key
	other.Fingerprint++
	if err := os.Rename(entryFile(t, dir), c.path(other)); err != nil {
		t.Fatal(err)
	}
	if _, ok := c.Get(other); ok {
		t.Fatal("entry with mismatched key served as a hit")
	}
	if st := c.Stats(); st.Quarantined != 1 {
		t.Fatalf("Quarantined = %d, want 1", st.Quarantined)
	}
}

// TestTempSweep simulates a crash mid-write: the leftover temp file is
// swept on Open and never becomes a visible entry.
func TestTempSweep(t *testing.T) {
	dir := t.TempDir()
	tmp := filepath.Join(dir, "0123456789abcdef.rtpc.12345.tmp")
	if err := os.WriteFile(tmp, []byte("torn write"), 0o644); err != nil {
		t.Fatal(err)
	}
	c, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if st := c.Stats(); st.SweptTemps != 1 {
		t.Fatalf("SweptTemps = %d, want 1", st.SweptTemps)
	}
	if _, err := os.Stat(tmp); !os.IsNotExist(err) {
		t.Fatalf("temp file survived the sweep (err %v)", err)
	}
}
