// Package diskcache is the placement service's crash-safe persistent
// result cache: finished placements keyed by the trace's content
// fingerprint plus the placement options, stored one entry per file so
// restarts and horizontal replicas start warm.
//
// The robustness discipline mirrors the binary trace format's
// (internal/trace/binfmt.go): every entry carries a magic/version
// header, its full key material, and a trailing FNV-1a checksum over
// everything before the trailer. Writes are atomic — encode to a
// temporary file in the cache directory, sync, rename — so a crash
// mid-write leaves at worst a stray temp file (swept on Open), never a
// torn visible entry. Loads verify the trailer AND the key material; a
// corrupt, truncated or mismatched entry is quarantined (renamed aside)
// and reported as a miss, so the caller rebuilds it — corruption is
// never fatal and never serves a wrong placement.
package diskcache

import (
	"encoding/binary"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
)

// Key identifies one cached placement: the sequence's content
// fingerprint (trace.Sequence.Fingerprint) and every option that
// changes the result.
type Key struct {
	// Fingerprint is the trace's 64-bit content fingerprint.
	Fingerprint uint64
	// Strategy is the placement strategy name.
	Strategy string
	// Objective is the canonical cost-objective spec the result was
	// priced under ("" = no pricing). The objective never changes the
	// layout, but it is key material anyway: a cached answer must carry
	// the cost dimensions the request asked for, so "energy" must not
	// serve a hit stored under "" or "faulty:0.01".
	Objective string
	// DBCs, Capacity and Ports are the placement options that shape the
	// result (PlaceOptions.DBCs/Capacity/Ports).
	DBCs, Capacity, Ports int
}

// Entry is one cached placement result.
type Entry struct {
	Key Key
	// Shifts is the placement's total attributed shift cost; PerDBC
	// attributes it per DBC.
	Shifts int64
	PerDBC []int64
	// DBC is the placement layout: DBC[i][k] is the variable at offset k
	// of DBC i (placement.Placement.DBC).
	DBC [][]int
}

// Stats counts cache activity since Open.
type Stats struct {
	// Hits and Misses count Get outcomes; a quarantined entry counts as
	// a miss too.
	Hits, Misses int64
	// Writes counts successful Puts.
	Writes int64
	// Quarantined counts entries renamed aside because they failed
	// verification (corrupt, truncated, or keyed to different content).
	Quarantined int64
	// SweptTemps counts crash-leftover temporary files removed by Open.
	SweptTemps int64
}

// Cache is a directory of verified placement entries. Safe for
// concurrent use; writes are atomic and synchronous (an entry is
// durable when Put returns), so there is nothing to lose on a crash
// beyond the entry being written at that instant.
type Cache struct {
	dir string

	mu    sync.Mutex
	stats Stats
}

// Open prepares the cache directory (creating it if needed) and sweeps
// temporary files left behind by a crash mid-write — an interrupted
// atomic write never produces a visible entry, only a stray temp.
func Open(dir string) (*Cache, error) {
	if dir == "" {
		return nil, fmt.Errorf("diskcache: empty cache directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("diskcache: %w", err)
	}
	c := &Cache{dir: dir}
	names, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("diskcache: %w", err)
	}
	for _, de := range names {
		if strings.Contains(de.Name(), tmpMarker) {
			if os.Remove(filepath.Join(dir, de.Name())) == nil {
				c.stats.SweptTemps++
			}
		}
	}
	return c, nil
}

// Dir returns the cache directory.
func (c *Cache) Dir() string { return c.dir }

// Stats returns a snapshot of the activity counters.
func (c *Cache) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}

// Get loads and verifies the entry for k. It returns (nil, false) on a
// miss — including the quarantine path: an entry that exists but fails
// any verification step (bad magic/version, truncation, checksum
// mismatch, key material not equal to k) is renamed aside and treated
// as a miss so the caller rebuilds it. Get never fails the request over
// a bad cache file.
func (c *Cache) Get(k Key) (*Entry, bool) {
	path := c.path(k)
	raw, err := os.ReadFile(path)
	if err != nil {
		c.count(func(s *Stats) { s.Misses++ })
		return nil, false
	}
	e, derr := decodeEntry(raw)
	if derr != nil || e.Key != k {
		c.quarantine(path)
		c.count(func(s *Stats) { s.Misses++; s.Quarantined++ })
		return nil, false
	}
	c.count(func(s *Stats) { s.Hits++ })
	return e, true
}

// Put durably stores the entry: encode, write to a temp file in the
// cache directory, sync, rename over the final name. Concurrent Puts of
// the same key are safe (last rename wins; both payloads verify).
func (c *Cache) Put(e *Entry) error {
	if e == nil {
		return fmt.Errorf("diskcache: Put(nil)")
	}
	raw := encodeEntry(e)
	path := c.path(e.Key)
	tmp, err := os.CreateTemp(c.dir, filepath.Base(path)+tmpMarker+"*")
	if err != nil {
		return fmt.Errorf("diskcache: %w", err)
	}
	tmpName := tmp.Name()
	if _, err := tmp.Write(raw); err == nil {
		err = tmp.Sync()
	}
	if cerr := tmp.Close(); err == nil {
		err = cerr
	}
	if err == nil {
		err = os.Rename(tmpName, path)
	}
	if err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("diskcache: writing %s: %w", filepath.Base(path), err)
	}
	c.count(func(s *Stats) { s.Writes++ })
	return nil
}

// Flush is the drain hook: writes are synchronous, so every Put that
// returned is already durable and Flush has nothing buffered to push.
// It exists so the serving front-end's shutdown sequence (stop
// accepting, finish in-flight, flush cache) reads the same whether or
// not a future cache buffers writes.
func (c *Cache) Flush() error { return nil }

const tmpMarker = ".tmp"

// quarantine renames a failed entry aside (".bad"); if even the rename
// fails the entry is removed — either way it stops shadowing rebuilds.
func (c *Cache) quarantine(path string) {
	if os.Rename(path, path+".bad") != nil {
		os.Remove(path)
	}
}

func (c *Cache) count(f func(*Stats)) {
	c.mu.Lock()
	f(&c.stats)
	c.mu.Unlock()
}

// path names k's entry file: an FNV-1a hash over the full key material,
// so filenames are uniform and filesystem-safe regardless of strategy
// names. Key equality is re-verified on load; a filename hash collision
// therefore costs a rebuild, never a wrong result.
func (c *Cache) path(k Key) string {
	h := uint64(fnvOffset64)
	mix := func(v uint64) {
		for i := 0; i < 8; i++ {
			h ^= v & 0xff
			h *= fnvPrime64
			v >>= 8
		}
	}
	mix(k.Fingerprint)
	mix(uint64(len(k.Strategy)))
	for i := 0; i < len(k.Strategy); i++ {
		h ^= uint64(k.Strategy[i])
		h *= fnvPrime64
	}
	mix(uint64(len(k.Objective)))
	for i := 0; i < len(k.Objective); i++ {
		h ^= uint64(k.Objective[i])
		h *= fnvPrime64
	}
	mix(uint64(int64(k.DBCs)))
	mix(uint64(int64(k.Capacity)))
	mix(uint64(int64(k.Ports)))
	return filepath.Join(c.dir, fmt.Sprintf("%016x.rtpc", h))
}

// Entry encoding. Layout (little-endian, "uvarint"/"varint" are
// encoding/binary's):
//
//	Entry := "RTPC" | uint16 version (= 2)
//	         | uint64 fingerprint
//	         | uvarint len(strategy) | strategy bytes
//	         | uvarint len(objective) | objective bytes
//	         | uvarint dbcs | uvarint capacity | uvarint ports
//	         | varint shifts
//	         | uvarint len(perDBC) | len × varint
//	         | uvarint numDBCs | numDBCs × (uvarint len | len × uvarint var)
//	         | uint64 FNV-1a over all preceding bytes
const (
	entryMagic = "RTPC"
	// entryVersion 2 added the objective to the key material; version 1
	// entries (no objective) decode as unsupported and are rebuilt — a
	// stale pre-objective entry must never answer a priced request.
	entryVersion = 2

	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211

	// Sanity caps: what a corrupt or adversarial header can make the
	// decoder allocate before the checksum proves the payload. Far above
	// any real placement, far below anything dangerous.
	maxStrategyLen = 1 << 10
	maxListLen     = 1 << 26
)

func encodeEntry(e *Entry) []byte {
	var buf []byte
	buf = append(buf, entryMagic...)
	buf = binary.LittleEndian.AppendUint16(buf, entryVersion)
	buf = binary.LittleEndian.AppendUint64(buf, e.Key.Fingerprint)
	buf = binary.AppendUvarint(buf, uint64(len(e.Key.Strategy)))
	buf = append(buf, e.Key.Strategy...)
	buf = binary.AppendUvarint(buf, uint64(len(e.Key.Objective)))
	buf = append(buf, e.Key.Objective...)
	buf = binary.AppendUvarint(buf, uint64(e.Key.DBCs))
	buf = binary.AppendUvarint(buf, uint64(e.Key.Capacity))
	buf = binary.AppendUvarint(buf, uint64(e.Key.Ports))
	buf = binary.AppendVarint(buf, e.Shifts)
	buf = binary.AppendUvarint(buf, uint64(len(e.PerDBC)))
	for _, v := range e.PerDBC {
		buf = binary.AppendVarint(buf, v)
	}
	buf = binary.AppendUvarint(buf, uint64(len(e.DBC)))
	for _, d := range e.DBC {
		buf = binary.AppendUvarint(buf, uint64(len(d)))
		for _, v := range d {
			buf = binary.AppendUvarint(buf, uint64(v))
		}
	}
	return binary.LittleEndian.AppendUint64(buf, checksum(buf))
}

func checksum(b []byte) uint64 {
	h := uint64(fnvOffset64)
	for _, c := range b {
		h ^= uint64(c)
		h *= fnvPrime64
	}
	return h
}

// decoder reads the entry payload with a running error; every read is
// bounds-checked so truncated input yields an error, never a panic.
type decoder struct {
	b   []byte
	off int
	err error
}

func (d *decoder) fail(format string, args ...any) {
	if d.err == nil {
		d.err = fmt.Errorf(format, args...)
	}
}

func (d *decoder) bytes(n int) []byte {
	if d.err != nil {
		return nil
	}
	if n < 0 || d.off+n > len(d.b) {
		d.fail("diskcache: truncated entry")
		return nil
	}
	p := d.b[d.off : d.off+n]
	d.off += n
	return p
}

func (d *decoder) u16() uint16 {
	if p := d.bytes(2); p != nil {
		return binary.LittleEndian.Uint16(p)
	}
	return 0
}

func (d *decoder) u64() uint64 {
	if p := d.bytes(8); p != nil {
		return binary.LittleEndian.Uint64(p)
	}
	return 0
}

func (d *decoder) uvarint(cap uint64, what string) uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.b[d.off:])
	if n <= 0 {
		d.fail("diskcache: truncated entry at %s", what)
		return 0
	}
	d.off += n
	if v > cap {
		d.fail("diskcache: implausible %s %d", what, v)
		return 0
	}
	return v
}

func (d *decoder) varint(what string) int64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Varint(d.b[d.off:])
	if n <= 0 {
		d.fail("diskcache: truncated entry at %s", what)
		return 0
	}
	d.off += n
	return v
}

func decodeEntry(raw []byte) (*Entry, error) {
	trailer := len(raw) - 8
	if trailer < len(entryMagic)+2 {
		return nil, fmt.Errorf("diskcache: entry too short (%d bytes)", len(raw))
	}
	if string(raw[:len(entryMagic)]) != entryMagic {
		return nil, fmt.Errorf("diskcache: bad magic")
	}
	if got := binary.LittleEndian.Uint64(raw[trailer:]); got != checksum(raw[:trailer]) {
		return nil, fmt.Errorf("diskcache: checksum mismatch")
	}
	d := &decoder{b: raw[:trailer], off: len(entryMagic)}
	if v := d.u16(); d.err == nil && v != entryVersion {
		return nil, fmt.Errorf("diskcache: unsupported version %d", v)
	}
	e := &Entry{}
	e.Key.Fingerprint = d.u64()
	e.Key.Strategy = string(d.bytes(int(d.uvarint(maxStrategyLen, "strategy length"))))
	e.Key.Objective = string(d.bytes(int(d.uvarint(maxStrategyLen, "objective length"))))
	e.Key.DBCs = int(d.uvarint(maxListLen, "dbcs"))
	e.Key.Capacity = int(d.uvarint(maxListLen, "capacity"))
	e.Key.Ports = int(d.uvarint(maxListLen, "ports"))
	e.Shifts = d.varint("shifts")
	if n := int(d.uvarint(maxListLen, "perDBC length")); d.err == nil {
		e.PerDBC = make([]int64, n)
		for i := range e.PerDBC {
			e.PerDBC[i] = d.varint("perDBC")
		}
	}
	if n := int(d.uvarint(maxListLen, "DBC count")); d.err == nil {
		e.DBC = make([][]int, n)
		for i := range e.DBC {
			m := int(d.uvarint(maxListLen, "DBC length"))
			if d.err != nil {
				break
			}
			e.DBC[i] = make([]int, m)
			for j := range e.DBC[i] {
				e.DBC[i][j] = int(d.uvarint(maxListLen, "variable"))
			}
		}
	}
	if d.err != nil {
		return nil, d.err
	}
	if d.off != trailer {
		return nil, fmt.Errorf("diskcache: %d trailing bytes", trailer-d.off)
	}
	return e, nil
}
