package energy

import (
	"math"
	"testing"
	"testing/quick"
)

func TestTableIComplete(t *testing.T) {
	rows := TableI()
	if len(rows) != 4 {
		t.Fatalf("TableI has %d rows, want 4", len(rows))
	}
	wantDomains := map[int]int{2: 512, 4: 256, 8: 128, 16: 64}
	for _, p := range rows {
		if wantDomains[p.DBCs] != p.DomainsPerDBC {
			t.Errorf("%d DBCs: domains %d, want %d", p.DBCs, p.DomainsPerDBC, wantDomains[p.DBCs])
		}
	}
}

func TestTableIVerbatimRows(t *testing.T) {
	// Spot-check the exact published values for the 2- and 16-DBC rows.
	p2, err := ForDBCs(2)
	if err != nil {
		t.Fatal(err)
	}
	if p2.LeakagePowerMW != 3.39 || p2.WriteEnergyPJ != 3.42 ||
		p2.ReadEnergyPJ != 2.26 || p2.ShiftEnergyPJ != 2.18 ||
		p2.ReadLatencyNS != 0.81 || p2.WriteLatencyNS != 1.08 ||
		p2.ShiftLatencyNS != 0.99 || p2.AreaMM2 != 0.0159 {
		t.Errorf("2-DBC row mismatch: %+v", p2)
	}
	p16, err := ForDBCs(16)
	if err != nil {
		t.Fatal(err)
	}
	if p16.LeakagePowerMW != 8.94 || p16.WriteEnergyPJ != 3.94 ||
		p16.ReadEnergyPJ != 2.54 || p16.ShiftEnergyPJ != 1.86 ||
		p16.ReadLatencyNS != 0.89 || p16.WriteLatencyNS != 1.20 ||
		p16.ShiftLatencyNS != 0.78 || p16.AreaMM2 != 0.0279 {
		t.Errorf("16-DBC row mismatch: %+v", p16)
	}
}

func TestTableITrends(t *testing.T) {
	// The published trends: with more DBCs, leakage power, read/write
	// energy, read/write latency and area all rise; shift energy and shift
	// latency fall (shorter tracks).
	rows := TableI()
	for i := 1; i < len(rows); i++ {
		a, b := rows[i-1], rows[i]
		if !(b.LeakagePowerMW > a.LeakagePowerMW) {
			t.Errorf("leakage should rise: %v -> %v", a.DBCs, b.DBCs)
		}
		if !(b.AreaMM2 > a.AreaMM2) {
			t.Errorf("area should rise: %v -> %v", a.DBCs, b.DBCs)
		}
		if !(b.ShiftEnergyPJ < a.ShiftEnergyPJ) {
			t.Errorf("shift energy should fall: %v -> %v", a.DBCs, b.DBCs)
		}
		if !(b.ShiftLatencyNS < a.ShiftLatencyNS) {
			t.Errorf("shift latency should fall: %v -> %v", a.DBCs, b.DBCs)
		}
	}
}

func TestForDBCsUnknown(t *testing.T) {
	if _, err := ForDBCs(7); err == nil {
		t.Error("ForDBCs(7) should fail")
	}
}

func TestLatencyAndEnergy(t *testing.T) {
	p, _ := ForDBCs(4)
	c := Counts{Reads: 10, Writes: 5, Shifts: 100}
	wantLat := 10*0.84 + 5*1.14 + 100*0.92
	if got := p.LatencyNS(c); math.Abs(got-wantLat) > 1e-9 {
		t.Errorf("latency = %v, want %v", got, wantLat)
	}
	b := p.Energy(c)
	wantRW := 10*2.39 + 5*3.65
	wantShift := 100 * 2.03
	wantLeak := 4.33 * wantLat
	if math.Abs(b.ReadWritePJ-wantRW) > 1e-9 {
		t.Errorf("rw energy = %v, want %v", b.ReadWritePJ, wantRW)
	}
	if math.Abs(b.ShiftPJ-wantShift) > 1e-9 {
		t.Errorf("shift energy = %v, want %v", b.ShiftPJ, wantShift)
	}
	if math.Abs(b.LeakagePJ-wantLeak) > 1e-9 {
		t.Errorf("leakage = %v, want %v", b.LeakagePJ, wantLeak)
	}
	if math.Abs(b.TotalPJ()-(wantRW+wantShift+wantLeak)) > 1e-9 {
		t.Errorf("total = %v", b.TotalPJ())
	}
}

// TestAccountingGoldenTableI pins the §IV-C formulas for one
// hand-computed small trace — 7 reads, 4 writes, 23 shifts (the event
// counts of replaying "a b! a c! b c a!"-style toy traces) — against
// every Table I row, with the expected values worked out by hand from
// the published constants:
//
//	runtime = 7·tR + 4·tW + 23·tS
//	dynamic = 7·eR + 4·eW + 23·eS
//	leakage = P_leak · runtime
func TestAccountingGoldenTableI(t *testing.T) {
	c := Counts{Reads: 7, Writes: 4, Shifts: 23}
	golden := []struct {
		dbcs                      int
		runtime, dynamic, leakage float64
	}{
		// 2 DBCs: 7·0.81 + 4·1.08 + 23·0.99 = 32.76 ns
		//         7·2.26 + 4·3.42 + 23·2.18 = 79.64 pJ; 3.39·32.76 = 111.0564 pJ
		{2, 32.76, 79.64, 111.0564},
		// 4 DBCs: 7·0.84 + 4·1.14 + 23·0.92 = 31.60 ns
		//         7·2.39 + 4·3.65 + 23·2.03 = 78.02 pJ; 4.33·31.60 = 136.828 pJ
		{4, 31.60, 78.02, 136.828},
		// 8 DBCs: 7·0.86 + 4·1.17 + 23·0.86 = 30.48 ns
		//         7·2.47 + 4·3.79 + 23·1.97 = 77.76 pJ; 6.56·30.48 = 199.9488 pJ
		{8, 30.48, 77.76, 199.9488},
		// 16 DBCs: 7·0.89 + 4·1.20 + 23·0.78 = 28.97 ns
		//          7·2.54 + 4·3.94 + 23·1.86 = 76.32 pJ; 8.94·28.97 = 258.9918 pJ
		{16, 28.97, 76.32, 258.9918},
	}
	for _, g := range golden {
		p, err := ForDBCs(g.dbcs)
		if err != nil {
			t.Fatal(err)
		}
		if got := p.LatencyNS(c); math.Abs(got-g.runtime) > 1e-9 {
			t.Errorf("%d DBCs: runtime %v ns, want %v", g.dbcs, got, g.runtime)
		}
		b := p.Energy(c)
		if got := b.ReadWritePJ + b.ShiftPJ; math.Abs(got-g.dynamic) > 1e-9 {
			t.Errorf("%d DBCs: dynamic %v pJ, want %v", g.dbcs, got, g.dynamic)
		}
		if math.Abs(b.LeakagePJ-g.leakage) > 1e-9 {
			t.Errorf("%d DBCs: leakage %v pJ, want %v", g.dbcs, b.LeakagePJ, g.leakage)
		}
	}
}

func TestCountsAdd(t *testing.T) {
	a := Counts{Reads: 1, Writes: 2, Shifts: 3}
	a.Add(Counts{Reads: 10, Writes: 20, Shifts: 30})
	if a.Reads != 11 || a.Writes != 22 || a.Shifts != 33 {
		t.Errorf("Add gave %+v", a)
	}
	if a.Accesses() != 33 {
		t.Errorf("Accesses = %d, want 33", a.Accesses())
	}
}

func TestBreakdownAdd(t *testing.T) {
	a := Breakdown{LeakagePJ: 1, ReadWritePJ: 2, ShiftPJ: 3}
	a.Add(Breakdown{LeakagePJ: 1, ReadWritePJ: 1, ShiftPJ: 1})
	if a.TotalPJ() != 9 {
		t.Errorf("TotalPJ = %v, want 9", a.TotalPJ())
	}
}

// Property: energy and latency are linear in the counts, monotone in
// shifts, and non-negative.
func TestEnergyLinearity(t *testing.T) {
	p, _ := ForDBCs(8)
	f := func(r, w, s uint16, k uint8) bool {
		c := Counts{Reads: int64(r), Writes: int64(w), Shifts: int64(s)}
		scale := int64(k%8) + 1
		scaled := Counts{Reads: c.Reads * scale, Writes: c.Writes * scale, Shifts: c.Shifts * scale}
		lat1 := p.LatencyNS(c)
		latK := p.LatencyNS(scaled)
		if math.Abs(latK-float64(scale)*lat1) > 1e-6*(1+latK) {
			return false
		}
		e1 := p.Energy(c).TotalPJ()
		eK := p.Energy(scaled).TotalPJ()
		if math.Abs(eK-float64(scale)*e1) > 1e-6*(1+eK) {
			return false
		}
		// Monotone in shifts.
		more := c
		more.Shifts++
		return p.Energy(more).TotalPJ() >= e1 && lat1 >= 0 && e1 >= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestParamsString(t *testing.T) {
	p, _ := ForDBCs(2)
	s := p.String()
	if len(s) == 0 {
		t.Error("empty String()")
	}
}
