// Package energy provides the latency, energy and area model of the RTM
// configurations evaluated in the paper. The numbers come from Table I
// ("Memory system parameters", 4 KiB RTM, 32 nm, 32 tracks/DBC), which the
// authors obtained from the DESTINY circuit simulator; they are embedded
// here verbatim since the paper itself consumes only these values.
//
// Accounting model (matching section IV-C of the paper):
//
//   - runtime  = reads*ReadLatency + writes*WriteLatency + shifts*ShiftLatency
//   - dynamic  = reads*ReadEnergy  + writes*WriteEnergy  + shifts*ShiftEnergy
//   - leakage  = LeakagePower * runtime
//
// so that shift reduction lowers both the shift energy directly and the
// leakage energy through the shorter runtime — the effect the paper calls
// out in Fig. 5.
package energy

import (
	"fmt"
	"sort"
)

// Params holds the Table I row for one iso-capacity RTM configuration.
type Params struct {
	// DBCs is the number of domain block clusters (2, 4, 8 or 16).
	DBCs int
	// DomainsPerDBC is the number of domains per DBC track.
	DomainsPerDBC int
	// LeakagePowerMW is the array leakage power in milliwatts.
	LeakagePowerMW float64
	// WriteEnergyPJ / ReadEnergyPJ / ShiftEnergyPJ are per-operation
	// dynamic energies in picojoules.
	WriteEnergyPJ float64
	ReadEnergyPJ  float64
	ShiftEnergyPJ float64
	// ReadLatencyNS / WriteLatencyNS / ShiftLatencyNS are per-operation
	// latencies in nanoseconds.
	ReadLatencyNS  float64
	WriteLatencyNS float64
	ShiftLatencyNS float64
	// AreaMM2 is the array area in square millimetres.
	AreaMM2 float64
}

// tableI reproduces Table I of the paper.
var tableI = []Params{
	{DBCs: 2, DomainsPerDBC: 512, LeakagePowerMW: 3.39, WriteEnergyPJ: 3.42, ReadEnergyPJ: 2.26, ShiftEnergyPJ: 2.18, ReadLatencyNS: 0.81, WriteLatencyNS: 1.08, ShiftLatencyNS: 0.99, AreaMM2: 0.0159},
	{DBCs: 4, DomainsPerDBC: 256, LeakagePowerMW: 4.33, WriteEnergyPJ: 3.65, ReadEnergyPJ: 2.39, ShiftEnergyPJ: 2.03, ReadLatencyNS: 0.84, WriteLatencyNS: 1.14, ShiftLatencyNS: 0.92, AreaMM2: 0.0186},
	{DBCs: 8, DomainsPerDBC: 128, LeakagePowerMW: 6.56, WriteEnergyPJ: 3.79, ReadEnergyPJ: 2.47, ShiftEnergyPJ: 1.97, ReadLatencyNS: 0.86, WriteLatencyNS: 1.17, ShiftLatencyNS: 0.86, AreaMM2: 0.0226},
	{DBCs: 16, DomainsPerDBC: 64, LeakagePowerMW: 8.94, WriteEnergyPJ: 3.94, ReadEnergyPJ: 2.54, ShiftEnergyPJ: 1.86, ReadLatencyNS: 0.89, WriteLatencyNS: 1.20, ShiftLatencyNS: 0.78, AreaMM2: 0.0279},
}

// TableI returns a copy of all Table I rows, ordered by DBC count.
func TableI() []Params {
	out := append([]Params(nil), tableI...)
	sort.Slice(out, func(i, j int) bool { return out[i].DBCs < out[j].DBCs })
	return out
}

// ForDBCs returns the Table I row for the given DBC count.
func ForDBCs(dbcs int) (Params, error) {
	for _, p := range tableI {
		if p.DBCs == dbcs {
			return p, nil
		}
	}
	return Params{}, fmt.Errorf("energy: no Table I row for %d DBCs (want 2, 4, 8 or 16)", dbcs)
}

// Counts are the event totals produced by replaying a trace.
type Counts struct {
	Reads  int64
	Writes int64
	Shifts int64
}

// Add accumulates other into c.
func (c *Counts) Add(other Counts) {
	c.Reads += other.Reads
	c.Writes += other.Writes
	c.Shifts += other.Shifts
}

// Accesses returns reads + writes.
func (c Counts) Accesses() int64 { return c.Reads + c.Writes }

// LatencyNS returns the total runtime in nanoseconds under the serialized
// access model used by the paper's trace-driven evaluation.
func (p Params) LatencyNS(c Counts) float64 {
	return float64(c.Reads)*p.ReadLatencyNS +
		float64(c.Writes)*p.WriteLatencyNS +
		float64(c.Shifts)*p.ShiftLatencyNS
}

// Breakdown splits total energy into the three components shown in Fig. 5.
// All values are picojoules.
type Breakdown struct {
	LeakagePJ   float64
	ReadWritePJ float64
	ShiftPJ     float64
}

// TotalPJ returns the sum of all components.
func (b Breakdown) TotalPJ() float64 { return b.LeakagePJ + b.ReadWritePJ + b.ShiftPJ }

// Add accumulates other into b.
func (b *Breakdown) Add(other Breakdown) {
	b.LeakagePJ += other.LeakagePJ
	b.ReadWritePJ += other.ReadWritePJ
	b.ShiftPJ += other.ShiftPJ
}

// Energy returns the full energy breakdown for the given event counts.
// Leakage integrates the leakage power over the runtime; conveniently,
// mW x ns = pJ, so no unit conversion factor is needed.
func (p Params) Energy(c Counts) Breakdown {
	return Breakdown{
		LeakagePJ:   p.LeakagePowerMW * p.LatencyNS(c),
		ReadWritePJ: float64(c.Reads)*p.ReadEnergyPJ + float64(c.Writes)*p.WriteEnergyPJ,
		ShiftPJ:     float64(c.Shifts) * p.ShiftEnergyPJ,
	}
}

// String renders the row in the Table I layout.
func (p Params) String() string {
	return fmt.Sprintf("%2d DBCs: %3d domains/DBC, leak %.2f mW, E(w/r/s) %.2f/%.2f/%.2f pJ, t(r/w/s) %.2f/%.2f/%.2f ns, area %.4f mm2",
		p.DBCs, p.DomainsPerDBC, p.LeakagePowerMW,
		p.WriteEnergyPJ, p.ReadEnergyPJ, p.ShiftEnergyPJ,
		p.ReadLatencyNS, p.WriteLatencyNS, p.ShiftLatencyNS, p.AreaMM2)
}
