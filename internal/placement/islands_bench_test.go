package placement

import (
	"context"
	"fmt"
	"testing"
)

// BenchmarkIslandGA measures the island model's wall-clock scaling at a
// fixed total search budget: islands=n runs totalGens/n generations on
// each of n islands with n workers, so every variant prices the same
// number of individuals end to end. On a multi-core machine islands=4
// should finish in roughly a quarter of islands=1's wall clock (the
// islands are the parallel axis; per-island evaluation is serial by
// design). The kernel is built once outside the timer, as the engine
// batch layer provides it in production.
func BenchmarkIslandGA(b *testing.B) {
	s, _, _ := twoOptBenchWorkload(b)
	kern := NewCostKernel(s)
	const totalGens = 16
	for _, islands := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("islands=%d", islands), func(b *testing.B) {
			cfg := quickGA(1)
			cfg.Mu, cfg.Lambda = 24, 24
			cfg.Generations = totalGens / islands
			cfg.Islands = islands
			cfg.Workers = islands
			cfg.MigrationEvery = 2
			cfg.Kernel = kern
			b.ResetTimer()
			var cost int64
			for i := 0; i < b.N; i++ {
				r, err := GA(s, 4, cfg)
				if err != nil {
					b.Fatal(err)
				}
				cost = r.Cost
			}
			b.ReportMetric(float64(cost), "shifts")
		})
	}
}

// BenchmarkPortfolio compares the concurrent bound-pruned race against
// sequentially placing every strategy with full pricing — the same
// portfolio, the same winner, so the delta is pure racing overhead
// versus pruning-plus-parallelism gain. The portfolio is the
// constructive heuristics plus DMA-2opt; the kernel is prebuilt and
// shared.
func BenchmarkPortfolio(b *testing.B) {
	s, _, _ := twoOptBenchWorkload(b)
	kern := NewCostKernel(s)
	ids := append(HeuristicStrategies(), StrategyDMATwoOpt)
	opts := Options{Kernel: kern}

	b.Run("race", func(b *testing.B) {
		var cost int64
		for i := 0; i < b.N; i++ {
			r, err := RacePortfolio(context.Background(), s, 4, PortfolioConfig{
				Strategies: ids, Workers: len(ids), Options: opts,
			})
			if err != nil {
				b.Fatal(err)
			}
			cost = r.Cost
		}
		b.ReportMetric(float64(cost), "shifts")
	})
	b.Run("sequential", func(b *testing.B) {
		var cost int64
		for i := 0; i < b.N; i++ {
			best := int64(-1)
			for _, id := range ids {
				_, c, err := Place(id, s, 4, opts)
				if err != nil {
					b.Fatal(err)
				}
				if best < 0 || c < best {
					best = c
				}
			}
			cost = best
		}
		b.ReportMetric(float64(cost), "shifts")
	})
}
