package placement

import (
	"fmt"

	"repro/internal/trace"
)

// This file implements the paper's stated future work (section VI):
// "explore placement of more than one sets of disjoint variables in the
// same DBC and in different DBCs and their integration with non-disjoint
// variables". DMAMulti extracts disjoint sets repeatedly — after the first
// greedy pass removes Vdj, a second pass runs on the remaining variables,
// and so on — and gives each set its own DBC in access order, falling back
// to AFD-style distribution for whatever remains.

// extractDisjoint runs one greedy pass of Algorithm 1 lines 5-12 over the
// candidate variables (which must be in ascending first-use order) and
// returns (selected, remaining), both in ascending first-use order.
// admitTies selects the ablation variant that admits a variable whose
// access frequency merely equals the nested frequency sum (the paper uses
// strict >).
func extractDisjoint(a *trace.Analysis, candidates []int, admitTies bool) (selected, remaining []int) {
	tmin := 0
	for idx, v := range candidates {
		if a.First[v] > tmin {
			others := make([]int, 0, len(remaining)+len(candidates)-idx-1)
			others = append(others, remaining...)
			others = append(others, candidates[idx+1:]...)
			inner := a.InnerFreqSum(v, others)
			if a.Freq[v] > inner || (admitTies && a.Freq[v] == inner) {
				selected = append(selected, v)
				tmin = a.Last[v]
				continue
			}
		}
		remaining = append(remaining, v)
	}
	return selected, remaining
}

// DMAMultiResult is the output of DMAMulti.
type DMAMultiResult struct {
	Placement *Placement
	// Sets holds the extracted disjoint sets, in extraction order; set i
	// occupies DBC i (after merging when sets exceed DBCs).
	Sets [][]int
	// DisjointDBCs is the number of leading DBCs holding disjoint sets.
	DisjointDBCs int
}

// DMAMulti generalizes the DMA heuristic to maxSets disjoint sets. Each
// extracted set is stored in its own DBC in access order; when the sets
// outnumber the DBCs available (always keeping one DBC for the leftover
// variables if any), later sets are merged into earlier DBCs in global
// first-use order — variables from different merged sets interleave, but
// each set keeps its internal access order. maxSets <= 0 extracts until
// exhaustion.
func DMAMulti(a *trace.Analysis, q, capacity, maxSets int) (*DMAMultiResult, error) {
	if q <= 0 {
		return nil, fmt.Errorf("placement: q must be positive, got %d", q)
	}
	if capacity < 0 {
		return nil, fmt.Errorf("placement: capacity must be non-negative, got %d", capacity)
	}

	remaining := a.ByFirstUse()
	var sets [][]int
	for maxSets <= 0 || len(sets) < maxSets {
		var sel []int
		sel, remaining = extractDisjoint(a, remaining, false)
		if len(sel) == 0 {
			break
		}
		sets = append(sets, sel)
		if len(remaining) == 0 {
			break
		}
	}

	// DBC budget for disjoint sets: leave one DBC for leftovers if any.
	budget := q
	if len(remaining) > 0 && budget > 1 {
		budget--
	}
	if len(remaining) > 0 && budget == q {
		// q == 1: everything shares the single DBC in first-use order.
		all := a.ByFirstUse()
		p := NewEmpty(1)
		p.DBC[0] = all
		return &DMAMultiResult{Placement: p, Sets: sets, DisjointDBCs: 0}, nil
	}

	k := len(sets)
	if k > budget {
		k = budget
	}
	p := NewEmpty(q)
	for i, set := range sets {
		d := i
		if d >= k {
			// Merge into an earlier DBC, round-robin.
			if k == 0 {
				break
			}
			d = i % k
		}
		p.DBC[d] = mergeByFirstUse(a, p.DBC[d], set)
	}
	// Leftovers: AFD-style round-robin by descending frequency on the
	// remaining DBCs.
	if len(remaining) > 0 {
		rest := append([]int(nil), remaining...)
		sortByFreqDesc(a, rest)
		width := q - k
		if width <= 0 {
			width = 1
		}
		for i, v := range rest {
			d := k + i%width
			if d >= q {
				d = q - 1
			}
			p.DBC[d] = append(p.DBC[d], v)
		}
	}
	return &DMAMultiResult{Placement: p, Sets: sets, DisjointDBCs: k}, nil
}

// DMAWithRule is DMA with the ablation knob for the disjoint-set admission
// rule exposed (admitTies: >= instead of the paper's strict >).
func DMAWithRule(a *trace.Analysis, q, capacity int, admitTies bool) (*DMAResult, error) {
	if q <= 0 {
		return nil, fmt.Errorf("placement: q must be positive, got %d", q)
	}
	if capacity < 0 {
		return nil, fmt.Errorf("placement: capacity must be non-negative, got %d", capacity)
	}
	vdj, remaining := extractDisjoint(a, a.ByFirstUse(), admitTies)
	return assembleDMA(a, q, capacity, vdj, remaining)
}
