package placement

import (
	"fmt"
	"math"

	"repro/internal/trace"
)

// The exact solver substitutes for the ILP formulation the paper's
// optimality discussion implies (see DESIGN.md §3): Go has no usable ILP
// ecosystem, so small instances are solved exactly by
//
//  1. enumerating inter-DBC assignments with symmetry breaking (DBCs are
//     interchangeable, so variable i may only open DBC number
//     maxUsed+1), and
//  2. solving each DBC's intra ordering exactly as a minimum linear
//     arrangement (MinLA) over the DBC-restricted access graph with the
//     classic O(2^k·k) dynamic program over subsets.
//
// Tests use it as ground truth for the heuristics and the GA.

// MaxExactVars bounds the instance size Exact accepts; beyond this the
// enumeration explodes.
const MaxExactVars = 14

// IntraExact returns the optimal ordering of vars within a single DBC for
// the DBC-restricted subsequence of s, along with its cost. It solves
// MinLA by subset DP: the total cost of an ordering equals the sum over
// prefix boundaries of the cut weight, so
//
//	dp[S] = cross(S) + min over v in S of dp[S \ {v}]
//
// where cross(S) is the weight of edges from S to the remaining vars.
func IntraExact(vars []int, s *trace.Sequence) ([]int, int64, error) {
	k := len(vars)
	if k == 0 {
		return nil, 0, nil
	}
	if k > 20 {
		return nil, 0, fmt.Errorf("placement: IntraExact limited to 20 variables, got %d", k)
	}
	member := membership(vars, s.NumVars())
	g := trace.BuildSubgraph(s, func(v int) bool { return member[v] })

	// Local dense indices.
	idx := make(map[int]int, k)
	for i, v := range vars {
		idx[v] = i
	}
	// w[i][j]: subgraph weight between local i and j.
	w := make([][]int64, k)
	for i := range w {
		w[i] = make([]int64, k)
	}
	for i, u := range vars {
		for j, v := range vars {
			if i < j {
				ww := int64(g.Weight(u, v))
				w[i][j], w[j][i] = ww, ww
			}
		}
	}
	// toAll[i] = total weight incident to i.
	toAll := make([]int64, k)
	for i := 0; i < k; i++ {
		for j := 0; j < k; j++ {
			toAll[i] += w[i][j]
		}
	}

	size := 1 << k
	dp := make([]int64, size)
	choice := make([]int8, size)
	cross := make([]int64, size)
	for S := 1; S < size; S++ {
		// cross(S) incrementally: adding bit b to S' = S without b flips
		// b's edges: edges to members of S' stop crossing, edges to
		// non-members start crossing.
		b := trailingZeros(S)
		Sp := S &^ (1 << b)
		inner := int64(0)
		for j := 0; j < k; j++ {
			if Sp&(1<<j) != 0 {
				inner += w[b][j]
			}
		}
		cross[S] = cross[Sp] + toAll[b] - 2*inner

		dp[S] = math.MaxInt64
		for j := 0; j < k; j++ {
			if S&(1<<j) == 0 {
				continue
			}
			prev := dp[S&^(1<<j)]
			if prev < dp[S] {
				dp[S] = prev
				choice[S] = int8(j)
			}
		}
		dp[S] += cross[S]
	}

	// Recover order: choice[S] is the variable placed at position |S|-1.
	order := make([]int, k)
	S := size - 1
	for p := k - 1; p >= 0; p-- {
		j := int(choice[S])
		order[p] = vars[j]
		S &^= 1 << j
	}
	return order, dp[size-1], nil
}

func trailingZeros(x int) int {
	n := 0
	for x&1 == 0 {
		x >>= 1
		n++
	}
	return n
}

// ExactResult is the output of the exact solver.
type ExactResult struct {
	Placement *Placement
	Cost      int64
	// Assignments is the number of inter-DBC assignments enumerated.
	Assignments int64
}

// Exact computes the optimal placement of the sequence's variables into q
// DBCs (capacity optionally bounding DBC sizes; 0 = unlimited). It is
// exponential and guarded by MaxExactVars.
func Exact(s *trace.Sequence, q, capacity int) (*ExactResult, error) {
	if q <= 0 {
		return nil, fmt.Errorf("placement: q must be positive, got %d", q)
	}
	a := trace.Analyze(s)
	vars := a.ByFirstUse()
	n := len(vars)
	if n > MaxExactVars {
		return nil, fmt.Errorf("placement: Exact limited to %d variables, got %d", MaxExactVars, n)
	}
	if n == 0 {
		return &ExactResult{Placement: NewEmpty(q)}, nil
	}

	assign := make([]int, n)
	groups := make([][]int, q)
	res := &ExactResult{Cost: math.MaxInt64}

	var recurse func(i, maxUsed int)
	recurse = func(i, maxUsed int) {
		if i == n {
			res.Assignments++
			p := NewEmpty(q)
			var total int64
			for d := 0; d < q; d++ {
				if len(groups[d]) == 0 {
					continue
				}
				order, cost, err := IntraExact(groups[d], s)
				if err != nil {
					return
				}
				p.DBC[d] = order
				total += cost
				if total >= res.Cost {
					return
				}
			}
			if total < res.Cost {
				res.Cost = total
				res.Placement = p
			}
			return
		}
		limit := maxUsed + 1
		if limit >= q {
			limit = q - 1
		}
		for d := 0; d <= limit; d++ {
			if capacity > 0 && len(groups[d]) >= capacity {
				continue
			}
			assign[i] = d
			groups[d] = append(groups[d], vars[i])
			nm := maxUsed
			if d > maxUsed {
				nm = d
			}
			recurse(i+1, nm)
			groups[d] = groups[d][:len(groups[d])-1]
		}
	}
	recurse(0, -1)
	if res.Placement == nil {
		return nil, fmt.Errorf("placement: no feasible placement for %d variables into %d DBCs with capacity %d", n, q, capacity)
	}
	return res, nil
}
