package placement

import (
	"testing"

	"repro/internal/energy"
)

// BenchmarkCostModel pins the scalarization boundary's overhead: pricing
// a tally under the energy objective versus the raw shift default must
// be plain arithmetic — no allocation, no replay — so results, per-DBC
// breakdowns and windowed totals can all be priced without measurable
// cost. Gated in CI with -benchmem (allocs/op must stay 0).
func BenchmarkCostModel(b *testing.B) {
	p4, err := energy.ForDBCs(4)
	if err != nil {
		b.Fatal(err)
	}
	shiftsModel := DefaultCostModel()
	energyModel, err := NewCostModel(ObjectiveEnergy, p4, 0)
	if err != nil {
		b.Fatal(err)
	}
	faultyModel, err := NewCostModel(ObjectiveFaulty, p4, 0.01)
	if err != nil {
		b.Fatal(err)
	}
	tally := Tally{Shifts: 123456, Reads: 7890, Writes: 2345}
	b.ReportAllocs()
	b.ResetTimer()
	var sink float64
	for i := 0; i < b.N; i++ {
		sink += shiftsModel.Price(tally).Scalar
		sink += energyModel.Price(tally).Scalar
		sink += faultyModel.Price(tally).Scalar
	}
	if sink < 0 {
		b.Fatal("impossible")
	}
}
