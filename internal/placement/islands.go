package placement

import (
	"context"
	"sort"

	"repro/internal/pool"
	"repro/internal/trace"
)

// Island-model GA (DESIGN.md §11): GAConfig.Islands independent
// populations evolve on derived seeds and exchange elites over a ring
// topology every MigrationEvery generations. The islands are the
// parallel axis — each island's own evaluation loop runs sequentially
// (gaRun with Workers forced to 0), and up to cfg.Workers islands
// advance concurrently per round through the deterministic pool.
//
// Determinism: island i's PRNG stream depends only on (cfg.Seed, i);
// rounds are a barrier (pool.Run), and migration runs in the
// coordinating goroutine as collect-then-apply — every island's
// emigrants are snapshotted before any island's population is touched,
// with elite selection and replacement ordered by (cost, population
// index). No search decision can observe goroutine scheduling, so a
// fixed (Islands, MigrationEvery, Elites, Seed) tuple yields
// bit-identical results for any Workers value.

// islandSeed derives island i's PRNG seed from the run seed with a
// splitmix64-style finalizer, so island streams are decorrelated even
// for adjacent run seeds. Island 0 keeps the run seed unchanged — that,
// plus Islands <= 1 short-circuiting in GAContext, is what makes a
// one-island run reproduce the serial GA move-for-move.
func islandSeed(seed int64, island int) int64 {
	if island == 0 {
		return seed
	}
	z := uint64(seed) + uint64(island)*0x9E3779B97F4A7C15
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return int64(z ^ (z >> 31))
}

// islandGA runs the island model. Called by GAContext when
// cfg.Islands > 1; Mu, Lambda and Generations are per island.
func islandGA(ctx context.Context, s *trace.Sequence, q int, cfg GAConfig) (*GAResult, error) {
	islands := cfg.Islands
	migrate := cfg.MigrationEvery
	if migrate <= 0 {
		migrate = DefaultMigrationEvery
	}
	elites := cfg.Elites
	if elites <= 0 {
		elites = DefaultElites
	}
	if elites > cfg.Mu {
		elites = cfg.Mu
	}

	// One kernel build shared by every island (the kernel is immutable
	// and safe for concurrent use); each island keeps its own DBC cost
	// cache via its gaRun, so fitness evaluation never crosses islands.
	icfg := cfg
	if icfg.Port == nil {
		icfg.Kernel = kernelFor(icfg.Kernel, s)
	}
	icfg.Workers = 0 // islands are the parallel axis; per-island evaluation is serial

	runs := make([]*gaRun, islands)
	for i := range runs {
		c := icfg
		c.Seed = islandSeed(cfg.Seed, i)
		r, err := newGARun(s, q, c)
		if err != nil {
			return nil, err
		}
		runs[i] = r
	}
	if runs[0].trivial != nil {
		return runs[0].trivial, nil
	}

	var ctxErr error
	done := 0
	for done < cfg.Generations {
		stepN := migrate
		if done+stepN > cfg.Generations {
			stepN = cfg.Generations - done
		}
		err := pool.Run(ctx, islands, cfg.Workers, func(ctx context.Context, i int) error {
			r := runs[i]
			for g := 0; g < stepN; g++ {
				if err := ctx.Err(); err != nil {
					return err
				}
				r.step()
			}
			return nil
		})
		if err != nil {
			// Cancelled (or a sibling failed) mid-round: islands may sit
			// at different generation counts now, but every recorded
			// best is a fully evaluated placement, so the best-so-far
			// composition below stays valid.
			ctxErr = err
			break
		}
		done += stepN
		if cfg.IslandProgress != nil {
			for i, r := range runs {
				cfg.IslandProgress(i, r.gens, r.best.cost)
			}
		}
		if done < cfg.Generations && islands > 1 {
			migrateRing(runs, elites)
		}
	}

	return composeIslands(runs, ctxErr)
}

// migrateRing sends each island's top elites to its ring successor
// (island i receives from island (i-1+n)%n). Emigrants are snapshotted
// from every island before any island is modified, so the exchange is
// order-independent; selection and replacement are by (cost, population
// index), so it is also schedule-independent.
func migrateRing(runs []*gaRun, elites int) {
	n := len(runs)
	out := make([][]individual, n)
	for i, r := range runs {
		out[i] = r.emigrants(elites)
	}
	for i, r := range runs {
		r.immigrate(out[(i-1+n)%n])
	}
}

// emigrants clones the run's k best individuals, ordered by (cost,
// population index).
func (r *gaRun) emigrants(k int) []individual {
	idx := popByCost(r.pop)
	if k > len(idx) {
		k = len(idx)
	}
	out := make([]individual, k)
	for j := 0; j < k; j++ {
		src := r.pop[idx[j]]
		out[j] = individual{p: src.p.Clone(), cost: src.cost}
	}
	return out
}

// immigrate replaces the run's worst individuals with the incoming
// elites (which the sender already priced under the shared objective, so
// no re-evaluation is needed). Replaced placements are dropped rather
// than recycled — tournament selection can alias one placement across
// several population slots, so a replaced slot's placement may still be
// live elsewhere.
func (r *gaRun) immigrate(in []individual) {
	idx := popByCost(r.pop)
	for j, m := range in {
		slot := idx[len(idx)-1-j] // worst first, ties broken by index
		r.pop[slot] = m
		if r.cfg.better(m.cost, r.best.cost) {
			r.best = m
		}
	}
}

// popByCost returns the population's indices ordered by ascending cost,
// ties by ascending index.
func popByCost(pop []individual) []int {
	idx := make([]int, len(pop))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool { return pop[idx[a]].cost < pop[idx[b]].cost })
	return idx
}

// composeIslands merges per-island results into one GAResult: the best
// placement across islands (ties to the lowest island index), summed
// evaluations, per-island generation count, and a history whose entry g
// is the best cost any island had reached by its generation g — the
// convergence curve of the ensemble at equal per-island budget.
func composeIslands(runs []*gaRun, ctxErr error) (*GAResult, error) {
	best := runs[0]
	for _, r := range runs[1:] {
		if r.cfg.better(r.best.cost, best.best.cost) {
			best = r
		}
	}
	res := &GAResult{
		Best: best.best.p.Clone(),
		Cost: best.best.cost,
	}
	histLen := 0
	for _, r := range runs {
		res.Evaluations += r.evalCount
		if r.gens > res.Generations {
			res.Generations = r.gens
		}
		if len(r.history) > histLen {
			histLen = len(r.history)
		}
	}
	res.History = make([]int64, histLen)
	for g := range res.History {
		var min int64
		have := false
		for _, r := range runs {
			if g < len(r.history) && (!have || r.history[g] < min) {
				min, have = r.history[g], true
			}
		}
		res.History[g] = min
	}
	return res, ctxErr
}
