package placement

import (
	"context"
	"testing"

	"repro/internal/energy"
	"repro/internal/trace"
)

// FuzzKernelParity feeds arbitrary byte strings interpreted as (variable
// universe, access sequence, DBC assignment, offset shuffle) and checks
// that the O(nnz) CostKernel evaluation stays bit-identical to the
// ShiftCost replay oracle, and that the kernel-derived DeltaEvaluator
// agrees with the replay-built one on every DBC. Run in CI's fuzz-smoke
// job alongside FuzzDeltaParity.
func FuzzKernelParity(f *testing.F) {
	f.Add([]byte{5, 2, 0, 1, 2, 3, 4, 0, 1, 2, 1, 0, 3, 9, 9})
	f.Add([]byte{3, 1, 0, 1, 2, 0, 1, 2, 2, 0, 1, 7})
	f.Add([]byte{16, 3, 1, 5, 9, 2, 6, 10, 3, 7, 11, 0, 4, 8, 250, 1, 7})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < 6 || len(data) > 4096 {
			t.Skip() // bound per-exec cost so the CI smoke job explores widely
		}
		numVars := 1 + int(data[0]%24)
		q := 1 + int(data[1]%6)
		body := data[2:]

		// First two thirds of the body emit accesses, the rest drives the
		// placement: per-variable DBC choice and an offset shuffle.
		cut := len(body) * 2 / 3
		seqBytes, placeBytes := body[:cut], body[cut:]
		if len(seqBytes) == 0 {
			t.Skip()
		}
		names := make([]string, numVars)
		for i := range names {
			names[i] = "v" + string(rune('a'+i%26)) + string(rune('a'+i/26))
		}
		s := &trace.Sequence{Names: names}
		for _, b := range seqBytes {
			s.Append(int(b)%numVars, false)
		}

		p := NewEmpty(q)
		for v := 0; v < numVars; v++ {
			d := 0
			if v < len(placeBytes) {
				d = int(placeBytes[v]) % q
			}
			p.DBC[d] = append(p.DBC[d], v)
		}
		for bi := numVars; bi+1 < len(placeBytes); bi += 2 {
			d := p.DBC[int(placeBytes[bi])%q]
			if len(d) > 1 {
				i := int(placeBytes[bi+1]) % len(d)
				d[0], d[i] = d[i], d[0]
			}
		}

		want, err := ShiftCost(s, p)
		if err != nil {
			t.Fatal(err)
		}
		k := NewCostKernel(s)
		got, err := k.Evaluate(p)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("kernel %d, replay %d\nseq: %v\nplacement: %v", got, want, s, p)
		}
		ks, err := NewCostKernelStream(s.NumVars(), trace.NewSliceReader(s))
		if err != nil {
			t.Fatal(err)
		}
		if sgot, err := ks.Evaluate(p); err != nil || sgot != want {
			t.Fatalf("stream kernel %d (err %v), replay %d\nseq: %v\nplacement: %v", sgot, err, want, s, p)
		}
		for _, d := range p.DBC {
			if len(d) == 0 {
				continue
			}
			ref := NewDeltaEvaluator(s, d)
			der := NewDeltaEvaluatorFromKernel(k, d)
			if ref.Cost() != der.Cost() || ref.Accesses() != der.Accesses() {
				t.Fatalf("DBC %v: replay-built (cost %d, acc %d) vs kernel-derived (cost %d, acc %d)",
					d, ref.Cost(), ref.Accesses(), der.Cost(), der.Accesses())
			}
		}
	})
}

// FuzzPortCostParity feeds arbitrary byte strings interpreted as
// (variable universe, DBC count, port count, layout domains, access
// sequence, DBC assignment, offset shuffle) and checks that the
// allocation-free multi-port evaluator stays bit-identical to the
// EngineCostAt shift-engine oracle for every port layout — including
// tracks grown past the layout's domain count — and that the ports == 1
// case stays bit-identical to the single-port replay oracle and the
// cost kernel. Run in CI's fuzz-smoke job.
func FuzzPortCostParity(f *testing.F) {
	f.Add([]byte{5, 2, 2, 3, 0, 1, 2, 3, 4, 0, 1, 2, 1, 0, 3, 9, 9})
	f.Add([]byte{3, 1, 1, 0, 0, 1, 2, 0, 1, 2, 2, 0, 1, 7})
	f.Add([]byte{16, 3, 4, 20, 1, 5, 9, 2, 6, 10, 3, 7, 11, 0, 4, 8, 250, 1, 7})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < 8 || len(data) > 4096 {
			t.Skip() // bound per-exec cost so the CI smoke job explores widely
		}
		numVars := 1 + int(data[0]%24)
		q := 1 + int(data[1]%6)
		ports := 1 + int(data[2]%6)
		extraDomains := int(data[3] % 32)
		body := data[4:]

		cut := len(body) * 2 / 3
		seqBytes, placeBytes := body[:cut], body[cut:]
		if len(seqBytes) == 0 {
			t.Skip()
		}
		names := make([]string, numVars)
		for i := range names {
			names[i] = "v" + string(rune('a'+i%26)) + string(rune('a'+i/26))
		}
		s := &trace.Sequence{Names: names}
		for _, b := range seqBytes {
			s.Append(int(b)%numVars, false)
		}

		p := NewEmpty(q)
		for v := 0; v < numVars; v++ {
			d := 0
			if v < len(placeBytes) {
				d = int(placeBytes[v]) % q
			}
			p.DBC[d] = append(p.DBC[d], v)
		}
		for bi := numVars; bi+1 < len(placeBytes); bi += 2 {
			d := p.DBC[int(placeBytes[bi])%q]
			if len(d) > 1 {
				i := int(placeBytes[bi+1]) % len(d)
				d[0], d[i] = d[i], d[0]
			}
		}

		// The layout may derive from a track shorter than the occupancy
		// (the grown-track case) or longer; never shorter than the port
		// count.
		layoutDomains := 1 + extraDomains
		if layoutDomains < ports {
			layoutDomains = ports
		}
		m, err := NewPortModel(layoutDomains, ports)
		if err != nil {
			t.Fatal(err)
		}
		got, err := PortCost(s, p, m)
		if err != nil {
			t.Fatal(err)
		}
		engineDomains := layoutDomains
		if n := p.MaxDBCLen(); n > engineDomains {
			engineDomains = n
		}
		want, err := EngineCostAt(s, p, engineDomains, m.Positions())
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("PortCost %d, EngineCostAt %d (ports %d, layout %d)\nseq: %v\nplacement: %v",
				got, want, ports, layoutDomains, s, p)
		}
		if ports == 1 {
			replay, err := ShiftCost(s, p)
			if err != nil {
				t.Fatal(err)
			}
			kernel, err := NewCostKernel(s).Evaluate(p)
			if err != nil {
				t.Fatal(err)
			}
			if got != replay || got != kernel {
				t.Fatalf("single-port identity broken: PortCost %d, ShiftCost %d, kernel %d", got, replay, kernel)
			}
		}
	})
}

// FuzzDeltaParity feeds arbitrary byte strings interpreted as (variable
// universe, access sequence, move chain) and checks the incremental
// DeltaEvaluator cost stays bit-identical to a full ShiftCost recompute
// after every applied move, and that every predicted delta matches the
// realized change. Run in CI's fuzz-smoke job.
func FuzzDeltaParity(f *testing.F) {
	f.Add([]byte{7, 2, 0, 1, 2, 3, 4, 5, 6, 7, 8, 0, 1, 2, 1, 0, 3})
	f.Add([]byte{3, 0, 0, 1, 2, 0, 1, 2, 9, 9, 9, 2, 0, 1})
	f.Add([]byte{12, 4, 1, 5, 9, 2, 6, 10, 3, 7, 11, 0, 4, 8, 250, 1, 7, 3, 2, 9})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < 6 {
			t.Skip()
		}
		// Header: member count k in [3, 34], plus up to 5 extra
		// non-member variables the sequence may also touch.
		k := 3 + int(data[0]%32)
		universe := k + int(data[1]%6)
		body := data[2:]

		// First half of the body emits accesses, second half emits moves.
		half := len(body) / 2
		seqBytes, moveBytes := body[:half], body[half:]
		if len(seqBytes) < 2 {
			t.Skip()
		}
		// Declare the universe explicitly so members the bytes never
		// access still validate against the full ShiftCost path.
		names := make([]string, universe)
		for i := range names {
			names[i] = "v" + string(rune('a'+i%26)) + string(rune('a'+i/26))
		}
		s := &trace.Sequence{Names: names}
		for _, b := range seqBytes {
			s.Append(int(b)%universe, false)
		}

		// Members are variables 0..k-1 in identity order; indices ≥ k
		// exercise non-member transparency.
		order := make([]int, k)
		for i := range order {
			order[i] = i
		}

		e := NewDeltaEvaluator(s, order)
		full := func() int64 {
			member := membership(e.CurrentOrder(), s.NumVars())
			r := s.Restrict(func(v int) bool { return v < len(member) && member[v] })
			c, err := ShiftCost(r, &Placement{DBC: [][]int{e.CurrentOrder()}})
			if err != nil {
				t.Fatal(err)
			}
			return c
		}
		if got, want := e.Cost(), full(); got != want {
			t.Fatalf("setup: incremental %d, full %d", got, want)
		}

		for m := 0; m+2 < len(moveBytes); m += 3 {
			i := int(moveBytes[m+1]) % k
			j := int(moveBytes[m+2]) % k
			if i > j {
				i, j = j, i
			}
			before := e.Cost()
			var predicted int64
			if moveBytes[m]%2 == 0 {
				predicted = e.SwapDelta(i, j)
				e.Swap(i, j)
			} else {
				predicted = e.ReverseDelta(i, j)
				e.Reverse(i, j)
			}
			if got := e.Cost() - before; got != predicted {
				t.Fatalf("move %d [%d,%d]: predicted delta %d, applied %d", m, i, j, predicted, got)
			}
			if got, want := e.Cost(), full(); got != want {
				t.Fatalf("move %d [%d,%d]: incremental %d, full %d", m, i, j, got, want)
			}
		}
	})
}

// FuzzPortfolioParity feeds arbitrary byte strings interpreted as
// (variable universe, DBC count, access sequence) and checks that the
// concurrent, bound-pruned portfolio race returns exactly the winner and
// cost of the sequential full-pricing oracle — the determinism claim of
// DESIGN.md §11 under adversarial inputs. The portfolio is the
// constructive heuristics plus DMA-2opt (the search strategies are too
// slow for a fuzz exec and exercise no racing-specific code). Run in
// CI's fuzz-smoke job alongside the kernel parity targets.
func FuzzPortfolioParity(f *testing.F) {
	f.Add([]byte{5, 2, 0, 1, 2, 3, 4, 0, 1, 2, 1, 0, 3, 9, 9})
	f.Add([]byte{3, 1, 0, 1, 2, 0, 1, 2, 2, 0, 1, 7})
	f.Add([]byte{16, 3, 1, 5, 9, 2, 6, 10, 3, 7, 11, 0, 4, 8, 250, 1, 7})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < 4 || len(data) > 1024 {
			t.Skip() // bound per-exec cost so the CI smoke job explores widely
		}
		numVars := 1 + int(data[0]%24)
		q := 1 + int(data[1]%6)
		seqBytes := data[2:]

		names := make([]string, numVars)
		for i := range names {
			names[i] = "v" + string(rune('a'+i%26)) + string(rune('a'+i/26))
		}
		s := &trace.Sequence{Names: names}
		for _, b := range seqBytes {
			s.Append(int(b)%numVars, false)
		}

		ids := append(HeuristicStrategies(), StrategyDMATwoOpt)
		var opts Options

		wantID, wantCost := StrategyID(""), int64(-1)
		for _, id := range ids {
			_, c, err := Place(id, s, q, opts)
			if err != nil {
				t.Fatal(err)
			}
			if wantCost < 0 || c < wantCost {
				wantID, wantCost = id, c
			}
		}

		r, err := RacePortfolio(context.Background(), s, q, PortfolioConfig{
			Strategies: ids, Workers: 4, Options: opts,
		})
		if err != nil {
			t.Fatal(err)
		}
		if r.Winner != wantID || r.Cost != wantCost {
			t.Fatalf("race (%s, %d) != oracle (%s, %d)\nseq: %v",
				r.Winner, r.Cost, wantID, wantCost, s)
		}
		if got, err := ShiftCost(s, r.Placement); err != nil || got != r.Cost {
			t.Fatalf("winner replay %d (err %v), reported %d", got, err, r.Cost)
		}
	})
}

// FuzzCostModelMonotone feeds arbitrary byte strings interpreted as
// (variable universe, DBC count, fault-rate selector, access sequence,
// two DBC assignments) and checks the reduction every search layer
// relies on (DESIGN.md §15): for random placement pairs, the scalarized
// cost ordering of every constructible objective — shifts, energy,
// runtime, faulty — agrees exactly with the raw shift ordering, and
// equal shift counts price to equal scalars. Run in CI's fuzz-smoke
// job.
func FuzzCostModelMonotone(f *testing.F) {
	f.Add([]byte{5, 2, 0, 1, 2, 3, 4, 0, 1, 2, 1, 0, 3, 9, 9})
	f.Add([]byte{3, 1, 7, 1, 2, 0, 1, 2, 2, 0, 1, 7})
	f.Add([]byte{16, 3, 255, 5, 9, 2, 6, 10, 3, 7, 11, 0, 4, 8, 250, 1, 7})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < 6 || len(data) > 2048 {
			t.Skip() // bound per-exec cost so the CI smoke job explores widely
		}
		numVars := 1 + int(data[0]%24)
		q := 1 + int(data[1]%6)
		rate := float64(data[2]) / 256 // in [0, 1)
		body := data[3:]

		cut := len(body) / 2
		seqBytes, placeBytes := body[:cut], body[cut:]
		if len(seqBytes) == 0 {
			t.Skip()
		}
		names := make([]string, numVars)
		for i := range names {
			names[i] = "v" + string(rune('a'+i%26)) + string(rune('a'+i/26))
		}
		s := &trace.Sequence{Names: names}
		for i, b := range seqBytes {
			s.Append(int(b)%numVars, i%3 == 0)
		}

		build := func(assign []byte) *Placement {
			p := NewEmpty(q)
			for v := 0; v < numVars; v++ {
				d := 0
				if v < len(assign) {
					d = int(assign[v]) % q
				}
				p.DBC[d] = append(p.DBC[d], v)
			}
			return p
		}
		half := len(placeBytes) / 2
		pa, pb := build(placeBytes[:half]), build(placeBytes[half:])

		sa, err := ShiftCost(s, pa)
		if err != nil {
			t.Fatal(err)
		}
		sb, err := ShiftCost(s, pb)
		if err != nil {
			t.Fatal(err)
		}

		p4, err := energy.ForDBCs(4)
		if err != nil {
			t.Fatal(err)
		}
		models := []*CostModel{DefaultCostModel()}
		for _, obj := range []Objective{ObjectiveShifts, ObjectiveEnergy, ObjectiveRuntime} {
			m, err := NewCostModel(obj, p4, 0)
			if err != nil {
				t.Fatal(err)
			}
			models = append(models, m)
		}
		mf, err := NewCostModel(ObjectiveFaulty, p4, rate)
		if err != nil {
			t.Fatal(err)
		}
		models = append(models, mf)

		ta, tb := TallyOf(s, sa), TallyOf(s, sb)
		for _, m := range models {
			ca, cb := m.Price(ta), m.Price(tb)
			switch {
			case sa < sb:
				if !(ca.Scalar < cb.Scalar) {
					t.Fatalf("%s: shifts %d < %d but scalar %v >= %v", m.Spec(), sa, sb, ca.Scalar, cb.Scalar)
				}
			case sa > sb:
				if !(ca.Scalar > cb.Scalar) {
					t.Fatalf("%s: shifts %d > %d but scalar %v <= %v", m.Spec(), sa, sb, ca.Scalar, cb.Scalar)
				}
			default:
				if ca.Scalar != cb.Scalar {
					t.Fatalf("%s: equal shifts %d but scalars %v != %v", m.Spec(), sa, ca.Scalar, cb.Scalar)
				}
			}
			if m.Better(sa, sb) != (sa < sb) {
				t.Fatalf("%s: Better(%d, %d) disagrees with the shift order", m.Spec(), sa, sb)
			}
		}
	})
}
