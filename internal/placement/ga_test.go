package placement

import (
	"math/rand"
	"testing"

	"repro/internal/trace"
)

func quickGA(seed int64) GAConfig {
	return GAConfig{Mu: 20, Lambda: 20, Generations: 25, TournamentK: 4,
		MutationRate: 0.5, MoveWeight: 10, TransposeWeight: 10, PermuteWeight: 3, Seed: seed}
}

// The memetic GA-2opt registry strategy must produce valid, deterministic
// placements, and the local-improvement mutation itself must never raise
// the cost of the DBC it polishes.
func TestGAMemeticStrategy(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	s := randSeq(rng, 12, 150)
	opts := Options{GA: quickGA(7), DisableGASeeding: true}
	p1, c1, err := Place(StrategyGAMemetic, s, 4, opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := p1.Validate(s, 0); err != nil {
		t.Fatalf("GA-2opt produced invalid placement: %v", err)
	}
	p2, c2, err := Place(StrategyGAMemetic, s, 4, opts)
	if err != nil {
		t.Fatal(err)
	}
	if c1 != c2 || !p1.Equal(p2) {
		t.Fatalf("GA-2opt not deterministic: %d vs %d", c1, c2)
	}

	for trial := 0; trial < 25; trial++ {
		seq := randSeq(rng, 4+rng.Intn(10), 30+rng.Intn(100))
		a := trace.Analyze(seq)
		p := randomPlacement(rng, a.ByFirstUse(), 1+rng.Intn(3), 0)
		before, err := ShiftCost(seq, p)
		if err != nil {
			t.Fatal(err)
		}
		var kern *CostKernel
		if trial%2 == 0 { // exercise both the kernel-derived and replay setups
			kern = NewCostKernel(seq)
		}
		mutateImprove(rng, p, seq, GAConfig{Kernel: kern})
		after, err := ShiftCost(seq, p)
		if err != nil {
			t.Fatal(err)
		}
		if after > before {
			t.Fatalf("trial %d: mutateImprove worsened %d -> %d", trial, before, after)
		}
	}
}

func TestGAFindsOptimumOnSmallInstances(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 8; trial++ {
		n := 3 + rng.Intn(5) // 3..7 variables
		s := randSeq(rng, n, 10+rng.Intn(30))
		q := 1 + rng.Intn(3)
		ex, err := Exact(s, q, 0)
		if err != nil {
			t.Fatal(err)
		}
		cfg := quickGA(int64(trial))
		cfg.Mu, cfg.Lambda, cfg.Generations = 40, 40, 120
		// Seed with the heuristics, as the paper's GA does.
		for _, id := range HeuristicStrategies() {
			sp, _, err := Place(id, s, q, Options{})
			if err != nil {
				t.Fatal(err)
			}
			cfg.Seeds = append(cfg.Seeds, sp)
		}
		res, err := GA(s, q, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if res.Cost < ex.Cost {
			t.Fatalf("trial %d: GA cost %d below exact optimum %d — cost model bug", trial, res.Cost, ex.Cost)
		}
		if res.Cost != ex.Cost {
			t.Errorf("trial %d: GA cost %d != optimum %d (q=%d, n=%d)", trial, res.Cost, ex.Cost, q, n)
		}
		if err := res.Best.Validate(s, 0); err != nil {
			t.Fatalf("trial %d: GA produced invalid placement: %v", trial, err)
		}
	}
}

func TestGABestNeverWorsens(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	s := randSeq(rng, 12, 120)
	res, err := GA(s, 4, quickGA(2))
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(res.History); i++ {
		if res.History[i] > res.History[i-1] {
			t.Fatalf("best cost worsened at generation %d: %v", i, res.History[i-1:i+1])
		}
	}
	if res.Evaluations <= 0 {
		t.Error("no evaluations recorded")
	}
}

func TestGASeedsRespected(t *testing.T) {
	s := trace.NewSequence(0, 1, 0, 1, 2, 2)
	seed := &Placement{DBC: [][]int{{0, 1}, {2}}}
	seedCost, _ := ShiftCost(s, seed)
	cfg := quickGA(1)
	cfg.Seeds = []*Placement{seed}
	res, err := GA(s, 2, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Cost > seedCost {
		t.Errorf("GA (%d) worse than its own seed (%d)", res.Cost, seedCost)
	}
	// Mismatched seed width must be rejected.
	cfg.Seeds = []*Placement{NewEmpty(3)}
	if _, err := GA(s, 2, cfg); err == nil {
		t.Error("seed with wrong DBC count accepted")
	}
}

func TestGAEmptySequence(t *testing.T) {
	s := &trace.Sequence{}
	res, err := GA(s, 2, quickGA(1))
	if err != nil {
		t.Fatal(err)
	}
	if res.Cost != 0 {
		t.Errorf("empty sequence cost = %d", res.Cost)
	}
}

func TestGAInvalidConfig(t *testing.T) {
	s := trace.NewSequence(0, 1)
	if _, err := GA(s, 0, quickGA(1)); err == nil {
		t.Error("q=0 accepted")
	}
	bad := quickGA(1)
	bad.Mu = 0
	if _, err := GA(s, 2, bad); err == nil {
		t.Error("Mu=0 accepted")
	}
}

func TestGADeterministicForSeed(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	s := randSeq(rng, 10, 80)
	r1, err := GA(s, 3, quickGA(123))
	if err != nil {
		t.Fatal(err)
	}
	r2, err := GA(s, 3, quickGA(123))
	if err != nil {
		t.Fatal(err)
	}
	if r1.Cost != r2.Cost || !r1.Best.Equal(r2.Best) {
		t.Error("GA not deterministic for a fixed seed")
	}
	r3, err := GA(s, 3, quickGA(124))
	if err != nil {
		t.Fatal(err)
	}
	_ = r3 // different seed may or may not differ; only determinism is required
}

// Property: crossover children are valid placements covering exactly the
// parents' variable set.
func TestCrossoverPreservesValidity(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	for trial := 0; trial < 60; trial++ {
		n := 2 + rng.Intn(10)
		s := randSeq(rng, n, 20)
		a := trace.Analyze(s)
		vars := a.ByFirstUse()
		q := 2 + rng.Intn(3)
		p1 := randomPlacement(rng, vars, q, 0)
		p2 := randomPlacement(rng, vars, q, 0)
		c1, c2 := crossover(rng, p1, p2, vars, 0, new(xoverScratch))
		for i, c := range []*Placement{c1, c2} {
			if err := c.Validate(s, 0); err != nil {
				t.Fatalf("trial %d child %d invalid: %v", trial, i, err)
			}
			if c.NumPlaced() != len(vars) {
				t.Fatalf("trial %d child %d places %d vars, want %d", trial, i, c.NumPlaced(), len(vars))
			}
		}
		// Parents must be untouched.
		if p1.NumPlaced() != len(vars) || p2.NumPlaced() != len(vars) {
			t.Fatal("crossover mutated a parent")
		}
	}
}

// Property: every mutation operator preserves placement validity.
func TestMutationsPreserveValidity(t *testing.T) {
	rng := rand.New(rand.NewSource(55))
	cfg := quickGA(1)
	cfg.ImproveWeight = 2 // exercise the memetic operator too
	for trial := 0; trial < 100; trial++ {
		n := 1 + rng.Intn(10)
		s := randSeq(rng, n, 15)
		a := trace.Analyze(s)
		vars := a.ByFirstUse()
		q := 1 + rng.Intn(4)
		p := randomPlacement(rng, vars, q, 0)
		mutate(rng, p, s, cfg)
		if err := p.Validate(s, 0); err != nil {
			t.Fatalf("trial %d: mutation broke placement: %v", trial, err)
		}
	}
}

// Property: mutateMove respects capacity limits.
func TestMutateMoveRespectsCapacity(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 50; trial++ {
		p := &Placement{DBC: [][]int{{0, 1}, {2, 3}}}
		mutateMove(rng, p, 2)
		for d, vars := range p.DBC {
			if len(vars) > 2 {
				t.Fatalf("trial %d: DBC %d overflowed capacity: %v", trial, d, p.DBC)
			}
		}
	}
}

// TestRandomWalkKernelPath drives the random walk on a strongly
// loop-compressed sequence (the kernel table is far smaller than the
// stream, so the bounded kernel evaluator is selected) and checks the
// reported best against a full replay re-evaluation.
func TestRandomWalkKernelPath(t *testing.T) {
	s := &trace.Sequence{Names: []string{"a", "b", "c", "d", "e"}}
	for i := 0; i < 300; i++ {
		for v := 0; v < 5; v++ {
			s.Append(v, false)
		}
	}
	if k := NewCostKernel(s); k.Candidates() >= s.Len()/2 {
		t.Fatalf("workload not loop-compressed enough: cand %d vs m %d", k.Candidates(), s.Len())
	}
	p, c, err := RandomWalk(s, 3, RWConfig{Iterations: 400, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Validate(s, 0); err != nil {
		t.Fatalf("invalid RW placement: %v", err)
	}
	got, err := ShiftCost(s, p)
	if err != nil {
		t.Fatal(err)
	}
	if got != c {
		t.Errorf("reported cost %d != replay %d", c, got)
	}
}

// TestRandomPlacementLookupConsistency pins the fused generator: the
// maintained lookup must equal a from-scratch inversion of the
// generated placement, and the PRNG stream must match randomPlacement's
// exactly (same seed, same placements).
func TestRandomPlacementLookupConsistency(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 50; trial++ {
		numVars := 1 + rng.Intn(20)
		s := randSeq(rng, numVars, 40)
		a := trace.Analyze(s)
		vars := a.ByFirstUse()
		q := 1 + rng.Intn(4)
		capacity := 0
		if rng.Intn(3) == 0 {
			capacity = 1 + (len(vars)+q-1)/q
		}
		seed := rng.Int63()

		ref := rand.New(rand.NewSource(seed))
		fused := rand.New(rand.NewSource(seed))
		p := NewEmpty(q)
		lookup := &Lookup{DBCOf: make([]int, s.NumVars()), Offset: make([]int, s.NumVars())}
		for v := range lookup.DBCOf {
			lookup.DBCOf[v] = -1
			lookup.Offset[v] = -1
		}
		for it := 0; it < 5; it++ {
			want := randomPlacement(ref, vars, q, capacity)
			randomPlacementLookup(p, lookup, fused, vars, capacity)
			if !p.Equal(want) {
				t.Fatalf("trial %d it %d: fused placement %v, reference %v", trial, it, p, want)
			}
			wl, err := want.BuildLookup(s.NumVars())
			if err != nil {
				t.Fatal(err)
			}
			for _, v := range vars {
				if lookup.DBCOf[v] != wl.DBCOf[v] || lookup.Offset[v] != wl.Offset[v] {
					t.Fatalf("trial %d it %d: lookup for var %d = (%d,%d), want (%d,%d)",
						trial, it, v, lookup.DBCOf[v], lookup.Offset[v], wl.DBCOf[v], wl.Offset[v])
				}
			}
		}
	}
}

func TestRandomWalk(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	s := randSeq(rng, 8, 60)
	p, c, err := RandomWalk(s, 2, RWConfig{Iterations: 500, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Validate(s, 0); err != nil {
		t.Fatalf("invalid RW placement: %v", err)
	}
	got, _ := ShiftCost(s, p)
	if got != c {
		t.Errorf("reported cost %d != recomputed %d", c, got)
	}
	// More iterations never hurt (same seed prefix property does not hold
	// exactly, but best-of-N is monotone in N for a fixed stream).
	_, c2, err := RandomWalk(s, 2, RWConfig{Iterations: 2000, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if c2 > c {
		t.Errorf("RW with more iterations got worse: %d > %d", c2, c)
	}
	if _, _, err := RandomWalk(s, 0, RWConfig{Iterations: 5}); err == nil {
		t.Error("q=0 accepted")
	}
	if _, _, err := RandomWalk(s, 2, RWConfig{}); err == nil {
		t.Error("0 iterations accepted")
	}
}

func TestExactMatchesBruteForceIntra(t *testing.T) {
	// IntraExact against explicit permutation enumeration on tiny inputs.
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 20; trial++ {
		n := 2 + rng.Intn(4) // 2..5 vars
		s := randSeq(rng, n, 10+rng.Intn(20))
		a := trace.Analyze(s)
		vars := a.ByFirstUse()
		if len(vars) < 2 {
			continue
		}
		order, cost, err := IntraExact(vars, s)
		if err != nil {
			t.Fatal(err)
		}
		p := &Placement{DBC: [][]int{order}}
		check, _ := ShiftCost(s, p)
		if check != cost {
			t.Fatalf("trial %d: IntraExact reports %d but layout costs %d", trial, cost, check)
		}
		best := bruteForceBest(s, vars)
		if cost != best {
			t.Fatalf("trial %d: IntraExact %d != brute force %d", trial, cost, best)
		}
	}
}

func bruteForceBest(s *trace.Sequence, vars []int) int64 {
	best := int64(-1)
	perm := append([]int(nil), vars...)
	var walk func(k int)
	walk = func(k int) {
		if k == len(perm) {
			p := &Placement{DBC: [][]int{perm}}
			c, _ := ShiftCost(s, p)
			if best < 0 || c < best {
				best = c
			}
			return
		}
		for i := k; i < len(perm); i++ {
			perm[k], perm[i] = perm[i], perm[k]
			walk(k + 1)
			perm[k], perm[i] = perm[i], perm[k]
		}
	}
	walk(0)
	return best
}

func TestExactGuards(t *testing.T) {
	s := randSeq(rand.New(rand.NewSource(1)), 20, 40)
	if _, err := Exact(s, 2, 0); err == nil {
		t.Error("oversized instance accepted")
	}
	if _, err := Exact(s, 0, 0); err == nil {
		t.Error("q=0 accepted")
	}
	empty := &trace.Sequence{}
	res, err := Exact(empty, 2, 0)
	if err != nil || res.Cost != 0 {
		t.Errorf("empty sequence: res=%+v err=%v", res, err)
	}
}

func TestExactCapacity(t *testing.T) {
	// 4 variables, q=2, capacity 2: both DBCs must hold exactly 2.
	s := trace.NewSequence(0, 1, 2, 3, 0, 1, 2, 3)
	res, err := Exact(s, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Placement.Validate(s, 2); err != nil {
		t.Fatalf("capacity violated: %v", err)
	}
	// Infeasible: 4 variables into 1 DBC of capacity 2.
	if _, err := Exact(s, 1, 2); err == nil {
		t.Error("infeasible instance accepted")
	}
}

// Heuristics must never beat the exact optimum (sanity of the optimum),
// and DMA must match it on perfectly phased traces.
func TestHeuristicsVsExact(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	for trial := 0; trial < 10; trial++ {
		n := 3 + rng.Intn(5)
		s := randSeq(rng, n, 12+rng.Intn(24))
		q := 1 + rng.Intn(2)
		ex, err := Exact(s, q, 0)
		if err != nil {
			t.Fatal(err)
		}
		for _, id := range HeuristicStrategies() {
			_, c, err := Place(id, s, q, Options{})
			if err != nil {
				t.Fatalf("%s: %v", id, err)
			}
			if c < ex.Cost {
				t.Fatalf("%s cost %d beats exact optimum %d — bug in Exact", id, c, ex.Cost)
			}
		}
	}
	// Perfectly phased: with unlimited capacity Algorithm 1 stores all l
	// disjoint variables in one DBC in access order, which costs exactly
	// l-1 shifts (here 3); the 2-DBC optimum can split the set and reach
	// 2, so DMA must land in [optimum, l-1].
	s := trace.NewSequence(0, 0, 0, 1, 1, 2, 2, 2, 3, 3)
	ex, _ := Exact(s, 2, 0)
	p, c, err := Place(StrategyDMAOFU, s, 2, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if c < ex.Cost || c > 3 {
		t.Errorf("DMA-OFU cost %d outside [optimum %d, l-1 = 3] on phased trace (placement %v)", c, ex.Cost, p)
	}
}

func TestPlaceUnknownStrategy(t *testing.T) {
	s := trace.NewSequence(0, 1)
	if _, _, err := Place("nope", s, 2, Options{}); err == nil {
		t.Error("unknown strategy accepted")
	}
}

func TestCanonicalOrdering(t *testing.T) {
	p := &Placement{DBC: [][]int{{}, {5, 2}, {1, 3}}}
	c := p.Canonical()
	if c.DBC[0][0] != 1 || c.DBC[1][0] != 5 {
		t.Errorf("canonical = %v", c.DBC)
	}
	if len(c.DBC[2]) != 0 {
		t.Error("empty DBC should sort last")
	}
}

// Parallel fitness evaluation must be bit-identical to sequential for the
// same seed (search decisions stay on one PRNG stream).
func TestGAParallelDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	s := randSeq(rng, 14, 150)
	seq := quickGA(42)
	par := quickGA(42)
	par.Workers = 4
	r1, err := GA(s, 4, seq)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := GA(s, 4, par)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Cost != r2.Cost || !r1.Best.Equal(r2.Best) {
		t.Errorf("parallel GA diverged: %d vs %d", r1.Cost, r2.Cost)
	}
	if r1.Evaluations != r2.Evaluations {
		t.Errorf("evaluation counts diverged: %d vs %d", r1.Evaluations, r2.Evaluations)
	}
}

// Property: capacity-aware crossover never overflows a DBC when both
// parents respect the capacity.
func TestCrossoverRespectsCapacity(t *testing.T) {
	rng := rand.New(rand.NewSource(66))
	for trial := 0; trial < 60; trial++ {
		n := 4 + rng.Intn(8)
		s := randSeq(rng, n, 20)
		a := trace.Analyze(s)
		vars := a.ByFirstUse()
		q := 2 + rng.Intn(3)
		capacity := (len(vars)+q-1)/q + 1
		p1 := randomPlacement(rng, vars, q, capacity)
		p2 := randomPlacement(rng, vars, q, capacity)
		c1, c2 := crossover(rng, p1, p2, vars, capacity, new(xoverScratch))
		for i, c := range []*Placement{c1, c2} {
			if err := c.Validate(s, capacity); err != nil {
				t.Fatalf("trial %d child %d: %v", trial, i, err)
			}
		}
	}
}

// GA with a capacity limit produces capacity-respecting placements when
// its seeds do.
func TestGARespectsCapacity(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	s := randSeq(rng, 12, 100)
	cfg := quickGA(3)
	cfg.Capacity = 4
	res, err := GA(s, 4, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Best.Validate(s, cfg.Capacity); err != nil {
		t.Fatalf("GA violated capacity: %v", err)
	}
}
