package placement

import (
	"context"
	"fmt"
	"io"
	"sort"

	"repro/internal/trace"
)

// Out-of-core windowed placement (DESIGN.md §12). A trace too large to
// hold in memory is split into consecutive windows of accesses; each
// window is compacted to its distinct variables, placed independently by
// an ordinary registry strategy, and the window placements are stitched
// into one continuous execution by replaying every access — plus the
// inter-window migrations — against per-DBC port state that persists
// across window boundaries. Working memory is O(window) regardless of
// stream length.
//
// The stitching model: the physical device has q DBCs whose port
// positions never reset. Entering window w, every variable that was
// resident in window w-1 and is live in window w at a different
// (DBC, offset) location must migrate: one read at its old location and
// one write at its new one, both charged through the shift model like
// any other access, in ascending variable order (a deterministic
// schedule). Variables not resident in the immediately-previous window
// are (re)loaded from backing store, which the shift model does not
// charge (a write-through backing hierarchy is assumed; only the
// *shift* cost is modeled, as everywhere in this repository). With a
// window at least as long as the stream there are no boundaries, no
// migrations, and the total equals the whole-trace placement cost
// exactly (TestPlaceStreamedWindowInfinity).

// DefaultStreamWindow is the window length PlaceStreamed uses when the
// config leaves Window unset: large enough to amortize per-window
// strategy startup, small enough that a window's working set (the
// compacted sequence plus the strategy's own state) stays in tens of
// megabytes for typical traces.
const DefaultStreamWindow = 1 << 18

// StreamConfig configures PlaceStreamed.
type StreamConfig struct {
	// NumVars is the variable universe of the stream; every access must
	// lie in [0, NumVars). Required.
	NumVars int
	// DBCs is the number of domain block clusters (q). Required.
	DBCs int
	// Window is the number of accesses placed per window; <= 0 selects
	// DefaultStreamWindow.
	Window int
	// Strategy names the per-window placement strategy. Required.
	Strategy StrategyID
	// Registry resolves Strategy; nil uses the process-wide registry.
	Registry *Registry
	// Options is passed to the per-window strategy calls. Ports > 1 is
	// rejected: the window-stitching shift model is single-port.
	// Options.Kernel is ignored (window sequences are ephemeral).
	Options Options
	// Progress, when non-nil, is called after each placed window.
	Progress func(StreamWindowEvent)
}

// StreamWindowEvent reports one finished window.
type StreamWindowEvent struct {
	// Window is the finished window's index (0-based).
	Window int
	// Accesses is the cumulative access count consumed so far.
	Accesses int64
	// WindowVars is the window's distinct-variable count.
	WindowVars int
	// Shifts is the cumulative stitched shift count so far.
	Shifts int64
}

// StreamResult is the outcome of a streamed placement.
type StreamResult struct {
	// Accesses is the total stream length consumed.
	Accesses int64
	// Windows is the number of windows placed.
	Windows int
	// Shifts is the total stitched shift count:
	// WindowShifts + MigrationShifts.
	Shifts int64
	// WindowShifts charges the trace's own accesses, replayed against
	// the continuous per-DBC port state.
	WindowShifts int64
	// MigrationShifts charges the inter-window migrations (one read at
	// the old location, one write at the new, per moved variable).
	MigrationShifts int64
	// MigratedVars counts variable migrations across all boundaries.
	MigratedVars int64
	// Reads and Writes count the stream's accesses by kind plus the
	// inter-window migration traffic (each migrated variable adds one
	// read at its old location and one write at its new one). Together
	// with Shifts they form the tally the cost model prices.
	Reads  int64
	Writes int64
	// Cost prices the stitched totals under StreamConfig.Options.Cost.
	// nil when no cost model is configured (the raw shift objective).
	Cost *Cost
	// MaxWindowVars is the largest distinct-variable count of any
	// window — the peak placement-problem size, which bounds the
	// working set.
	MaxWindowVars int
}

// finish recomputes the stitched shift total and, when a cost model is
// configured, prices the accumulated tally — once, at the boundary; the
// per-access loops never touch the model.
func (res *StreamResult) finish(m *CostModel) {
	res.Shifts = res.WindowShifts + res.MigrationShifts
	if m != nil {
		c := m.Price(Tally{Shifts: res.Shifts, Reads: res.Reads, Writes: res.Writes})
		res.Cost = &c
	}
}

// varLoc is a variable's physical location in one window's layout.
type varLoc struct{ dbc, off int }

// PlaceStreamed consumes an access stream window by window, placing each
// window with the configured strategy and stitching the window layouts
// into one continuous, deterministically-priced execution. The reader is
// drained to io.EOF. See the package comment above for the cost model;
// memory is O(Window + NumVars-independent bookkeeping) — the stream is
// never materialized.
//
// The context is checked between windows. On cancellation the stitched
// result through the last completed window is returned together with
// the context's error — the same best-so-far contract the GA's
// cancellation has — so deadline-bounded callers keep the partial
// accounting instead of losing the run.
func PlaceStreamed(ctx context.Context, r trace.AccessReader, cfg StreamConfig) (*StreamResult, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if cfg.NumVars < 0 {
		return nil, fmt.Errorf("placement: stream: negative NumVars %d", cfg.NumVars)
	}
	if cfg.DBCs < 1 {
		return nil, fmt.Errorf("placement: stream: DBCs must be >= 1, got %d", cfg.DBCs)
	}
	if cfg.Strategy == "" {
		return nil, fmt.Errorf("placement: stream: no strategy selected")
	}
	if cfg.Options.Ports > 1 {
		return nil, fmt.Errorf("placement: stream: %d ports unsupported (the window-stitching shift model is single-port)", cfg.Options.Ports)
	}
	window := cfg.Window
	if window <= 0 {
		window = DefaultStreamWindow
	}
	reg := cfg.Registry
	if reg == nil {
		var err error
		if reg, err = DefaultRegistry(); err != nil {
			return nil, fmt.Errorf("placement: stream: %w", err)
		}
	}
	if _, ok := reg.Lookup(cfg.Strategy); !ok {
		return nil, fmt.Errorf("placement: stream: unknown strategy %q", cfg.Strategy)
	}
	stOpts := cfg.Options
	stOpts.Context = ctx
	stOpts.Kernel = nil // window sequences are ephemeral; a caller kernel can never match

	res := &StreamResult{}
	q := cfg.DBCs

	// last[d] is DBC d's port offset after the previous access — the
	// state that persists across window boundaries and makes the stitched
	// total a genuine single-device replay. -1 while the DBC is cold.
	last := make([]int, q)
	for i := range last {
		last[i] = -1
	}
	charge := func(d, off int) int64 {
		var c int64
		if p := last[d]; p >= 0 {
			if off > p {
				c = int64(off - p)
			} else {
				c = int64(p - off)
			}
		}
		last[d] = off
		return c
	}

	// resident maps global variable -> location in the previous window's
	// layout; globals lists its keys (the previous window's variables in
	// ascending global order).
	var resident map[int]varLoc

	eof := false
	for !eof {
		if err := ctx.Err(); err != nil {
			// Same contract as the GA's cancellation (GAContext): the
			// best-so-far state — here the stitched result through the
			// last completed window — rides along with the context's
			// error, so a deadline bounds a long windowed run without
			// discarding the windows already priced.
			res.finish(cfg.Options.Cost)
			return res, err
		}
		// Read one window, compacting global variable ids to dense local
		// ids in order of first appearance.
		g2l := make(map[int]int)
		var order []int // local id -> global id
		ws := &trace.Sequence{}
		for ws.Len() < window {
			a, err := r.Next()
			if err == io.EOF {
				eof = true
				break
			}
			if err != nil {
				return nil, fmt.Errorf("placement: stream: reading access %d: %w", res.Accesses+int64(ws.Len()), err)
			}
			if a.Var < 0 || a.Var >= cfg.NumVars {
				return nil, fmt.Errorf("placement: stream: access %d to variable %d outside universe [0,%d)",
					res.Accesses+int64(ws.Len()), a.Var, cfg.NumVars)
			}
			lid, ok := g2l[a.Var]
			if !ok {
				lid = len(order)
				g2l[a.Var] = lid
				order = append(order, a.Var)
			}
			ws.Append(lid, a.Write)
		}
		if ws.Len() == 0 {
			break
		}

		// Place the compacted window.
		p, _, err := reg.Place(cfg.Strategy, ws, q, stOpts)
		if err != nil {
			if cerr := ctx.Err(); cerr != nil {
				// Cancelled mid-window: the unstitched window is
				// discarded; the result through the previous window
				// still rides along with the context error.
				res.finish(cfg.Options.Cost)
				return res, cerr
			}
			return nil, fmt.Errorf("placement: stream: window %d (%d accesses, %d vars): %w",
				res.Windows, ws.Len(), len(order), err)
		}
		l, err := p.BuildLookup(ws.NumVars())
		if err != nil {
			return nil, fmt.Errorf("placement: stream: window %d: %w", res.Windows, err)
		}
		for lid := range order {
			if l.DBCOf[lid] < 0 {
				return nil, fmt.Errorf("placement: stream: window %d: strategy %s left variable %d unplaced",
					res.Windows, cfg.Strategy, order[lid])
			}
		}

		// Charge the boundary migrations: variables live in this window
		// that the previous window placed elsewhere move first, in
		// ascending global variable order.
		if resident != nil {
			moved := make([]int, 0, len(order))
			for lid, g := range order {
				if old, ok := resident[g]; ok {
					if nw := (varLoc{l.DBCOf[lid], l.Offset[lid]}); nw != old {
						moved = append(moved, lid)
					}
				}
			}
			sort.Slice(moved, func(i, j int) bool { return order[moved[i]] < order[moved[j]] })
			for _, lid := range moved {
				old := resident[order[lid]]
				res.MigrationShifts += charge(old.dbc, old.off)            // read out of the old location
				res.MigrationShifts += charge(l.DBCOf[lid], l.Offset[lid]) // write into the new one
				res.MigratedVars++
				res.Reads++
				res.Writes++
			}
		}

		// Replay the window's accesses against the persistent port state.
		for _, a := range ws.Accesses {
			res.WindowShifts += charge(l.DBCOf[a.Var], l.Offset[a.Var])
			if a.Write {
				res.Writes++
			} else {
				res.Reads++
			}
		}

		// This window's layout is the next boundary's residency.
		resident = make(map[int]varLoc, len(order))
		for lid, g := range order {
			resident[g] = varLoc{l.DBCOf[lid], l.Offset[lid]}
		}

		res.Accesses += int64(ws.Len())
		res.Windows++
		if len(order) > res.MaxWindowVars {
			res.MaxWindowVars = len(order)
		}
		res.Shifts = res.WindowShifts + res.MigrationShifts
		if cfg.Progress != nil {
			cfg.Progress(StreamWindowEvent{
				Window:     res.Windows - 1,
				Accesses:   res.Accesses,
				WindowVars: len(order),
				Shifts:     res.Shifts,
			})
		}
	}
	res.finish(cfg.Options.Cost)
	return res, nil
}
