package placement

import (
	"repro/internal/trace"
)

// twoOptReference is the seed TwoOpt implementation, kept verbatim as the
// test-only oracle for the delta-evaluated rewrite: it recomputes the full
// restricted-sequence cost (O(m), rebuilding the position array from
// scratch) for every candidate move. TestTwoOptMatchesReference checks the
// rewrite follows the same search trajectory move-for-move, and
// BenchmarkTwoOptFull measures the cost of the recompute-everything
// strategy the rewrite eliminates.
func twoOptReference(vars []int, s *trace.Sequence, a *trace.Analysis) []int {
	order := append([]int(nil), vars...)
	if len(order) < 3 {
		return order
	}
	member := membership(order, s.NumVars())
	restricted := s.Restrict(func(v int) bool { return v < len(member) && member[v] })
	if restricted.Len() < 2 {
		return order
	}

	pos := make([]int, s.NumVars())
	cost := func() int64 {
		for i, v := range order {
			pos[v] = i
		}
		var total int64
		prev := -1
		for _, acc := range restricted.Accesses {
			if prev >= 0 {
				d := pos[acc.Var] - pos[prev]
				if d < 0 {
					d = -d
				}
				total += int64(d)
			}
			prev = acc.Var
		}
		return total
	}

	best := cost()
	for pass := 0; pass < maxTwoOptPasses; pass++ {
		improved := false
		for i := 0; i < len(order); i++ {
			for j := i + 1; j < len(order); j++ {
				// Try swap.
				order[i], order[j] = order[j], order[i]
				if c := cost(); c < best {
					best = c
					improved = true
					continue
				}
				order[i], order[j] = order[j], order[i]

				// Try reversal of [i, j].
				reverse(order, i, j)
				if c := cost(); c < best {
					best = c
					improved = true
					continue
				}
				reverse(order, i, j)
			}
		}
		if !improved {
			break
		}
	}
	return order
}

func reverse(s []int, i, j int) {
	for i < j {
		s[i], s[j] = s[j], s[i]
		i++
		j--
	}
}
