package placement

import (
	"repro/internal/trace"
)

// PlaceDMATwoOpt is the two-opt-refined DMA strategy: the paper's DMA
// inter-DBC heuristic with a ShiftsReduce intra ordering on the
// non-disjoint DBCs, polished by the TwoOpt local search (see twoopt.go).
// Since the delta-evaluator rewrite the polish pass prices each candidate
// move in O(freq) instead of replaying the DBC's restricted subsequence,
// so the strategy stays affordable on long traces (BenchmarkTwoOptDelta);
// with a batch-shared cost kernel at hand the per-DBC evaluator setup is
// derived from it in O(nnz) too, so nothing on this path replays the
// stream. TwoOpt can only keep or improve the intra cost, so this
// strategy is never worse than DMA-SR on the cost model. It is not one of
// the paper's six evaluated strategies; the racetrack package registers
// it as "DMA-2opt" through the public RegisterStrategy hook to
// demonstrate registry extensibility.
func PlaceDMATwoOpt(s *trace.Sequence, q int, opts Options) (*Placement, int64, error) {
	a := trace.Analyze(s)
	r, err := DMA(a, q, opts.Capacity)
	if err != nil {
		return nil, 0, err
	}
	kern := opts.Kernel
	if kern == nil || kern.Sequence() != s {
		kern = nil
	}
	refined := func(vars []int, s *trace.Sequence, a *trace.Analysis) []int {
		return twoOptWithKernel(ShiftsReduce(vars, s, a), s, kern)
	}
	p := ApplyIntra(r.Placement, r.DisjointDBCs, q, refined, s, a)
	c, err := costOf(s, p, opts)
	return p, c, err
}
