package placement

import (
	"repro/internal/trace"
)

// PlaceDMATwoOpt is the two-opt-refined DMA strategy: the paper's DMA
// inter-DBC heuristic with a ShiftsReduce intra ordering on the
// non-disjoint DBCs, polished by the TwoOpt local search (see twoopt.go).
// Since the delta-evaluator rewrite the polish pass prices each candidate
// move in O(freq) instead of replaying the DBC's restricted subsequence,
// so the strategy stays affordable on long traces (BenchmarkTwoOptDelta);
// with a batch-shared cost kernel at hand the per-DBC evaluator setup is
// derived from it in O(nnz) too, so nothing on this path replays the
// stream. TwoOpt can only keep or improve the intra cost, so this
// strategy is never worse than DMA-SR on the cost model. It is not one of
// the paper's six evaluated strategies; the racetrack package registers
// it as "DMA-2opt" through the public RegisterStrategy hook to
// demonstrate registry extensibility.
func PlaceDMATwoOpt(s *trace.Sequence, q int, opts Options) (*Placement, int64, error) {
	a := trace.Analyze(s)
	r, err := DMA(a, q, opts.Capacity)
	if err != nil {
		return nil, 0, err
	}
	kern := opts.Kernel
	if kern == nil || kern.Sequence() != s {
		kern = nil
	}
	pm, err := opts.PortModelFor(q)
	if err != nil {
		return nil, 0, err
	}
	// Under a multi-port objective the single-port polish still runs
	// first (it is the cheap surrogate), then a port-aware 2-opt sweep
	// polishes under the true objective. Because the port pass starts
	// from exactly the order the single-port pipeline produces and only
	// accepts improving moves, the multi-port DMA-2opt placement never
	// scores worse on the device than the single-port one replayed on
	// it — the monotonicity the ports-sweep experiment asserts.
	refined := func(vars []int, s *trace.Sequence, a *trace.Analysis) []int {
		out := twoOptWithKernel(ShiftsReduce(vars, s, a), s, kern)
		if pm != nil {
			out = twoOptPort(out, s, pm)
		}
		return out
	}
	p := ApplyIntra(r.Placement, r.DisjointDBCs, q, refined, s, a)
	c, err := costOf(s, p, q, opts)
	return p, c, err
}
