package placement

// dbcCostCache memoizes per-DBC partial costs by DBC content. A DBC's
// contribution to the full shift cost depends only on its own ordered
// member list (CostDBC), and population-based search re-prices the same
// DBC contents constantly: crossover children keep most parental DBCs
// untouched, elites survive generations verbatim, and converged
// populations are near-duplicates of one another. Caching per DBC —
// rather than per placement — turns all of that sharing into O(|DBC|)
// hash lookups instead of cost scans.
//
// Misses are priced adaptively. When only a small minority of a
// placement's DBCs miss (the converged-population steady state), each
// missing DBC is priced by a targeted kernel scan — structured
// placements keep those scans shallow. When most DBCs miss (random
// initial populations, permute-mutated individuals), a single bounded
// replay of the access stream prices every DBC at once: on scattered
// placements the kernel's candidate walks are branch-miss bound and the
// linear replay is measurably faster, and one replay pass fills all
// missing entries together.
//
// Entries verify the full content on lookup, so a hash collision costs
// a comparison, never a wrong cost: cached evaluation is bit-identical
// to Cost (TestDBCCostCacheParity) and search trajectories are
// unchanged. The cache only ever changes speed, not results; it resets
// deterministically when it reaches its size bound.
type dbcCostCache struct {
	kern    *CostKernel
	m       map[uint64][]dbcCacheEnt
	entries int

	// Per-eval scratch.
	missing []int
	hashes  []uint64
	last    []int
	per     []int64
}

type dbcCacheEnt struct {
	key  []int32
	cost int64
}

// dbcCacheMaxEntries bounds the cache footprint (a few MB at typical
// DBC sizes). The reset is deterministic, so results stay reproducible.
const dbcCacheMaxEntries = 1 << 15

func newDBCCostCache(kern *CostKernel) *dbcCostCache {
	return &dbcCostCache{kern: kern, m: make(map[uint64][]dbcCacheEnt, 256)}
}

// eval prices a full placement as the sum of per-DBC cached costs; the
// lookup must already describe p (fillLookup).
func (c *dbcCostCache) eval(l *Lookup, p *Placement) int64 {
	q := len(p.DBC)
	if cap(c.hashes) < q {
		c.hashes = make([]uint64, q)
		c.last = make([]int, q)
		c.per = make([]int64, q)
	}
	c.missing = c.missing[:0]

	var total int64
	nonEmpty := 0
	for d, content := range p.DBC {
		if len(content) == 0 {
			continue
		}
		nonEmpty++
		h := uint64(14695981039346656037)
		for _, v := range content {
			h = (h ^ uint64(uint32(v))) * 1099511628211
		}
		if cost, ok := c.lookup(h, content); ok {
			total += cost
			continue
		}
		c.hashes[d] = h
		c.missing = append(c.missing, d)
	}

	switch {
	case len(c.missing) == 0:
	case len(c.missing)*4 <= nonEmpty:
		// Minority miss: targeted kernel scans of just the dirty DBCs.
		for _, d := range c.missing {
			cost := c.kern.CostDBC(l, p.DBC[d])
			c.insert(c.hashes[d], p.DBC[d], cost)
			total += cost
		}
	default:
		// Bulk miss: one replay pass prices every DBC at once.
		shiftCostPerDBC(c.kern.Sequence(), l, c.last[:q], c.per[:q])
		for _, d := range c.missing {
			cost := c.per[d]
			c.insert(c.hashes[d], p.DBC[d], cost)
			total += cost
		}
	}
	return total
}

func (c *dbcCostCache) lookup(h uint64, content []int) (int64, bool) {
	for _, e := range c.m[h] {
		if dbcKeyEqual(e.key, content) {
			return e.cost, true
		}
	}
	return 0, false
}

func (c *dbcCostCache) insert(h uint64, content []int, cost int64) {
	if c.entries >= dbcCacheMaxEntries {
		c.m = make(map[uint64][]dbcCacheEnt, 256)
		c.entries = 0
	}
	key := make([]int32, len(content))
	for i, v := range content {
		key[i] = int32(v)
	}
	c.m[h] = append(c.m[h], dbcCacheEnt{key: key, cost: cost})
	c.entries++
}

func dbcKeyEqual(key []int32, content []int) bool {
	if len(key) != len(content) {
		return false
	}
	for i, v := range content {
		if key[i] != int32(v) {
			return false
		}
	}
	return true
}
