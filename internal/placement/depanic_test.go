package placement

import (
	"strings"
	"testing"

	"repro/internal/trace"
)

// Regression tests for the library's former init/construction panics:
// registry seeding failures must surface as errors, never crash the
// embedding process (a server must not die because a plugin registered
// a colliding strategy name).

func TestNewRegistryReturnsNoError(t *testing.T) {
	r, err := NewRegistry()
	if err != nil {
		t.Fatalf("NewRegistry: %v", err)
	}
	if r == nil {
		t.Fatal("NewRegistry returned nil registry")
	}
	for _, id := range AllStrategies() {
		if _, ok := r.Lookup(id); !ok {
			t.Errorf("builtin strategy %s missing after seed", id)
		}
	}
}

func TestSeedRegistryDuplicateIsErrorNotPanic(t *testing.T) {
	dup := NewStrategy("dup-strat", func(s *trace.Sequence, q int, opts Options) (*Placement, int64, error) {
		return nil, 0, nil
	})
	r := &Registry{byID: map[StrategyID]Strategy{}}
	err := seedRegistry(r, []Strategy{dup, dup})
	if err == nil {
		t.Fatal("seeding a duplicate strategy returned nil error")
	}
	if !strings.Contains(err.Error(), "seeding builtin strategies") {
		t.Fatalf("error %q does not identify the seeding phase", err)
	}
}

func TestDefaultRegistrySharedAndErrorFree(t *testing.T) {
	a, err := DefaultRegistry()
	if err != nil {
		t.Fatalf("DefaultRegistry: %v", err)
	}
	b, err := DefaultRegistry()
	if err != nil {
		t.Fatalf("DefaultRegistry (second call): %v", err)
	}
	if a != b {
		t.Fatal("DefaultRegistry returned different instances")
	}
}
