package placement

import (
	"context"
	"math/rand"
	"testing"

	"repro/internal/trace"
)

// racePortfolioIDs is the test portfolio: every builtin strategy plus
// the two extension strategies, in deterministic tie-break order.
func racePortfolioIDs() []StrategyID {
	return append(AllStrategies(), StrategyDMATwoOpt, StrategyGAMemetic)
}

// raceOptions keeps the search strategies cheap enough for racing in
// tests.
func raceOptions(seed int64) Options {
	return Options{
		GA:               quickGA(seed),
		RW:               RWConfig{Iterations: 400, Seed: seed},
		DisableGASeeding: true,
	}
}

// oracleBest runs the portfolio sequentially through Place with full
// pricing and returns the first-in-order winner and its cost — the
// result the race must reproduce exactly.
func oracleBest(t *testing.T, ids []StrategyID, s *trace.Sequence, q int, opts Options) (StrategyID, int64) {
	t.Helper()
	bestID, bestCost := StrategyID(""), int64(-1)
	for _, id := range ids {
		_, c, err := Place(id, s, q, opts)
		if err != nil {
			t.Fatalf("oracle %s: %v", id, err)
		}
		if bestCost < 0 || c < bestCost {
			bestID, bestCost = id, c
		}
	}
	return bestID, bestCost
}

// The race's winner and cost must equal the sequential oracle's at every
// worker count — abandonment only ever discards strictly-worse
// candidates, so concurrency must not change the outcome.
func TestPortfolioMatchesSequentialOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	ids := racePortfolioIDs()
	for trial := 0; trial < 6; trial++ {
		s := randSeq(rng, 6+rng.Intn(10), 60+rng.Intn(120))
		q := 2 + rng.Intn(3)
		opts := raceOptions(int64(trial + 1))
		wantID, wantCost := oracleBest(t, ids, s, q, opts)
		for _, workers := range []int{1, 3} {
			r, err := RacePortfolio(context.Background(), s, q, PortfolioConfig{
				Strategies: ids, Workers: workers, Options: opts,
			})
			if err != nil {
				t.Fatal(err)
			}
			if r.Winner != wantID || r.Cost != wantCost {
				t.Fatalf("trial %d workers=%d: race (%s, %d) != oracle (%s, %d)",
					trial, workers, r.Winner, r.Cost, wantID, wantCost)
			}
			if err := r.Placement.Validate(s, 0); err != nil {
				t.Fatalf("trial %d: winning placement invalid: %v", trial, err)
			}
			got, err := ShiftCost(s, r.Placement)
			if err != nil {
				t.Fatal(err)
			}
			if got != r.Cost {
				t.Fatalf("trial %d: reported cost %d, replay %d", trial, r.Cost, got)
			}
			// Abandoned entries carry only a certificate: their true cost
			// exceeds the winner's, and so must the certificate.
			for _, e := range r.Entries {
				if e.Abandoned && e.Cost <= r.Cost {
					t.Fatalf("trial %d: abandoned %s certificate %d not above winner %d",
						trial, e.Strategy, e.Cost, r.Cost)
				}
			}
		}
	}
}

// The race under the multi-port objective: winner parity with the
// sequential oracle, and the winning cost is the port objective.
func TestPortfolioMultiPort(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	s := randSeq(rng, 10, 100)
	opts := raceOptions(9)
	opts.Ports = 2
	opts.PortDomains = 16
	pm, err := opts.PortModelFor(3)
	if err != nil {
		t.Fatal(err)
	}
	ids := racePortfolioIDs()
	wantID, wantCost := oracleBest(t, ids, s, 3, opts)
	r, err := RacePortfolio(context.Background(), s, 3, PortfolioConfig{
		Strategies: ids, Workers: 3, Options: opts,
	})
	if err != nil {
		t.Fatal(err)
	}
	if r.Winner != wantID || r.Cost != wantCost {
		t.Fatalf("race (%s, %d) != oracle (%s, %d)", r.Winner, r.Cost, wantID, wantCost)
	}
	got, err := PortCost(s, r.Placement, pm)
	if err != nil {
		t.Fatal(err)
	}
	if got != r.Cost {
		t.Fatalf("reported cost %d, port objective %d", r.Cost, got)
	}
}

// Progress must report exactly one start and one finish event per
// strategy, with finish events mirroring the entries.
func TestPortfolioProgress(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	s := randSeq(rng, 8, 80)
	ids := racePortfolioIDs()
	var events []PortfolioEvent
	r, err := RacePortfolio(context.Background(), s, 2, PortfolioConfig{
		Strategies: ids, Workers: 2, Options: raceOptions(3),
		Progress: func(ev PortfolioEvent) { events = append(events, ev) },
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 2*len(ids) {
		t.Fatalf("got %d events, want %d", len(events), 2*len(ids))
	}
	starts, finishes := 0, 0
	for _, ev := range events {
		if ev.Total != len(ids) {
			t.Fatalf("event Total = %d, want %d", ev.Total, len(ids))
		}
		if !ev.Done {
			starts++
			continue
		}
		finishes++
		e := r.Entries[ev.Index]
		if ev.Strategy != e.Strategy || ev.Cost != e.Cost || ev.Abandoned != e.Abandoned {
			t.Fatalf("finish event %+v does not mirror entry %+v", ev, e)
		}
	}
	if starts != len(ids) || finishes != len(ids) {
		t.Fatalf("starts %d finishes %d, want %d each", starts, finishes, len(ids))
	}
}

// An unknown strategy fails the whole race with a resolvable error.
func TestPortfolioUnknownStrategy(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	s := randSeq(rng, 5, 30)
	_, err := RacePortfolio(context.Background(), s, 2, PortfolioConfig{
		Strategies: []StrategyID{"AFD-OFU", "no-such-strategy"},
		Options:    raceOptions(1),
	})
	if err == nil {
		t.Fatal("unknown strategy did not fail the race")
	}
	// An empty portfolio on an empty registry is rejected too.
	_, err = RacePortfolio(context.Background(), s, 2, PortfolioConfig{
		Registry: &Registry{byID: map[StrategyID]Strategy{}},
		Options:  raceOptions(1),
	})
	if err == nil {
		t.Fatal("empty portfolio did not fail")
	}
}

// A cancelled context aborts the race with the context error.
func TestPortfolioCancellation(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	s := randSeq(rng, 10, 100)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := RacePortfolio(ctx, s, 2, PortfolioConfig{
		Strategies: racePortfolioIDs(), Workers: 2, Options: raceOptions(4),
	})
	if err == nil {
		t.Fatal("pre-cancelled race returned no error")
	}
}

// Stress the concurrent race under the race detector. Skipped under
// -short; CI runs it with -race explicitly.
func TestPortfolioRaceStress(t *testing.T) {
	if testing.Short() {
		t.Skip("stress test; run without -short (CI runs it under -race)")
	}
	rng := rand.New(rand.NewSource(55))
	ids := racePortfolioIDs()
	for trial := 0; trial < 10; trial++ {
		s := randSeq(rng, 6+rng.Intn(10), 50+rng.Intn(100))
		opts := raceOptions(int64(trial))
		wantID, wantCost := oracleBest(t, ids, s, 3, opts)
		r, err := RacePortfolio(context.Background(), s, 3, PortfolioConfig{
			Strategies: ids, Workers: 8, Options: opts,
		})
		if err != nil {
			t.Fatal(err)
		}
		if r.Winner != wantID || r.Cost != wantCost {
			t.Fatalf("trial %d: race (%s, %d) != oracle (%s, %d)",
				trial, r.Winner, r.Cost, wantID, wantCost)
		}
	}
}
