package placement

import (
	"context"
	"errors"
	"math/rand"
	"runtime"
	"testing"
	"time"
)

// islandGAConfig is quickGA plus an island topology.
func islandGAConfig(seed int64, islands, migrate, elites int) GAConfig {
	cfg := quickGA(seed)
	cfg.Islands = islands
	cfg.MigrationEvery = migrate
	cfg.Elites = elites
	return cfg
}

// Islands == 1 must reproduce the serial GA move-for-move: same best,
// same cost, same evaluation count, same history.
func TestIslandsOneMatchesSerialGA(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for _, seed := range []int64{1, 7, 123, 9999} {
		s := randSeq(rng, 12, 120)
		serial, err := GA(s, 3, quickGA(seed))
		if err != nil {
			t.Fatal(err)
		}
		one, err := GA(s, 3, islandGAConfig(seed, 1, 5, 2))
		if err != nil {
			t.Fatal(err)
		}
		if serial.Cost != one.Cost || !serial.Best.Equal(one.Best) {
			t.Fatalf("seed %d: islands=1 diverged from serial GA: %d vs %d", seed, serial.Cost, one.Cost)
		}
		if serial.Evaluations != one.Evaluations || serial.Generations != one.Generations {
			t.Fatalf("seed %d: stats diverged: evals %d vs %d, gens %d vs %d",
				seed, serial.Evaluations, one.Evaluations, serial.Generations, one.Generations)
		}
		if len(serial.History) != len(one.History) {
			t.Fatalf("seed %d: history lengths diverged", seed)
		}
		for g := range serial.History {
			if serial.History[g] != one.History[g] {
				t.Fatalf("seed %d: history diverged at generation %d", seed, g)
			}
		}
	}
}

// The island GA must be bit-identical for a fixed (Islands,
// MigrationEvery, Elites, Seed) tuple regardless of the worker count.
func TestIslandGADeterministicAcrossWorkers(t *testing.T) {
	rng := rand.New(rand.NewSource(44))
	s := randSeq(rng, 14, 160)
	base := islandGAConfig(42, 3, 4, 2)
	base.Generations = 12

	var ref *GAResult
	for _, workers := range []int{1, 4, runtime.GOMAXPROCS(0)} {
		cfg := base
		cfg.Workers = workers
		r, err := GA(s, 4, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if ref == nil {
			ref = r
			continue
		}
		if r.Cost != ref.Cost || !r.Best.Equal(ref.Best) {
			t.Fatalf("workers=%d diverged: %d vs %d", workers, r.Cost, ref.Cost)
		}
		if r.Evaluations != ref.Evaluations || r.Generations != ref.Generations {
			t.Fatalf("workers=%d stats diverged: evals %d vs %d", workers, r.Evaluations, ref.Evaluations)
		}
		for g := range ref.History {
			if r.History[g] != ref.History[g] {
				t.Fatalf("workers=%d history diverged at generation %d", workers, g)
			}
		}
	}
	if err := ref.Best.Validate(s, 0); err != nil {
		t.Fatalf("island GA produced invalid placement: %v", err)
	}
}

// The same determinism property under the multi-port objective, where
// fitness evaluation goes through the port cost model instead of the
// kernel.
func TestIslandGADeterministicMultiPort(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	s := randSeq(rng, 10, 100)
	pm, err := NewPortModel(16, 2)
	if err != nil {
		t.Fatal(err)
	}
	base := islandGAConfig(7, 3, 3, 1)
	base.Generations = 9
	base.Port = pm

	var ref *GAResult
	for _, workers := range []int{1, 3} {
		cfg := base
		cfg.Workers = workers
		r, err := GA(s, 3, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if ref == nil {
			ref = r
		} else if r.Cost != ref.Cost || !r.Best.Equal(ref.Best) {
			t.Fatalf("multi-port workers=%d diverged: %d vs %d", workers, r.Cost, ref.Cost)
		}
	}
	// The reported cost must be the port objective of the best placement.
	want, err := PortCost(s, ref.Best, pm)
	if err != nil {
		t.Fatal(err)
	}
	if ref.Cost != want {
		t.Fatalf("island GA cost %d != port objective %d", ref.Cost, want)
	}
}

// Migration must actually matter: with more than one island the ensemble
// best can only improve on (or match) each island run alone, and the
// composed statistics must aggregate all islands.
func TestIslandGAComposition(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	s := randSeq(rng, 12, 140)
	cfg := islandGAConfig(11, 4, 5, 2)
	cfg.Generations = 10
	r, err := GA(s, 4, cfg)
	if err != nil {
		t.Fatal(err)
	}
	single := cfg
	single.Islands = 1
	solo, err := GA(s, 4, single)
	if err != nil {
		t.Fatal(err)
	}
	// Island 0 starts on the unchanged run seed, so until the first
	// migration it tracks the solo run exactly; afterwards trajectories
	// diverge, but for this fixed seed the 4-island ensemble keeps pace
	// with the solo run (and both runs are deterministic, so this cannot
	// flake).
	if r.Cost > solo.Cost {
		t.Fatalf("4-island ensemble (%d) worse than its own island 0 alone (%d)", r.Cost, solo.Cost)
	}
	if r.Evaluations <= solo.Evaluations {
		t.Fatalf("ensemble evaluations %d not aggregated (solo %d)", r.Evaluations, solo.Evaluations)
	}
	if r.Generations != cfg.Generations {
		t.Fatalf("ensemble generations %d, want %d", r.Generations, cfg.Generations)
	}
	if len(r.History) != cfg.Generations {
		t.Fatalf("history length %d, want %d", len(r.History), cfg.Generations)
	}
}

// IslandProgress must report every island each round, islands ascending,
// with the monotone per-island best.
func TestIslandProgressReports(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	s := randSeq(rng, 10, 90)
	cfg := islandGAConfig(2, 3, 4, 1)
	cfg.Generations = 12
	type ev struct {
		island, gen int
		best        int64
	}
	var got []ev
	cfg.IslandProgress = func(island, generation int, best int64) {
		got = append(got, ev{island, generation, best})
	}
	if _, err := GA(s, 3, cfg); err != nil {
		t.Fatal(err)
	}
	rounds := 3 // 12 generations / MigrationEvery 4
	if len(got) != rounds*cfg.Islands {
		t.Fatalf("got %d progress events, want %d", len(got), rounds*cfg.Islands)
	}
	for i, e := range got {
		if e.island != i%cfg.Islands {
			t.Fatalf("event %d from island %d, want ascending order", i, e.island)
		}
		if wantGen := (i/cfg.Islands + 1) * 4; e.gen != wantGen {
			t.Fatalf("event %d at generation %d, want %d", i, e.gen, wantGen)
		}
	}
}

// Cancelling the context mid-search returns the best-so-far placement
// together with the context error, at every API level.
func TestIslandGACancellation(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	s := randSeq(rng, 12, 120)
	cfg := islandGAConfig(5, 3, 10, 2)
	cfg.Generations = 1 << 30 // far beyond any deadline

	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	start := time.Now()
	r, err := GAContext(ctx, s, 3, cfg)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want DeadlineExceeded", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("cancellation took %v, want prompt interrupt", elapsed)
	}
	if r == nil || r.Best == nil {
		t.Fatal("cancelled island GA returned no best-so-far")
	}
	if err := r.Best.Validate(s, 0); err != nil {
		t.Fatalf("best-so-far invalid: %v", err)
	}

	// Serial GA path: same contract.
	serial := quickGA(5)
	serial.Generations = 1 << 30
	ctx2, cancel2 := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel2()
	r2, err := GAContext(ctx2, s, 3, serial)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("serial err = %v, want DeadlineExceeded", err)
	}
	if r2 == nil || r2.Best == nil {
		t.Fatal("cancelled serial GA returned no best-so-far")
	}

	// An already-cancelled context still yields the initial population's
	// best rather than nothing.
	ctx3, cancel3 := context.WithCancel(context.Background())
	cancel3()
	r3, err := GAContext(ctx3, s, 3, islandGAConfig(5, 2, 5, 1))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-cancelled err = %v, want Canceled", err)
	}
	if r3 == nil || r3.Best == nil {
		t.Fatal("pre-cancelled island GA returned no best-so-far")
	}
}

// Stress the concurrent island loop under the race detector: many small
// rounds with migration between every one of them. Skipped under -short;
// CI runs it with -race explicitly.
func TestIslandGARaceStress(t *testing.T) {
	if testing.Short() {
		t.Skip("stress test; run without -short (CI runs it under -race)")
	}
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 8; trial++ {
		s := randSeq(rng, 8+rng.Intn(8), 80+rng.Intn(80))
		cfg := islandGAConfig(int64(trial), 2+trial%3, 1, 1+trial%2)
		cfg.Generations = 6
		cfg.Workers = 1 + trial%5
		r, err := GA(s, 2+trial%3, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if err := r.Best.Validate(s, 0); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
	}
}

// islandSeed must keep island 0 on the run seed and decorrelate the rest.
func TestIslandSeedDerivation(t *testing.T) {
	if islandSeed(42, 0) != 42 {
		t.Fatal("island 0 must keep the run seed")
	}
	seen := map[int64]bool{}
	for i := 0; i < 64; i++ {
		s := islandSeed(42, i)
		if seen[s] {
			t.Fatalf("island seed collision at island %d", i)
		}
		seen[s] = true
	}
}
