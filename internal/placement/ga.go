package placement

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"sort"
	"sync"

	"repro/internal/trace"
)

// GAConfig carries the genetic-algorithm parameters of section III-C of
// the paper. DefaultGAConfig returns the published values.
type GAConfig struct {
	// Mu is the population size carried between generations (µ = 100).
	Mu int
	// Lambda is the number of offspring per generation (λ = 100).
	Lambda int
	// Generations is the number of iterations (200 in the evaluation;
	// 2000 for the long-run optimality probe).
	Generations int
	// TournamentK is the tournament size for selection (4).
	TournamentK int
	// MutationRate is the per-offspring probability of applying one
	// mutation after crossover. The paper does not publish this value;
	// 0.5 is used and ablated in bench_test.go.
	MutationRate float64
	// MoveWeight, TransposeWeight, PermuteWeight skew the choice between
	// the three mutation operators. The paper skews the destructive
	// whole-DBC permutation against the others "in a ratio of 10 : 3".
	MoveWeight      int
	TransposeWeight int
	PermuteWeight   int
	// ImproveWeight, when positive, adds a fourth, memetic mutation
	// operator to the weighted choice: one delta-evaluated 2-opt
	// improvement sweep (DeltaEvaluator, delta.go) over the offset order
	// of one random DBC. Each candidate move costs O(freq) instead of a
	// full trace replay, so the operator is affordable inside the
	// breeding loop. Not part of the paper's GA; 0 (the default)
	// disables it. The "GA-2opt" registry strategy enables it.
	ImproveWeight int
	// Seed drives the deterministic PRNG.
	Seed int64
	// Seeds optionally injects heuristic placements into the initial
	// population (the paper seeds with its heuristic results).
	Seeds []*Placement
	// Capacity, when positive, rejects DBC overflows during search.
	Capacity int
	// Workers evaluates offspring fitness on this many goroutines
	// (0 or 1 = sequential). Search decisions stay on one PRNG stream, so
	// results are deterministic for a fixed Seed regardless of Workers.
	Workers int
	// Kernel optionally supplies a pre-built cost kernel for the
	// sequence; fitness evaluation runs through it in O(nnz) per
	// individual. When nil (or built from a different sequence) the GA
	// builds its own — the build is O(accesses) once, against thousands
	// of per-individual replays it replaces. Costs are bit-identical to
	// the replay path either way.
	Kernel *CostKernel
	// Port, when non-nil, switches the objective to the multi-port cost
	// model: fitness is the exact nearest-port replay (portcost.go) and
	// the memetic improve operator polishes with the port-aware
	// evaluator, so the GA searches the objective the device will
	// realize instead of the single-port proxy. The kernel and its DBC
	// cost cache only price the single-port model and are bypassed.
	// Strategies resolve this from Options.Ports; nil is the paper's
	// single-port model.
	Port *PortModel
	// Islands, when > 1, switches to the island model (islands.go): that
	// many independent populations evolve on derived seeds and exchange
	// elites over a ring every MigrationEvery generations, with islands
	// running concurrently on up to Workers goroutines. Generations,
	// Mu and Lambda are per island. Results are bit-identical for a
	// fixed (Islands, MigrationEvery, Elites, Seed) tuple regardless of
	// Workers and goroutine scheduling. 0 or 1 is the serial GA.
	Islands int
	// MigrationEvery is the island-model migration interval in
	// generations (0 means DefaultMigrationEvery). Ignored unless
	// Islands > 1.
	MigrationEvery int
	// Elites is the number of top individuals each island sends to its
	// ring successor per migration (0 means DefaultElites, clamped to
	// Mu). Ignored unless Islands > 1.
	Elites int
	// IslandProgress, when non-nil and Islands > 1, receives each
	// island's generation count and best cost after every migration
	// round. It is invoked from the coordinating goroutine between
	// rounds (islands ascending), so it needs no locking of its own.
	IslandProgress func(island, generation int, best int64)
	// Cost, when non-nil, names the objective the search optimizes for.
	// Fitness remains the int64 shift count (the kernel/delta/port hot
	// paths are untouched): every constructible objective is strictly
	// monotone in shifts for a fixed configuration (costmodel.go), so
	// CostModel.Better is exactly `a < b` and selection, elitism and the
	// best-so-far trajectory are bit-identical across objectives. The
	// comparison sites route through better() to keep that reduction in
	// one place; the model prices the final result at the reporting
	// boundary, not here. nil is the raw shift objective.
	Cost *CostModel
}

// better reports whether fitness a beats fitness b under the configured
// objective. Fitness is the shift count even when Cost carries a derived
// objective (energy, runtime, faulty) — the monotone reduction makes
// CostModel.Better coincide with `a < b`, so trajectories (and the
// determinism tests that pin them) are identical across objectives.
// Ties keep the earlier individual, as the serial GA always has.
func (cfg *GAConfig) better(a, b int64) bool {
	if m := cfg.Cost; m != nil {
		return m.Better(a, b)
	}
	return a < b
}

// DefaultMigrationEvery is the island-model migration interval used when
// GAConfig.MigrationEvery is 0: long enough for islands to diverge
// between exchanges, short enough that a good elite spreads around a
// small ring within a default 200-generation run.
const DefaultMigrationEvery = 10

// DefaultElites is the per-migration elite count used when
// GAConfig.Elites is 0.
const DefaultElites = 2

// DefaultGAConfig returns the paper's published GA parameters.
func DefaultGAConfig() GAConfig {
	return GAConfig{
		Mu:              100,
		Lambda:          100,
		Generations:     200,
		TournamentK:     4,
		MutationRate:    0.5,
		MoveWeight:      10,
		TransposeWeight: 10,
		PermuteWeight:   3,
		Seed:            1,
	}
}

// GAResult reports the best placement found and search statistics.
type GAResult struct {
	Best        *Placement
	Cost        int64
	Generations int
	Evaluations int64
	// History records the best cost after every generation, for
	// convergence plots.
	History []int64
}

type individual struct {
	p    *Placement
	cost int64
}

// GA runs the paper's µ+λ genetic algorithm over complete placements for
// the sequence into q DBCs. It is GAContext without cancellation.
func GA(s *trace.Sequence, q int, cfg GAConfig) (*GAResult, error) {
	//rtmlint:ctxcheck-ok legacy compat entry point without cancellation; no caller context exists
	return GAContext(context.Background(), s, q, cfg)
}

// GAContext is GA with cooperative cancellation: the context is checked
// between generations (and, under the island model, between migration
// rounds), so a Lab.Place deadline interrupts a long run instead of
// being ignored. On cancellation it returns the best placement found so
// far together with the context's error — callers that can use a
// partial result get one, callers that cannot treat it as a plain
// failure. With cfg.Islands > 1 the search runs the island model of
// islands.go.
func GAContext(ctx context.Context, s *trace.Sequence, q int, cfg GAConfig) (*GAResult, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if cfg.Islands > 1 {
		return islandGA(ctx, s, q, cfg)
	}
	r, err := newGARun(s, q, cfg)
	if err != nil {
		return nil, err
	}
	if r.trivial != nil {
		return r.trivial, nil
	}
	for gen := 0; gen < cfg.Generations; gen++ {
		if err := ctx.Err(); err != nil {
			return r.result(), err
		}
		r.step()
	}
	return r.result(), nil
}

// gaRun is one GA population mid-search: the serial GA is a loop of
// step() calls over a single gaRun, and the island model advances one
// gaRun per island (islands.go), migrating elites between rounds. All
// run-long state (PRNG stream, kernel + DBC cost cache, scratch buffers,
// placement free list) lives here, so stepping stays allocation-free and
// a run split into rounds is bit-identical to an uninterrupted one.
type gaRun struct {
	s    *trace.Sequence
	q    int
	cfg  GAConfig
	rng  *rand.Rand
	vars []int

	lookup  *Lookup
	kern    *CostKernel
	cache   *dbcCostCache
	portOff []int

	pop  []individual
	best individual

	xsc          xoverScratch // crossover's variable→DBC tables, reused all run
	pp           placementPool
	workerCaches []*workerEval

	gens      int
	evalCount int64
	history   []int64

	// trivial short-circuits a sequence with no accessed variables: the
	// search space is a single empty placement and stepping is
	// meaningless.
	trivial *GAResult
}

// newGARun validates the configuration and initializes the population
// (heuristic seeds first, then random placements), exactly as the serial
// GA always has.
func newGARun(s *trace.Sequence, q int, cfg GAConfig) (*gaRun, error) {
	if q <= 0 {
		return nil, fmt.Errorf("placement: q must be positive, got %d", q)
	}
	if cfg.Mu <= 0 || cfg.Lambda <= 0 || cfg.Generations < 0 || cfg.TournamentK <= 0 {
		return nil, fmt.Errorf("placement: invalid GA config %+v", cfg)
	}
	a := trace.Analyze(s)
	vars := a.ByFirstUse() // variables indexed by appearance order, as the crossover requires
	if len(vars) == 0 {
		return &gaRun{trivial: &GAResult{Best: NewEmpty(q)}}, nil
	}
	// The history preallocation is capped: a deadline-bounded run may ask
	// for a huge generation budget and be cancelled after a handful, and
	// an eager cfg.Generations-sized buffer would be allocated up front.
	histCap := cfg.Generations
	if histCap > 4096 {
		histCap = 4096
	}
	r := &gaRun{
		s:       s,
		q:       q,
		cfg:     cfg,
		rng:     rand.New(rand.NewSource(cfg.Seed)),
		vars:    vars,
		lookup:  &Lookup{DBCOf: make([]int, s.NumVars()), Offset: make([]int, s.NumVars())},
		history: make([]int64, 0, histCap),
	}

	// All fitness evaluation runs through the cost kernel: O(nnz) per
	// individual, allocation-free after this point (the lookup buffer is
	// reused in place). cfg.Kernel shares one build across callers (the
	// engine batch layer, repeated GA runs on one sequence, the islands
	// of one island run). Under a multi-port objective the kernel and
	// its DBC cache cannot price the stateful model; fitness is the
	// exact multi-port replay instead, allocation-free on the same
	// reused buffers.
	if cfg.Port == nil {
		r.kern = kernelFor(cfg.Kernel, s)
		r.cfg.Kernel = r.kern // the memetic improve operator derives its DeltaEvaluator from it
		r.cache = newDBCCostCache(r.kern)
	} else {
		r.portOff = make([]int, q)
	}

	r.pop = make([]individual, 0, cfg.Mu)
	for _, seed := range cfg.Seeds {
		if len(r.pop) == cfg.Mu {
			break
		}
		if seed.NumDBCs() != q {
			return nil, fmt.Errorf("placement: seed has %d DBCs, want %d", seed.NumDBCs(), q)
		}
		c := seed.Clone()
		r.pop = append(r.pop, individual{p: c, cost: r.eval(c)})
	}
	for len(r.pop) < cfg.Mu {
		p := randomPlacement(r.rng, vars, q, cfg.Capacity)
		r.pop = append(r.pop, individual{p: p, cost: r.eval(p)})
	}

	r.best = r.pop[0]
	for _, ind := range r.pop[1:] {
		if r.cfg.better(ind.cost, r.best.cost) {
			r.best = ind
		}
	}
	return r, nil
}

// eval prices one placement under the run's objective.
func (r *gaRun) eval(p *Placement) int64 {
	fillLookup(r.lookup, p)
	r.evalCount++
	if r.cfg.Port != nil {
		return portCostLookup(r.s, r.lookup, r.cfg.Port, r.portOff)
	}
	return r.cache.eval(r.lookup, p)
}

// step advances the population by one generation.
func (r *gaRun) step() {
	cfg := r.cfg
	// Breed the whole offspring batch first (sequential, one PRNG
	// stream), then evaluate fitness — possibly in parallel.
	offspring := make([]individual, 0, cfg.Lambda)
	for len(offspring) < cfg.Lambda {
		p1 := tournament(r.rng, r.pop, cfg.TournamentK, &cfg)
		p2 := tournament(r.rng, r.pop, cfg.TournamentK, &cfg)
		c1, c2 := r.pp.clone(p1.p), r.pp.clone(p2.p)
		crossoverInto(r.rng, c1, c2, r.vars, cfg.Capacity, &r.xsc)
		for _, c := range []*Placement{c1, c2} {
			if len(offspring) == cfg.Lambda {
				break
			}
			if r.rng.Float64() < cfg.MutationRate {
				mutate(r.rng, c, r.s, cfg)
			}
			offspring = append(offspring, individual{p: c})
		}
	}
	if cfg.Workers > 1 {
		if r.workerCaches == nil {
			r.workerCaches = makeWorkerCaches(r.s, r.kern, cfg.Port, r.q, cfg.Workers)
		}
		evalParallel(r.workerCaches, offspring)
		r.evalCount += int64(len(offspring))
	} else {
		for i := range offspring {
			offspring[i].cost = r.eval(offspring[i].p)
		}
	}
	// µ+λ selection via tournaments over the combined pool, with
	// elitism: the best individual always survives.
	pool := append(r.pop, offspring...)
	next := make([]individual, 0, cfg.Mu)
	poolBest := pool[0]
	for _, ind := range pool[1:] {
		if cfg.better(ind.cost, poolBest.cost) {
			poolBest = ind
		}
	}
	next = append(next, poolBest)
	for len(next) < cfg.Mu {
		next = append(next, tournament(r.rng, pool, cfg.TournamentK, &cfg))
	}
	r.pop = next
	if cfg.better(poolBest.cost, r.best.cost) {
		r.best = poolBest
	}
	r.gens++
	r.history = append(r.history, r.best.cost)

	// Recycle the placements of offspring that did not survive
	// selection (offspring pointers are unique, so no double-free;
	// the all-time best is pinned even when an equal-cost rival
	// displaced it from the population).
	for _, o := range offspring {
		survived := o.p == r.best.p
		for _, ind := range r.pop {
			if survived {
				break
			}
			survived = ind.p == o.p
		}
		if !survived {
			r.pp.put(o.p)
		}
	}
}

// result packages the run's best-so-far state. Generations reports the
// generations actually stepped, so a cancelled run is distinguishable
// from a completed one.
func (r *gaRun) result() *GAResult {
	return &GAResult{
		Best:        r.best.p.Clone(),
		Cost:        r.best.cost,
		Generations: r.gens,
		Evaluations: r.evalCount,
		History:     r.history,
	}
}

// workerEval is one parallel-evaluation worker's private state: a
// lookup buffer and a DBC cost cache (or, under a multi-port objective,
// a track-state buffer for the exact replay) that live for the whole GA
// run, so cross-generation content sharing (elites, converged
// populations) hits the cache in parallel mode exactly as it does
// serially.
type workerEval struct {
	seq    *trace.Sequence
	lookup *Lookup
	cache  *dbcCostCache
	port   *PortModel
	off    []int
}

func makeWorkerCaches(s *trace.Sequence, kern *CostKernel, pm *PortModel, q, workers int) []*workerEval {
	out := make([]*workerEval, workers)
	for w := range out {
		we := &workerEval{
			seq:    s,
			lookup: &Lookup{DBCOf: make([]int, s.NumVars()), Offset: make([]int, s.NumVars())},
			port:   pm,
		}
		if pm == nil {
			we.cache = newDBCCostCache(kern)
		} else {
			we.off = make([]int, q)
		}
		out[w] = we
	}
	return out
}

// evalParallel computes offspring fitness on a worker pool; each worker
// owns its run-long buffers, and all workers share the immutable kernel
// (or port model). Costs are identical to the sequential path (caches
// change speed, never values).
func evalParallel(workers []*workerEval, offspring []individual) {
	var wg sync.WaitGroup
	next := make(chan int)
	n := len(workers)
	if n > len(offspring) {
		n = len(offspring)
	}
	for w := 0; w < n; w++ {
		we := workers[w]
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				fillLookup(we.lookup, offspring[i].p)
				if we.port != nil {
					offspring[i].cost = portCostLookup(we.seq, we.lookup, we.port, we.off)
				} else {
					offspring[i].cost = we.cache.eval(we.lookup, offspring[i].p)
				}
			}
		}()
	}
	for i := range offspring {
		next <- i
	}
	close(next)
	wg.Wait()
}

func fillLookup(l *Lookup, p *Placement) {
	for v := range l.DBCOf {
		l.DBCOf[v] = -1
		l.Offset[v] = -1
	}
	for d, vars := range p.DBC {
		for off, v := range vars {
			l.DBCOf[v] = d
			l.Offset[v] = off
		}
	}
}

// tournament draws k individuals with replacement and keeps the fittest
// under the configured objective (raw shift order for every objective —
// see GAConfig.better).
func tournament(rng *rand.Rand, pop []individual, k int, cfg *GAConfig) individual {
	best := pop[rng.Intn(len(pop))]
	for i := 1; i < k; i++ {
		c := pop[rng.Intn(len(pop))]
		if cfg.better(c.cost, best.cost) {
			best = c
		}
	}
	return best
}

// randomPlacement assigns each variable to a uniform random DBC and
// shuffles each DBC, respecting capacity when positive.
func randomPlacement(rng *rand.Rand, vars []int, q, capacity int) *Placement {
	p := NewEmpty(q)
	randomPlacementInto(p, rng, vars, capacity)
	return p
}

// randomPlacementInto is randomPlacement into a reusable placement (the
// DBC slices are truncated and refilled, keeping their capacity). The
// PRNG consumption is identical to randomPlacement's, so a search that
// switches to buffer reuse visits the same placements.
func randomPlacementInto(p *Placement, rng *rand.Rand, vars []int, capacity int) {
	q := len(p.DBC)
	for d := range p.DBC {
		p.DBC[d] = p.DBC[d][:0]
	}
	for _, v := range vars {
		d := rng.Intn(q)
		if capacity > 0 {
			for tries := 0; len(p.DBC[d]) >= capacity && tries < q; tries++ {
				d = (d + 1) % q
			}
		}
		p.DBC[d] = append(p.DBC[d], v)
	}
	for _, d := range p.DBC {
		rng.Shuffle(len(d), func(i, j int) { d[i], d[j] = d[j], d[i] })
	}
}

// xoverScratch holds crossover's two variable→DBC tables. They are
// rebuilt (densely, no hashing) at every call and reused across the
// whole run, so the breeding loop stops allocating per pair; entries of
// unplaced variables are stale but never read (both parents place the
// same variable set, and only placed variables are looked up).
type xoverScratch struct {
	d1, d2 []int
}

// placementPool is a free list of dead placements. The breeding loop
// clones two parents per pair, and selection discards most offspring a
// generation later; recycling their placements (and DBC slices) removes
// the dominant allocation source of the GA. Purely a memory
// optimization: clone contents are identical either way.
type placementPool struct {
	free []*Placement
}

// clone returns a deep copy of src, reusing a recycled placement's
// storage when one is available.
func (pp *placementPool) clone(src *Placement) *Placement {
	n := len(pp.free)
	if n == 0 {
		return src.Clone()
	}
	dst := pp.free[n-1]
	pp.free = pp.free[:n-1]
	if cap(dst.DBC) < len(src.DBC) {
		dst.DBC = make([][]int, len(src.DBC))
	}
	dst.DBC = dst.DBC[:len(src.DBC)]
	for d, vars := range src.DBC {
		dst.DBC[d] = append(dst.DBC[d][:0], vars...)
	}
	return dst
}

// put returns a dead placement to the free list.
func (pp *placementPool) put(p *Placement) { pp.free = append(pp.free, p) }

// crossover implements the paper's 2-fold crossover: variables are indexed
// in sequence-appearance order; a contiguous index range [f, l] is chosen
// and the DBC assignments of those variables are swapped between the two
// parents. A swapped variable is removed from its old DBC and appended to
// the end of its new DBC, so within-DBC orders of untouched variables are
// preserved and both children remain valid placements. When capacity is
// positive, a move that would overflow the target DBC is skipped for that
// child (the other child may still take its half of the swap).
func crossover(rng *rand.Rand, i, j *Placement, vars []int, capacity int, sc *xoverScratch) (*Placement, *Placement) {
	c1, c2 := i.Clone(), j.Clone()
	crossoverInto(rng, c1, c2, vars, capacity, sc)
	return c1, c2
}

// crossoverInto is crossover operating on the pre-cloned children in
// place (the breeding loop clones through its placement pool first).
func crossoverInto(rng *rand.Rand, c1, c2 *Placement, vars []int, capacity int, sc *xoverScratch) {
	if len(vars) < 2 {
		return
	}
	f := rng.Intn(len(vars))
	l := rng.Intn(len(vars))
	if f > l {
		f, l = l, f
	}
	d1 := dbcIndexInto(&sc.d1, c1)
	d2 := dbcIndexInto(&sc.d2, c2)
	for _, v := range vars[f : l+1] {
		r, s := d1[v], d2[v]
		if r == s {
			continue
		}
		if capacity <= 0 || len(c1.DBC[s]) < capacity {
			moveVar(c1, v, r, s)
		}
		if capacity <= 0 || len(c2.DBC[r]) < capacity {
			moveVar(c2, v, s, r)
		}
	}
}

// dbcIndexInto fills a dense variable→DBC table into the reusable
// buffer, growing it to cover the placement's variable range.
func dbcIndexInto(buf *[]int, p *Placement) []int {
	width := 0
	for _, vars := range p.DBC {
		for _, v := range vars {
			if v+1 > width {
				width = v + 1
			}
		}
	}
	if cap(*buf) < width {
		*buf = make([]int, width)
	}
	m := (*buf)[:width]
	for d, vars := range p.DBC {
		for _, v := range vars {
			m[v] = d
		}
	}
	return m
}

func moveVar(p *Placement, v, from, to int) {
	d := p.DBC[from]
	for i, x := range d {
		if x == v {
			p.DBC[from] = append(d[:i], d[i+1:]...)
			break
		}
	}
	p.DBC[to] = append(p.DBC[to], v)
}

// mutate applies one of the paper's three mutation operators — move a
// variable to the end of another DBC, transpose two variables inside one
// DBC, or randomly permute every DBC — or, when ImproveWeight is positive,
// the memetic local-improvement operator, chosen with the configured
// weights.
func mutate(rng *rand.Rand, p *Placement, s *trace.Sequence, cfg GAConfig) {
	total := cfg.MoveWeight + cfg.TransposeWeight + cfg.PermuteWeight + cfg.ImproveWeight
	if total <= 0 {
		return
	}
	switch r := rng.Intn(total); {
	case r < cfg.MoveWeight:
		mutateMove(rng, p, cfg.Capacity)
	case r < cfg.MoveWeight+cfg.TransposeWeight:
		mutateTranspose(rng, p)
	case r < cfg.MoveWeight+cfg.TransposeWeight+cfg.PermuteWeight:
		mutatePermute(rng, p)
	default:
		mutateImprove(rng, p, s, cfg)
	}
}

// mutateImprove runs one first-improvement 2-opt sweep over the offset
// order of one random DBC with at least three variables, evaluated
// incrementally. It can only keep or lower the individual's fitness; the
// GA's exploration pressure comes from the other operators. With a
// kernel at hand (the GA always threads its own) the DeltaEvaluator is
// derived from it in O(nnz) instead of replaying the access stream.
// Under a multi-port objective the sweep runs on the port-aware
// evaluator instead, so the polish improves the same cost the fitness
// function charges.
func mutateImprove(rng *rand.Rand, p *Placement, s *trace.Sequence, cfg GAConfig) {
	var eligible []int
	for d, vars := range p.DBC {
		if len(vars) >= 3 {
			eligible = append(eligible, d)
		}
	}
	if len(eligible) == 0 {
		return
	}
	d := eligible[rng.Intn(len(eligible))]
	if pm := cfg.Port; pm != nil {
		e := NewPortDeltaEvaluator(s, p.DBC[d], pm)
		if e.Accesses() < 2 {
			return
		}
		e.ImprovePass()
		copy(p.DBC[d], e.CurrentOrder())
		return
	}
	kern := cfg.Kernel
	var e *DeltaEvaluator
	if kern != nil && kern.Sequence() == s {
		e = NewDeltaEvaluatorFromKernel(kern, p.DBC[d])
	} else {
		e = NewDeltaEvaluator(s, p.DBC[d])
	}
	if e.Accesses() < 2 {
		return
	}
	e.ImprovePass()
	copy(p.DBC[d], e.CurrentOrder())
}

func mutateMove(rng *rand.Rand, p *Placement, capacity int) {
	if len(p.DBC) < 2 {
		return
	}
	// Pick a random variable uniformly over placed variables.
	n := p.NumPlaced()
	if n == 0 {
		return
	}
	k := rng.Intn(n)
	from, idx := -1, -1
	for d, vars := range p.DBC {
		if k < len(vars) {
			from, idx = d, k
			break
		}
		k -= len(vars)
	}
	to := rng.Intn(len(p.DBC) - 1)
	if to >= from {
		to++
	}
	if capacity > 0 && len(p.DBC[to]) >= capacity {
		return
	}
	v := p.DBC[from][idx]
	p.DBC[from] = append(p.DBC[from][:idx], p.DBC[from][idx+1:]...)
	p.DBC[to] = append(p.DBC[to], v)
}

func mutateTranspose(rng *rand.Rand, p *Placement) {
	// Choose among DBCs with at least two variables.
	var eligible []int
	for d, vars := range p.DBC {
		if len(vars) >= 2 {
			eligible = append(eligible, d)
		}
	}
	if len(eligible) == 0 {
		return
	}
	d := eligible[rng.Intn(len(eligible))]
	vars := p.DBC[d]
	i := rng.Intn(len(vars))
	j := rng.Intn(len(vars) - 1)
	if j >= i {
		j++
	}
	vars[i], vars[j] = vars[j], vars[i]
}

func mutatePermute(rng *rand.Rand, p *Placement) {
	for _, d := range p.DBC {
		rng.Shuffle(len(d), func(i, j int) { d[i], d[j] = d[j], d[i] })
	}
}

// RWConfig configures the random-walk search baseline.
type RWConfig struct {
	// Iterations is the number of random placements evaluated (60 000 in
	// the paper, the upper bound on individuals the GA could evaluate).
	Iterations int
	Seed       int64
	Capacity   int
	// Kernel optionally supplies a pre-built cost kernel for the
	// sequence, exactly as GAConfig.Kernel does for the GA.
	Kernel *CostKernel
	// Port, when non-nil, evaluates candidates under the multi-port
	// cost model (bounded exact replay), exactly as GAConfig.Port does
	// for the GA. nil is the paper's single-port model.
	Port *PortModel
	// Cost, when non-nil, names the objective the walk optimizes for.
	// As with GAConfig.Cost, candidates are still compared by raw shift
	// count — the bounded evaluators require the additive int64 shift
	// structure, and the monotone reduction (costmodel.go) makes that
	// comparison exactly the scalarized one — so the visited best-so-far
	// sequence is identical across objectives. nil is the raw shift
	// objective.
	Cost *CostModel
}

// DefaultRWConfig returns the paper's random-walk parameters.
func DefaultRWConfig() RWConfig { return RWConfig{Iterations: 60000, Seed: 1} }

// RandomWalk generates random placements of the variables to DBCs with
// random within-DBC permutations and returns the best one found.
func RandomWalk(s *trace.Sequence, q int, cfg RWConfig) (*Placement, int64, error) {
	if q <= 0 {
		return nil, 0, fmt.Errorf("placement: q must be positive, got %d", q)
	}
	if cfg.Iterations <= 0 {
		return nil, 0, fmt.Errorf("placement: iterations must be positive, got %d", cfg.Iterations)
	}
	a := trace.Analyze(s)
	vars := a.ByFirstUse()
	rng := rand.New(rand.NewSource(cfg.Seed))
	lookup := &Lookup{DBCOf: make([]int, s.NumVars()), Offset: make([]int, s.NumVars())}

	// One placement buffer is reused across all iterations; only
	// improvements (O(log iterations) of them in expectation) are
	// snapshotted. Evaluation is bounded by the best cost so far: a
	// placement that cannot win is discarded as soon as its partial sum
	// proves it (bounded evaluation is exact below the bound, and at or
	// above the bound the placement is not strictly better, so the
	// best-so-far sequence — and therefore the result — is identical to
	// full evaluation).
	//
	// Random placements are adversarial for the stencil kernel: scans
	// are deep and branch-miss bound, and the linear replay wins unless
	// the trace is strongly loop-compressed (see DESIGN.md §8). Pick the
	// evaluator by the kernel's measured compression; when no shared
	// kernel was supplied, the speculative build aborts (nil) as soon as
	// the table provably exceeds the compression threshold.
	kern := cfg.Kernel
	if kern != nil && kern.Sequence() != s {
		kern = nil
	}
	if cfg.Port == nil {
		if kern == nil {
			kern = buildCostKernel(s, s.Len()/2)
		}
	} else {
		kern = nil // the kernel prices the single-port model only
	}
	useKernel := kern != nil && kern.Candidates() < s.Len()/2
	sc := replayPool.Get().(*replayScratch)
	defer replayPool.Put(sc)
	last := sc.grow(q)
	for v := range lookup.DBCOf {
		lookup.DBCOf[v] = -1
		lookup.Offset[v] = -1
	}

	var best *Placement
	bestCost := int64(math.MaxInt64)
	p := NewEmpty(q)
	for it := 0; it < cfg.Iterations; it++ {
		randomPlacementLookup(p, lookup, rng, vars, cfg.Capacity)
		var c int64
		switch {
		case cfg.Port != nil:
			c = portCostLookupBounded(s, lookup, cfg.Port, last, bestCost)
		case useKernel:
			c = kern.CostBounded(lookup, bestCost)
		default:
			c = shiftCostLookupBounded(s, lookup, last, bestCost)
		}
		// c is exact whenever it is below bestCost (bounded evaluation),
		// so comparing raw shift counts here is comparing scalarized
		// costs: every objective is strictly monotone in shifts.
		if best == nil || c < bestCost {
			best, bestCost = p.Clone(), c
		}
	}
	return best, bestCost, nil
}

// randomPlacementLookup is randomPlacementInto maintaining the inverse
// lookup alongside: assignments are recorded as they are drawn and
// offsets are patched inside the shuffle swaps, replacing the separate
// O(numVars) fillLookup pass per iteration. The PRNG consumption — and
// therefore the placement sequence — is identical to randomPlacement's.
// Only the placed variables' lookup entries are written; the caller's
// lookup must start out all -1 and be reserved for this loop (unplaced
// variables are never read by the evaluators because they are never
// accessed).
func randomPlacementLookup(p *Placement, l *Lookup, rng *rand.Rand, vars []int, capacity int) {
	q := len(p.DBC)
	for d := range p.DBC {
		p.DBC[d] = p.DBC[d][:0]
	}
	for _, v := range vars {
		d := rng.Intn(q)
		if capacity > 0 {
			for tries := 0; len(p.DBC[d]) >= capacity && tries < q; tries++ {
				d = (d + 1) % q
			}
		}
		l.DBCOf[v] = d
		l.Offset[v] = len(p.DBC[d])
		p.DBC[d] = append(p.DBC[d], v)
	}
	for _, d := range p.DBC {
		rng.Shuffle(len(d), func(i, j int) {
			d[i], d[j] = d[j], d[i]
			l.Offset[d[i]] = i
			l.Offset[d[j]] = j
		})
	}
}

// SortDBCsBySize is a helper used by reports: returns DBC indices ordered
// by descending occupancy.
func SortDBCsBySize(p *Placement) []int {
	idx := make([]int, len(p.DBC))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool { return len(p.DBC[idx[a]]) > len(p.DBC[idx[b]]) })
	return idx
}
