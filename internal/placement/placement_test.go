package placement

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/trace"
)

func randSeq(rng *rand.Rand, numVars, length int) *trace.Sequence {
	vars := make([]int, length)
	for i := range vars {
		vars[i] = rng.Intn(numVars)
	}
	return trace.NewSequence(vars...)
}

func TestPlacementLookupAndValidate(t *testing.T) {
	s := trace.NewSequence(0, 1, 2, 3)
	p := &Placement{DBC: [][]int{{0, 2}, {1, 3}}}
	if err := p.Validate(s, 0); err != nil {
		t.Fatalf("valid placement rejected: %v", err)
	}
	l, err := p.BuildLookup(4)
	if err != nil {
		t.Fatal(err)
	}
	if l.DBCOf[2] != 0 || l.Offset[2] != 1 {
		t.Errorf("lookup for var 2 = (%d,%d), want (0,1)", l.DBCOf[2], l.Offset[2])
	}
	// Duplicate placement.
	dup := &Placement{DBC: [][]int{{0, 1}, {1}}}
	if _, err := dup.BuildLookup(2); err == nil {
		t.Error("duplicate placement accepted")
	}
	// Unplaced accessed variable.
	missing := &Placement{DBC: [][]int{{0, 1}, {2}}}
	if err := missing.Validate(s, 0); err == nil {
		t.Error("missing variable accepted")
	}
	// Capacity violation.
	if err := p.Validate(s, 1); err == nil {
		t.Error("capacity violation accepted")
	}
}

func TestShiftCostBasics(t *testing.T) {
	// One DBC [0 1 2], sequence 0 2 0 1: costs 0(first) + 2 + 2 + 1 = 5.
	s := trace.NewSequence(0, 2, 0, 1)
	p := &Placement{DBC: [][]int{{0, 1, 2}}}
	c, err := ShiftCost(s, p)
	if err != nil {
		t.Fatal(err)
	}
	if c != 5 {
		t.Errorf("cost = %d, want 5", c)
	}
	// Split across two DBCs: 0,2 in DBC0 at offsets 0,1; 1 alone. Costs:
	// 0(first), 1 (0->2), 1 (2->0), 0 (first in DBC1) = 2.
	p2 := &Placement{DBC: [][]int{{0, 2}, {1}}}
	c2, err := ShiftCost(s, p2)
	if err != nil {
		t.Fatal(err)
	}
	if c2 != 2 {
		t.Errorf("split cost = %d, want 2", c2)
	}
}

func TestShiftCostSelfAccessesFree(t *testing.T) {
	s := trace.NewSequence(1, 1, 1, 1)
	p := &Placement{DBC: [][]int{{0, 1}}}
	c, err := ShiftCost(s, p)
	if err != nil {
		t.Fatal(err)
	}
	if c != 0 {
		t.Errorf("self-access cost = %d, want 0", c)
	}
}

// Property: ShiftCost equals EngineCost with one port, for random
// placements and sequences — the fast path and the device model agree.
func TestCostMatchesEngine(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(12)
		s := randSeq(rng, n, 1+rng.Intn(60))
		q := 1 + rng.Intn(4)
		a := trace.Analyze(s)
		p := randomPlacement(rng, a.ByFirstUse(), q, 0)
		fast, err := ShiftCost(s, p)
		if err != nil {
			t.Fatal(err)
		}
		slow, err := EngineCost(s, p, max(p.MaxDBCLen(), 1), 1)
		if err != nil {
			t.Fatal(err)
		}
		if fast != slow {
			t.Fatalf("trial %d: ShiftCost %d != EngineCost %d (seq %v, placement %v)",
				trial, fast, slow, s, p)
		}
	}
}

// Property: with more ports the engine cost never exceeds the single-port
// cost.
func TestMultiPortNeverWorse(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 30; trial++ {
		n := 2 + rng.Intn(10)
		s := randSeq(rng, n, 1+rng.Intn(50))
		a := trace.Analyze(s)
		p := randomPlacement(rng, a.ByFirstUse(), 2, 0)
		domains := max(p.MaxDBCLen(), 2)
		c1, err := EngineCost(s, p, domains, 1)
		if err != nil {
			t.Fatal(err)
		}
		c2, err := EngineCost(s, p, domains, 2)
		if err != nil {
			t.Fatal(err)
		}
		if c2 > c1 {
			t.Fatalf("2-port cost %d > 1-port cost %d", c2, c1)
		}
	}
}

func TestAFDRoundRobin(t *testing.T) {
	// Frequencies: v0 x4, v1 x3, v2 x2, v3 x1.
	s := trace.NewSequence(0, 0, 0, 0, 1, 1, 1, 2, 2, 3)
	a := trace.Analyze(s)
	p, err := AFD(a, 2)
	if err != nil {
		t.Fatal(err)
	}
	// Round robin: 0->DBC0, 1->DBC1, 2->DBC0, 3->DBC1.
	if len(p.DBC[0]) != 2 || p.DBC[0][0] != 0 || p.DBC[0][1] != 2 {
		t.Errorf("DBC0 = %v, want [0 2]", p.DBC[0])
	}
	if len(p.DBC[1]) != 2 || p.DBC[1][0] != 1 || p.DBC[1][1] != 3 {
		t.Errorf("DBC1 = %v, want [1 3]", p.DBC[1])
	}
	if _, err := AFD(a, 0); err == nil {
		t.Error("q=0 accepted")
	}
}

func TestAFDSkipsUnaccessed(t *testing.T) {
	s := &trace.Sequence{Names: []string{"a", "b", "c"}}
	s.Append(0, false)
	s.Append(0, false)
	a := trace.Analyze(s)
	p, _ := AFD(a, 2)
	if p.NumPlaced() != 1 {
		t.Errorf("placed %d variables, want 1 (only accessed ones)", p.NumPlaced())
	}
}

func TestDMASingleDBC(t *testing.T) {
	// q=1 with both disjoint and non-disjoint variables must still place
	// everything in the single DBC.
	s := trace.NewSequence(0, 1, 0, 2, 2, 3, 3)
	a := trace.Analyze(s)
	r, err := DMA(a, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Placement.Validate(s, 0); err != nil {
		t.Fatalf("invalid: %v", err)
	}
	if r.DisjointDBCs != 0 {
		t.Errorf("K = %d, want 0 for single shared DBC", r.DisjointDBCs)
	}
}

func TestDMAAllDisjoint(t *testing.T) {
	// Strictly phased accesses: all variables pairwise disjoint.
	s := trace.NewSequence(0, 0, 1, 1, 2, 2, 3, 3)
	a := trace.Analyze(s)
	r, err := DMA(a, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Disjoint) != 4 {
		t.Errorf("disjoint set size = %d, want 4", len(r.Disjoint))
	}
	c, _ := ShiftCost(s, r.Placement)
	// 4 disjoint vars in access order: at most 3 shifts.
	if c > 3 {
		t.Errorf("cost = %d, want <= 3", c)
	}
}

func TestDMACapacitySplitsDisjointSet(t *testing.T) {
	// 6 pairwise disjoint variables with capacity 2 need K = 3 DBCs.
	s := trace.NewSequence(0, 0, 1, 1, 2, 2, 3, 3, 4, 4, 5, 5)
	a := trace.Analyze(s)
	r, err := DMA(a, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	if r.DisjointDBCs != 3 {
		t.Errorf("K = %d, want 3", r.DisjointDBCs)
	}
	if err := r.Placement.Validate(s, 2); err != nil {
		t.Fatalf("capacity violated: %v", err)
	}
}

func TestDMASpillWhenDisjointExceedsArray(t *testing.T) {
	// 4 disjoint variables, q=2, capacity 2: disjoint set needs 2 DBCs
	// but one must remain for non-disjoint variable 4.
	s := trace.NewSequence(0, 4, 0, 1, 4, 1, 2, 2, 4, 3, 3)
	a := trace.Analyze(s)
	r, err := DMA(a, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Placement.Validate(s, 0); err != nil {
		t.Fatalf("invalid: %v", err)
	}
	if r.DisjointDBCs >= 2 {
		t.Errorf("K = %d, must leave a DBC for non-disjoint variables", r.DisjointDBCs)
	}
}

func TestDMAErrors(t *testing.T) {
	s := trace.NewSequence(0, 1)
	a := trace.Analyze(s)
	if _, err := DMA(a, 0, 0); err == nil {
		t.Error("q=0 accepted")
	}
	if _, err := DMA(a, 2, -1); err == nil {
		t.Error("negative capacity accepted")
	}
}

func TestOFUOrdering(t *testing.T) {
	s := trace.NewSequence(2, 0, 1, 2)
	a := trace.Analyze(s)
	got := OFU([]int{0, 1, 2}, s, a)
	want := []int{2, 0, 1}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("OFU = %v, want %v", got, want)
		}
	}
}

func TestChenPlacesHeavyEdgeAdjacent(t *testing.T) {
	// 0 and 1 alternate heavily; 2 is rare. Chen must put 0 and 1 at
	// adjacent offsets.
	s := trace.NewSequence(0, 1, 0, 1, 0, 1, 0, 1, 2)
	a := trace.Analyze(s)
	got := Chen([]int{0, 1, 2}, s, a)
	pos := map[int]int{}
	for i, v := range got {
		pos[v] = i
	}
	d := pos[0] - pos[1]
	if d < 0 {
		d = -d
	}
	if d != 1 {
		t.Errorf("Chen placed 0 and 1 at distance %d, want 1 (%v)", d, got)
	}
}

func TestShiftsReducePlacesHubCentrally(t *testing.T) {
	// Star: 0 talks to everyone; 0 should not end up at an extreme end.
	s := trace.NewSequence(0, 1, 0, 2, 0, 3, 0, 4, 0, 1, 0, 2, 0, 3, 0, 4)
	a := trace.Analyze(s)
	got := ShiftsReduce([]int{0, 1, 2, 3, 4}, s, a)
	pos := -1
	for i, v := range got {
		if v == 0 {
			pos = i
		}
	}
	if pos == 0 || pos == len(got)-1 {
		t.Errorf("hub placed at extreme offset %d of %v", pos, got)
	}
	// ShiftsReduce should beat OFU on this star.
	p1 := &Placement{DBC: [][]int{got}}
	p2 := &Placement{DBC: [][]int{OFU([]int{0, 1, 2, 3, 4}, s, a)}}
	c1, _ := ShiftCost(s, p1)
	c2, _ := ShiftCost(s, p2)
	if c1 > c2 {
		t.Errorf("ShiftsReduce (%d) worse than OFU (%d)", c1, c2)
	}
}

// Property: every intra heuristic returns a permutation of its input.
func TestIntraHeuristicsArePermutations(t *testing.T) {
	heuristics := map[string]IntraHeuristic{
		"Identity": Identity, "OFU": OFU, "Chen": Chen, "SR": ShiftsReduce,
	}
	rng := rand.New(rand.NewSource(3))
	for name, h := range heuristics {
		for trial := 0; trial < 40; trial++ {
			n := 1 + rng.Intn(10)
			s := randSeq(rng, n, 1+rng.Intn(40))
			a := trace.Analyze(s)
			vars := a.ByFirstUse()
			if len(vars) == 0 {
				continue
			}
			got := h(vars, s, a)
			if len(got) != len(vars) {
				t.Fatalf("%s: length %d, want %d", name, len(got), len(vars))
			}
			seen := map[int]bool{}
			for _, v := range got {
				if seen[v] {
					t.Fatalf("%s: duplicate %d in %v", name, v, got)
				}
				seen[v] = true
			}
			for _, v := range vars {
				if !seen[v] {
					t.Fatalf("%s: lost %d (in %v, out %v)", name, v, vars, got)
				}
			}
		}
	}
}

// Property: DMA always yields a valid placement and never places a
// variable twice, for arbitrary sequences and DBC counts.
func TestDMAAlwaysValid(t *testing.T) {
	f := func(raw []uint8, qRaw, capRaw uint8) bool {
		if len(raw) == 0 {
			return true
		}
		vars := make([]int, len(raw))
		for i, r := range raw {
			vars[i] = int(r % 16)
		}
		s := trace.NewSequence(vars...)
		q := int(qRaw%6) + 1
		capacity := 0
		if capRaw%3 == 0 {
			capacity = int(capRaw%8) + 4
		}
		a := trace.Analyze(s)
		r, err := DMA(a, q, capacity)
		if err != nil {
			return false
		}
		if err := r.Placement.Validate(s, 0); err != nil {
			return false
		}
		return r.Placement.NumDBCs() == q
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: the disjoint set selected by DMA is pairwise disjoint and
// listed in ascending first-use order.
func TestDMADisjointSetIsDisjoint(t *testing.T) {
	f := func(raw []uint8) bool {
		if len(raw) == 0 {
			return true
		}
		vars := make([]int, len(raw))
		for i, r := range raw {
			vars[i] = int(r % 12)
		}
		s := trace.NewSequence(vars...)
		a := trace.Analyze(s)
		r, err := DMA(a, 3, 0)
		if err != nil {
			return false
		}
		for i := 0; i < len(r.Disjoint); i++ {
			for j := i + 1; j < len(r.Disjoint); j++ {
				if !a.Disjoint(r.Disjoint[i], r.Disjoint[j]) {
					return false
				}
			}
			if i > 0 && a.First[r.Disjoint[i]] <= a.First[r.Disjoint[i-1]] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestPlaceGAColdStart(t *testing.T) {
	s := trace.NewSequence(0, 1, 0, 1, 2, 2, 3, 3)
	opts := Options{
		GA: GAConfig{Mu: 10, Lambda: 10, Generations: 8, TournamentK: 4,
			MutationRate: 0.5, MoveWeight: 10, TransposeWeight: 10,
			PermuteWeight: 3, Seed: 1},
		DisableGASeeding: true,
	}
	p, c, err := Place(StrategyGA, s, 2, opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Validate(s, 0); err != nil {
		t.Fatalf("cold GA invalid: %v", err)
	}
	if c < 0 {
		t.Error("negative cost")
	}
}

func TestDMAEmptySequence(t *testing.T) {
	s := &trace.Sequence{}
	a := trace.Analyze(s)
	r, err := DMA(a, 3, 0)
	if err != nil {
		t.Fatal(err)
	}
	if r.Placement.NumPlaced() != 0 || r.DisjointDBCs != 0 {
		t.Errorf("empty sequence produced placement %v (K=%d)", r.Placement, r.DisjointDBCs)
	}
}

func TestDMAOnlyDisjointNoRemaining(t *testing.T) {
	// Every variable disjoint, none left over: the disjoint set may use
	// the whole array.
	s := trace.NewSequence(0, 0, 1, 1, 2, 2, 3, 3, 4, 4, 5, 5)
	a := trace.Analyze(s)
	r, err := DMA(a, 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Placement.Validate(s, 2); err != nil {
		t.Fatalf("capacity violated: %v", err)
	}
	if r.DisjointDBCs != 3 {
		t.Errorf("K = %d, want 3 (6 disjoint vars, capacity 2)", r.DisjointDBCs)
	}
}
