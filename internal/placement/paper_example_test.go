package placement

import (
	"strings"
	"testing"

	"repro/internal/trace"
)

// The worked example of Fig. 3 of the paper: variable set V = {a..i}
// (declared alphabetically), access sequence reconstructed to match every
// published statistic (see internal/trace tests).
func fig3Sequence(t testing.TB) *trace.Sequence {
	t.Helper()
	universe := strings.Split("a b c d e f g h i", " ")
	tokens := strings.Fields("a b a b c a c a d d a i e f e f g e g h g i h i")
	s, err := trace.NewNamedSequenceWithUniverse(universe, tokens...)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func varID(t testing.TB, s *trace.Sequence, name string) int {
	t.Helper()
	for i, n := range s.Names {
		if n == name {
			return i
		}
	}
	t.Fatalf("no variable %q", name)
	return -1
}

func names(s *trace.Sequence, vars []int) string {
	out := make([]string, len(vars))
	for i, v := range vars {
		out[i] = s.Name(v)
	}
	return strings.Join(out, " ")
}

// TestFig3AFDPlacement reproduces Fig. 3-(c): AFD assigns a, g, b, d, h to
// DBC0 and e, i, c, f to DBC1, for a total shift cost of 24 + 15 = 39.
func TestFig3AFDPlacement(t *testing.T) {
	s := fig3Sequence(t)
	a := trace.Analyze(s)
	p, err := AFD(a, 2)
	if err != nil {
		t.Fatal(err)
	}
	if got := names(s, p.DBC[0]); got != "a g b d h" {
		t.Errorf("DBC0 = %q, want %q", got, "a g b d h")
	}
	if got := names(s, p.DBC[1]); got != "e i c f" {
		t.Errorf("DBC1 = %q, want %q", got, "e i c f")
	}
	b, err := ShiftCostBreakdown(s, p)
	if err != nil {
		t.Fatal(err)
	}
	if b.PerDBC[0] != 24 {
		t.Errorf("DBC0 shifts = %d, want 24", b.PerDBC[0])
	}
	if b.PerDBC[1] != 15 {
		t.Errorf("DBC1 shifts = %d, want 15", b.PerDBC[1])
	}
	if b.Total != 39 {
		t.Errorf("total shifts = %d, want 39", b.Total)
	}
}

// TestFig3DMADisjointSet reproduces section III-B: the heuristic selects
// the disjoint combination b, c, d, e, h (frequency sum 11) and leaves
// a, f, g, i for the remaining DBCs.
func TestFig3DMADisjointSet(t *testing.T) {
	s := fig3Sequence(t)
	a := trace.Analyze(s)
	r, err := DMA(a, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got := names(s, r.Disjoint); got != "b c d e h" {
		t.Errorf("disjoint set = %q, want %q", got, "b c d e h")
	}
	if r.DisjointDBCs != 1 {
		t.Errorf("K = %d, want 1", r.DisjointDBCs)
	}
	// DBC0 holds the disjoint variables in access order.
	if got := names(s, r.Placement.DBC[0]); got != "b c d e h" {
		t.Errorf("DBC0 = %q, want access order %q", got, "b c d e h")
	}
	// DBC0's cost: 4 shifts (paper Fig. 3-(d)); at most one shift per
	// disjoint-variable transition.
	b, err := ShiftCostBreakdown(s, r.Placement)
	if err != nil {
		t.Fatal(err)
	}
	if b.PerDBC[0] != 4 {
		t.Errorf("disjoint DBC shifts = %d, want 4", b.PerDBC[0])
	}
}

// TestFig3DMATotal checks the headline of the worked example: the
// sequence-aware placement costs 11 shifts total versus AFD's 39
// (a 3.54x improvement). The figure's DBC1 layout gives 7 shifts; any
// ordering of the leftover variables achieving <= 7 keeps the total <= 11.
func TestFig3DMATotal(t *testing.T) {
	s := fig3Sequence(t)
	a := trace.Analyze(s)
	r, err := DMA(a, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	c, err := ShiftCost(s, r.Placement)
	if err != nil {
		t.Fatal(err)
	}
	if c > 11 {
		t.Errorf("DMA total = %d, want <= 11 (paper: 11)", c)
	}
	// Leftovers are exactly {a, f, g, i}.
	got := map[string]bool{}
	for _, v := range r.Placement.DBC[1] {
		got[s.Name(v)] = true
	}
	for _, want := range []string{"a", "f", "g", "i"} {
		if !got[want] {
			t.Errorf("DBC1 missing %q; got %v", want, r.Placement.DBC[1])
		}
	}
	if len(got) != 4 {
		t.Errorf("DBC1 holds %d variables, want 4", len(got))
	}
}

// TestFig3DisjointSetShiftBound verifies the structural property the
// heuristic exploits: l disjoint variables stored in access order incur at
// most l-1 shifts.
func TestFig3DisjointSetShiftBound(t *testing.T) {
	s := fig3Sequence(t)
	a := trace.Analyze(s)
	r, err := DMA(a, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	b, err := ShiftCostBreakdown(s, r.Placement)
	if err != nil {
		t.Fatal(err)
	}
	if l := len(r.Disjoint); b.PerDBC[0] > int64(l-1) {
		t.Errorf("disjoint DBC shifts %d exceed l-1 = %d", b.PerDBC[0], l-1)
	}
}

// TestFig3Strategies runs the full named strategies on the example; every
// DMA variant must beat AFD-OFU, and GA must be at least as good as the
// best heuristic.
func TestFig3Strategies(t *testing.T) {
	s := fig3Sequence(t)
	costs := map[StrategyID]int64{}
	opts := Options{
		GA: GAConfig{Mu: 30, Lambda: 30, Generations: 40, TournamentK: 4,
			MutationRate: 0.5, MoveWeight: 10, TransposeWeight: 10, PermuteWeight: 3, Seed: 7},
		RW: RWConfig{Iterations: 2000, Seed: 7},
	}
	for _, id := range AllStrategies() {
		p, c, err := Place(id, s, 2, opts)
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if err := p.Validate(s, 0); err != nil {
			t.Fatalf("%s produced invalid placement: %v", id, err)
		}
		costs[id] = c
	}
	for _, dma := range []StrategyID{StrategyDMAOFU, StrategyDMAChen, StrategyDMASR} {
		if costs[dma] >= costs[StrategyAFDOFU] {
			t.Errorf("%s (%d) should beat AFD-OFU (%d)", dma, costs[dma], costs[StrategyAFDOFU])
		}
	}
	best := costs[StrategyDMAOFU]
	for _, id := range HeuristicStrategies() {
		if costs[id] < best {
			best = costs[id]
		}
	}
	if costs[StrategyGA] > best {
		t.Errorf("GA (%d) should be at least as good as best heuristic (%d)", costs[StrategyGA], best)
	}
	// And GA must match the true optimum on this small instance.
	ex, err := Exact(s, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	if costs[StrategyGA] != ex.Cost {
		t.Errorf("GA cost %d != exact optimum %d", costs[StrategyGA], ex.Cost)
	}
	if ex.Cost > 11 {
		t.Errorf("exact optimum %d should be <= 11 (paper found 11 by hand)", ex.Cost)
	}
}
