package placement

import (
	"fmt"
	"sync"

	"repro/internal/rtm"
	"repro/internal/trace"
)

// PortModel is the multi-port generalization of the paper's |x−y| cost
// model: a fixed access-port layout under which the cost of an access is
// the number of shifts to align its location with the *nearest* port,
// from wherever the previous access of the same DBC left the track.
//
// The model replicates rtm.ShiftEngine's controller arithmetic exactly —
// nearest port by shift distance, lowest-index port on ties, first
// access per DBC free with the track pre-aligned to its cheapest port —
// so evaluating a placement through a PortModel is bit-identical to
// replaying it through one shift engine per DBC (EngineCost stays the
// test oracle; see TestPortCostMatchesEngine and FuzzPortCostParity),
// without allocating engines or lookups per call.
//
// Unlike the single-port model, multi-port cost is *stateful*: the cost
// of a transition depends on which port served the previous access,
// which depends on the whole restricted history of the DBC. There is
// therefore no placement-independent transition summary in the style of
// CostKernel — exact evaluation replays each DBC's restricted
// subsequence (PortCost, O(accesses) with reusable scratch), and local
// search re-replays the affected DBC per candidate move
// (PortDeltaEvaluator). With one port at position 0 the model
// degenerates to the paper's: cost(y→x) = |x−y|, bit-identical to
// ShiftCost and CostKernel (TestPortCostSinglePortIdentity).
//
// The port layout derives from one deterministic device rule shared
// with the simulator: rtm.PortPositions(domains, ports), where domains
// is the *geometry's* track length — never the occupancy of a
// particular placement, which would move the physical ports with the
// data (the pre-fix ports-sweep drift). A PortModel is immutable and
// safe for concurrent use.
type PortModel struct {
	domains int
	ports   int
	pos     []int
}

// NewPortModel builds the cost model for a track of the given length
// with the canonical evenly-spread port layout. ports must be in
// [1, domains].
func NewPortModel(domains, ports int) (*PortModel, error) {
	pos, err := rtm.PortPositions(domains, ports)
	if err != nil {
		return nil, err
	}
	return &PortModel{domains: domains, ports: ports, pos: pos}, nil
}

// Domains returns the track length the port layout derives from.
func (m *PortModel) Domains() int { return m.domains }

// Ports returns the number of access ports per track.
func (m *PortModel) Ports() int { return m.ports }

// Positions returns a copy of the port positions.
func (m *PortModel) Positions() []int { return append([]int(nil), m.pos...) }

// SinglePort reports whether the model degenerates to the paper's
// single-port |x−y| arithmetic.
func (m *PortModel) SinglePort() bool { return m.ports == 1 }

// step serves one warm access to location x from shift offset off: it
// returns the shift cost to the nearest port and the new offset. The
// selection loop is rtm.ShiftEngine.Access's, including the
// lowest-index tie-break.
//
//rtm:hotpath
func (m *PortModel) step(off, x int) (cost, newOff int) {
	bestCost := -1
	bestOff := 0
	for _, p := range m.pos {
		need := x - p
		d := need - off
		if d < 0 {
			d = -d
		}
		if bestCost < 0 || d < bestCost {
			bestCost = d
			bestOff = need
		}
	}
	return bestCost, bestOff
}

// portScratch is the reusable per-DBC track-state buffer of the
// multi-port replay loop, pooled so repeated PortCost calls stop
// allocating per call (the multi-port analogue of replayScratch).
type portScratch struct{ off []int }

var portPool = sync.Pool{New: func() any { return new(portScratch) }}

// portCold marks a DBC whose track has not been accessed yet (the first
// access is free, with the track pre-aligned to the cheapest port).
const portCold = int(^uint(0) >> 1) // MaxInt: never a reachable offset

// grow returns the scratch resized to q entries, reusing the backing
// array when it is large enough. portCostLookup resets the contents.
func (sc *portScratch) grow(q int) []int {
	if cap(sc.off) < q {
		sc.off = make([]int, q)
	}
	sc.off = sc.off[:q]
	return sc.off
}

// PortCost replays the access sequence against the placement under the
// multi-port model and returns the exact total shift count — what
// EngineCost computes by allocating one rtm.ShiftEngine per DBC, here
// with pooled scratch only. The hot inner loop (portCostLookup) is
// allocation-free; callers pricing many placements of one sequence
// should build the Lookup once and call it directly.
func PortCost(s *trace.Sequence, p *Placement, m *PortModel) (int64, error) {
	l, err := p.BuildLookup(s.NumVars())
	if err != nil {
		return 0, err
	}
	sc := portPool.Get().(*portScratch)
	c := portCostLookup(s, l, m, sc.grow(numDBCsIn(l)))
	portPool.Put(sc)
	return c, nil
}

// portCostLookup is the allocation-free inner loop of the multi-port
// replay path. The lookup must cover every accessed variable; off must
// have one entry per DBC of the lookup (callers thread a reusable
// buffer through).
//
//rtm:hotpath
func portCostLookup(s *trace.Sequence, l *Lookup, m *PortModel, off []int) int64 {
	for i := range off {
		off[i] = portCold
	}
	var total int64
	for _, a := range s.Accesses {
		d := l.DBCOf[a.Var]
		x := l.Offset[a.Var]
		if o := off[d]; o != portCold {
			c, no := m.step(o, x)
			total += int64(c)
			off[d] = no
		} else {
			_, off[d] = m.step(0, x)
		}
	}
	return total
}

// portCostLookupBounded is portCostLookup with an abort threshold: the
// running total only grows, so once it reaches bound the final cost
// provably does too and the replay stops. Exact below bound; at or
// above bound the value is only a certificate that cost >= bound.
// Best-of-N searches (the multi-port random walk) use it to discard
// losing placements early.
//
//rtm:hotpath
func portCostLookupBounded(s *trace.Sequence, l *Lookup, m *PortModel, off []int, bound int64) int64 {
	for i := range off {
		off[i] = portCold
	}
	var total int64
	for _, a := range s.Accesses {
		d := l.DBCOf[a.Var]
		x := l.Offset[a.Var]
		if o := off[d]; o != portCold {
			c, no := m.step(o, x)
			total += int64(c)
			off[d] = no
			if total >= bound {
				return total
			}
		} else {
			_, off[d] = m.step(0, x)
		}
	}
	return total
}

// PortCostBreakdown is PortCost with per-DBC attribution and coverage
// validation — the multi-port equivalent of ShiftCostBreakdown, used by
// the session API to attribute strategy costs when the Lab's device has
// more than one port.
func PortCostBreakdown(s *trace.Sequence, p *Placement, m *PortModel) (*CostBreakdown, error) {
	l, err := p.BuildLookup(s.NumVars())
	if err != nil {
		return nil, err
	}
	q := len(p.DBC)
	b := &CostBreakdown{PerDBC: make([]int64, q), Accesses: make([]int64, q)}
	off := make([]int, q)
	for i := range off {
		off[i] = portCold
	}
	for i, a := range s.Accesses {
		d := l.DBCOf[a.Var]
		if d < 0 || d >= q {
			return nil, fmt.Errorf("placement: access %d to unplaced variable %s", i, s.Name(a.Var))
		}
		x := l.Offset[a.Var]
		if o := off[d]; o != portCold {
			c, no := m.step(o, x)
			b.PerDBC[d] += int64(c)
			b.Total += int64(c)
			off[d] = no
		} else {
			_, off[d] = m.step(0, x)
		}
		b.Accesses[d]++
	}
	return b, nil
}

// PortDeltaEvaluator is the multi-port counterpart of DeltaEvaluator:
// an intra-DBC move evaluator for local search over offset orders under
// the true multi-port objective.
//
// Multi-port cost is stateful (the realized port of one access feeds
// the next), so — unlike the single-port case — a move's cost change
// cannot be localized to the transitions adjacent to the moved
// variables: changing one port decision can ripple through the rest of
// the restricted subsequence. The evaluator therefore precomputes the
// DBC's restricted access stream once (consecutive repeats collapsed —
// a repeated access costs zero and leaves the track state unchanged
// under any port layout) and prices each candidate move by replaying
// that compressed stream, O(t) per move for t restricted transitions,
// touching neither the full sequence nor any allocation. That is the
// cheapest exact evaluation the model admits; with one port, use
// DeltaEvaluator's O(freq) deltas instead.
//
// The move surface (SwapDelta/Swap, ReverseDelta/Reverse, ImprovePass
// with the same swap-first first-improvement sweep) mirrors
// DeltaEvaluator, so TwoOpt-style searches run unchanged on either.
// Not safe for concurrent use; search loops own one instance each.
type PortDeltaEvaluator struct {
	model  *PortModel
	order  []int // current offset order; order[i] lives at offset i
	pos    []int // pos[v] = offset of v, -1 for non-members
	stream []int32

	cost     int64
	accesses int
}

// NewPortDeltaEvaluator builds an evaluator for the accesses of s
// restricted to the variables of order (the DBC's content, in offset
// order) under the port model. Setup is O(numVars + accesses); every
// move evaluation replays only the compressed restricted stream.
func NewPortDeltaEvaluator(s *trace.Sequence, order []int, m *PortModel) *PortDeltaEvaluator {
	width := s.NumVars()
	for _, v := range order {
		if v+1 > width {
			width = v + 1
		}
	}
	e := &PortDeltaEvaluator{
		model: m,
		order: append([]int(nil), order...),
		pos:   make([]int, width),
	}
	for v := range e.pos {
		e.pos[v] = -1
	}
	for i, v := range e.order {
		e.pos[v] = i
	}
	numVars := s.NumVars()
	prev := int32(-1)
	for _, a := range s.Accesses {
		v := a.Var
		if v < 0 || v >= numVars || e.pos[v] < 0 {
			continue
		}
		e.accesses++
		if int32(v) != prev {
			e.stream = append(e.stream, int32(v))
			prev = int32(v)
		}
	}
	e.cost = e.replay()
	return e
}

// replay prices the current pos assignment by driving the model through
// the compressed restricted stream — exactly one DBC's share of
// portCostLookup. Allocation-free.
//
//rtm:hotpath
func (e *PortDeltaEvaluator) replay() int64 {
	var total int64
	off := portCold
	for _, v := range e.stream {
		x := e.pos[v]
		if off != portCold {
			c, no := e.model.step(off, x)
			total += int64(c)
			off = no
		} else {
			_, off = e.model.step(0, x)
		}
	}
	return total
}

// Cost returns the current intra-DBC shift cost of the order under the
// port model.
func (e *PortDeltaEvaluator) Cost() int64 { return e.cost }

// Accesses returns the number of accesses to member variables.
func (e *PortDeltaEvaluator) Accesses() int { return e.accesses }

// Len returns the number of variables in the order.
func (e *PortDeltaEvaluator) Len() int { return len(e.order) }

// CurrentOrder returns a copy of the current offset order.
func (e *PortDeltaEvaluator) CurrentOrder() []int {
	return append([]int(nil), e.order...)
}

// SwapDelta returns the cost change of exchanging the variables at
// offsets i and j, without applying it.
//
//rtm:hotpath
func (e *PortDeltaEvaluator) SwapDelta(i, j int) int64 {
	if i == j {
		return 0
	}
	u, v := e.order[i], e.order[j]
	e.pos[u], e.pos[v] = j, i
	after := e.replay()
	e.pos[u], e.pos[v] = i, j
	return after - e.cost
}

// Swap applies the swap of offsets i and j, updating the cost.
//
//rtm:hotpath
func (e *PortDeltaEvaluator) Swap(i, j int) {
	e.cost += e.SwapDelta(i, j)
	u, v := e.order[i], e.order[j]
	e.order[i], e.order[j] = v, u
	e.pos[u], e.pos[v] = j, i
}

// ReverseDelta returns the cost change of reversing the offset segment
// [i, j], without applying it.
//
//rtm:hotpath
func (e *PortDeltaEvaluator) ReverseDelta(i, j int) int64 {
	if i >= j {
		return 0
	}
	m := i + j // reversal maps interior offset p to m - p
	for p := i; p <= j; p++ {
		e.pos[e.order[p]] = m - p
	}
	after := e.replay()
	for p := i; p <= j; p++ {
		e.pos[e.order[p]] = p
	}
	return after - e.cost
}

// Reverse applies the reversal of segment [i, j], updating the cost.
//
//rtm:hotpath
func (e *PortDeltaEvaluator) Reverse(i, j int) {
	e.cost += e.ReverseDelta(i, j)
	for l, r := i, j; l < r; l, r = l+1, r-1 {
		e.order[l], e.order[r] = e.order[r], e.order[l]
	}
	for p := i; p <= j; p++ {
		e.pos[e.order[p]] = p
	}
}

// ImprovePass runs one first-improvement sweep over all offset pairs
// (i, j), i < j, trying a swap first and, only if the swap does not
// improve, the 2-opt segment reversal — the same move order and
// acceptance rule as DeltaEvaluator.ImprovePass, so the port-aware
// polish is the drop-in counterpart of the single-port one. It reports
// whether any move was accepted.
//
//rtm:hotpath
func (e *PortDeltaEvaluator) ImprovePass() bool {
	improved := false
	n := len(e.order)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if e.SwapDelta(i, j) < 0 {
				e.Swap(i, j)
				improved = true
				continue
			}
			if e.ReverseDelta(i, j) < 0 {
				e.Reverse(i, j)
				improved = true
			}
		}
	}
	return improved
}
