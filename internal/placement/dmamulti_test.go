package placement

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/trace"
)

func TestExtractDisjointMatchesDMA(t *testing.T) {
	// DMAWithRule(admitTies=false) must behave exactly like DMA.
	rng := rand.New(rand.NewSource(10))
	for trial := 0; trial < 40; trial++ {
		s := randSeq(rng, 1+rng.Intn(14), 1+rng.Intn(80))
		a := trace.Analyze(s)
		q := 1 + rng.Intn(4)
		r1, err := DMA(a, q, 0)
		if err != nil {
			t.Fatal(err)
		}
		r2, err := DMAWithRule(a, q, 0, false)
		if err != nil {
			t.Fatal(err)
		}
		if !r1.Placement.Equal(r2.Placement) {
			t.Fatalf("trial %d: DMA and DMAWithRule(false) diverge:\n%v\n%v",
				trial, r1.Placement, r2.Placement)
		}
	}
}

func TestAdmitTiesAdmitsMore(t *testing.T) {
	// Construct a tie: variable 0 spans variable 1, with equal frequency.
	// 0 .. 1 1 .. 0 : Av(0)=2, inner sum = Av(1)=2.
	s := trace.NewSequence(0, 1, 1, 0, 2, 2)
	a := trace.Analyze(s)
	strict, err := DMAWithRule(a, 2, 0, false)
	if err != nil {
		t.Fatal(err)
	}
	ties, err := DMAWithRule(a, 2, 0, true)
	if err != nil {
		t.Fatal(err)
	}
	if len(ties.Disjoint) < len(strict.Disjoint) {
		t.Errorf("tie admission selected fewer variables: %v vs %v",
			ties.Disjoint, strict.Disjoint)
	}
	// The strict rule must reject variable 0 (2 > 2 is false): its
	// disjoint set starts with variable 1 instead.
	for _, v := range strict.Disjoint {
		if v == 0 {
			t.Errorf("strict rule admitted the tied variable: %v", strict.Disjoint)
		}
	}
	// The tie rule admits variable 0 first.
	if len(ties.Disjoint) == 0 || ties.Disjoint[0] != 0 {
		t.Errorf("tie rule should admit variable 0 first: %v", ties.Disjoint)
	}
}

func TestDMAMultiExtractsMultipleSets(t *testing.T) {
	// Two interleaved phase chains: vars 0,1 overlap each other but are
	// disjoint from 2,3 (second phase). One greedy pass takes one chain
	// element per phase; the second pass picks up more.
	s := trace.NewSequence(
		0, 1, 0, 1, 0, 1, // phase A: 0 and 1 overlap
		2, 3, 2, 3, 2, 3, // phase B: 2 and 3 overlap
	)
	a := trace.Analyze(s)
	r, err := DMAMulti(a, 4, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Sets) < 2 {
		t.Fatalf("expected at least 2 disjoint sets, got %v", r.Sets)
	}
	if err := r.Placement.Validate(s, 0); err != nil {
		t.Fatalf("invalid placement: %v", err)
	}
	// Every extracted set must be pairwise disjoint internally.
	for _, set := range r.Sets {
		for i := 0; i < len(set); i++ {
			for j := i + 1; j < len(set); j++ {
				if !a.Disjoint(set[i], set[j]) {
					t.Errorf("set %v contains overlapping pair (%d,%d)", set, set[i], set[j])
				}
			}
		}
	}
}

func TestDMAMultiRespectsMaxSets(t *testing.T) {
	s := trace.NewSequence(0, 1, 0, 1, 2, 3, 2, 3, 4, 5, 4, 5)
	a := trace.Analyze(s)
	r, err := DMAMulti(a, 4, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Sets) > 1 {
		t.Errorf("maxSets=1 extracted %d sets", len(r.Sets))
	}
}

func TestDMAMultiMergesWhenSetsExceedDBCs(t *testing.T) {
	// Many tiny phases with q=2: one DBC for merged disjoint sets, one for
	// the rest.
	vars := make([]int, 0, 40)
	for v := 0; v < 10; v++ {
		vars = append(vars, v, v, v, v)
	}
	s := trace.NewSequence(vars...)
	a := trace.Analyze(s)
	r, err := DMAMulti(a, 2, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Placement.Validate(s, 0); err != nil {
		t.Fatalf("invalid: %v", err)
	}
	if r.Placement.NumDBCs() != 2 {
		t.Errorf("NumDBCs = %d", r.Placement.NumDBCs())
	}
}

func TestDMAMultiSingleDBC(t *testing.T) {
	s := trace.NewSequence(0, 1, 0, 2, 2)
	a := trace.Analyze(s)
	r, err := DMAMulti(a, 1, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Placement.Validate(s, 0); err != nil {
		t.Fatalf("invalid: %v", err)
	}
}

func TestDMAMultiErrors(t *testing.T) {
	s := trace.NewSequence(0, 1)
	a := trace.Analyze(s)
	if _, err := DMAMulti(a, 0, 0, 0); err == nil {
		t.Error("q=0 accepted")
	}
	if _, err := DMAMulti(a, 2, -1, 0); err == nil {
		t.Error("negative capacity accepted")
	}
	if _, err := DMAWithRule(a, 0, 0, false); err == nil {
		t.Error("q=0 accepted by DMAWithRule")
	}
}

// Property: DMAMulti always yields a valid placement.
func TestDMAMultiAlwaysValid(t *testing.T) {
	f := func(raw []uint8, qRaw, setsRaw uint8) bool {
		if len(raw) == 0 {
			return true
		}
		vars := make([]int, len(raw))
		for i, r := range raw {
			vars[i] = int(r % 14)
		}
		s := trace.NewSequence(vars...)
		a := trace.Analyze(s)
		q := int(qRaw%5) + 1
		maxSets := int(setsRaw % 4) // 0..3
		r, err := DMAMulti(a, q, 0, maxSets)
		if err != nil {
			return false
		}
		return r.Placement.Validate(s, 0) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// On strongly phased traces whose phases contain two overlapping chains
// with varying frequencies, DMAMulti must beat plain DMA: the single
// greedy pass extracts only the first chain and hands the second to the
// frequency-sorted AFD distribution, which scrambles its access order;
// the second extraction pass keeps the chain intact in its own DBC.
func TestDMAMultiBeatsDMAOnTwoChains(t *testing.T) {
	var vars []int
	phases := 12
	for p := 0; p < phases; p++ {
		b, c := 2*p, 2*p+1
		reps := 9
		if p%2 == 1 {
			reps = 2 // alternating frequency scrambles descending-Av order
		}
		for r := 0; r < reps; r++ {
			vars = append(vars, b, c)
		}
	}
	s := trace.NewSequence(vars...)
	an := trace.Analyze(s)
	q := 3
	single, err := DMA(an, q, 0)
	if err != nil {
		t.Fatal(err)
	}
	multi, err := DMAMulti(an, q, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	cs, _ := ShiftCost(s, single.Placement)
	cm, _ := ShiftCost(s, multi.Placement)
	if cm >= cs {
		t.Errorf("DMAMulti (%d) should strictly beat DMA (%d) on two-chain phases", cm, cs)
	}
}
