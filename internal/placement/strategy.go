package placement

import (
	"context"
	"fmt"

	"repro/internal/rtm"
	"repro/internal/trace"
)

// StrategyID names one of the six placement strategies evaluated in the
// paper (section IV-A).
type StrategyID string

// The evaluated strategies.
const (
	// StrategyAFDOFU is the state-of-the-art baseline: AFD inter-DBC
	// distribution with order-of-first-use intra-DBC placement.
	StrategyAFDOFU StrategyID = "AFD-OFU"
	// StrategyDMAOFU is the paper's heuristic with OFU intra placement.
	StrategyDMAOFU StrategyID = "DMA-OFU"
	// StrategyDMAChen pairs the paper's heuristic with Chen's single-DBC
	// intra heuristic on the non-disjoint DBCs.
	StrategyDMAChen StrategyID = "DMA-Chen"
	// StrategyDMASR pairs the paper's heuristic with ShiftsReduce on the
	// non-disjoint DBCs.
	StrategyDMASR StrategyID = "DMA-SR"
	// StrategyGA is the paper's genetic algorithm.
	StrategyGA StrategyID = "GA"
	// StrategyRW is the random-walk search.
	StrategyRW StrategyID = "RW"
)

// AllStrategies lists the six strategies in the paper's presentation order.
func AllStrategies() []StrategyID {
	return []StrategyID{StrategyAFDOFU, StrategyDMAOFU, StrategyDMAChen, StrategyDMASR, StrategyGA, StrategyRW}
}

// HeuristicStrategies lists the fast (non-search) strategies.
func HeuristicStrategies() []StrategyID {
	return []StrategyID{StrategyAFDOFU, StrategyDMAOFU, StrategyDMAChen, StrategyDMASR}
}

// Options tunes strategy execution.
type Options struct {
	// Capacity is the word capacity per DBC; 0 disables capacity limits
	// (the paper's evaluation does not enforce them).
	Capacity int
	// GA configures the genetic algorithm; zero value means
	// DefaultGAConfig with SeedHeuristics.
	GA GAConfig
	// RW configures the random walk; zero value means DefaultRWConfig.
	RW RWConfig
	// SeedGAWithHeuristics injects AFD/DMA placements into the GA's
	// initial population, as the paper describes. Enabled by default
	// through Place; disable for cold-start ablations.
	DisableGASeeding bool
	// Kernel optionally carries a pre-built cost kernel for the sequence
	// being placed. Strategies evaluate full placements through it in
	// O(nnz) instead of replaying the access stream; the engine batch
	// layer builds one kernel per distinct sequence in a batch and
	// threads it here. A kernel built from a different sequence (pointer
	// identity) is ignored. Results are bit-identical either way.
	Kernel *CostKernel
	// Ports selects the cost model every strategy optimizes and reports
	// under: 0 or 1 is the paper's single-port |x−y| model; larger
	// values price placements with the exact multi-port nearest-port
	// arithmetic of PortModel, so the objective matches what
	// sim.RunSequence later replays on a PortsPerTrack > 1 geometry.
	// The search strategies (GA, RW, DMA-2opt, GA-2opt) then also
	// *search* under that objective; the constructive heuristics (AFD,
	// DMA, the intra orderings) are cost-model-free and only have their
	// result priced by it.
	Ports int
	// PortDomains is the track length (domain count) the evenly-spread
	// port layout derives from when Ports > 1. 0 derives it from the
	// deterministic iso-capacity device rule for the DBC count being
	// placed (rtm.IsoCapacityGeometry — the Table I track length for
	// Table I DBC counts), which keeps placement, evaluation and
	// simulation on one geometry. Callers with an explicit device set
	// it to Geometry.WordsPerDBC().
	PortDomains int
	// Cost, when non-nil, selects the objective the placement is priced
	// under at the reporting boundaries (session results, portfolio
	// entries, streamed totals). Every constructible objective is
	// strictly monotone in the shift count for a fixed (sequence,
	// geometry, Table I config) — NewCostModel enforces it — so the
	// search layers keep optimizing the raw int64 shift cost and their
	// trajectories are bit-identical across objectives; the model only
	// prices the output. nil is the raw shift objective (the paper's).
	Cost *CostModel
	// Context, when non-nil, is consulted by the long-running search
	// strategies: the GA checks it between generations (and between
	// island migration rounds), so a deadline or cancellation
	// interrupts the search instead of being ignored. The engine batch
	// layer and the session API thread their call context here; nil
	// means run to completion.
	//rtmlint:ctxcheck-ok Options is a per-call parameter object, not long-lived state; the call context rides it through the strategy interface
	Context context.Context
}

// ctx returns the options' context, never nil.
func (o Options) ctx() context.Context {
	ctx := o.Context
	if ctx == nil {
		ctx = context.Background()
	}
	return ctx
}

// PortModelFor resolves the options' effective multi-port cost model
// for a placement into q DBCs: nil for the single-port model, otherwise
// a PortModel whose layout derives from PortDomains (or, when 0, from
// the iso-capacity device rule for q DBCs).
func (o Options) PortModelFor(q int) (*PortModel, error) {
	if o.Ports <= 1 {
		return nil, nil
	}
	domains := o.PortDomains
	if domains == 0 {
		g, err := rtm.IsoCapacityGeometry(q, o.Ports)
		if err != nil {
			return nil, err
		}
		domains = g.WordsPerDBC()
	}
	return NewPortModel(domains, o.Ports)
}

// costOf prices a freshly computed placement into q DBCs under the
// options' cost model: the exact multi-port replay when Ports > 1,
// otherwise the shared kernel when the caller supplied one for this
// exact sequence, otherwise the replay oracle. The single-port paths
// return bit-identical costs.
func costOf(s *trace.Sequence, p *Placement, q int, opts Options) (int64, error) {
	pm, err := opts.PortModelFor(q)
	if err != nil {
		return 0, err
	}
	if pm != nil {
		return PortCost(s, p, pm)
	}
	if k := opts.Kernel; k != nil && k.Sequence() == s {
		return k.Evaluate(p)
	}
	return ShiftCost(s, p)
}

// Place runs the named strategy on the sequence with q DBCs and returns
// the resulting placement and its shift cost. It is a thin compatibility
// wrapper over the strategy registry: every registered strategy — the six
// paper strategies and any plugged-in ones — is reachable by name.
func Place(id StrategyID, s *trace.Sequence, q int, opts Options) (*Placement, int64, error) {
	st, ok := LookupStrategy(id)
	if !ok {
		return nil, 0, fmt.Errorf("placement: unknown strategy %q", id)
	}
	return st.Place(s, q, opts)
}

// heuristicSeeds produces the heuristic placements used to seed the GA.
// With a batch-shared kernel at hand the seeds are memoized per
// (sequence, DBC count, capacity): every GA variant cell of an eval
// batch would otherwise recompute the same four heuristic placements.
func heuristicSeeds(s *trace.Sequence, q int, opts Options) ([]*Placement, error) {
	compute := func() ([]*Placement, error) {
		var seeds []*Placement
		for _, id := range HeuristicStrategies() {
			p, _, err := Place(id, s, q, Options{Capacity: opts.Capacity, Kernel: opts.Kernel})
			if err != nil {
				return nil, err
			}
			seeds = append(seeds, p)
		}
		return seeds, nil
	}
	if k := opts.Kernel; k != nil && k.Sequence() == s {
		return k.cachedSeeds(q, opts.Capacity, compute)
	}
	return compute()
}
