package placement

import (
	"fmt"

	"repro/internal/trace"
)

// StrategyID names one of the six placement strategies evaluated in the
// paper (section IV-A).
type StrategyID string

// The evaluated strategies.
const (
	// StrategyAFDOFU is the state-of-the-art baseline: AFD inter-DBC
	// distribution with order-of-first-use intra-DBC placement.
	StrategyAFDOFU StrategyID = "AFD-OFU"
	// StrategyDMAOFU is the paper's heuristic with OFU intra placement.
	StrategyDMAOFU StrategyID = "DMA-OFU"
	// StrategyDMAChen pairs the paper's heuristic with Chen's single-DBC
	// intra heuristic on the non-disjoint DBCs.
	StrategyDMAChen StrategyID = "DMA-Chen"
	// StrategyDMASR pairs the paper's heuristic with ShiftsReduce on the
	// non-disjoint DBCs.
	StrategyDMASR StrategyID = "DMA-SR"
	// StrategyGA is the paper's genetic algorithm.
	StrategyGA StrategyID = "GA"
	// StrategyRW is the random-walk search.
	StrategyRW StrategyID = "RW"
)

// AllStrategies lists the six strategies in the paper's presentation order.
func AllStrategies() []StrategyID {
	return []StrategyID{StrategyAFDOFU, StrategyDMAOFU, StrategyDMAChen, StrategyDMASR, StrategyGA, StrategyRW}
}

// HeuristicStrategies lists the fast (non-search) strategies.
func HeuristicStrategies() []StrategyID {
	return []StrategyID{StrategyAFDOFU, StrategyDMAOFU, StrategyDMAChen, StrategyDMASR}
}

// Options tunes strategy execution.
type Options struct {
	// Capacity is the word capacity per DBC; 0 disables capacity limits
	// (the paper's evaluation does not enforce them).
	Capacity int
	// GA configures the genetic algorithm; zero value means
	// DefaultGAConfig with SeedHeuristics.
	GA GAConfig
	// RW configures the random walk; zero value means DefaultRWConfig.
	RW RWConfig
	// SeedGAWithHeuristics injects AFD/DMA placements into the GA's
	// initial population, as the paper describes. Enabled by default
	// through Place; disable for cold-start ablations.
	DisableGASeeding bool
}

// Place runs the named strategy on the sequence with q DBCs and returns
// the resulting placement and its shift cost.
func Place(id StrategyID, s *trace.Sequence, q int, opts Options) (*Placement, int64, error) {
	a := trace.Analyze(s)
	switch id {
	case StrategyAFDOFU:
		p, err := AFD(a, q)
		if err != nil {
			return nil, 0, err
		}
		p = ApplyIntra(p, 0, q, OFU, s, a)
		c, err := ShiftCost(s, p)
		return p, c, err

	case StrategyDMAOFU, StrategyDMAChen, StrategyDMASR:
		r, err := DMA(a, q, opts.Capacity)
		if err != nil {
			return nil, 0, err
		}
		var h IntraHeuristic
		switch id {
		case StrategyDMAOFU:
			h = OFU
		case StrategyDMAChen:
			h = Chen
		default:
			h = ShiftsReduce
		}
		// Algorithm 1 lines 22-23: intra-DBC optimization only on the
		// non-disjoint DBCs; the disjoint DBCs keep access order.
		p := ApplyIntra(r.Placement, r.DisjointDBCs, q, h, s, a)
		c, err := ShiftCost(s, p)
		return p, c, err

	case StrategyGA:
		cfg := opts.GA
		if cfg.Mu == 0 {
			cfg = DefaultGAConfig()
		}
		cfg.Capacity = opts.Capacity
		if len(cfg.Seeds) == 0 && !opts.DisableGASeeding {
			seeds, err := heuristicSeeds(s, q, opts)
			if err != nil {
				return nil, 0, err
			}
			cfg.Seeds = seeds
		}
		res, err := GA(s, q, cfg)
		if err != nil {
			return nil, 0, err
		}
		return res.Best, res.Cost, nil

	case StrategyRW:
		cfg := opts.RW
		if cfg.Iterations == 0 {
			cfg = DefaultRWConfig()
		}
		cfg.Capacity = opts.Capacity
		p, c, err := RandomWalk(s, q, cfg)
		return p, c, err

	default:
		return nil, 0, fmt.Errorf("placement: unknown strategy %q", id)
	}
}

// heuristicSeeds produces the heuristic placements used to seed the GA.
func heuristicSeeds(s *trace.Sequence, q int, opts Options) ([]*Placement, error) {
	var seeds []*Placement
	for _, id := range HeuristicStrategies() {
		p, _, err := Place(id, s, q, Options{Capacity: opts.Capacity})
		if err != nil {
			return nil, err
		}
		seeds = append(seeds, p)
	}
	return seeds, nil
}
