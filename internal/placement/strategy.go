package placement

import (
	"fmt"

	"repro/internal/trace"
)

// StrategyID names one of the six placement strategies evaluated in the
// paper (section IV-A).
type StrategyID string

// The evaluated strategies.
const (
	// StrategyAFDOFU is the state-of-the-art baseline: AFD inter-DBC
	// distribution with order-of-first-use intra-DBC placement.
	StrategyAFDOFU StrategyID = "AFD-OFU"
	// StrategyDMAOFU is the paper's heuristic with OFU intra placement.
	StrategyDMAOFU StrategyID = "DMA-OFU"
	// StrategyDMAChen pairs the paper's heuristic with Chen's single-DBC
	// intra heuristic on the non-disjoint DBCs.
	StrategyDMAChen StrategyID = "DMA-Chen"
	// StrategyDMASR pairs the paper's heuristic with ShiftsReduce on the
	// non-disjoint DBCs.
	StrategyDMASR StrategyID = "DMA-SR"
	// StrategyGA is the paper's genetic algorithm.
	StrategyGA StrategyID = "GA"
	// StrategyRW is the random-walk search.
	StrategyRW StrategyID = "RW"
)

// AllStrategies lists the six strategies in the paper's presentation order.
func AllStrategies() []StrategyID {
	return []StrategyID{StrategyAFDOFU, StrategyDMAOFU, StrategyDMAChen, StrategyDMASR, StrategyGA, StrategyRW}
}

// HeuristicStrategies lists the fast (non-search) strategies.
func HeuristicStrategies() []StrategyID {
	return []StrategyID{StrategyAFDOFU, StrategyDMAOFU, StrategyDMAChen, StrategyDMASR}
}

// Options tunes strategy execution.
type Options struct {
	// Capacity is the word capacity per DBC; 0 disables capacity limits
	// (the paper's evaluation does not enforce them).
	Capacity int
	// GA configures the genetic algorithm; zero value means
	// DefaultGAConfig with SeedHeuristics.
	GA GAConfig
	// RW configures the random walk; zero value means DefaultRWConfig.
	RW RWConfig
	// SeedGAWithHeuristics injects AFD/DMA placements into the GA's
	// initial population, as the paper describes. Enabled by default
	// through Place; disable for cold-start ablations.
	DisableGASeeding bool
}

// Place runs the named strategy on the sequence with q DBCs and returns
// the resulting placement and its shift cost. It is a thin compatibility
// wrapper over the strategy registry: every registered strategy — the six
// paper strategies and any plugged-in ones — is reachable by name.
func Place(id StrategyID, s *trace.Sequence, q int, opts Options) (*Placement, int64, error) {
	st, ok := LookupStrategy(id)
	if !ok {
		return nil, 0, fmt.Errorf("placement: unknown strategy %q", id)
	}
	return st.Place(s, q, opts)
}

// heuristicSeeds produces the heuristic placements used to seed the GA.
func heuristicSeeds(s *trace.Sequence, q int, opts Options) ([]*Placement, error) {
	var seeds []*Placement
	for _, id := range HeuristicStrategies() {
		p, _, err := Place(id, s, q, Options{Capacity: opts.Capacity})
		if err != nil {
			return nil, err
		}
		seeds = append(seeds, p)
	}
	return seeds, nil
}
