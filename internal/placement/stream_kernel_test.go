package placement

import (
	"errors"
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/offsetstone"
	"repro/internal/trace"
)

// Golden parity suite for NewCostKernelStream: a kernel built from a
// stream must be bit-identical — table for table, cost for cost — to one
// built eagerly from the materialized sequence (DESIGN.md §12). The two
// constructors share kernelBuilder, so these tests pin that the sharing
// actually holds and never drifts.

// requireKernelTablesEqual compares the full internal stencil tables.
// Bit-identical tables imply bit-identical Cost/CostBounded/CostDBC/
// Breakdown on every placement.
func requireKernelTablesEqual(t *testing.T, label string, eager, stream *CostKernel) {
	t.Helper()
	if eager.Accesses() != stream.Accesses() {
		t.Fatalf("%s: accesses %d vs %d", label, eager.Accesses(), stream.Accesses())
	}
	if eager.NNZ() != stream.NNZ() || eager.Candidates() != stream.Candidates() {
		t.Fatalf("%s: table shape (nnz %d, cand %d) vs (nnz %d, cand %d)",
			label, eager.NNZ(), eager.Candidates(), stream.NNZ(), stream.Candidates())
	}
	if !reflect.DeepEqual(eager.tvar, stream.tvar) ||
		!reflect.DeepEqual(eager.wgt, stream.wgt) ||
		!reflect.DeepEqual(eager.start, stream.start) ||
		!reflect.DeepEqual(eager.cand, stream.cand) {
		t.Fatalf("%s: stencil tables differ", label)
	}
	if !reflect.DeepEqual(eager.varOrder, stream.varOrder) ||
		!reflect.DeepEqual(eager.accCnt, stream.accCnt) {
		t.Fatalf("%s: layout metadata differs", label)
	}
}

func TestStreamKernelParityRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 60; trial++ {
		numVars := 1 + rng.Intn(24)
		s := randKernelSeq(rng, numVars, 1+rng.Intn(400))
		eager := NewCostKernel(s)
		stream, err := NewCostKernelStream(s.NumVars(), trace.NewSliceReader(s))
		if err != nil {
			t.Fatal(err)
		}
		requireKernelTablesEqual(t, fmt.Sprintf("trial %d", trial), eager, stream)
		if stream.Sequence() != nil {
			t.Fatalf("trial %d: streamed kernel has a bound sequence", trial)
		}
		for rep := 0; rep < 4; rep++ {
			q := 1 + rng.Intn(6)
			p := randFullPlacement(rng, numVars, q)
			want, err := eager.Evaluate(p)
			if err != nil {
				t.Fatal(err)
			}
			got, err := stream.Evaluate(p)
			if err != nil {
				t.Fatal(err)
			}
			if got != want {
				t.Fatalf("trial %d rep %d: stream %d, eager %d", trial, rep, got, want)
			}
			wb, err := eager.Breakdown(p)
			if err != nil {
				t.Fatal(err)
			}
			gb, err := stream.Breakdown(p)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(wb, gb) {
				t.Fatalf("trial %d rep %d: breakdowns differ:\n%+v\n%+v", trial, rep, wb, gb)
			}
		}
	}
}

// TestStreamKernelParityOnSuite runs every seeded OffsetStone benchmark
// through both constructors and requires identical tables.
func TestStreamKernelParityOnSuite(t *testing.T) {
	names := offsetstone.Names()
	if testing.Short() && len(names) > 6 {
		names = names[:6]
	}
	for _, name := range names {
		b, err := offsetstone.Generate(name)
		if err != nil {
			t.Fatal(err)
		}
		for si, s := range b.Sequences {
			eager := NewCostKernel(s)
			stream, err := NewCostKernelStream(s.NumVars(), trace.NewSliceReader(s))
			if err != nil {
				t.Fatal(err)
			}
			requireKernelTablesEqual(t, fmt.Sprintf("%s seq %d", name, si), eager, stream)
		}
	}
}

// TestStreamKernelParitySynth pins the actual out-of-core pipeline: a
// kernel built straight off the synthetic generator (never holding the
// trace) equals one built from the materialized sequence.
func TestStreamKernelParitySynth(t *testing.T) {
	cfg := trace.SynthConfig{Vars: 300, Accesses: 60000, Seed: 21}
	gen, err := trace.NewSynthReader(cfg)
	if err != nil {
		t.Fatal(err)
	}
	stream, err := NewCostKernelStream(gen.NumVars(), gen)
	if err != nil {
		t.Fatal(err)
	}
	s, err := cfg.Sequence()
	if err != nil {
		t.Fatal(err)
	}
	eager := NewCostKernel(s)
	// The eager universe may be smaller (unnamed sequences shrink to the
	// max accessed variable); the tables over accessed variables must
	// still match exactly.
	if !reflect.DeepEqual(eager.tvar, stream.tvar) ||
		!reflect.DeepEqual(eager.wgt, stream.wgt) ||
		!reflect.DeepEqual(eager.start, stream.start) ||
		!reflect.DeepEqual(eager.cand, stream.cand) ||
		!reflect.DeepEqual(eager.varOrder, stream.varOrder) {
		t.Fatal("generator-built kernel differs from sequence-built kernel")
	}

	rng := rand.New(rand.NewSource(5))
	for rep := 0; rep < 4; rep++ {
		p := randFullPlacement(rng, s.NumVars(), 1+rng.Intn(6))
		want, err := ShiftCost(s, p)
		if err != nil {
			t.Fatal(err)
		}
		got, err := stream.Evaluate(p)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("rep %d: stream kernel %d, replay oracle %d", rep, got, want)
		}
	}
}

// TestStreamKernelDeltaEvaluator checks kernel-derived incremental
// evaluators work identically off a streamed kernel.
func TestStreamKernelDeltaEvaluator(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	s := randKernelSeq(rng, 16, 300)
	eager := NewCostKernel(s)
	stream, err := NewCostKernelStream(s.NumVars(), trace.NewSliceReader(s))
	if err != nil {
		t.Fatal(err)
	}
	order := []int{3, 1, 7, 12, 5}
	re := NewDeltaEvaluatorFromKernel(eager, order)
	se := NewDeltaEvaluatorFromKernel(stream, order)
	if re.Cost() != se.Cost() || re.Accesses() != se.Accesses() {
		t.Fatalf("derived evaluators differ: (cost %d, acc %d) vs (cost %d, acc %d)",
			re.Cost(), re.Accesses(), se.Cost(), se.Accesses())
	}
	for m := 0; m < 20; m++ {
		i, j := rng.Intn(len(order)), rng.Intn(len(order))
		if i > j {
			i, j = j, i
		}
		if a, b := re.SwapDelta(i, j), se.SwapDelta(i, j); a != b {
			t.Fatalf("move %d: SwapDelta(%d,%d) %d vs %d", m, i, j, a, b)
		}
		re.Swap(i, j)
		se.Swap(i, j)
	}
}

type failingReader struct {
	n   int
	err error
}

func (r *failingReader) Next() (trace.Access, error) {
	if r.n == 0 {
		return trace.Access{}, r.err
	}
	r.n--
	return trace.Access{Var: 0}, nil
}

func TestStreamKernelErrors(t *testing.T) {
	if _, err := NewCostKernelStream(-1, trace.NewSliceReader(&trace.Sequence{})); err == nil {
		t.Fatal("negative universe accepted")
	}

	boom := errors.New("disk on fire")
	if _, err := NewCostKernelStream(4, &failingReader{n: 3, err: boom}); !errors.Is(err, boom) {
		t.Fatalf("reader error not propagated: %v", err)
	}

	s := trace.NewSequence(0, 1, 2, 1)
	if _, err := NewCostKernelStream(2, trace.NewSliceReader(s)); err == nil {
		t.Fatal("out-of-universe access accepted")
	}

	// Empty stream: a valid, zero-cost kernel.
	k, err := NewCostKernelStream(3, trace.NewSliceReader(&trace.Sequence{}))
	if err != nil {
		t.Fatal(err)
	}
	if c, err := k.Evaluate(&Placement{DBC: [][]int{{0, 1, 2}}}); err != nil || c != 0 {
		t.Fatalf("empty stream kernel: cost %d err %v, want 0 nil", c, err)
	}

	// Rebind cannot verify content equality without the stream; it must
	// refuse rather than guess.
	ks, err := NewCostKernelStream(s.NumVars(), trace.NewSliceReader(s))
	if err != nil {
		t.Fatal(err)
	}
	if got := ks.Rebind(s); got != nil {
		t.Fatal("streamed kernel rebound to a sequence it cannot verify")
	}

	// Breakdown's unplaced-variable diagnostic must work without a name
	// table.
	if _, err := ks.Breakdown(&Placement{DBC: [][]int{{0}}}); err == nil {
		t.Fatal("unplaced accessed variable accepted")
	}
}
