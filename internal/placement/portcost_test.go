package placement

import (
	"math/rand"
	"testing"

	"repro/internal/trace"
)

// randPortPlacement scatters the accessed variables of s over q DBCs
// with shuffled offsets.
func randPortPlacement(rng *rand.Rand, s *trace.Sequence, q int) *Placement {
	a := trace.Analyze(s)
	return randomPlacement(rng, a.ByFirstUse(), q, 0)
}

// TestPortCostMatchesEngine pins the allocation-free multi-port
// evaluator bit-identical to the EngineCost replay oracle across port
// counts, including tracks grown past the layout's domain count.
func TestPortCostMatchesEngine(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 60; trial++ {
		s := randSeq(rng, 2+rng.Intn(20), 5+rng.Intn(200))
		q := 1 + rng.Intn(4)
		p := randPortPlacement(rng, s, q)
		maxLen := p.MaxDBCLen()
		for ports := 1; ports <= 5; ports++ {
			// Layout domains at least the occupancy: the plain oracle.
			domains := maxLen + rng.Intn(8)
			if domains < ports {
				domains = ports
			}
			m, err := NewPortModel(domains, ports)
			if err != nil {
				t.Fatal(err)
			}
			got, err := PortCost(s, p, m)
			if err != nil {
				t.Fatal(err)
			}
			want, err := EngineCost(s, p, domains, ports)
			if err != nil {
				t.Fatal(err)
			}
			if got != want {
				t.Fatalf("trial %d ports %d domains %d: PortCost %d, EngineCost %d", trial, ports, domains, got, want)
			}

			// Grown track: layout derives from a shorter geometry while
			// the occupancy exceeds it — the engines keep the layout.
			short := 1 + rng.Intn(maxLen+2)
			if short < ports {
				short = ports
			}
			ms, err := NewPortModel(short, ports)
			if err != nil {
				t.Fatal(err)
			}
			got, err = PortCost(s, p, ms)
			if err != nil {
				t.Fatal(err)
			}
			grown := short
			if maxLen > grown {
				grown = maxLen
			}
			want, err = EngineCostAt(s, p, grown, ms.Positions())
			if err != nil {
				t.Fatal(err)
			}
			if got != want {
				t.Fatalf("trial %d ports %d short %d: PortCost %d, EngineCostAt %d", trial, ports, short, got, want)
			}
		}
	}
}

// TestPortCostSinglePortIdentity pins the ports == 1 degenerate case
// bit-identical to every single-port evaluator: the replay oracle, the
// O(nnz) kernel, and the engine replay.
func TestPortCostSinglePortIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 40; trial++ {
		s := randSeq(rng, 2+rng.Intn(16), 5+rng.Intn(160))
		q := 1 + rng.Intn(4)
		p := randPortPlacement(rng, s, q)
		domains := p.MaxDBCLen() + rng.Intn(4) + 1
		m, err := NewPortModel(domains, 1)
		if err != nil {
			t.Fatal(err)
		}
		got, err := PortCost(s, p, m)
		if err != nil {
			t.Fatal(err)
		}
		replay, err := ShiftCost(s, p)
		if err != nil {
			t.Fatal(err)
		}
		kernel, err := NewCostKernel(s).Evaluate(p)
		if err != nil {
			t.Fatal(err)
		}
		if got != replay || got != kernel {
			t.Fatalf("trial %d: PortCost %d, ShiftCost %d, kernel %d", trial, got, replay, kernel)
		}
	}
}

// TestPortCostBreakdown checks the per-DBC attribution sums to the full
// multi-port cost, matches the single-port breakdown at one port, and
// rejects unplaced accessed variables.
func TestPortCostBreakdown(t *testing.T) {
	rng := rand.New(rand.NewSource(37))
	for trial := 0; trial < 30; trial++ {
		s := randSeq(rng, 2+rng.Intn(12), 5+rng.Intn(120))
		q := 1 + rng.Intn(4)
		p := randPortPlacement(rng, s, q)
		domains := p.MaxDBCLen() + 3
		for ports := 1; ports <= 3; ports++ {
			m, err := NewPortModel(domains, ports)
			if err != nil {
				t.Fatal(err)
			}
			b, err := PortCostBreakdown(s, p, m)
			if err != nil {
				t.Fatal(err)
			}
			total, err := PortCost(s, p, m)
			if err != nil {
				t.Fatal(err)
			}
			var sum int64
			for _, c := range b.PerDBC {
				sum += c
			}
			if sum != b.Total || b.Total != total {
				t.Fatalf("trial %d ports %d: per-DBC sum %d, Total %d, PortCost %d", trial, ports, sum, b.Total, total)
			}
			if ports == 1 {
				ref, err := ShiftCostBreakdown(s, p)
				if err != nil {
					t.Fatal(err)
				}
				for d := range ref.PerDBC {
					if ref.PerDBC[d] != b.PerDBC[d] || ref.Accesses[d] != b.Accesses[d] {
						t.Fatalf("trial %d DBC %d: single-port breakdown diverges", trial, d)
					}
				}
			}
		}
	}

	s, err := trace.NewNamedSequence("a", "b", "a")
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewPortModel(4, 2)
	if err != nil {
		t.Fatal(err)
	}
	missing := &Placement{DBC: [][]int{{0}}} // b unplaced
	if _, err := PortCostBreakdown(s, missing, m); err == nil {
		t.Error("unplaced accessed variable not rejected")
	}
}

// portEvalOracle prices the order of one DBC by building a single-DBC
// placement restricted to its members and replaying it.
func portEvalOracle(t *testing.T, s *trace.Sequence, order []int, m *PortModel) int64 {
	t.Helper()
	member := membership(order, s.NumVars())
	r := s.Restrict(func(v int) bool { return v < len(member) && member[v] })
	c, err := PortCost(r, &Placement{DBC: [][]int{order}}, m)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// TestPortDeltaEvaluatorParity checks the move evaluator against the
// full restricted replay after every applied move, that predicted
// deltas match realized changes, and that the single-port degenerate
// case agrees with DeltaEvaluator.
func TestPortDeltaEvaluatorParity(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for trial := 0; trial < 40; trial++ {
		universe := 4 + rng.Intn(16)
		s := randSeq(rng, universe, 10+rng.Intn(150))
		k := 3 + rng.Intn(universe-3+1)
		order := rng.Perm(universe)[:k]
		domains := universe + rng.Intn(4)
		ports := 1 + rng.Intn(3)
		m, err := NewPortModel(domains, ports)
		if err != nil {
			t.Fatal(err)
		}
		e := NewPortDeltaEvaluator(s, order, m)
		if got, want := e.Cost(), portEvalOracle(t, s, e.CurrentOrder(), m); got != want {
			t.Fatalf("trial %d setup: evaluator %d, oracle %d", trial, got, want)
		}
		if ports == 1 {
			ref := NewDeltaEvaluator(s, order)
			if ref.Cost() != e.Cost() || ref.Accesses() != e.Accesses() {
				t.Fatalf("trial %d: single-port (cost %d, acc %d) vs port evaluator (cost %d, acc %d)",
					trial, ref.Cost(), ref.Accesses(), e.Cost(), e.Accesses())
			}
		}
		for mv := 0; mv < 12; mv++ {
			i, j := rng.Intn(k), rng.Intn(k)
			if i > j {
				i, j = j, i
			}
			before := e.Cost()
			var predicted int64
			if rng.Intn(2) == 0 {
				predicted = e.SwapDelta(i, j)
				e.Swap(i, j)
			} else {
				predicted = e.ReverseDelta(i, j)
				e.Reverse(i, j)
			}
			if got := e.Cost() - before; got != predicted {
				t.Fatalf("trial %d move %d [%d,%d]: predicted %d, applied %d", trial, mv, i, j, predicted, got)
			}
			if got, want := e.Cost(), portEvalOracle(t, s, e.CurrentOrder(), m); got != want {
				t.Fatalf("trial %d move %d: evaluator %d, oracle %d", trial, mv, got, want)
			}
		}
	}
}

// TestTwoOptPortNeverWorsens checks the port polish only improves or
// keeps an order's cost under the port objective.
func TestTwoOptPortNeverWorsens(t *testing.T) {
	rng := rand.New(rand.NewSource(53))
	for trial := 0; trial < 25; trial++ {
		s := randSeq(rng, 4+rng.Intn(12), 20+rng.Intn(120))
		order := rng.Perm(s.NumVars())
		m, err := NewPortModel(s.NumVars()+2, 1+rng.Intn(3))
		if err != nil {
			t.Fatal(err)
		}
		before := portEvalOracle(t, s, order, m)
		after := portEvalOracle(t, s, twoOptPort(order, s, m), m)
		if after > before {
			t.Fatalf("trial %d: port polish worsened %d -> %d", trial, before, after)
		}
	}
}

// TestDMATwoOptPortReoptNeverWorse pins the monotonicity the ports
// sweep relies on: the port-aware DMA-2opt placement never scores
// worse under the port model than the single-port DMA-2opt placement
// replayed on the same device.
func TestDMATwoOptPortReoptNeverWorse(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	for trial := 0; trial < 20; trial++ {
		s := randSeq(rng, 5+rng.Intn(20), 30+rng.Intn(200))
		q := 1 + rng.Intn(4)
		domains := s.NumVars() + 4
		for ports := 2; ports <= 4; ports++ {
			m, err := NewPortModel(domains, ports)
			if err != nil {
				t.Fatal(err)
			}
			single, _, err := PlaceDMATwoOpt(s, q, Options{})
			if err != nil {
				t.Fatal(err)
			}
			replayed, err := PortCost(s, single, m)
			if err != nil {
				t.Fatal(err)
			}
			multi, reopt, err := PlaceDMATwoOpt(s, q, Options{Ports: ports, PortDomains: domains})
			if err != nil {
				t.Fatal(err)
			}
			check, err := PortCost(s, multi, m)
			if err != nil {
				t.Fatal(err)
			}
			if reopt != check {
				t.Fatalf("trial %d ports %d: reported %d, port model %d", trial, ports, reopt, check)
			}
			if reopt > replayed {
				t.Fatalf("trial %d ports %d: re-optimized %d worse than replayed %d", trial, ports, reopt, replayed)
			}
		}
	}
}

// TestPortAwareSearchStrategies checks GA and RW honor Options.Ports:
// deterministic for a fixed seed, reported costs exact under the port
// model, and parallel GA fitness identical to serial.
func TestPortAwareSearchStrategies(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	s := randSeq(rng, 14, 240)
	opts := Options{Ports: 3, PortDomains: 20}
	opts.GA = GAConfig{Mu: 10, Lambda: 10, Generations: 8, TournamentK: 3,
		MutationRate: 0.5, MoveWeight: 10, TransposeWeight: 10, PermuteWeight: 3,
		ImproveWeight: 3, Seed: 5}
	opts.RW = RWConfig{Iterations: 150, Seed: 5}
	m, err := NewPortModel(20, 3)
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range []StrategyID{StrategyGA, StrategyRW, StrategyGAMemetic} {
		p1, c1, err := Place(id, s, 3, opts)
		if err != nil {
			t.Fatal(err)
		}
		p2, c2, err := Place(id, s, 3, opts)
		if err != nil {
			t.Fatal(err)
		}
		if c1 != c2 || !p1.Equal(p2) {
			t.Fatalf("%s: not deterministic under ports (%d vs %d)", id, c1, c2)
		}
		exact, err := PortCost(s, p1, m)
		if err != nil {
			t.Fatal(err)
		}
		if c1 != exact {
			t.Fatalf("%s: reported %d, port model %d", id, c1, exact)
		}
	}

	par := opts
	par.GA.Workers = 4
	pp, cp, err := Place(StrategyGA, s, 3, par)
	if err != nil {
		t.Fatal(err)
	}
	ps, cs, err := Place(StrategyGA, s, 3, opts)
	if err != nil {
		t.Fatal(err)
	}
	if cp != cs || !pp.Equal(ps) {
		t.Fatalf("parallel GA diverged under ports: %d vs %d", cp, cs)
	}
}

// TestPortModelResolution checks Options.PortModelFor: single-port
// passthrough, the iso-capacity default rule, explicit domains, and
// validation errors.
func TestPortModelResolution(t *testing.T) {
	if m, err := (Options{}).PortModelFor(4); err != nil || m != nil {
		t.Fatalf("single-port options resolved to %v, %v", m, err)
	}
	if m, err := (Options{Ports: 1}).PortModelFor(4); err != nil || m != nil {
		t.Fatalf("Ports=1 resolved to %v, %v", m, err)
	}
	m, err := (Options{Ports: 2}).PortModelFor(4)
	if err != nil {
		t.Fatal(err)
	}
	if m.Domains() != 256 || m.Ports() != 2 { // Table I: 4 DBCs -> 256 domains
		t.Fatalf("iso rule gave %d domains, %d ports", m.Domains(), m.Ports())
	}
	if got := m.Positions(); got[0] != 0 || got[1] != 128 {
		t.Fatalf("positions = %v, want [0 128]", got)
	}
	m, err = (Options{Ports: 3, PortDomains: 30}).PortModelFor(4)
	if err != nil {
		t.Fatal(err)
	}
	if m.Domains() != 30 {
		t.Fatalf("explicit domains ignored: %d", m.Domains())
	}
	if _, err := (Options{Ports: 5, PortDomains: 3}).PortModelFor(4); err == nil {
		t.Error("ports > domains accepted")
	}
	if _, err := NewPortModel(0, 1); err == nil {
		t.Error("zero domains accepted")
	}
}

// BenchmarkPortCost measures the steady-state multi-port full
// evaluation; the hot loop must not allocate (the alloc gate in CI
// ratchets this to zero).
func BenchmarkPortCost(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	s := randSeq(rng, 96, 12000)
	p := randPortPlacement(rng, s, 8)
	m, err := NewPortModel(256, 4)
	if err != nil {
		b.Fatal(err)
	}
	l, err := p.BuildLookup(s.NumVars())
	if err != nil {
		b.Fatal(err)
	}
	off := make([]int, len(p.DBC))
	b.ReportAllocs()
	b.ResetTimer()
	var sink int64
	for i := 0; i < b.N; i++ {
		sink += portCostLookup(s, l, m, off)
	}
	_ = sink
}

// BenchmarkPortCostPooled is the public entry point with pooled
// scratch: the per-call cost of PortCost itself (lookup construction
// dominates; the replay adds no allocations).
func BenchmarkPortCostPooled(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	s := randSeq(rng, 96, 12000)
	p := randPortPlacement(rng, s, 8)
	m, err := NewPortModel(256, 4)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := PortCost(s, p, m); err != nil {
			b.Fatal(err)
		}
	}
}
