package placement

import (
	"fmt"
	"io"
	"sort"
	"sync"

	"repro/internal/trace"
)

// CostKernel is the transition-matrix full-cost evaluator: a compressed,
// placement-independent summary of one access sequence from which the
// exact shift cost of *any* placement is computed in O(nnz) instead of
// replaying the O(accesses) stream (see DESIGN.md §8).
//
// The per-DBC transition counts that define the cost,
//
//	cost = Σ_DBC Σ freq(u,v) · |off(u) − off(v)|,
//
// depend on the DBC grouping: the restricted subsequence of a DBC skips
// the accesses of every other DBC, so which pairs (u, v) become
// transitions changes with the partition. The kernel therefore does not
// store a flat pair matrix; it stores *transition stencils*. For each
// access to a variable v, the predecessor that the cost model charges
// against is the most recently accessed variable in v's DBC — and the
// only candidates for that role are the distinct variables touched since
// v's own previous access (anything older is superseded by v itself,
// which costs zero). The stencil of an access is exactly that candidate
// list, most recent first; accesses with identical stencils — every
// iteration of a loop body, in practice — collapse into one entry with a
// multiplicity. Evaluating a placement walks each stencil until the
// first candidate sharing v's DBC:
//
//	for each stencil (v, [u1 u2 ...], w):
//	        u* := first ui with DBC(ui) == DBC(v)   // early exit
//	        cost += w · |off(v) − off(u*)|          // no u*: cold or self, free
//
// which is exact for every partition and every intra-DBC order. All
// arithmetic is int64, so kernel costs are bit-identical to the replay
// oracle in cost.go (TestKernelMatchesReplay*, FuzzKernelParity).
//
// A kernel is built once per sequence — O(accesses + Σ stencil lengths)
// with the only allocations at construction — and is immutable
// afterwards, hence safe for concurrent use from any number of
// evaluation goroutines. Cost is allocation-free; callers own the Lookup
// scratch. The single-port cost model only: multi-port geometries go
// through EngineCost.
type CostKernel struct {
	seq      *trace.Sequence
	numVars  int
	accesses int

	// Stencil table in CSR form: stencil i charges variable tvar[i] with
	// multiplicity wgt[i] against the candidate predecessors
	// cand[start[i]:start[i+1]] (recency order).
	//
	// After construction the table is laid out var-major: the rows of
	// each charged variable are contiguous (rowLo[v]:rowHi[v]), and
	// varOrder lists the charged variables by descending total row
	// weight. The total is order-independent, so evaluation is free to
	// exploit this: full scans load a variable's DBC and offset once per
	// group, per-DBC partial costs (CostDBC, the GA's content-addressed
	// cache) read one contiguous block per member, and bounded scans
	// (CostBounded) accumulate the bulk of the cost within the first few
	// heavy groups.
	tvar  []int32
	wgt   []int64
	start []int
	cand  []int32

	varOrder     []int32
	rowLo, rowHi []int32

	// accCnt[v] counts v's accesses — the per-variable weight that lets
	// Breakdown attribute access counts per DBC and detect accessed-but-
	// unplaced variables without replaying the stream.
	accCnt []int64

	// Shared per-sequence memo for the GA's heuristic seeding: the same
	// four heuristic placements are otherwise recomputed by every GA
	// variant cell of a batch at the same DBC count. Guarded because the
	// engine evaluates cells concurrently. Held by pointer so Rebind
	// copies share one memo: seed placements contain variable indices
	// only, so they are valid for every content-equal sequence.
	seeds *seedMemo
}

type seedKey struct{ q, capacity int }

// seedMemo is the mutex-guarded heuristic-seed table shared by a kernel
// and all its rebound copies.
type seedMemo struct {
	mu sync.Mutex
	m  map[seedKey][]*Placement
}

// cachedSeeds returns the memoized heuristic seeds for (q, capacity),
// computing and retaining them on first use. The cached placements are
// shared read-only (the GA clones every seed before touching it).
func (k *CostKernel) cachedSeeds(q, capacity int, compute func() ([]*Placement, error)) ([]*Placement, error) {
	k.seeds.mu.Lock()
	defer k.seeds.mu.Unlock()
	key := seedKey{q: q, capacity: capacity}
	if s, ok := k.seeds.m[key]; ok {
		return s, nil
	}
	s, err := compute()
	if err != nil {
		return nil, err
	}
	if k.seeds.m == nil {
		k.seeds.m = make(map[seedKey][]*Placement)
	}
	k.seeds.m[key] = s
	return s, nil
}

// NewCostKernel summarizes the sequence into a cost kernel. One pass over
// the accesses maintains the distinct-variable recency list; each
// access's stencil is the prefix of that list down to the variable's own
// previous occurrence, deduplicated across accesses.
func NewCostKernel(s *trace.Sequence) *CostKernel {
	return buildCostKernel(s, -1)
}

// NewCostKernelStream builds a kernel from an access stream without ever
// materializing the sequence: the construction pass is inherently
// single-pass (the recency list and stencil dedup only look backwards),
// so its working set is the stencil table plus O(numVars) bookkeeping —
// for loop-structured traces, proportional to the distinct variables and
// window shapes, not the stream length (see DESIGN.md §12). The reader
// is drained to io.EOF; any other reader error aborts the build.
//
// A streamed kernel has no bound sequence: Sequence returns nil, Rebind
// always returns nil, and Breakdown reports unplaced variables by index.
// Cost, CostBounded, CostDBC, Evaluate and NewDeltaEvaluatorFromKernel
// are exactly as for NewCostKernel — the two constructions are
// bit-identical on equal streams (TestStreamKernelParity).
func NewCostKernelStream(numVars int, r trace.AccessReader) (*CostKernel, error) {
	if numVars < 0 {
		return nil, fmt.Errorf("placement: stream kernel: negative numVars %d", numVars)
	}
	b := newKernelBuilder(numVars, -1)
	for {
		a, err := r.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("placement: stream kernel: reading access %d: %w", b.k.accesses, err)
		}
		if a.Var < 0 || a.Var >= numVars {
			return nil, fmt.Errorf("placement: stream kernel: access %d to variable %d outside universe [0,%d)",
				b.k.accesses, a.Var, numVars)
		}
		b.add(a)
	}
	return b.finish(), nil
}

// buildCostKernel is NewCostKernel with an optional candidate budget
// (candBudget < 0 means unlimited): once the table's candidate total
// exceeds the budget the build aborts and returns nil. Callers that
// would fall back to replay evaluation anyway for tables denser than
// the stream (RandomWalk without a batch-shared kernel) use the budget
// to cap the wasted build at the replay path's own cost.
func buildCostKernel(s *trace.Sequence, candBudget int) *CostKernel {
	b := newKernelBuilder(s.NumVars(), candBudget)
	for _, a := range s.Accesses {
		if !b.add(a) {
			return nil // table denser than the caller will use
		}
	}
	k := b.finish()
	k.seq = s
	return k
}

// kernelBuilder is the incremental core of kernel construction: add
// consumes one access at a time, finish lays the table out. Both the
// in-RAM and the streaming constructors drive it, so the two paths
// cannot diverge.
type kernelBuilder struct {
	k          *CostKernel
	candBudget int

	// Doubly linked recency list over the distinct variables seen so far;
	// head is the most recently accessed.
	prev, next []int32
	seen       []bool
	head       int32

	// Dedup machinery. The fast path exploits access locality: a loop
	// iteration reproduces the previous iteration's window exactly, so
	// each variable remembers its last stencil row and the walk compares
	// against it in place — steady-state loops never touch the hash
	// table. Novel windows go through an FNV-hashed index with explicit
	// collision verification.
	lastSten []int32
	index    map[uint64][]int32 // window hash -> candidate rows
	win      []int32            // current access's candidate window
}

func newKernelBuilder(numVars, candBudget int) *kernelBuilder {
	b := &kernelBuilder{
		k: &CostKernel{
			numVars: numVars,
			start:   make([]int, 1),
			accCnt:  make([]int64, numVars),
			seeds:   &seedMemo{},
		},
		candBudget: candBudget,
		prev:       make([]int32, numVars),
		next:       make([]int32, numVars),
		seen:       make([]bool, numVars),
		head:       -1,
		lastSten:   make([]int32, numVars),
		index:      make(map[uint64][]int32),
		win:        make([]int32, 0, 64),
	}
	for i := range b.lastSten {
		b.lastSten[i] = -1
	}
	return b
}

// add folds one access into the table. It returns false only when the
// candidate budget is exhausted; the builder must then be discarded.
func (b *kernelBuilder) add(a trace.Access) bool {
	k := b.k
	v := int32(a.Var)
	k.accesses++
	k.accCnt[v]++
	// Candidates: recency-list prefix strictly newer than v's own
	// previous access. For a first access the walk covers the whole
	// list (every distinct variable so far is a candidate). The walk
	// doubles as the comparison against v's previous stencil.
	ls := b.lastSten[v]
	same := ls >= 0
	var lo, hi int
	if same {
		lo, hi = k.start[ls], k.start[ls+1]
	}
	win := b.win[:0]
	for u := b.head; u >= 0 && u != v; u = b.next[u] {
		if same && (lo >= hi || k.cand[lo] != u) {
			same = false
		}
		lo++
		win = append(win, u)
	}
	b.win = win
	switch {
	case same && lo == hi:
		k.wgt[ls]++
	default:
		h := uint64(14695981039346656037)
		h = (h ^ uint64(uint32(v))) * 1099511628211
		for _, u := range win {
			h = (h ^ uint64(uint32(u))) * 1099511628211
		}
		row := int32(-1)
		for _, r := range b.index[h] {
			if k.tvar[r] == v && k.sameWindow(r, win) {
				row = r
				break
			}
		}
		if row >= 0 {
			k.wgt[row]++
		} else {
			row = int32(len(k.tvar))
			b.index[h] = append(b.index[h], row)
			k.tvar = append(k.tvar, v)
			k.wgt = append(k.wgt, 1)
			k.cand = append(k.cand, win...)
			k.start = append(k.start, len(k.cand))
			if b.candBudget >= 0 && len(k.cand) > b.candBudget {
				return false
			}
		}
		b.lastSten[v] = row
	}

	// Move v to the front of the recency list.
	if b.seen[v] {
		p, nx := b.prev[v], b.next[v]
		if p >= 0 {
			b.next[p] = nx
		} else {
			b.head = nx
		}
		if nx >= 0 {
			b.prev[nx] = p
		}
	}
	b.seen[v] = true
	b.next[v] = b.head
	b.prev[v] = -1
	if b.head >= 0 {
		b.prev[b.head] = v
	}
	b.head = v
	return true
}

// finish lays the accumulated table out var-major and returns the
// kernel. The builder must not be reused afterwards.
func (b *kernelBuilder) finish() *CostKernel {
	b.k.layoutVarMajor()
	return b.k
}

// layoutVarMajor permutes the stencil table into the var-major,
// heaviest-group-first layout described on the struct (stable within a
// variable's rows, so the table is deterministic).
func (k *CostKernel) layoutVarMajor() {
	k.rowLo = make([]int32, k.numVars)
	k.rowHi = make([]int32, k.numVars)
	if len(k.tvar) == 0 {
		return
	}
	wsum := make([]int64, k.numVars)
	perVar := make([][]int32, k.numVars)
	for i, v := range k.tvar {
		wsum[v] += k.wgt[i]
		perVar[v] = append(perVar[v], int32(i))
	}
	for v := 0; v < k.numVars; v++ {
		if len(perVar[v]) > 0 {
			k.varOrder = append(k.varOrder, int32(v))
		}
	}
	sort.SliceStable(k.varOrder, func(a, b int) bool {
		return wsum[k.varOrder[a]] > wsum[k.varOrder[b]]
	})

	n := len(k.tvar)
	tvar := make([]int32, 0, n)
	wgt := make([]int64, 0, n)
	start := make([]int, 1, n+1)
	cand := make([]int32, 0, len(k.cand))
	for _, v := range k.varOrder {
		k.rowLo[v] = int32(len(tvar))
		for _, r := range perVar[v] {
			tvar = append(tvar, v)
			wgt = append(wgt, k.wgt[r])
			cand = append(cand, k.cand[k.start[r]:k.start[r+1]]...)
			start = append(start, len(cand))
		}
		k.rowHi[v] = int32(len(tvar))
	}
	k.tvar, k.wgt, k.start, k.cand = tvar, wgt, start, cand
}

// sameWindow reports whether stencil row r's candidate list equals win.
func (k *CostKernel) sameWindow(r int32, win []int32) bool {
	lo, hi := k.start[r], k.start[r+1]
	if hi-lo != len(win) {
		return false
	}
	for i, u := range win {
		if k.cand[lo+i] != u {
			return false
		}
	}
	return true
}

// Sequence returns the sequence this kernel summarizes, or nil for a
// kernel built from a stream (NewCostKernelStream). Callers sharing
// kernels (Options.Kernel, GAConfig.Kernel) key on pointer identity: a
// kernel is only ever applied to the exact sequence it was built from.
func (k *CostKernel) Sequence() *trace.Sequence { return k.seq }

// varName renders v for diagnostics; streamed kernels have no name table.
func (k *CostKernel) varName(v int) string {
	if k.seq != nil {
		return k.seq.Name(v)
	}
	return fmt.Sprintf("v%d", v)
}

// NumVars returns the size of the variable universe the kernel covers.
func (k *CostKernel) NumVars() int { return k.numVars }

// Accesses returns the number of accesses summarized (Σ multiplicities).
func (k *CostKernel) Accesses() int { return k.accesses }

// NNZ returns the number of distinct transition stencils — the table
// size every Cost call is linear in.
func (k *CostKernel) NNZ() int { return len(k.tvar) }

// Candidates returns the total candidate-list length across stencils,
// the kernel's memory footprint and its worst-case evaluation bound.
func (k *CostKernel) Candidates() int { return len(k.cand) }

// Cost evaluates the exact shift cost of the placement described by the
// lookup: every stencil walks its candidates until the first same-DBC
// hit (the realized predecessor) or exhaustion (a cold or self access,
// free). The lookup must cover every accessed variable (same
// precondition as the replay path); unplaced entries are (-1, -1).
// Allocation-free and safe to call concurrently with distinct lookups.
//
//rtm:hotpath
func (k *CostKernel) Cost(l *Lookup) int64 {
	dbc, off := l.DBCOf, l.Offset
	var total int64
	for _, v := range k.varOrder {
		dv := dbc[v]
		if dv < 0 {
			continue
		}
		total += k.varCost(dbc, off, int(v), dv)
	}
	return total
}

// varCost sums the contributions of one charged variable's row group.
// The table slices are hoisted into locals: dbc/off may alias arbitrary
// memory as far as the compiler knows, and keeping the loads explicit
// keeps the inner scan tight.
//
//rtm:hotpath
func (k *CostKernel) varCost(dbc, off []int, v, dv int) int64 {
	start, cand, wgt := k.start, k.cand, k.wgt
	offv := off[v]
	var total int64
	for i := k.rowLo[v]; i < k.rowHi[v]; i++ {
		hi := start[i+1]
		for j := start[i]; j < hi; j++ {
			u := cand[j]
			if dbc[u] != dv {
				continue
			}
			d := offv - off[u]
			if d < 0 {
				d = -d
			}
			total += wgt[i] * int64(d)
			break
		}
	}
	return total
}

// CostBounded is Cost with an abort threshold: the running total is a
// sum of non-negative contributions, so once it reaches bound the final
// cost provably does too and the scan stops. The return value is exact
// when it is below bound and otherwise only a certificate that
// cost >= bound. Best-of-N searches (random walk) use it to discard
// losing placements after the few heaviest variable groups — varOrder
// is weight-descending precisely so the partial sum grows fastest up
// front.
//
//rtm:hotpath
func (k *CostKernel) CostBounded(l *Lookup, bound int64) int64 {
	dbc, off := l.DBCOf, l.Offset
	var total int64
	for _, v := range k.varOrder {
		dv := dbc[v]
		if dv < 0 {
			continue
		}
		total += k.varCost(dbc, off, int(v), dv)
		if total >= bound {
			return total
		}
	}
	return total
}

// CostDBC returns one DBC's contribution to the full cost: the row
// groups of the DBC's member variables, scanned against the full
// lookup. A candidate hits only when it shares the member's DBC, so the
// result depends exclusively on the DBC's own ordered content — which
// is what makes it safe to memoize by content (the GA's DBC cost cache)
// — and the per-DBC results sum to Cost over any placement.
//
//rtm:hotpath
func (k *CostKernel) CostDBC(l *Lookup, content []int) int64 {
	dbc, off := l.DBCOf, l.Offset
	var total int64
	for _, v := range content {
		total += k.varCost(dbc, off, v, dbc[v])
	}
	return total
}

// Evaluate is the validating convenience form of Cost: it inverts the
// placement (allocating a fresh Lookup) and evaluates it. Hot paths
// reuse a caller-owned Lookup with fillLookup and call Cost directly.
func (k *CostKernel) Evaluate(p *Placement) (int64, error) {
	l, err := p.BuildLookup(k.numVars)
	if err != nil {
		return 0, err
	}
	return k.Cost(l), nil
}

// Breakdown attributes the placement's cost and access counts per DBC —
// the kernel equivalent of ShiftCostBreakdown, bit-identical per DBC
// (each stencil group contributes to the charged variable's DBC, exactly
// the DBC the replay attributes the transition to). Unlike Cost it
// validates coverage: an accessed-but-unplaced variable is an error, as
// on the replay path.
func (k *CostKernel) Breakdown(p *Placement) (*CostBreakdown, error) {
	l, err := p.BuildLookup(k.numVars)
	if err != nil {
		return nil, err
	}
	q := len(p.DBC)
	b := &CostBreakdown{PerDBC: make([]int64, q), Accesses: make([]int64, q)}
	for v := 0; v < k.numVars; v++ {
		if k.accCnt[v] == 0 {
			continue
		}
		d := l.DBCOf[v]
		if d < 0 || d >= q {
			return nil, fmt.Errorf("placement: accesses to unplaced variable %s", k.varName(v))
		}
		b.Accesses[d] += k.accCnt[v]
		c := k.varCost(l.DBCOf, l.Offset, v, d)
		b.PerDBC[d] += c
		b.Total += c
	}
	return b, nil
}

// Rebind returns a kernel bound to s, sharing this kernel's immutable
// stencil tables: content-addressed caches hand out one kernel for every
// content-equal sequence, but the strategy plumbing validates kernels by
// sequence pointer (Options.Kernel, GAConfig.Kernel), so a cache hit
// under a different pointer must be re-pointed before it is usable.
// Returns k itself when s is already the bound sequence, and nil when s
// is not content-equal (the caller must build a fresh kernel). The
// rebound kernel shares the tables read-only and the heuristic-seed
// memo (seed placements hold variable indices only, valid for any
// content-equal sequence), so GA seeding stays memoized across rebinds.
func (k *CostKernel) Rebind(s *trace.Sequence) *CostKernel {
	if k.seq == s {
		return k
	}
	if k.seq == nil || !k.seq.ContentEqual(s) {
		// Streamed kernels (seq == nil) cannot prove content equality:
		// the stream is gone. Callers must build afresh.
		return nil
	}
	return &CostKernel{
		seq:      s,
		numVars:  k.numVars,
		accesses: k.accesses,
		tvar:     k.tvar,
		wgt:      k.wgt,
		start:    k.start,
		cand:     k.cand,
		varOrder: k.varOrder,
		rowLo:    k.rowLo,
		rowHi:    k.rowHi,
		accCnt:   k.accCnt,
		seeds:    k.seeds,
	}
}

// kernelFor returns a kernel for s: the supplied one when it was built
// from exactly this sequence, otherwise a freshly built one.
func kernelFor(k *CostKernel, s *trace.Sequence) *CostKernel {
	if k != nil && k.seq == s {
		return k
	}
	return NewCostKernel(s)
}

// NewDeltaEvaluatorFromKernel derives the incremental intra-DBC
// evaluator of delta.go for the DBC content `order` from an existing
// kernel, in O(nnz) instead of the O(accesses) replay of
// NewDeltaEvaluator. The restricted transition multiset of a member set
// M falls straight out of the stencils: an access stencil (v, [u...], w)
// with v ∈ M realizes the transition (u*, v) for the first u* ∈ M — no
// candidate in M means the predecessor was v itself (a free
// self-transition, excluded from the CSR exactly as the replay path
// excludes it). The resulting evaluator is move-for-move identical to a
// replay-built one (TestDeltaFromKernelParity).
func NewDeltaEvaluatorFromKernel(k *CostKernel, order []int) *DeltaEvaluator {
	e := newDeltaShell(k.numVars, order)
	var pairs []wpair
	for i, v := range k.tvar {
		if e.pos[v] < 0 {
			continue
		}
		e.accesses += int(k.wgt[i])
		for j := k.start[i]; j < k.start[i+1]; j++ {
			u := k.cand[j]
			if e.pos[u] < 0 {
				continue
			}
			a, b := u, v
			if a > b {
				a, b = b, a
			}
			pairs = append(pairs, wpair{u: a, v: b, w: k.wgt[i]})
			break
		}
	}
	e.initCSR(pairs)
	return e
}

// String is a compact diagnostic summary for logs and tests.
func (k *CostKernel) String() string {
	return fmt.Sprintf("kernel{vars=%d accesses=%d nnz=%d cand=%d}",
		k.numVars, k.accesses, len(k.tvar), len(k.cand))
}
