package placement

import (
	"context"
	"errors"
	"reflect"
	"testing"

	"repro/internal/energy"
	"repro/internal/trace"
)

// streamSeq parses a text trace; text-parsed variables are numbered by
// first appearance, so the per-window compaction of a single whole-trace
// window is the identity and the window=∞ invariant is directly
// comparable against placing the sequence itself.
func streamSeq(t *testing.T, text string) *trace.Sequence {
	t.Helper()
	b, err := trace.ParseString("stream", text)
	if err != nil {
		t.Fatal(err)
	}
	return b.Sequences[0]
}

// TestPlaceStreamedWindowInfinity pins the degenerate-window invariant:
// with one window covering the whole stream there are no migrations and
// the stitched total equals the whole-trace placement cost exactly.
func TestPlaceStreamedWindowInfinity(t *testing.T) {
	s := streamSeq(t, "a b a c b a d c a b d d a c a b")
	for _, strat := range []StrategyID{StrategyDMAOFU, StrategyAFDOFU, StrategyDMASR} {
		for _, q := range []int{1, 2, 4} {
			p, want, err := Place(strat, s, q, Options{})
			if err != nil {
				t.Fatal(err)
			}
			res, err := PlaceStreamed(context.Background(), trace.NewSliceReader(s), StreamConfig{
				NumVars: s.NumVars(), DBCs: q, Window: s.Len() + 100, Strategy: strat,
			})
			if err != nil {
				t.Fatal(err)
			}
			if res.Windows != 1 || res.MigrationShifts != 0 || res.MigratedVars != 0 {
				t.Fatalf("%s q=%d: single-window run reports %d windows, %d migration shifts",
					strat, q, res.Windows, res.MigrationShifts)
			}
			if res.Shifts != want {
				t.Fatalf("%s q=%d: stitched %d, whole-trace placement %d (placement %v)",
					strat, q, res.Shifts, want, p)
			}
			if res.Accesses != int64(s.Len()) || res.MaxWindowVars != s.NumVars() {
				t.Fatalf("%s q=%d: accounting %+v", strat, q, res)
			}
		}
	}
}

// TestPlaceStreamedStitchingByHand verifies the boundary model against a
// worked example small enough to price on paper.
//
// Trace "a b b a", window 2, q = 1, DMA-OFU (order of first use):
//
//	window 0 = [a b]  → layout a@0, b@1; replay: a cold, b |1−0| = 1.
//	window 1 = [b a]  → compacted first-use order flips: b@0, a@1.
//	  migrations (ascending var order, port at offset 1 after window 0):
//	    a: read @ old 0 (|0−1| = 1), write @ new 1 (|1−0| = 1)
//	    b: read @ old 1 (|1−1| = 0), write @ new 0 (|0−1| = 1)
//	  replay: b@0 (|0−0| = 0), a@1 (|1−0| = 1).
//
// Totals: window shifts 1+1 = 2, migration shifts 3, grand total 5.
func TestPlaceStreamedStitchingByHand(t *testing.T) {
	s := streamSeq(t, "a b b a")
	var events []StreamWindowEvent
	res, err := PlaceStreamed(context.Background(), trace.NewSliceReader(s), StreamConfig{
		NumVars: 2, DBCs: 1, Window: 2, Strategy: StrategyDMAOFU,
		Progress: func(ev StreamWindowEvent) { events = append(events, ev) },
	})
	if err != nil {
		t.Fatal(err)
	}
	// Tally: the trace's 4 reads plus the 2 migrations' read+write pairs
	// — Reads 4+2 = 6, Writes 0+2 = 2.
	want := &StreamResult{
		Accesses: 4, Windows: 2,
		Shifts: 5, WindowShifts: 2, MigrationShifts: 3,
		MigratedVars: 2, Reads: 6, Writes: 2, MaxWindowVars: 2,
	}
	if !reflect.DeepEqual(res, want) {
		t.Fatalf("stitched result %+v, want %+v", res, want)
	}
	if len(events) != 2 || events[0].Window != 0 || events[1].Window != 1 ||
		events[1].Accesses != 4 || events[1].Shifts != 5 {
		t.Fatalf("progress events %+v", events)
	}
}

// TestPlaceStreamedPricesCost pins the boundary pricing: a streamed run
// with a cost model configured reports exactly the model's price of its
// stitched tally, and the stitched shift accounting is bit-identical to
// a model-free run (the model only prices, never steers).
func TestPlaceStreamedPricesCost(t *testing.T) {
	s := streamSeq(t, "a b b a! c a b! c")
	params, err := energy.ForDBCs(4)
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewCostModel(ObjectiveEnergy, params, 0)
	if err != nil {
		t.Fatal(err)
	}
	cfg := StreamConfig{NumVars: 3, DBCs: 2, Window: 3, Strategy: StrategyDMAOFU}
	plain, err := PlaceStreamed(context.Background(), trace.NewSliceReader(s), cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Options.Cost = m
	priced, err := PlaceStreamed(context.Background(), trace.NewSliceReader(s), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if priced.Cost == nil {
		t.Fatal("no cost priced with a model configured")
	}
	want := m.Price(Tally{Shifts: plain.Shifts, Reads: plain.Reads, Writes: plain.Writes})
	if *priced.Cost != want {
		t.Errorf("priced %+v, want %+v", *priced.Cost, want)
	}
	priced.Cost = nil
	if !reflect.DeepEqual(plain, priced) {
		t.Errorf("model changed the stitched accounting: %+v vs %+v", plain, priced)
	}
}

// TestPlaceStreamedDeterministic pins that equal streams and configs
// stitch to identical results, for several window sizes, and that the
// accounting identity Shifts = WindowShifts + MigrationShifts holds.
func TestPlaceStreamedDeterministic(t *testing.T) {
	cfg := trace.SynthConfig{Vars: 120, Accesses: 20000, Seed: 17}
	for _, window := range []int{0, 512, 1999, 20000} {
		var got [2]*StreamResult
		for i := range got {
			gen, err := trace.NewSynthReader(cfg)
			if err != nil {
				t.Fatal(err)
			}
			got[i], err = PlaceStreamed(context.Background(), gen, StreamConfig{
				NumVars: cfg.Vars, DBCs: 4, Window: window, Strategy: StrategyDMAOFU,
			})
			if err != nil {
				t.Fatal(err)
			}
		}
		if !reflect.DeepEqual(got[0], got[1]) {
			t.Fatalf("window %d: runs differ: %+v vs %+v", window, got[0], got[1])
		}
		r := got[0]
		if r.Shifts != r.WindowShifts+r.MigrationShifts {
			t.Fatalf("window %d: accounting identity broken: %+v", window, r)
		}
		if r.Accesses != cfg.Accesses {
			t.Fatalf("window %d: consumed %d of %d accesses", window, r.Accesses, cfg.Accesses)
		}
		w := window
		if w <= 0 {
			w = DefaultStreamWindow
		}
		wantWindows := int((cfg.Accesses + int64(w) - 1) / int64(w))
		if r.Windows != wantWindows {
			t.Fatalf("window %d: %d windows, want %d", window, r.Windows, wantWindows)
		}
		if r.MaxWindowVars > cfg.Vars {
			t.Fatalf("window %d: MaxWindowVars %d exceeds universe %d", window, r.MaxWindowVars, cfg.Vars)
		}
	}
}

func TestPlaceStreamedErrors(t *testing.T) {
	s := streamSeq(t, "a b a")
	ctx := context.Background()
	base := StreamConfig{NumVars: 2, DBCs: 2, Strategy: StrategyDMAOFU}

	bad := base
	bad.DBCs = 0
	if _, err := PlaceStreamed(ctx, trace.NewSliceReader(s), bad); err == nil {
		t.Fatal("zero DBCs accepted")
	}
	bad = base
	bad.Strategy = ""
	if _, err := PlaceStreamed(ctx, trace.NewSliceReader(s), bad); err == nil {
		t.Fatal("empty strategy accepted")
	}
	bad = base
	bad.Strategy = "no-such-strategy"
	if _, err := PlaceStreamed(ctx, trace.NewSliceReader(s), bad); err == nil {
		t.Fatal("unknown strategy accepted")
	}
	bad = base
	bad.Options.Ports = 2
	if _, err := PlaceStreamed(ctx, trace.NewSliceReader(s), bad); err == nil {
		t.Fatal("multi-port stream accepted")
	}
	bad = base
	bad.NumVars = 1 // stream accesses variable 1
	if _, err := PlaceStreamed(ctx, trace.NewSliceReader(s), bad); err == nil {
		t.Fatal("out-of-universe access accepted")
	}

	boom := errors.New("truncated tape")
	if _, err := PlaceStreamed(ctx, &failingReader{n: 2, err: boom}, StreamConfig{
		NumVars: 1, DBCs: 1, Strategy: StrategyDMAOFU,
	}); !errors.Is(err, boom) {
		t.Fatalf("reader error not propagated: %v", err)
	}

	cancelled, cancel := context.WithCancel(ctx)
	cancel()
	if _, err := PlaceStreamed(cancelled, trace.NewSliceReader(s), base); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled context not honored: %v", err)
	}

	// An empty stream is a valid zero result, not an error.
	res, err := PlaceStreamed(ctx, trace.NewSliceReader(&trace.Sequence{}), base)
	if err != nil {
		t.Fatal(err)
	}
	if res.Accesses != 0 || res.Windows != 0 || res.Shifts != 0 {
		t.Fatalf("empty stream result %+v", res)
	}
}

// TestPlaceStreamedMigrationVsWhole sanity-checks the economics on a
// loop-structured synthetic stream: windowing changes the total, every
// component is non-negative, and migrations only appear when there is
// more than one window.
func TestPlaceStreamedMigrationVsWhole(t *testing.T) {
	cfg := trace.SynthConfig{Vars: 60, Accesses: 6000, Seed: 29}
	gen, err := trace.NewSynthReader(cfg)
	if err != nil {
		t.Fatal(err)
	}
	windowed, err := PlaceStreamed(context.Background(), gen, StreamConfig{
		NumVars: cfg.Vars, DBCs: 4, Window: 500, Strategy: StrategyDMAOFU,
	})
	if err != nil {
		t.Fatal(err)
	}
	if windowed.Windows != 12 {
		t.Fatalf("expected 12 windows, got %d", windowed.Windows)
	}
	if windowed.WindowShifts <= 0 {
		t.Fatalf("degenerate stream: %+v", windowed)
	}
	if windowed.MigrationShifts < 0 || windowed.MigratedVars < 0 {
		t.Fatalf("negative migration accounting: %+v", windowed)
	}
}
