package placement

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/energy"
	"repro/internal/rtm"
	"repro/internal/trace"
)

// Pluggable cost objectives (DESIGN.md §15). The paper's accounting
// (§IV-C, Table I, Fig. 5) prices placements in runtime, dynamic energy
// and leakage, not raw shifts; a CostModel turns the repository's shift
// counts into those dimensions without the optimizers ever leaving the
// int64 shift primitive.
//
// The load-bearing fact: reads and writes are fixed by the trace — a
// placement changes only the shift count. Every supported objective is a
// strictly increasing affine function of shifts for a fixed (sequence,
// geometry, Table I config):
//
//	runtime  = reads·tR + writes·tW + shifts·f·tS
//	dynamic  = reads·eR + writes·eW + shifts·f·eS
//	leakage  = P_leak · runtime
//	faulty   = runtime with f = 1/(1-p) expected-correction overhead
//
// (f is the fault-overhead factor, 1 when the error rate is 0.) The
// strict monotonicity — enforced by NewCostModel — makes the argmin over
// placements identical to shift minimization, so the GA's fitness loop,
// the portfolio's incumbent pruning and the kernel/delta/port hot paths
// all keep comparing raw int64 shifts, allocation-free and bit-identical
// to the pre-CostModel code. The model prices tallies into the typed
// multi-dimension Cost only at reporting and scalarization boundaries:
// Lab results, portfolio winners, streamed totals, server responses and
// the pareto experiment.

// An Objective names a cost dimension to optimize and report under.
type Objective string

// The supported objectives. ObjectiveFaulty carries a per-shift error
// rate and is spelled "faulty:<rate>" (see ParseObjective).
const (
	// ObjectiveShifts is the paper's raw shift count — the default, and
	// the primitive every other objective reduces to.
	ObjectiveShifts Objective = "shifts"
	// ObjectiveEnergy is total energy (dynamic + leakage) in picojoules
	// under the Table I accounting of §IV-C.
	ObjectiveEnergy Objective = "energy"
	// ObjectiveRuntime is the serialized-access runtime in nanoseconds.
	ObjectiveRuntime Objective = "runtime"
	// ObjectiveFaulty is expected runtime under the FaultyEngine error
	// model: every shift slips with probability p and the 1/(1-p)
	// geometric correction overhead inflates the shift term.
	ObjectiveFaulty Objective = "faulty"
)

// ParseObjective parses an objective spec as accepted by the CLIs and
// the placement service: "shifts", "energy", "runtime" or
// "faulty:<rate>" with rate in [0,1). The empty string parses as
// ObjectiveShifts. The returned rate is 0 except for faulty specs.
func ParseObjective(spec string) (Objective, float64, error) {
	switch Objective(spec) {
	case "", ObjectiveShifts:
		return ObjectiveShifts, 0, nil
	case ObjectiveEnergy:
		return ObjectiveEnergy, 0, nil
	case ObjectiveRuntime:
		return ObjectiveRuntime, 0, nil
	}
	if rest, ok := strings.CutPrefix(spec, string(ObjectiveFaulty)+":"); ok {
		rate, err := strconv.ParseFloat(rest, 64)
		if err != nil {
			return "", 0, fmt.Errorf("placement: objective %q: bad fault rate: %w", spec, err)
		}
		if rate < 0 || rate >= 1 {
			return "", 0, fmt.Errorf("placement: objective %q: fault rate must be in [0,1)", spec)
		}
		return ObjectiveFaulty, rate, nil
	}
	return "", 0, fmt.Errorf("placement: unknown objective %q (want shifts, energy, runtime or faulty:<rate>)", spec)
}

// A Tally is the placement-dependent event totals a Cost is priced
// from: the shift count (the optimized primitive) plus the trace's
// read and write counts (fixed by the sequence, independent of the
// placement).
type Tally struct {
	Shifts int64
	Reads  int64
	Writes int64
}

// Add accumulates other into t.
func (t *Tally) Add(other Tally) {
	t.Shifts += other.Shifts
	t.Reads += other.Reads
	t.Writes += other.Writes
}

// A Cost is a tally priced into every dimension of the model at once.
// Scalar is the dimension the model's objective selects — the value a
// scalarized comparison of two placements would use.
type Cost struct {
	// Objective is the pricing model's objective.
	Objective Objective
	// Shifts, Reads, Writes echo the tally (nominal, fault-free counts).
	Shifts int64
	Reads  int64
	Writes int64
	// FaultShifts is the expected extra physical shifts spent on slip
	// correction (0 when the model's fault rate is 0). The runtime and
	// energy dimensions below include it.
	FaultShifts float64
	// RuntimeNS is the serialized-access runtime in nanoseconds.
	RuntimeNS float64
	// DynamicPJ and LeakagePJ split the energy as in Fig. 5.
	DynamicPJ float64
	LeakagePJ float64
	// Scalar is the objective's value: Shifts, total energy, or
	// (expected) runtime.
	Scalar float64
}

// TotalEnergyPJ returns dynamic + leakage energy.
func (c Cost) TotalEnergyPJ() float64 { return c.DynamicPJ + c.LeakagePJ }

// Add accumulates other into c dimension-wise (Objective is kept;
// accumulating costs priced by different models is a caller bug).
func (c *Cost) Add(other Cost) {
	c.Shifts += other.Shifts
	c.Reads += other.Reads
	c.Writes += other.Writes
	c.FaultShifts += other.FaultShifts
	c.RuntimeNS += other.RuntimeNS
	c.DynamicPJ += other.DynamicPJ
	c.LeakagePJ += other.LeakagePJ
	c.Scalar += other.Scalar
}

// A CostModel prices shift/read/write tallies under one objective and
// one Table I parameter set. It is immutable and safe for concurrent
// use. Construct with NewCostModel, which rejects models whose scalar
// is not strictly increasing in shifts — the invariant that lets every
// search layer optimize the raw shift count on the model's behalf
// (see the package comment above and DESIGN.md §15).
type CostModel struct {
	objective Objective
	params    energy.Params
	faultRate float64
	// overhead is the expected physical/nominal shift ratio 1/(1-rate),
	// precomputed so Price stays trivially cheap.
	overhead float64
}

// NewCostModel builds a pricing model. params supplies the Table I
// latencies/energies (a zero Params is accepted only for the shifts
// objective, which needs no device constants); faultRate is the
// per-shift slip probability of the FaultyEngine error model, in [0,1).
// Construction fails if the objective's scalar would not be strictly
// increasing in the shift count — negative parameters, or a runtime/
// energy objective whose shift coefficient is zero — because the search
// layers rely on that monotonicity to optimize shifts as a proxy.
func NewCostModel(objective Objective, params energy.Params, faultRate float64) (*CostModel, error) {
	obj := objective
	if obj != ObjectiveFaulty {
		// Normalize and validate through the parser ("" means shifts);
		// a "faulty:<rate>" spelling is rejected here — the rate is this
		// constructor's argument, not part of the objective name.
		var rate float64
		var err error
		obj, rate, err = ParseObjective(string(objective))
		if err != nil {
			return nil, err
		}
		if rate != 0 {
			return nil, fmt.Errorf("placement: NewCostModel: pass the fault rate as an argument, not inline in %q", objective)
		}
	}
	overhead, err := rtm.ExpectedShiftOverhead(faultRate)
	if err != nil {
		return nil, fmt.Errorf("placement: NewCostModel: %w", err)
	}
	for _, v := range []float64{
		params.LeakagePowerMW,
		params.WriteEnergyPJ, params.ReadEnergyPJ, params.ShiftEnergyPJ,
		params.ReadLatencyNS, params.WriteLatencyNS, params.ShiftLatencyNS,
		params.AreaMM2,
	} {
		if v < 0 {
			return nil, fmt.Errorf("placement: NewCostModel: negative Table I parameter %v", v)
		}
	}
	m := &CostModel{objective: obj, params: params, faultRate: faultRate, overhead: overhead}
	// The scalar's shift coefficient must be strictly positive: the
	// optimizers minimize shifts, and a flat (or decreasing) objective
	// would make that proxy wrong instead of merely indirect.
	switch obj {
	case ObjectiveRuntime, ObjectiveFaulty:
		if params.ShiftLatencyNS <= 0 {
			return nil, fmt.Errorf("placement: NewCostModel: %s objective needs ShiftLatencyNS > 0 to be monotone in shifts", obj)
		}
	case ObjectiveEnergy:
		if params.ShiftEnergyPJ <= 0 && params.LeakagePowerMW*params.ShiftLatencyNS <= 0 {
			return nil, fmt.Errorf("placement: NewCostModel: energy objective needs a positive shift energy or leakage·shift-latency term to be monotone in shifts")
		}
	}
	return m, nil
}

// DefaultCostModel returns the zero-overhead default: the raw shift
// objective with no device constants, pricing exactly what the
// pre-CostModel code reported.
func DefaultCostModel() *CostModel {
	return &CostModel{objective: ObjectiveShifts, overhead: 1}
}

// Objective returns the model's objective.
func (m *CostModel) Objective() Objective { return m.objective }

// FaultRate returns the model's per-shift slip probability.
func (m *CostModel) FaultRate() float64 { return m.faultRate }

// Params returns the model's Table I parameter set.
func (m *CostModel) Params() energy.Params { return m.params }

// Spec renders the model's objective in the CLI/service spelling:
// "shifts", "energy", "runtime" or "faulty:<rate>". It round-trips
// through ParseObjective and is the cache-key material the placement
// service uses to keep objectives from aliasing each other.
func (m *CostModel) Spec() string {
	if m.objective == ObjectiveFaulty {
		return string(ObjectiveFaulty) + ":" + strconv.FormatFloat(m.faultRate, 'g', -1, 64)
	}
	return string(m.objective)
}

// String implements fmt.Stringer as Spec.
func (m *CostModel) String() string { return m.Spec() }

// Price prices a tally into every cost dimension. It is pure arithmetic
// on the precomputed model constants — no allocation, no replay — so
// callers may price per result, per DBC or per window without
// measurable overhead (BenchmarkCostModel pins this).
//
//rtm:hotpath
func (m *CostModel) Price(t Tally) Cost {
	reads, writes := float64(t.Reads), float64(t.Writes)
	shifts := float64(t.Shifts) * m.overhead
	p := m.params
	c := Cost{
		Objective:   m.objective,
		Shifts:      t.Shifts,
		Reads:       t.Reads,
		Writes:      t.Writes,
		FaultShifts: shifts - float64(t.Shifts),
		RuntimeNS:   reads*p.ReadLatencyNS + writes*p.WriteLatencyNS + shifts*p.ShiftLatencyNS,
		DynamicPJ:   reads*p.ReadEnergyPJ + writes*p.WriteEnergyPJ + shifts*p.ShiftEnergyPJ,
	}
	c.LeakagePJ = p.LeakagePowerMW * c.RuntimeNS
	switch m.objective {
	case ObjectiveEnergy:
		c.Scalar = c.DynamicPJ + c.LeakagePJ
	case ObjectiveRuntime, ObjectiveFaulty:
		c.Scalar = c.RuntimeNS
	default:
		c.Scalar = float64(t.Shifts)
	}
	return c
}

// Better reports whether shift count a beats shift count b under the
// model's objective. Because every constructible model's scalar is
// strictly increasing in shifts (NewCostModel's invariant) and the
// non-shift terms are placement-independent, the scalarized comparison
// reduces to the raw shift comparison — this is the tie-break rule too:
// equal shifts price to equal scalars, and ties fall to whatever
// deterministic order the caller already had (GA population index,
// portfolio order). A nil model compares raw shifts.
//
//rtm:hotpath
func (m *CostModel) Better(a, b int64) bool { return a < b }

// TallyOf pairs a sequence's (placement-independent) read/write counts
// with a shift count computed for one of its placements. One O(n) pass
// over the accesses — a reporting-boundary helper.
func TallyOf(s *trace.Sequence, shifts int64) Tally {
	w := int64(s.Writes())
	return Tally{Shifts: shifts, Reads: int64(s.Len()) - w, Writes: w}
}

// PerDBCTallies attributes the sequence's reads and writes per DBC and
// pairs them with the given per-DBC shift counts (a CostBreakdown's
// PerDBC slice), yielding one tally per DBC for per-DBC cost
// breakdowns. One O(n) pass over the accesses; a reporting-boundary
// helper, not a hot path.
func PerDBCTallies(s *trace.Sequence, p *Placement, perDBCShifts []int64) ([]Tally, error) {
	l, err := p.BuildLookup(s.NumVars())
	if err != nil {
		return nil, err
	}
	out := make([]Tally, len(perDBCShifts))
	for i, sh := range perDBCShifts {
		out[i].Shifts = sh
	}
	for _, a := range s.Accesses {
		d := l.DBCOf[a.Var]
		if d < 0 || d >= len(out) {
			return nil, fmt.Errorf("placement: per-DBC tallies: variable %d in DBC %d outside [0,%d)", a.Var, d, len(out))
		}
		if a.Write {
			out[d].Writes++
		} else {
			out[d].Reads++
		}
	}
	return out, nil
}
