package placement

import (
	"math"
	"testing"

	"repro/internal/energy"
	"repro/internal/trace"
)

func TestParseObjective(t *testing.T) {
	cases := []struct {
		spec string
		obj  Objective
		rate float64
		ok   bool
	}{
		{"", ObjectiveShifts, 0, true},
		{"shifts", ObjectiveShifts, 0, true},
		{"energy", ObjectiveEnergy, 0, true},
		{"runtime", ObjectiveRuntime, 0, true},
		{"faulty:0", ObjectiveFaulty, 0, true},
		{"faulty:0.01", ObjectiveFaulty, 0.01, true},
		{"faulty:0.999", ObjectiveFaulty, 0.999, true},
		{"faulty", "", 0, false},
		{"faulty:", "", 0, false},
		{"faulty:1", "", 0, false},
		{"faulty:-0.1", "", 0, false},
		{"faulty:nope", "", 0, false},
		{"watts", "", 0, false},
		{"SHIFTS", "", 0, false},
	}
	for _, tc := range cases {
		obj, rate, err := ParseObjective(tc.spec)
		if tc.ok != (err == nil) {
			t.Errorf("ParseObjective(%q): err = %v, want ok=%v", tc.spec, err, tc.ok)
			continue
		}
		if tc.ok && (obj != tc.obj || rate != tc.rate) {
			t.Errorf("ParseObjective(%q) = (%q, %v), want (%q, %v)", tc.spec, obj, rate, tc.obj, tc.rate)
		}
	}
}

func TestNewCostModelValidation(t *testing.T) {
	p4, err := energy.ForDBCs(4)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewCostModel(ObjectiveEnergy, p4, 0); err != nil {
		t.Errorf("valid energy model rejected: %v", err)
	}
	if _, err := NewCostModel("faulty:0.1", p4, 0); err == nil {
		t.Error("inline fault rate accepted; it must be passed as the argument")
	}
	if _, err := NewCostModel(ObjectiveFaulty, p4, 1); err == nil {
		t.Error("fault rate 1 accepted")
	}
	if _, err := NewCostModel(ObjectiveFaulty, p4, -0.1); err == nil {
		t.Error("negative fault rate accepted")
	}
	if _, err := NewCostModel("watts", p4, 0); err == nil {
		t.Error("unknown objective accepted")
	}
	neg := p4
	neg.ShiftEnergyPJ = -1
	if _, err := NewCostModel(ObjectiveShifts, neg, 0); err == nil {
		t.Error("negative Table I parameter accepted")
	}
	// Monotonicity: a runtime objective with zero shift latency is flat
	// in shifts — the optimizers' shift proxy would be meaningless.
	if _, err := NewCostModel(ObjectiveRuntime, energy.Params{ReadLatencyNS: 1}, 0); err == nil {
		t.Error("runtime objective with zero shift latency accepted")
	}
	if _, err := NewCostModel(ObjectiveEnergy, energy.Params{ReadEnergyPJ: 1}, 0); err == nil {
		t.Error("energy objective with zero shift coefficient accepted")
	}
	// ...but the shifts objective needs no device constants at all.
	if _, err := NewCostModel(ObjectiveShifts, energy.Params{}, 0); err != nil {
		t.Errorf("zero-params shifts model rejected: %v", err)
	}
}

func TestCostModelSpecRoundTrip(t *testing.T) {
	p4, _ := energy.ForDBCs(4)
	for _, spec := range []string{"shifts", "energy", "runtime", "faulty:0.01", "faulty:0.25"} {
		obj, rate, err := ParseObjective(spec)
		if err != nil {
			t.Fatal(err)
		}
		m, err := NewCostModel(obj, p4, rate)
		if err != nil {
			t.Fatal(err)
		}
		if m.Spec() != spec {
			t.Errorf("spec %q round-tripped to %q", spec, m.Spec())
		}
		obj2, rate2, err := ParseObjective(m.Spec())
		if err != nil || obj2 != obj || rate2 != rate {
			t.Errorf("re-parse of %q gave (%q, %v, %v)", m.Spec(), obj2, rate2, err)
		}
	}
}

func TestDefaultCostModelPricesRawShifts(t *testing.T) {
	m := DefaultCostModel()
	c := m.Price(Tally{Shifts: 1234, Reads: 10, Writes: 5})
	if c.Scalar != 1234 || c.Shifts != 1234 {
		t.Errorf("default model scalar %v / shifts %d, want 1234", c.Scalar, c.Shifts)
	}
	if c.RuntimeNS != 0 || c.DynamicPJ != 0 || c.LeakagePJ != 0 || c.FaultShifts != 0 {
		t.Errorf("default model priced device dimensions: %+v", c)
	}
	if c.Objective != ObjectiveShifts {
		t.Errorf("default objective %q", c.Objective)
	}
}

// TestPriceGoldenTableI pins the §IV-C accounting for a hand-computed
// tally against the 4-DBC Table I row: 2 reads, 1 write, 10 shifts.
//
//	runtime = 2·0.84 + 1·1.14 + 10·0.92 = 12.02 ns
//	dynamic = 2·2.39 + 1·3.65 + 10·2.03 = 28.73 pJ
//	leakage = 4.33 mW · 12.02 ns       = 52.0466 pJ
func TestPriceGoldenTableI(t *testing.T) {
	p4, err := energy.ForDBCs(4)
	if err != nil {
		t.Fatal(err)
	}
	tally := Tally{Shifts: 10, Reads: 2, Writes: 1}
	for _, tc := range []struct {
		obj    Objective
		scalar float64
	}{
		{ObjectiveShifts, 10},
		{ObjectiveRuntime, 12.02},
		{ObjectiveEnergy, 28.73 + 52.0466},
	} {
		m, err := NewCostModel(tc.obj, p4, 0)
		if err != nil {
			t.Fatal(err)
		}
		c := m.Price(tally)
		if math.Abs(c.RuntimeNS-12.02) > 1e-9 {
			t.Errorf("%s: runtime %v, want 12.02", tc.obj, c.RuntimeNS)
		}
		if math.Abs(c.DynamicPJ-28.73) > 1e-9 {
			t.Errorf("%s: dynamic %v, want 28.73", tc.obj, c.DynamicPJ)
		}
		if math.Abs(c.LeakagePJ-52.0466) > 1e-9 {
			t.Errorf("%s: leakage %v, want 52.0466", tc.obj, c.LeakagePJ)
		}
		if math.Abs(c.Scalar-tc.scalar) > 1e-9 {
			t.Errorf("%s: scalar %v, want %v", tc.obj, c.Scalar, tc.scalar)
		}
		if c.FaultShifts != 0 {
			t.Errorf("%s: fault shifts %v at rate 0", tc.obj, c.FaultShifts)
		}
		// Cross-check against the energy package's own accounting.
		counts := energy.Counts{Reads: 2, Writes: 1, Shifts: 10}
		if math.Abs(c.RuntimeNS-p4.LatencyNS(counts)) > 1e-9 {
			t.Errorf("%s: runtime disagrees with energy.LatencyNS", tc.obj)
		}
		eb := p4.Energy(counts)
		if math.Abs(c.TotalEnergyPJ()-eb.TotalPJ()) > 1e-9 {
			t.Errorf("%s: total energy %v disagrees with energy.Energy %v", tc.obj, c.TotalEnergyPJ(), eb.TotalPJ())
		}
	}
}

func TestPriceFaultOverhead(t *testing.T) {
	p4, _ := energy.ForDBCs(4)
	m, err := NewCostModel(ObjectiveFaulty, p4, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	c := m.Price(Tally{Shifts: 100, Reads: 4, Writes: 2})
	// Overhead factor 1/(1-0.5) = 2: 100 expected extra shifts.
	if math.Abs(c.FaultShifts-100) > 1e-9 {
		t.Errorf("fault shifts %v, want 100", c.FaultShifts)
	}
	wantRuntime := 4*0.84 + 2*1.14 + 200*0.92
	if math.Abs(c.RuntimeNS-wantRuntime) > 1e-9 {
		t.Errorf("runtime %v, want %v", c.RuntimeNS, wantRuntime)
	}
	if math.Abs(c.Scalar-wantRuntime) > 1e-9 {
		t.Errorf("scalar %v, want the expected runtime %v", c.Scalar, wantRuntime)
	}
	if c.Shifts != 100 {
		t.Errorf("nominal shifts %d mutated by the overhead", c.Shifts)
	}
}

func TestCostAdd(t *testing.T) {
	a := Cost{Objective: ObjectiveEnergy, Shifts: 1, Reads: 2, Writes: 3, FaultShifts: 0.5, RuntimeNS: 1, DynamicPJ: 2, LeakagePJ: 3, Scalar: 5}
	a.Add(Cost{Shifts: 10, Reads: 20, Writes: 30, FaultShifts: 1.5, RuntimeNS: 10, DynamicPJ: 20, LeakagePJ: 30, Scalar: 50})
	if a.Shifts != 11 || a.Reads != 22 || a.Writes != 33 || a.FaultShifts != 2 ||
		a.RuntimeNS != 11 || a.DynamicPJ != 22 || a.LeakagePJ != 33 || a.Scalar != 55 {
		t.Errorf("Add gave %+v", a)
	}
	if a.TotalEnergyPJ() != 55 {
		t.Errorf("TotalEnergyPJ = %v, want 55", a.TotalEnergyPJ())
	}
	ta := Tally{Shifts: 1, Reads: 2, Writes: 3}
	ta.Add(Tally{Shifts: 9, Reads: 8, Writes: 7})
	if ta != (Tally{Shifts: 10, Reads: 10, Writes: 10}) {
		t.Errorf("Tally.Add gave %+v", ta)
	}
}

func TestTallyOf(t *testing.T) {
	s, err := trace.NewNamedSequence("a", "b!", "a", "c!", "b")
	if err != nil {
		t.Fatal(err)
	}
	tl := TallyOf(s, 42)
	if tl != (Tally{Shifts: 42, Reads: 3, Writes: 2}) {
		t.Errorf("TallyOf = %+v", tl)
	}
}

func TestPerDBCTallies(t *testing.T) {
	s, err := trace.NewNamedSequence("a", "b!", "a", "c!", "b", "c", "a!")
	if err != nil {
		t.Fatal(err)
	}
	p, total, err := Place(StrategyDMAOFU, s, 2, Options{})
	if err != nil {
		t.Fatal(err)
	}
	bd, err := ShiftCostBreakdown(s, p)
	if err != nil {
		t.Fatal(err)
	}
	tallies, err := PerDBCTallies(s, p, bd.PerDBC)
	if err != nil {
		t.Fatal(err)
	}
	if len(tallies) != 2 {
		t.Fatalf("got %d tallies", len(tallies))
	}
	var sum Tally
	for i, tl := range tallies {
		if tl.Shifts != bd.PerDBC[i] {
			t.Errorf("DBC %d: shifts %d != breakdown %d", i, tl.Shifts, bd.PerDBC[i])
		}
		sum.Add(tl)
	}
	if sum.Shifts != total {
		t.Errorf("summed shifts %d != total %d", sum.Shifts, total)
	}
	if sum.Reads != int64(s.Reads()) || sum.Writes != int64(s.Writes()) {
		t.Errorf("summed reads/writes %d/%d != sequence %d/%d", sum.Reads, sum.Writes, s.Reads(), s.Writes())
	}
}

// TestCostModelScalarMonotoneInShifts is the deterministic core of
// FuzzCostModelMonotone: for every constructible objective, pricing a
// larger shift count (same reads/writes) must yield a strictly larger
// scalar, and equal tallies must price to equal scalars.
func TestCostModelScalarMonotoneInShifts(t *testing.T) {
	p4, _ := energy.ForDBCs(4)
	models := []*CostModel{DefaultCostModel()}
	for _, spec := range []string{"shifts", "energy", "runtime", "faulty:0.2"} {
		obj, rate, err := ParseObjective(spec)
		if err != nil {
			t.Fatal(err)
		}
		m, err := NewCostModel(obj, p4, rate)
		if err != nil {
			t.Fatal(err)
		}
		models = append(models, m)
	}
	for _, m := range models {
		prev := math.Inf(-1)
		for _, shifts := range []int64{0, 1, 2, 10, 1000, 1 << 40} {
			c := m.Price(Tally{Shifts: shifts, Reads: 7, Writes: 3})
			if c.Scalar <= prev {
				t.Errorf("%s: scalar %v at %d shifts not above %v", m.Spec(), c.Scalar, shifts, prev)
			}
			again := m.Price(Tally{Shifts: shifts, Reads: 7, Writes: 3})
			if again.Scalar != c.Scalar {
				t.Errorf("%s: pricing is not a pure function", m.Spec())
			}
			prev = c.Scalar
		}
		if !m.Better(3, 4) || m.Better(4, 3) || m.Better(4, 4) {
			t.Errorf("%s: Better is not the strict shift order", m.Spec())
		}
	}
}
