package placement

import (
	"sort"

	"repro/internal/trace"
)

// DeltaEvaluator is an incremental intra-DBC cost evaluator for local
// search over offset orders.
//
// The intra-DBC shift cost of an order is the sum, over consecutive
// accesses (u, v) with u != v in the DBC-restricted subsequence, of
// |pos[u] - pos[v]|. Grouping equal transitions, that is exactly
//
//	cost(pos) = Σ_{u<v} w(u,v) · |pos[u] − pos[v]|
//
// where w(u,v) counts the transitions between u and v (in either
// direction — the cost is symmetric). The evaluator precomputes that
// transition multiset once, in compressed-sparse-row form, so the cost
// change of a local move never replays the access sequence:
//
//   - a swap of the variables at two offsets touches only the transitions
//     adjacent to the two swapped variables: O(freq(u) + freq(v));
//   - a segment reversal touches only the transitions crossing the
//     segment boundary (interior and exterior pairwise distances are
//     preserved), enumerated from whichever side of the boundary is
//     smaller.
//
// The seed implementation recomputed the full restricted cost, O(m) per
// candidate move; see DESIGN.md §7 for the delta derivation and the
// old-vs-new complexity table. All arithmetic is exact int64, so
// incremental costs are bit-identical to a full recompute (pinned by
// TestDeltaEvaluatorParityRandom and FuzzDeltaParity).
//
// After construction every method is allocation-free: position and order
// buffers are reused in place. The evaluator is not safe for concurrent
// use; search loops own one instance each.
type DeltaEvaluator struct {
	order []int // current offset order; order[i] lives at offset i
	pos   []int // pos[v] = offset of v, -1 for non-members; inverse of order

	// Transition multiset in CSR form over the dense variable universe.
	// Row v holds v's transition partners; each undirected transition
	// pair appears in both endpoint rows.
	start []int32
	nbr   []int32
	wgt   []int64

	cost     int64
	accesses int // number of accesses to member variables
}

// NewDeltaEvaluator builds an evaluator for the accesses of s restricted
// to the variables of order (the DBC's content, in offset order). Setup is
// O(numVars + m + t·log t) for m accesses and t distinct transitions;
// every subsequent move evaluation is independent of m. When a CostKernel
// for the sequence is already at hand, NewDeltaEvaluatorFromKernel builds
// the identical evaluator without touching the access stream.
func NewDeltaEvaluator(s *trace.Sequence, order []int) *DeltaEvaluator {
	e := newDeltaShell(s.NumVars(), order)

	// Collect the transition multiset of the restricted subsequence:
	// consecutive accesses to distinct member variables, non-members
	// transparent (they live in other DBCs and cost nothing here).
	numVars := s.NumVars()
	var pairs []wpair
	prev := -1
	for _, a := range s.Accesses {
		v := a.Var
		if v < 0 || v >= numVars || e.pos[v] < 0 {
			continue
		}
		e.accesses++
		if prev >= 0 && prev != v {
			u, w := int32(prev), int32(v)
			if u > w {
				u, w = w, u
			}
			pairs = append(pairs, wpair{u: u, v: w, w: 1})
		}
		prev = v
	}
	e.initCSR(pairs)
	return e
}

// wpair is an undirected transition pair (u <= v) with a multiplicity.
type wpair struct {
	u, v int32
	w    int64
}

// newDeltaShell allocates the order/pos tables shared by the two
// evaluator constructors. The order may name variables beyond the
// accessed universe (members that are never touched); the dense tables
// cover both. Order entries must be non-negative and distinct, as in
// any placement.
func newDeltaShell(numVars int, order []int) *DeltaEvaluator {
	width := numVars
	for _, v := range order {
		if v+1 > width {
			width = v + 1
		}
	}
	e := &DeltaEvaluator{
		order: append([]int(nil), order...),
		pos:   make([]int, width),
	}
	for v := range e.pos {
		e.pos[v] = -1
	}
	for i, v := range e.order {
		e.pos[v] = i
	}
	return e
}

// initCSR aggregates weighted transition pairs into the CSR rows (each
// undirected transition contributes one entry per endpoint row) and
// computes the initial cost. Pairs may repeat; multiplicities sum.
func (e *DeltaEvaluator) initCSR(pairs []wpair) {
	width := len(e.pos)
	sort.Slice(pairs, func(i, j int) bool {
		if pairs[i].u != pairs[j].u {
			return pairs[i].u < pairs[j].u
		}
		return pairs[i].v < pairs[j].v
	})

	// Merge duplicate pairs in place, summing multiplicities, and size
	// the CSR rows.
	e.start = make([]int32, width+1)
	uniq := 0
	for i := 0; i < len(pairs); {
		p := pairs[i]
		var w int64
		j := i
		for j < len(pairs) && pairs[j].u == p.u && pairs[j].v == p.v {
			w += pairs[j].w
			j++
		}
		pairs[uniq] = wpair{u: p.u, v: p.v, w: w}
		e.start[p.u+1]++
		e.start[p.v+1]++
		uniq++
		i = j
	}
	pairs = pairs[:uniq]
	for v := 1; v <= width; v++ {
		e.start[v] += e.start[v-1]
	}
	e.nbr = make([]int32, e.start[width])
	e.wgt = make([]int64, e.start[width])
	fill := make([]int32, width)
	for _, p := range pairs {
		ku := e.start[p.u] + fill[p.u]
		e.nbr[ku], e.wgt[ku] = p.v, p.w
		fill[p.u]++
		kv := e.start[p.v] + fill[p.v]
		e.nbr[kv], e.wgt[kv] = p.u, p.w
		fill[p.v]++
	}

	e.cost = e.recompute()
}

// recompute sums the full objective from the CSR rows (each undirected
// transition visited twice, hence the halving). Used once at setup and by
// the parity tests; moves never call it.
func (e *DeltaEvaluator) recompute() int64 {
	var twice int64
	for _, v := range e.order {
		pv := e.pos[v]
		for k := e.start[v]; k < e.start[v+1]; k++ {
			twice += e.wgt[k] * absDist(pv, e.pos[e.nbr[k]])
		}
	}
	return twice / 2
}

// Cost returns the current intra-DBC shift cost of the order.
func (e *DeltaEvaluator) Cost() int64 { return e.cost }

// Accesses returns the number of accesses to member variables — the
// length of the restricted subsequence the cost is defined over.
func (e *DeltaEvaluator) Accesses() int { return e.accesses }

// Len returns the number of variables in the order.
func (e *DeltaEvaluator) Len() int { return len(e.order) }

// CurrentOrder returns a copy of the current offset order.
func (e *DeltaEvaluator) CurrentOrder() []int {
	return append([]int(nil), e.order...)
}

// SwapDelta returns the cost change of exchanging the variables at
// offsets i and j, without applying it. O(freq(u) + freq(v)).
//
//rtm:hotpath
func (e *DeltaEvaluator) SwapDelta(i, j int) int64 {
	if i == j {
		return 0
	}
	u, v := e.order[i], e.order[j]
	var d int64
	for k := e.start[u]; k < e.start[u+1]; k++ {
		n := e.nbr[k]
		if int(n) == v {
			continue // the (u,v) distance is invariant under the swap
		}
		pn := e.pos[n]
		d += e.wgt[k] * (absDist(j, pn) - absDist(i, pn))
	}
	for k := e.start[v]; k < e.start[v+1]; k++ {
		n := e.nbr[k]
		if int(n) == u {
			continue
		}
		pn := e.pos[n]
		d += e.wgt[k] * (absDist(i, pn) - absDist(j, pn))
	}
	return d
}

// Swap applies the swap of offsets i and j, updating the cost
// incrementally.
//
//rtm:hotpath
func (e *DeltaEvaluator) Swap(i, j int) {
	e.cost += e.SwapDelta(i, j)
	u, v := e.order[i], e.order[j]
	e.order[i], e.order[j] = v, u
	e.pos[u], e.pos[v] = j, i
}

// ReverseDelta returns the cost change of reversing the offset segment
// [i, j], without applying it. Distances between two interior or two
// exterior variables are preserved, so only transitions crossing the
// segment boundary contribute; they are enumerated from the smaller side.
//
//rtm:hotpath
func (e *DeltaEvaluator) ReverseDelta(i, j int) int64 {
	if i >= j {
		return 0
	}
	m := i + j // reversal maps interior offset p to m - p
	var d int64
	if j-i+1 <= len(e.order)-(j-i+1) {
		for p := i; p <= j; p++ {
			v := e.order[p]
			for k := e.start[v]; k < e.start[v+1]; k++ {
				pn := e.pos[e.nbr[k]]
				if pn >= i && pn <= j {
					continue // interior transition: distance preserved
				}
				d += e.wgt[k] * (absDist(m-p, pn) - absDist(p, pn))
			}
		}
		return d
	}
	//rtmlint:hotalloc-ok closure never escapes ReverseDelta, so it stays on the stack; BenchmarkTwoOptDelta pins 0 allocs/op
	cross := func(p int) {
		v := e.order[p]
		for k := e.start[v]; k < e.start[v+1]; k++ {
			pn := e.pos[e.nbr[k]]
			if pn < i || pn > j {
				continue // exterior transition: distance preserved
			}
			d += e.wgt[k] * (absDist(p, m-pn) - absDist(p, pn))
		}
	}
	for p := 0; p < i; p++ {
		cross(p)
	}
	for p := j + 1; p < len(e.order); p++ {
		cross(p)
	}
	return d
}

// Reverse applies the reversal of segment [i, j], updating the cost
// incrementally.
//
//rtm:hotpath
func (e *DeltaEvaluator) Reverse(i, j int) {
	e.cost += e.ReverseDelta(i, j)
	for l, r := i, j; l < r; l, r = l+1, r-1 {
		e.order[l], e.order[r] = e.order[r], e.order[l]
	}
	for p := i; p <= j; p++ {
		e.pos[e.order[p]] = p
	}
}

// ImprovePass runs one first-improvement sweep over all offset pairs
// (i, j), i < j, trying a swap first and, only if the swap does not
// improve, the 2-opt segment reversal — the exact move order and
// acceptance rule of the seed TwoOpt implementation, so search
// trajectories match it move-for-move (TestTwoOptMatchesReference).
// It reports whether any move was accepted.
//
//rtm:hotpath
func (e *DeltaEvaluator) ImprovePass() bool {
	improved := false
	n := len(e.order)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if e.SwapDelta(i, j) < 0 {
				e.Swap(i, j)
				improved = true
				continue
			}
			if e.ReverseDelta(i, j) < 0 {
				e.Reverse(i, j)
				improved = true
			}
		}
	}
	return improved
}

func absDist(a, b int) int64 {
	if a > b {
		return int64(a - b)
	}
	return int64(b - a)
}
