package placement

import (
	"math/rand"
	"testing"

	"repro/internal/offsetstone"
	"repro/internal/trace"
)

// randKernelSeq builds a random sequence mixing uniform accesses with
// repeated loop bodies, the two regimes that exercise the stencil table
// (fresh stencils vs multiplicity merging).
func randKernelSeq(rng *rand.Rand, numVars, length int) *trace.Sequence {
	s := &trace.Sequence{Names: make([]string, numVars)}
	for v := range s.Names {
		s.Names[v] = "v" + string(rune('a'+v%26)) + string(rune('a'+v/26))
	}
	for s.Len() < length {
		if rng.Intn(3) == 0 && s.Len() > 4 {
			// Replay a window: loops produce identical stencils.
			w := 2 + rng.Intn(6)
			if w > s.Len() {
				w = s.Len()
			}
			start := rng.Intn(s.Len() - w + 1)
			reps := 1 + rng.Intn(4)
			window := append([]trace.Access(nil), s.Accesses[start:start+w]...)
			for r := 0; r < reps && s.Len() < length; r++ {
				for _, a := range window {
					s.Append(a.Var, a.Write)
				}
			}
			continue
		}
		s.Append(rng.Intn(numVars), rng.Intn(5) == 0)
	}
	return s
}

// randFullPlacement places every universe variable into q DBCs with a
// random intra order.
func randFullPlacement(rng *rand.Rand, numVars, q int) *Placement {
	p := NewEmpty(q)
	for v := 0; v < numVars; v++ {
		d := rng.Intn(q)
		p.DBC[d] = append(p.DBC[d], v)
	}
	for _, d := range p.DBC {
		rng.Shuffle(len(d), func(i, j int) { d[i], d[j] = d[j], d[i] })
	}
	return p
}

// TestKernelMatchesReplayRandom pins the tentpole invariant: the O(nnz)
// kernel evaluation is bit-identical to the O(accesses) replay oracle
// for random sequences, random DBC counts and random placements.
func TestKernelMatchesReplayRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 60; trial++ {
		numVars := 1 + rng.Intn(24)
		s := randKernelSeq(rng, numVars, 1+rng.Intn(400))
		k := NewCostKernel(s)
		if k.Accesses() != s.Len() {
			t.Fatalf("trial %d: kernel summarizes %d accesses, sequence has %d", trial, k.Accesses(), s.Len())
		}
		for rep := 0; rep < 8; rep++ {
			q := 1 + rng.Intn(6)
			p := randFullPlacement(rng, numVars, q)
			want, err := ShiftCost(s, p)
			if err != nil {
				t.Fatal(err)
			}
			got, err := k.Evaluate(p)
			if err != nil {
				t.Fatal(err)
			}
			if got != want {
				t.Fatalf("trial %d rep %d (q=%d): kernel %d, replay %d\nseq: %v\nplacement: %v",
					trial, rep, q, got, want, s, p)
			}
		}
	}
}

// TestKernelMatchesReplayOnSuite checks the parity on real strategy
// output: for a slice of the OffsetStone suite, every heuristic
// strategy's replay-priced placement re-prices identically on a kernel.
func TestKernelMatchesReplayOnSuite(t *testing.T) {
	names := offsetstone.Names()
	if testing.Short() && len(names) > 6 {
		names = names[:6]
	}
	for _, name := range names {
		b, err := offsetstone.Generate(name)
		if err != nil {
			t.Fatal(err)
		}
		for si, s := range b.Sequences {
			if si >= 2 {
				break
			}
			k := NewCostKernel(s)
			for _, q := range []int{2, 4, 8} {
				for _, id := range HeuristicStrategies() {
					p, c, err := Place(id, s, q, Options{})
					if err != nil {
						t.Fatal(err)
					}
					kc, err := k.Evaluate(p)
					if err != nil {
						t.Fatal(err)
					}
					if kc != c {
						t.Fatalf("%s seq %d %s q=%d: kernel %d, strategy reported %d", name, si, id, q, kc, c)
					}
				}
			}
		}
	}
}

// TestDeltaFromKernelParity pins that the kernel-derived DeltaEvaluator
// is indistinguishable from the replay-built one: same initial cost and
// access count, same move deltas, and the same search trajectory.
func TestDeltaFromKernelParity(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 40; trial++ {
		numVars := 3 + rng.Intn(20)
		s := randKernelSeq(rng, numVars, 20+rng.Intn(300))
		k := NewCostKernel(s)

		// Random member subset with a random order.
		var order []int
		for v := 0; v < numVars; v++ {
			if rng.Intn(2) == 0 {
				order = append(order, v)
			}
		}
		rng.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
		if len(order) < 2 {
			continue
		}

		ref := NewDeltaEvaluator(s, order)
		der := NewDeltaEvaluatorFromKernel(k, order)
		if ref.Cost() != der.Cost() || ref.Accesses() != der.Accesses() {
			t.Fatalf("trial %d: replay-built (cost %d, %d accesses) vs kernel-derived (cost %d, %d accesses)",
				trial, ref.Cost(), ref.Accesses(), der.Cost(), der.Accesses())
		}
		for m := 0; m < 30; m++ {
			i, j := rng.Intn(len(order)), rng.Intn(len(order))
			if i > j {
				i, j = j, i
			}
			if sr, sd := ref.SwapDelta(i, j), der.SwapDelta(i, j); sr != sd {
				t.Fatalf("trial %d move %d: SwapDelta(%d,%d) %d vs %d", trial, m, i, j, sr, sd)
			}
			if rr, rd := ref.ReverseDelta(i, j), der.ReverseDelta(i, j); rr != rd {
				t.Fatalf("trial %d move %d: ReverseDelta(%d,%d) %d vs %d", trial, m, i, j, rr, rd)
			}
			if m%2 == 0 {
				ref.Swap(i, j)
				der.Swap(i, j)
			} else {
				ref.Reverse(i, j)
				der.Reverse(i, j)
			}
			if ref.Cost() != der.Cost() {
				t.Fatalf("trial %d move %d: costs diverged %d vs %d", trial, m, ref.Cost(), der.Cost())
			}
		}
		ref.ImprovePass()
		der.ImprovePass()
		ro, do := ref.CurrentOrder(), der.CurrentOrder()
		for i := range ro {
			if ro[i] != do[i] {
				t.Fatalf("trial %d: ImprovePass trajectories diverged at offset %d: %v vs %v", trial, i, ro, do)
			}
		}
	}
}

// TestGAKernelSharingDeterminism pins that supplying a pre-built kernel
// (as the engine batch layer does) changes nothing about the GA result.
func TestGAKernelSharingDeterminism(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	s := randKernelSeq(rng, 14, 300)
	cfg := GAConfig{Mu: 16, Lambda: 16, Generations: 12, TournamentK: 4,
		MutationRate: 0.5, MoveWeight: 10, TransposeWeight: 10, PermuteWeight: 3,
		ImproveWeight: 3, Seed: 5}

	base, err := GA(s, 4, cfg)
	if err != nil {
		t.Fatal(err)
	}
	shared := cfg
	shared.Kernel = NewCostKernel(s)
	got, err := GA(s, 4, shared)
	if err != nil {
		t.Fatal(err)
	}
	if base.Cost != got.Cost || !base.Best.Equal(got.Best) {
		t.Fatalf("shared kernel changed the GA result: %d vs %d", base.Cost, got.Cost)
	}
	// A kernel for the wrong sequence must be ignored, not mis-applied.
	wrong := cfg
	wrong.Kernel = NewCostKernel(randKernelSeq(rng, 14, 100))
	got2, err := GA(s, 4, wrong)
	if err != nil {
		t.Fatal(err)
	}
	if base.Cost != got2.Cost || !base.Best.Equal(got2.Best) {
		t.Fatalf("foreign kernel changed the GA result: %d vs %d", base.Cost, got2.Cost)
	}
}

// TestKernelCostZeroAlloc pins the steady-state fitness loop —
// fillLookup plus kernel Cost, exactly what the GA runs per individual —
// at zero allocations per evaluation.
func TestKernelCostZeroAlloc(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	s := randKernelSeq(rng, 20, 500)
	k := NewCostKernel(s)
	p := randFullPlacement(rng, 20, 4)
	lookup := &Lookup{DBCOf: make([]int, s.NumVars()), Offset: make([]int, s.NumVars())}
	var sink int64
	allocs := testing.AllocsPerRun(200, func() {
		fillLookup(lookup, p)
		sink += k.Cost(lookup)
	})
	if allocs != 0 {
		t.Fatalf("steady-state fitness evaluation allocates %.1f/op, want 0", allocs)
	}
	if sink == 0 {
		t.Fatal("degenerate workload: cost was always zero")
	}
}

// TestKernelEdgeCases covers the degenerate shapes: empty sequences,
// single accesses, self-transitions, and universes larger than the
// accessed set.
func TestKernelEdgeCases(t *testing.T) {
	empty := &trace.Sequence{Names: []string{"a", "b"}}
	k := NewCostKernel(empty)
	if c, err := k.Evaluate(&Placement{DBC: [][]int{{0, 1}}}); err != nil || c != 0 {
		t.Fatalf("empty sequence: cost %d err %v, want 0 nil", c, err)
	}

	s, err := trace.NewNamedSequence("a", "a", "a")
	if err != nil {
		t.Fatal(err)
	}
	k = NewCostKernel(s)
	if c, _ := k.Evaluate(&Placement{DBC: [][]int{{0}}}); c != 0 {
		t.Fatalf("self-transitions must be free, got %d", c)
	}

	// Universe has an unaccessed variable c; pinning it anywhere between
	// a and b must not change the kernel cost vs replay.
	s, err = trace.NewNamedSequenceWithUniverse([]string{"a", "b", "c"}, "a", "b", "a", "b")
	if err != nil {
		t.Fatal(err)
	}
	k = NewCostKernel(s)
	p := &Placement{DBC: [][]int{{0, 2, 1}}}
	want, err := ShiftCost(s, p)
	if err != nil {
		t.Fatal(err)
	}
	got, err := k.Evaluate(p)
	if err != nil {
		t.Fatal(err)
	}
	if got != want || got != 6 {
		t.Fatalf("unaccessed spacer: kernel %d, replay %d, want 6", got, want)
	}
	if k.NNZ() == 0 || k.Candidates() == 0 {
		t.Fatal("kernel table unexpectedly empty")
	}
}

// TestCostBoundedAndDBCDecomposition pins the two evaluation variants
// against Cost: an unbounded CostBounded is exactly Cost, a bounded one
// is exact below the bound and a valid certificate at or above it, and
// the per-DBC partial costs sum to the full cost for any placement.
func TestCostBoundedAndDBCDecomposition(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 40; trial++ {
		numVars := 2 + rng.Intn(20)
		s := randKernelSeq(rng, numVars, 30+rng.Intn(300))
		k := NewCostKernel(s)
		q := 1 + rng.Intn(5)
		p := randFullPlacement(rng, numVars, q)
		l, err := p.BuildLookup(numVars)
		if err != nil {
			t.Fatal(err)
		}
		want := k.Cost(l)
		if got := k.CostBounded(l, int64(1)<<62); got != want {
			t.Fatalf("trial %d: unbounded CostBounded %d, Cost %d", trial, got, want)
		}
		for _, bound := range []int64{0, 1, want / 2, want, want + 1} {
			got := k.CostBounded(l, bound)
			if got < bound && got != want {
				t.Fatalf("trial %d bound %d: returned %d below bound but true cost is %d", trial, bound, got, want)
			}
			if want < bound && got != want {
				t.Fatalf("trial %d bound %d: cost %d is below bound but got %d", trial, bound, want, got)
			}
		}
		var sum int64
		for _, content := range p.DBC {
			if len(content) > 0 {
				sum += k.CostDBC(l, content)
			}
		}
		if sum != want {
			t.Fatalf("trial %d: per-DBC sum %d, Cost %d", trial, sum, want)
		}
	}
}

// TestDBCCostCacheParity pins the GA's cached evaluator against Cost
// across repeated, related placements (hits, minority misses and bulk
// misses all exercised).
func TestDBCCostCacheParity(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 10; trial++ {
		numVars := 4 + rng.Intn(16)
		s := randKernelSeq(rng, numVars, 50+rng.Intn(200))
		k := NewCostKernel(s)
		cache := newDBCCostCache(k)
		lookup := &Lookup{DBCOf: make([]int, numVars), Offset: make([]int, numVars)}
		q := 2 + rng.Intn(4)
		p := randFullPlacement(rng, numVars, q)
		for step := 0; step < 60; step++ {
			switch rng.Intn(3) {
			case 0: // fresh placement: bulk miss
				p = randFullPlacement(rng, numVars, q)
			case 1: // transpose inside one DBC: minority miss
				mutateTranspose(rng, p)
			default: // unchanged: pure hits
			}
			fillLookup(lookup, p)
			got := cache.eval(lookup, p)
			want := k.Cost(lookup)
			if got != want {
				t.Fatalf("trial %d step %d: cached %d, Cost %d", trial, step, got, want)
			}
		}
	}
}

// TestKernelMultiplicityMerging checks that loop iterations collapse
// into stencil multiplicities instead of fresh table rows.
func TestKernelMultiplicityMerging(t *testing.T) {
	s := &trace.Sequence{Names: []string{"a", "b", "c"}}
	for i := 0; i < 100; i++ {
		s.Append(0, false)
		s.Append(1, false)
		s.Append(2, false)
	}
	k := NewCostKernel(s)
	// Steady state has three distinct stencils (one per variable) plus
	// the three cold-start variants of the first iteration.
	if k.NNZ() > 6 {
		t.Fatalf("loop of 300 accesses produced %d stencils, want <= 6", k.NNZ())
	}
	p := &Placement{DBC: [][]int{{0, 1, 2}}}
	want, err := ShiftCost(s, p)
	if err != nil {
		t.Fatal(err)
	}
	if got, _ := k.Evaluate(p); got != want {
		t.Fatalf("merged kernel cost %d, replay %d", got, want)
	}
}
