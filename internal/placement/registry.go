package placement

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/trace"
)

// A Strategy is a pluggable placement algorithm. The six paper strategies
// are registered at package init; additional strategies can be plugged in
// with Register (or racetrack.RegisterStrategy from the public API)
// without touching the dispatch code — every driver that resolves
// strategies by name (Place, the eval harness, the CLI tools) picks them
// up automatically.
type Strategy interface {
	// Name returns the identifier the strategy is dispatched under.
	Name() string
	// Place computes a placement of the sequence's variables into q DBCs
	// and returns it together with its shift cost under the paper's cost
	// model.
	Place(s *trace.Sequence, q int, opts Options) (*Placement, int64, error)
}

// strategyFunc adapts a plain function to the Strategy interface.
type strategyFunc struct {
	name string
	fn   func(s *trace.Sequence, q int, opts Options) (*Placement, int64, error)
}

func (s strategyFunc) Name() string { return s.name }
func (s strategyFunc) Place(seq *trace.Sequence, q int, opts Options) (*Placement, int64, error) {
	return s.fn(seq, q, opts)
}

// NewStrategy wraps fn as a named Strategy. A nil fn yields a nil
// Strategy, which Register rejects.
func NewStrategy(name string, fn func(s *trace.Sequence, q int, opts Options) (*Placement, int64, error)) Strategy {
	if fn == nil {
		return nil
	}
	return strategyFunc{name: name, fn: fn}
}

// A Registry is an instance-scoped strategy table. Every Registry starts
// seeded with the built-in strategies (the six paper strategies plus the
// DMA-2opt and GA-2opt extensions) and grows by Register; two registries
// can hold different strategies under the same name without interfering,
// which is what lets multiple embedding sessions (racetrack.Lab) coexist
// in one process. Reads (Lookup, per-job dispatch in the experiment
// engine) vastly outnumber writes (registration, typically at session
// construction), hence the RWMutex.
type Registry struct {
	mu    sync.RWMutex
	byID  map[StrategyID]Strategy
	order []StrategyID // registration order, builtins first
}

// NewRegistry returns a fresh registry seeded with the built-in
// strategies. Seeding is a construction step that can fail — a
// mis-declared builtin list (duplicate or empty names) surfaces as an
// error for the embedder to report, never as a panic.
func NewRegistry() (*Registry, error) {
	r := &Registry{byID: map[StrategyID]Strategy{}}
	if err := seedRegistry(r, builtinStrategies()); err != nil {
		return nil, err
	}
	return r, nil
}

// seedRegistry registers the given strategies into r, wrapping the first
// failure as a seeding error.
func seedRegistry(r *Registry, sts []Strategy) error {
	for _, st := range sts {
		if err := r.Register(st); err != nil {
			return fmt.Errorf("placement: seeding builtin strategies: %w", err)
		}
	}
	return nil
}

// Register adds a strategy to the registry. It fails on an empty name and
// on duplicate registration; names cannot be replaced within one registry
// (re-registering would silently change every driver that resolves the
// name there). Use a second Registry to shadow a name.
func (r *Registry) Register(st Strategy) error {
	if st == nil {
		return fmt.Errorf("placement: Register called with nil strategy")
	}
	id := StrategyID(st.Name())
	if id == "" {
		return fmt.Errorf("placement: Register called with empty strategy name")
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.byID[id]; dup {
		return fmt.Errorf("placement: strategy %q already registered", id)
	}
	r.byID[id] = st
	r.order = append(r.order, id)
	return nil
}

// Lookup resolves a strategy by name.
func (r *Registry) Lookup(id StrategyID) (Strategy, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	st, ok := r.byID[id]
	return st, ok
}

// Place runs the named strategy of this registry on the sequence with q
// DBCs and returns the resulting placement and its shift cost.
func (r *Registry) Place(id StrategyID, s *trace.Sequence, q int, opts Options) (*Placement, int64, error) {
	st, ok := r.Lookup(id)
	if !ok {
		return nil, 0, fmt.Errorf("placement: unknown strategy %q", id)
	}
	return st.Place(s, q, opts)
}

// Registered lists every strategy name of this registry: the six paper
// strategies first (in the paper's presentation order), then plugged-in
// strategies sorted by name (registration order of plugins is otherwise
// load-order dependent and would make experiment output unstable).
func (r *Registry) Registered() []StrategyID {
	r.mu.RLock()
	defer r.mu.RUnlock()
	builtin := AllStrategies()
	isBuiltin := map[StrategyID]bool{}
	for _, id := range builtin {
		isBuiltin[id] = true
	}
	var plugins []StrategyID
	for _, id := range r.order {
		if !isBuiltin[id] {
			plugins = append(plugins, id)
		}
	}
	sort.Slice(plugins, func(i, j int) bool { return plugins[i] < plugins[j] })
	return append(builtin, plugins...)
}

// defaultRegistry lazily builds the process-wide registry behind the
// package-level functions — the table the legacy flat API and the
// internal drivers resolve against when no instance registry is
// supplied. Construction is deferred (and its error retained) so a
// seeding failure reaches callers as an error instead of an init-time
// panic.
var defaultRegistry = sync.OnceValues(NewRegistry)

// DefaultRegistry exposes the process-wide registry (the one the
// package-level Register/LookupStrategy/Registered operate on), so the
// public API's default session can share it. The error reports a failed
// builtin seed and is stable across calls.
func DefaultRegistry() (*Registry, error) { return defaultRegistry() }

// Register adds a strategy to the process-wide registry.
func Register(st Strategy) error {
	reg, err := DefaultRegistry()
	if err != nil {
		return err
	}
	return reg.Register(st)
}

// LookupStrategy resolves a strategy by name in the process-wide
// registry; an unseedable registry resolves nothing.
func LookupStrategy(id StrategyID) (Strategy, bool) {
	reg, err := DefaultRegistry()
	if err != nil {
		return nil, false
	}
	return reg.Lookup(id)
}

// Registered lists every strategy name of the process-wide registry
// (nil if the registry failed to seed).
func Registered() []StrategyID {
	reg, err := DefaultRegistry()
	if err != nil {
		return nil
	}
	return reg.Registered()
}

// The six paper strategies, behind the Strategy interface.

// afdOFU is the state-of-the-art baseline: AFD inter-DBC distribution with
// order-of-first-use intra-DBC placement.
type afdOFU struct{}

func (afdOFU) Name() string { return string(StrategyAFDOFU) }

// construct computes the placement without pricing it — the portfolio
// race prices it with bounded evaluation instead (portfolio.go).
func (afdOFU) construct(s *trace.Sequence, q int, opts Options) (*Placement, error) {
	a := trace.Analyze(s)
	p, err := AFD(a, q)
	if err != nil {
		return nil, err
	}
	return ApplyIntra(p, 0, q, OFU, s, a), nil
}

func (h afdOFU) Place(s *trace.Sequence, q int, opts Options) (*Placement, int64, error) {
	p, err := h.construct(s, q, opts)
	if err != nil {
		return nil, 0, err
	}
	c, err := costOf(s, p, q, opts)
	return p, c, err
}

// dma is the paper's heuristic (Algorithm 1) paired with an intra-DBC
// heuristic on the non-disjoint DBCs.
type dma struct {
	id    StrategyID
	intra IntraHeuristic
}

func (d dma) Name() string { return string(d.id) }

// construct computes the placement without pricing it — the portfolio
// race prices it with bounded evaluation instead (portfolio.go).
func (d dma) construct(s *trace.Sequence, q int, opts Options) (*Placement, error) {
	a := trace.Analyze(s)
	r, err := DMA(a, q, opts.Capacity)
	if err != nil {
		return nil, err
	}
	// Algorithm 1 lines 22-23: intra-DBC optimization only on the
	// non-disjoint DBCs; the disjoint DBCs keep access order.
	return ApplyIntra(r.Placement, r.DisjointDBCs, q, d.intra, s, a), nil
}

func (d dma) Place(s *trace.Sequence, q int, opts Options) (*Placement, int64, error) {
	p, err := d.construct(s, q, opts)
	if err != nil {
		return nil, 0, err
	}
	c, err := costOf(s, p, q, opts)
	return p, c, err
}

// ga is the paper's µ+λ genetic algorithm; with memetic == true it is the
// "GA-2opt" variant with the delta-evaluated local-improvement mutation
// enabled (GAConfig.ImproveWeight).
type ga struct {
	id      StrategyID
	memetic bool
}

func (g ga) Name() string { return string(g.id) }

func (g ga) Place(s *trace.Sequence, q int, opts Options) (*Placement, int64, error) {
	cfg := opts.GA
	if cfg.Mu == 0 {
		island := cfg
		cfg = DefaultGAConfig()
		// The island topology (and its progress hook) rides along even
		// when the search budget itself is defaulted — WithIslands on a
		// session with an otherwise zero GA config must still fan out.
		cfg.Islands = island.Islands
		cfg.MigrationEvery = island.MigrationEvery
		cfg.Elites = island.Elites
		cfg.IslandProgress = island.IslandProgress
		cfg.Workers = island.Workers
	}
	cfg.Capacity = opts.Capacity
	if cfg.Kernel == nil {
		cfg.Kernel = opts.Kernel // GA validates the sequence match itself
	}
	if cfg.Port == nil {
		pm, err := opts.PortModelFor(q)
		if err != nil {
			return nil, 0, err
		}
		cfg.Port = pm // fitness and the memetic polish follow the true objective
	}
	if cfg.Cost == nil {
		cfg.Cost = opts.Cost // comparison stays raw shift order; see GAConfig.Cost
	}
	if g.memetic && cfg.ImproveWeight == 0 {
		// Same order of magnitude as the paper's permute skew: rare
		// enough to keep breeding cheap, frequent enough to polish.
		cfg.ImproveWeight = 3
	}
	if len(cfg.Seeds) == 0 && !opts.DisableGASeeding {
		seeds, err := heuristicSeeds(s, q, opts)
		if err != nil {
			return nil, 0, err
		}
		cfg.Seeds = seeds
	}
	res, err := GAContext(opts.ctx(), s, q, cfg)
	if err != nil {
		// A cancelled search still carries its best-so-far placement;
		// surface it alongside the context error so deadline-bounded
		// callers can keep the partial result.
		if res != nil && res.Best != nil {
			return res.Best, res.Cost, err
		}
		return nil, 0, err
	}
	return res.Best, res.Cost, nil
}

// StrategyGAMemetic is the memetic GA extension strategy ("GA-2opt"). Like
// DMA-2opt it is not one of the paper's six evaluated strategies; it is
// seeded into every registry alongside them so every by-name driver can
// reach it.
const StrategyGAMemetic StrategyID = "GA-2opt"

// StrategyDMATwoOpt is the two-opt-refined DMA extension strategy
// ("DMA-2opt"): DMA inter-DBC placement, ShiftsReduce + delta-evaluated
// 2-opt local search on the non-disjoint DBCs. Never worse than DMA-SR.
const StrategyDMATwoOpt StrategyID = "DMA-2opt"

// rw is the random-walk search baseline.
type rw struct{}

func (rw) Name() string { return string(StrategyRW) }

func (rw) Place(s *trace.Sequence, q int, opts Options) (*Placement, int64, error) {
	cfg := opts.RW
	if cfg.Iterations == 0 {
		cfg = DefaultRWConfig()
	}
	cfg.Capacity = opts.Capacity
	if cfg.Kernel == nil {
		cfg.Kernel = opts.Kernel
	}
	if cfg.Port == nil {
		pm, err := opts.PortModelFor(q)
		if err != nil {
			return nil, 0, err
		}
		cfg.Port = pm
	}
	if cfg.Cost == nil {
		cfg.Cost = opts.Cost
	}
	return RandomWalk(s, q, cfg)
}

// builtinStrategies lists the strategies every fresh registry is seeded
// with: the six paper strategies in presentation order, then the two
// extension strategies. Registering them per instance (instead of a
// process-global init) is what makes instance registries self-contained
// — and removes the init-time panic the extension registration used to
// ride on.
func builtinStrategies() []Strategy {
	return []Strategy{
		afdOFU{},
		dma{id: StrategyDMAOFU, intra: OFU},
		dma{id: StrategyDMAChen, intra: Chen},
		dma{id: StrategyDMASR, intra: ShiftsReduce},
		ga{id: StrategyGA},
		rw{},
		ga{id: StrategyGAMemetic, memetic: true},
		NewStrategy(string(StrategyDMATwoOpt), PlaceDMATwoOpt),
	}
}
