package placement

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/trace"
)

// A Strategy is a pluggable placement algorithm. The six paper strategies
// are registered at package init; additional strategies can be plugged in
// with Register (or racetrack.RegisterStrategy from the public API)
// without touching the dispatch code — every driver that resolves
// strategies by name (Place, the eval harness, the CLI tools) picks them
// up automatically.
type Strategy interface {
	// Name returns the identifier the strategy is dispatched under.
	Name() string
	// Place computes a placement of the sequence's variables into q DBCs
	// and returns it together with its shift cost under the paper's cost
	// model.
	Place(s *trace.Sequence, q int, opts Options) (*Placement, int64, error)
}

// strategyFunc adapts a plain function to the Strategy interface.
type strategyFunc struct {
	name string
	fn   func(s *trace.Sequence, q int, opts Options) (*Placement, int64, error)
}

func (s strategyFunc) Name() string { return s.name }
func (s strategyFunc) Place(seq *trace.Sequence, q int, opts Options) (*Placement, int64, error) {
	return s.fn(seq, q, opts)
}

// NewStrategy wraps fn as a named Strategy. A nil fn yields a nil
// Strategy, which Register rejects.
func NewStrategy(name string, fn func(s *trace.Sequence, q int, opts Options) (*Placement, int64, error)) Strategy {
	if fn == nil {
		return nil
	}
	return strategyFunc{name: name, fn: fn}
}

// registry is the process-wide strategy table. Reads (Lookup, per-job
// dispatch in the experiment engine) vastly outnumber writes
// (registration, typically at init), hence the RWMutex.
var registry = struct {
	sync.RWMutex
	byID  map[StrategyID]Strategy
	order []StrategyID // registration order, builtins first
}{byID: map[StrategyID]Strategy{}}

// Register adds a strategy to the registry. It fails on an empty name and
// on duplicate registration; strategies are process-wide and cannot be
// replaced (re-registering would silently change every driver that
// resolves the name).
func Register(st Strategy) error {
	if st == nil {
		return fmt.Errorf("placement: Register called with nil strategy")
	}
	id := StrategyID(st.Name())
	if id == "" {
		return fmt.Errorf("placement: Register called with empty strategy name")
	}
	registry.Lock()
	defer registry.Unlock()
	if _, dup := registry.byID[id]; dup {
		return fmt.Errorf("placement: strategy %q already registered", id)
	}
	registry.byID[id] = st
	registry.order = append(registry.order, id)
	return nil
}

// MustRegister is Register, panicking on error. Intended for package init
// blocks, where a clash is a programming error.
func MustRegister(st Strategy) {
	if err := Register(st); err != nil {
		panic(err)
	}
}

// LookupStrategy resolves a strategy by name.
func LookupStrategy(id StrategyID) (Strategy, bool) {
	registry.RLock()
	defer registry.RUnlock()
	st, ok := registry.byID[id]
	return st, ok
}

// Registered lists every registered strategy name: the six paper
// strategies first (in the paper's presentation order), then plugged-in
// strategies sorted by name (registration order of plugins is otherwise
// load-order dependent and would make experiment output unstable).
func Registered() []StrategyID {
	registry.RLock()
	defer registry.RUnlock()
	builtin := AllStrategies()
	isBuiltin := map[StrategyID]bool{}
	for _, id := range builtin {
		isBuiltin[id] = true
	}
	var plugins []StrategyID
	for _, id := range registry.order {
		if !isBuiltin[id] {
			plugins = append(plugins, id)
		}
	}
	sort.Slice(plugins, func(i, j int) bool { return plugins[i] < plugins[j] })
	return append(builtin, plugins...)
}

// The six paper strategies, behind the Strategy interface.

// afdOFU is the state-of-the-art baseline: AFD inter-DBC distribution with
// order-of-first-use intra-DBC placement.
type afdOFU struct{}

func (afdOFU) Name() string { return string(StrategyAFDOFU) }

func (afdOFU) Place(s *trace.Sequence, q int, opts Options) (*Placement, int64, error) {
	a := trace.Analyze(s)
	p, err := AFD(a, q)
	if err != nil {
		return nil, 0, err
	}
	p = ApplyIntra(p, 0, q, OFU, s, a)
	c, err := costOf(s, p, opts)
	return p, c, err
}

// dma is the paper's heuristic (Algorithm 1) paired with an intra-DBC
// heuristic on the non-disjoint DBCs.
type dma struct {
	id    StrategyID
	intra IntraHeuristic
}

func (d dma) Name() string { return string(d.id) }

func (d dma) Place(s *trace.Sequence, q int, opts Options) (*Placement, int64, error) {
	a := trace.Analyze(s)
	r, err := DMA(a, q, opts.Capacity)
	if err != nil {
		return nil, 0, err
	}
	// Algorithm 1 lines 22-23: intra-DBC optimization only on the
	// non-disjoint DBCs; the disjoint DBCs keep access order.
	p := ApplyIntra(r.Placement, r.DisjointDBCs, q, d.intra, s, a)
	c, err := costOf(s, p, opts)
	return p, c, err
}

// ga is the paper's µ+λ genetic algorithm; with memetic == true it is the
// "GA-2opt" variant with the delta-evaluated local-improvement mutation
// enabled (GAConfig.ImproveWeight).
type ga struct {
	id      StrategyID
	memetic bool
}

func (g ga) Name() string { return string(g.id) }

func (g ga) Place(s *trace.Sequence, q int, opts Options) (*Placement, int64, error) {
	cfg := opts.GA
	if cfg.Mu == 0 {
		cfg = DefaultGAConfig()
	}
	cfg.Capacity = opts.Capacity
	if cfg.Kernel == nil {
		cfg.Kernel = opts.Kernel // GA validates the sequence match itself
	}
	if g.memetic && cfg.ImproveWeight == 0 {
		// Same order of magnitude as the paper's permute skew: rare
		// enough to keep breeding cheap, frequent enough to polish.
		cfg.ImproveWeight = 3
	}
	if len(cfg.Seeds) == 0 && !opts.DisableGASeeding {
		seeds, err := heuristicSeeds(s, q, opts)
		if err != nil {
			return nil, 0, err
		}
		cfg.Seeds = seeds
	}
	res, err := GA(s, q, cfg)
	if err != nil {
		return nil, 0, err
	}
	return res.Best, res.Cost, nil
}

// StrategyGAMemetic is the memetic GA extension strategy ("GA-2opt"). Like
// DMA-2opt it is not one of the paper's six evaluated strategies; it is
// registered as a plugin so every by-name driver can reach it.
const StrategyGAMemetic StrategyID = "GA-2opt"

// rw is the random-walk search baseline.
type rw struct{}

func (rw) Name() string { return string(StrategyRW) }

func (rw) Place(s *trace.Sequence, q int, opts Options) (*Placement, int64, error) {
	cfg := opts.RW
	if cfg.Iterations == 0 {
		cfg = DefaultRWConfig()
	}
	cfg.Capacity = opts.Capacity
	if cfg.Kernel == nil {
		cfg.Kernel = opts.Kernel
	}
	return RandomWalk(s, q, cfg)
}

func init() {
	MustRegister(afdOFU{})
	MustRegister(dma{id: StrategyDMAOFU, intra: OFU})
	MustRegister(dma{id: StrategyDMAChen, intra: Chen})
	MustRegister(dma{id: StrategyDMASR, intra: ShiftsReduce})
	MustRegister(ga{id: StrategyGA})
	MustRegister(rw{})
	MustRegister(ga{id: StrategyGAMemetic, memetic: true})
}
