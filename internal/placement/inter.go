package placement

import (
	"fmt"

	"repro/internal/trace"
)

// AFD implements the Access Frequency based Distribution heuristic of
// Chen et al., the paper's inter-DBC baseline (section III-A): variables
// are sorted in descending order of access frequency (ties broken by
// declaration order, which reproduces the paper's Fig. 3-(c) layout) and
// dealt to the q DBCs round-robin. Within each DBC, variables remain in
// assignment order; compose with an intra-DBC heuristic to reorder.
func AFD(a *trace.Analysis, q int) (*Placement, error) {
	if q <= 0 {
		return nil, fmt.Errorf("placement: q must be positive, got %d", q)
	}
	p := NewEmpty(q)
	for i, v := range a.ByFrequency() {
		d := i % q
		p.DBC[d] = append(p.DBC[d], v)
	}
	return p, nil
}

// DMAResult is the output of the paper's Algorithm 1: a placement plus the
// number K of leading DBCs that hold the disjoint-lifespan variables in
// access order. Intra-DBC heuristics must be applied only to the remaining
// DBCs (paper, Algorithm 1 lines 22-23): reordering a disjoint DBC would
// destroy the access-order property that makes it cheap.
type DMAResult struct {
	Placement *Placement
	// DisjointDBCs is K: DBCs [0, K) hold disjoint variables.
	DisjointDBCs int
	// Disjoint lists the selected disjoint-lifespan variables in
	// ascending order of first use.
	Disjoint []int
}

// DMA implements Algorithm 1 of the paper ("Proposed data distribution
// heuristic"). capacity is N, the number of word locations per DBC; pass
// 0 for unlimited (placement-quality studies ignore capacity, as the
// paper's evaluation does for benchmarks exceeding the array).
//
// Step 1 (lines 5-12): scan variables in ascending order of first use and
// greedily build the disjoint set Vdj. A variable v joins when its
// lifespan starts after the last selected lifespan ended (Fv > tmin) and
// its own access frequency exceeds the summed frequencies of the not-yet-
// classified variables whose lifespans nest strictly inside v's — i.e.
// keeping v pinned under the port pays off more than optimizing the
// variables it would lock out.
//
// Step 2 (lines 13-17): the disjoint variables fill ceil(|Vdj|/N) DBCs
// round-robin in ascending first-use order, preserving access order.
//
// Step 3 (lines 18-21): the remaining variables fill the remaining DBCs
// round-robin in descending access frequency (AFD-style).
func DMA(a *trace.Analysis, q, capacity int) (*DMAResult, error) {
	if q <= 0 {
		return nil, fmt.Errorf("placement: q must be positive, got %d", q)
	}
	if capacity < 0 {
		return nil, fmt.Errorf("placement: capacity must be non-negative, got %d", capacity)
	}
	// Greedy disjoint-set extraction over the variables in ascending order
	// of first occurrence (Algorithm 1 lines 5-12; see dmamulti.go for the
	// shared scan).
	vdj, remaining := extractDisjoint(a, a.ByFirstUse(), false)
	return assembleDMA(a, q, capacity, vdj, remaining)
}

// assembleDMA performs Algorithm 1 lines 13-21: size the disjoint region,
// distribute the disjoint variables round-robin in first-use order and the
// rest round-robin in descending frequency.
func assembleDMA(a *trace.Analysis, q, capacity int, vdj, remaining []int) (*DMAResult, error) {
	// A single DBC cannot separate disjoint from non-disjoint variables;
	// Algorithm 1 needs at least one DBC for each non-empty class.
	k := 0
	if len(vdj) > 0 {
		if capacity > 0 {
			k = (len(vdj) + capacity - 1) / capacity
		} else {
			k = 1
		}
		// Keep at least one DBC for the non-disjoint variables when any
		// exist; if the disjoint set alone exceeds the array, spill the
		// latest-starting disjoint variables back to the non-disjoint set.
		maxK := q
		if len(remaining) > 0 {
			maxK = q - 1
		}
		if maxK == 0 {
			// q == 1 and both classes non-empty: degenerate to a single
			// shared DBC, handled below with k = 0.
			remaining = mergeByFirstUse(a, vdj, remaining)
			vdj = nil
			k = 0
		} else if k > maxK {
			if capacity > 0 {
				keep := maxK * capacity
				spill := vdj[keep:]
				vdj = vdj[:keep]
				remaining = mergeByFirstUse(a, spill, remaining)
			}
			k = maxK
		}
	}

	p := NewEmpty(q)
	// Disjoint variables: round-robin over DBCs [0, k) in ascending
	// first-use order (lines 14-17).
	for i, v := range vdj {
		p.DBC[i%max(k, 1)] = append(p.DBC[i%max(k, 1)], v)
	}
	// Non-disjoint variables: round-robin over DBCs [k, q) in descending
	// access frequency (lines 18-21).
	rest := append([]int(nil), remaining...)
	sortByFreqDesc(a, rest)
	width := q - k
	if width <= 0 {
		width = 1
	}
	for i, v := range rest {
		d := k + i%width
		if d >= q {
			d = q - 1
		}
		p.DBC[d] = append(p.DBC[d], v)
	}

	return &DMAResult{Placement: p, DisjointDBCs: k, Disjoint: vdj}, nil
}

// mergeByFirstUse merges two first-use-ordered variable lists, preserving
// ascending first-use order.
func mergeByFirstUse(a *trace.Analysis, x, y []int) []int {
	out := make([]int, 0, len(x)+len(y))
	i, j := 0, 0
	for i < len(x) && j < len(y) {
		if a.First[x[i]] <= a.First[y[j]] {
			out = append(out, x[i])
			i++
		} else {
			out = append(out, y[j])
			j++
		}
	}
	out = append(out, x[i:]...)
	out = append(out, y[j:]...)
	return out
}

func sortByFreqDesc(a *trace.Analysis, vars []int) {
	// Stable insertion sort: ties keep ascending variable order, matching
	// trace.Analysis.ByFrequency.
	for i := 1; i < len(vars); i++ {
		for j := i; j > 0; j-- {
			x, y := vars[j], vars[j-1]
			if a.Freq[x] > a.Freq[y] || (a.Freq[x] == a.Freq[y] && x < y) {
				vars[j], vars[j-1] = vars[j-1], vars[j]
			} else {
				break
			}
		}
	}
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
