package placement

import (
	"math/rand"
	"testing"

	"repro/internal/trace"
)

// fullRestrictedCost is the reference objective: the intra-DBC shift cost
// of the sequence restricted to the order's variables, recomputed from
// scratch through the production ShiftCost path.
func fullRestrictedCost(t testing.TB, s *trace.Sequence, order []int) int64 {
	t.Helper()
	member := membership(order, s.NumVars())
	r := s.Restrict(func(v int) bool { return v < len(member) && member[v] })
	c, err := ShiftCost(r, &Placement{DBC: [][]int{order}})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// Property: across random sequences, random member subsets and random
// swap/reversal move chains, the incremental cost is bit-identical to the
// full recompute, and each predicted delta matches the realized change.
func TestDeltaEvaluatorParityRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	for trial := 0; trial < 60; trial++ {
		numVars := 4 + rng.Intn(36)
		s := randSeq(rng, numVars, 30+rng.Intn(370))

		// Order over a random subset (sometimes everything) so the
		// non-member-transparency path is exercised too.
		perm := rng.Perm(numVars)
		k := 3 + rng.Intn(numVars-2)
		order := perm[:k]

		e := NewDeltaEvaluator(s, order)
		want := fullRestrictedCost(t, s, order)
		if e.Cost() != want {
			t.Fatalf("trial %d: setup cost %d, full recompute %d", trial, e.Cost(), want)
		}

		for move := 0; move < 120; move++ {
			i, j := rng.Intn(k), rng.Intn(k)
			if i > j {
				i, j = j, i
			}
			before := e.Cost()
			var predicted int64
			if rng.Intn(2) == 0 {
				predicted = e.SwapDelta(i, j)
				e.Swap(i, j)
			} else {
				predicted = e.ReverseDelta(i, j)
				e.Reverse(i, j)
			}
			if got := e.Cost() - before; got != predicted {
				t.Fatalf("trial %d move %d [%d,%d]: predicted delta %d, applied %d",
					trial, move, i, j, predicted, got)
			}
			want := fullRestrictedCost(t, s, e.CurrentOrder())
			if e.Cost() != want {
				t.Fatalf("trial %d move %d [%d,%d]: incremental cost %d, full recompute %d",
					trial, move, i, j, e.Cost(), want)
			}
		}
	}
}

// The rewritten TwoOpt must follow the seed implementation's search
// trajectory move-for-move: identical returned orders, not merely equal
// costs.
func TestTwoOptMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(78))
	for trial := 0; trial < 50; trial++ {
		numVars := 3 + rng.Intn(11)
		s := randSeq(rng, numVars, 20+rng.Intn(230))
		a := trace.Analyze(s)
		vars := a.ByFirstUse()
		if len(vars) < 3 {
			continue
		}
		rng.Shuffle(len(vars), func(i, j int) { vars[i], vars[j] = vars[j], vars[i] })

		got := TwoOpt(vars, s, a)
		want := twoOptReference(vars, s, a)
		if len(got) != len(want) {
			t.Fatalf("trial %d: length %d vs %d", trial, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("trial %d: orders diverge at offset %d:\n got %v\nwant %v",
					trial, i, got, want)
			}
		}
	}
}

// TwoOpt must also keep matching the reference when the DBC holds only a
// subset of the accessed variables (the ApplyIntra path).
func TestTwoOptMatchesReferenceOnSubsets(t *testing.T) {
	rng := rand.New(rand.NewSource(79))
	for trial := 0; trial < 30; trial++ {
		numVars := 6 + rng.Intn(10)
		s := randSeq(rng, numVars, 40+rng.Intn(160))
		perm := rng.Perm(numVars)
		k := 3 + rng.Intn(numVars-3)
		vars := perm[:k]
		a := trace.Analyze(s)

		got := TwoOpt(vars, s, a)
		want := twoOptReference(vars, s, a)
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("trial %d: orders diverge at offset %d:\n got %v\nwant %v",
					trial, i, got, want)
			}
		}
	}
}

// After setup, move evaluation and application must not allocate.
func TestDeltaEvaluatorAllocFree(t *testing.T) {
	rng := rand.New(rand.NewSource(80))
	s := randSeq(rng, 24, 600)
	a := trace.Analyze(s)
	order := a.ByFirstUse()
	if len(order) < 8 {
		t.Fatal("workload too small")
	}
	e := NewDeltaEvaluator(s, order)
	n := e.Len()
	allocs := testing.AllocsPerRun(50, func() {
		e.SwapDelta(0, n-1)
		e.Swap(1, n-2)
		e.ReverseDelta(1, n/2)
		e.Reverse(2, n-3)
		e.ImprovePass()
	})
	if allocs != 0 {
		t.Errorf("move evaluation allocated %.1f times per run, want 0", allocs)
	}
}

func TestDeltaEvaluatorEdgeCases(t *testing.T) {
	s := trace.NewSequence(0, 1, 2, 0, 1)

	e := NewDeltaEvaluator(s, nil)
	if e.Cost() != 0 || e.Accesses() != 0 || e.Len() != 0 {
		t.Errorf("empty order: cost %d accesses %d len %d", e.Cost(), e.Accesses(), e.Len())
	}

	e = NewDeltaEvaluator(s, []int{1})
	if e.Cost() != 0 {
		t.Errorf("single variable: cost %d, want 0", e.Cost())
	}
	if e.Accesses() != 2 {
		t.Errorf("single variable: accesses %d, want 2", e.Accesses())
	}

	// Self-transitions cost nothing and must not create edges.
	selfy := trace.NewSequence(0, 0, 0, 1, 1, 0)
	e = NewDeltaEvaluator(selfy, []int{0, 1})
	if e.Cost() != 2 { // 0->1 and 1->0, distance 1 each
		t.Errorf("self-transition sequence: cost %d, want 2", e.Cost())
	}

	// A variable in the order but never accessed is a zero-degree row.
	e = NewDeltaEvaluator(s, []int{2, 1, 0})
	want := fullRestrictedCost(t, s, []int{2, 1, 0})
	if e.Cost() != want {
		t.Errorf("full order: cost %d, want %d", e.Cost(), want)
	}
}

// The worked example of the paper's Fig. 3 arithmetic, by hand: sequence
// a b c a b with order [a b c] costs |0-1|+|1-2|+|2-0|+|0-1| = 5.
func TestDeltaEvaluatorHandComputed(t *testing.T) {
	s := trace.NewSequence(0, 1, 2, 0, 1)
	e := NewDeltaEvaluator(s, []int{0, 1, 2})
	if e.Cost() != 5 {
		t.Fatalf("cost %d, want 5", e.Cost())
	}
	// Swapping offsets of b and c: order [a c b], cost
	// |0-2|+|2-1|+|1-0|+|0-2| = 6, delta +1.
	if d := e.SwapDelta(1, 2); d != 1 {
		t.Fatalf("swap delta %d, want 1", d)
	}
	// Reversing [0,2] mirrors every offset: pairwise distances are all
	// preserved, delta 0.
	if d := e.ReverseDelta(0, 2); d != 0 {
		t.Fatalf("full reversal delta %d, want 0", d)
	}
}
