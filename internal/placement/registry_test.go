package placement

import (
	"fmt"
	"strings"
	"sync"
	"testing"

	"repro/internal/trace"
)

func TestLookupUnknownStrategy(t *testing.T) {
	if _, ok := LookupStrategy("no-such-strategy"); ok {
		t.Fatal("unknown strategy resolved")
	}
	s := mustSeq(t, "a b a b")
	if _, _, err := Place("no-such-strategy", s, 2, Options{}); err == nil {
		t.Fatal("Place accepted unknown strategy")
	} else if !strings.Contains(err.Error(), "unknown strategy") {
		t.Fatalf("unexpected error: %v", err)
	}
}

func TestRegisterRejectsDuplicatesAndEmpty(t *testing.T) {
	dummy := func(s *trace.Sequence, q int, opts Options) (*Placement, int64, error) {
		return NewEmpty(q), 0, nil
	}
	if err := Register(NewStrategy(string(StrategyAFDOFU), dummy)); err == nil {
		t.Fatal("duplicate registration of a builtin accepted")
	}
	if err := Register(NewStrategy("", dummy)); err == nil {
		t.Fatal("empty name accepted")
	}
	if err := Register(nil); err == nil {
		t.Fatal("nil strategy accepted")
	}
	if err := Register(NewStrategy("registry-test-nil-fn", nil)); err == nil {
		t.Fatal("nil placement function accepted")
	}
	name := "registry-test-dup"
	if err := Register(NewStrategy(name, dummy)); err != nil {
		t.Fatalf("first registration: %v", err)
	}
	if err := Register(NewStrategy(name, dummy)); err == nil {
		t.Fatal("duplicate registration accepted")
	}
}

// TestRegistryConcurrentAccess hammers lookups, listings and
// registrations from many goroutines; run under -race this checks the
// registry's locking.
func TestRegistryConcurrentAccess(t *testing.T) {
	dummy := func(s *trace.Sequence, q int, opts Options) (*Placement, int64, error) {
		return NewEmpty(q), 0, nil
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				if _, ok := LookupStrategy(StrategyDMASR); !ok {
					t.Error("builtin disappeared")
					return
				}
				Registered()
				if i%10 == 0 {
					if err := Register(NewStrategy(fmt.Sprintf("registry-test-conc-%d-%d", g, i), dummy)); err != nil {
						t.Errorf("register: %v", err)
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
}

func TestRegisteredOrderBuiltinsFirst(t *testing.T) {
	ids := Registered()
	if len(ids) < len(AllStrategies()) {
		t.Fatalf("registered %d < builtin %d", len(ids), len(AllStrategies()))
	}
	for i, want := range AllStrategies() {
		if ids[i] != want {
			t.Fatalf("position %d: got %s, want %s", i, ids[i], want)
		}
	}
}

// legacyPlace is a verbatim copy of the pre-registry Place switch (the
// seed's strategy.go). The golden parity test below guarantees the
// registry dispatch reproduces it exactly for all six paper strategies.
func legacyPlace(id StrategyID, s *trace.Sequence, q int, opts Options) (*Placement, int64, error) {
	a := trace.Analyze(s)
	switch id {
	case StrategyAFDOFU:
		p, err := AFD(a, q)
		if err != nil {
			return nil, 0, err
		}
		p = ApplyIntra(p, 0, q, OFU, s, a)
		c, err := ShiftCost(s, p)
		return p, c, err

	case StrategyDMAOFU, StrategyDMAChen, StrategyDMASR:
		r, err := DMA(a, q, opts.Capacity)
		if err != nil {
			return nil, 0, err
		}
		var h IntraHeuristic
		switch id {
		case StrategyDMAOFU:
			h = OFU
		case StrategyDMAChen:
			h = Chen
		default:
			h = ShiftsReduce
		}
		p := ApplyIntra(r.Placement, r.DisjointDBCs, q, h, s, a)
		c, err := ShiftCost(s, p)
		return p, c, err

	case StrategyGA:
		cfg := opts.GA
		if cfg.Mu == 0 {
			cfg = DefaultGAConfig()
		}
		cfg.Capacity = opts.Capacity
		if len(cfg.Seeds) == 0 && !opts.DisableGASeeding {
			seeds, err := heuristicSeeds(s, q, opts)
			if err != nil {
				return nil, 0, err
			}
			cfg.Seeds = seeds
		}
		res, err := GA(s, q, cfg)
		if err != nil {
			return nil, 0, err
		}
		return res.Best, res.Cost, nil

	case StrategyRW:
		cfg := opts.RW
		if cfg.Iterations == 0 {
			cfg = DefaultRWConfig()
		}
		cfg.Capacity = opts.Capacity
		return RandomWalk(s, q, cfg)

	default:
		return nil, 0, fmt.Errorf("placement: unknown strategy %q", id)
	}
}

// TestRegistryParityWithLegacySwitch is the golden parity test: every
// registered paper strategy must produce the same placement and shift
// count through the registry as through the seed's switch dispatch.
func TestRegistryParityWithLegacySwitch(t *testing.T) {
	seqs := []string{
		"a b a b c a c a d d a",
		"a b c d e f a b c d e f a a b b",
		"x y x z y x w z w y x v v v w",
		"a a a a",
		"p q r s t u v w x y z p p q q r r s s",
	}
	opts := Options{
		GA: GAConfig{Mu: 8, Lambda: 8, Generations: 6, TournamentK: 2,
			MutationRate: 0.5, MoveWeight: 10, TransposeWeight: 10, PermuteWeight: 3, Seed: 7},
		RW: RWConfig{Iterations: 120, Seed: 7},
	}
	for _, text := range seqs {
		s := mustSeq(t, text)
		for _, q := range []int{1, 2, 4} {
			for _, id := range AllStrategies() {
				wantP, wantC, wantErr := legacyPlace(id, s, q, opts)
				gotP, gotC, gotErr := Place(id, s, q, opts)
				if (wantErr == nil) != (gotErr == nil) {
					t.Fatalf("%s q=%d %q: error mismatch: legacy %v, registry %v", id, q, text, wantErr, gotErr)
				}
				if wantErr != nil {
					continue
				}
				if gotC != wantC {
					t.Errorf("%s q=%d %q: shifts: legacy %d, registry %d", id, q, text, wantC, gotC)
				}
				if !gotP.Equal(wantP) {
					t.Errorf("%s q=%d %q: placements differ:\n legacy  %s\n registry %s", id, q, text, wantP, gotP)
				}
			}
		}
	}
}

// TestDMATwoOptNeverWorseThanDMASR checks the invariant the DMA-2opt
// extension strategy is registered under: 2-opt polishing can only keep
// or reduce the DMA-SR cost.
func TestDMATwoOptNeverWorseThanDMASR(t *testing.T) {
	seqs := []string{
		"a b a b c a c a d d a",
		"a b c d e f a b c d e f a a b b",
		"x y x z y x w z w y x v v v w",
		"p q r s t u v w x y z p p q q r r s s t u v",
	}
	for _, text := range seqs {
		s := mustSeq(t, text)
		for _, q := range []int{1, 2, 4} {
			_, sr, err := Place(StrategyDMASR, s, q, Options{})
			if err != nil {
				t.Fatal(err)
			}
			_, refined, err := PlaceDMATwoOpt(s, q, Options{})
			if err != nil {
				t.Fatal(err)
			}
			if refined > sr {
				t.Errorf("q=%d %q: DMA-2opt %d > DMA-SR %d", q, text, refined, sr)
			}
		}
	}
}

func mustSeq(t *testing.T, text string) *trace.Sequence {
	t.Helper()
	s, err := trace.NewNamedSequence(strings.Fields(text)...)
	if err != nil {
		t.Fatal(err)
	}
	return s
}
