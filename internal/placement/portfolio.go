package placement

import (
	"context"
	"fmt"
	"math"
	"sync"
	"sync/atomic"

	"repro/internal/pool"
	"repro/internal/trace"
)

// Strategy-portfolio racing (DESIGN.md §11): run a set of registry
// strategies concurrently on one sequence, sharing a single CostKernel
// build, and let the running incumbent cost prune work — a constructive
// heuristic's result is priced with bounded evaluation against the
// incumbent and abandons the replay as soon as its partial sum proves it
// cannot win. The race's winner and cost are deterministic: abandonment
// only ever discards strictly-worse candidates, so the surviving exact
// costs — and the first-in-portfolio-order tie break over them — are
// independent of goroutine scheduling.

// PortfolioConfig configures RacePortfolio.
type PortfolioConfig struct {
	// Strategies lists the racing strategies in portfolio order (the
	// deterministic tie-break order). Empty means every strategy of the
	// registry, in Registered() order.
	Strategies []StrategyID
	// Registry resolves the strategy names; nil is the process-wide
	// default registry.
	Registry *Registry
	// Resolve, when non-nil, overrides Registry for name resolution
	// (the experiment engine threads its hook here). It does not affect
	// the default Strategies enumeration.
	Resolve func(StrategyID) (Strategy, bool)
	// Workers bounds the number of concurrently racing strategies
	// (0 or 1 = sequential).
	Workers int
	// Options is passed to every strategy. The race resolves the cost
	// model once: the kernel is built (or reused) up front and shared,
	// and Options.Context is overridden with the race's context.
	Options Options
	// Progress, when non-nil, receives a start and a finish event per
	// strategy. Invocations are serialized by the race; the callback
	// needs no locking of its own.
	Progress func(PortfolioEvent)
}

// PortfolioEvent reports one strategy starting or finishing inside a
// race.
type PortfolioEvent struct {
	Strategy StrategyID
	Index    int // position in the portfolio order
	Total    int
	Done     bool
	// Cost and Abandoned mirror the strategy's PortfolioEntry and are
	// meaningful only on the finish event.
	Cost      int64
	Abandoned bool
}

// PortfolioEntry is one strategy's outcome in a finished race. For an
// abandoned strategy, Cost is only a certificate that its true cost
// exceeds the race winner's — the exact value depends on where the
// bounded replay stopped, which may vary with scheduling; Winner and the
// winning Cost never do.
type PortfolioEntry struct {
	Strategy  StrategyID
	Cost      int64
	Abandoned bool
}

// PortfolioResult reports a finished race.
type PortfolioResult struct {
	// Winner is the first strategy in portfolio order whose exact cost
	// equals the best exact cost found.
	Winner    StrategyID
	Placement *Placement
	Cost      int64
	// Entries holds every strategy's outcome in portfolio order.
	Entries []PortfolioEntry
}

// constructive is the optional fast path of the race: a strategy that
// can return its placement without pricing it, so the race can price it
// with bounded evaluation against the incumbent instead of paying a full
// replay for a result that cannot win. The constructive heuristics (AFD
// and the DMA family) implement it; search strategies price candidates
// internally and run their normal Place.
type constructive interface {
	construct(s *trace.Sequence, q int, opts Options) (*Placement, error)
}

// RacePortfolio races the configured strategies on one sequence placed
// into q DBCs and returns the best result. The context cancels the race
// (and, through Options.Context, the strategies' own search loops); on
// cancellation the partial race is discarded and the context's error
// returned.
func RacePortfolio(ctx context.Context, s *trace.Sequence, q int, cfg PortfolioConfig) (*PortfolioResult, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	reg := cfg.Registry
	if reg == nil {
		var err error
		if reg, err = DefaultRegistry(); err != nil {
			return nil, fmt.Errorf("placement: portfolio: %w", err)
		}
	}
	resolve := cfg.Resolve
	if resolve == nil {
		resolve = reg.Lookup
	}
	ids := cfg.Strategies
	if len(ids) == 0 {
		ids = reg.Registered()
	}
	if len(ids) == 0 {
		return nil, fmt.Errorf("placement: portfolio has no strategies")
	}

	// Resolve the cost model once for the whole race: every strategy
	// shares one kernel build (the kernel is immutable and safe for
	// concurrent use), and the bounded pricing below follows the same
	// objective the strategies report under.
	opts := cfg.Options
	pm, err := opts.PortModelFor(q)
	if err != nil {
		return nil, err
	}
	opts.Kernel = kernelFor(opts.Kernel, s)

	var progressMu sync.Mutex
	emit := func(ev PortfolioEvent) {
		if cfg.Progress == nil {
			return
		}
		progressMu.Lock()
		cfg.Progress(ev)
		progressMu.Unlock()
	}

	// incumbent is the best exact cost any strategy has proven so far;
	// it only ever decreases, so a bounded replay that exceeds it can
	// abandon safely no matter how the remaining strategies turn out.
	// The incumbent stays an int64 shift count even when Options.Cost
	// carries a derived objective: every constructible objective is
	// strictly monotone in shifts (costmodel.go), so the shift bound IS
	// the scalarized bound — pruning against it abandons exactly the
	// strategies whose scalarized cost would lose, and the winner is the
	// scalarized argmin. Pricing into energy/runtime happens once at the
	// reporting boundary, not per candidate.
	var incumbent atomic.Int64
	incumbent.Store(math.MaxInt64)

	entries := make([]PortfolioEntry, len(ids))
	placements := make([]*Placement, len(ids))
	err = pool.Run(ctx, len(ids), cfg.Workers, func(ctx context.Context, i int) error {
		id := ids[i]
		st, ok := resolve(id)
		if !ok {
			return fmt.Errorf("placement: unknown strategy %q", id)
		}
		emit(PortfolioEvent{Strategy: id, Index: i, Total: len(ids)})
		o := opts
		o.Context = ctx
		p, cost, abandoned, err := raceOne(s, q, st, o, pm, &incumbent)
		if err != nil {
			return fmt.Errorf("placement: portfolio strategy %q: %w", id, err)
		}
		if !abandoned {
			for {
				cur := incumbent.Load()
				if cost >= cur || incumbent.CompareAndSwap(cur, cost) {
					break
				}
			}
		}
		placements[i] = p
		entries[i] = PortfolioEntry{Strategy: id, Cost: cost, Abandoned: abandoned}
		emit(PortfolioEvent{Strategy: id, Index: i, Total: len(ids), Done: true, Cost: cost, Abandoned: abandoned})
		return nil
	})
	if err != nil {
		return nil, err
	}

	res := &PortfolioResult{Winner: "", Cost: math.MaxInt64, Entries: entries}
	for i, e := range entries {
		if !e.Abandoned && e.Cost < res.Cost {
			res.Winner, res.Cost, res.Placement = e.Strategy, e.Cost, placements[i]
		}
	}
	return res, nil
}

// raceOne runs one strategy under the race. Constructive strategies are
// priced with bounded evaluation: the bound is incumbent+1, so a
// strategy is only abandoned when its cost provably exceeds the
// incumbent — an exact tie still prices fully, keeping the
// first-in-order tie break deterministic.
func raceOne(s *trace.Sequence, q int, st Strategy, opts Options, pm *PortModel, incumbent *atomic.Int64) (*Placement, int64, bool, error) {
	h, ok := st.(constructive)
	if !ok {
		p, cost, err := st.Place(s, q, opts)
		return p, cost, false, err
	}
	p, err := h.construct(s, q, opts)
	if err != nil {
		return nil, 0, false, err
	}
	bound := int64(math.MaxInt64)
	if inc := incumbent.Load(); inc < math.MaxInt64 {
		bound = inc + 1
	}
	cost, err := boundedCost(s, p, q, opts, pm, bound)
	if err != nil {
		return nil, 0, false, err
	}
	return p, cost, cost >= bound, nil
}

// boundedCost prices a placement under the options' cost model with an
// abort threshold: exact below bound, a certificate of cost >= bound at
// or above it. It is costOf with early termination.
func boundedCost(s *trace.Sequence, p *Placement, q int, opts Options, pm *PortModel, bound int64) (int64, error) {
	l, err := p.BuildLookup(s.NumVars())
	if err != nil {
		return 0, err
	}
	if pm != nil {
		sc := portPool.Get().(*portScratch)
		c := portCostLookupBounded(s, l, pm, sc.grow(numDBCsIn(l)), bound)
		portPool.Put(sc)
		return c, nil
	}
	if k := opts.Kernel; k != nil && k.Sequence() == s {
		return k.CostBounded(l, bound), nil
	}
	sc := replayPool.Get().(*replayScratch)
	defer replayPool.Put(sc)
	return shiftCostLookupBounded(s, l, sc.grow(q), bound), nil
}
