package placement

import (
	"testing"

	"repro/internal/offsetstone"
	"repro/internal/trace"
)

// twoOptBenchWorkload generates a single large OffsetStone-style sequence
// — at least 64 variables and 10k accesses in one DBC — sized so the
// seed's O(m)-per-move recompute is visibly the bottleneck. The profile
// mirrors the suite's loop-heavy DSP shapes at ~4x the largest catalog
// sequence length.
func twoOptBenchWorkload(b *testing.B) (*trace.Sequence, []int, *trace.Analysis) {
	b.Helper()
	bench := offsetstone.GenerateProfile(offsetstone.Profile{
		Name: "twoopt-xl", Sequences: 1,
		MinVars: 96, MaxVars: 96,
		MinLen: 12000, MaxLen: 12000,
		Phases: 3, Loopiness: 0.6, HotFraction: 0.1, WriteFraction: 0.25,
	})
	s := bench.Sequences[0]
	a := trace.Analyze(s)
	vars := a.ByFirstUse()
	if s.Len() < 10000 || len(vars) < 64 {
		b.Fatalf("workload too small: %d accesses over %d variables", s.Len(), len(vars))
	}
	return s, vars, a
}

// BenchmarkTwoOptFull measures the seed implementation (full restricted
// recompute per candidate move), kept as the test-only reference.
func BenchmarkTwoOptFull(b *testing.B) {
	s, vars, a := twoOptBenchWorkload(b)
	b.ResetTimer()
	var out []int
	for i := 0; i < b.N; i++ {
		out = twoOptReference(vars, s, a)
	}
	b.StopTimer()
	b.ReportMetric(float64(fullRestrictedCost(b, s, out)), "shifts")
}

// BenchmarkTwoOptDelta measures the delta-evaluated rewrite on the
// identical workload and start order; the acceptance bar is ≥5x faster
// than BenchmarkTwoOptFull (TestTwoOptMatchesReference pins that both
// return the same order, so the comparison is move-for-move fair).
func BenchmarkTwoOptDelta(b *testing.B) {
	s, vars, a := twoOptBenchWorkload(b)
	b.ResetTimer()
	var out []int
	for i := 0; i < b.N; i++ {
		out = TwoOpt(vars, s, a)
	}
	b.StopTimer()
	b.ReportMetric(float64(fullRestrictedCost(b, s, out)), "shifts")
}

// BenchmarkTwoOptDeltaSetup isolates the once-per-DBC evaluator
// construction (transition aggregation + CSR build) from the per-move
// cost.
func BenchmarkTwoOptDeltaSetup(b *testing.B) {
	s, vars, _ := twoOptBenchWorkload(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e := NewDeltaEvaluator(s, vars)
		if e.Accesses() == 0 {
			b.Fatal("empty evaluator")
		}
	}
	b.SetBytes(int64(s.Len()))
}
