package placement

import (
	"context"
	"errors"
	"testing"

	"repro/internal/trace"
)

// cancellingReader yields accesses from a sequence and fires cancel
// after yielding n of them — cancellation lands mid-stream, between
// windows from PlaceStreamed's point of view.
type cancellingReader struct {
	inner  *trace.SliceReader
	n      int
	served int
	cancel context.CancelFunc
}

func (r *cancellingReader) Next() (trace.Access, error) {
	a, err := r.inner.Next()
	if err != nil {
		return a, err
	}
	r.served++
	if r.served == r.n {
		r.cancel()
	}
	return a, nil
}

// TestPlaceStreamedCancelReturnsBestSoFar pins the streaming pipeline's
// cancellation contract (the same one the GA has): a context cancelled
// mid-stream returns the stitched result through the last completed
// window TOGETHER WITH the context's error, and that partial equals a
// fresh run over exactly the prefix it covers.
func TestPlaceStreamedCancelReturnsBestSoFar(t *testing.T) {
	seq, err := trace.NewNamedSequence(
		"a", "b", "c", "a", "d", "b", "a", "c",
		"d", "b", "a", "d", "b", "c", "a", "d")
	if err != nil {
		t.Fatal(err)
	}
	const window = 4
	cfg := StreamConfig{NumVars: seq.NumVars(), DBCs: 2, Window: window, Strategy: StrategyDMAOFU}

	// Cancel while reading the third window: the ctx check at the top of
	// that window's iteration sees it after two windows completed.
	ctx, cancel := context.WithCancel(context.Background())
	r := &cancellingReader{inner: trace.NewSliceReader(seq), n: 2 * window, cancel: cancel}
	res, err := PlaceStreamed(ctx, r, cfg)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if res == nil {
		t.Fatal("cancelled run returned no best-so-far result")
	}
	if res.Windows != 2 || res.Accesses != 2*window {
		t.Fatalf("partial covers %d windows / %d accesses, want 2 / %d", res.Windows, res.Accesses, 2*window)
	}
	if res.Shifts != res.WindowShifts+res.MigrationShifts {
		t.Fatalf("partial Shifts=%d inconsistent with %d+%d", res.Shifts, res.WindowShifts, res.MigrationShifts)
	}

	// The partial must be the genuine prefix accounting: identical to an
	// uncancelled run over just those accesses.
	prefix := &trace.Sequence{Names: seq.Names, Accesses: seq.Accesses[:2*window]}
	want, werr := PlaceStreamed(context.Background(), trace.NewSliceReader(prefix), cfg)
	if werr != nil {
		t.Fatal(werr)
	}
	if res.Shifts != want.Shifts || res.MigratedVars != want.MigratedVars {
		t.Fatalf("partial (shifts=%d migrated=%d) != prefix run (shifts=%d migrated=%d)",
			res.Shifts, res.MigratedVars, want.Shifts, want.MigratedVars)
	}
}
