// Package placement implements the data-placement algorithms of
// "Generalized Data Placement Strategies for Racetrack Memories"
// (Khan, Goens, Hameed, Castrillon — DATE 2020) together with the
// state-of-the-art baselines the paper compares against.
//
// A placement assigns every accessed program variable to a DBC (inter-DBC
// placement) and to an offset inside that DBC (intra-DBC placement). The
// objective is the total number of racetrack shift operations needed to
// serve an access sequence: within each DBC the cost of an access is the
// absolute offset distance from the previously accessed variable of the
// same DBC, and the first access per DBC is free (paper section II-B,
// validated against the worked example of Fig. 3).
//
// Implemented algorithms:
//
//   - AFD — access-frequency-based inter-DBC distribution (Chen et al.),
//     the paper's baseline (section III-A).
//   - DMA — the paper's sequence-aware heuristic separating variables with
//     disjoint lifespans (Algorithm 1, section III-B).
//   - Intra-DBC orderings: OFU (order of first use), Chen's single-DBC
//     heuristic, and ShiftsReduce.
//   - GA — the paper's µ+λ genetic algorithm over complete placements
//     (section III-C).
//   - RW — random-walk search baseline (section III-C).
//   - Exact — branch-and-bound optimum for small instances (substitute for
//     an ILP, see DESIGN.md).
package placement

import (
	"fmt"
	"sort"

	"repro/internal/trace"
)

// Placement is a complete inter- and intra-DBC assignment: DBC[i] lists the
// variables stored in DBC i, in offset order (DBC[i][k] lives at offset k).
type Placement struct {
	DBC [][]int
}

// NewEmpty returns a placement with q empty DBCs.
func NewEmpty(q int) *Placement {
	return &Placement{DBC: make([][]int, q)}
}

// NumDBCs returns the number of DBCs (including empty ones).
func (p *Placement) NumDBCs() int { return len(p.DBC) }

// NumPlaced returns the total number of placed variables.
func (p *Placement) NumPlaced() int {
	n := 0
	for _, d := range p.DBC {
		n += len(d)
	}
	return n
}

// MaxDBCLen returns the size of the fullest DBC.
func (p *Placement) MaxDBCLen() int {
	m := 0
	for _, d := range p.DBC {
		if len(d) > m {
			m = len(d)
		}
	}
	return m
}

// Clone returns a deep copy.
func (p *Placement) Clone() *Placement {
	c := &Placement{DBC: make([][]int, len(p.DBC))}
	for i, d := range p.DBC {
		c.DBC[i] = append([]int(nil), d...)
	}
	return c
}

// Lookup is the inverse mapping of a placement: for each variable, which
// DBC it lives in and at which offset. Unplaced variables map to (-1, -1).
type Lookup struct {
	DBCOf  []int
	Offset []int
}

// BuildLookup inverts the placement over a universe of numVars variables.
// It fails if a variable is placed twice or out of universe.
func (p *Placement) BuildLookup(numVars int) (*Lookup, error) {
	l := &Lookup{DBCOf: make([]int, numVars), Offset: make([]int, numVars)}
	for v := range l.DBCOf {
		l.DBCOf[v] = -1
		l.Offset[v] = -1
	}
	for d, vars := range p.DBC {
		for off, v := range vars {
			if v < 0 || v >= numVars {
				return nil, fmt.Errorf("placement: variable %d outside universe [0,%d)", v, numVars)
			}
			if l.DBCOf[v] != -1 {
				return nil, fmt.Errorf("placement: variable %d placed twice (DBC %d and %d)", v, l.DBCOf[v], d)
			}
			l.DBCOf[v] = d
			l.Offset[v] = off
		}
	}
	return l, nil
}

// Validate checks that the placement is a legal layout for the sequence:
// every accessed variable is placed exactly once, and (when capacity > 0)
// no DBC exceeds the capacity.
func (p *Placement) Validate(s *trace.Sequence, capacity int) error {
	l, err := p.BuildLookup(s.NumVars())
	if err != nil {
		return err
	}
	for i, a := range s.Accesses {
		if l.DBCOf[a.Var] == -1 {
			return fmt.Errorf("placement: access %d references unplaced variable %s", i, s.Name(a.Var))
		}
	}
	if capacity > 0 {
		for d, vars := range p.DBC {
			if len(vars) > capacity {
				return fmt.Errorf("placement: DBC %d holds %d variables, capacity %d", d, len(vars), capacity)
			}
		}
	}
	return nil
}

// Equal reports whether two placements are identical (same DBC lists in
// the same order).
func (p *Placement) Equal(other *Placement) bool {
	if len(p.DBC) != len(other.DBC) {
		return false
	}
	for i := range p.DBC {
		if len(p.DBC[i]) != len(other.DBC[i]) {
			return false
		}
		for j := range p.DBC[i] {
			if p.DBC[i][j] != other.DBC[i][j] {
				return false
			}
		}
	}
	return true
}

// String renders the placement with variable indices.
func (p *Placement) String() string {
	s := ""
	for i, d := range p.DBC {
		if i > 0 {
			s += " | "
		}
		s += fmt.Sprintf("DBC%d:%v", i, d)
	}
	return s
}

// Render renders the placement with variable names from the sequence.
func (p *Placement) Render(s *trace.Sequence) string {
	out := ""
	for i, d := range p.DBC {
		if i > 0 {
			out += " | "
		}
		out += fmt.Sprintf("DBC%d:[", i)
		for j, v := range d {
			if j > 0 {
				out += " "
			}
			out += s.Name(v)
		}
		out += "]"
	}
	return out
}

// Canonical returns a copy with empty DBCs kept and non-empty DBC order
// normalized by their smallest variable. Useful to compare placements
// modulo DBC renaming (DBCs are interchangeable hardware-wise).
func (p *Placement) Canonical() *Placement {
	c := p.Clone()
	sort.SliceStable(c.DBC, func(i, j int) bool {
		a, b := c.DBC[i], c.DBC[j]
		switch {
		case len(a) == 0 && len(b) == 0:
			return false
		case len(a) == 0:
			return false
		case len(b) == 0:
			return true
		default:
			return a[0] < b[0]
		}
	})
	return c
}
