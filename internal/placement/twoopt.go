package placement

import (
	"repro/internal/trace"
)

// TwoOpt is an intra-DBC local-search improver in the spirit of the
// TSP view of offset assignment (Jünger & Mallach, the paper's ref [4]):
// starting from any ordering, repeatedly apply the best of two move
// families until a local optimum is reached:
//
//   - swap: exchange the offsets of two variables;
//   - segment reversal: the classic 2-opt move, reversing a contiguous
//     offset range.
//
// The objective evaluated is the true intra-DBC shift cost of the
// DBC-restricted subsequence (not just the access-graph approximation),
// so a TwoOpt pass can only improve or keep the cost of whatever
// heuristic ran before it. Cost is O(passes * k^2 * m) for k variables
// and m restricted accesses; intended as a polish pass after Chen or
// ShiftsReduce, and as the optional '+2opt' ablation in bench_test.go.
func TwoOpt(vars []int, s *trace.Sequence, a *trace.Analysis) []int {
	order := append([]int(nil), vars...)
	if len(order) < 3 {
		return order
	}
	member := membership(order, s.NumVars())
	restricted := s.Restrict(func(v int) bool { return v < len(member) && member[v] })
	if restricted.Len() < 2 {
		return order
	}

	pos := make([]int, s.NumVars())
	cost := func() int64 {
		for i, v := range order {
			pos[v] = i
		}
		var total int64
		prev := -1
		for _, acc := range restricted.Accesses {
			if prev >= 0 {
				d := pos[acc.Var] - pos[prev]
				if d < 0 {
					d = -d
				}
				total += int64(d)
			}
			prev = acc.Var
		}
		return total
	}

	best := cost()
	const maxPasses = 24
	for pass := 0; pass < maxPasses; pass++ {
		improved := false
		for i := 0; i < len(order); i++ {
			for j := i + 1; j < len(order); j++ {
				// Try swap.
				order[i], order[j] = order[j], order[i]
				if c := cost(); c < best {
					best = c
					improved = true
					continue
				}
				order[i], order[j] = order[j], order[i]

				// Try reversal of [i, j].
				reverse(order, i, j)
				if c := cost(); c < best {
					best = c
					improved = true
					continue
				}
				reverse(order, i, j)
			}
		}
		if !improved {
			break
		}
	}
	return order
}

func reverse(s []int, i, j int) {
	for i < j {
		s[i], s[j] = s[j], s[i]
		i++
		j--
	}
}
