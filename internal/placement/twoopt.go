package placement

import (
	"repro/internal/trace"
)

// maxTwoOptPasses bounds the number of improvement sweeps; local optima
// are normally reached in far fewer.
const maxTwoOptPasses = 24

// TwoOpt is an intra-DBC local-search improver in the spirit of the
// TSP view of offset assignment (Jünger & Mallach, the paper's ref [4]):
// starting from any ordering, repeatedly apply the first improving move of
// two move families until a local optimum is reached:
//
//   - swap: exchange the offsets of two variables;
//   - segment reversal: the classic 2-opt move, reversing a contiguous
//     offset range.
//
// The objective evaluated is the true intra-DBC shift cost of the
// DBC-restricted subsequence (not just the access-graph approximation),
// so a TwoOpt pass can only improve or keep the cost of whatever
// heuristic ran before it.
//
// Moves are evaluated incrementally through DeltaEvaluator (delta.go):
// after an O(m) setup per DBC, a candidate swap costs O(freq(u)+freq(v))
// and a candidate reversal touches only boundary-crossing transitions,
// instead of the seed's O(m) full recompute per candidate. The search
// trajectory is identical to the seed implementation move-for-move
// (TestTwoOptMatchesReference pins this against the reference kept in
// twoopt_reference_test.go). Intended as a polish pass after Chen or
// ShiftsReduce, and as the optional '+2opt' ablation in bench_test.go.
func TwoOpt(vars []int, s *trace.Sequence, a *trace.Analysis) []int {
	return twoOptWithKernel(vars, s, nil)
}

// twoOptWithKernel is TwoOpt with an optional cost kernel: when kern
// summarizes s, the per-DBC DeltaEvaluator setup derives from it in
// O(nnz) instead of replaying the stream. Search behaviour is identical.
func twoOptWithKernel(vars []int, s *trace.Sequence, kern *CostKernel) []int {
	order := append([]int(nil), vars...)
	if len(order) < 3 {
		return order
	}
	var e *DeltaEvaluator
	if kern != nil && kern.Sequence() == s {
		e = NewDeltaEvaluatorFromKernel(kern, order)
	} else {
		e = NewDeltaEvaluator(s, order)
	}
	if e.Accesses() < 2 {
		return order
	}
	for pass := 0; pass < maxTwoOptPasses; pass++ {
		if !e.ImprovePass() {
			break
		}
	}
	return e.CurrentOrder()
}

// twoOptPort is the TwoOpt sweep under the multi-port cost model: the
// same move families, first-improvement rule and pass bound, evaluated
// by the PortDeltaEvaluator's exact restricted replay instead of the
// single-port O(freq) deltas. Like TwoOpt it can only keep or improve
// the order's cost — under the *port* objective — so a port polish pass
// appended to any heuristic order never scores worse than that order on
// a multi-port device.
func twoOptPort(vars []int, s *trace.Sequence, m *PortModel) []int {
	order := append([]int(nil), vars...)
	if len(order) < 3 {
		return order
	}
	e := NewPortDeltaEvaluator(s, order, m)
	if e.Accesses() < 2 {
		return order
	}
	for pass := 0; pass < maxTwoOptPasses; pass++ {
		if !e.ImprovePass() {
			break
		}
	}
	return e.CurrentOrder()
}
