package placement

import (
	"fmt"
	"sync"

	"repro/internal/rtm"
	"repro/internal/trace"
)

// ShiftCost replays the access sequence against the placement and returns
// the total number of shift operations under the paper's cost model: per
// DBC, each access costs the absolute offset distance from the previously
// accessed variable in that DBC; the first access of each DBC is free.
//
// The replay is the repository's cost *oracle*: every other evaluator —
// the O(nnz) CostKernel full evaluation and the O(freq) DeltaEvaluator
// move evaluation — is pinned bit-identical to it (see DESIGN.md §8).
// Hot paths that evaluate many placements of one sequence should build a
// CostKernel instead; ShiftCost replays the stream at O(accesses) and is
// equivalent to driving one rtm.ShiftEngine per DBC with one port per
// track (see TestCostMatchesEngine).
func ShiftCost(s *trace.Sequence, p *Placement) (int64, error) {
	l, err := p.BuildLookup(s.NumVars())
	if err != nil {
		return 0, err
	}
	sc := replayPool.Get().(*replayScratch)
	c := shiftCostLookup(s, l, sc.grow(numDBCsIn(l)))
	replayPool.Put(sc)
	return c, nil
}

// replayScratch is the reusable last-offset buffer of the replay loop,
// pooled so repeated ShiftCost calls stop allocating per call.
type replayScratch struct{ last []int }

var replayPool = sync.Pool{New: func() any { return new(replayScratch) }}

// grow returns the scratch resized to q entries, reusing the backing
// array when it is large enough. shiftCostLookup resets the contents.
func (sc *replayScratch) grow(q int) []int {
	if cap(sc.last) < q {
		sc.last = make([]int, q)
	}
	sc.last = sc.last[:q]
	return sc.last
}

// shiftCostLookup is the allocation-free inner loop of the replay path.
// The lookup must cover every accessed variable; last must have one entry
// per DBC of the lookup (callers thread a reusable buffer through).
func shiftCostLookup(s *trace.Sequence, l *Lookup, last []int) int64 {
	// last[d] is the offset of the previously accessed variable in DBC d,
	// or -1 when the DBC is still cold.
	for i := range last {
		last[i] = -1
	}
	var total int64
	for _, a := range s.Accesses {
		d := l.DBCOf[a.Var]
		off := l.Offset[a.Var]
		if prev := last[d]; prev >= 0 {
			if off > prev {
				total += int64(off - prev)
			} else {
				total += int64(prev - off)
			}
		}
		last[d] = off
	}
	return total
}

// shiftCostLookupBounded is shiftCostLookup with an abort threshold: the
// running total only grows, so once it reaches bound the final cost
// provably does too and the replay stops. Exact below bound; at or
// above bound the value is only a certificate that cost >= bound.
// Best-of-N searches use it to discard losing placements early.
func shiftCostLookupBounded(s *trace.Sequence, l *Lookup, last []int, bound int64) int64 {
	for i := range last {
		last[i] = -1
	}
	var total int64
	for _, a := range s.Accesses {
		d := l.DBCOf[a.Var]
		off := l.Offset[a.Var]
		if prev := last[d]; prev >= 0 {
			if off > prev {
				total += int64(off - prev)
			} else {
				total += int64(prev - off)
			}
			if total >= bound {
				return total
			}
		}
		last[d] = off
	}
	return total
}

// shiftCostPerDBC is the replay loop with per-DBC attribution: one
// O(accesses) pass prices every DBC of the placement at once (the GA's
// DBC cost cache uses it to fill all missing entries together when a
// placement shares little with previously priced ones). per must hold
// one entry per DBC; it is zeroed here.
func shiftCostPerDBC(s *trace.Sequence, l *Lookup, last []int, per []int64) {
	for i := range last {
		last[i] = -1
		per[i] = 0
	}
	for _, a := range s.Accesses {
		d := l.DBCOf[a.Var]
		off := l.Offset[a.Var]
		if prev := last[d]; prev >= 0 {
			if off > prev {
				per[d] += int64(off - prev)
			} else {
				per[d] += int64(prev - off)
			}
		}
		last[d] = off
	}
}

func numDBCsIn(l *Lookup) int {
	max := 0
	for _, d := range l.DBCOf {
		if d+1 > max {
			max = d + 1
		}
	}
	return max
}

// CostBreakdown reports the per-DBC shift totals and access counts,
// mirroring the S0/S1 decomposition in Fig. 3 of the paper.
type CostBreakdown struct {
	PerDBC   []int64
	Accesses []int64
	Total    int64
}

// ShiftCostBreakdown is ShiftCost with per-DBC attribution.
func ShiftCostBreakdown(s *trace.Sequence, p *Placement) (*CostBreakdown, error) {
	l, err := p.BuildLookup(s.NumVars())
	if err != nil {
		return nil, err
	}
	q := len(p.DBC)
	b := &CostBreakdown{PerDBC: make([]int64, q), Accesses: make([]int64, q)}
	last := make([]int, q)
	for i := range last {
		last[i] = -1
	}
	for i, a := range s.Accesses {
		d := l.DBCOf[a.Var]
		if d < 0 || d >= q {
			return nil, fmt.Errorf("placement: access %d to unplaced variable %s", i, s.Name(a.Var))
		}
		off := l.Offset[a.Var]
		if prev := last[d]; prev >= 0 {
			delta := off - prev
			if delta < 0 {
				delta = -delta
			}
			b.PerDBC[d] += int64(delta)
			b.Total += int64(delta)
		}
		last[d] = off
		b.Accesses[d]++
	}
	return b, nil
}

// EngineCost replays the sequence through rtm shift engines, one per DBC,
// supporting multi-port geometries. domainsPerDBC must be at least the
// fullest DBC of the placement; ports is the number of access ports per
// track, spread by the canonical rtm.PortPositions rule over
// domainsPerDBC domains. With ports == 1 this matches ShiftCost exactly.
//
// EngineCost (and EngineCostAt, its explicit-layout form) is the
// repository's multi-port cost *oracle*: the allocation-free PortModel
// evaluators in portcost.go are pinned bit-identical to it
// (FuzzPortCostParity). Hot paths use those; this replay exists to be
// trivially correct by construction.
func EngineCost(s *trace.Sequence, p *Placement, domainsPerDBC, ports int) (int64, error) {
	pos, err := rtm.PortPositions(domainsPerDBC, ports)
	if err != nil {
		return 0, err
	}
	return EngineCostAt(s, p, domainsPerDBC, pos)
}

// EngineCostAt is EngineCost with an explicit port layout, for devices
// whose track length grew past the geometry the ports were fabricated
// for (the layout then derives from the geometry's length, not the
// grown one — see rtm.NewShiftEngineAt and sim.RunSequence).
func EngineCostAt(s *trace.Sequence, p *Placement, domainsPerDBC int, portPos []int) (int64, error) {
	if n := p.MaxDBCLen(); domainsPerDBC < n {
		return 0, fmt.Errorf("placement: DBC holds %d variables but device has %d domains", n, domainsPerDBC)
	}
	l, err := p.BuildLookup(s.NumVars())
	if err != nil {
		return 0, err
	}
	engines := make([]*rtm.ShiftEngine, len(p.DBC))
	for i := range engines {
		e, err := rtm.NewShiftEngineAt(domainsPerDBC, portPos)
		if err != nil {
			return 0, err
		}
		engines[i] = e
	}
	var total int64
	for i, a := range s.Accesses {
		d := l.DBCOf[a.Var]
		if d < 0 {
			return 0, fmt.Errorf("placement: access %d to unplaced variable %s", i, s.Name(a.Var))
		}
		c, err := engines[d].Access(l.Offset[a.Var])
		if err != nil {
			return 0, err
		}
		total += int64(c)
	}
	return total, nil
}

// LowerBound returns a simple lower bound on the shift cost of any
// placement into q DBCs. For q == 1 every transition between distinct
// variables costs at least one shift (distinct variables occupy distinct
// offsets), so the non-self transition count bounds the cost from below.
// For q > 1 a transition pair can be split across DBCs at zero cost, so
// the only safe generic bound is zero.
func LowerBound(s *trace.Sequence, q int) int64 {
	if q > 1 {
		return 0
	}
	g := trace.BuildGraph(s)
	return int64(g.TotalWeight())
}
