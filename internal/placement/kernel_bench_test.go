package placement

import (
	"testing"

	"repro/internal/trace"
)

// kernelBenchWorkload is the XL workload of delta_bench_test.go placed
// into 4 DBCs by the DMA heuristic — the shape every full-cost hot path
// (GA fitness, RW scoring, driver re-pricing) evaluates.
func kernelBenchWorkload(b *testing.B) (*trace.Sequence, *Placement) {
	b.Helper()
	s, _, a := twoOptBenchWorkload(b)
	r, err := DMA(a, 4, 0)
	if err != nil {
		b.Fatal(err)
	}
	return s, r.Placement
}

// BenchmarkShiftCost measures the replay oracle: one full O(accesses)
// walk of the stream per evaluation. This is the PR 2 baseline every
// full evaluation used to pay.
func BenchmarkShiftCost(b *testing.B) {
	s, p := kernelBenchWorkload(b)
	b.ReportAllocs()
	b.ResetTimer()
	var sink int64
	for i := 0; i < b.N; i++ {
		c, err := ShiftCost(s, p)
		if err != nil {
			b.Fatal(err)
		}
		sink += c
	}
	b.SetBytes(int64(s.Len()))
	_ = sink
}

// BenchmarkKernelCost measures the steady-state kernel evaluation —
// fillLookup plus the O(nnz) stencil scan, exactly the GA fitness inner
// loop. The acceptance bar is 0 allocs/op (gated in CI via benchjson).
func BenchmarkKernelCost(b *testing.B) {
	s, p := kernelBenchWorkload(b)
	k := NewCostKernel(s)
	lookup := &Lookup{DBCOf: make([]int, s.NumVars()), Offset: make([]int, s.NumVars())}
	want, err := ShiftCost(s, p)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	var got int64
	for i := 0; i < b.N; i++ {
		fillLookup(lookup, p)
		got = k.Cost(lookup)
	}
	b.StopTimer()
	if got != want {
		b.Fatalf("kernel %d, replay %d", got, want)
	}
	b.ReportMetric(float64(k.NNZ()), "nnz")
}

// BenchmarkKernelBuild isolates the once-per-sequence kernel
// construction (recency walk + stencil dedup) that amortizes over every
// subsequent evaluation.
func BenchmarkKernelBuild(b *testing.B) {
	s, _ := kernelBenchWorkload(b)
	b.ResetTimer()
	var k *CostKernel
	for i := 0; i < b.N; i++ {
		k = NewCostKernel(s)
	}
	b.StopTimer()
	if k.NNZ() == 0 {
		b.Fatal("empty kernel")
	}
	b.SetBytes(int64(s.Len()))
}

// BenchmarkStreamingKernel measures out-of-core kernel construction:
// one pass over a synthetic loop-structured generator stream (the trace
// is never materialized), the path the CI bigtrace job runs under a
// memory ceiling. SetBytes is the stream length, so MB/s reads as
// accesses/µs.
func BenchmarkStreamingKernel(b *testing.B) {
	cfg := trace.SynthConfig{Vars: 2048, Accesses: 1 << 20, Seed: 13}
	b.SetBytes(cfg.Accesses)
	b.ReportAllocs()
	b.ResetTimer()
	var k *CostKernel
	for i := 0; i < b.N; i++ {
		r, err := trace.NewSynthReader(cfg)
		if err != nil {
			b.Fatal(err)
		}
		k, err = NewCostKernelStream(r.NumVars(), r)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	if k.NNZ() == 0 || k.Accesses() != int(cfg.Accesses) {
		b.Fatalf("bad kernel %v", k)
	}
	b.ReportMetric(float64(k.NNZ()), "nnz")
}

// BenchmarkDeltaSetupFromKernel measures deriving a DBC's incremental
// evaluator from a shared kernel, the O(nnz) replacement for the O(m)
// replay setup the memetic GA mutation used to pay per call.
func BenchmarkDeltaSetupFromKernel(b *testing.B) {
	s, p := kernelBenchWorkload(b)
	k := NewCostKernel(s)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e := NewDeltaEvaluatorFromKernel(k, p.DBC[i%len(p.DBC)])
		if e.Len() == 0 {
			b.Fatal("empty evaluator")
		}
	}
}
