package placement

import (
	"sort"

	"repro/internal/trace"
)

// An IntraHeuristic reorders the variables of one DBC to reduce intra-DBC
// shift cost. It receives the DBC's variable set (in inter-DBC assignment
// order), the full access sequence and its analysis, and returns the new
// offset order. Implementations must return a permutation of vars.
type IntraHeuristic func(vars []int, s *trace.Sequence, a *trace.Analysis) []int

// Identity keeps the inter-DBC assignment order. It reproduces the layout
// arithmetic of the paper's Fig. 3 example.
func Identity(vars []int, _ *trace.Sequence, _ *trace.Analysis) []int {
	return append([]int(nil), vars...)
}

// OFU orders variables by their first use in the sequence — the paper's
// baseline intra-DBC placement ("order of first use").
func OFU(vars []int, _ *trace.Sequence, a *trace.Analysis) []int {
	out := append([]int(nil), vars...)
	sort.SliceStable(out, func(i, j int) bool {
		fi, fj := a.First[out[i]], a.First[out[j]]
		if fi == 0 {
			fi = 1 << 30 // never accessed: last
		}
		if fj == 0 {
			fj = 1 << 30
		}
		return fi < fj
	})
	return out
}

// Chen implements the single-DBC placement heuristic of Chen et al.
// (TVLSI 2016), which descends from the classic single-offset-assignment
// greedy of Liao: consider access-graph edges in descending weight and
// accept an edge when both endpoints still have spare degree (< 2) and no
// cycle forms, producing a set of paths; concatenate the paths (heaviest
// first) and append isolated variables by descending frequency. Heavily
// communicating variables thus end up at adjacent offsets.
//
// The access graph is built from the DBC-restricted subsequence: after the
// inter-DBC split, each DBC only observes its own accesses, so edge
// weights must count pairs consecutive within the restriction.
func Chen(vars []int, s *trace.Sequence, a *trace.Analysis) []int {
	if len(vars) <= 2 {
		return OFU(vars, s, a)
	}
	member := membership(vars, s.NumVars())
	g := trace.BuildSubgraph(s, func(v int) bool { return member[v] })

	// Greedy path cover over the edges incident to vars.
	degree := make(map[int]int, len(vars))
	next := make(map[int][]int, len(vars)) // adjacency in the chosen path set
	parent := make(map[int]int, len(vars)) // union-find
	var find func(x int) int
	find = func(x int) int {
		r, ok := parent[x]
		if !ok || r == x {
			return x
		}
		root := find(r)
		parent[x] = root
		return root
	}
	for _, e := range g.Edges() {
		if !member[e.U] || !member[e.V] {
			continue
		}
		if degree[e.U] >= 2 || degree[e.V] >= 2 {
			continue
		}
		ru, rv := find(e.U), find(e.V)
		if ru == rv {
			continue // would close a cycle
		}
		parent[ru] = rv
		degree[e.U]++
		degree[e.V]++
		next[e.U] = append(next[e.U], e.V)
		next[e.V] = append(next[e.V], e.U)
	}

	// Walk each path from an endpoint (degree <= 1). Paths are emitted
	// heaviest-first so hot clusters occupy contiguous low offsets;
	// deterministic order via sorted endpoints.
	visited := make(map[int]bool, len(vars))
	type path struct {
		nodes  []int
		weight int
	}
	var paths []path
	endpoints := make([]int, 0, len(vars))
	for _, v := range vars {
		if degree[v] <= 1 && len(next[v]) > 0 {
			endpoints = append(endpoints, v)
		}
	}
	sort.Ints(endpoints)
	for _, start := range endpoints {
		if visited[start] {
			continue
		}
		p := path{}
		cur, prev := start, -1
		for {
			visited[cur] = true
			p.nodes = append(p.nodes, cur)
			advanced := false
			for _, n := range next[cur] {
				if n != prev && !visited[n] {
					p.weight += g.Weight(cur, n)
					prev, cur = cur, n
					advanced = true
					break
				}
			}
			if !advanced {
				break
			}
		}
		paths = append(paths, p)
	}
	sort.SliceStable(paths, func(i, j int) bool { return paths[i].weight > paths[j].weight })

	out := make([]int, 0, len(vars))
	for _, p := range paths {
		out = append(out, p.nodes...)
	}
	// Isolated variables (no accepted edges): descending frequency.
	var isolated []int
	for _, v := range vars {
		if !visited[v] {
			isolated = append(isolated, v)
		}
	}
	sortByFreqDesc(a, isolated)
	out = append(out, isolated...)
	return out
}

// ShiftsReduce implements the intra-DBC heuristic of Khan et al.
// ("ShiftsReduce: Minimizing Shifts in Racetrack Memory 4.0"): the most
// connected variable seeds the layout, and remaining variables are added
// one at a time — always the unplaced variable with the largest total edge
// weight to the placed set — to whichever end of the current arrangement
// minimizes its distance-weighted communication with the already placed
// variables. Hot variables therefore gravitate toward the centre of the
// DBC, reducing the average travel.
func ShiftsReduce(vars []int, s *trace.Sequence, a *trace.Analysis) []int {
	if len(vars) <= 2 {
		return OFU(vars, s, a)
	}
	member := membership(vars, s.NumVars())
	g := trace.BuildSubgraph(s, func(v int) bool { return member[v] })

	// Seed: maximum weighted degree; ties by frequency then index for
	// determinism.
	best := -1
	for _, v := range vars {
		if best == -1 {
			best = v
			continue
		}
		dv, db := g.Degree(v), g.Degree(best)
		if dv > db || (dv == db && (a.Freq[v] > a.Freq[best] ||
			(a.Freq[v] == a.Freq[best] && v < best))) {
			best = v
		}
	}

	// arrangement as a deque.
	arr := []int{best}
	placed := map[int]bool{best: true}
	pos := map[int]int{best: 0} // logical position; left end may go negative
	left, right := 0, 0

	for len(arr) < len(vars) {
		// Pick the unplaced variable with max attachment weight.
		pick, pickW := -1, -1
		for _, v := range vars {
			if placed[v] {
				continue
			}
			w := 0
			for _, u := range g.Neighbors(v) {
				if placed[u] {
					w += g.Weight(u, v)
				}
			}
			if w > pickW || (w == pickW && pick != -1 && a.Freq[v] > a.Freq[pick]) ||
				(w == pickW && pick != -1 && a.Freq[v] == a.Freq[pick] && v < pick) || pick == -1 {
				pick, pickW = v, w
			}
		}
		// Cost of placing at the left vs right end: distance-weighted
		// attachment to the placed set.
		costAt := func(p int) int {
			c := 0
			for _, u := range g.Neighbors(pick) {
				if placed[u] {
					d := pos[u] - p
					if d < 0 {
						d = -d
					}
					c += d * g.Weight(u, pick)
				}
			}
			return c
		}
		lc, rc := costAt(left-1), costAt(right+1)
		if lc < rc {
			left--
			pos[pick] = left
			arr = append([]int{pick}, arr...)
		} else {
			right++
			pos[pick] = right
			arr = append(arr, pick)
		}
		placed[pick] = true
	}
	return arr
}

// membership builds a dense membership mask for a variable subset.
func membership(vars []int, numVars int) []bool {
	m := make([]bool, numVars)
	for _, v := range vars {
		if v >= 0 && v < numVars {
			m[v] = true
		}
	}
	return m
}

// ApplyIntra runs an intra-DBC heuristic on DBCs [from, to) of the
// placement, returning a new placement. Used to pair DMA with Chen or
// ShiftsReduce on the non-disjoint DBCs only (Algorithm 1 lines 22-23) and
// with AFD on all DBCs.
func ApplyIntra(p *Placement, from, to int, h IntraHeuristic, s *trace.Sequence, a *trace.Analysis) *Placement {
	out := p.Clone()
	if from < 0 {
		from = 0
	}
	if to > len(out.DBC) {
		to = len(out.DBC)
	}
	for d := from; d < to; d++ {
		if len(out.DBC[d]) > 1 {
			out.DBC[d] = h(out.DBC[d], s, a)
		}
	}
	return out
}
