package placement

import (
	"math/rand"
	"testing"

	"repro/internal/trace"
)

func intraCost(t testing.TB, order []int, s *trace.Sequence) int64 {
	t.Helper()
	p := &Placement{DBC: [][]int{order}}
	// Restrict to the ordered variables only: unplaced variables would
	// fail validation, so test sequences place everything.
	c, err := ShiftCost(s, p)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// TwoOpt never worsens any starting order, and always returns a
// permutation.
func TestTwoOptNeverWorsens(t *testing.T) {
	rng := rand.New(rand.NewSource(20))
	for trial := 0; trial < 40; trial++ {
		n := 3 + rng.Intn(8)
		s := randSeq(rng, n, 20+rng.Intn(60))
		a := trace.Analyze(s)
		vars := a.ByFirstUse()
		if len(vars) < 3 {
			continue
		}
		before := intraCost(t, vars, s)
		improved := TwoOpt(vars, s, a)
		after := intraCost(t, improved, s)
		if after > before {
			t.Fatalf("trial %d: TwoOpt worsened %d -> %d", trial, before, after)
		}
		seen := map[int]bool{}
		for _, v := range improved {
			if seen[v] {
				t.Fatalf("duplicate %d in %v", v, improved)
			}
			seen[v] = true
		}
		if len(improved) != len(vars) {
			t.Fatalf("length changed: %d -> %d", len(vars), len(improved))
		}
	}
}

// On small instances TwoOpt from an OFU start must reach the exact
// optimum most of the time; verify it never beats the optimum and reaches
// it from at least half the trials (local search may stick occasionally).
func TestTwoOptNearOptimal(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	reached := 0
	trials := 0
	for trial := 0; trial < 20; trial++ {
		n := 3 + rng.Intn(4) // 3..6 vars
		s := randSeq(rng, n, 15+rng.Intn(30))
		a := trace.Analyze(s)
		vars := a.ByFirstUse()
		if len(vars) < 3 {
			continue
		}
		trials++
		improved := TwoOpt(OFU(vars, s, a), s, a)
		got := intraCost(t, improved, s)
		_, opt, err := IntraExact(vars, s)
		if err != nil {
			t.Fatal(err)
		}
		if got < opt {
			t.Fatalf("TwoOpt (%d) beat the exact optimum (%d) — cost bug", got, opt)
		}
		if got == opt {
			reached++
		}
	}
	if trials > 0 && reached*2 < trials {
		t.Errorf("TwoOpt reached the optimum in only %d/%d trials", reached, trials)
	}
}

func TestTwoOptImprovesBadOrder(t *testing.T) {
	// Adversarial start: heavy pair placed at opposite ends.
	s := trace.NewSequence(0, 1, 0, 1, 0, 1, 0, 1, 2, 3, 4)
	a := trace.Analyze(s)
	bad := []int{0, 2, 3, 4, 1}
	before := intraCost(t, bad, s)
	improved := TwoOpt(bad, s, a)
	after := intraCost(t, improved, s)
	if after >= before {
		t.Errorf("TwoOpt did not improve adversarial order: %d -> %d", before, after)
	}
}

func TestTwoOptTinyInputs(t *testing.T) {
	s := trace.NewSequence(0, 1)
	a := trace.Analyze(s)
	if got := TwoOpt([]int{0}, s, a); len(got) != 1 || got[0] != 0 {
		t.Errorf("single var: %v", got)
	}
	if got := TwoOpt([]int{0, 1}, s, a); len(got) != 2 {
		t.Errorf("two vars: %v", got)
	}
	if got := TwoOpt(nil, s, a); len(got) != 0 {
		t.Errorf("empty: %v", got)
	}
}
