package tensor

import (
	"testing"

	"repro/internal/placement"
	"repro/internal/trace"
)

func TestTraceShape(t *testing.T) {
	c := Contraction{I: 2, J: 3, K: 4, Order: IJK, Accumulate: true}
	s, err := c.Trace()
	if err != nil {
		t.Fatal(err)
	}
	// Each of the I*J*K updates touches A, B, C(read), C(write).
	wantLen := 2 * 3 * 4 * 4
	if s.Len() != wantLen {
		t.Errorf("trace length = %d, want %d", s.Len(), wantLen)
	}
	if s.NumVars() != c.Variables() {
		t.Errorf("variables = %d, want %d", s.NumVars(), c.Variables())
	}
	// One write per update.
	if s.Writes() != 2*3*4 {
		t.Errorf("writes = %d, want %d", s.Writes(), 2*3*4)
	}
}

func TestNoAccumulateSkipsReadOfC(t *testing.T) {
	c := Contraction{I: 2, J: 2, K: 2, Accumulate: false}
	s, err := c.Trace()
	if err != nil {
		t.Fatal(err)
	}
	if s.Len() != 2*2*2*3 {
		t.Errorf("length = %d, want %d", s.Len(), 2*2*2*3)
	}
}

func TestValidate(t *testing.T) {
	bad := []Contraction{
		{I: 0, J: 1, K: 1},
		{I: 1, J: -1, K: 1},
		{I: 1, J: 1, K: 1, Order: "kji"},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("case %d accepted: %+v", i, c)
		}
		if _, err := c.Trace(); err == nil {
			t.Errorf("case %d traced: %+v", i, c)
		}
	}
}

func TestLoopOrdersVisitSameWork(t *testing.T) {
	// All orders perform the same updates: identical per-variable access
	// frequencies, different orderings.
	var freqs [][]int
	for _, order := range []LoopOrder{IJK, IKJ, JKI} {
		c := Contraction{I: 3, J: 3, K: 3, Order: order, Accumulate: true}
		s, err := c.Trace()
		if err != nil {
			t.Fatal(err)
		}
		a := trace.Analyze(s)
		// Index frequencies by name for cross-order comparison.
		byName := make(map[string]int)
		for v, f := range a.Freq {
			byName[s.Name(v)] = f
		}
		flat := make([]int, 0, len(byName))
		for _, name := range sortedKeys(byName) {
			flat = append(flat, byName[name])
		}
		freqs = append(freqs, flat)
	}
	for i := 1; i < len(freqs); i++ {
		if len(freqs[i]) != len(freqs[0]) {
			t.Fatal("variable sets differ between orders")
		}
		for j := range freqs[i] {
			if freqs[i][j] != freqs[0][j] {
				t.Fatalf("order %d frequency mismatch at %d", i, j)
			}
		}
	}
}

func sortedKeys(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	for i := 1; i < len(keys); i++ {
		for j := i; j > 0 && keys[j] < keys[j-1]; j-- {
			keys[j], keys[j-1] = keys[j-1], keys[j]
		}
	}
	return keys
}

func TestLoopOrderAffectsShiftCost(t *testing.T) {
	// The LCTES observation: loop order changes reuse distance and thus
	// shift cost under the same placement strategy.
	costs := map[LoopOrder]int64{}
	for _, order := range []LoopOrder{IJK, IKJ, JKI} {
		c := Contraction{I: 4, J: 4, K: 4, Order: order, Accumulate: true}
		s, err := c.Trace()
		if err != nil {
			t.Fatal(err)
		}
		_, cost, err := placement.Place(placement.StrategyDMASR, s, 4, placement.Options{})
		if err != nil {
			t.Fatal(err)
		}
		costs[order] = cost
	}
	distinct := map[int64]bool{}
	for _, c := range costs {
		distinct[c] = true
	}
	if len(distinct) < 2 {
		t.Errorf("all loop orders cost the same (%v); reuse structure lost", costs)
	}
}

func TestPlacementBeatsBaselineOnContraction(t *testing.T) {
	c := Contraction{I: 6, J: 6, K: 6, Order: IJK, Accumulate: true}
	s, err := c.Trace()
	if err != nil {
		t.Fatal(err)
	}
	_, afd, err := placement.Place(placement.StrategyAFDOFU, s, 8, placement.Options{})
	if err != nil {
		t.Fatal(err)
	}
	_, sr, err := placement.Place(placement.StrategyDMASR, s, 8, placement.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if sr > afd {
		t.Errorf("DMA-SR (%d) lost to AFD-OFU (%d) on a contraction", sr, afd)
	}
}

func TestBenchmark(t *testing.T) {
	b, err := Benchmark()
	if err != nil {
		t.Fatal(err)
	}
	if len(b.Sequences) != len(Suite()) {
		t.Errorf("sequences = %d, want %d", len(b.Sequences), len(Suite()))
	}
	for i, s := range b.Sequences {
		if err := s.Validate(); err != nil {
			t.Errorf("seq %d invalid: %v", i, err)
		}
	}
}
