// Package tensor generates scratchpad access traces for tiled tensor
// contractions — the workload of the paper's companion study (Khan et
// al., LCTES'19, the paper's ref [5]), which ran tensor contractions on
// racetrack-memory scratchpads. Each scratchpad-resident tile element is
// one memory object, so contraction loop nests produce long, highly
// structured access sequences: perfect stress tests for the placement
// algorithms, with tunable reuse distance via loop order and tile shape.
package tensor

import (
	"fmt"

	"repro/internal/trace"
)

// LoopOrder names the permutation of the (i, j, k) contraction loops.
type LoopOrder string

// The three canonical matmul loop orders.
const (
	// IJK is the inner-product order: C row-major, long A-row reuse.
	IJK LoopOrder = "ijk"
	// IKJ is the row-streaming order: B rows stream through the inner loop.
	IKJ LoopOrder = "ikj"
	// JKI is the column order: maximally strided accesses.
	JKI LoopOrder = "jki"
)

// Contraction describes a tiled matrix multiplication
// C[i,j] += A[i,k] * B[k,j] with all three tiles scratchpad-resident.
type Contraction struct {
	// I, J, K are the tile dimensions.
	I, J, K int
	// Order is the loop permutation.
	Order LoopOrder
	// Accumulate marks C accesses as read-modify-write (one read + one
	// write per update); otherwise C is write-only per update.
	Accumulate bool
}

// Validate checks the shape.
func (c Contraction) Validate() error {
	if c.I <= 0 || c.J <= 0 || c.K <= 0 {
		return fmt.Errorf("tensor: dimensions must be positive, got %dx%dx%d", c.I, c.J, c.K)
	}
	switch c.Order {
	case IJK, IKJ, JKI, "":
		return nil
	}
	return fmt.Errorf("tensor: unknown loop order %q", c.Order)
}

// Variables returns the number of distinct memory objects the trace
// touches: one per element of A, B and C.
func (c Contraction) Variables() int { return c.I*c.K + c.K*c.J + c.I*c.J }

// Trace emits the access sequence of the contraction. Element naming:
// A<i>_<k>, B<k>_<j>, C<i>_<j>.
func (c Contraction) Trace() (*trace.Sequence, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	order := c.Order
	if order == "" {
		order = IJK
	}
	var tokens []string
	update := func(i, j, k int) {
		a := fmt.Sprintf("A%d_%d", i, k)
		b := fmt.Sprintf("B%d_%d", k, j)
		cc := fmt.Sprintf("C%d_%d", i, j)
		tokens = append(tokens, a, b)
		if c.Accumulate {
			tokens = append(tokens, cc)
		}
		tokens = append(tokens, cc+"!")
	}
	switch order {
	case IJK:
		for i := 0; i < c.I; i++ {
			for j := 0; j < c.J; j++ {
				for k := 0; k < c.K; k++ {
					update(i, j, k)
				}
			}
		}
	case IKJ:
		for i := 0; i < c.I; i++ {
			for k := 0; k < c.K; k++ {
				for j := 0; j < c.J; j++ {
					update(i, j, k)
				}
			}
		}
	case JKI:
		for j := 0; j < c.J; j++ {
			for k := 0; k < c.K; k++ {
				for i := 0; i < c.I; i++ {
					update(i, j, k)
				}
			}
		}
	}
	return trace.NewNamedSequence(tokens...)
}

// Suite returns a set of contraction shapes spanning the regimes the
// LCTES study evaluates: small square tiles, skewed tiles, and the three
// loop orders on a common shape.
func Suite() []Contraction {
	return []Contraction{
		{I: 4, J: 4, K: 4, Order: IJK, Accumulate: true},
		{I: 4, J: 4, K: 4, Order: IKJ, Accumulate: true},
		{I: 4, J: 4, K: 4, Order: JKI, Accumulate: true},
		{I: 8, J: 2, K: 8, Order: IJK, Accumulate: true},
		{I: 2, J: 16, K: 2, Order: IKJ, Accumulate: true},
		{I: 6, J: 6, K: 6, Order: IJK, Accumulate: false},
	}
}

// Benchmark wraps the suite as a trace.Benchmark for the evaluation
// drivers.
func Benchmark() (*trace.Benchmark, error) {
	b := &trace.Benchmark{Name: "tensor"}
	for _, c := range Suite() {
		s, err := c.Trace()
		if err != nil {
			return nil, err
		}
		b.Sequences = append(b.Sequences, s)
	}
	return b, nil
}
