package cache

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/energy"
)

func mustCache(t testing.TB, cfg Config) *Cache {
	t.Helper()
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func cfg4x4() Config {
	return Config{Sets: 4, Ways: 4, LineBytes: 64, Policy: InsertLRU, Ports: 1}
}

func TestConfigValidate(t *testing.T) {
	if err := cfg4x4().Validate(); err != nil {
		t.Errorf("valid config rejected: %v", err)
	}
	bad := []Config{
		{Sets: 0, Ways: 1, LineBytes: 64, Ports: 1},
		{Sets: 1, Ways: 0, LineBytes: 64, Ports: 1},
		{Sets: 1, Ways: 1, LineBytes: 0, Ports: 1},
		{Sets: 1, Ways: 2, LineBytes: 64, Ports: 3},
		{Sets: 1, Ways: 2, LineBytes: 64, Ports: 0},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("case %d accepted: %+v", i, c)
		}
	}
	if _, err := New(Config{}); err == nil {
		t.Error("New accepted zero config")
	}
}

func TestColdMissThenHit(t *testing.T) {
	c := mustCache(t, cfg4x4())
	hit, _, err := c.Access(0x1000, false)
	if err != nil {
		t.Fatal(err)
	}
	if hit {
		t.Error("cold access hit")
	}
	hit, shifts, err := c.Access(0x1000, false)
	if err != nil {
		t.Fatal(err)
	}
	if !hit {
		t.Error("second access missed")
	}
	if shifts != 0 {
		t.Errorf("re-access shifted %d, want 0 (port already aligned)", shifts)
	}
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Fills != 1 {
		t.Errorf("stats = %+v", st)
	}
}

func TestSetDecomposition(t *testing.T) {
	c := mustCache(t, cfg4x4())
	// Addresses that differ only above set+line bits map to the same set
	// with different tags and must conflict once ways are exhausted.
	base := int64(0x40) // line 1 -> set 1
	for i := 0; i < 4; i++ {
		addr := base + int64(i)*64*4 // same set, different tags
		if hit, _, _ := c.Access(addr, false); hit {
			t.Fatalf("fill %d hit unexpectedly", i)
		}
	}
	// All four ways of set 1 now hold distinct tags; they all hit.
	for i := 0; i < 4; i++ {
		addr := base + int64(i)*64*4
		if hit, _, _ := c.Access(addr, false); !hit {
			t.Fatalf("way %d should hit", i)
		}
	}
	// A fifth tag evicts someone.
	if hit, _, _ := c.Access(base+4*64*4, false); hit {
		t.Fatal("fifth tag should miss")
	}
}

func TestLRUEviction(t *testing.T) {
	c := mustCache(t, Config{Sets: 1, Ways: 2, LineBytes: 64, Policy: InsertLRU, Ports: 1})
	c.Access(0*64, false) // tag 0 -> way 0
	c.Access(1*64, false) // tag 1 -> way 1
	c.Access(0*64, false) // touch tag 0
	c.Access(2*64, false) // evicts tag 1 (LRU)
	if hit, _, _ := c.Access(0*64, false); !hit {
		t.Error("tag 0 was evicted despite being MRU")
	}
	if hit, _, _ := c.Access(1*64, false); hit {
		t.Error("tag 1 should have been evicted")
	}
}

func TestWritebackAccounting(t *testing.T) {
	c := mustCache(t, Config{Sets: 1, Ways: 1, LineBytes: 64, Policy: InsertLRU, Ports: 1})
	c.Access(0, true)    // dirty fill
	c.Access(64, false)  // evicts dirty line -> writeback
	c.Access(128, false) // evicts clean line -> no writeback
	if wb := c.Stats().Writebacks; wb != 1 {
		t.Errorf("writebacks = %d, want 1", wb)
	}
}

// Reference model: a plain LRU cache with no RTM, to cross-check hit/miss
// decisions of the InsertLRU policy.
type refCache struct {
	sets      int
	ways      int
	lineBytes int
	lines     map[int][]int64 // set -> tags, most recent first
}

func (r *refCache) access(addr int64) bool {
	lineAddr := addr / int64(r.lineBytes)
	set := int(lineAddr % int64(r.sets))
	tag := lineAddr / int64(r.sets)
	tags := r.lines[set]
	for i, tg := range tags {
		if tg == tag {
			copy(tags[1:i+1], tags[:i])
			tags[0] = tag
			return true
		}
	}
	tags = append([]int64{tag}, tags...)
	if len(tags) > r.ways {
		tags = tags[:r.ways]
	}
	r.lines[set] = tags
	return false
}

func TestLRUMatchesReferenceModel(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	c := mustCache(t, Config{Sets: 8, Ways: 4, LineBytes: 32, Policy: InsertLRU, Ports: 1})
	ref := &refCache{sets: 8, ways: 4, lineBytes: 32, lines: map[int][]int64{}}
	for i := 0; i < 5000; i++ {
		addr := int64(rng.Intn(4096))
		got, _, err := c.Access(addr, rng.Intn(4) == 0)
		if err != nil {
			t.Fatal(err)
		}
		want := ref.access(addr)
		if got != want {
			t.Fatalf("access %d (addr %#x): cache hit=%v, reference hit=%v", i, addr, got, want)
		}
	}
}

func TestNearPortPolicyShiftsLess(t *testing.T) {
	// A scan workload with reuse: near-port insertion should spend fewer
	// shifts than plain LRU at a modest hit-ratio cost.
	run := func(policy Policy) Stats {
		c := mustCache(t, Config{Sets: 4, Ways: 8, LineBytes: 64, Policy: policy, Ports: 1})
		rng := rand.New(rand.NewSource(3))
		hot := make([]int64, 8)
		for i := range hot {
			hot[i] = int64(i * 64)
		}
		for i := 0; i < 8000; i++ {
			if rng.Intn(3) == 0 {
				// streaming access, little reuse
				c.Access(int64(8+rng.Intn(512))*64, false)
			} else {
				c.Access(hot[rng.Intn(len(hot))], false)
			}
		}
		return c.Stats()
	}
	lru := run(InsertLRU)
	near := run(InsertNearPort)
	if near.Shifts >= lru.Shifts {
		t.Errorf("near-port policy did not reduce shifts: %d vs %d", near.Shifts, lru.Shifts)
	}
	// The hit ratio should stay in the same ballpark (within 10 points).
	if near.HitRatio() < lru.HitRatio()-0.10 {
		t.Errorf("near-port policy destroyed hit ratio: %.3f vs %.3f",
			near.HitRatio(), lru.HitRatio())
	}
}

func TestEnergyConversion(t *testing.T) {
	c := mustCache(t, cfg4x4())
	c.Access(0, false)
	c.Access(64, true)
	c.Access(0, false)
	p, err := energy.ForDBCs(4)
	if err != nil {
		t.Fatal(err)
	}
	b := c.Energy(p)
	if b.TotalPJ() <= 0 {
		t.Error("no energy accounted")
	}
}

func TestReset(t *testing.T) {
	c := mustCache(t, cfg4x4())
	c.Access(0, true)
	c.Access(64, false)
	c.Reset()
	if c.Stats() != (Stats{}) {
		t.Errorf("stats not cleared: %+v", c.Stats())
	}
	if hit, _, _ := c.Access(0, false); hit {
		t.Error("line survived Reset")
	}
}

func TestAccessErrors(t *testing.T) {
	c := mustCache(t, cfg4x4())
	if _, _, err := c.Access(-1, false); err == nil {
		t.Error("negative address accepted")
	}
}

// Property: hit ratio stays in [0,1], shifts are non-negative, and the
// number of distinct resident tags never exceeds sets x ways.
func TestCacheInvariants(t *testing.T) {
	f := func(raw []uint16, policyRaw bool) bool {
		policy := InsertLRU
		if policyRaw {
			policy = InsertNearPort
		}
		c, err := New(Config{Sets: 2, Ways: 4, LineBytes: 16, Policy: policy, Ports: 1})
		if err != nil {
			return false
		}
		for _, r := range raw {
			if _, _, err := c.Access(int64(r), r%5 == 0); err != nil {
				return false
			}
		}
		st := c.Stats()
		if st.HitRatio() < 0 || st.HitRatio() > 1 {
			return false
		}
		if st.Shifts < 0 || st.Fills != st.Misses {
			return false
		}
		return st.Accesses() == int64(len(raw))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
