// Package cache models a set-associative cache whose data array is built
// from racetrack memory, in the spirit of TapeCache (Venkatesan et al.,
// ISLPED'12) and the array-organization study of Sun et al. — the
// cache-level deployments the paper's introduction motivates. Tags are
// SRAM (zero-shift); data lines live on RTM tracks, one set per DBC with
// one way per domain position, so hitting a way requires shifting the
// set's DBC until that way is under the access port.
//
// Two policies demonstrate why placement-style thinking matters even at
// the cache level:
//
//   - insertion: on a fill, InsertLRU victimizes the least-recently-used
//     way (classic), while InsertNearPort victimizes the way closest to
//     the current port position among the least-recently-used half —
//     trading a little hit ratio for much cheaper future alignment;
//   - the shift engine is shared with the placement study, so cache
//     shift counts are directly comparable with scratchpad numbers.
package cache

import (
	"fmt"

	"repro/internal/energy"
	"repro/internal/rtm"
)

// Policy selects the victim/insertion strategy.
type Policy int

const (
	// InsertLRU evicts the least recently used way.
	InsertLRU Policy = iota
	// InsertNearPort evicts, among the colder half of the ways, the one
	// whose domain position is cheapest to align.
	InsertNearPort
)

// Config describes the cache.
type Config struct {
	// Sets is the number of cache sets; each set occupies one DBC.
	Sets int
	// Ways is the associativity; each way occupies one domain position.
	Ways int
	// LineBytes is the cache-line size used for address decomposition.
	LineBytes int
	// Policy selects the insertion strategy.
	Policy Policy
	// Ports is the number of access ports per track.
	Ports int
}

// Validate checks the configuration.
func (c Config) Validate() error {
	switch {
	case c.Sets <= 0:
		return fmt.Errorf("cache: Sets must be positive, got %d", c.Sets)
	case c.Ways <= 0:
		return fmt.Errorf("cache: Ways must be positive, got %d", c.Ways)
	case c.LineBytes <= 0:
		return fmt.Errorf("cache: LineBytes must be positive, got %d", c.LineBytes)
	case c.Ports <= 0 || c.Ports > c.Ways:
		return fmt.Errorf("cache: Ports must be in [1,%d], got %d", c.Ways, c.Ports)
	}
	return nil
}

// Stats aggregates cache behaviour.
type Stats struct {
	Hits, Misses int64
	// Shifts counts RTM shift operations on the data array.
	Shifts int64
	// Fills counts line installations (== Misses; kept for clarity).
	Fills int64
	// Writebacks counts dirty evictions.
	Writebacks int64
}

// HitRatio returns hits / (hits + misses).
func (s Stats) HitRatio() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}

// Accesses returns the total number of cache accesses.
func (s Stats) Accesses() int64 { return s.Hits + s.Misses }

type line struct {
	tag   int64
	valid bool
	dirty bool
	// lastUse is a logical timestamp for LRU.
	lastUse int64
}

// Cache is the RTM-backed set-associative cache.
type Cache struct {
	cfg     Config
	sets    [][]line
	engines []*rtm.ShiftEngine
	clock   int64
	stats   Stats
}

// New builds a cache.
func New(cfg Config) (*Cache, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	c := &Cache{cfg: cfg}
	c.sets = make([][]line, cfg.Sets)
	c.engines = make([]*rtm.ShiftEngine, cfg.Sets)
	for i := range c.sets {
		c.sets[i] = make([]line, cfg.Ways)
		e, err := rtm.NewShiftEngine(cfg.Ways, cfg.Ports)
		if err != nil {
			return nil, err
		}
		c.engines[i] = e
	}
	return c, nil
}

// decompose splits a byte address into (set, tag).
func (c *Cache) decompose(addr int64) (int, int64) {
	lineAddr := addr / int64(c.cfg.LineBytes)
	set := int(lineAddr % int64(c.cfg.Sets))
	return set, lineAddr / int64(c.cfg.Sets)
}

// Access performs one cache access and reports whether it hit and how
// many data-array shifts it cost.
func (c *Cache) Access(addr int64, write bool) (hit bool, shifts int, err error) {
	if addr < 0 {
		return false, 0, fmt.Errorf("cache: negative address %d", addr)
	}
	c.clock++
	set, tag := c.decompose(addr)
	lines := c.sets[set]
	engine := c.engines[set]

	for w := range lines {
		if lines[w].valid && lines[w].tag == tag {
			n, err := engine.Access(w)
			if err != nil {
				return false, 0, err
			}
			lines[w].lastUse = c.clock
			if write {
				lines[w].dirty = true
			}
			c.stats.Hits++
			c.stats.Shifts += int64(n)
			return true, n, nil
		}
	}

	// Miss: choose a victim way, shift to it, install.
	w := c.victim(set)
	if lines[w].valid && lines[w].dirty {
		c.stats.Writebacks++
	}
	n, err := engine.Access(w)
	if err != nil {
		return false, 0, err
	}
	lines[w] = line{tag: tag, valid: true, dirty: write, lastUse: c.clock}
	c.stats.Misses++
	c.stats.Fills++
	c.stats.Shifts += int64(n)
	return false, n, nil
}

// victim selects the way to replace in a set.
func (c *Cache) victim(set int) int {
	lines := c.sets[set]
	// Invalid ways first (in port-distance order for the near-port
	// policy, index order otherwise).
	bestInvalid := -1
	for w := range lines {
		if !lines[w].valid {
			if bestInvalid < 0 || c.cheaper(set, w, bestInvalid) {
				bestInvalid = w
				if c.cfg.Policy == InsertLRU {
					return w
				}
			}
		}
	}
	if bestInvalid >= 0 {
		return bestInvalid
	}

	switch c.cfg.Policy {
	case InsertNearPort:
		// Consider the colder half (rounded up) of the ways by lastUse
		// and take the cheapest to align.
		half := (len(lines) + 1) / 2
		cold := coldestWays(lines, half)
		best := cold[0]
		for _, w := range cold[1:] {
			if c.cheaper(set, w, best) {
				best = w
			}
		}
		return best
	default:
		best := 0
		for w := 1; w < len(lines); w++ {
			if lines[w].lastUse < lines[best].lastUse {
				best = w
			}
		}
		return best
	}
}

// cheaper reports whether aligning way a costs fewer shifts than way b
// from the set's current port state.
func (c *Cache) cheaper(set, a, b int) bool {
	ca, errA := c.engines[set].CostOf(a)
	cb, errB := c.engines[set].CostOf(b)
	if errA != nil || errB != nil {
		return false
	}
	return ca < cb
}

// coldestWays returns the indices of the n least-recently-used ways.
func coldestWays(lines []line, n int) []int {
	idx := make([]int, len(lines))
	for i := range idx {
		idx[i] = i
	}
	// Insertion sort by lastUse (ways counts are small).
	for i := 1; i < len(idx); i++ {
		for j := i; j > 0 && lines[idx[j]].lastUse < lines[idx[j-1]].lastUse; j-- {
			idx[j], idx[j-1] = idx[j-1], idx[j]
		}
	}
	return idx[:n]
}

// Stats returns the accumulated statistics.
func (c *Cache) Stats() Stats { return c.stats }

// Energy converts the cache's event counts into the Table I energy model
// of the matching DBC count (sets = DBCs is the natural mapping; callers
// pass whichever Table I row matches their array).
func (c *Cache) Energy(p energy.Params) energy.Breakdown {
	counts := energy.Counts{
		Reads:  c.stats.Hits + c.stats.Misses, // every access touches the array once
		Writes: c.stats.Fills,                 // installs write the line
		Shifts: c.stats.Shifts,
	}
	return p.Energy(counts)
}

// Reset clears all lines, engines and statistics.
func (c *Cache) Reset() {
	for i := range c.sets {
		for w := range c.sets[i] {
			c.sets[i][w] = line{}
		}
		c.engines[i].Reset()
	}
	c.clock = 0
	c.stats = Stats{}
}
