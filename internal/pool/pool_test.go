package pool

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
)

func TestRunPositionStable(t *testing.T) {
	for _, workers := range []int{0, 1, 4, 16} {
		out := make([]int, 100)
		err := Run(context.Background(), len(out), workers, func(_ context.Context, i int) error {
			out[i] = i * i
			return nil
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i, v := range out {
			if v != i*i {
				t.Fatalf("workers=%d: out[%d] = %d, want %d", workers, i, v, i*i)
			}
		}
	}
}

func TestRunLowestIndexError(t *testing.T) {
	for _, workers := range []int{1, 7} {
		err := Run(context.Background(), 50, workers, func(_ context.Context, i int) error {
			if i%9 == 4 { // fails at 4, 13, 22, ...
				return fmt.Errorf("job %d failed", i)
			}
			return nil
		})
		if err == nil || err.Error() != "job 4 failed" {
			t.Fatalf("workers=%d: err = %v, want job 4 failed", workers, err)
		}
	}
}

func TestRunCancellationSkipsJobs(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var ran atomic.Int32
	err := Run(ctx, 1000, 4, func(ctx context.Context, i int) error {
		if ran.Add(1) == 10 {
			cancel()
		}
		return nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if n := ran.Load(); n >= 1000 {
		t.Fatalf("cancellation did not skip any jobs (ran %d)", n)
	}
}

func TestMapCollectsInOrder(t *testing.T) {
	out, err := Map(context.Background(), 20, 5, func(_ context.Context, i int) (string, error) {
		return fmt.Sprintf("v%d", i), nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range out {
		if v != fmt.Sprintf("v%d", i) {
			t.Fatalf("out[%d] = %q", i, v)
		}
	}
}
