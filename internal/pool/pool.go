// Package pool is the repository's deterministic worker pool — the one
// concurrency primitive every concurrent layer builds on (see DESIGN.md
// §4 and §11). The experiment engine fans batch jobs through it, and the
// placement package drives island-model GA rounds and strategy-portfolio
// races with it; keeping the pool in a leaf package lets placement use
// it without importing the engine (which imports placement).
//
// Determinism contract: Run executes one job per index of [0, n) on up to
// `workers` goroutines; callers write results only to their own index of
// pre-sized slices, so results are position-stable and independent of the
// worker count and of goroutine scheduling. Aggregations performed after
// Run returns therefore see results in input order.
package pool

import (
	"context"
	"errors"
	"sync"
)

// Run executes fn(ctx, i) for every i in [0, n) on up to `workers`
// goroutines (0 or 1 means sequential; workers are additionally capped at
// n). On failure it returns the error of the lowest-index failing job
// among those that ran, so error reporting does not flap with goroutine
// completion order.
//
// Cancellation: the supplied context is propagated to every job, and the
// first failure cancels the derived context, so long-running jobs can
// bail out early and unstarted jobs are skipped. Run itself stops
// dispatching once the context is done and returns ctx.Err() when no job
// error outranks it.
func Run(ctx context.Context, n, workers int, fn func(ctx context.Context, i int) error) error {
	if ctx == nil {
		ctx = context.Background()
	}
	if n <= 0 {
		return ctx.Err()
	}
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			if err := fn(ctx, i); err != nil {
				return err
			}
		}
		return nil
	}

	var (
		wg   sync.WaitGroup
		mu   sync.Mutex
		errI = -1 // index of the lowest failing job
		errV error
	)
	fail := func(i int, err error) {
		mu.Lock()
		// A job aborted by our own cancellation is a secondary failure;
		// never let it mask the root cause.
		if !(errV != nil && errors.Is(err, context.Canceled)) && (errI < 0 || i < errI) {
			errI, errV = i, err
		}
		mu.Unlock()
		cancel()
	}
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				if ctx.Err() != nil {
					// A sibling failed (or the caller cancelled): drain
					// the queue without running further jobs.
					continue
				}
				if err := fn(ctx, i); err != nil {
					fail(i, err)
				}
			}
		}()
	}
dispatch:
	for i := 0; i < n; i++ {
		select {
		case next <- i:
		case <-ctx.Done():
			break dispatch
		}
	}
	close(next)
	wg.Wait()
	if errV != nil {
		return errV
	}
	return ctx.Err()
}

// Map runs fn over [0, n) with Run and collects the results in input
// order. On error the partial results are discarded.
func Map[T any](ctx context.Context, n, workers int, fn func(ctx context.Context, i int) (T, error)) ([]T, error) {
	out := make([]T, n)
	err := Run(ctx, n, workers, func(ctx context.Context, i int) error {
		v, err := fn(ctx, i)
		if err != nil {
			return err
		}
		out[i] = v
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}
