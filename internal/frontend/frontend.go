// Package frontend is a miniature compiler front end that turns
// straight-line programs over scalar locals into the memory access
// sequences the placement algorithms consume. It exists to make the
// provenance of offset-assignment traces concrete: the paper's workloads
// (OffsetStone) are exactly such sequences extracted from compiled C
// functions, one sequence per function.
//
// The language is deliberately tiny — assignments over named scalars,
// bounded loops, function blocks:
//
//	func fir
//	  var acc x c0 c1
//	  acc = 0
//	  loop 16
//	    acc = acc + x * c0
//	    acc = acc + x * c1
//	  end
//	end
//
// Trace semantics mirror a scratchpad-allocated compilation: every
// identifier on a right-hand side issues a read access in operand order,
// every assignment target issues a write access after its operands, and
// compound assignments (+=) read the target first. Integer literals touch
// no memory. Loops replay their body.
package frontend

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/trace"
)

// Program is a parsed source file: an ordered list of functions.
type Program struct {
	Funcs []Func
}

// Func is one function block; it compiles to one access sequence.
type Func struct {
	Name string
	Body []Stmt
}

// Stmt is a statement: either an assignment or a loop.
type Stmt interface{ stmt() }

// Assign is `target op= expr`, with Reads listing the identifiers read in
// operand order (including the target first for compound assignments).
type Assign struct {
	Target string
	// Reads are the identifiers read, in evaluation order.
	Reads []string
}

func (Assign) stmt() {}

// Loop repeats its body Count times.
type Loop struct {
	Count int
	Body  []Stmt
}

func (Loop) stmt() {}

// ParseError reports a syntax error with its line number.
type ParseError struct {
	Line int
	Msg  string
}

func (e *ParseError) Error() string { return fmt.Sprintf("frontend: line %d: %s", e.Line, e.Msg) }

// Parse reads a source file.
func Parse(src string) (*Program, error) {
	p := &parser{}
	lines := strings.Split(src, "\n")
	prog := &Program{}
	i := 0
	for i < len(lines) {
		line := strip(lines[i])
		if line == "" {
			i++
			continue
		}
		fields := strings.Fields(line)
		if fields[0] != "func" {
			return nil, &ParseError{Line: i + 1, Msg: "expected 'func <name>' at top level"}
		}
		if len(fields) != 2 {
			return nil, &ParseError{Line: i + 1, Msg: "func needs exactly one name"}
		}
		body, next, err := p.parseBlock(lines, i+1)
		if err != nil {
			return nil, err
		}
		prog.Funcs = append(prog.Funcs, Func{Name: fields[1], Body: body})
		i = next
	}
	if len(prog.Funcs) == 0 {
		return nil, &ParseError{Line: 1, Msg: "no functions"}
	}
	return prog, nil
}

type parser struct{}

// parseBlock parses statements until the matching 'end', returning the
// line index just after it.
func (p *parser) parseBlock(lines []string, start int) ([]Stmt, int, error) {
	var body []Stmt
	i := start
	for i < len(lines) {
		line := strip(lines[i])
		if line == "" {
			i++
			continue
		}
		fields := strings.Fields(line)
		switch fields[0] {
		case "end":
			return body, i + 1, nil
		case "func":
			return nil, 0, &ParseError{Line: i + 1, Msg: "nested func (missing 'end'?)"}
		case "var":
			// Declarations are accepted for readability but do not touch
			// memory; undeclared identifiers are fine.
			if len(fields) < 2 {
				return nil, 0, &ParseError{Line: i + 1, Msg: "var needs at least one name"}
			}
			i++
		case "loop":
			if len(fields) != 2 {
				return nil, 0, &ParseError{Line: i + 1, Msg: "loop needs a repeat count"}
			}
			n, err := strconv.Atoi(fields[1])
			if err != nil || n < 0 {
				return nil, 0, &ParseError{Line: i + 1, Msg: fmt.Sprintf("bad loop count %q", fields[1])}
			}
			inner, next, err := p.parseBlock(lines, i+1)
			if err != nil {
				return nil, 0, err
			}
			body = append(body, Loop{Count: n, Body: inner})
			i = next
		default:
			st, err := parseAssign(line, i+1)
			if err != nil {
				return nil, 0, err
			}
			body = append(body, st)
			i++
		}
	}
	return nil, 0, &ParseError{Line: len(lines), Msg: "missing 'end'"}
}

// parseAssign parses `target = expr` or `target op= expr`.
func parseAssign(line string, lineNo int) (Assign, error) {
	for _, op := range []string{"+=", "-=", "*=", "="} {
		idx := strings.Index(line, op)
		if idx < 0 {
			continue
		}
		target := strings.TrimSpace(line[:idx])
		if !isIdent(target) {
			return Assign{}, &ParseError{Line: lineNo, Msg: fmt.Sprintf("bad assignment target %q", target)}
		}
		rhs := line[idx+len(op):]
		var reads []string
		if op != "=" {
			reads = append(reads, target) // compound assignment reads the target
		}
		for _, tok := range tokenize(rhs) {
			if isIdent(tok) {
				reads = append(reads, tok)
			} else if _, err := strconv.Atoi(tok); err != nil && !isOperator(tok) {
				return Assign{}, &ParseError{Line: lineNo, Msg: fmt.Sprintf("bad token %q", tok)}
			}
		}
		return Assign{Target: target, Reads: reads}, nil
	}
	return Assign{}, &ParseError{Line: lineNo, Msg: "statement is not an assignment, loop, var or end"}
}

func tokenize(expr string) []string {
	for _, op := range []string{"+", "-", "*", "/", "(", ")"} {
		expr = strings.ReplaceAll(expr, op, " "+op+" ")
	}
	return strings.Fields(expr)
}

func isOperator(tok string) bool {
	switch tok {
	case "+", "-", "*", "/", "(", ")":
		return true
	}
	return false
}

func isIdent(s string) bool {
	if s == "" {
		return false
	}
	for i, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r == '_':
		case r >= '0' && r <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

func strip(line string) string {
	if i := strings.Index(line, "#"); i >= 0 {
		line = line[:i]
	}
	return strings.TrimSpace(line)
}

// EmitFunc lowers one function to its access sequence.
func EmitFunc(f Func) (*trace.Sequence, error) {
	var tokens []string
	var emit func(body []Stmt)
	emit = func(body []Stmt) {
		for _, st := range body {
			switch s := st.(type) {
			case Assign:
				tokens = append(tokens, s.Reads...)
				tokens = append(tokens, s.Target+"!")
			case Loop:
				for r := 0; r < s.Count; r++ {
					emit(s.Body)
				}
			}
		}
	}
	emit(f.Body)
	if len(tokens) == 0 {
		return &trace.Sequence{}, nil
	}
	return trace.NewNamedSequence(tokens...)
}

// Compile parses a source file and lowers every function, producing a
// benchmark with one access sequence per function — the same shape as an
// OffsetStone workload.
func Compile(name, src string) (*trace.Benchmark, error) {
	prog, err := Parse(src)
	if err != nil {
		return nil, err
	}
	b := &trace.Benchmark{Name: name}
	for _, f := range prog.Funcs {
		s, err := EmitFunc(f)
		if err != nil {
			return nil, fmt.Errorf("frontend: func %s: %w", f.Name, err)
		}
		b.Sequences = append(b.Sequences, s)
	}
	return b, nil
}
