package frontend

import "testing"

func FuzzCompile(f *testing.F) {
	f.Add("func f\n a = b + c\nend\n")
	f.Add("func f\n loop 3\n  x += y\n end\nend\n")
	f.Add("func f\nend\nfunc g\n var q\n q = q * q\nend\n")
	f.Add("loop loop loop")
	f.Add("func f\n loop 1000000000\nend\n")
	f.Fuzz(func(t *testing.T, src string) {
		// Guard against pathological loop bombs in fuzz inputs: the
		// parser itself must stay fast; emission is only attempted for
		// small programs.
		prog, err := Parse(src)
		if err != nil {
			return
		}
		total := 0
		var count func(body []Stmt, mult int) int
		count = func(body []Stmt, mult int) int {
			n := 0
			for _, st := range body {
				switch s := st.(type) {
				case Assign:
					n += mult * (len(s.Reads) + 1)
				case Loop:
					m := mult * s.Count
					if m > 1<<20 || m < 0 {
						return 1 << 30
					}
					n += count(s.Body, m)
				}
				if n > 1<<20 {
					return 1 << 30
				}
			}
			return n
		}
		for _, fn := range prog.Funcs {
			total += count(fn.Body, 1)
		}
		if total > 1<<20 {
			return
		}
		b, err := Compile("fuzz", src)
		if err != nil {
			t.Fatalf("Parse accepted but Compile failed: %v", err)
		}
		for i, s := range b.Sequences {
			if err := s.Validate(); err != nil {
				t.Fatalf("func %d: invalid sequence: %v", i, err)
			}
		}
	})
}
