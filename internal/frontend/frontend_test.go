package frontend

import (
	"strings"
	"testing"

	"repro/internal/placement"
)

func TestParseAndEmitBasic(t *testing.T) {
	src := `
# a tiny function
func f
  var a b c
  a = b + c
  c += a
end
`
	b, err := Compile("t", src)
	if err != nil {
		t.Fatal(err)
	}
	if len(b.Sequences) != 1 {
		t.Fatalf("sequences = %d", len(b.Sequences))
	}
	s := b.Sequences[0]
	// a = b + c  -> read b, read c, write a
	// c += a     -> read c, read a, write c
	want := []struct {
		name  string
		write bool
	}{
		{"b", false}, {"c", false}, {"a", true},
		{"c", false}, {"a", false}, {"c", true},
	}
	if s.Len() != len(want) {
		t.Fatalf("trace length %d, want %d: %v", s.Len(), len(want), s)
	}
	for i, w := range want {
		if s.Name(s.Var(i)) != w.name || s.Accesses[i].Write != w.write {
			t.Errorf("access %d = %s/%v, want %s/%v",
				i, s.Name(s.Var(i)), s.Accesses[i].Write, w.name, w.write)
		}
	}
}

func TestLoopsReplay(t *testing.T) {
	src := `
func f
  loop 3
    x = x + 1
  end
end
`
	b, err := Compile("t", src)
	if err != nil {
		t.Fatal(err)
	}
	s := b.Sequences[0]
	// Each iteration: read x, write x -> 6 accesses.
	if s.Len() != 6 {
		t.Fatalf("loop trace length %d, want 6", s.Len())
	}
	if s.Writes() != 3 {
		t.Errorf("writes = %d, want 3", s.Writes())
	}
}

func TestNestedLoops(t *testing.T) {
	src := `
func f
  loop 2
    loop 3
      a = a + b
    end
    c = a
  end
end
`
	b, err := Compile("t", src)
	if err != nil {
		t.Fatal(err)
	}
	// Inner: 3 x (a, b, a!) = 9 per outer iter; plus (a, c!) = 2 -> 11 x 2 = 22.
	if got := b.Sequences[0].Len(); got != 22 {
		t.Fatalf("nested trace length %d, want 22", got)
	}
}

func TestMultipleFunctions(t *testing.T) {
	src := `
func first
  a = b
end
func second
  x = y * z
end
`
	b, err := Compile("t", src)
	if err != nil {
		t.Fatal(err)
	}
	if len(b.Sequences) != 2 {
		t.Fatalf("sequences = %d, want 2", len(b.Sequences))
	}
	// Sequences have independent variable universes.
	if b.Sequences[0].NumVars() != 2 || b.Sequences[1].NumVars() != 3 {
		t.Errorf("universes = %d/%d, want 2/3",
			b.Sequences[0].NumVars(), b.Sequences[1].NumVars())
	}
}

func TestCompoundOperators(t *testing.T) {
	for _, op := range []string{"+=", "-=", "*="} {
		src := "func f\n a " + op + " b\nend\n"
		b, err := Compile("t", src)
		if err != nil {
			t.Fatalf("%s: %v", op, err)
		}
		s := b.Sequences[0]
		// read a (compound), read b, write a.
		if s.Len() != 3 || !s.Accesses[2].Write {
			t.Errorf("%s: trace %v", op, s)
		}
		if s.Name(s.Var(0)) != "a" {
			t.Errorf("%s: compound assignment must read target first", op)
		}
	}
}

func TestLiteralsAndParensTouchNoMemory(t *testing.T) {
	src := `
func f
  a = ( b + 42 ) * 7
end
`
	b, err := Compile("t", src)
	if err != nil {
		t.Fatal(err)
	}
	s := b.Sequences[0]
	if s.Len() != 2 { // read b, write a
		t.Fatalf("trace %v, want [b a!]", s)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		name, src string
	}{
		{"toplevel stmt", "a = b\n"},
		{"missing end", "func f\n a = b\n"},
		{"nested func", "func f\nfunc g\nend\nend\n"},
		{"bad loop count", "func f\nloop x\nend\nend\n"},
		{"negative loop", "func f\nloop -1\nend\nend\n"},
		{"bad target", "func f\n 3 = b\nend\n"},
		{"no assignment", "func f\n frobnicate\nend\n"},
		{"empty var", "func f\n var\nend\n"},
		{"bad token", "func f\n a = b $ c\nend\n"},
		{"empty file", "\n# nothing\n"},
		{"func without name", "func\nend\n"},
	}
	for _, c := range cases {
		if _, err := Compile("t", c.src); err == nil {
			t.Errorf("%s: accepted %q", c.name, c.src)
		} else if _, ok := err.(*ParseError); !ok {
			t.Errorf("%s: error is %T, want *ParseError", c.name, err)
		}
	}
}

func TestParseErrorMessage(t *testing.T) {
	_, err := Compile("t", "func f\n 3 = b\nend\n")
	pe, ok := err.(*ParseError)
	if !ok {
		t.Fatalf("got %T", err)
	}
	if pe.Line != 2 || !strings.Contains(pe.Error(), "line 2") {
		t.Errorf("error = %v, want line 2", pe)
	}
}

// End to end: a staged program compiled by the frontend exhibits the
// disjoint-lifespan structure DMA exploits, and DMA beats AFD on it.
func TestCompiledProgramPlacement(t *testing.T) {
	var sb strings.Builder
	sb.WriteString("func staged\n")
	for stage := 0; stage < 8; stage++ {
		sb.WriteString("  loop 6\n")
		t1 := string(rune('a' + stage))
		sb.WriteString("    acc" + t1 + " += in" + t1 + " * w" + t1 + "\n")
		sb.WriteString("  end\n")
	}
	sb.WriteString("end\n")
	b, err := Compile("staged", sb.String())
	if err != nil {
		t.Fatal(err)
	}
	s := b.Sequences[0]
	_, afd, err := placement.Place(placement.StrategyAFDOFU, s, 4, placement.Options{})
	if err != nil {
		t.Fatal(err)
	}
	_, dma, err := placement.Place(placement.StrategyDMAOFU, s, 4, placement.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if dma >= afd {
		t.Errorf("DMA (%d) should beat AFD (%d) on staged compiled code", dma, afd)
	}
}

func TestEmitEmptyFunc(t *testing.T) {
	prog, err := Parse("func f\nend\n")
	if err != nil {
		t.Fatal(err)
	}
	s, err := EmitFunc(prog.Funcs[0])
	if err != nil {
		t.Fatal(err)
	}
	if s.Len() != 0 {
		t.Errorf("empty func produced %d accesses", s.Len())
	}
}
