// Package offsetstone provides a synthetic stand-in for the OffsetStone
// benchmark suite (Leupers, CC'03) used by the paper's evaluation.
//
// The original suite ships address-access sequences extracted from 31 real
// applications (the paper's Fig. 4 x-axis lists them; the text rounds to
// "30 benchmarks"). Those traces are not redistributable here, so this
// package regenerates workloads with the same published shape — per
// benchmark: several access sequences (one per compiled function), 1 to
// 1336 variables per sequence, sequence lengths 1 to 3640 — and with the
// structural features that drive placement quality:
//
//   - loop kernels: short variable tuples repeated many times, producing
//     the heavy access-graph edges that intra-DBC heuristics exploit;
//   - program phases: groups of variables live only within a phase,
//     producing the disjoint lifespans the DMA heuristic separates;
//   - hot globals: a small Zipf-weighted working set accessed throughout,
//     producing the frequency skew the AFD baseline keys on.
//
// Generation is fully deterministic: each benchmark derives its PRNG seed
// from its name, so every run of the harness sees identical traces.
// See DESIGN.md §3 for the substitution argument.
package offsetstone

import (
	"fmt"
	"hash/fnv"
	"math/rand"

	"repro/internal/trace"
)

// Profile controls the shape of one generated benchmark.
type Profile struct {
	// Name is the benchmark name (and the seed of its PRNG).
	Name string
	// Sequences is the number of access sequences (functions).
	Sequences int
	// MinVars, MaxVars bound the per-sequence variable count.
	MinVars, MaxVars int
	// MinLen, MaxLen bound the per-sequence access count.
	MinLen, MaxLen int
	// Phases is the typical number of disjoint program phases per
	// sequence; 1 disables phasing.
	Phases int
	// Loopiness in [0,1] is the fraction of accesses emitted by repeated
	// loop kernels.
	Loopiness float64
	// HotFraction in [0,1] is the fraction of variables promoted to the
	// always-live hot set.
	HotFraction float64
	// WriteFraction in [0,1] is the probability that an access is a store.
	WriteFraction float64
}

// catalog lists the 31 OffsetStone applications named in the paper's
// Fig. 4, with profiles chosen to span the published workload ranges:
// control-dominated tools (bison, cpp, flex, gzip, cc65, f2c, eqntott,
// lpsolve) get many variables and long irregular sequences; DSP/media
// kernels (adpcm, dct, fft, gsm, h263, jpeg, mp3, mpeg2, viterbi, motion,
// dspstone) get loop-heavy phased traces.
var catalog = []Profile{
	{Name: "8051", Sequences: 8, MinVars: 4, MaxVars: 60, MinLen: 10, MaxLen: 300, Phases: 2, Loopiness: 0.4, HotFraction: 0.15, WriteFraction: 0.3},
	{Name: "adpcm", Sequences: 4, MinVars: 6, MaxVars: 40, MinLen: 40, MaxLen: 500, Phases: 3, Loopiness: 0.7, HotFraction: 0.1, WriteFraction: 0.25},
	{Name: "anagram", Sequences: 5, MinVars: 3, MaxVars: 30, MinLen: 10, MaxLen: 200, Phases: 2, Loopiness: 0.5, HotFraction: 0.2, WriteFraction: 0.3},
	{Name: "anthr", Sequences: 6, MinVars: 5, MaxVars: 80, MinLen: 20, MaxLen: 400, Phases: 3, Loopiness: 0.45, HotFraction: 0.15, WriteFraction: 0.3},
	{Name: "bdd", Sequences: 7, MinVars: 8, MaxVars: 120, MinLen: 30, MaxLen: 700, Phases: 2, Loopiness: 0.35, HotFraction: 0.2, WriteFraction: 0.35},
	{Name: "bison", Sequences: 10, MinVars: 10, MaxVars: 300, MinLen: 40, MaxLen: 1500, Phases: 4, Loopiness: 0.3, HotFraction: 0.2, WriteFraction: 0.3},
	{Name: "cavity", Sequences: 4, MinVars: 8, MaxVars: 50, MinLen: 60, MaxLen: 800, Phases: 3, Loopiness: 0.75, HotFraction: 0.1, WriteFraction: 0.25},
	{Name: "cc65", Sequences: 12, MinVars: 20, MaxVars: 900, MinLen: 60, MaxLen: 2800, Phases: 5, Loopiness: 0.25, HotFraction: 0.15, WriteFraction: 0.35},
	{Name: "codecs", Sequences: 6, MinVars: 6, MaxVars: 90, MinLen: 30, MaxLen: 600, Phases: 3, Loopiness: 0.6, HotFraction: 0.12, WriteFraction: 0.3},
	{Name: "cpp", Sequences: 9, MinVars: 15, MaxVars: 400, MinLen: 50, MaxLen: 2000, Phases: 4, Loopiness: 0.3, HotFraction: 0.2, WriteFraction: 0.3},
	{Name: "dct", Sequences: 3, MinVars: 8, MaxVars: 40, MinLen: 80, MaxLen: 900, Phases: 2, Loopiness: 0.85, HotFraction: 0.1, WriteFraction: 0.25},
	{Name: "dspstone", Sequences: 8, MinVars: 4, MaxVars: 30, MinLen: 20, MaxLen: 400, Phases: 2, Loopiness: 0.8, HotFraction: 0.1, WriteFraction: 0.25},
	{Name: "eqntott", Sequences: 7, MinVars: 10, MaxVars: 200, MinLen: 30, MaxLen: 1000, Phases: 3, Loopiness: 0.35, HotFraction: 0.18, WriteFraction: 0.3},
	{Name: "f2c", Sequences: 11, MinVars: 15, MaxVars: 500, MinLen: 50, MaxLen: 2200, Phases: 4, Loopiness: 0.3, HotFraction: 0.15, WriteFraction: 0.3},
	{Name: "fft", Sequences: 3, MinVars: 8, MaxVars: 50, MinLen: 80, MaxLen: 1000, Phases: 2, Loopiness: 0.8, HotFraction: 0.1, WriteFraction: 0.25},
	{Name: "flex", Sequences: 10, MinVars: 12, MaxVars: 350, MinLen: 40, MaxLen: 1800, Phases: 4, Loopiness: 0.3, HotFraction: 0.2, WriteFraction: 0.3},
	{Name: "fuzzy", Sequences: 4, MinVars: 5, MaxVars: 35, MinLen: 20, MaxLen: 350, Phases: 2, Loopiness: 0.6, HotFraction: 0.15, WriteFraction: 0.3},
	{Name: "gif2asc", Sequences: 4, MinVars: 5, MaxVars: 45, MinLen: 25, MaxLen: 400, Phases: 2, Loopiness: 0.55, HotFraction: 0.15, WriteFraction: 0.3},
	{Name: "gsm", Sequences: 6, MinVars: 10, MaxVars: 80, MinLen: 60, MaxLen: 1200, Phases: 3, Loopiness: 0.7, HotFraction: 0.1, WriteFraction: 0.25},
	{Name: "gzip", Sequences: 9, MinVars: 12, MaxVars: 250, MinLen: 40, MaxLen: 1600, Phases: 4, Loopiness: 0.4, HotFraction: 0.18, WriteFraction: 0.3},
	{Name: "h263", Sequences: 6, MinVars: 10, MaxVars: 120, MinLen: 70, MaxLen: 1500, Phases: 3, Loopiness: 0.7, HotFraction: 0.1, WriteFraction: 0.25},
	{Name: "hmm", Sequences: 5, MinVars: 8, MaxVars: 70, MinLen: 40, MaxLen: 800, Phases: 3, Loopiness: 0.55, HotFraction: 0.12, WriteFraction: 0.3},
	{Name: "jpeg", Sequences: 8, MinVars: 10, MaxVars: 150, MinLen: 60, MaxLen: 1700, Phases: 4, Loopiness: 0.65, HotFraction: 0.12, WriteFraction: 0.25},
	{Name: "klt", Sequences: 4, MinVars: 8, MaxVars: 60, MinLen: 50, MaxLen: 900, Phases: 2, Loopiness: 0.7, HotFraction: 0.1, WriteFraction: 0.25},
	{Name: "lpsolve", Sequences: 12, MinVars: 30, MaxVars: 1336, MinLen: 80, MaxLen: 3640, Phases: 5, Loopiness: 0.3, HotFraction: 0.15, WriteFraction: 0.3},
	{Name: "motion", Sequences: 4, MinVars: 6, MaxVars: 50, MinLen: 40, MaxLen: 700, Phases: 2, Loopiness: 0.75, HotFraction: 0.1, WriteFraction: 0.25},
	{Name: "mp3", Sequences: 9, MinVars: 20, MaxVars: 1000, MinLen: 70, MaxLen: 3000, Phases: 5, Loopiness: 0.5, HotFraction: 0.12, WriteFraction: 0.25},
	{Name: "mpeg2", Sequences: 8, MinVars: 12, MaxVars: 200, MinLen: 70, MaxLen: 2000, Phases: 4, Loopiness: 0.65, HotFraction: 0.1, WriteFraction: 0.25},
	{Name: "sparse", Sequences: 5, MinVars: 10, MaxVars: 90, MinLen: 40, MaxLen: 900, Phases: 3, Loopiness: 0.5, HotFraction: 0.15, WriteFraction: 0.3},
	{Name: "triangle", Sequences: 4, MinVars: 6, MaxVars: 40, MinLen: 20, MaxLen: 500, Phases: 2, Loopiness: 0.6, HotFraction: 0.15, WriteFraction: 0.3},
	{Name: "viterbi", Sequences: 4, MinVars: 8, MaxVars: 60, MinLen: 50, MaxLen: 900, Phases: 3, Loopiness: 0.75, HotFraction: 0.1, WriteFraction: 0.25},
}

// Names returns the benchmark names in the paper's presentation order.
func Names() []string {
	out := make([]string, len(catalog))
	for i, p := range catalog {
		out[i] = p.Name
	}
	return out
}

// ProfileFor returns the generation profile of a named benchmark.
func ProfileFor(name string) (Profile, error) {
	for _, p := range catalog {
		if p.Name == name {
			return p, nil
		}
	}
	return Profile{}, fmt.Errorf("offsetstone: unknown benchmark %q", name)
}

// seedFor derives a stable 64-bit seed from the benchmark name.
func seedFor(name string) int64 {
	h := fnv.New64a()
	h.Write([]byte(name))
	return int64(h.Sum64())
}

// Generate produces the synthetic trace for a named benchmark.
func Generate(name string) (*trace.Benchmark, error) {
	p, err := ProfileFor(name)
	if err != nil {
		return nil, err
	}
	return GenerateProfile(p), nil
}

// GenerateProfile produces a benchmark from an arbitrary profile,
// deterministically in the profile's name.
func GenerateProfile(p Profile) *trace.Benchmark {
	rng := rand.New(rand.NewSource(seedFor(p.Name)))
	b := &trace.Benchmark{Name: p.Name}
	for i := 0; i < p.Sequences; i++ {
		b.Sequences = append(b.Sequences, generateSequence(rng, p))
	}
	return b
}

// Suite generates all benchmarks in catalog order.
func Suite() []*trace.Benchmark {
	out := make([]*trace.Benchmark, 0, len(catalog))
	for _, p := range catalog {
		out = append(out, GenerateProfile(p))
	}
	return out
}

// generateSequence emits one access sequence per the profile: variables
// are partitioned into a hot set (live throughout) and per-phase private
// sets (live only inside their phase); each phase interleaves loop-kernel
// repetitions over private variables with Zipf-weighted hot accesses and
// uniform private singles.
func generateSequence(rng *rand.Rand, p Profile) *trace.Sequence {
	length := p.MinLen
	if p.MaxLen > p.MinLen {
		// Skew sizes low: most functions are small, a few are huge, as in
		// the real suite.
		f := rng.Float64()
		f = f * f
		length += int(f * float64(p.MaxLen-p.MinLen+1))
		if length > p.MaxLen {
			length = p.MaxLen
		}
	}
	// Variable count scales with function size — offset-assignment traces
	// average only a few accesses per local variable (Leupers reports
	// sequence lengths around 3x the variable count) — clamped to the
	// profile's range.
	nv := length / (2 + rng.Intn(3))
	if nv < p.MinVars {
		nv = p.MinVars
	}
	if nv > p.MaxVars {
		nv = p.MaxVars
	}
	if length < nv {
		// Guarantee that most variables can appear at least once.
		length = nv
	}

	s := &trace.Sequence{Names: varNames(nv)}

	nHot := int(p.HotFraction * float64(nv))
	if nHot < 1 && nv >= 3 {
		nHot = 1
	}
	if nHot >= nv {
		nHot = nv - 1
	}
	if nHot < 0 {
		nHot = 0
	}
	hot := make([]int, nHot)
	for i := range hot {
		hot[i] = i
	}
	private := make([]int, 0, nv-nHot)
	for v := nHot; v < nv; v++ {
		private = append(private, v)
	}

	phases := p.Phases
	if phases < 1 {
		phases = 1
	}
	if phases > len(private) {
		phases = max(1, len(private))
	}
	// Split private variables into contiguous per-phase groups.
	groups := make([][]int, phases)
	for i, v := range private {
		g := i * phases / max(len(private), 1)
		if g >= phases {
			g = phases - 1
		}
		groups[g] = append(groups[g], v)
	}

	perPhase := length / phases
	for g := 0; g < phases; g++ {
		budget := perPhase
		if g == phases-1 {
			budget = length - perPhase*(phases-1)
		}
		emitPhase(rng, s, p, groups[g], hot, budget)
	}
	return s
}

// emitPhase emits one phase's accesses with a sliding working set over the
// phase's private variables. Compiler-extracted offset-assignment traces
// come from mostly straight-line code: a local variable is defined, used a
// few times in nearby statements, and never touched again, so variable
// lifespans march forward through the function with only small overlaps —
// exactly the disjointness structure the DMA heuristic separates. The
// window models that march: loop kernels and singles draw only from the
// current window, which slides across the private set as the phase
// progresses; hot variables are sprinkled throughout and stay live across
// the whole sequence.
func emitPhase(rng *rand.Rand, s *trace.Sequence, p Profile, group, hot []int, budget int) {
	emit := func(v int) {
		s.Append(v, rng.Float64() < p.WriteFraction)
	}
	if len(group) == 0 {
		// A phase with no private variables only touches hot ones.
		for ; budget > 0 && len(hot) > 0; budget-- {
			emit(hot[zipf(rng, len(hot))])
		}
		return
	}

	win := 2 + rng.Intn(5) // working-set size 2..6
	if win > len(group) {
		win = len(group)
	}
	total := budget
	emitted := 0
	window := func() []int {
		span := len(group) - win
		idx := 0
		if span > 0 && total > 0 {
			idx = emitted * (span + 1) / total
			if idx > span {
				idx = span
			}
		}
		return group[idx : idx+win]
	}
	for budget > 0 {
		pool := window()
		r := rng.Float64()
		switch {
		case r < p.Loopiness && len(pool) >= 2:
			// Loop kernel: tuple of 2..4 working-set variables repeated
			// 2..12 times (occasionally including a hot operand).
			k := 2 + rng.Intn(min(3, len(pool)-1))
			tuple := make([]int, k)
			for i := range tuple {
				tuple[i] = pool[rng.Intn(len(pool))]
			}
			if len(hot) > 0 && rng.Float64() < 0.2 {
				tuple[rng.Intn(len(tuple))] = hot[zipf(rng, len(hot))]
			}
			reps := 2 + rng.Intn(11)
			for rep := 0; rep < reps && budget > 0; rep++ {
				for _, v := range tuple {
					if budget == 0 {
						break
					}
					emit(v)
					budget--
					emitted++
				}
			}
		case r < p.Loopiness+0.15 && len(hot) > 0:
			// Zipf-weighted hot access.
			emit(hot[zipf(rng, len(hot))])
			budget--
			emitted++
		default:
			// Straight-line burst on one working-set variable.
			v := pool[rng.Intn(len(pool))]
			reps := 1 + rng.Intn(3)
			for rep := 0; rep < reps && budget > 0; rep++ {
				emit(v)
				budget--
				emitted++
			}
		}
	}
}

// zipf picks an index in [0,n) with probability proportional to 1/(i+1).
func zipf(rng *rand.Rand, n int) int {
	total := 0.0
	for i := 0; i < n; i++ {
		total += 1 / float64(i+1)
	}
	r := rng.Float64() * total
	for i := 0; i < n; i++ {
		r -= 1 / float64(i+1)
		if r <= 0 {
			return i
		}
	}
	return n - 1
}

func varNames(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("v%d", i)
	}
	return out
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
