package offsetstone

import (
	"testing"

	"repro/internal/trace"
)

func TestCatalogMatchesPaperFig4(t *testing.T) {
	names := Names()
	if len(names) != 31 {
		t.Fatalf("catalog has %d benchmarks, want the 31 listed on the paper's Fig. 4 axis", len(names))
	}
	want := []string{"8051", "adpcm", "anagram", "anthr", "bdd", "bison",
		"cavity", "cc65", "codecs", "cpp", "dct", "dspstone", "eqntott",
		"f2c", "fft", "flex", "fuzzy", "gif2asc", "gsm", "gzip", "h263",
		"hmm", "jpeg", "klt", "lpsolve", "motion", "mp3", "mpeg2",
		"sparse", "triangle", "viterbi"}
	for i, w := range want {
		if names[i] != w {
			t.Errorf("catalog[%d] = %q, want %q", i, names[i], w)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a, err := Generate("gsm")
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate("gsm")
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Sequences) != len(b.Sequences) {
		t.Fatalf("nondeterministic sequence count: %d vs %d", len(a.Sequences), len(b.Sequences))
	}
	for i := range a.Sequences {
		x, y := a.Sequences[i], b.Sequences[i]
		if x.Len() != y.Len() {
			t.Fatalf("seq %d lengths differ: %d vs %d", i, x.Len(), y.Len())
		}
		for j := range x.Accesses {
			if x.Accesses[j] != y.Accesses[j] {
				t.Fatalf("seq %d access %d differs", i, j)
			}
		}
	}
}

func TestGenerateUnknown(t *testing.T) {
	if _, err := Generate("nope"); err == nil {
		t.Error("unknown benchmark accepted")
	}
}

func TestProfilesRespectBounds(t *testing.T) {
	for _, name := range Names() {
		b, err := Generate(name)
		if err != nil {
			t.Fatal(err)
		}
		p, _ := ProfileFor(name)
		if len(b.Sequences) != p.Sequences {
			t.Errorf("%s: %d sequences, want %d", name, len(b.Sequences), p.Sequences)
		}
		for i, s := range b.Sequences {
			if err := s.Validate(); err != nil {
				t.Errorf("%s seq %d invalid: %v", name, i, err)
			}
			if s.NumVars() < p.MinVars || s.NumVars() > p.MaxVars {
				t.Errorf("%s seq %d: %d vars outside [%d,%d]", name, i, s.NumVars(), p.MinVars, p.MaxVars)
			}
			// Length may exceed MaxLen never; it may exceed MinLen check
			// (generator raises length to nv when needed).
			if s.Len() > p.MaxLen && s.Len() > s.NumVars() {
				t.Errorf("%s seq %d: length %d exceeds max %d", name, i, s.Len(), p.MaxLen)
			}
			if s.Len() == 0 {
				t.Errorf("%s seq %d: empty", name, i)
			}
		}
	}
}

func TestSuiteSpansPublishedRanges(t *testing.T) {
	suite := Suite()
	if len(suite) != 31 {
		t.Fatalf("suite size %d", len(suite))
	}
	maxVars, maxLen := 0, 0
	minVars := 1 << 30
	for _, b := range suite {
		for _, s := range b.Sequences {
			if n := s.NumVars(); n > maxVars {
				maxVars = n
			}
			if n := s.NumVars(); n < minVars {
				minVars = n
			}
			if s.Len() > maxLen {
				maxLen = s.Len()
			}
		}
	}
	// Published ranges: 1..1336 variables, sequence lengths 1..3640. The
	// generator must produce instances near the top of both ranges
	// (lpsolve) without exceeding them.
	if maxVars > 1336 {
		t.Errorf("max vars %d exceeds published 1336", maxVars)
	}
	if maxVars < 600 {
		t.Errorf("max vars %d; suite should contain large instances (lpsolve-like)", maxVars)
	}
	if maxLen > 3640 {
		t.Errorf("max len %d exceeds published 3640", maxLen)
	}
	if maxLen < 1500 {
		t.Errorf("max len %d; suite should contain long sequences", maxLen)
	}
}

func TestPhasedStructureExists(t *testing.T) {
	// The generator must actually produce disjoint lifespans for DMA to
	// separate: check that phased benchmarks contain sequences with at
	// least one disjoint pair among non-hot variables.
	b, err := Generate("mpeg2")
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, s := range b.Sequences {
		a := trace.Analyze(s)
		n := s.NumVars()
		for u := 0; u < n && !found; u++ {
			for v := u + 1; v < n && !found; v++ {
				if a.Accessed(u) && a.Accessed(v) && a.Disjoint(u, v) {
					found = true
				}
			}
		}
	}
	if !found {
		t.Error("no disjoint lifespans generated; DMA would have nothing to exploit")
	}
}

func TestLoopStructureExists(t *testing.T) {
	// Loop-heavy benchmarks must show heavy access-graph edges (weight
	// well above 1) for the intra heuristics to exploit.
	b, err := Generate("dct")
	if err != nil {
		t.Fatal(err)
	}
	heavy := false
	for _, s := range b.Sequences {
		g := trace.BuildGraph(s)
		for _, e := range g.Edges() {
			if e.Weight >= 4 {
				heavy = true
				break
			}
		}
	}
	if !heavy {
		t.Error("no heavy edges in a loop-heavy benchmark")
	}
}

func TestWritesGenerated(t *testing.T) {
	b, err := Generate("cpp")
	if err != nil {
		t.Fatal(err)
	}
	writes := 0
	total := 0
	for _, s := range b.Sequences {
		writes += s.Writes()
		total += s.Len()
	}
	if writes == 0 {
		t.Error("no writes generated")
	}
	if frac := float64(writes) / float64(total); frac < 0.1 || frac > 0.6 {
		t.Errorf("write fraction %.2f outside plausible range", frac)
	}
}

func TestGenerateProfileCustom(t *testing.T) {
	p := Profile{Name: "custom", Sequences: 2, MinVars: 1, MaxVars: 1,
		MinLen: 1, MaxLen: 5, Phases: 1, Loopiness: 0, HotFraction: 0, WriteFraction: 0}
	b := GenerateProfile(p)
	if len(b.Sequences) != 2 {
		t.Fatalf("sequences = %d", len(b.Sequences))
	}
	for _, s := range b.Sequences {
		if s.NumVars() != 1 {
			t.Errorf("vars = %d, want 1", s.NumVars())
		}
	}
}
