package soa

import (
	"fmt"
	"sort"

	"repro/internal/trace"
)

// General Offset Assignment (GOA): the k-address-register generalization
// of SOA. Variables are partitioned among k address registers; each
// register walks its own sub-layout, so a transition costs 1 only when
// both endpoints belong to the same register AND sit more than one slot
// apart in its layout (switching registers is free in the classic model).
//
// GOA is the exact structural analogue of the paper's inter-DBC problem —
// partition first, order within each partition second — which is why the
// paper's section II-B presents inter/intra-DBC placement as the
// decomposition it is. The canonical GOA heuristic partitions by access
// frequency (Leupers' variable partitioning), precisely what the AFD
// baseline does across DBCs.

// GOACost evaluates a partition+layout: groups[r] is register r's layout.
// Every accessed variable must appear exactly once across all groups.
func GOACost(s *trace.Sequence, groups [][]int) (int64, error) {
	reg := make([]int, s.NumVars())
	pos := make([]int, s.NumVars())
	for i := range reg {
		reg[i] = -1
	}
	for r, layout := range groups {
		for p, v := range layout {
			if v < 0 || v >= s.NumVars() {
				return 0, fmt.Errorf("soa: variable %d out of universe", v)
			}
			if reg[v] != -1 {
				return 0, fmt.Errorf("soa: variable %d assigned twice", v)
			}
			reg[v] = r
			pos[v] = p
		}
	}
	// Each register remembers its own last position (the AR points where
	// it last pointed); a same-register transition farther than one slot
	// from that position costs an address-arithmetic instruction.
	last := make([]int, len(groups))
	for i := range last {
		last[i] = -1
	}
	var cost int64
	for i, a := range s.Accesses {
		r := reg[a.Var]
		if r == -1 {
			return 0, fmt.Errorf("soa: access %d to unassigned variable %d", i, a.Var)
		}
		if prev := last[r]; prev >= 0 {
			d := pos[a.Var] - prev
			if d < 0 {
				d = -d
			}
			if d > 1 {
				cost++
			}
		}
		last[r] = pos[a.Var]
	}
	return cost, nil
}

// GOAFrequency is the classic frequency-based GOA heuristic: sort
// variables by descending access frequency, deal them round-robin over
// the k registers (the AFD move), then order each register's variables
// with Liao's SOA heuristic on the register-restricted subsequence.
func GOAFrequency(s *trace.Sequence, k int) ([][]int, error) {
	if k <= 0 {
		return nil, fmt.Errorf("soa: k must be positive, got %d", k)
	}
	a := trace.Analyze(s)
	groups := make([][]int, k)
	for i, v := range a.ByFrequency() {
		groups[i%k] = append(groups[i%k], v)
	}
	for r := range groups {
		groups[r] = liaoWithin(s, groups[r])
	}
	return groups, nil
}

// liaoWithin orders one register's variables by Liao's greedy over the
// register-restricted access graph.
func liaoWithin(s *trace.Sequence, vars []int) []int {
	if len(vars) <= 2 {
		return vars
	}
	member := make([]bool, s.NumVars())
	for _, v := range vars {
		member[v] = true
	}
	g := trace.BuildSubgraph(s, func(v int) bool { return member[v] })

	degree := make(map[int]int, len(vars))
	next := make(map[int][]int, len(vars))
	parent := make(map[int]int, len(vars))
	var find func(x int) int
	find = func(x int) int {
		r, ok := parent[x]
		if !ok || r == x {
			return x
		}
		root := find(r)
		parent[x] = root
		return root
	}
	for _, e := range g.Edges() {
		if !member[e.U] || !member[e.V] {
			continue
		}
		if degree[e.U] >= 2 || degree[e.V] >= 2 {
			continue
		}
		ru, rv := find(e.U), find(e.V)
		if ru == rv {
			continue
		}
		parent[ru] = rv
		degree[e.U]++
		degree[e.V]++
		next[e.U] = append(next[e.U], e.V)
		next[e.V] = append(next[e.V], e.U)
	}
	visited := make(map[int]bool, len(vars))
	var out []int
	var endpoints []int
	for _, v := range vars {
		if degree[v] == 1 {
			endpoints = append(endpoints, v)
		}
	}
	sort.Ints(endpoints)
	for _, start := range endpoints {
		if visited[start] {
			continue
		}
		cur, prev := start, -1
		for {
			visited[cur] = true
			out = append(out, cur)
			advanced := false
			for _, n := range next[cur] {
				if n != prev && !visited[n] {
					prev, cur = cur, n
					advanced = true
					break
				}
			}
			if !advanced {
				break
			}
		}
	}
	for _, v := range vars {
		if !visited[v] {
			out = append(out, v)
		}
	}
	return out
}

// GOADisjoint is the DMA-flavoured GOA variant this repository
// contributes as an extension experiment: extract a disjoint-lifespan
// set (Algorithm 1's scan), give it its own address register in access
// order, and distribute the rest frequency-wise over the remaining
// registers. Mirrors the paper's inter-DBC move onto the address-register
// problem.
func GOADisjoint(s *trace.Sequence, k int) ([][]int, error) {
	if k <= 0 {
		return nil, fmt.Errorf("soa: k must be positive, got %d", k)
	}
	if k == 1 {
		return [][]int{Liao(s)}, nil
	}
	a := trace.Analyze(s)
	// Reuse the DMA scan: ascending first use, admit when the variable's
	// frequency beats the nested-inside sum.
	var disjoint, rest []int
	tmin := 0
	order := a.ByFirstUse()
	for idx, v := range order {
		if a.First[v] > tmin {
			others := append(append([]int(nil), rest...), order[idx+1:]...)
			if a.Freq[v] > a.InnerFreqSum(v, others) {
				disjoint = append(disjoint, v)
				tmin = a.Last[v]
				continue
			}
		}
		rest = append(rest, v)
	}
	groups := make([][]int, k)
	groups[0] = disjoint
	sort.SliceStable(rest, func(i, j int) bool {
		if a.Freq[rest[i]] != a.Freq[rest[j]] {
			return a.Freq[rest[i]] > a.Freq[rest[j]]
		}
		return rest[i] < rest[j]
	})
	for i, v := range rest {
		r := 1 + i%(k-1)
		groups[r] = append(groups[r], v)
	}
	for r := 1; r < k; r++ {
		groups[r] = liaoWithin(s, groups[r])
	}
	return groups, nil
}
