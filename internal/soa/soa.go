// Package soa implements the classic Single Offset Assignment problem —
// the DSP address-code optimization that OffsetStone (Leupers, CC'03, the
// paper's ref [9]) was built to benchmark, and the direct ancestor of the
// paper's intra-DBC placement heuristics (section II-B).
//
// Setting: a DSP address register walks a memory layout of the function's
// variables; stepping to an adjacent address (distance <= 1, including
// staying put) is free auto-increment/decrement, anything farther needs
// an explicit address-arithmetic instruction of cost 1. SOA asks for the
// variable layout minimizing those instructions over an access sequence.
//
// The RTM connection the paper draws: replace "cost 1 when distance > 1"
// with "cost = distance" and SOA's layout problem becomes intra-DBC
// placement. The same access graph drives both, which is why Liao-style
// max-weight path covers (Chen's heuristic) transfer. CompareWithRTM in
// the tests quantifies the relationship on random traces.
package soa

import (
	"fmt"
	"sort"

	"repro/internal/trace"
)

// Cost returns the SOA cost of a layout: the number of consecutive access
// pairs whose layout distance exceeds 1. order must contain every
// accessed variable exactly once.
func Cost(s *trace.Sequence, order []int) (int64, error) {
	pos := make([]int, s.NumVars())
	for i := range pos {
		pos[i] = -1
	}
	for i, v := range order {
		if v < 0 || v >= s.NumVars() {
			return 0, fmt.Errorf("soa: variable %d out of universe [0,%d)", v, s.NumVars())
		}
		if pos[v] != -1 {
			return 0, fmt.Errorf("soa: variable %d placed twice", v)
		}
		pos[v] = i
	}
	var cost int64
	prev := -1
	for i, a := range s.Accesses {
		if pos[a.Var] == -1 {
			return 0, fmt.Errorf("soa: access %d to unplaced variable %d", i, a.Var)
		}
		if prev >= 0 {
			d := pos[a.Var] - prev
			if d < 0 {
				d = -d
			}
			if d > 1 {
				cost++
			}
		}
		prev = pos[a.Var]
	}
	return cost, nil
}

// OFU returns the order-of-first-use layout, the standard SOA baseline.
func OFU(s *trace.Sequence) []int {
	a := trace.Analyze(s)
	return a.ByFirstUse()
}

// Liao computes the classic greedy of Liao et al.: sort access-graph
// edges by descending weight and accept an edge whenever both endpoints
// still have degree < 2 and no cycle would form, yielding a path cover;
// paths are concatenated heaviest-first, isolated variables appended by
// descending frequency. Every free auto-increment the final layout grants
// corresponds to an accepted edge.
func Liao(s *trace.Sequence) []int {
	a := trace.Analyze(s)
	vars := a.ByFirstUse()
	if len(vars) <= 2 {
		return vars
	}
	g := trace.BuildGraph(s)

	degree := make(map[int]int, len(vars))
	next := make(map[int][]int, len(vars))
	parent := make(map[int]int, len(vars))
	var find func(x int) int
	find = func(x int) int {
		r, ok := parent[x]
		if !ok || r == x {
			return x
		}
		root := find(r)
		parent[x] = root
		return root
	}
	for _, e := range g.Edges() {
		if degree[e.U] >= 2 || degree[e.V] >= 2 {
			continue
		}
		ru, rv := find(e.U), find(e.V)
		if ru == rv {
			continue
		}
		parent[ru] = rv
		degree[e.U]++
		degree[e.V]++
		next[e.U] = append(next[e.U], e.V)
		next[e.V] = append(next[e.V], e.U)
	}

	visited := make(map[int]bool, len(vars))
	type path struct {
		nodes  []int
		weight int
	}
	var paths []path
	var endpoints []int
	for _, v := range vars {
		if degree[v] == 1 {
			endpoints = append(endpoints, v)
		}
	}
	sort.Ints(endpoints)
	for _, start := range endpoints {
		if visited[start] {
			continue
		}
		p := path{}
		cur, prev := start, -1
		for {
			visited[cur] = true
			p.nodes = append(p.nodes, cur)
			advanced := false
			for _, n := range next[cur] {
				if n != prev && !visited[n] {
					p.weight += g.Weight(cur, n)
					prev, cur = cur, n
					advanced = true
					break
				}
			}
			if !advanced {
				break
			}
		}
		paths = append(paths, p)
	}
	sort.SliceStable(paths, func(i, j int) bool { return paths[i].weight > paths[j].weight })

	out := make([]int, 0, len(vars))
	for _, p := range paths {
		out = append(out, p.nodes...)
	}
	var isolated []int
	for _, v := range vars {
		if !visited[v] {
			isolated = append(isolated, v)
		}
	}
	sort.SliceStable(isolated, func(i, j int) bool {
		if a.Freq[isolated[i]] != a.Freq[isolated[j]] {
			return a.Freq[isolated[i]] > a.Freq[isolated[j]]
		}
		return isolated[i] < isolated[j]
	})
	out = append(out, isolated...)
	return out
}

// Exact enumerates all layouts of up to MaxExactVars variables and
// returns an optimal one with its cost.
const MaxExactVars = 9

// Exact returns the optimal SOA layout for small instances.
func Exact(s *trace.Sequence) ([]int, int64, error) {
	a := trace.Analyze(s)
	vars := a.ByFirstUse()
	if len(vars) > MaxExactVars {
		return nil, 0, fmt.Errorf("soa: Exact limited to %d variables, got %d", MaxExactVars, len(vars))
	}
	if len(vars) == 0 {
		return nil, 0, nil
	}
	best := append([]int(nil), vars...)
	bestCost, err := Cost(s, best)
	if err != nil {
		return nil, 0, err
	}
	perm := append([]int(nil), vars...)
	var walk func(k int)
	walk = func(k int) {
		if k == len(perm) {
			c, err := Cost(s, perm)
			if err == nil && c < bestCost {
				bestCost = c
				copy(best, perm)
			}
			return
		}
		for i := k; i < len(perm); i++ {
			perm[k], perm[i] = perm[i], perm[k]
			walk(k + 1)
			perm[k], perm[i] = perm[i], perm[k]
		}
	}
	walk(0)
	return best, bestCost, nil
}

// UpperBound returns the trivial SOA cost bound: the number of non-self
// transitions (every one of which costs at most 1).
func UpperBound(s *trace.Sequence) int64 {
	g := trace.BuildGraph(s)
	return int64(g.TotalWeight())
}
