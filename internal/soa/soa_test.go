package soa

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/placement"
	"repro/internal/trace"
)

func TestCostBasics(t *testing.T) {
	// Layout [0 1 2]; sequence 0 1 0 2 2: transitions 0-1 (adjacent,
	// free), 1-0 (free), 0-2 (distance 2, cost 1), 2-2 (self, free).
	s := trace.NewSequence(0, 1, 0, 2, 2)
	c, err := Cost(s, []int{0, 1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if c != 1 {
		t.Errorf("cost = %d, want 1", c)
	}
	// Layout [1 0 2]: 0-1 free, 1-0 free, 0-2 free (adjacent), total 0.
	c, err = Cost(s, []int{1, 0, 2})
	if err != nil {
		t.Fatal(err)
	}
	if c != 0 {
		t.Errorf("cost = %d, want 0", c)
	}
}

func TestCostValidation(t *testing.T) {
	s := trace.NewSequence(0, 1)
	if _, err := Cost(s, []int{0}); err == nil {
		t.Error("missing variable accepted")
	}
	if _, err := Cost(s, []int{0, 0}); err == nil {
		t.Error("duplicate accepted")
	}
	if _, err := Cost(s, []int{0, 5}); err == nil {
		t.Error("out-of-universe accepted")
	}
}

func TestLiaoIsPermutation(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(12)
		vars := make([]int, 10+rng.Intn(60))
		for i := range vars {
			vars[i] = rng.Intn(n)
		}
		s := trace.NewSequence(vars...)
		order := Liao(s)
		if _, err := Cost(s, order); err != nil {
			t.Fatalf("trial %d: Liao produced invalid layout: %v", trial, err)
		}
	}
}

func TestLiaoBeatsOFUOnLoopTrace(t *testing.T) {
	// Prologue fixes the first-use order to 0,1,2,3; the loops then hammer
	// pairs (0,2) and (1,3). OFU keeps the hot partners at distance 2,
	// Liao puts each pair adjacent.
	vars := []int{0, 1, 2, 3}
	for i := 0; i < 20; i++ {
		vars = append(vars, 0, 2) // hot pair (0,2)
	}
	for i := 0; i < 20; i++ {
		vars = append(vars, 1, 3) // hot pair (1,3)
	}
	s := trace.NewSequence(vars...)
	ofuCost, err := Cost(s, OFU(s))
	if err != nil {
		t.Fatal(err)
	}
	liaoCost, err := Cost(s, Liao(s))
	if err != nil {
		t.Fatal(err)
	}
	if liaoCost >= ofuCost {
		t.Errorf("Liao (%d) should beat OFU (%d) on paired loops", liaoCost, ofuCost)
	}
	// Both hot pairs must be adjacent in Liao's layout (the few residual
	// cost units come from the one-off prologue transitions).
	order := Liao(s)
	pos := map[int]int{}
	for i, v := range order {
		pos[v] = i
	}
	for _, pair := range [][2]int{{0, 2}, {1, 3}} {
		d := pos[pair[0]] - pos[pair[1]]
		if d < 0 {
			d = -d
		}
		if d != 1 {
			t.Errorf("hot pair %v at distance %d in %v", pair, d, order)
		}
	}
}

func TestExactOptimal(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for trial := 0; trial < 15; trial++ {
		n := 2 + rng.Intn(5)
		vars := make([]int, 8+rng.Intn(25))
		for i := range vars {
			vars[i] = rng.Intn(n)
		}
		s := trace.NewSequence(vars...)
		_, opt, err := Exact(s)
		if err != nil {
			t.Fatal(err)
		}
		for name, order := range map[string][]int{"OFU": OFU(s), "Liao": Liao(s)} {
			c, err := Cost(s, order)
			if err != nil {
				t.Fatal(err)
			}
			if c < opt {
				t.Fatalf("trial %d: %s (%d) beat the optimum (%d) — Exact is broken", trial, name, c, opt)
			}
		}
	}
	big := make([]int, 30)
	for i := range big {
		big[i] = i % 12
	}
	if _, _, err := Exact(trace.NewSequence(big...)); err == nil {
		t.Error("oversized exact accepted")
	}
}

// Property: SOA cost is bounded by the non-self transition count, and
// equals it minus the adjacency-satisfied transitions.
func TestCostBounds(t *testing.T) {
	f := func(raw []uint8) bool {
		if len(raw) == 0 {
			return true
		}
		vars := make([]int, len(raw))
		for i, r := range raw {
			vars[i] = int(r % 8)
		}
		s := trace.NewSequence(vars...)
		c, err := Cost(s, OFU(s))
		if err != nil {
			return false
		}
		return c >= 0 && c <= UpperBound(s)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 250}); err != nil {
		t.Error(err)
	}
}

// The lineage relationship the paper leans on (section II-B): for any
// layout, SOA cost <= RTM intra-DBC shift cost (a transition costing
// 0/1 in SOA costs its full distance in RTM), and layouts optimized for
// RTM shifts are also good SOA layouts.
func TestSOAVsRTMShiftCost(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 30; trial++ {
		n := 3 + rng.Intn(8)
		vars := make([]int, 20+rng.Intn(60))
		for i := range vars {
			vars[i] = rng.Intn(n)
		}
		s := trace.NewSequence(vars...)
		order := Liao(s)
		soaCost, err := Cost(s, order)
		if err != nil {
			t.Fatal(err)
		}
		p := &placement.Placement{DBC: [][]int{order}}
		rtmCost, err := placement.ShiftCost(s, p)
		if err != nil {
			t.Fatal(err)
		}
		if soaCost > rtmCost {
			t.Fatalf("trial %d: SOA cost %d exceeds RTM shift cost %d for the same layout",
				trial, soaCost, rtmCost)
		}
	}
}
