package soa

import (
	"math/rand"
	"testing"

	"repro/internal/trace"
)

func TestGOACostBasics(t *testing.T) {
	// Two registers: r0 = [0 1], r1 = [2 3]. Sequence 0 2 1 3: all
	// transitions switch registers or move one slot -> cost 0.
	s := trace.NewSequence(0, 2, 1, 3)
	c, err := GOACost(s, [][]int{{0, 1}, {2, 3}})
	if err != nil {
		t.Fatal(err)
	}
	if c != 0 {
		t.Errorf("cost = %d, want 0 (register switches are free)", c)
	}
	// One register holding all four at 0..3: 0->2 costs, 2->1 free
	// (distance 1), 1->3 costs.
	c, err = GOACost(s, [][]int{{0, 1, 2, 3}})
	if err != nil {
		t.Fatal(err)
	}
	if c != 2 {
		t.Errorf("cost = %d, want 2", c)
	}
}

func TestGOACostValidation(t *testing.T) {
	s := trace.NewSequence(0, 1)
	if _, err := GOACost(s, [][]int{{0}}); err == nil {
		t.Error("unassigned variable accepted")
	}
	if _, err := GOACost(s, [][]int{{0, 1}, {1}}); err == nil {
		t.Error("duplicate assignment accepted")
	}
	if _, err := GOACost(s, [][]int{{0, 9}}); err == nil {
		t.Error("out-of-universe accepted")
	}
}

func TestGOAHeuristicsProduceValidPartitions(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 40; trial++ {
		n := 2 + rng.Intn(14)
		vars := make([]int, 15+rng.Intn(80))
		for i := range vars {
			vars[i] = rng.Intn(n)
		}
		s := trace.NewSequence(vars...)
		for k := 1; k <= 4; k++ {
			g1, err := GOAFrequency(s, k)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := GOACost(s, g1); err != nil {
				t.Fatalf("trial %d k=%d: GOAFrequency invalid: %v", trial, k, err)
			}
			g2, err := GOADisjoint(s, k)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := GOACost(s, g2); err != nil {
				t.Fatalf("trial %d k=%d: GOADisjoint invalid: %v", trial, k, err)
			}
		}
	}
}

func TestMoreRegistersNeverHurtFrequencyHeuristic(t *testing.T) {
	// More registers give the frequency heuristic strictly more freedom;
	// on average cost should not grow. Check a fixed workload.
	rng := rand.New(rand.NewSource(5))
	vars := make([]int, 300)
	for i := range vars {
		vars[i] = rng.Intn(24)
	}
	s := trace.NewSequence(vars...)
	var prev int64 = -1
	for _, k := range []int{1, 2, 4, 8} {
		g, err := GOAFrequency(s, k)
		if err != nil {
			t.Fatal(err)
		}
		c, err := GOACost(s, g)
		if err != nil {
			t.Fatal(err)
		}
		if prev >= 0 && c > prev {
			t.Errorf("k=%d cost %d worse than fewer registers (%d)", k, c, prev)
		}
		prev = c
	}
}

func TestGOADisjointBeatsFrequencyOnPhasedTrace(t *testing.T) {
	// Phased straight-line trace: the disjoint register absorbs the
	// phase-local variables, mirroring the paper's inter-DBC result.
	var vars []int
	for p := 0; p < 10; p++ {
		a, b := 2*p, 2*p+1
		for r := 0; r < 6; r++ {
			vars = append(vars, a, b)
		}
	}
	s := trace.NewSequence(vars...)
	gf, err := GOAFrequency(s, 3)
	if err != nil {
		t.Fatal(err)
	}
	cf, err := GOACost(s, gf)
	if err != nil {
		t.Fatal(err)
	}
	gd, err := GOADisjoint(s, 3)
	if err != nil {
		t.Fatal(err)
	}
	cd, err := GOACost(s, gd)
	if err != nil {
		t.Fatal(err)
	}
	if cd > cf {
		t.Errorf("disjoint GOA (%d) worse than frequency GOA (%d) on phased trace", cd, cf)
	}
}

func TestGOAErrors(t *testing.T) {
	s := trace.NewSequence(0, 1)
	if _, err := GOAFrequency(s, 0); err == nil {
		t.Error("k=0 accepted")
	}
	if _, err := GOADisjoint(s, 0); err == nil {
		t.Error("k=0 accepted")
	}
	g, err := GOADisjoint(s, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := GOACost(s, g); err != nil {
		t.Errorf("k=1 disjoint GOA invalid: %v", err)
	}
}
