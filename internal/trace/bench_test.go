package trace

import (
	"bytes"
	"fmt"
	"io"
	"strings"
	"testing"
)

// Parser and scanner benchmarks. These sit under the CI bench gate's
// alloc floor: the text parsers must stay at one name-copy per distinct
// variable (not per token), and the binary scan must decode without
// per-access allocation.

func synthText(b *testing.B) string {
	b.Helper()
	s, err := SynthConfig{Vars: 200, Accesses: 50000, Seed: 9}.Sequence()
	if err != nil {
		b.Fatal(err)
	}
	var sb strings.Builder
	if err := Write(&sb, &Benchmark{Name: "bench", Sequences: []*Sequence{s}}); err != nil {
		b.Fatal(err)
	}
	return sb.String()
}

func BenchmarkParseText(b *testing.B) {
	text := synthText(b)
	b.SetBytes(int64(len(text)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Parse("bench", strings.NewReader(text)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkParseAddressTrace(b *testing.B) {
	s, err := SynthConfig{Vars: 200, Accesses: 50000, Seed: 10}.Sequence()
	if err != nil {
		b.Fatal(err)
	}
	var sb strings.Builder
	for _, a := range s.Accesses {
		if a.Write {
			fmt.Fprintf(&sb, "W 0x%x\n", uint64(a.Var)*4)
		} else {
			fmt.Fprintf(&sb, "R 0x%x\n", uint64(a.Var)*4)
		}
	}
	text := sb.String()
	b.SetBytes(int64(len(text)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ParseAddressTrace(strings.NewReader(text), 4); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBinaryScan(b *testing.B) {
	s, err := SynthConfig{Vars: 500, Accesses: 200000, Seed: 11}.Sequence()
	if err != nil {
		b.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteBinary(&buf, &Benchmark{Name: "bench", Sequences: []*Sequence{s}}); err != nil {
		b.Fatal(err)
	}
	enc := buf.Bytes()
	b.SetBytes(int64(len(enc)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		br, err := NewBinReader(bytes.NewReader(enc))
		if err != nil {
			b.Fatal(err)
		}
		sc, err := br.ScanSequence()
		if err != nil {
			b.Fatal(err)
		}
		n := 0
		for {
			if _, err := sc.Next(); err != nil {
				if err == io.EOF {
					break
				}
				b.Fatal(err)
			}
			n++
		}
		if n != s.Len() {
			b.Fatalf("scanned %d accesses, want %d", n, s.Len())
		}
	}
}
