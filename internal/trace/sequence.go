// Package trace models program memory-access traces for racetrack-memory
// data-placement studies.
//
// A trace is a sequence of accesses to named memory objects (program
// variables). The package provides the access-sequence representation used
// throughout the repository, per-variable liveness analysis (access
// frequency, first/last occurrence, lifespan, disjointness), the weighted
// access graph that classic offset-assignment heuristics consume, and a
// plain-text interchange format.
//
// Terminology follows the paper "Generalized Data Placement Strategies for
// Racetrack Memories" (DATE 2020), section II-B: an access sequence
// S = (s1, ..., sk) over a variable set V, summarized by an access graph
// whose edge weights count consecutive accesses to variable pairs.
package trace

import (
	"errors"
	"fmt"
	"sort"
	"strings"
)

// Access is a single memory reference in a trace: which variable was
// touched and whether the reference was a write.
type Access struct {
	// Var is the variable index, in [0, NumVars).
	Var int
	// Write reports whether the access was a store; loads are the default.
	Write bool
}

// Sequence is a single access sequence over a dense variable space.
// Variable indices run from 0 to NumVars()-1. Names are optional; when
// present, Names[i] labels variable i.
//
// The zero value is an empty sequence with no variables.
type Sequence struct {
	// Names optionally labels the variables. When non-nil its length
	// defines the variable universe; variables never accessed may exist.
	Names []string
	// Accesses is the ordered list of references.
	Accesses []Access

	numVars int // cached max(var)+1 when Names == nil
}

// NewSequence builds a sequence from a list of variable indices, all reads.
// The variable universe is the smallest dense range covering the indices.
func NewSequence(vars ...int) *Sequence {
	s := &Sequence{Accesses: make([]Access, len(vars))}
	for i, v := range vars {
		s.Accesses[i] = Access{Var: v}
	}
	s.refresh()
	return s
}

// NewNamedSequence builds a sequence from variable names. Each distinct
// name becomes a variable, numbered in order of first appearance; a name
// suffixed with "!" denotes a write access.
func NewNamedSequence(tokens ...string) (*Sequence, error) {
	s := &Sequence{}
	index := make(map[string]int)
	for _, tok := range tokens {
		write := false
		name := tok
		if strings.HasSuffix(tok, "!") {
			write = true
			name = strings.TrimSuffix(tok, "!")
		}
		if name == "" {
			return nil, fmt.Errorf("trace: empty variable name in token %q", tok)
		}
		id, ok := index[name]
		if !ok {
			id = len(s.Names)
			index[name] = id
			s.Names = append(s.Names, name)
		}
		s.Accesses = append(s.Accesses, Access{Var: id, Write: write})
	}
	s.refresh()
	return s, nil
}

// NewNamedSequenceWithUniverse is like NewNamedSequence but with an
// explicitly declared variable universe: variable i is universe[i], so
// tie-breaking by variable index follows declaration order rather than
// order of first appearance. Every accessed name must be declared.
func NewNamedSequenceWithUniverse(universe []string, tokens ...string) (*Sequence, error) {
	s := &Sequence{Names: append([]string(nil), universe...)}
	index := make(map[string]int, len(universe))
	for i, n := range universe {
		if n == "" {
			return nil, fmt.Errorf("trace: empty name at universe index %d", i)
		}
		if _, dup := index[n]; dup {
			return nil, fmt.Errorf("trace: duplicate name %q in universe", n)
		}
		index[n] = i
	}
	for _, tok := range tokens {
		write := false
		name := tok
		if strings.HasSuffix(tok, "!") {
			write = true
			name = strings.TrimSuffix(tok, "!")
		}
		id, ok := index[name]
		if !ok {
			return nil, fmt.Errorf("trace: access to undeclared variable %q", name)
		}
		s.Accesses = append(s.Accesses, Access{Var: id, Write: write})
	}
	s.refresh()
	return s, nil
}

func (s *Sequence) refresh() {
	max := -1
	for _, a := range s.Accesses {
		if a.Var > max {
			max = a.Var
		}
	}
	s.numVars = max + 1
}

// NumVars returns the size of the variable universe: len(Names) when names
// are present, otherwise max accessed index + 1.
func (s *Sequence) NumVars() int {
	if s.Names != nil {
		return len(s.Names)
	}
	if s.numVars == 0 && len(s.Accesses) > 0 {
		s.refresh()
	}
	return s.numVars
}

// Len returns the number of accesses in the sequence.
func (s *Sequence) Len() int { return len(s.Accesses) }

// Var returns the variable index of the i-th access.
func (s *Sequence) Var(i int) int { return s.Accesses[i].Var }

// Name returns a printable label for variable v: the declared name when
// available, otherwise "v<index>".
func (s *Sequence) Name(v int) string {
	if s.Names != nil && v >= 0 && v < len(s.Names) {
		return s.Names[v]
	}
	return fmt.Sprintf("v%d", v)
}

// Append adds an access to the end of the sequence.
func (s *Sequence) Append(v int, write bool) {
	s.Accesses = append(s.Accesses, Access{Var: v, Write: write})
	if s.Names == nil && v+1 > s.numVars {
		s.numVars = v + 1
	}
}

// Validate checks internal consistency: every access index must be
// non-negative and, when names are present, within the named universe.
func (s *Sequence) Validate() error {
	n := s.NumVars()
	for i, a := range s.Accesses {
		if a.Var < 0 {
			return fmt.Errorf("trace: access %d has negative variable %d", i, a.Var)
		}
		if s.Names != nil && a.Var >= n {
			return fmt.Errorf("trace: access %d references variable %d outside named universe of %d", i, a.Var, n)
		}
	}
	return nil
}

// Clone returns a deep copy of the sequence.
func (s *Sequence) Clone() *Sequence {
	c := &Sequence{numVars: s.numVars}
	if s.Names != nil {
		c.Names = append([]string(nil), s.Names...)
	}
	c.Accesses = append([]Access(nil), s.Accesses...)
	return c
}

// Fingerprint returns a 64-bit FNV-1a hash over the sequence's content:
// the variable universe, the names (when present) and the ordered access
// stream including read/write kinds. Content-equal sequences hash alike
// regardless of pointer identity, which is what content-addressed caches
// (the public API's kernel cache) key on. Collisions must be resolved by
// ContentEqual.
func (s *Sequence) Fingerprint() uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	mix := func(v uint64) {
		for i := 0; i < 8; i++ {
			h ^= v & 0xff
			h *= prime64
			v >>= 8
		}
	}
	mix(uint64(s.NumVars()))
	mix(uint64(len(s.Names)))
	for _, n := range s.Names {
		for i := 0; i < len(n); i++ {
			h ^= uint64(n[i])
			h *= prime64
		}
		h ^= 0xff // name separator
		h *= prime64
	}
	for _, a := range s.Accesses {
		v := uint64(a.Var) << 1
		if a.Write {
			v |= 1
		}
		mix(v)
	}
	return h
}

// ContentEqual reports whether two sequences describe the identical
// trace: same variable universe, same names (or both unnamed) and the
// same ordered accesses.
func (s *Sequence) ContentEqual(o *Sequence) bool {
	if s == o {
		return true
	}
	if s == nil || o == nil {
		return false
	}
	if s.NumVars() != o.NumVars() || len(s.Names) != len(o.Names) || len(s.Accesses) != len(o.Accesses) {
		return false
	}
	for i, n := range s.Names {
		if o.Names[i] != n {
			return false
		}
	}
	for i, a := range s.Accesses {
		if o.Accesses[i] != a {
			return false
		}
	}
	return true
}

// Writes counts write accesses.
func (s *Sequence) Writes() int {
	n := 0
	for _, a := range s.Accesses {
		if a.Write {
			n++
		}
	}
	return n
}

// Reads counts read accesses.
func (s *Sequence) Reads() int { return len(s.Accesses) - s.Writes() }

// Restrict returns the subsequence containing only accesses to variables
// for which keep[v] is true. Variable indices are preserved (the universe
// is unchanged), so analyses on the restriction stay comparable.
func (s *Sequence) Restrict(keep func(v int) bool) *Sequence {
	c := &Sequence{Names: s.Names, numVars: s.numVars}
	for _, a := range s.Accesses {
		if keep(a.Var) {
			c.Accesses = append(c.Accesses, a)
		}
	}
	return c
}

// String renders the sequence as space-separated variable labels, with
// writes suffixed by "!". Long sequences are elided for readability.
func (s *Sequence) String() string {
	const max = 64
	var b strings.Builder
	for i, a := range s.Accesses {
		if i == max {
			fmt.Fprintf(&b, " ... (%d more)", len(s.Accesses)-max)
			break
		}
		if i > 0 {
			b.WriteByte(' ')
		}
		b.WriteString(s.Name(a.Var))
		if a.Write {
			b.WriteByte('!')
		}
	}
	return b.String()
}

// ErrEmptySequence is returned by analyses that require at least one access.
var ErrEmptySequence = errors.New("trace: empty access sequence")

// Distinct returns the sorted list of variable indices actually accessed.
func (s *Sequence) Distinct() []int {
	seen := make(map[int]bool, s.NumVars())
	for _, a := range s.Accesses {
		seen[a.Var] = true
	}
	out := make([]int, 0, len(seen))
	for v := range seen {
		out = append(out, v)
	}
	sort.Ints(out)
	return out
}
