package trace

import (
	"bytes"
	"io"
	"strings"
	"testing"
)

// Fuzz targets for the two trace parsers. `go test` exercises the seed
// corpus; `go test -fuzz` explores further.

func FuzzParse(f *testing.F) {
	f.Add("a b a b c\n")
	f.Add("seq f\nx y! z\nseq g\np p q\n")
	f.Add("# comment\n\nseq only\n")
	f.Add("!\n")
	f.Add(strings.Repeat("v ", 500) + "\n")
	f.Fuzz(func(t *testing.T, input string) {
		b, err := ParseString("fuzz", input)
		if err != nil {
			return // rejecting is fine; crashing is not
		}
		// Anything accepted must be internally consistent and survive a
		// write/parse round trip with identical shape.
		for i, s := range b.Sequences {
			if err := s.Validate(); err != nil {
				t.Fatalf("seq %d invalid after parse: %v", i, err)
			}
		}
		var sb strings.Builder
		if err := Write(&sb, b); err != nil {
			t.Fatalf("write failed: %v", err)
		}
		b2, err := ParseString("fuzz2", sb.String())
		if err != nil {
			t.Fatalf("round trip failed: %v", err)
		}
		if len(b2.Sequences) != len(b.Sequences) {
			t.Fatalf("round trip changed sequence count: %d -> %d",
				len(b.Sequences), len(b2.Sequences))
		}
		for i := range b.Sequences {
			if b2.Sequences[i].Len() != b.Sequences[i].Len() {
				t.Fatalf("round trip changed seq %d length", i)
			}
		}
	})
}

// FuzzBinfmtRoundTrip pins the binary format from both directions: any
// text-parseable trace must survive text → binary → scan bit-identically
// to the eager parse, and arbitrary bytes presented as a binary trace —
// including single-byte corruptions of a valid encoding — must be
// rejected or decoded consistently, never panic.
func FuzzBinfmtRoundTrip(f *testing.F) {
	f.Add("a b a b c\n", []byte("RTBF"), 0)
	f.Add("seq f\nx y! z\nseq g\np p q\n", []byte{}, 3)
	f.Add("v0 v1 v0 v0! v2\n", []byte("RTBF\x01\x00\x01\x02\x03"), 7)
	f.Fuzz(func(t *testing.T, text string, raw []byte, flip int) {
		// Arbitrary bytes as binary input: must never panic; anything
		// accepted must be internally consistent.
		if b, err := ReadBinary("raw", bytes.NewReader(raw)); err == nil {
			for i, s := range b.Sequences {
				if verr := s.Validate(); verr != nil {
					t.Fatalf("raw decode seq %d inconsistent: %v", i, verr)
				}
			}
		}

		b, err := ParseString("fuzz", text)
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := WriteBinary(&buf, b); err != nil {
			t.Fatalf("encode of parsed trace failed: %v", err)
		}
		enc := buf.Bytes()

		// Streaming scan must equal the eager parse access for access,
		// with the trailer fingerprint matching the content hash.
		br, err := NewBinReader(bytes.NewReader(enc))
		if err != nil {
			t.Fatalf("decode of own encoding failed: %v", err)
		}
		for i, want := range b.Sequences {
			sc, err := br.ScanSequence()
			if err != nil {
				t.Fatalf("seq %d: %v", i, err)
			}
			if sc.NumVars() != want.NumVars() {
				t.Fatalf("seq %d universe %d, want %d", i, sc.NumVars(), want.NumVars())
			}
			for j := 0; ; j++ {
				a, err := sc.Next()
				if err == io.EOF {
					if j != want.Len() {
						t.Fatalf("seq %d ended at %d of %d", i, j, want.Len())
					}
					break
				}
				if err != nil {
					t.Fatalf("seq %d access %d: %v", i, j, err)
				}
				if a != want.Accesses[j] {
					t.Fatalf("seq %d access %d = %v, want %v", i, j, a, want.Accesses[j])
				}
			}
			if sc.Fingerprint() != want.Fingerprint() {
				t.Fatalf("seq %d fingerprint mismatch", i)
			}
		}

		// A single corrupted byte must never panic, and must never be
		// accepted as a different consistent trace without tripping
		// either a structural error or the fingerprint.
		if len(enc) > 0 {
			mut := append([]byte(nil), enc...)
			i := flip % len(mut)
			if i < 0 {
				i += len(mut)
			}
			mut[i] ^= 0x41
			if got, err := ReadBinary("mut", bytes.NewReader(mut)); err == nil {
				for j, s := range got.Sequences {
					if verr := s.Validate(); verr != nil {
						t.Fatalf("corrupt decode seq %d inconsistent: %v", j, verr)
					}
				}
			}
		}

		// Truncations must be rejected.
		if len(enc) > 1 {
			cut := flip % len(enc)
			if cut < 0 {
				cut += len(enc)
			}
			if _, err := ReadBinary("trunc", bytes.NewReader(enc[:cut])); err == nil {
				t.Fatalf("truncation at %d of %d accepted", cut, len(enc))
			}
		}
	})
}

func FuzzParseAddressTrace(f *testing.F) {
	f.Add("R 0x1000\nW 0x1004\n0x1008\n", 4)
	f.Add("4096\n4097\n", 8)
	f.Add("# nothing\n", 4)
	f.Add("W 0xffffffffffffffff\n", 1)
	f.Fuzz(func(t *testing.T, input string, word int) {
		if word <= 0 || word > 64 {
			word = 4
		}
		s, err := ParseAddressTrace(strings.NewReader(input), word)
		if err != nil {
			return
		}
		if err := s.Validate(); err != nil {
			t.Fatalf("accepted trace invalid: %v", err)
		}
		if s.Writes()+s.Reads() != s.Len() {
			t.Fatal("read/write accounting broken")
		}
	})
}
