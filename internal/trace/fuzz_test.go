package trace

import (
	"strings"
	"testing"
)

// Fuzz targets for the two trace parsers. `go test` exercises the seed
// corpus; `go test -fuzz` explores further.

func FuzzParse(f *testing.F) {
	f.Add("a b a b c\n")
	f.Add("seq f\nx y! z\nseq g\np p q\n")
	f.Add("# comment\n\nseq only\n")
	f.Add("!\n")
	f.Add(strings.Repeat("v ", 500) + "\n")
	f.Fuzz(func(t *testing.T, input string) {
		b, err := ParseString("fuzz", input)
		if err != nil {
			return // rejecting is fine; crashing is not
		}
		// Anything accepted must be internally consistent and survive a
		// write/parse round trip with identical shape.
		for i, s := range b.Sequences {
			if err := s.Validate(); err != nil {
				t.Fatalf("seq %d invalid after parse: %v", i, err)
			}
		}
		var sb strings.Builder
		if err := Write(&sb, b); err != nil {
			t.Fatalf("write failed: %v", err)
		}
		b2, err := ParseString("fuzz2", sb.String())
		if err != nil {
			t.Fatalf("round trip failed: %v", err)
		}
		if len(b2.Sequences) != len(b.Sequences) {
			t.Fatalf("round trip changed sequence count: %d -> %d",
				len(b.Sequences), len(b2.Sequences))
		}
		for i := range b.Sequences {
			if b2.Sequences[i].Len() != b.Sequences[i].Len() {
				t.Fatalf("round trip changed seq %d length", i)
			}
		}
	})
}

func FuzzParseAddressTrace(f *testing.F) {
	f.Add("R 0x1000\nW 0x1004\n0x1008\n", 4)
	f.Add("4096\n4097\n", 8)
	f.Add("# nothing\n", 4)
	f.Add("W 0xffffffffffffffff\n", 1)
	f.Fuzz(func(t *testing.T, input string, word int) {
		if word <= 0 || word > 64 {
			word = 4
		}
		s, err := ParseAddressTrace(strings.NewReader(input), word)
		if err != nil {
			return
		}
		if err := s.Validate(); err != nil {
			t.Fatalf("accepted trace invalid: %v", err)
		}
		if s.Writes()+s.Reads() != s.Len() {
			t.Fatal("read/write accounting broken")
		}
	})
}
