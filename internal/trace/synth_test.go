package trace

import (
	"bytes"
	"io"
	"testing"
)

func TestSynthDeterministic(t *testing.T) {
	cfg := SynthConfig{Vars: 64, Accesses: 5000, Seed: 42}
	a, err := cfg.Sequence()
	if err != nil {
		t.Fatal(err)
	}
	b, err := cfg.Sequence()
	if err != nil {
		t.Fatal(err)
	}
	if !a.ContentEqual(b) {
		t.Fatal("same config generated different sequences")
	}
	cfg.Seed = 43
	c, err := cfg.Sequence()
	if err != nil {
		t.Fatal(err)
	}
	if a.ContentEqual(c) {
		t.Fatal("different seeds generated identical sequences")
	}
}

func TestSynthStreamMatchesEager(t *testing.T) {
	cfg := SynthConfig{Vars: 40, Accesses: 3000, Seed: 7}
	want, err := cfg.Sequence()
	if err != nil {
		t.Fatal(err)
	}
	r, err := NewSynthReader(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if r.NumVars() != cfg.Vars || r.Len() != cfg.Accesses {
		t.Fatalf("reader reports (%d vars, %d accesses), want (%d, %d)",
			r.NumVars(), r.Len(), cfg.Vars, cfg.Accesses)
	}
	for i := 0; ; i++ {
		a, err := r.Next()
		if err == io.EOF {
			if i != want.Len() {
				t.Fatalf("stream ended after %d of %d accesses", i, want.Len())
			}
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		if a != want.Accesses[i] {
			t.Fatalf("access %d = %v, want %v", i, a, want.Accesses[i])
		}
	}
}

func TestSynthShape(t *testing.T) {
	cfg := SynthConfig{Vars: 32, Accesses: 20000, Seed: 3}
	s, err := cfg.Sequence()
	if err != nil {
		t.Fatal(err)
	}
	if s.Len() != 20000 {
		t.Fatalf("length %d, want 20000", s.Len())
	}
	if n := s.NumVars(); n > cfg.Vars {
		t.Fatalf("universe %d exceeds configured %d", n, cfg.Vars)
	}
	if w := s.Writes(); w == 0 || w == s.Len() {
		t.Fatalf("write fraction degenerate: %d of %d", w, s.Len())
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	// Loop structure must make the stream compressible relative to its
	// length: the distinct-window structure is what the streaming kernel
	// relies on. Sanity-check via the binary encoding staying well under
	// 2 bytes/access (tight loops encode deltas in one byte).
	var buf bytes.Buffer
	if err := WriteBinary(&buf, &Benchmark{Name: "s", Sequences: []*Sequence{s}}); err != nil {
		t.Fatal(err)
	}
	if perAccess := float64(buf.Len()) / float64(s.Len()); perAccess > 2 {
		t.Fatalf("binary encoding %.2f bytes/access, want loop-local deltas under 2", perAccess)
	}
}

func TestSynthConfigValidation(t *testing.T) {
	bad := []SynthConfig{
		{Vars: 0, Accesses: 10},
		{Vars: 4, Accesses: -1},
		{Vars: 4, Accesses: 1, ZipfS: 0.5},
		{Vars: 4, Accesses: 1, LoopMin: 5, LoopMax: 2},
		{Vars: 4, Accesses: 1, WriteFraction: 2},
	}
	for i, cfg := range bad {
		if _, err := NewSynthReader(cfg); err == nil {
			t.Fatalf("config %d accepted: %+v", i, cfg)
		}
	}
}

// TestSynthBinaryStreamRoundTrip wires generator → binary writer →
// scanner end to end, the exact pipeline the CI bigtrace job runs.
func TestSynthBinaryStreamRoundTrip(t *testing.T) {
	cfg := SynthConfig{Vars: 100, Accesses: 10000, Seed: 11}
	var buf bytes.Buffer
	bw, err := NewBinWriter(&buf, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := bw.BeginSequence(cfg.Vars, cfg.Accesses, nil); err != nil {
		t.Fatal(err)
	}
	gen, err := NewSynthReader(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for {
		a, err := gen.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		if err := bw.Append(a); err != nil {
			t.Fatal(err)
		}
	}
	if err := bw.EndSequence(); err != nil {
		t.Fatal(err)
	}
	if err := bw.Close(); err != nil {
		t.Fatal(err)
	}

	br, err := NewBinReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	sc, err := br.ScanSequence()
	if err != nil {
		t.Fatal(err)
	}
	if sc.NumVars() != cfg.Vars {
		t.Fatalf("universe %d, want %d", sc.NumVars(), cfg.Vars)
	}
	gen2, err := NewSynthReader(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := int64(0); ; i++ {
		a, err := sc.Next()
		want, werr := gen2.Next()
		if err == io.EOF {
			if werr != io.EOF {
				t.Fatalf("scan ended early at access %d", i)
			}
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		if a != want {
			t.Fatalf("access %d = %v, want %v", i, a, want)
		}
	}
}
