package trace

import (
	"strings"
	"testing"
)

func TestParseAddressTrace(t *testing.T) {
	src := `
# warmup
R 0x1000
W 0x1004
0x1000
R 4104        # decimal for 0x1008
W 0x1001      # same word as 0x1000
`
	s, err := ParseAddressTrace(strings.NewReader(src), 4)
	if err != nil {
		t.Fatal(err)
	}
	if s.Len() != 5 {
		t.Fatalf("accesses = %d, want 5", s.Len())
	}
	// Words: 0x1000, 0x1004, 0x1008 -> 3 variables; 0x1001 folds into
	// 0x1000's word.
	if s.NumVars() != 3 {
		t.Fatalf("vars = %d, want 3", s.NumVars())
	}
	if s.Name(0) != "0x1000" || s.Name(1) != "0x1004" || s.Name(2) != "0x1008" {
		t.Errorf("names = %v", s.Names)
	}
	if s.Writes() != 2 {
		t.Errorf("writes = %d, want 2", s.Writes())
	}
	// Access 4 (W 0x1001) must hit variable 0.
	if s.Var(4) != 0 || !s.Accesses[4].Write {
		t.Errorf("access 4 = %+v, want write to var 0", s.Accesses[4])
	}
}

func TestParseAddressTraceWordGranularity(t *testing.T) {
	src := "0x0\n0x7\n0x8\n"
	s, err := ParseAddressTrace(strings.NewReader(src), 8)
	if err != nil {
		t.Fatal(err)
	}
	if s.NumVars() != 2 {
		t.Errorf("8-byte words: vars = %d, want 2", s.NumVars())
	}
}

func TestParseAddressTraceErrors(t *testing.T) {
	cases := []string{
		"R 0x10 extra\n",
		"X 0x10\n",
		"R zz\n",
		"0xgg\n",
	}
	for _, src := range cases {
		if _, err := ParseAddressTrace(strings.NewReader(src), 4); err == nil {
			t.Errorf("accepted %q", src)
		}
	}
	if _, err := ParseAddressTrace(strings.NewReader(""), 0); err == nil {
		t.Error("wordBytes=0 accepted")
	}
	// Empty trace is fine.
	s, err := ParseAddressTrace(strings.NewReader("# nothing\n"), 4)
	if err != nil || s.Len() != 0 {
		t.Errorf("empty trace: %v, %d", err, s.Len())
	}
}

func TestAddressTraceErrorHasLine(t *testing.T) {
	_, err := ParseAddressTrace(strings.NewReader("0x0\nbogus bogus bogus\n"), 4)
	ae, ok := err.(*AddressTraceError)
	if !ok {
		t.Fatalf("error type %T", err)
	}
	if ae.Line != 2 {
		t.Errorf("line = %d, want 2", ae.Line)
	}
}
