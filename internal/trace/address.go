package trace

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Address-trace support: raw memory traces, as produced by binary
// instrumentation or simulators, are lists of referenced addresses rather
// than named variables. ParseAddressTrace folds word-aligned addresses
// into memory objects (one variable per distinct word) so the placement
// algorithms can run on them directly — the granularity RTSim operates at.
//
// Accepted line formats (comments with '#', blank lines ignored):
//
//	R 0x1000        read at hex address
//	W 0x1004        write
//	0x1008          bare address, treated as a read
//	4104            decimal addresses are accepted too
type AddressTraceError struct {
	Line int
	Msg  string
}

func (e *AddressTraceError) Error() string {
	return fmt.Sprintf("trace: address trace line %d: %s", e.Line, e.Msg)
}

// ParseAddressTrace reads a raw address trace, mapping each distinct
// aligned word of wordBytes bytes to one variable. Variables are named
// "0x<address>" of their word base and numbered in order of first
// appearance.
func ParseAddressTrace(r io.Reader, wordBytes int) (*Sequence, error) {
	if wordBytes <= 0 {
		return nil, fmt.Errorf("trace: wordBytes must be positive, got %d", wordBytes)
	}
	s := &Sequence{}
	index := make(map[uint64]int)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if i := strings.Index(line, "#"); i >= 0 {
			line = strings.TrimSpace(line[:i])
		}
		if line == "" {
			continue
		}
		fields := strings.Fields(line)
		write := false
		addrTok := fields[0]
		switch {
		case len(fields) == 2 && (fields[0] == "R" || fields[0] == "r"):
			addrTok = fields[1]
		case len(fields) == 2 && (fields[0] == "W" || fields[0] == "w"):
			write = true
			addrTok = fields[1]
		case len(fields) == 1:
		default:
			return nil, &AddressTraceError{Line: lineNo, Msg: fmt.Sprintf("unrecognized record %q", line)}
		}
		addr, err := parseAddr(addrTok)
		if err != nil {
			return nil, &AddressTraceError{Line: lineNo, Msg: err.Error()}
		}
		word := addr / uint64(wordBytes)
		id, ok := index[word]
		if !ok {
			id = len(s.Names)
			index[word] = id
			s.Names = append(s.Names, fmt.Sprintf("0x%x", word*uint64(wordBytes)))
		}
		s.Accesses = append(s.Accesses, Access{Var: id, Write: write})
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("trace: reading address trace: %w", err)
	}
	s.refresh()
	return s, nil
}

func parseAddr(tok string) (uint64, error) {
	base := 10
	t := tok
	if strings.HasPrefix(tok, "0x") || strings.HasPrefix(tok, "0X") {
		base = 16
		t = tok[2:]
	}
	v, err := strconv.ParseUint(t, base, 64)
	if err != nil {
		return 0, fmt.Errorf("bad address %q", tok)
	}
	return v, nil
}
