package trace

import (
	"bufio"
	"bytes"
	"fmt"
	"io"
	"math"
)

// Address-trace support: raw memory traces, as produced by binary
// instrumentation or simulators, are lists of referenced addresses rather
// than named variables. ParseAddressTrace folds word-aligned addresses
// into memory objects (one variable per distinct word) so the placement
// algorithms can run on them directly — the granularity RTSim operates at.
//
// Accepted line formats (comments with '#', blank lines ignored):
//
//	R 0x1000        read at hex address
//	W 0x1004        write
//	0x1008          bare address, treated as a read
//	4104            decimal addresses are accepted too
type AddressTraceError struct {
	Line int
	Msg  string
}

func (e *AddressTraceError) Error() string {
	return fmt.Sprintf("trace: address trace line %d: %s", e.Line, e.Msg)
}

// ParseAddressTrace reads a raw address trace, mapping each distinct
// aligned word of wordBytes bytes to one variable. Variables are named
// "0x<address>" of their word base and numbered in order of first
// appearance.
func ParseAddressTrace(r io.Reader, wordBytes int) (*Sequence, error) {
	if wordBytes <= 0 {
		return nil, fmt.Errorf("trace: wordBytes must be positive, got %d", wordBytes)
	}
	s := &Sequence{}
	index := make(map[uint64]int)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		// Tokenize in place from the scanner's buffer: address traces run
		// to hundreds of millions of lines, so per-line []string splits
		// are the dominant allocation cost.
		line := bytes.TrimSpace(sc.Bytes())
		if i := bytes.IndexByte(line, '#'); i >= 0 {
			line = bytes.TrimSpace(line[:i])
		}
		if len(line) == 0 {
			continue
		}
		first, rest := nextField(line)
		second, tail := nextField(rest)
		write := false
		addrTok := first
		switch {
		case len(second) > 0 && len(bytes.TrimSpace(tail)) == 0 &&
			len(first) == 1 && (first[0] == 'R' || first[0] == 'r'):
			addrTok = second
		case len(second) > 0 && len(bytes.TrimSpace(tail)) == 0 &&
			len(first) == 1 && (first[0] == 'W' || first[0] == 'w'):
			write = true
			addrTok = second
		case len(second) == 0:
		default:
			return nil, &AddressTraceError{Line: lineNo, Msg: fmt.Sprintf("unrecognized record %q", line)}
		}
		addr, err := parseAddr(addrTok)
		if err != nil {
			return nil, &AddressTraceError{Line: lineNo, Msg: err.Error()}
		}
		word := addr / uint64(wordBytes)
		id, ok := index[word]
		if !ok {
			id = len(s.Names)
			index[word] = id
			s.Names = append(s.Names, fmt.Sprintf("0x%x", word*uint64(wordBytes)))
		}
		s.Accesses = append(s.Accesses, Access{Var: id, Write: write})
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("trace: reading address trace: %w", err)
	}
	s.refresh()
	return s, nil
}

// parseAddr decodes a decimal or 0x-prefixed hex address without
// allocating (strconv would need a string copy of the scanner's bytes).
// Overflow past uint64 is rejected, matching strconv.ParseUint.
//
//rtm:hotpath
func parseAddr(tok []byte) (uint64, error) {
	base := uint64(10)
	t := tok
	if len(tok) > 2 && tok[0] == '0' && (tok[1] == 'x' || tok[1] == 'X') {
		base = 16
		t = tok[2:]
	}
	if len(t) == 0 {
		return 0, badAddr(tok)
	}
	var v uint64
	for _, c := range t {
		var d uint64
		switch {
		case c >= '0' && c <= '9':
			d = uint64(c - '0')
		case c >= 'a' && c <= 'f':
			d = uint64(c-'a') + 10
		case c >= 'A' && c <= 'F':
			d = uint64(c-'A') + 10
		default:
			return 0, badAddr(tok)
		}
		if d >= base {
			return 0, badAddr(tok)
		}
		if v > (math.MaxUint64-d)/base {
			return 0, badAddr(tok)
		}
		v = v*base + d
	}
	return v, nil
}

// badAddr builds parseAddr's rejection error — kept out of the
// annotated hot function so the allocation lives on the cold path.
func badAddr(tok []byte) error {
	return fmt.Errorf("bad address %q", tok)
}
