//go:build !linux

package trace

import "os"

// mmapFile on platforms without a wired-up mmap backend: always decline,
// so OpenBin falls back to chunked buffered reads (equally streaming,
// just through the Go heap's read buffer instead of the page cache).
func mmapFile(*os.File) ([]byte, bool) { return nil, false }

// munmapFile is never reached when mmapFile declines.
func munmapFile([]byte) error { return nil }
