package trace

import (
	"fmt"
	"io"
	"math/rand"
)

// Synthetic large-trace generation. CI and the benchmarks need
// 10⁷–10⁸-access streams to exercise the out-of-core pipeline, far too
// big to commit as files; SynthReader generates them on the fly — a
// seeded, deterministic AccessReader in O(loop body) memory — so a
// 256 MiB memory ceiling can be asserted over a multi-gigabyte-
// equivalent trace.
//
// The generated traffic is loop-structured, like the program traces the
// placement problem comes from: execution alternates between loop
// kernels (a short body of distinct variables repeated many times) and
// scattered cold accesses, with variable popularity Zipf-distributed so
// a small hot set dominates. Loop structure is also what makes the
// streaming kernel construction's working set proportional to distinct
// variables rather than accesses: each loop iteration reproduces the
// previous iteration's transition stencils, which deduplicate into
// multiplicity bumps (see DESIGN.md §12).

// SynthConfig parameterizes a synthetic stream. The zero value of every
// tuning field selects a sensible default; Vars and Accesses are
// required.
type SynthConfig struct {
	// Vars is the variable universe size.
	Vars int
	// Accesses is the exact stream length.
	Accesses int64
	// Seed drives the deterministic PRNG: equal configs generate
	// bit-identical streams.
	Seed int64
	// ZipfS is the Zipf skew of variable popularity (> 1; default 1.3).
	ZipfS float64
	// LoopMin/LoopMax bound the loop-body length in distinct variables
	// (defaults 4 and 48).
	LoopMin, LoopMax int
	// RepMin/RepMax bound the iteration count per loop (defaults 8 and 96).
	RepMin, RepMax int
	// WriteFraction is the probability an access is a store (default 0.25).
	WriteFraction float64
	// ScatterLen is the number of scattered single accesses emitted
	// between loops (default 4).
	ScatterLen int
}

// norm fills defaults and validates.
func (c SynthConfig) norm() (SynthConfig, error) {
	if c.Vars < 1 {
		return c, fmt.Errorf("trace: synth: Vars must be >= 1, got %d", c.Vars)
	}
	if c.Accesses < 0 {
		return c, fmt.Errorf("trace: synth: Accesses must be >= 0, got %d", c.Accesses)
	}
	if c.ZipfS == 0 {
		c.ZipfS = 1.3
	}
	if c.ZipfS <= 1 {
		return c, fmt.Errorf("trace: synth: ZipfS must be > 1, got %v", c.ZipfS)
	}
	if c.LoopMin == 0 {
		c.LoopMin = 4
	}
	if c.LoopMax == 0 {
		c.LoopMax = 48
	}
	if c.LoopMin < 1 || c.LoopMax < c.LoopMin {
		return c, fmt.Errorf("trace: synth: bad loop-body bounds [%d,%d]", c.LoopMin, c.LoopMax)
	}
	if c.RepMin == 0 {
		c.RepMin = 8
	}
	if c.RepMax == 0 {
		c.RepMax = 96
	}
	if c.RepMin < 1 || c.RepMax < c.RepMin {
		return c, fmt.Errorf("trace: synth: bad repetition bounds [%d,%d]", c.RepMin, c.RepMax)
	}
	if c.WriteFraction == 0 {
		c.WriteFraction = 0.25
	}
	if c.WriteFraction < 0 || c.WriteFraction > 1 {
		return c, fmt.Errorf("trace: synth: WriteFraction %v outside [0,1]", c.WriteFraction)
	}
	if c.ScatterLen == 0 {
		c.ScatterLen = 4
	}
	if c.ScatterLen < 0 {
		return c, fmt.Errorf("trace: synth: ScatterLen must be >= 0, got %d", c.ScatterLen)
	}
	return c, nil
}

// A SynthReader streams a synthetic trace, implementing AccessReader.
// It holds only the current loop body — never the trace.
type SynthReader struct {
	cfg       SynthConfig
	rng       *rand.Rand
	zipf      *rand.Zipf
	remaining int64

	body    []int // current loop body (distinct variables)
	bodyPos int   // next body index to emit
	reps    int   // body repetitions left (including the current one)
	scatter int   // scattered accesses left before the next loop
}

// NewSynthReader builds a reader for the config. Equal configs yield
// bit-identical streams, on every platform (math/rand's generator is
// deterministic for a fixed seed).
func NewSynthReader(cfg SynthConfig) (*SynthReader, error) {
	c, err := cfg.norm()
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(c.Seed))
	return &SynthReader{
		cfg:       c,
		rng:       rng,
		zipf:      rand.NewZipf(rng, c.ZipfS, 1, uint64(c.Vars-1)),
		remaining: c.Accesses,
		body:      make([]int, 0, c.LoopMax),
	}, nil
}

// NumVars returns the universe size. Variables in a long Zipf tail may
// never be accessed; consumers must treat NumVars as the universe, as
// with named sequences.
func (r *SynthReader) NumVars() int { return r.cfg.Vars }

// Len returns the total stream length.
func (r *SynthReader) Len() int64 { return r.cfg.Accesses }

// pick samples one variable by Zipf popularity, permuted so hot
// variables are spread over the index space rather than clustered at 0
// (a fixed affine permutation keeps it deterministic and O(1)).
func (r *SynthReader) pick() int {
	v := int(r.zipf.Uint64())
	if r.cfg.Vars > 1 {
		v = (v*2654435761 + 17) % r.cfg.Vars
	}
	return v
}

// nextPhase samples the next loop body and repetition budget.
func (r *SynthReader) nextPhase() {
	l := r.cfg.LoopMin + r.rng.Intn(r.cfg.LoopMax-r.cfg.LoopMin+1)
	if l > r.cfg.Vars {
		l = r.cfg.Vars
	}
	r.body = r.body[:0]
	// Sample distinct body members; Zipf resamples collide on the hot
	// set, so after a bounded number of tries fall back to a random
	// walk from the last member (still deterministic).
	tries := 0
	for len(r.body) < l {
		v := r.pick()
		if tries > 4*l {
			v = (r.lastBodyVar() + 1 + r.rng.Intn(r.cfg.Vars)) % r.cfg.Vars
		}
		tries++
		if !r.inBody(v) {
			r.body = append(r.body, v)
		}
	}
	r.bodyPos = 0
	r.reps = r.cfg.RepMin + r.rng.Intn(r.cfg.RepMax-r.cfg.RepMin+1)
	r.scatter = r.cfg.ScatterLen
}

func (r *SynthReader) lastBodyVar() int {
	if len(r.body) == 0 {
		return 0
	}
	return r.body[len(r.body)-1]
}

func (r *SynthReader) inBody(v int) bool {
	for _, u := range r.body {
		if u == v {
			return true
		}
	}
	return false
}

// Next implements AccessReader.
func (r *SynthReader) Next() (Access, error) {
	if r.remaining <= 0 {
		return Access{}, io.EOF
	}
	if r.reps == 0 && r.scatter == 0 {
		r.nextPhase()
	}
	r.remaining--
	var v int
	if r.reps > 0 {
		v = r.body[r.bodyPos]
		r.bodyPos++
		if r.bodyPos == len(r.body) {
			r.bodyPos = 0
			r.reps--
		}
	} else {
		r.scatter--
		v = r.pick()
	}
	return Access{Var: v, Write: r.rng.Float64() < r.cfg.WriteFraction}, nil
}

// Sequence materializes the configured stream — the in-RAM form, for
// tests and small workloads. It drains a fresh reader, so it is
// bit-identical to streaming the same config.
func (cfg SynthConfig) Sequence() (*Sequence, error) {
	r, err := NewSynthReader(cfg)
	if err != nil {
		return nil, err
	}
	s := &Sequence{Accesses: make([]Access, 0, min64(cfg.Accesses, 1<<20))}
	for {
		a, err := r.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, err
		}
		s.Accesses = append(s.Accesses, a)
	}
	s.refresh()
	return s, nil
}
