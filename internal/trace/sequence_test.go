package trace

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

// paperTokens is the access sequence of Fig. 3-(b) of the paper,
// reconstructed so that every published statistic matches: the Av/Fv/Lv
// table of Fig. 3-(e), the AFD subsequences S0 = a b a b a a d d a g g h g h
// and S1 = c c i e f e f e i i of Fig. 3-(c), and the shift costs 24+15=39
// (AFD) and 4+7=11 (sequence-aware).
func paperTokens() []string {
	return strings.Fields("a b a b c a c a d d a i e f e f g e g h g i h i")
}

// paperSeq builds the Fig. 3 sequence with the variable set declared
// alphabetically, as in Fig. 3-(a); declaration order is the tie-break AFD
// needs to reproduce the published layout.
func paperSeq(t testing.TB) *Sequence {
	t.Helper()
	universe := strings.Split("a b c d e f g h i", " ")
	s, err := NewNamedSequenceWithUniverse(universe, paperTokens()...)
	if err != nil {
		t.Fatalf("NewNamedSequenceWithUniverse: %v", err)
	}
	return s
}

func TestPaperExampleAnalysis(t *testing.T) {
	s := paperSeq(t)
	a := Analyze(s)
	// Expected values straight from Fig. 3-(e): v(Av), Fv, Lv.
	want := []struct {
		name       string
		av, fv, lv int
	}{
		{"a", 5, 1, 11},
		{"b", 2, 2, 4},
		{"c", 2, 5, 7},
		{"d", 2, 9, 10},
		{"e", 3, 13, 18},
		{"f", 2, 14, 16},
		{"g", 3, 17, 21},
		{"h", 2, 20, 23},
		{"i", 3, 12, 24},
	}
	if s.Len() != 24 {
		t.Fatalf("sequence length = %d, want 24", s.Len())
	}
	for _, w := range want {
		v := -1
		for i, n := range s.Names {
			if n == w.name {
				v = i
			}
		}
		if v < 0 {
			t.Fatalf("variable %q missing", w.name)
		}
		if a.Freq[v] != w.av {
			t.Errorf("A(%s) = %d, want %d", w.name, a.Freq[v], w.av)
		}
		if a.First[v] != w.fv {
			t.Errorf("F(%s) = %d, want %d", w.name, a.First[v], w.fv)
		}
		if a.Last[v] != w.lv {
			t.Errorf("L(%s) = %d, want %d", w.name, a.Last[v], w.lv)
		}
	}
}

func TestDisjointLifespans(t *testing.T) {
	s := paperSeq(t)
	a := Analyze(s)
	id := func(name string) int {
		for i, n := range s.Names {
			if n == name {
				return i
			}
		}
		t.Fatalf("no variable %q", name)
		return -1
	}
	// The paper: "variables b and c have disjoint lifespans"; lifespan of
	// b is 2 (4-2).
	if got := a.Lifespan(id("b")); got != 2 {
		t.Errorf("lifespan(b) = %d, want 2", got)
	}
	if !a.Disjoint(id("b"), id("c")) {
		t.Error("b and c should be disjoint")
	}
	if a.Disjoint(id("a"), id("b")) {
		t.Error("a and b overlap (a spans 1..11, b spans 2..4)")
	}
	// The paper's selected disjoint combination: b, c, d, e, h.
	set := []string{"b", "c", "d", "e", "h"}
	for i := 0; i < len(set); i++ {
		for j := i + 1; j < len(set); j++ {
			if !a.Disjoint(id(set[i]), id(set[j])) {
				t.Errorf("%s and %s should be disjoint", set[i], set[j])
			}
		}
	}
	sum := 0
	for _, n := range set {
		sum += a.Freq[id(n)]
	}
	if sum != 11 {
		t.Errorf("disjoint combination frequency sum = %d, want 11", sum)
	}
}

func TestInnerFreqSum(t *testing.T) {
	s := paperSeq(t)
	a := Analyze(s)
	id := func(name string) int {
		for i, n := range s.Names {
			if n == name {
				return i
			}
		}
		return -1
	}
	// Paper: for a (Av=5) the objects within its lifespan are b, c, d with
	// frequency sum 6.
	if got := a.InnerFreqSum(id("a"), nil); got != 6 {
		t.Errorf("InnerFreqSum(a) = %d, want 6", got)
	}
	// For i (spans 12..24): e, f, g, h lie inside, sum = 3+2+3+2 = 10.
	if got := a.InnerFreqSum(id("i"), nil); got != 10 {
		t.Errorf("InnerFreqSum(i) = %d, want 10", got)
	}
}

func TestByFrequencyTieBreak(t *testing.T) {
	s := paperSeq(t)
	a := Analyze(s)
	order := a.ByFrequency()
	names := make([]string, len(order))
	for i, v := range order {
		names[i] = s.Name(v)
	}
	// Stable by declaration (alphabetical here) within equal frequency:
	// a(5), then e,g,i(3), then b,c,d,f,h(2). This ordering is what makes
	// AFD reproduce the Fig. 3-(c) layout.
	want := "a e g i b c d f h"
	if got := strings.Join(names, " "); got != want {
		t.Errorf("ByFrequency order = %q, want %q", got, want)
	}
}

func TestByFirstUse(t *testing.T) {
	s := paperSeq(t)
	a := Analyze(s)
	order := a.ByFirstUse()
	names := make([]string, len(order))
	for i, v := range order {
		names[i] = s.Name(v)
	}
	want := "a b c d i e f g h"
	if got := strings.Join(names, " "); got != want {
		t.Errorf("ByFirstUse order = %q, want %q", got, want)
	}
}

func TestAccessGraph(t *testing.T) {
	s, err := NewNamedSequence("a", "b", "a", "b", "c", "c", "a")
	if err != nil {
		t.Fatal(err)
	}
	g := BuildGraph(s)
	id := func(name string) int {
		for i, n := range s.Names {
			if n == name {
				return i
			}
		}
		return -1
	}
	if w := g.Weight(id("a"), id("b")); w != 3 {
		t.Errorf("w(a,b) = %d, want 3", w)
	}
	if w := g.Weight(id("b"), id("c")); w != 1 {
		t.Errorf("w(b,c) = %d, want 1", w)
	}
	if w := g.Weight(id("a"), id("c")); w != 1 {
		t.Errorf("w(a,c) = %d, want 1 (self pair c,c is not an edge)", w)
	}
	if w := g.Weight(id("c"), id("c")); w != 0 {
		t.Errorf("self weight = %d, want 0", w)
	}
	if g.TotalWeight() != 5 {
		t.Errorf("total weight = %d, want 5", g.TotalWeight())
	}
	es := g.Edges()
	if len(es) != 3 || es[0].Weight != 3 {
		t.Errorf("Edges() = %v, want a-b first with weight 3", es)
	}
	if d := g.Degree(id("a")); d != 4 {
		t.Errorf("degree(a) = %d, want 4", d)
	}
}

func TestBuildSubgraph(t *testing.T) {
	s, err := NewNamedSequence("a", "x", "b", "x", "a", "b")
	if err != nil {
		t.Fatal(err)
	}
	members := map[string]bool{"a": true, "b": true}
	g := BuildSubgraph(s, func(v int) bool { return members[s.Name(v)] })
	// Restricted sequence: a b a b -> w(a,b) = 3.
	var a, b int
	for i, n := range s.Names {
		switch n {
		case "a":
			a = i
		case "b":
			b = i
		}
	}
	if w := g.Weight(a, b); w != 3 {
		t.Errorf("restricted w(a,b) = %d, want 3", w)
	}
}

func TestSequenceRoundTrip(t *testing.T) {
	b := &Benchmark{Name: "rt"}
	s1, _ := NewNamedSequence("x", "y", "x!", "z")
	s2, _ := NewNamedSequence("p", "p", "q")
	b.Sequences = []*Sequence{s1, s2}

	var sb strings.Builder
	if err := Write(&sb, b); err != nil {
		t.Fatalf("Write: %v", err)
	}
	got, err := ParseString("rt", sb.String())
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if len(got.Sequences) != 2 {
		t.Fatalf("parsed %d sequences, want 2", len(got.Sequences))
	}
	for i, want := range b.Sequences {
		g := got.Sequences[i]
		if g.Len() != want.Len() {
			t.Fatalf("seq %d length %d, want %d", i, g.Len(), want.Len())
		}
		for j := range want.Accesses {
			if g.Name(g.Var(j)) != want.Name(want.Var(j)) {
				t.Errorf("seq %d access %d = %s, want %s",
					i, j, g.Name(g.Var(j)), want.Name(want.Var(j)))
			}
			if g.Accesses[j].Write != want.Accesses[j].Write {
				t.Errorf("seq %d access %d write flag mismatch", i, j)
			}
		}
	}
}

func TestParseErrors(t *testing.T) {
	if _, err := NewNamedSequence("!"); err == nil {
		t.Error("bare '!' token should be rejected")
	}
	b, err := ParseString("empty", "# only comments\n")
	if err != nil {
		t.Fatalf("comment-only input: %v", err)
	}
	if len(b.Sequences) != 0 {
		t.Errorf("comment-only input produced %d sequences", len(b.Sequences))
	}
	b, err = ParseString("implicit", "a b c\n")
	if err != nil || len(b.Sequences) != 1 {
		t.Fatalf("implicit sequence: err=%v n=%d", err, len(b.Sequences))
	}
}

func TestRestrict(t *testing.T) {
	s := NewSequence(0, 1, 2, 0, 1, 2, 0)
	r := s.Restrict(func(v int) bool { return v != 1 })
	if r.Len() != 5 {
		t.Fatalf("restricted length = %d, want 5", r.Len())
	}
	for _, a := range r.Accesses {
		if a.Var == 1 {
			t.Fatal("variable 1 should be filtered out")
		}
	}
	if r.NumVars() != s.NumVars() {
		t.Errorf("restriction changed universe: %d vs %d", r.NumVars(), s.NumVars())
	}
}

func TestValidate(t *testing.T) {
	s := NewSequence(0, 1, 2)
	if err := s.Validate(); err != nil {
		t.Errorf("valid sequence rejected: %v", err)
	}
	bad := &Sequence{Names: []string{"a"}, Accesses: []Access{{Var: 3}}}
	if err := bad.Validate(); err == nil {
		t.Error("out-of-universe access accepted")
	}
	neg := &Sequence{Accesses: []Access{{Var: -1}}}
	if err := neg.Validate(); err == nil {
		t.Error("negative access accepted")
	}
}

// Property: for any sequence, Disjoint is symmetric, irreflexive for
// accessed variables that overlap themselves (a variable is never disjoint
// from itself unless absent), and consistent with First/Last.
func TestDisjointProperties(t *testing.T) {
	f := func(raw []uint8) bool {
		if len(raw) == 0 {
			return true
		}
		vars := make([]int, len(raw))
		for i, r := range raw {
			vars[i] = int(r % 12)
		}
		s := NewSequence(vars...)
		a := Analyze(s)
		n := s.NumVars()
		for u := 0; u < n; u++ {
			for v := 0; v < n; v++ {
				if a.Disjoint(u, v) != a.Disjoint(v, u) {
					return false
				}
				if u != v && a.Accessed(u) && a.Accessed(v) && a.Disjoint(u, v) {
					// Disjointness must match the interval definition.
					if !(a.Last[u] < a.First[v] || a.Last[v] < a.First[u]) {
						return false
					}
				}
			}
			if a.Accessed(u) && a.Disjoint(u, u) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: graph total weight equals charged (non-self) transitions, and
// equals the sum over edges; frequency sums to sequence length.
func TestGraphProperties(t *testing.T) {
	f := func(raw []uint8) bool {
		vars := make([]int, len(raw))
		for i, r := range raw {
			vars[i] = int(r % 10)
		}
		s := NewSequence(vars...)
		a := Analyze(s)
		g := BuildGraph(s)
		trans := 0
		for i := 1; i < len(vars); i++ {
			if vars[i] != vars[i-1] {
				trans++
			}
		}
		if g.TotalWeight() != trans {
			return false
		}
		sum := 0
		for _, f := range a.Freq {
			sum += f
		}
		return sum == s.Len()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: SelfAccesses + TotalWeight == Len-1 for non-empty sequences.
func TestSelfAccessesComplement(t *testing.T) {
	f := func(raw []uint8) bool {
		if len(raw) == 0 {
			return true
		}
		vars := make([]int, len(raw))
		for i, r := range raw {
			vars[i] = int(r % 6)
		}
		s := NewSequence(vars...)
		g := BuildGraph(s)
		return SelfAccesses(s)+g.TotalWeight() == s.Len()-1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestCutWeight(t *testing.T) {
	s := NewSequence(0, 1, 2, 0, 2)
	g := BuildGraph(s)
	// Edges: 0-1 (1), 1-2 (1), 2-0 (2).
	cut := g.CutWeight(func(v int) bool { return v == 0 })
	if cut != 3 {
		t.Errorf("cut({0}) = %d, want 3", cut)
	}
	if c := g.CutWeight(func(v int) bool { return true }); c != 0 {
		t.Errorf("cut(V) = %d, want 0", c)
	}
}

func TestDistinctAndCounts(t *testing.T) {
	s, _ := NewNamedSequence("a", "b!", "a", "c!")
	if got := s.Writes(); got != 2 {
		t.Errorf("Writes = %d, want 2", got)
	}
	if got := s.Reads(); got != 2 {
		t.Errorf("Reads = %d, want 2", got)
	}
	d := s.Distinct()
	if len(d) != 3 {
		t.Errorf("Distinct = %v, want 3 entries", d)
	}
}

func TestCloneIndependence(t *testing.T) {
	s := NewSequence(0, 1, 2)
	c := s.Clone()
	c.Append(5, true)
	if s.Len() != 3 {
		t.Error("Clone shares access storage with original")
	}
	if c.NumVars() != 6 {
		t.Errorf("clone NumVars = %d, want 6", c.NumVars())
	}
}

func TestStringElision(t *testing.T) {
	vars := make([]int, 200)
	for i := range vars {
		vars[i] = rand.Intn(5)
	}
	s := NewSequence(vars...)
	str := s.String()
	if !strings.Contains(str, "more)") {
		t.Errorf("long sequence should be elided, got %q", str[:40])
	}
}

func TestBenchmarkStats(t *testing.T) {
	s1 := NewSequence(0, 1, 2, 3)
	s2 := NewSequence(0, 1)
	b := &Benchmark{Name: "x", Sequences: []*Sequence{s1, s2}}
	if b.TotalAccesses() != 6 {
		t.Errorf("TotalAccesses = %d, want 6", b.TotalAccesses())
	}
	if b.MaxVars() != 4 {
		t.Errorf("MaxVars = %d, want 4", b.MaxVars())
	}
	if b.MaxLen() != 4 {
		t.Errorf("MaxLen = %d, want 4", b.MaxLen())
	}
}
