package trace

import "sort"

// Graph is the weighted undirected access graph of a sequence. Vertices are
// variables; the weight of edge {u,v} counts how many times u and v were
// accessed consecutively (in either order). Self pairs (u == u) are not
// edges: consecutive accesses to the same variable cost no shifts.
type Graph struct {
	n int
	w map[edgeKey]int
	// adj[v] lists the neighbours of v (unordered).
	adj [][]int
}

type edgeKey struct{ u, v int }

func normKey(u, v int) edgeKey {
	if u > v {
		u, v = v, u
	}
	return edgeKey{u, v}
}

// Edge is one weighted access-graph edge with U < V.
type Edge struct {
	U, V   int
	Weight int
}

// BuildGraph constructs the access graph of s.
func BuildGraph(s *Sequence) *Graph {
	g := &Graph{n: s.NumVars(), w: make(map[edgeKey]int)}
	for i := 1; i < len(s.Accesses); i++ {
		u, v := s.Accesses[i-1].Var, s.Accesses[i].Var
		if u == v {
			continue
		}
		g.w[normKey(u, v)]++
	}
	g.buildAdj()
	return g
}

// BuildSubgraph constructs the access graph of the subsequence of s
// restricted to variables in the given set (consecutive-in-restriction
// pairs). This matches how per-DBC costs arise: the access sequence is
// first partitioned across DBCs and each DBC sees only its own accesses.
func BuildSubgraph(s *Sequence, member func(v int) bool) *Graph {
	g := &Graph{n: s.NumVars(), w: make(map[edgeKey]int)}
	prev := -1
	for _, a := range s.Accesses {
		if !member(a.Var) {
			continue
		}
		if prev >= 0 && prev != a.Var {
			g.w[normKey(prev, a.Var)]++
		}
		prev = a.Var
	}
	g.buildAdj()
	return g
}

func (g *Graph) buildAdj() {
	g.adj = make([][]int, g.n)
	//rtmlint:detcheck-ok iteration order never escapes: every adjacency list is sorted immediately below
	for k := range g.w {
		g.adj[k.u] = append(g.adj[k.u], k.v)
		g.adj[k.v] = append(g.adj[k.v], k.u)
	}
	for _, a := range g.adj {
		sort.Ints(a)
	}
}

// NumVertices returns the size of the variable universe the graph spans.
func (g *Graph) NumVertices() int { return g.n }

// Weight returns the weight of edge {u,v}, or 0 when absent.
func (g *Graph) Weight(u, v int) int {
	if u == v {
		return 0
	}
	return g.w[normKey(u, v)]
}

// Neighbors returns the sorted neighbour list of v. The returned slice is
// shared; callers must not modify it.
func (g *Graph) Neighbors(v int) []int {
	if v < 0 || v >= len(g.adj) {
		return nil
	}
	return g.adj[v]
}

// Degree returns the weighted degree of v: the sum of incident edge weights.
func (g *Graph) Degree(v int) int {
	d := 0
	for _, u := range g.Neighbors(v) {
		d += g.Weight(u, v)
	}
	return d
}

// Edges returns all edges sorted by descending weight; ties break by
// ascending (U, V) so the order is deterministic.
func (g *Graph) Edges() []Edge {
	es := make([]Edge, 0, len(g.w))
	for k, w := range g.w {
		es = append(es, Edge{U: k.u, V: k.v, Weight: w})
	}
	sort.Slice(es, func(i, j int) bool {
		if es[i].Weight != es[j].Weight {
			return es[i].Weight > es[j].Weight
		}
		if es[i].U != es[j].U {
			return es[i].U < es[j].U
		}
		return es[i].V < es[j].V
	})
	return es
}

// NumEdges returns the number of distinct edges.
func (g *Graph) NumEdges() int { return len(g.w) }

// TotalWeight returns the sum of all edge weights. For a graph built with
// BuildGraph this equals the number of non-self consecutive pairs in the
// sequence, which is also an upper bound on any placement's per-transition
// count of charged moves.
func (g *Graph) TotalWeight() int {
	t := 0
	for _, w := range g.w {
		t += w
	}
	return t
}

// CutWeight returns the total weight of edges with exactly one endpoint in
// the set. Used by the exact minimum-linear-arrangement solver.
func (g *Graph) CutWeight(inSet func(v int) bool) int {
	c := 0
	for k, w := range g.w {
		if inSet(k.u) != inSet(k.v) {
			c += w
		}
	}
	return c
}
