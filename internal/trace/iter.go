package trace

import "io"

// AccessReader streams the accesses of a trace one at a time, the
// abstraction the out-of-core pipeline is built on: the binary-format
// scanner (SeqScanner), the synthetic generator (SynthReader) and the
// in-RAM adapter (SliceReader) all implement it, and consumers — the
// streaming cost-kernel construction, windowed placement — never hold
// more than their own bounded working set regardless of how many
// accesses the reader yields.
//
// Next returns io.EOF after the final access; any other error is a
// source failure (I/O, corruption) and terminates the stream. Readers
// are single-pass and not safe for concurrent use.
type AccessReader interface {
	Next() (Access, error)
}

// SliceReader adapts an in-RAM sequence to the AccessReader interface,
// so every streaming consumer can also run on materialized traces (the
// golden-parity tests pin the streaming paths bit-identical to the
// eager ones through it).
type SliceReader struct {
	accesses []Access
	pos      int
}

// NewSliceReader returns a reader over the sequence's accesses.
func NewSliceReader(s *Sequence) *SliceReader {
	return &SliceReader{accesses: s.Accesses}
}

// Next implements AccessReader.
func (r *SliceReader) Next() (Access, error) {
	if r.pos >= len(r.accesses) {
		return Access{}, io.EOF
	}
	a := r.accesses[r.pos]
	r.pos++
	return a, nil
}

// Reset rewinds the reader to the first access.
func (r *SliceReader) Reset() { r.pos = 0 }
