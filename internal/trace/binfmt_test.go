package trace

import (
	"bytes"
	"io"
	"os"
	"path/filepath"
	"testing"
)

// testBenchmark builds a small multi-sequence named benchmark.
func testBenchmark(t *testing.T) *Benchmark {
	t.Helper()
	b, err := ParseString("bin", `
seq f
a b a c! b a d d
seq g
x y x y x z! z
seq h
p
`)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func TestBinaryRoundTrip(t *testing.T) {
	b := testBenchmark(t)
	var buf bytes.Buffer
	if err := WriteBinary(&buf, b); err != nil {
		t.Fatal(err)
	}
	got, err := ReadBinary("bin", &buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Sequences) != len(b.Sequences) {
		t.Fatalf("sequence count %d, want %d", len(got.Sequences), len(b.Sequences))
	}
	for i, s := range b.Sequences {
		if !got.Sequences[i].ContentEqual(s) {
			t.Fatalf("sequence %d changed in round trip:\n got %v\nwant %v", i, got.Sequences[i], s)
		}
	}
}

func TestBinaryRoundTripUnnamed(t *testing.T) {
	s := NewSequence(0, 1, 0, 2, 1, 1, 3, 0)
	s.Accesses[2].Write = true
	b := &Benchmark{Name: "u", Sequences: []*Sequence{s}}
	var buf bytes.Buffer
	if err := WriteBinary(&buf, b); err != nil {
		t.Fatal(err)
	}
	got, err := ReadBinary("u", &buf)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Sequences[0].ContentEqual(s) {
		t.Fatalf("unnamed round trip changed the sequence: %v vs %v", got.Sequences[0], s)
	}
}

func TestBinaryRoundTripEmpty(t *testing.T) {
	for _, b := range []*Benchmark{
		{Name: "none"},
		{Name: "emptyseq", Sequences: []*Sequence{{}}},
	} {
		var buf bytes.Buffer
		if err := WriteBinary(&buf, b); err != nil {
			t.Fatalf("%s: write: %v", b.Name, err)
		}
		got, err := ReadBinary(b.Name, &buf)
		if err != nil {
			t.Fatalf("%s: read: %v", b.Name, err)
		}
		if len(got.Sequences) != len(b.Sequences) {
			t.Fatalf("%s: %d sequences, want %d", b.Name, len(got.Sequences), len(b.Sequences))
		}
	}
}

// TestBinaryScanMatchesEager pins the streaming scanner access-for-
// access to the eager decode, and the verified trailer fingerprint to
// Sequence.Fingerprint (the content-addressed cache key).
func TestBinaryScanMatchesEager(t *testing.T) {
	b := testBenchmark(t)
	var buf bytes.Buffer
	if err := WriteBinary(&buf, b); err != nil {
		t.Fatal(err)
	}
	br, err := NewBinReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if br.SeqCount() != len(b.Sequences) {
		t.Fatalf("SeqCount %d, want %d", br.SeqCount(), len(b.Sequences))
	}
	for i, want := range b.Sequences {
		sc, err := br.ScanSequence()
		if err != nil {
			t.Fatalf("sequence %d: %v", i, err)
		}
		if sc.NumVars() != want.NumVars() || sc.Len() != int64(want.Len()) {
			t.Fatalf("sequence %d header (%d vars, %d accesses), want (%d, %d)",
				i, sc.NumVars(), sc.Len(), want.NumVars(), want.Len())
		}
		for j := 0; ; j++ {
			a, err := sc.Next()
			if err == io.EOF {
				if j != want.Len() {
					t.Fatalf("sequence %d: EOF after %d of %d accesses", i, j, want.Len())
				}
				break
			}
			if err != nil {
				t.Fatalf("sequence %d access %d: %v", i, j, err)
			}
			if a != want.Accesses[j] {
				t.Fatalf("sequence %d access %d = %v, want %v", i, j, a, want.Accesses[j])
			}
		}
		if sc.Fingerprint() != want.Fingerprint() {
			t.Fatalf("sequence %d fingerprint %#x, want Sequence.Fingerprint %#x",
				i, sc.Fingerprint(), want.Fingerprint())
		}
	}
	if _, err := br.ScanSequence(); err != io.EOF {
		t.Fatalf("past last sequence: %v, want io.EOF", err)
	}
}

// TestBinaryAutoDrain verifies ScanSequence drains a half-read
// predecessor so interleaved partial scans stay positioned.
func TestBinaryAutoDrain(t *testing.T) {
	b := testBenchmark(t)
	var buf bytes.Buffer
	if err := WriteBinary(&buf, b); err != nil {
		t.Fatal(err)
	}
	br, err := NewBinReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	sc, err := br.ScanSequence()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sc.Next(); err != nil { // read one access only
		t.Fatal(err)
	}
	sc2, err := br.ScanSequence()
	if err != nil {
		t.Fatalf("second ScanSequence after partial read: %v", err)
	}
	if sc2.NumVars() != b.Sequences[1].NumVars() {
		t.Fatalf("second sequence universe %d, want %d", sc2.NumVars(), b.Sequences[1].NumVars())
	}
}

// TestBinaryTruncationRejected feeds every proper prefix of an encoded
// file to the reader: each must fail cleanly (no panic, no silent
// success) unless it happens to end exactly at a sequence boundary of a
// shorter declared file — impossible here since the count is fixed.
func TestBinaryTruncationRejected(t *testing.T) {
	b := testBenchmark(t)
	var buf bytes.Buffer
	if err := WriteBinary(&buf, b); err != nil {
		t.Fatal(err)
	}
	enc := buf.Bytes()
	for cut := 0; cut < len(enc); cut++ {
		if _, err := ReadBinary("trunc", bytes.NewReader(enc[:cut])); err == nil {
			t.Fatalf("truncation at %d of %d bytes accepted", cut, len(enc))
		}
	}
}

// TestBinaryCorruptionDetected flips every byte of the encoding in
// turn: each mutation must either error out or decode to internally
// consistent sequences — never panic, and a pure payload/trailer flip
// must be caught by the fingerprint.
func TestBinaryCorruptionDetected(t *testing.T) {
	b := testBenchmark(t)
	var buf bytes.Buffer
	if err := WriteBinary(&buf, b); err != nil {
		t.Fatal(err)
	}
	enc := buf.Bytes()
	for i := range enc {
		mut := append([]byte(nil), enc...)
		mut[i] ^= 0x5a
		got, err := ReadBinary("corrupt", bytes.NewReader(mut))
		if err != nil {
			continue
		}
		for j, s := range got.Sequences {
			if verr := s.Validate(); verr != nil {
				t.Fatalf("flip at byte %d: accepted inconsistent sequence %d: %v", i, j, verr)
			}
		}
	}
}

func TestBinaryVersionRejected(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteBinary(&buf, &Benchmark{Name: "v"}); err != nil {
		t.Fatal(err)
	}
	enc := buf.Bytes()
	enc[4] = 0xfe // version low byte
	if _, err := ReadBinary("v", bytes.NewReader(enc)); err == nil {
		t.Fatal("future version accepted")
	}
}

func TestBinWriterMisuse(t *testing.T) {
	var buf bytes.Buffer
	bw, err := NewBinWriter(&buf, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := bw.Append(Access{}); err == nil {
		t.Fatal("Append outside a sequence accepted")
	}
	if err := bw.BeginSequence(2, 3, nil); err != nil {
		t.Fatal(err)
	}
	if err := bw.EndSequence(); err == nil {
		t.Fatal("short sequence accepted")
	}
}

// TestOpenBin exercises the file backend (the mmap path on Linux, the
// chunked fallback elsewhere) against the in-memory decode.
func TestOpenBin(t *testing.T) {
	b := testBenchmark(t)
	var buf bytes.Buffer
	if err := WriteBinary(&buf, b); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "t.rtb")
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	bf, err := OpenBin(path)
	if err != nil {
		t.Fatal(err)
	}
	defer bf.Close()
	for i, want := range b.Sequences {
		sc, err := bf.Reader().ScanSequence()
		if err != nil {
			t.Fatalf("sequence %d: %v", i, err)
		}
		n := 0
		for {
			a, err := sc.Next()
			if err == io.EOF {
				break
			}
			if err != nil {
				t.Fatalf("sequence %d: %v", i, err)
			}
			if a != want.Accesses[n] {
				t.Fatalf("sequence %d access %d = %v, want %v", i, n, a, want.Accesses[n])
			}
			n++
		}
		if n != want.Len() {
			t.Fatalf("sequence %d: %d accesses, want %d", i, n, want.Len())
		}
	}
	if err := bf.Close(); err != nil {
		t.Fatal(err)
	}
}
