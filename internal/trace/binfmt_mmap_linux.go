//go:build linux

package trace

import (
	"os"
	"syscall"
)

// mmapFile maps the file read-only. Returns ok == false (falling back
// to chunked buffered reads) for empty files or when the kernel
// declines the mapping; the scanning API behaves identically either
// way. MADV_SEQUENTIAL tells the kernel the scanner's access pattern so
// read-ahead stays aggressive and cold pages are reclaimed behind the
// scan — the property the bounded-memory CI ceiling relies on.
func mmapFile(f *os.File) ([]byte, bool) {
	fi, err := f.Stat()
	if err != nil || fi.Size() <= 0 || int64(int(fi.Size())) != fi.Size() {
		return nil, false
	}
	data, err := syscall.Mmap(int(f.Fd()), 0, int(fi.Size()), syscall.PROT_READ, syscall.MAP_SHARED)
	if err != nil {
		return nil, false
	}
	_ = madviseSequential(data)
	return data, true
}

func madviseSequential(data []byte) error {
	return syscall.Madvise(data, syscall.MADV_SEQUENTIAL)
}

// munmapFile releases a mapping produced by mmapFile.
func munmapFile(data []byte) error { return syscall.Munmap(data) }
