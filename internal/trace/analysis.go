package trace

import "fmt"

// Analysis holds per-variable liveness statistics of an access sequence:
// access frequency Av, first occurrence Fv and last occurrence Lv, using
// 1-based positions as in the paper (position 0 means "never accessed").
type Analysis struct {
	Seq *Sequence
	// Freq[v] is Av: how many times v appears in the sequence.
	Freq []int
	// First[v] is Fv: 1-based index of the first access to v, 0 if absent.
	First []int
	// Last[v] is Lv: 1-based index of the last access to v, 0 if absent.
	Last []int
}

// Analyze scans the sequence once and computes frequency, first and last
// occurrence for every variable in the universe.
func Analyze(s *Sequence) *Analysis {
	n := s.NumVars()
	a := &Analysis{
		Seq:   s,
		Freq:  make([]int, n),
		First: make([]int, n),
		Last:  make([]int, n),
	}
	for i, acc := range s.Accesses {
		v := acc.Var
		a.Freq[v]++
		if a.First[v] == 0 {
			a.First[v] = i + 1
		}
		a.Last[v] = i + 1
	}
	return a
}

// Accessed reports whether variable v occurs in the sequence at all.
func (a *Analysis) Accessed(v int) bool { return a.Freq[v] > 0 }

// Lifespan returns Lv - Fv, the distance between the first and last access
// of v. Variables accessed exactly once have lifespan 0, as do absent ones.
func (a *Analysis) Lifespan(v int) int {
	if !a.Accessed(v) {
		return 0
	}
	return a.Last[v] - a.First[v]
}

// Disjoint reports whether u and v have disjoint lifespans: the last
// occurrence of one precedes the first occurrence of the other. Variables
// that never occur are vacuously disjoint from everything.
func (a *Analysis) Disjoint(u, v int) bool {
	if !a.Accessed(u) || !a.Accessed(v) {
		return true
	}
	return a.Last[u] < a.First[v] || a.Last[v] < a.First[u]
}

// Contains reports whether the lifespan of u strictly contains the lifespan
// of v: Fu < Fv and Lv < Lu.
func (a *Analysis) Contains(u, v int) bool {
	if !a.Accessed(u) || !a.Accessed(v) {
		return false
	}
	return a.First[u] < a.First[v] && a.Last[v] < a.Last[u]
}

// InnerFreqSum returns the sum of access frequencies of all variables whose
// lifespan lies strictly inside the lifespan of v, i.e. Fu > Fv and Lu < Lv,
// restricted to the candidate set (nil means all variables). This is the
// quantity Algorithm 1 of the paper compares Av against when deciding
// whether v joins the disjoint set.
func (a *Analysis) InnerFreqSum(v int, candidates []int) int {
	sum := 0
	if candidates == nil {
		for u := range a.Freq {
			if u != v && a.First[u] > a.First[v] && a.Last[u] < a.Last[v] {
				sum += a.Freq[u]
			}
		}
		return sum
	}
	for _, u := range candidates {
		if u != v && a.First[u] > a.First[v] && a.Last[u] < a.Last[v] {
			sum += a.Freq[u]
		}
	}
	return sum
}

// ByFirstUse returns the accessed variables sorted in ascending order of
// first occurrence (the paper's "order of first use", OFU).
func (a *Analysis) ByFirstUse() []int {
	out := make([]int, 0, len(a.Freq))
	for v := range a.Freq {
		if a.Accessed(v) {
			out = append(out, v)
		}
	}
	insertionSortBy(out, func(x, y int) bool { return a.First[x] < a.First[y] })
	return out
}

// ByFrequency returns the accessed variables sorted in descending order of
// access frequency. Ties keep ascending variable-index order (stable with
// respect to declaration order), which is the tie-break needed to reproduce
// the paper's Fig. 3 AFD layout.
func (a *Analysis) ByFrequency() []int {
	out := make([]int, 0, len(a.Freq))
	for v := range a.Freq {
		if a.Accessed(v) {
			out = append(out, v)
		}
	}
	insertionSortBy(out, func(x, y int) bool {
		if a.Freq[x] != a.Freq[y] {
			return a.Freq[x] > a.Freq[y]
		}
		return x < y
	})
	return out
}

// insertionSortBy sorts in place with a strict-weak less function. The
// input slices here are small (variable lists); a stable, allocation-free
// insertion sort keeps tie-break behaviour explicit and deterministic.
func insertionSortBy(s []int, less func(x, y int) bool) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && less(s[j], s[j-1]); j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

// SelfAccesses returns the number of consecutive repeated accesses
// (si == si+1) in the sequence. Placements cannot be charged shifts for
// self accesses, so this is a lower-bound-improving statistic the DMA
// heuristic tries to maximize inside the disjoint set.
func SelfAccesses(s *Sequence) int {
	n := 0
	for i := 1; i < len(s.Accesses); i++ {
		if s.Accesses[i].Var == s.Accesses[i-1].Var {
			n++
		}
	}
	return n
}

// Summary describes a sequence in one line, for logs and reports.
func (a *Analysis) Summary() string {
	vars := 0
	for _, f := range a.Freq {
		if f > 0 {
			vars++
		}
	}
	return fmt.Sprintf("%d accesses over %d variables (%d self-accesses)",
		a.Seq.Len(), vars, SelfAccesses(a.Seq))
}
