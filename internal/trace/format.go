package trace

import (
	"bufio"
	"bytes"
	"fmt"
	"io"
	"strings"
)

// The plain-text trace format, one benchmark per file:
//
//	# comment lines start with '#'
//	seq <name>            begins a new access sequence (name optional)
//	a b a c! b            whitespace-separated accesses; '!' marks a write
//
// Variables are named tokens; each sequence has its own variable universe,
// numbered in order of first appearance, matching the offset-assignment
// convention that sequences are independent placement problems.

// Benchmark is a named collection of access sequences. OffsetStone-style
// workloads contain one sequence per compiled function.
type Benchmark struct {
	Name      string
	Sequences []*Sequence
}

// TotalAccesses sums the lengths of all sequences.
func (b *Benchmark) TotalAccesses() int {
	t := 0
	for _, s := range b.Sequences {
		t += s.Len()
	}
	return t
}

// MaxVars returns the largest variable universe across sequences.
func (b *Benchmark) MaxVars() int {
	m := 0
	for _, s := range b.Sequences {
		if n := s.NumVars(); n > m {
			m = n
		}
	}
	return m
}

// MaxLen returns the longest sequence length.
func (b *Benchmark) MaxLen() int {
	m := 0
	for _, s := range b.Sequences {
		if s.Len() > m {
			m = s.Len()
		}
	}
	return m
}

// Parse reads a benchmark in the text format. Accesses that appear before
// any "seq" directive form an implicit first sequence.
//
// The parse is streaming at the token level: lines are tokenized in
// place from the scanner's byte buffer and accesses appended as they
// are seen, so the only per-token allocation is the one string copy
// each *new* variable name costs. (The decoded benchmark is still an
// in-RAM structure — the out-of-core path is the binary format of
// binfmt.go.)
func Parse(name string, r io.Reader) (*Benchmark, error) {
	b := &Benchmark{Name: name}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)

	var cur *Sequence
	var index map[string]int
	begin := func() {
		cur = &Sequence{}
		index = make(map[string]int)
	}
	flush := func() {
		if cur != nil {
			cur.refresh()
			b.Sequences = append(b.Sequences, cur)
			cur = nil
		}
	}

	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 || line[0] == '#' {
			continue
		}
		tok, rest := nextField(line)
		if string(tok) == "seq" {
			flush()
			begin()
			continue // the optional sequence name is informational only
		}
		if cur == nil {
			begin()
		}
		for len(tok) > 0 {
			write := false
			vn := tok
			if vn[len(vn)-1] == '!' {
				write = true
				vn = vn[:len(vn)-1]
			}
			if len(vn) == 0 {
				return nil, fmt.Errorf("trace: line %d: empty variable name in token %q", lineNo, tok)
			}
			id, ok := index[string(vn)] // no allocation: map lookup by []byte key
			if !ok {
				id = len(cur.Names)
				nm := string(vn)
				index[nm] = id
				cur.Names = append(cur.Names, nm)
			}
			cur.Accesses = append(cur.Accesses, Access{Var: id, Write: write})
			tok, rest = nextField(rest)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("trace: reading %s: %w", name, err)
	}
	flush()
	return b, nil
}

// nextField splits the first whitespace-separated field off line,
// returning the field and the remainder — the zero-allocation core both
// text parsers tokenize through.
//
//rtm:hotpath
func nextField(line []byte) (field, rest []byte) {
	i := 0
	for i < len(line) && asciiSpace(line[i]) {
		i++
	}
	j := i
	for j < len(line) && !asciiSpace(line[j]) {
		j++
	}
	return line[i:j], line[j:]
}

//rtm:hotpath
func asciiSpace(c byte) bool {
	return c == ' ' || c == '\t' || c == '\n' || c == '\r' || c == '\v' || c == '\f'
}

// Write renders the benchmark in the text format accepted by Parse.
func Write(w io.Writer, b *Benchmark) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "# benchmark %s: %d sequences, %d accesses\n",
		b.Name, len(b.Sequences), b.TotalAccesses())
	for i, s := range b.Sequences {
		fmt.Fprintf(bw, "seq s%d\n", i)
		col := 0
		for _, a := range s.Accesses {
			tok := s.Name(a.Var)
			if a.Write {
				tok += "!"
			}
			if col > 0 && col+len(tok)+1 > 100 {
				bw.WriteByte('\n')
				col = 0
			}
			if col > 0 {
				bw.WriteByte(' ')
				col++
			}
			bw.WriteString(tok)
			col += len(tok)
		}
		bw.WriteByte('\n')
	}
	return bw.Flush()
}

// ParseString is a convenience wrapper over Parse for literal traces.
func ParseString(name, text string) (*Benchmark, error) {
	return Parse(name, strings.NewReader(text))
}
