package trace

import (
	"bufio"
	"fmt"
	"io"
	"strings"
)

// The plain-text trace format, one benchmark per file:
//
//	# comment lines start with '#'
//	seq <name>            begins a new access sequence (name optional)
//	a b a c! b            whitespace-separated accesses; '!' marks a write
//
// Variables are named tokens; each sequence has its own variable universe,
// numbered in order of first appearance, matching the offset-assignment
// convention that sequences are independent placement problems.

// Benchmark is a named collection of access sequences. OffsetStone-style
// workloads contain one sequence per compiled function.
type Benchmark struct {
	Name      string
	Sequences []*Sequence
}

// TotalAccesses sums the lengths of all sequences.
func (b *Benchmark) TotalAccesses() int {
	t := 0
	for _, s := range b.Sequences {
		t += s.Len()
	}
	return t
}

// MaxVars returns the largest variable universe across sequences.
func (b *Benchmark) MaxVars() int {
	m := 0
	for _, s := range b.Sequences {
		if n := s.NumVars(); n > m {
			m = n
		}
	}
	return m
}

// MaxLen returns the longest sequence length.
func (b *Benchmark) MaxLen() int {
	m := 0
	for _, s := range b.Sequences {
		if s.Len() > m {
			m = s.Len()
		}
	}
	return m
}

// Parse reads a benchmark in the text format. Accesses that appear before
// any "seq" directive form an implicit first sequence.
func Parse(name string, r io.Reader) (*Benchmark, error) {
	b := &Benchmark{Name: name}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)

	var cur []string
	curName := ""
	lineNo := 0
	flush := func() error {
		if cur == nil {
			return nil
		}
		s, err := NewNamedSequence(cur...)
		if err != nil {
			return err
		}
		if curName == "" {
			curName = fmt.Sprintf("seq%d", len(b.Sequences))
		}
		_ = curName // sequence names are informational only
		b.Sequences = append(b.Sequences, s)
		cur = nil
		curName = ""
		return nil
	}

	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if fields[0] == "seq" {
			if err := flush(); err != nil {
				return nil, fmt.Errorf("trace: line %d: %w", lineNo, err)
			}
			cur = []string{}
			if len(fields) > 1 {
				curName = fields[1]
			}
			continue
		}
		if cur == nil {
			cur = []string{}
		}
		cur = append(cur, fields...)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("trace: reading %s: %w", name, err)
	}
	if err := flush(); err != nil {
		return nil, fmt.Errorf("trace: line %d: %w", lineNo, err)
	}
	return b, nil
}

// Write renders the benchmark in the text format accepted by Parse.
func Write(w io.Writer, b *Benchmark) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "# benchmark %s: %d sequences, %d accesses\n",
		b.Name, len(b.Sequences), b.TotalAccesses())
	for i, s := range b.Sequences {
		fmt.Fprintf(bw, "seq s%d\n", i)
		col := 0
		for _, a := range s.Accesses {
			tok := s.Name(a.Var)
			if a.Write {
				tok += "!"
			}
			if col > 0 && col+len(tok)+1 > 100 {
				bw.WriteByte('\n')
				col = 0
			}
			if col > 0 {
				bw.WriteByte(' ')
				col++
			}
			bw.WriteString(tok)
			col += len(tok)
		}
		bw.WriteByte('\n')
	}
	return bw.Flush()
}

// ParseString is a convenience wrapper over Parse for literal traces.
func ParseString(name, text string) (*Benchmark, error) {
	return Parse(name, strings.NewReader(text))
}
